#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace s2 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("y").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("z").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("w").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("v").code(), StatusCode::kInternal);
  const Status s = Status::InvalidArgument("bad argument");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad argument");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad argument");
}

TEST(StatusTest, CopyPreservesState) {
  const Status s = Status::NotFound("missing");
  const Status t = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(t, s);
  EXPECT_EQ(t.message(), "missing");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    S2_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::InvalidArgument("no");
  };
  auto consumer = [&](bool ok) -> Result<int> {
    S2_ASSIGN_OR_RETURN(int v, producer(ok));
    return v * 2;
  };
  EXPECT_EQ(consumer(true).value(), 14);
  EXPECT_EQ(consumer(false).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(StatusCodeTest, Names) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoTransient), "IoTransient");
}

TEST(StatusTest, TransientIoIsDistinctFromHardIoError) {
  const Status transient = Status::TransientIo("EINTR during read");
  const Status hard = Status::IoError("device gone");
  EXPECT_EQ(transient.code(), StatusCode::kIoTransient);
  EXPECT_EQ(hard.code(), StatusCode::kIoError);
  EXPECT_NE(transient.code(), hard.code());
  EXPECT_FALSE(transient.ok());
  EXPECT_EQ(transient.message(), "EINTR during read");
}

}  // namespace
}  // namespace s2
