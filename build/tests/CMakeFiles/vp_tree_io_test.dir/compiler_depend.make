# Empty compiler generated dependencies file for vp_tree_io_test.
# This may be replaced when dependencies are built.
