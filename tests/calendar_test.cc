#include "timeseries/calendar.h"

#include <gtest/gtest.h>

namespace s2::ts {
namespace {

TEST(CalendarTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));   // Divisible by 400.
  EXPECT_FALSE(IsLeapYear(1900));  // Divisible by 100 but not 400.
  EXPECT_TRUE(IsLeapYear(2004));
  EXPECT_FALSE(IsLeapYear(2001));
  EXPECT_EQ(DaysInYear(2000), 366);
  EXPECT_EQ(DaysInYear(2001), 365);
}

TEST(CalendarTest, DaysInMonth) {
  EXPECT_EQ(DaysInMonth(2000, 2), 29);
  EXPECT_EQ(DaysInMonth(2001, 2), 28);
  EXPECT_EQ(DaysInMonth(2002, 1), 31);
  EXPECT_EQ(DaysInMonth(2002, 4), 30);
  EXPECT_EQ(DaysInMonth(2002, 12), 31);
}

TEST(CalendarTest, EpochIsDayZero) {
  EXPECT_EQ(DateToDayIndex({2000, 1, 1}), 0);
  EXPECT_EQ(DateToDayIndex({2000, 1, 2}), 1);
  EXPECT_EQ(DateToDayIndex({2000, 12, 31}), 365);
  EXPECT_EQ(DateToDayIndex({2001, 1, 1}), 366);
  EXPECT_EQ(DateToDayIndex({2002, 1, 1}), 366 + 365);
}

TEST(CalendarTest, RoundTripAllDaysOfThreeYears) {
  for (int32_t day = 0; day < 366 + 365 + 365; ++day) {
    const Date date = DayIndexToDate(day);
    EXPECT_EQ(DateToDayIndex(date), day);
  }
}

TEST(CalendarTest, NegativeIndicesAddressEarlierYears) {
  const Date date = DayIndexToDate(-1);
  EXPECT_EQ(date.year, 1999);
  EXPECT_EQ(date.month, 12);
  EXPECT_EQ(date.day, 31);
  EXPECT_EQ(DateToDayIndex(date), -1);
}

TEST(CalendarTest, DayOfWeekAnchors) {
  // 2000-01-01 was a Saturday (5 in Monday-based numbering).
  EXPECT_EQ(DayOfWeek(0), 5);
  // 2000-01-03 was a Monday.
  EXPECT_EQ(DayOfWeek(2), 0);
  // 2001-09-11 was a Tuesday.
  EXPECT_EQ(DayOfWeek(DateToDayIndex({2001, 9, 11})), 1);
  // Negative days wrap correctly: 1999-12-31 was a Friday.
  EXPECT_EQ(DayOfWeek(-1), 4);
}

TEST(CalendarTest, DayOfYear) {
  EXPECT_EQ(DayOfYear(0), 1);
  EXPECT_EQ(DayOfYear(DateToDayIndex({2000, 12, 31})), 366);
  EXPECT_EQ(DayOfYear(DateToDayIndex({2001, 12, 31})), 365);
  // Aug 16 2002 ("Elvis day"): 31+28+31+30+31+30+31+16 = 228.
  EXPECT_EQ(DayOfYear(DateToDayIndex({2002, 8, 16})), 228);
}

TEST(CalendarTest, Formatting) {
  EXPECT_EQ(FormatDayIndex(0), "2000-01-01");
  EXPECT_EQ(FormatDayIndex(DateToDayIndex({2001, 9, 11})), "2001-09-11");
}

}  // namespace
}  // namespace s2::ts
