
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/linear_scan.cc" "src/index/CMakeFiles/s2_index.dir/linear_scan.cc.o" "gcc" "src/index/CMakeFiles/s2_index.dir/linear_scan.cc.o.d"
  "/root/repo/src/index/mvp_tree.cc" "src/index/CMakeFiles/s2_index.dir/mvp_tree.cc.o" "gcc" "src/index/CMakeFiles/s2_index.dir/mvp_tree.cc.o.d"
  "/root/repo/src/index/vp_tree.cc" "src/index/CMakeFiles/s2_index.dir/vp_tree.cc.o" "gcc" "src/index/CMakeFiles/s2_index.dir/vp_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/s2_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/repr/CMakeFiles/s2_repr.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s2_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/s2_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
