# Empty compiler generated dependencies file for period_miner.
# This may be replaced when dependencies are built.
