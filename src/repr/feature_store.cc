#include "repr/feature_store.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>

namespace s2::repr {

namespace {

constexpr char kMagic[8] = {'S', '2', 'F', 'E', 'A', 'T', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

uint8_t KindToByte(ReprKind kind) { return static_cast<uint8_t>(kind); }

Result<ReprKind> KindFromByte(uint8_t byte) {
  switch (byte) {
    case 0:
      return ReprKind::kFirstKMiddle;
    case 1:
      return ReprKind::kFirstKError;
    case 2:
      return ReprKind::kBestKMiddle;
    case 3:
      return ReprKind::kBestKError;
  }
  return Status::Corruption("feature store: unknown representation kind");
}

}  // namespace

Status WriteFeatures(const std::string& path,
                     const std::vector<CompressedSpectrum>& features) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IoError("WriteFeatures: cannot create " + path);
  }
  std::FILE* f = file.get();
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f) != sizeof(kMagic) ||
      !WriteScalar<uint64_t>(f, features.size())) {
    return Status::IoError("WriteFeatures: short write");
  }
  for (const CompressedSpectrum& feature : features) {
    S2_RETURN_NOT_OK(WriteFeatureRecord(f, feature));
  }
  return Status::OK();
}

Status WriteFeatureRecord(std::FILE* f, const CompressedSpectrum& feature) {
  if (feature.positions().size() > std::numeric_limits<uint16_t>::max()) {
    return Status::InvalidArgument("WriteFeatureRecord: too many positions");
  }
  bool ok = WriteScalar(f, KindToByte(feature.kind())) &&
            WriteScalar<uint8_t>(f, static_cast<uint8_t>(feature.basis())) &&
            WriteScalar(f, feature.n()) &&
            WriteScalar<uint16_t>(
                f, static_cast<uint16_t>(feature.positions().size()));
  for (uint32_t position : feature.positions()) {
    ok = ok && WriteScalar<uint16_t>(f, static_cast<uint16_t>(position));
  }
  for (const Complex& coeff : feature.coeffs()) {
    ok = ok && WriteScalar(f, coeff.real()) && WriteScalar(f, coeff.imag());
  }
  ok = ok && WriteScalar(f, feature.error()) && WriteScalar(f, feature.min_power());
  if (!ok) return Status::IoError("WriteFeatureRecord: short write");
  return Status::OK();
}

Result<CompressedSpectrum> ReadFeatureRecord(std::FILE* f) {
  uint8_t kind_byte = 0;
  uint8_t basis_byte = 0;
  uint32_t n = 0;
  uint16_t position_count = 0;
  if (!ReadScalar(f, &kind_byte) || !ReadScalar(f, &basis_byte) ||
      !ReadScalar(f, &n) || !ReadScalar(f, &position_count)) {
    return Status::Corruption("ReadFeatureRecord: truncated feature header");
  }
  S2_ASSIGN_OR_RETURN(ReprKind kind, KindFromByte(kind_byte));
  if (basis_byte > 1) {
    return Status::Corruption("ReadFeatureRecord: unknown basis");
  }
  const Basis basis = static_cast<Basis>(basis_byte);

  std::vector<uint32_t> positions(position_count);
  for (uint16_t p = 0; p < position_count; ++p) {
    uint16_t position = 0;
    if (!ReadScalar(f, &position)) {
      return Status::Corruption("ReadFeatureRecord: truncated positions");
    }
    positions[p] = position;
  }
  std::vector<Complex> coeffs(position_count);
  for (uint16_t p = 0; p < position_count; ++p) {
    double re = 0;
    double im = 0;
    if (!ReadScalar(f, &re) || !ReadScalar(f, &im)) {
      return Status::Corruption("ReadFeatureRecord: truncated coefficients");
    }
    coeffs[p] = Complex(re, im);
  }
  double error = 0;
  double min_power = 0;
  if (!ReadScalar(f, &error) || !ReadScalar(f, &min_power)) {
    return Status::Corruption("ReadFeatureRecord: truncated footer");
  }
  // NaN error / infinite min_power round-trip through FromParts defaults.
  if (std::isnan(error)) error = 0.0;
  if (std::isinf(min_power)) min_power = 0.0;
  return CompressedSpectrum::FromParts(kind, n, std::move(positions),
                                       std::move(coeffs), error, min_power, basis);
}

Result<std::vector<CompressedSpectrum>> ReadFeatures(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return Status::IoError("ReadFeatures: cannot open " + path);
  std::FILE* f = file.get();

  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("ReadFeatures: seek failed on " + path);
  }
  const long file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IoError("ReadFeatures: cannot determine size of " + path);
  }

  char magic[sizeof(kMagic)];
  uint64_t count = 0;
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      !ReadScalar(f, &count)) {
    return Status::Corruption("ReadFeatures: truncated header in " + path);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("ReadFeatures: bad magic in " + path);
  }
  // Bound the declared count by the bytes actually present, so a corrupt
  // header cannot trigger a huge reserve. The smallest possible record is
  // its fixed header plus the two footer doubles.
  constexpr uint64_t kMinRecordBytes = 2 * sizeof(uint8_t) + sizeof(uint32_t) +
                                       sizeof(uint16_t) + 2 * sizeof(double);
  const uint64_t remaining =
      static_cast<uint64_t>(file_size) - sizeof(kMagic) - sizeof(uint64_t);
  if (count > remaining / kMinRecordBytes) {
    return Status::Corruption("ReadFeatures: feature count " +
                              std::to_string(count) +
                              " exceeds the file size in " + path);
  }

  std::vector<CompressedSpectrum> features;
  features.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    S2_ASSIGN_OR_RETURN(CompressedSpectrum feature, ReadFeatureRecord(f));
    features.push_back(std::move(feature));
  }
  return features;
}

}  // namespace s2::repr
