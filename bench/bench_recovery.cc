// Recovery-time benchmark: what checkpoints buy at restart.
//
//   ./build/bench/bench_recovery [--series 128] [--days 64]
//                                [--appends 2000] [--interval 500]
//                                [--json BENCH_recovery.json]
//
// One table: recovery wall time and replayed-record count as the appended
// history grows 1x / 3x / 10x, with and without periodic checkpoints
// (one coordinated checkpoint every `--interval` acknowledged appends,
// segment + snapshot GC on). Full replay grows linearly with history;
// checkpointed recovery replays only the WAL tail past the last anchor,
// so its replayed-record count — and with it the replay component of the
// restart — stays bounded by the checkpoint interval no matter how much
// history accumulates. The acceptance bar printed at the bottom is exactly
// that: at every scale the checkpointed recovery replays <= interval
// records.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/s2_engine.h"
#include "io/mem_env.h"
#include "monitor/subscription.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"
#include "stream/wal.h"

using namespace s2;

namespace {

ts::Corpus MakeCorpus(size_t series, size_t days) {
  qlog::CorpusSpec spec;
  spec.num_series = series;
  spec.n_days = days;
  spec.seed = 20040613;  // SIGMOD'04.
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 16;
  return options;
}

struct Row {
  size_t appends = 0;
  const char* mode = "";
  double recover_ms = 0.0;
  uint64_t replayed = 0;
  uint64_t anchor = 0;
};

Row RunOne(size_t series, size_t days, size_t appends, size_t interval,
           bool checkpoints) {
  io::MemEnv env;
  service::S2Server::Options options;
  options.scheduler.threads = 1;
  options.cache_capacity = 0;
  options.compaction_threshold = 0;
  options.wal_path = "recovery.wal";
  options.wal_env = &env;
  if (checkpoints) {
    options.checkpoint_enabled = true;
    options.checkpoint_gc = true;
    options.wal_rotate_bytes = 64 * stream::Wal::kRecordBytes;
  }

  // Live phase: subscribe a pair of standing queries (so the checkpoint
  // carries registry + queue state, like a real deployment), then append.
  // Checkpoints are taken synchronously every `interval` appends to keep
  // the measured restart deterministic.
  {
    auto server = service::S2Server::Build(MakeCorpus(series, days),
                                           EngineOptions(), options);
    if (!server.ok()) {
      std::fprintf(stderr, "server build failed: %s\n",
                   server.status().ToString().c_str());
      std::exit(1);
    }
    monitor::Subscription burst;
    burst.kind = monitor::SubscriptionKind::kBurstThreshold;
    burst.series = 0;
    burst.burst.window = 7;
    burst.burst.enter_ratio = 1.5;
    burst.burst.exit_ratio = 1.1;
    (void)(*server)->Subscribe(burst);
    monitor::Subscription period;
    period.kind = monitor::SubscriptionKind::kPeriodicityChange;
    period.series = 1;
    (void)(*server)->Subscribe(period);

    Rng rng(17);
    for (size_t i = 0; i < appends; ++i) {
      const auto id = static_cast<ts::SeriesId>(i % series);
      const Status status =
          (*server)->AppendPoint(id, 50.0 + rng.Normal(0.0, 4.0));
      if (!status.ok()) {
        std::fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
        std::exit(1);
      }
      if (checkpoints && (i + 1) % interval == 0) {
        const Status ckpt = (*server)->Checkpoint();
        if (!ckpt.ok()) {
          std::fprintf(stderr, "checkpoint failed: %s\n",
                       ckpt.ToString().c_str());
          std::exit(1);
        }
      }
    }
    (*server)->Shutdown();
  }

  // Restart phase: the measured quantity.
  bench::Timer timer;
  auto revived = service::S2Server::Recover(MakeCorpus(series, days),
                                            EngineOptions(), options);
  const double recover_ms = timer.Seconds() * 1e3;
  if (!revived.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 revived.status().ToString().c_str());
    std::exit(1);
  }

  Row row;
  row.appends = appends;
  row.mode = checkpoints ? "checkpointed" : "full-replay";
  row.recover_ms = recover_ms;
  row.replayed = (*revived)->stream_info().replayed_records;
  row.anchor = (*revived)->checkpoint_info().recovery_anchor_appends;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t series = bench::ArgSize(argc, argv, "--series", 128);
  const size_t days = bench::ArgSize(argc, argv, "--days", 64);
  const size_t appends = bench::ArgSize(argc, argv, "--appends", 2000);
  // Deliberately not a divisor of the append counts, so every checkpointed
  // run also exercises a non-empty tail replay past the last anchor.
  const size_t interval = bench::ArgSize(argc, argv, "--interval", 512);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_recovery.json");

  bench::PrintHeader(
      "Recovery time vs appended history: full replay vs checkpointed");
  std::printf("  %-8s %-14s %12s %12s %10s\n", "scale", "mode", "recover_ms",
              "replayed", "anchor");

  bool bounded = true;
  bench::Json rows = bench::Json::Array();
  for (size_t scale : {1, 3, 10}) {
    for (bool checkpoints : {false, true}) {
      const Row row =
          RunOne(series, days, scale * appends, interval, checkpoints);
      const std::string label = std::to_string(scale) + "x";
      std::printf("  %-8s %-14s %12.1f %12llu %10llu\n", label.c_str(),
                  row.mode, row.recover_ms,
                  static_cast<unsigned long long>(row.replayed),
                  static_cast<unsigned long long>(row.anchor));
      if (checkpoints) bounded = bounded && row.replayed <= interval;
      rows.Push(bench::Json::Object()
                    .Add("scale", static_cast<uint64_t>(scale))
                    .Add("appends", static_cast<uint64_t>(row.appends))
                    .Add("mode", row.mode)
                    .Add("recover_ms", row.recover_ms)
                    .Add("replayed_records", row.replayed)
                    .Add("anchor", row.anchor));
    }
  }
  std::printf(
      "\n  acceptance bar (checkpointed replay <= interval at every "
      "scale): %s\n",
      bounded ? "PASS" : "FAIL");

  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_recovery")
          .Add("spec",
               bench::Json::Object()
                   .Add("series", static_cast<uint64_t>(series))
                   .Add("days", static_cast<uint64_t>(days))
                   .Add("appends", static_cast<uint64_t>(appends))
                   .Add("interval", static_cast<uint64_t>(interval)))
          .Add("rows", std::move(rows))
          .Add("bounded_replay",
               bench::Json::String(bounded ? "PASS" : "FAIL")));
  return bounded ? 0 : 1;
}
