# Empty dependencies file for bench_ablation_basis.
# This may be replaced when dependencies are built.
