file(REMOVE_RECURSE
  "CMakeFiles/s2_common.dir/status.cc.o"
  "CMakeFiles/s2_common.dir/status.cc.o.d"
  "libs2_common.a"
  "libs2_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
