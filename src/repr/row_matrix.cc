#include "repr/row_matrix.h"

#include <algorithm>

namespace s2::repr {

namespace {
constexpr size_t kDoublesPerCacheLine = 8;

size_t PaddedStride(size_t row_length) {
  if (row_length == 0) return kDoublesPerCacheLine;
  return (row_length + kDoublesPerCacheLine - 1) / kDoublesPerCacheLine *
         kDoublesPerCacheLine;
}
}  // namespace

RowMatrix::RowMatrix(size_t num_rows, size_t row_length)
    : num_rows_(num_rows),
      row_length_(row_length),
      stride_(PaddedStride(row_length)),
      data_(num_rows * stride_, 0.0) {}

RowMatrix RowMatrix::FromRows(const std::vector<std::vector<double>>& rows) {
  const size_t length = rows.empty() ? 0 : rows.front().size();
  RowMatrix m(rows.size(), length);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::copy(rows[i].begin(), rows[i].end(), m.mutable_row(i));
  }
  return m;
}

}  // namespace s2::repr
