#!/usr/bin/env bash
# Runs clang-tidy (profile: repo-root .clang-tidy) over every source file
# under src/. Skips with a notice — and exit code 0 — when clang-tidy is not
# installed, so CI images without LLVM still pass the rest of verify_all.sh.
#
# Usage: tools/lint.sh [build-dir]
#   build-dir: a CMake build tree configured with
#              -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (default: build)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH; skipping static analysis." >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint.sh: ${build_dir}/compile_commands.json missing." >&2
  echo "lint.sh: configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first." >&2
  exit 1
fi

failures=0
while IFS= read -r file; do
  if ! clang-tidy -p "${build_dir}" --quiet "${file}"; then
    failures=$((failures + 1))
  fi
done < <(find "${repo_root}/src" -name '*.cc' | sort)

if [ "${failures}" -ne 0 ]; then
  echo "lint.sh: clang-tidy reported problems in ${failures} file(s)." >&2
  exit 1
fi
echo "lint.sh: clang-tidy clean."
