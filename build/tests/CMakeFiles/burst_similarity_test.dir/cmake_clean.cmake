file(REMOVE_RECURSE
  "CMakeFiles/burst_similarity_test.dir/burst_similarity_test.cc.o"
  "CMakeFiles/burst_similarity_test.dir/burst_similarity_test.cc.o.d"
  "burst_similarity_test"
  "burst_similarity_test.pdb"
  "burst_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burst_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
