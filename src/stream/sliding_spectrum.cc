#include "stream/sliding_spectrum.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <utility>

#include "simd/simd.h"

namespace s2::stream {

Result<SlidingSpectrum> SlidingSpectrum::Create(
    const std::vector<double>& window, std::vector<uint32_t> positions) {
  if (window.empty()) {
    return Status::InvalidArgument("SlidingSpectrum: empty window");
  }
  const uint32_t n = static_cast<uint32_t>(window.size());
  const uint32_t bins = n / 2 + 1;
  if (positions.empty() || positions.size() >= bins) {
    return Status::InvalidArgument(
        "SlidingSpectrum: need between 1 and bins-1 tracked positions");
  }
  for (size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] >= bins) {
      return Status::InvalidArgument("SlidingSpectrum: position out of range");
    }
    if (i > 0 && positions[i] <= positions[i - 1]) {
      return Status::InvalidArgument(
          "SlidingSpectrum: positions must be strictly ascending");
    }
  }

  S2_ASSIGN_OR_RETURN(std::vector<dsp::Complex> spectrum, dsp::ForwardDft(window));
  std::vector<dsp::Complex> raw;
  std::vector<dsp::Complex> twiddles;
  raw.reserve(positions.size());
  twiddles.reserve(positions.size());
  for (uint32_t k : positions) {
    raw.push_back(spectrum[k]);
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(n);
    twiddles.push_back(dsp::Complex(std::cos(angle), std::sin(angle)));
  }
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : window) {
    sum += x;
    sumsq += x * x;
  }
  return SlidingSpectrum(n, std::move(positions), std::move(raw),
                         std::move(twiddles), sum, sumsq);
}

void SlidingSpectrum::Slide(double x_old, double x_new) {
  const double delta = (x_new - x_old) / std::sqrt(static_cast<double>(n_));
  // Vectorized twiddle rotation over the tracked bins. std::complex is
  // layout-compatible with double[2], so the kernel works on the arrays in
  // place; it uses the naive complex product (no Annex-G NaN recovery),
  // the canonical form every simd backend reproduces bit-for-bit.
  simd::SlideComplexBins(reinterpret_cast<double*>(raw_.data()),
                         reinterpret_cast<const double*>(twiddles_.data()),
                         raw_.size(), delta);
  sum_ += x_new - x_old;
  sumsq_ += x_new * x_new - x_old * x_old;
}

double SlidingSpectrum::mean() const { return sum_ / static_cast<double>(n_); }

double SlidingSpectrum::std_dev() const {
  const double mu = mean();
  return std::sqrt(std::max(0.0, sumsq_ / static_cast<double>(n_) - mu * mu));
}

Result<repr::CompressedSpectrum> SlidingSpectrum::ToCompressed() const {
  const double sigma = std_dev();
  std::vector<dsp::Complex> coeffs;
  coeffs.reserve(positions_.size());
  double retained = 0.0;
  for (size_t i = 0; i < positions_.size(); ++i) {
    dsp::Complex z(0.0, 0.0);
    // The standardized spectrum scales every non-DC bin by 1/sigma and
    // zeroes DC (subtracting the mean only touches bin 0). A constant
    // window standardizes to all-zeros, like dsp::Standardize.
    if (positions_[i] != 0 && sigma > 0.0) z = raw_[i] / sigma;
    const double m =
        (positions_[i] == 0 || (n_ % 2 == 0 && positions_[i] == n_ / 2)) ? 1.0
                                                                         : 2.0;
    retained += m * std::norm(z);
    coeffs.push_back(z);
  }
  // Parseval: a standardized window of length N has total energy exactly N
  // (population sigma), so the omitted energy needs no scan of the omitted
  // bins — and stays exact even when the tracked positions are stale.
  const double total = sigma > 0.0 ? static_cast<double>(n_) : 0.0;
  const double error = std::max(0.0, total - retained);
  return repr::CompressedSpectrum::FromParts(
      repr::ReprKind::kBestKError, n_, positions_, std::move(coeffs), error,
      std::numeric_limits<double>::infinity());
}

}  // namespace s2::stream
