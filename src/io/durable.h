#ifndef S2_IO_DURABLE_H_
#define S2_IO_DURABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"

namespace s2::io::durable {

/// The crash-safe generation container every snapshot-style store writes
/// through.
///
/// On-disk layout of a committed file:
///
///   "S2GENF01" | u64 generation | u64 payload_size | u64 fnv1a64 | payload
///
/// where the checksum covers (generation, payload_size, payload). `Commit`
/// writes the container to `<path>.tmp`, fsyncs it, then atomically renames
/// it over `<path>` — so after a crash at any point `<path>` is either the
/// previous complete generation or the new complete generation, never a torn
/// mix. `LoadLatest`/`OpenLatest` validate `<path>` and a left-over
/// `<path>.tmp` and pick the highest checksum-valid generation.
///
/// Legacy compatibility: a file whose first bytes are not the container
/// magic is treated as a generation-0 payload in its entirety. This keeps
/// pre-container images (and the fuzz corpora that mutate raw format bytes)
/// loading through the same code path.

inline constexpr char kGenMagic[8] = {'S', '2', 'G', 'E', 'N', 'F', '0', '1'};
inline constexpr uint64_t kGenHeaderBytes = 32;

/// FNV-1a 64-bit, the container's payload checksum.
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ull);

/// Commits `payload` as generation `generation` of `path`
/// (write-temp -> fsync -> atomic rename).
Status Commit(Env* env, const std::string& path, const void* payload,
              size_t payload_size, uint64_t generation);

/// The generation number currently committed at `path`: 0 when the file is
/// absent or legacy/invalid, the header's generation otherwise.
uint64_t CurrentGeneration(Env* env, const std::string& path);

/// Commits `payload` as `CurrentGeneration(path) + 1`.
Status CommitNext(Env* env, const std::string& path,
                  const std::vector<char>& payload);

/// Loads the payload of the newest valid generation of `path` into `out`
/// (checking `<path>.tmp` as a fallback candidate). `generation_out` (may be
/// null) receives its generation. NotFound when no candidate exists;
/// Corruption when candidates exist but none validates.
Status LoadLatest(Env* env, const std::string& path, std::vector<char>* out,
                  uint64_t* generation_out = nullptr);

/// An open handle onto the newest valid generation, for stores that read
/// records by offset instead of slurping the payload (DiskSequenceStore).
/// Offsets into the payload start at `payload_offset`.
struct OpenInfo {
  std::unique_ptr<File> file;
  uint64_t payload_offset = 0;
  uint64_t payload_size = 0;
  uint64_t generation = 0;
  /// The physical file actually opened: `<path>` normally, `<path>.tmp`
  /// when a crash left the newest committed generation there. Stores that
  /// later reopen their backing file (e.g. for in-place record updates)
  /// must use this, not the logical path.
  std::string resolved_path;
};

/// Opens the newest valid generation of `path` read-only. Validation reads
/// the header and (for container files) verifies the checksum over the full
/// payload once at open.
Result<OpenInfo> OpenLatest(Env* env, const std::string& path);

}  // namespace s2::io::durable

#endif  // S2_IO_DURABLE_H_
