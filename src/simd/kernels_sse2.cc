#include "simd/kernels_inl.h"

// SSE2 is the x86-64 baseline, so this TU needs no special flags; it is
// only added to the build on x86-64 targets.
#if defined(__SSE2__)

namespace s2::simd {

const KernelTable* Sse2Table() {
  static const KernelTable table =
      detail::MakeTable<detail::VecSse2>(Isa::kSse2, "sse2");
  return &table;
}

}  // namespace s2::simd

#else
#error "kernels_sse2.cc requires SSE2 (x86-64 baseline)"
#endif
