#include "burst/burst_similarity.h"

#include <algorithm>
#include <cmath>

namespace s2::burst {

int32_t Overlap(const BurstRegion& a, const BurstRegion& b) {
  const int32_t lo = std::max(a.start, b.start);
  const int32_t hi = std::min(a.end, b.end);
  return std::max(0, hi - lo + 1);
}

double Intersect(const BurstRegion& a, const BurstRegion& b) {
  const double overlap = Overlap(a, b);
  if (overlap == 0.0) return 0.0;
  return 0.5 * (overlap / a.length() + overlap / b.length());
}

double ValueSimilarity(const BurstRegion& a, const BurstRegion& b) {
  return 1.0 / (1.0 + std::abs(a.avg_value - b.avg_value));
}

double BSim(const std::vector<BurstRegion>& x, const std::vector<BurstRegion>& y) {
  double total = 0.0;
  for (const BurstRegion& a : x) {
    for (const BurstRegion& b : y) {
      const double intersect = Intersect(a, b);
      if (intersect == 0.0) continue;
      total += intersect * ValueSimilarity(a, b);
    }
  }
  return total;
}

}  // namespace s2::burst
