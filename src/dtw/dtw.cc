#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "simd/simd.h"

namespace s2::dtw {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

double Sq(double v) { return v * v; }
}  // namespace

Result<double> DtwDistance(const std::vector<double>& a,
                           const std::vector<double>& b, size_t window) {
  return DtwDistanceEarlyAbandon(a, b, window, kInf);
}

Result<double> DtwDistanceEarlyAbandon(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       size_t window, double abandon_after) {
  const double abandon_sq =
      std::isinf(abandon_after) ? kInf : abandon_after * abandon_after;
  S2_ASSIGN_OR_RETURN(double sq,
                      DtwDistanceEarlyAbandonSq(a, b, window, abandon_sq));
  return std::sqrt(sq);
}

Result<double> DtwDistanceEarlyAbandonSq(const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         size_t window, double abandon_sq) {
  if (a.empty() || a.size() != b.size()) {
    return Status::InvalidArgument("DtwDistance: sequences must be equal, non-empty");
  }
  const size_t n = a.size();
  const size_t w = window == 0 ? n : std::max<size_t>(window, 1);

  // Rolling rows of the DP matrix; cells outside the band stay +inf.
  std::vector<double> prev(n, kInf);
  std::vector<double> curr(n, kInf);

  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = i >= w ? i - w : 0;
    const size_t j_hi = std::min(n - 1, i + w);
    double row_min = kInf;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = Sq(a[i] - b[j]);
      double best_prev;
      if (i == 0 && j == 0) {
        best_prev = 0.0;
      } else {
        best_prev = kInf;
        if (i > 0) best_prev = std::min(best_prev, prev[j]);          // Insertion.
        if (j > 0) best_prev = std::min(best_prev, curr[j - 1]);      // Deletion.
        if (i > 0 && j > 0) best_prev = std::min(best_prev, prev[j - 1]);  // Match.
      }
      curr[j] = best_prev == kInf ? kInf : best_prev + cost;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > abandon_sq) {
      // Every continuation can only grow; report a value above the radius.
      return row_min;
    }
    std::swap(prev, curr);
    std::fill(curr.begin(), curr.end(), kInf);
  }
  return prev[n - 1];
}

Result<Envelope> ComputeEnvelope(const std::vector<double>& q, size_t window) {
  if (q.empty()) return Status::InvalidArgument("ComputeEnvelope: empty sequence");
  const size_t n = q.size();
  const size_t w = window == 0 ? n : window;
  Envelope env;
  env.upper.resize(n);
  env.lower.resize(n);

  // Monotonic deques over the sliding window [i-w, i+w].
  std::deque<size_t> max_dq;
  std::deque<size_t> min_dq;
  size_t right = 0;  // First index not yet inserted.
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= w ? i - w : 0;
    const size_t hi = std::min(n - 1, i + w);
    while (right <= hi) {
      while (!max_dq.empty() && q[max_dq.back()] <= q[right]) max_dq.pop_back();
      max_dq.push_back(right);
      while (!min_dq.empty() && q[min_dq.back()] >= q[right]) min_dq.pop_back();
      min_dq.push_back(right);
      ++right;
    }
    while (max_dq.front() < lo) max_dq.pop_front();
    while (min_dq.front() < lo) min_dq.pop_front();
    env.upper[i] = q[max_dq.front()];
    env.lower[i] = q[min_dq.front()];
  }
  return env;
}

Result<double> LbKeogh(const Envelope& query_envelope,
                       const std::vector<double>& candidate,
                       double abandon_after) {
  const double abandon_sq =
      std::isinf(abandon_after) ? kInf : abandon_after * abandon_after;
  S2_ASSIGN_OR_RETURN(double sq,
                      LbKeoghSq(query_envelope, candidate, abandon_sq));
  return std::sqrt(sq);
}

Result<double> LbKeoghSq(const Envelope& query_envelope,
                         const std::vector<double>& candidate,
                         double abandon_sq) {
  const size_t n = candidate.size();
  if (n == 0 || query_envelope.upper.size() != n ||
      query_envelope.lower.size() != n) {
    return Status::InvalidArgument("LbKeogh: shape mismatch");
  }
  return simd::LbKeoghSqAbandon(query_envelope.lower.data(),
                                query_envelope.upper.data(), candidate.data(),
                                n, abandon_sq);
}

}  // namespace s2::dtw
