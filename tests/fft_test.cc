#include "dsp/fft.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"

namespace s2::dsp {
namespace {

constexpr double kTol = 1e-9;

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Normal(0.0, 1.0);
  return x;
}

double MaxAbsDiff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

TEST(FftTest, RejectsEmptyInput) {
  std::vector<Complex> empty;
  EXPECT_EQ(Fft(&empty, FftDirection::kForward).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ForwardDft({}).ok());
  EXPECT_FALSE(InverseDftReal({}).ok());
}

TEST(FftTest, SingleElementIsIdentity) {
  auto spectrum = ForwardDft({3.5});
  ASSERT_TRUE(spectrum.ok());
  EXPECT_NEAR(spectrum->at(0).real(), 3.5, kTol);
  EXPECT_NEAR(spectrum->at(0).imag(), 0.0, kTol);
}

TEST(FftTest, MatchesDirectDftPowerOfTwo) {
  const std::vector<double> x = RandomSeries(64, 1);
  auto fast = ForwardDft(x);
  ASSERT_TRUE(fast.ok());
  const std::vector<Complex> direct = ForwardDftDirect(x);
  EXPECT_LT(MaxAbsDiff(*fast, direct), 1e-8);
}

TEST(FftTest, MatchesDirectDftNonPowerOfTwo) {
  for (size_t n : {3u, 5u, 12u, 17u, 100u, 365u}) {
    const std::vector<double> x = RandomSeries(n, 2 + n);
    auto fast = ForwardDft(x);
    ASSERT_TRUE(fast.ok()) << n;
    const std::vector<Complex> direct = ForwardDftDirect(x);
    EXPECT_LT(MaxAbsDiff(*fast, direct), 1e-7) << "length " << n;
  }
}

TEST(FftTest, RoundTripRecoversSignal) {
  for (size_t n : {8u, 365u, 1024u, 1000u}) {
    const std::vector<double> x = RandomSeries(n, 77 + n);
    auto spectrum = ForwardDft(x);
    ASSERT_TRUE(spectrum.ok());
    auto back = InverseDftReal(*spectrum);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back->at(i), x[i], 1e-8) << "length " << n << " index " << i;
    }
  }
}

TEST(FftTest, ParsevalEnergyPreserved) {
  // The normalized transform is unitary: time-domain energy == spectral energy.
  for (size_t n : {16u, 365u, 1024u}) {
    const std::vector<double> x = RandomSeries(n, 5 + n);
    auto spectrum = ForwardDft(x);
    ASSERT_TRUE(spectrum.ok());
    double spectral = 0.0;
    for (const Complex& c : *spectrum) spectral += std::norm(c);
    EXPECT_NEAR(spectral, Energy(x), 1e-6 * Energy(x));
  }
}

TEST(FftTest, ConjugateSymmetryForRealInput) {
  const size_t n = 128;
  const std::vector<double> x = RandomSeries(n, 9);
  auto spectrum = ForwardDft(x);
  ASSERT_TRUE(spectrum.ok());
  for (size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(std::abs((*spectrum)[k] - std::conj((*spectrum)[n - k])), 0.0, 1e-9);
  }
  // DC and Nyquist bins are real.
  EXPECT_NEAR((*spectrum)[0].imag(), 0.0, kTol);
  EXPECT_NEAR((*spectrum)[n / 2].imag(), 0.0, 1e-9);
}

TEST(FftTest, PureSinusoidConcentratesInOneBin) {
  const size_t n = 256;
  const size_t cycles = 16;
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(cycles) *
                    static_cast<double>(i) / static_cast<double>(n));
  }
  auto spectrum = ForwardDft(x);
  ASSERT_TRUE(spectrum.ok());
  // All energy should land in bins `cycles` and `n - cycles`.
  for (size_t k = 0; k < n; ++k) {
    const double mag = std::abs((*spectrum)[k]);
    if (k == cycles || k == n - cycles) {
      EXPECT_GT(mag, 1.0);
    } else {
      EXPECT_LT(mag, 1e-9) << "bin " << k;
    }
  }
}

TEST(FftTest, LinearityOfTransform) {
  const size_t n = 200;  // Exercises the Bluestein path.
  const std::vector<double> a = RandomSeries(n, 31);
  const std::vector<double> b = RandomSeries(n, 32);
  std::vector<double> combo(n);
  for (size_t i = 0; i < n; ++i) combo[i] = 2.0 * a[i] - 3.0 * b[i];
  auto fa = ForwardDft(a);
  auto fb = ForwardDft(b);
  auto fc = ForwardDft(combo);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(fc.ok());
  for (size_t k = 0; k < n; ++k) {
    const Complex expected = 2.0 * (*fa)[k] - 3.0 * (*fb)[k];
    EXPECT_NEAR(std::abs((*fc)[k] - expected), 0.0, 1e-8);
  }
}

TEST(FftTest, IsPowerOfTwoHelper) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1000));
}

}  // namespace
}  // namespace s2::dsp
