# Empty dependencies file for disk_burst_table_test.
# This may be replaced when dependencies are built.
