#ifndef S2_STORAGE_BPTREE_H_
#define S2_STORAGE_BPTREE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "diag/validate.h"

namespace s2::storage {

struct BPlusTreeTestPeer;  // Grants tests access for corruption injection.

/// An in-memory B+-tree with multimap semantics.
///
/// This is the index structure the paper's burst store relies on ("This
/// procedure is extremely efficient, if we create an index (basically a
/// B-tree) on the startDate and endDate attributes", Section 6.3). Values
/// live only in the leaves; leaves are forward-chained so range scans are a
/// single descent plus a linked-list walk.
///
/// * Duplicate keys are allowed (multimap semantics).
/// * `Order` is the maximum number of keys per node; nodes split at
///   `Order` and rebalance (borrow/merge) below `Order / 2`.
/// * Not thread-safe; external synchronization is required for concurrent
///   mutation.
///
/// `Key` must be totally ordered by `<`; `Value` must be copyable.
template <typename Key, typename Value, size_t Order = 64>
class BPlusTree {
  static_assert(Order >= 4, "BPlusTree requires Order >= 4");

 public:
  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept = default;
  BPlusTree& operator=(BPlusTree&&) noexcept = default;

  /// Inserts a (key, value) pair. Duplicate keys are kept; equal keys are
  /// stored adjacently in insertion-independent (key-sorted) order.
  void Insert(const Key& key, const Value& value) {
    SplitResult split = InsertInto(root_.get(), key, value);
    if (split.happened) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(split.separator);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.right));
      root_ = std::move(new_root);
    }
    ++size_;
  }

  /// Erases one pair matching (key, value). Returns true if a pair was
  /// removed. With duplicate keys, exactly one matching occurrence goes.
  bool Erase(const Key& key, const Value& value) {
    if (!EraseFrom(root_.get(), key, value)) return false;
    // Collapse a root that lost its last separator.
    if (!root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children.front());
    }
    --size_;
    return true;
  }

  /// Number of stored pairs.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True iff at least one pair has exactly this key.
  bool Contains(const Key& key) const {
    bool found = false;
    Scan(key, key, [&found](const Key&, const Value&) {
      found = true;
      return false;  // Stop at the first hit.
    });
    return found;
  }

  /// Number of pairs with exactly this key.
  size_t Count(const Key& key) const {
    size_t n = 0;
    Scan(key, key, [&n](const Key&, const Value&) {
      ++n;
      return true;
    });
    return n;
  }

  /// Visits all pairs with `lo <= key <= hi` in key order.
  /// `fn(key, value)` returns false to stop early.
  template <typename Fn>
  void Scan(const Key& lo, const Key& hi, Fn&& fn) const {
    const Node* leaf = DescendToLeaf(lo);
    size_t idx = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
        leaf->keys.begin());
    while (leaf != nullptr) {
      for (; idx < leaf->keys.size(); ++idx) {
        if (hi < leaf->keys[idx]) return;
        if (!fn(leaf->keys[idx], leaf->values[idx])) return;
      }
      leaf = leaf->next;
      idx = 0;
    }
  }

  /// Visits all pairs with `key >= lo` in key order.
  template <typename Fn>
  void ScanFrom(const Key& lo, Fn&& fn) const {
    const Node* leaf = DescendToLeaf(lo);
    size_t idx = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
        leaf->keys.begin());
    while (leaf != nullptr) {
      for (; idx < leaf->keys.size(); ++idx) {
        if (!fn(leaf->keys[idx], leaf->values[idx])) return;
      }
      leaf = leaf->next;
      idx = 0;
    }
  }

  /// Visits every pair in key order.
  template <typename Fn>
  void ScanAll(Fn&& fn) const {
    const Node* leaf = LeftmostLeaf();
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        if (!fn(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  /// Tree height (1 for a lone leaf). For diagnostics and tests.
  size_t Height() const {
    size_t h = 1;
    const Node* node = root_.get();
    while (!node->leaf) {
      node = node->children.front().get();
      ++h;
    }
    return h;
  }

  /// Validates all structural invariants (sortedness, fill factors,
  /// separator consistency, leaf chaining) and reports every violation with
  /// the path of the offending node, e.g.
  /// `Corruption: BPlusTree: root.child[1]: keys not sorted`.
  Status Validate() const {
    diag::Validator v("BPlusTree");
    const Key* prev_leaf_key = nullptr;
    const Node* expected_next = nullptr;
    ValidateNode(root_.get(), /*is_root=*/true, nullptr, nullptr,
                 &prev_leaf_key, &expected_next, "root", &v);
    v.Check(expected_next == nullptr) << "leaf chain does not terminate";
    const size_t pairs = CountPairs(root_.get());
    v.Check(pairs == size_)
        << "stored pair count " << pairs << " != size() " << size_;
    return v.ToStatus();
  }

  /// Boolean convenience wrapper around `Validate()` (kept for existing
  /// call sites and quick asserts).
  bool CheckInvariants() const { return Validate().ok(); }

 private:
  friend struct BPlusTreeTestPeer;
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    // Leaf payloads; empty for internal nodes.
    std::vector<Value> values;
    // Children of internal nodes; empty for leaves. children.size() ==
    // keys.size() + 1. All keys in children[i] are <= keys[i] (duplicates of
    // a separator may live on its left), and all keys in children[i+1] are
    // >= keys[i].
    std::vector<std::unique_ptr<Node>> children;
    // Leaf chain.
    Node* next = nullptr;
  };

  struct SplitResult {
    bool happened = false;
    Key separator{};
    std::unique_ptr<Node> right;
  };

  // Minimum keys in a non-root node. (Order-1)/2 guarantees that merging an
  // underflowed node with a minimally-filled sibling (plus, for internal
  // nodes, the separator pulled down from the parent) never exceeds the
  // Order-1 post-split maximum.
  static constexpr size_t kMinKeys = (Order - 1) / 2;

  const Node* LeftmostLeaf() const {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children.front().get();
    return node;
  }

  // Finds the leftmost leaf that can contain keys >= lo.
  const Node* DescendToLeaf(const Key& lo) const {
    const Node* node = root_.get();
    while (!node->leaf) {
      const size_t idx = static_cast<size_t>(
          std::lower_bound(node->keys.begin(), node->keys.end(), lo) -
          node->keys.begin());
      node = node->children[idx].get();
    }
    return node;
  }

  SplitResult InsertInto(Node* node, const Key& key, const Value& value) {
    if (node->leaf) {
      const size_t pos = static_cast<size_t>(
          std::upper_bound(node->keys.begin(), node->keys.end(), key) -
          node->keys.begin());
      node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(pos), key);
      node->values.insert(node->values.begin() + static_cast<ptrdiff_t>(pos), value);
      return MaybeSplit(node);
    }
    const size_t idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    SplitResult child_split = InsertInto(node->children[idx].get(), key, value);
    if (child_split.happened) {
      node->keys.insert(node->keys.begin() + static_cast<ptrdiff_t>(idx),
                        child_split.separator);
      node->children.insert(node->children.begin() + static_cast<ptrdiff_t>(idx) + 1,
                            std::move(child_split.right));
    }
    return MaybeSplit(node);
  }

  SplitResult MaybeSplit(Node* node) {
    SplitResult result;
    if (node->keys.size() < Order) return result;

    const size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>(node->leaf);
    if (node->leaf) {
      right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid),
                         node->keys.end());
      right->values.assign(node->values.begin() + static_cast<ptrdiff_t>(mid),
                           node->values.end());
      node->keys.resize(mid);
      node->values.resize(mid);
      right->next = node->next;
      node->next = right.get();
      result.separator = right->keys.front();
    } else {
      // The middle key moves up; it does not stay in either half.
      result.separator = node->keys[mid];
      right->keys.assign(node->keys.begin() + static_cast<ptrdiff_t>(mid) + 1,
                         node->keys.end());
      right->children.reserve(node->children.size() - mid - 1);
      for (size_t i = mid + 1; i < node->children.size(); ++i) {
        right->children.push_back(std::move(node->children[i]));
      }
      node->keys.resize(mid);
      node->children.resize(mid + 1);
    }
    result.happened = true;
    result.right = std::move(right);
    return result;
  }

  bool EraseFrom(Node* node, const Key& key, const Value& value) {
    if (node->leaf) {
      // Duplicates of `key` sit in a contiguous run; remove the first pair
      // whose value matches.
      auto first = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      for (auto it = first; it != node->keys.end() && !(key < *it); ++it) {
        const size_t i = static_cast<size_t>(it - node->keys.begin());
        if (node->values[i] == value) {
          node->keys.erase(it);
          node->values.erase(node->values.begin() + static_cast<ptrdiff_t>(i));
          return true;
        }
      }
      return false;
    }
    // Duplicates of `key` may straddle several children: try each child that
    // could contain the key, from the first candidate to the last.
    const size_t first_idx = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    const size_t last_idx = static_cast<size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    for (size_t idx = first_idx; idx <= last_idx; ++idx) {
      if (EraseFrom(node->children[idx].get(), key, value)) {
        RebalanceChild(node, idx);
        return true;
      }
    }
    return false;
  }

  void RebalanceChild(Node* parent, size_t idx) {
    Node* child = parent->children[idx].get();
    if (child->keys.size() >= kMinKeys) return;
    // A leaf root may legitimately hold fewer than kMinKeys; handled by the
    // caller (root collapse).

    Node* left = idx > 0 ? parent->children[idx - 1].get() : nullptr;
    Node* right = idx + 1 < parent->children.size() ? parent->children[idx + 1].get()
                                                    : nullptr;

    if (left != nullptr && left->keys.size() > kMinKeys) {
      BorrowFromLeft(parent, idx, left, child);
      return;
    }
    if (right != nullptr && right->keys.size() > kMinKeys) {
      BorrowFromRight(parent, idx, child, right);
      return;
    }
    if (left != nullptr) {
      MergeChildren(parent, idx - 1);
    } else if (right != nullptr) {
      MergeChildren(parent, idx);
    }
  }

  void BorrowFromLeft(Node* parent, size_t idx, Node* left, Node* child) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(), left->values.back());
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[idx - 1] = child->keys.front();
    } else {
      // Rotate through the separator.
      child->keys.insert(child->keys.begin(), parent->keys[idx - 1]);
      parent->keys[idx - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
  }

  void BorrowFromRight(Node* parent, size_t idx, Node* child, Node* right) {
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(right->values.front());
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[idx] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[idx]);
      parent->keys[idx] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
  }

  // Merges children[i+1] into children[i] and drops separator keys[i].
  void MergeChildren(Node* parent, size_t i) {
    Node* left = parent->children[i].get();
    Node* right = parent->children[i + 1].get();
    if (left->leaf) {
      left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
      left->values.insert(left->values.end(), right->values.begin(),
                          right->values.end());
      left->next = right->next;
    } else {
      left->keys.push_back(parent->keys[i]);
      left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
      for (auto& grandchild : right->children) {
        left->children.push_back(std::move(grandchild));
      }
    }
    parent->keys.erase(parent->keys.begin() + static_cast<ptrdiff_t>(i));
    parent->children.erase(parent->children.begin() + static_cast<ptrdiff_t>(i) + 1);
  }

  size_t CountPairs(const Node* node) const {
    if (node->leaf) return node->keys.size();
    size_t total = 0;
    for (const auto& child : node->children) total += CountPairs(child.get());
    return total;
  }

  void ValidateNode(const Node* node, bool is_root, const Key* lower,
                    const Key* upper, const Key** prev_leaf_key,
                    const Node** expected_next, const std::string& path,
                    diag::Validator* v) const {
    v->Check(std::is_sorted(node->keys.begin(), node->keys.end()))
        << path << ": keys not sorted";
    v->Check(node->keys.size() <= Order - 1)
        << path << ": overfull node (" << node->keys.size() << " keys, max "
        << Order - 1 << ")";
    v->Check(is_root || node->keys.size() >= kMinKeys)
        << path << ": underfull node (" << node->keys.size() << " keys, min "
        << kMinKeys << ")";
    // Bound checks: every key must respect the separator window.
    for (size_t i = 0; i < node->keys.size(); ++i) {
      const Key& k = node->keys[i];
      v->Check(lower == nullptr || !(k < *lower))
          << path << " slot " << i << ": key below the separator window";
      v->Check(upper == nullptr || !(*upper < k))
          << path << " slot " << i << ": key above the separator window";
    }
    if (node->leaf) {
      v->Check(node->values.size() == node->keys.size())
          << path << ": leaf has " << node->keys.size() << " keys but "
          << node->values.size() << " values";
      // Global leaf-key ordering via the chain.
      for (const Key& k : node->keys) {
        v->Check(*prev_leaf_key == nullptr || !(k < **prev_leaf_key))
            << path << ": leaf chain order violated";
        *prev_leaf_key = &k;
      }
      v->Check(*expected_next == nullptr || node == *expected_next)
          << path << ": leaf chain skips or revisits a leaf";
      *expected_next = node->next;
      return;
    }
    if (node->children.size() != node->keys.size() + 1) {
      v->AddViolation(path + ": internal fanout mismatch (" +
                      std::to_string(node->keys.size()) + " keys, " +
                      std::to_string(node->children.size()) + " children)");
      return;  // Child windows are meaningless; do not descend.
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      const Key* lo = i == 0 ? lower : &node->keys[i - 1];
      const Key* hi = i == node->keys.size() ? upper : &node->keys[i];
      ValidateNode(node->children[i].get(), false, lo, hi, prev_leaf_key,
                   expected_next, path + ".child[" + std::to_string(i) + "]",
                   v);
    }
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace s2::storage

#endif  // S2_STORAGE_BPTREE_H_
