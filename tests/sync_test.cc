#include "base/sync.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_annotations.h"
#include "diag/check.h"

namespace s2::sync {
namespace {

using diag::CheckFailure;
using diag::CheckFailureHandler;
using diag::SetCheckFailureHandler;

// The handler API is a plain function pointer, so captures go through a
// global (same pattern as diag_test.cc). The rank checker only invokes the
// handler on a violation, so single-threaded tests and violation-free
// multi-threaded tests never race on it.
std::vector<CheckFailure>* g_failures = nullptr;

void CaptureFailure(const CheckFailure& failure) {
  g_failures->push_back(failure);
}

// The rank checker's call sites are compiled out in release builds, so
// held-depth expectations scale to zero there (the violation expectations
// are gated the same way below).
#if S2_DIAG_DCHECK_IS_ON
constexpr std::size_t kHeld = 1;
#else
constexpr std::size_t kHeld = 0;
#endif

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_failures = &failures_;
    previous_ = SetCheckFailureHandler(&CaptureFailure);
  }
  void TearDown() override {
    SetCheckFailureHandler(previous_);
    g_failures = nullptr;
  }
  std::vector<CheckFailure> failures_;
  CheckFailureHandler previous_ = nullptr;
};

// ---------------------------------------------------------------------------
// Positive: the documented hierarchy acquires cleanly.

TEST_F(SyncTest, DocumentedRankOrderAcquiresCleanly) {
  // The longest real chain in the codebase: engine -> thread pool (append
  // path scheduling compaction), engine -> retry jitter -> fault env ->
  // mem env (retried disk read under fault injection).
  SharedMutex engine(LockRank::kEngineState, "test::engine");
  Mutex pool(LockRank::kThreadPool, "test::pool");
  Mutex jitter(LockRank::kRetryJitter, "test::jitter");
  Mutex fault(LockRank::kFaultEnv, "test::fault");
  Mutex mem(LockRank::kMemEnv, "test::mem");

  {
    WriterMutexLock hold_engine(&engine);
    {
      MutexLock hold_pool(&pool);
    }
    MutexLock hold_jitter(&jitter);
    MutexLock hold_fault(&fault);
    MutexLock hold_mem(&mem);
    EXPECT_EQ(internal::HeldLockDepth(), 4 * kHeld);
  }
  EXPECT_EQ(internal::HeldLockDepth(), 0u);
  EXPECT_TRUE(failures_.empty());
}

TEST_F(SyncTest, SharedAcquisitionParticipatesInRanking) {
  SharedMutex engine(LockRank::kEngineState, "test::engine");
  Mutex mem(LockRank::kMemEnv, "test::mem");
  {
    ReaderMutexLock read_engine(&engine);
    MutexLock hold_mem(&mem);
    EXPECT_EQ(internal::HeldLockDepth(), 2 * kHeld);
  }
  EXPECT_EQ(internal::HeldLockDepth(), 0u);
  EXPECT_TRUE(failures_.empty());
}

TEST_F(SyncTest, NonLifoReleaseKeepsStackConsistent) {
  Mutex a(LockRank::kEngineState, "test::a");
  Mutex b(LockRank::kThreadPool, "test::b");
  Mutex c(LockRank::kRetryJitter, "test::c");
  a.Lock();
  b.Lock();
  a.Unlock();  // Released out of order: the checker must drop the right entry.
  c.Lock();    // 300 > 200 (b, now the top): legal.
  EXPECT_EQ(internal::HeldLockDepth(), 2 * kHeld);
  c.Unlock();
  b.Unlock();
  EXPECT_EQ(internal::HeldLockDepth(), 0u);
  EXPECT_TRUE(failures_.empty());
}

TEST_F(SyncTest, TryLockTracksOnlySuccessfulAcquisitions) {
  Mutex mu(LockRank::kMemEnv, "test::try");
  ASSERT_TRUE(mu.TryLock());
  EXPECT_EQ(internal::HeldLockDepth(), kHeld);
  // A second owner cannot take it; its failed try must not touch the stack.
  std::thread contender([&mu] {
    EXPECT_FALSE(mu.TryLock());
    EXPECT_EQ(internal::HeldLockDepth(), 0u);  // This thread holds nothing.
  });
  contender.join();
  mu.Unlock();
  EXPECT_EQ(internal::HeldLockDepth(), 0u);
  EXPECT_TRUE(failures_.empty());
}

// ---------------------------------------------------------------------------
// Negative: seeding an inverted acquisition. With the checker compiled in
// (debug/sanitizer builds) the structured CheckFailure fires and names both
// lock sites; with it compiled out (release) the same inversion goes
// unreported — which is exactly the gap the checker exists to close.

TEST_F(SyncTest, InvertedAcquisitionReportsBothLockSites) {
  Mutex mem(LockRank::kMemEnv, "test::mem");
  Mutex fault(LockRank::kFaultEnv, "test::fault");
  mem.Lock();
  fault.Lock();  // 400 after 500: inverted.
  fault.Unlock();
  mem.Unlock();
#if S2_DIAG_DCHECK_IS_ON
  ASSERT_EQ(failures_.size(), 1u);
  const CheckFailure& failure = failures_[0];
  EXPECT_TRUE(failure.is_dcheck);
  EXPECT_EQ(std::string(failure.condition), "lock rank strictly increases");
  // Both sites: the acquiring lock and the already-held lock, with names,
  // ranks, and file:line (this file captured via __builtin_FILE()).
  EXPECT_NE(failure.message.find("test::fault"), std::string::npos);
  EXPECT_NE(failure.message.find("test::mem"), std::string::npos);
  EXPECT_NE(failure.message.find("400"), std::string::npos);
  EXPECT_NE(failure.message.find("500"), std::string::npos);
  EXPECT_NE(failure.message.find("sync_test.cc"), std::string::npos);
  EXPECT_NE(std::string(failure.location.file).find("sync_test.cc"),
            std::string::npos);
#else
  // Release: the checker is compiled out; the inversion runs silently.
  EXPECT_TRUE(failures_.empty());
#endif
  EXPECT_EQ(internal::HeldLockDepth(), 0u);
}

TEST_F(SyncTest, EqualRankAcquisitionIsAlsoAViolation) {
  // Two locks of the same rank may never nest: "strictly increase" is what
  // makes the hierarchy cycle-free even within one rank.
  Mutex a(LockRank::kAlertQueue, "test::queue_a");
  Mutex b(LockRank::kAlertQueue, "test::queue_b");
  a.Lock();
  b.Lock();
  b.Unlock();
  a.Unlock();
#if S2_DIAG_DCHECK_IS_ON
  ASSERT_EQ(failures_.size(), 1u);
  EXPECT_NE(failures_[0].message.find("test::queue_b"), std::string::npos);
#else
  EXPECT_TRUE(failures_.empty());
#endif
}

TEST_F(SyncTest, RankStateIsPerThread) {
  // A lock held on this thread must not constrain another thread.
  Mutex outer(LockRank::kMemEnv, "test::outer");
  outer.Lock();
  std::thread other([] {
    Mutex inner(LockRank::kEngineState, "test::inner");
    MutexLock hold(&inner);  // 100 with an empty stack on THIS thread: fine.
    EXPECT_EQ(internal::HeldLockDepth(), kHeld);
  });
  other.join();
  outer.Unlock();
  EXPECT_TRUE(failures_.empty());
}

// ---------------------------------------------------------------------------
// CondVar: the ThreadPool-style inline-predicate wait loop, exercised
// across real threads (the monitor/sharding verify profiles run this file
// under TSan).

TEST_F(SyncTest, CondVarHandoffAcrossThreads) {
  Mutex mu(LockRank::kThreadPool, "test::cv");
  CondVar cv;
  int stage = 0;  // Guarded by mu (runtime-checked here; this is a test).

  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (stage == 0) cv.Wait(&mu);
    EXPECT_EQ(stage, 1);
    stage = 2;
    cv.NotifyAll();
  });

  {
    MutexLock lock(&mu);
    stage = 1;
    cv.NotifyAll();
    while (stage != 2) cv.Wait(&mu);
  }
  consumer.join();
  EXPECT_EQ(internal::HeldLockDepth(), 0u);
  EXPECT_TRUE(failures_.empty());
}

TEST_F(SyncTest, DocumentedOrderIsCleanUnderConcurrency) {
  // Many threads walking the documented hierarchy concurrently: no rank
  // report may fire, and under TSan no race may surface in the checker's
  // thread-local bookkeeping.
  SharedMutex engine(LockRank::kEngineState, "test::engine");
  Mutex pool(LockRank::kThreadPool, "test::pool");
  Mutex mem(LockRank::kMemEnv, "test::mem");

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        if ((i + t) % 2 == 0) {
          ReaderMutexLock read_engine(&engine);
          MutexLock hold_mem(&mem);
        } else {
          WriterMutexLock write_engine(&engine);
          MutexLock hold_pool(&pool);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(internal::HeldLockDepth(), 0u);
  EXPECT_TRUE(failures_.empty());
}

}  // namespace
}  // namespace s2::sync
