file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vp.dir/bench_ablation_vp.cc.o"
  "CMakeFiles/bench_ablation_vp.dir/bench_ablation_vp.cc.o.d"
  "bench_ablation_vp"
  "bench_ablation_vp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
