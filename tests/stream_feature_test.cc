// Incremental feature maintenance vs. batch recomputation: the sliding-DFT
// state (stream::SlidingSpectrum) and the online burst detector
// (stream::BurstStream) must track their batch counterparts within the
// documented fp-drift tolerances across long slide sequences.

#include <cmath>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "burst/burst_detector.h"
#include "common/rng.h"
#include "dsp/stats.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"
#include "stream/burst_stream.h"
#include "stream/sliding_spectrum.h"

namespace s2::stream {
namespace {

// Batch-vs-incremental agreement bound. The incremental state accumulates
// rounding in its running sums and coefficient recurrences; over a few
// hundred slides of O(1..100) values the drift stays far below this.
constexpr double kDriftTolerance = 1e-6;

std::vector<double> SeasonalWindow(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (size_t t = 0; t < n; ++t) {
    x[t] = 10.0 + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 16.0) +
           2.0 * std::cos(2.0 * M_PI * static_cast<double>(t) / 5.0) +
           rng.Normal(0.0, 0.5);
  }
  return x;
}

double NextSample(size_t step, Rng* rng) {
  double v = 10.0 + 4.0 * std::sin(2.0 * M_PI * static_cast<double>(step) / 16.0) +
             rng->Normal(0.0, 0.5);
  // Occasional spikes keep the burst detector busy.
  if (step % 37 == 0) v += 15.0;
  return v;
}

TEST(SlidingSpectrumTest, CreateValidatesPositions) {
  const std::vector<double> window = SeasonalWindow(64, 1);
  EXPECT_FALSE(SlidingSpectrum::Create(window, {}).ok());
  EXPECT_FALSE(SlidingSpectrum::Create(window, {0, 40}).ok());  // >= n/2+1 bins.
  EXPECT_FALSE(SlidingSpectrum::Create(window, {5, 3}).ok());   // Not ascending.
  std::vector<uint32_t> all(33);
  for (uint32_t i = 0; i < 33; ++i) all[i] = i;
  EXPECT_FALSE(SlidingSpectrum::Create(window, all).ok());  // Tracks every bin.
  EXPECT_TRUE(SlidingSpectrum::Create(window, {0, 4, 13}).ok());
}

TEST(SlidingSpectrumTest, TracksBatchCoefficientsAcrossManySlides) {
  const size_t n = 128;
  std::deque<double> window;
  for (double v : SeasonalWindow(n, 7)) window.push_back(v);

  // Track the window's genuine best-8 positions (from a batch compress).
  const std::vector<double> z0 =
      dsp::Standardize(std::vector<double>(window.begin(), window.end()));
  auto spectrum0 = repr::HalfSpectrum::FromSeries(z0);
  ASSERT_TRUE(spectrum0.ok());
  auto best = repr::CompressedSpectrum::Compress(*spectrum0,
                                                 repr::ReprKind::kBestKError, 8);
  ASSERT_TRUE(best.ok());

  auto sliding = SlidingSpectrum::Create(
      std::vector<double>(window.begin(), window.end()), best->positions());
  ASSERT_TRUE(sliding.ok());

  Rng rng(8);
  for (size_t step = 0; step < 300; ++step) {
    const double x_new = NextSample(step, &rng);
    sliding->Slide(window.front(), x_new);
    window.pop_front();
    window.push_back(x_new);

    if (step % 50 != 49) continue;
    // Batch reference over the current window.
    const std::vector<double> raw(window.begin(), window.end());
    const std::vector<double> z = dsp::Standardize(raw);
    auto batch = repr::HalfSpectrum::FromSeries(z);
    ASSERT_TRUE(batch.ok());

    EXPECT_NEAR(sliding->mean(), dsp::Mean(raw), kDriftTolerance);
    EXPECT_NEAR(sliding->std_dev(), dsp::StdDev(raw), kDriftTolerance);

    auto compressed = sliding->ToCompressed();
    ASSERT_TRUE(compressed.ok());
    ASSERT_EQ(compressed->positions(), best->positions());
    double retained = 0.0;
    for (size_t i = 0; i < compressed->positions().size(); ++i) {
      const uint32_t k = compressed->positions()[i];
      // Standardized coefficient: the DFT is linear and the mean shift only
      // lands in DC, so Z_k = X_k / sigma for k > 0 and Z_0 = 0.
      const dsp::Complex want =
          k == 0 ? dsp::Complex{0.0, 0.0} : batch->coeff(k);
      EXPECT_NEAR(compressed->coeffs()[i].real(), want.real(), kDriftTolerance)
          << "bin " << k << " after slide " << step;
      EXPECT_NEAR(compressed->coeffs()[i].imag(), want.imag(), kDriftTolerance)
          << "bin " << k << " after slide " << step;
      retained += batch->multiplicity(k) * std::norm(batch->coeff(k));
    }
    // Parseval-derived omitted energy stays exact-ish even though the
    // tracked positions were frozen 'step' slides ago.
    EXPECT_NEAR(compressed->error(), batch->Energy() - retained,
                kDriftTolerance * static_cast<double>(n));
    // A frozen position set cannot bound omitted bins.
    EXPECT_TRUE(std::isinf(compressed->min_power()));
  }
}

TEST(SlidingSpectrumTest, ConstantWindowStandardizesToZeros) {
  std::vector<double> window(64, 3.0);
  auto sliding = SlidingSpectrum::Create(window, {1, 2, 3});
  ASSERT_TRUE(sliding.ok());
  for (int i = 0; i < 70; ++i) sliding->Slide(3.0, 3.0);
  auto compressed = sliding->ToCompressed();
  ASSERT_TRUE(compressed.ok());
  for (const dsp::Complex& c : compressed->coeffs()) {
    EXPECT_NEAR(std::abs(c), 0.0, kDriftTolerance);
  }
  EXPECT_NEAR(compressed->error(), 0.0, kDriftTolerance);
}

TEST(BurstStreamTest, CreateRequiresAFullWindow) {
  burst::BurstDetector::Options options;
  options.window = 30;
  EXPECT_FALSE(BurstStream::Create(options, std::vector<double>(10, 1.0)).ok());
  EXPECT_TRUE(BurstStream::Create(options, std::vector<double>(30, 1.0)).ok());
}

TEST(BurstStreamTest, MatchesBatchDetectorAcrossManySlides) {
  for (const size_t ma_window : {7u, 30u}) {
    burst::BurstDetector::Options options;
    options.window = ma_window;
    options.cutoff_stds = 1.5;
    options.standardize = true;
    options.min_avg_value = 0.5;
    options.min_length = 2;
    const burst::BurstDetector batch(options);

    std::deque<double> window;
    for (double v : SeasonalWindow(256, 21)) window.push_back(v);
    auto stream = BurstStream::Create(
        options, std::vector<double>(window.begin(), window.end()));
    ASSERT_TRUE(stream.ok());

    Rng rng(22);
    for (size_t step = 0; step < 300; ++step) {
      const double x_new = NextSample(step, &rng);
      stream->Slide(x_new);
      window.pop_front();
      window.push_back(x_new);

      if (step % 10 != 9) continue;
      auto want =
          batch.Detect(std::vector<double>(window.begin(), window.end()));
      ASSERT_TRUE(want.ok());
      const std::vector<burst::BurstRegion> got = stream->Regions();
      ASSERT_EQ(got.size(), want->size())
          << "ma_window " << ma_window << " after slide " << step;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].start, (*want)[i].start);
        EXPECT_EQ(got[i].end, (*want)[i].end);
        EXPECT_NEAR(got[i].avg_value, (*want)[i].avg_value, kDriftTolerance);
      }
    }
  }
}

TEST(BurstStreamTest, ConstantWindowHasNoBursts) {
  burst::BurstDetector::Options options;
  options.window = 7;
  auto stream = BurstStream::Create(options, std::vector<double>(64, 5.0));
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 80; ++i) stream->Slide(5.0);
  EXPECT_TRUE(stream->Regions().empty());
}

TEST(BurstStreamTest, UnstandardizedModeAlsoMatchesBatch) {
  burst::BurstDetector::Options options;
  options.window = 7;
  options.standardize = false;
  options.min_avg_value = 0.0;
  options.min_length = 1;
  const burst::BurstDetector batch(options);

  std::deque<double> window;
  for (double v : SeasonalWindow(128, 31)) window.push_back(v);
  auto stream = BurstStream::Create(
      options, std::vector<double>(window.begin(), window.end()));
  ASSERT_TRUE(stream.ok());

  Rng rng(32);
  for (size_t step = 0; step < 150; ++step) {
    const double x_new = NextSample(step, &rng);
    stream->Slide(x_new);
    window.pop_front();
    window.push_back(x_new);
  }
  auto want = batch.Detect(std::vector<double>(window.begin(), window.end()));
  ASSERT_TRUE(want.ok());
  const std::vector<burst::BurstRegion> got = stream->Regions();
  ASSERT_EQ(got.size(), want->size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start, (*want)[i].start);
    EXPECT_EQ(got[i].end, (*want)[i].end);
    EXPECT_NEAR(got[i].avg_value, (*want)[i].avg_value, kDriftTolerance);
  }
}

}  // namespace
}  // namespace s2::stream
