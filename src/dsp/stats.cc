#include "dsp/stats.h"

#include <cmath>

#include "simd/simd.h"

namespace s2::dsp {

double Mean(const double* x, size_t n) {
  if (n == 0) return 0.0;
  return simd::Sum(x, n) / static_cast<double>(n);
}

double Mean(const std::vector<double>& x) { return Mean(x.data(), x.size()); }

double Variance(const double* x, size_t n) {
  if (n < 2) return 0.0;
  const double mean = Mean(x, n);
  return simd::CenteredSumSq(x, n, mean) / static_cast<double>(n);
}

double Variance(const std::vector<double>& x) {
  return Variance(x.data(), x.size());
}

double StdDev(const double* x, size_t n) { return std::sqrt(Variance(x, n)); }

double StdDev(const std::vector<double>& x) { return StdDev(x.data(), x.size()); }

double Energy(const std::vector<double>& x) {
  return simd::SumSq(x.data(), x.size());
}

double MeanPower(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return Energy(x) / static_cast<double>(x.size());
}

void StandardizeInto(const double* x, size_t n, double* out) {
  const double stddev = StdDev(x, n);
  if (stddev == 0.0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0.0;
    return;
  }
  const double mean = Mean(x, n);
  simd::Standardize(x, n, mean, stddev, out);
}

std::vector<double> Standardize(const std::vector<double>& x) {
  std::vector<double> out(x.size(), 0.0);
  StandardizeInto(x.data(), x.size(), out.data());
  return out;
}

double SquaredEuclidean(const double* a, const double* b, size_t n) {
  return simd::SumSqDiff(a, b, n);
}

Result<double> SquaredEuclidean(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("SquaredEuclidean: length mismatch");
  }
  return SquaredEuclidean(a.data(), b.data(), a.size());
}

Result<double> Euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  S2_ASSIGN_OR_RETURN(double sq, SquaredEuclidean(a, b));
  return std::sqrt(sq);
}

double SquaredEuclideanEarlyAbandon(const double* a, const double* b, size_t n,
                                    double abandon_after_sq) {
  return simd::SumSqDiffAbandon(a, b, n, abandon_after_sq);
}

double EuclideanEarlyAbandon(const std::vector<double>& a,
                             const std::vector<double>& b,
                             double abandon_after_sq) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  return std::sqrt(
      SquaredEuclideanEarlyAbandon(a.data(), b.data(), n, abandon_after_sq));
}

}  // namespace s2::dsp
