#ifndef S2_STORAGE_CORPUS_IO_H_
#define S2_STORAGE_CORPUS_IO_H_

#include <string>

#include "common/result.h"
#include "io/env.h"
#include "timeseries/time_series.h"

namespace s2::storage {

/// Binary serialization of a whole corpus (names, start days, daily counts).
///
/// Format (native endianness):
///   magic "S2CORP01" | u64 series_count
///   per series: u32 name_length | name bytes | i32 start_day |
///               u64 value_count | doubles
///
/// The S2 tool keeps its sequence database on disk and reloads it across
/// sessions; this is the corresponding library facility. Writes commit
/// through the crash-safe generation container (`io::durable`): the new
/// corpus replaces the old one atomically, and a crash mid-write leaves the
/// previous generation loadable. `env` defaults to the POSIX filesystem.
Status WriteCorpus(const std::string& path, const ts::Corpus& corpus,
                   io::Env* env = nullptr);

/// Reads a corpus previously written by `WriteCorpus` (newest valid
/// generation; pre-container files load as generation 0).
Result<ts::Corpus> ReadCorpus(const std::string& path, io::Env* env = nullptr);

}  // namespace s2::storage

#endif  // S2_STORAGE_CORPUS_IO_H_
