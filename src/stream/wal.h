#ifndef S2_STREAM_WAL_H_
#define S2_STREAM_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/env.h"
#include "io/wal_segment.h"
#include "timeseries/time_series.h"

namespace s2::stream {

/// One logged ingestion event: slide `series_id`'s window forward by one
/// day, appending `value` (the corpus stays rectangular — the oldest day
/// falls off the front, `start_day` advances by one).
struct WalRecord {
  ts::SeriesId series_id = ts::kInvalidSeriesId;
  double value = 0.0;
};

/// Crash-safe append-only write-ahead log for point appends.
///
/// The serving path logs every append here *before* applying it to the
/// engine; after a crash, replaying the log over a batch-rebuilt engine
/// reconstructs every acknowledged append. File layout:
///
///   8-byte magic "S2WALF01", then fixed-size records of
///   [u32 series_id | f64 value | u64 checksum]
///
/// in native byte order (matching every other on-disk format in the
/// repository). The checksum is FNV-1a over the record payload, *chained*:
/// record i's hash is seeded with record i-1's checksum (record 0 with the
/// hash of the magic). Chaining matters because a torn tail is never
/// truncated (io::File has no truncate); the next append simply overwrites
/// it in place — and any stale bytes beyond the new tail then fail the
/// chain and are ignored by replay, even if they were once valid records
/// of a longer log.
///
/// Segmentation (`Options::rotate_bytes`): when the active segment's record
/// body reaches the threshold, the next `Append` seals it and rotates to
/// `<path>.segNNNNNN`, whose 40-byte header (see `io::walseg`) carries the
/// record count and chain seed across the boundary. Replay can then start
/// at a checkpoint anchor (`Options::replay_from`), skipping whole sealed
/// segments, and checkpoint GC unlinks segments wholly below the anchor —
/// the mechanism that bounds both recovery time and disk footprint. The
/// default (0) keeps the legacy single-file layout bit for bit.
///
/// Durability contract: a record is *acknowledged* once the `Append` (with
/// `sync_every == 1`, the default) or a later `Sync` covering it has
/// returned OK. `Open` replays every intact record in order and stops at
/// the first short or checksum-failing record (a torn tail from a crash
/// mid-write); everything after it is dropped and overwritten by
/// subsequent appends. With `sync_every == 1` a failed `Append` leaves the
/// log state unchanged, so the caller can simply retry — rotation happens
/// *before* the record write, so this holds across segment boundaries too.
///
/// Thread safety: none. The serving layer serializes appends behind its
/// writer lock, matching the engine's own write path.
class Wal {
 public:
  /// On-disk size of one record: [u32 series_id | f64 value | u64 checksum].
  static constexpr size_t kRecordBytes =
      sizeof(uint32_t) + sizeof(double) + sizeof(uint64_t);

  struct Options {
    /// Records per fsync group. 1 (default) syncs every append, making each
    /// successful `Append` an acknowledgement. Larger values trade the
    /// durability of the last `< sync_every` records for throughput; call
    /// `Sync` to flush the group early (e.g. before acknowledging a batch).
    size_t sync_every = 1;
    /// Segment-body byte threshold that triggers rotation on the next
    /// append. 0 (default) disables rotation: the legacy single-file log.
    uint64_t rotate_bytes = 0;
    /// Replay starts at this record index (a checkpoint anchor): earlier
    /// records are not delivered, and sealed segments wholly below it are
    /// skipped unread. Corruption if the log's surviving history cannot
    /// cover the index.
    uint64_t replay_from = 0;
  };

  struct ReplayInfo {
    /// Intact records applied during `Open` (at or past `replay_from`).
    size_t records = 0;
    /// Torn/garbage tail bytes ignored (they will be overwritten in place
    /// by the next append).
    uint64_t dropped_bytes = 0;
  };

  /// Opens (creating if absent) the log at `path` and replays every intact
  /// record at or past `options.replay_from` through `apply` in append
  /// order. A failing `apply` aborts the open with its error. `env` null
  /// means the POSIX filesystem; `info`, when non-null, receives replay
  /// statistics.
  static Result<std::unique_ptr<Wal>> Open(
      io::Env* env, const std::string& path,
      const std::function<Status(const WalRecord&)>& apply, ReplayInfo* info,
      const Options& options);
  static Result<std::unique_ptr<Wal>> Open(
      io::Env* env, const std::string& path,
      const std::function<Status(const WalRecord&)>& apply,
      ReplayInfo* info = nullptr) {
    return Open(env, path, apply, info, Options());
  }

  /// Best-effort flush of an open sync group: a clean close must not lose
  /// acknowledged-by-`Sync`-contract appends that a crash would.
  ~Wal();

  /// Appends one record at the logical tail, rotating first when the
  /// active segment is full. With `sync_every == 1` the record is durable
  /// (acknowledged) when this returns OK; on any error the log state is
  /// unchanged and the call may be retried.
  Status Append(const WalRecord& record);

  /// Flushes the current fsync group (no-op when everything is synced).
  Status Sync();

  /// Records acknowledged through this handle plus those counted at open
  /// (including the skipped prefix below `replay_from`).
  size_t record_count() const { return record_count_; }

  /// Byte offset of the logical tail within the active segment.
  uint64_t tail_offset() const { return tail_; }

  const std::string& path() const { return path_; }

  /// The live segments, oldest first (the active tail last). The single
  /// entry `{path, 0, 0}` when rotation never happened.
  const std::vector<io::walseg::SegmentInfo>& segments() const {
    return segments_;
  }

  /// Unlinks leading segments whose records all lie below `keep_from`
  /// (a committed checkpoint's safe anchor). Returns how many were removed.
  Result<size_t> RemoveObsoleteSegments(uint64_t keep_from);

  /// Reads the segment list of a (possibly closed) log off disk — tooling.
  static Result<std::vector<io::walseg::SegmentInfo>> ListSegments(
      io::Env* env, const std::string& path);

 private:
  Wal(io::Env* env, std::string path, Options options,
      io::walseg::OpenResult state);

  /// Seals the active segment and opens the next when the body threshold
  /// is reached. Called at the top of `Append`; state swaps only on OK.
  Status MaybeRotate();

  io::Env* env_;
  std::string path_;
  std::unique_ptr<io::File> file_;
  Options options_;
  uint64_t tail_ = 0;        // Next append offset (end of intact records).
  uint64_t chain_ = 0;       // Checksum of the last intact record.
  size_t record_count_ = 0;
  size_t unsynced_ = 0;      // Records written since the last fsync.
  uint64_t seq_ = 0;                 // Active segment's sequence number.
  std::vector<io::walseg::SegmentInfo> segments_;
};

}  // namespace s2::stream

#endif  // S2_STREAM_WAL_H_
