#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzz_util.h"
#include "storage/sequence_store.h"

namespace s2::storage {
namespace {

// Corruption fuzzing for the DiskSequenceStore format: Open on a mutated
// image either fails with a Status or yields a store whose Gets and
// Validate never crash.

TEST(FuzzSequenceStore, MutatedImagesNeverCrashOpenOrGet) {
  s2::Rng rng(0x5E95EED);
  const std::string path = fuzz::TempPath("s2_fuzz_seq.bin");
  std::vector<std::vector<double>> rows(10, std::vector<double>(32));
  for (auto& row : rows) {
    for (double& x : row) x = rng.Normal(0.0, 1.0);
  }
  {
    auto store = DiskSequenceStore::Create(path, rows);
    ASSERT_TRUE(store.ok());
  }
  const std::vector<char> image = fuzz::ReadFileBytes(path);
  ASSERT_FALSE(image.empty());

  for (int round = 0; round < 200; ++round) {
    fuzz::WriteFileBytes(path, fuzz::Mutate(image, &rng));
    auto store = DiskSequenceStore::Open(path);
    if (!store.ok()) {
      EXPECT_NE(store.status().code(), StatusCode::kOk);
      continue;
    }
    // The geometry passed the size check; reads must stay in bounds.
    (void)(*store)->Validate();
    for (ts::SeriesId id = 0; id < (*store)->num_series() && id < 16; ++id) {
      auto row = (*store)->Get(id);
      if (row.ok()) EXPECT_EQ(row->size(), (*store)->series_length());
    }
  }
  std::remove(path.c_str());
}

TEST(FuzzSequenceStore, GeometryMismatchIsCorruption) {
  const std::string path = fuzz::TempPath("s2_fuzz_seq_geom.bin");
  std::vector<std::vector<double>> rows(4, std::vector<double>(8, 1.0));
  {
    auto store = DiskSequenceStore::Create(path, rows);
    ASSERT_TRUE(store.ok());
  }
  std::vector<char> image = fuzz::ReadFileBytes(path);
  // Inflate the declared count far beyond the file's actual payload.
  const uint64_t huge = 1ull << 40;
  std::memcpy(image.data() + 8, &huge, sizeof(huge));
  fuzz::WriteFileBytes(path, image);
  auto store = DiskSequenceStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2::storage
