file(REMOVE_RECURSE
  "libs2_burst.a"
)
