#include "storage/corpus_io.h"

#include <cstring>

#include "io/durable.h"
#include "io/serial.h"

namespace s2::storage {

namespace {
constexpr char kMagic[8] = {'S', '2', 'C', 'O', 'R', 'P', '0', '1'};
}  // namespace

Status WriteCorpus(const std::string& path, const ts::Corpus& corpus,
                   io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  // Serialize into RAM first, then commit the whole image as one generation
  // so readers never observe a partially written corpus.
  io::BufferFile buffer;
  S2_RETURN_NOT_OK(io::WriteExact(&buffer, kMagic, sizeof(kMagic)));
  S2_RETURN_NOT_OK(io::WriteScalar<uint64_t>(&buffer, corpus.size()));
  for (const ts::TimeSeries& series : corpus.series()) {
    const uint32_t name_length = static_cast<uint32_t>(series.name.size());
    const uint64_t value_count = series.values.size();
    S2_RETURN_NOT_OK(io::WriteScalar(&buffer, name_length));
    S2_RETURN_NOT_OK(
        io::WriteExact(&buffer, series.name.data(), name_length));
    S2_RETURN_NOT_OK(io::WriteScalar(&buffer, series.start_day));
    S2_RETURN_NOT_OK(io::WriteScalar(&buffer, value_count));
    S2_RETURN_NOT_OK(io::WriteExact(&buffer, series.values.data(),
                                    series.values.size() * sizeof(double)));
  }
  return io::durable::CommitNext(env, path, std::move(buffer).TakeBytes());
}

Result<ts::Corpus> ReadCorpus(const std::string& path, io::Env* env) {
  if (env == nullptr) env = io::Env::Default();
  std::vector<char> bytes;
  S2_RETURN_NOT_OK(io::durable::LoadLatest(env, path, &bytes));
  io::BufferFile file(std::move(bytes));
  const uint64_t file_size = file.bytes().size();

  // Every declared length below is bounded by the bytes actually remaining
  // in the image, so a corrupt header can never trigger a huge allocation —
  // it fails as Corruption before the resize.
  char magic[sizeof(kMagic)];
  uint64_t count = 0;
  if (file_size < sizeof(kMagic) + sizeof(uint64_t)) {
    return Status::Corruption("ReadCorpus: truncated header in " + path);
  }
  S2_RETURN_NOT_OK(io::ReadExact(&file, magic, sizeof(magic)));
  S2_RETURN_NOT_OK(io::ReadScalar(&file, &count));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("ReadCorpus: bad magic in " + path);
  }
  uint64_t remaining = file_size - sizeof(kMagic) - sizeof(uint64_t);
  // Each series costs at least its fixed-size header fields.
  constexpr uint64_t kMinSeriesBytes =
      sizeof(uint32_t) + sizeof(int32_t) + sizeof(uint64_t);
  if (count > remaining / kMinSeriesBytes) {
    return Status::Corruption("ReadCorpus: series count " +
                              std::to_string(count) +
                              " exceeds the file size in " + path);
  }
  ts::Corpus corpus;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_length = 0;
    if (remaining < sizeof(uint32_t) ||
        !io::ReadScalar(&file, &name_length).ok()) {
      return Status::Corruption("ReadCorpus: truncated series header in " + path);
    }
    remaining -= sizeof(uint32_t);
    if (name_length > remaining) {
      return Status::Corruption("ReadCorpus: name length " +
                                std::to_string(name_length) +
                                " exceeds the remaining file in " + path);
    }
    ts::TimeSeries series;
    series.name.resize(name_length);
    uint64_t value_count = 0;
    if (!io::ReadExact(&file, series.name.data(), name_length).ok() ||
        !io::ReadScalar(&file, &series.start_day).ok() ||
        !io::ReadScalar(&file, &value_count).ok()) {
      return Status::Corruption("ReadCorpus: truncated series header in " + path);
    }
    remaining -= name_length + sizeof(series.start_day) + sizeof(value_count);
    if (value_count > remaining / sizeof(double)) {
      return Status::Corruption("ReadCorpus: value count " +
                                std::to_string(value_count) +
                                " exceeds the remaining file in " + path);
    }
    series.values.resize(value_count);
    if (!io::ReadExact(&file, series.values.data(),
                       value_count * sizeof(double))
             .ok()) {
      return Status::Corruption("ReadCorpus: truncated values in " + path);
    }
    remaining -= value_count * sizeof(double);
    corpus.Add(std::move(series));
  }
  return corpus;
}

}  // namespace s2::storage
