file(REMOVE_RECURSE
  "CMakeFiles/dtw_search_test.dir/dtw_search_test.cc.o"
  "CMakeFiles/dtw_search_test.dir/dtw_search_test.cc.o.d"
  "dtw_search_test"
  "dtw_search_test.pdb"
  "dtw_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtw_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
