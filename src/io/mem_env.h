#ifndef S2_IO_MEM_ENV_H_
#define S2_IO_MEM_ENV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/sync.h"
#include "base/thread_annotations.h"
#include "io/env.h"

namespace s2::io {

/// A RAM-backed `Env` with crash simulation.
///
/// Every file keeps two images: `current` (what readers and writers see) and
/// `durable` (the bytes as of the last `Sync`). `DropUnsynced` rolls every
/// file back to its durable image and replays the directory structure as of
/// the last sync — exactly the state a machine would reboot into after
/// losing power — which is what the crash-point sweep tests iterate over.
///
/// `Rename` is atomic with respect to concurrent `Open`s, matching the POSIX
/// contract the crash-safe writers rely on. Renames and removals of files
/// whose directory entries were never synced are treated as metadata
/// journal-committed once the *file contents* are synced; this matches the
/// strongest behaviour the commit protocol is allowed to assume (rename
/// after fsync is durable).
///
/// Thread safety: all operations take an internal mutex, so a `MemEnv` can
/// back a concurrent `S2Server` under TSan.
class MemEnv : public Env {
 public:
  MemEnv() = default;

  Result<std::unique_ptr<File>> Open(const std::string& path,
                                     OpenMode mode) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status DropUnsynced() override;
  Result<std::vector<std::string>> ListPrefix(
      const std::string& prefix) override;

  /// Lists every live path (for test assertions).
  std::vector<std::string> ListFiles();

 private:
  friend class MemFile;

  // One file's state. `durable` tracks the byte image as of the last Sync;
  // `synced_once` distinguishes "never fsynced" files, whose directory entry
  // is also lost in a crash.
  // Node contents are also protected by `mu_`; that can't be expressed
  // through the shared_ptr indirection, so MemFile locks `env_->mu_` around
  // every access instead of relying on annotations.
  struct Node {
    std::vector<char> current;
    std::vector<char> durable;
    bool synced_once = false;
  };

  sync::Mutex mu_{sync::LockRank::kMemEnv, "io::MemEnv"};
  std::map<std::string, std::shared_ptr<Node>> files_ S2_GUARDED_BY(mu_);
};

}  // namespace s2::io

#endif  // S2_IO_MEM_ENV_H_
