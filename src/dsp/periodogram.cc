#include "dsp/periodogram.h"

#include <limits>

namespace s2::dsp {

std::vector<double> Periodogram(const std::vector<Complex>& spectrum) {
  const size_t n = spectrum.size();
  const size_t bins = n / 2 + 1;
  std::vector<double> psd(bins);
  for (size_t k = 0; k < bins && k < n; ++k) psd[k] = std::norm(spectrum[k]);
  return psd;
}

Result<std::vector<double>> PeriodogramOf(const std::vector<double>& x) {
  S2_ASSIGN_OR_RETURN(std::vector<Complex> spectrum, ForwardDft(x));
  return Periodogram(spectrum);
}

double BinToPeriod(size_t k, size_t n) {
  if (k == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(n) / static_cast<double>(k);
}

}  // namespace s2::dsp
