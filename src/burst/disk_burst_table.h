#ifndef S2_BURST_DISK_BURST_TABLE_H_
#define S2_BURST_DISK_BURST_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "burst/burst_table.h"
#include "common/result.h"
#include "storage/disk_bptree.h"
#include "storage/pager.h"

namespace s2::burst {

/// Disk-resident burst store: the paper's "stored as records in a DBMS
/// table ... create an index (basically a B-tree) on the startDate"
/// realized end to end on our own storage substrate.
///
/// Layout: `<prefix>.heap` is a paged heap file of fixed-size burst records
/// (page 0 = metadata); `<prefix>.idx` is a DiskBPlusTree mapping startDate
/// to record id. `FindOverlapping` runs the SQL plan of Figure 18: one
/// index range scan over `startDate <= Q.endDate` plus the residual
/// `endDate >= Q.startDate` filter against the heap records.
///
/// Durability is flush-granular (call `Flush` after ingest batches); both
/// files reopen seamlessly. In the default durable mode each file publishes
/// complete generations via the pager's shadow-copy protocol — `Flush`
/// commits the heap strictly before the index, and because the index is
/// fully derivable from the heap, `Open` self-heals a crash between the two
/// commits (or a corrupt index file) by rebuilding the index from the heap.
class DiskBurstTable {
 public:
  struct Options {
    /// Filesystem to operate in; null means `io::Env::Default()`.
    io::Env* env = nullptr;
    /// Crash-safe shadow publishing for both files (see Pager).
    bool durable = true;
    /// Buffer-pool capacity per file.
    size_t pool_pages = 64;
  };

  /// Opens (or creates) the store at `<prefix>.heap` / `<prefix>.idx`.
  static Result<std::unique_ptr<DiskBurstTable>> Open(const std::string& prefix,
                                                      size_t pool_pages = 64);
  static Result<std::unique_ptr<DiskBurstTable>> Open(const std::string& prefix,
                                                      Options options);

  DiskBurstTable(const DiskBurstTable&) = delete;
  DiskBurstTable& operator=(const DiskBurstTable&) = delete;

  /// Appends the burst triplets of one sequence (`offset` shifts
  /// region-local positions to absolute days).
  Status Insert(ts::SeriesId series_id, const std::vector<BurstRegion>& regions,
                int32_t offset);

  /// All records overlapping `[query.start, query.end]`.
  Result<std::vector<BurstRecord>> FindOverlapping(const BurstRegion& query);

  /// Query-by-burst, identical semantics to BurstTable::QueryByBurst.
  Result<std::vector<BurstMatch>> QueryByBurst(
      const std::vector<BurstRegion>& query_bursts, size_t k,
      ts::SeriesId exclude = ts::kInvalidSeriesId);

  /// Number of stored burst records.
  uint64_t size() const { return record_count_; }

  /// Persists all dirty pages of both files.
  Status Flush();

  /// I/O statistics (heap + index pagers).
  uint64_t disk_reads() const;
  uint64_t disk_writes() const;

  /// Structural self-check across both files: heap metadata (magic, record
  /// count vs heap pages), every record well-formed (valid id, start <= end,
  /// finite average), the index tree's own `Validate()`, and exact
  /// heap/index agreement (one entry per record, key == start date).
  /// Reports the exact violations as `Status::Corruption`.
  Status Validate();

  /// Times `Open` had to rebuild the index from the heap (0 on a clean
  /// open) — surfaced so tests and operators can see self-heals happening.
  bool index_rebuilt() const { return index_rebuilt_; }

 private:
  DiskBurstTable(std::unique_ptr<storage::Pager> heap,
                 std::unique_ptr<storage::DiskBPlusTree> index)
      : heap_(std::move(heap)), index_(std::move(index)) {}

  Status LoadMeta();
  Status StoreMeta();
  Result<BurstRecord> ReadRecord(uint64_t record_id);
  Result<uint64_t> AppendRecord(const BurstRecord& record);
  Status RebuildIndex();

  std::unique_ptr<storage::Pager> heap_;
  std::unique_ptr<storage::DiskBPlusTree> index_;
  uint64_t record_count_ = 0;
  bool index_rebuilt_ = false;
};

}  // namespace s2::burst

#endif  // S2_BURST_DISK_BURST_TABLE_H_
