#include "service/scheduler.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace s2::service {
namespace {

using std::chrono::milliseconds;

QueryRequest SimilarRequest(ts::SeriesId id = 0, size_t k = 5) {
  QueryRequest request;
  request.kind = RequestKind::kSimilarTo;
  request.id = id;
  request.k = k;
  return request;
}

TEST(SchedulerTest, ExecutesViaHandlerAndReportsLatency) {
  Scheduler::Options options;
  options.threads = 2;
  MetricsRegistry metrics;
  Scheduler scheduler(
      options,
      [](const QueryRequest& request) {
        QueryResponse response;
        response.neighbors.push_back({request.id, 1.0});
        return response;
      },
      &metrics);
  auto ticket = scheduler.Submit(SimilarRequest(42));
  ASSERT_TRUE(ticket.ok());
  QueryResponse response = ticket->Get();
  EXPECT_TRUE(response.status.ok());
  ASSERT_EQ(response.neighbors.size(), 1u);
  EXPECT_EQ(response.neighbors[0].id, 42u);
  EXPECT_EQ(metrics.counter("server_accepted")->value(), 1u);
  EXPECT_EQ(metrics.counter("server_completed")->value(), 1u);
  EXPECT_EQ(metrics.counter("server_requests_similar_to")->value(), 1u);
  EXPECT_EQ(metrics.histogram("server_latency")->count(), 1u);
}

TEST(SchedulerTest, BackpressureRejectsWhenWindowFull) {
  Scheduler::Options options;
  options.threads = 1;
  options.queue_capacity = 2;
  std::atomic<bool> release{false};
  MetricsRegistry metrics;
  Scheduler scheduler(
      options,
      [&release](const QueryRequest&) {
        while (!release.load()) std::this_thread::sleep_for(milliseconds(1));
        return QueryResponse{};
      },
      &metrics);

  auto first = scheduler.Submit(SimilarRequest());   // occupies the worker
  auto second = scheduler.Submit(SimilarRequest());  // fills the window
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto third = scheduler.Submit(SimilarRequest());  // over capacity
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(metrics.counter("server_rejected")->value(), 1u);

  release.store(true);
  EXPECT_TRUE(first->Get().status.ok());
  EXPECT_TRUE(second->Get().status.ok());
  // The window drained; submissions are accepted again.
  EXPECT_TRUE(scheduler.Submit(SimilarRequest()).ok());
}

TEST(SchedulerTest, DeadlineExpiresWhileQueued) {
  Scheduler::Options options;
  options.threads = 1;
  std::atomic<bool> release{false};
  MetricsRegistry metrics;
  Scheduler scheduler(
      options,
      [&release](const QueryRequest&) {
        while (!release.load()) std::this_thread::sleep_for(milliseconds(1));
        return QueryResponse{};
      },
      &metrics);

  auto blocker = scheduler.Submit(SimilarRequest());
  ASSERT_TRUE(blocker.ok());
  QueryRequest hurried = SimilarRequest();
  hurried.timeout = milliseconds(1);
  auto expired = scheduler.Submit(hurried);
  ASSERT_TRUE(expired.ok());
  std::this_thread::sleep_for(milliseconds(20));  // Let the deadline pass.
  release.store(true);
  EXPECT_TRUE(blocker->Get().status.ok());
  EXPECT_EQ(expired->Get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(metrics.counter("server_expired")->value(), 1u);
}

TEST(SchedulerTest, CancelPreventsQueuedExecution) {
  Scheduler::Options options;
  options.threads = 1;
  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  MetricsRegistry metrics;
  Scheduler scheduler(
      options,
      [&](const QueryRequest&) {
        executed.fetch_add(1);
        while (!release.load()) std::this_thread::sleep_for(milliseconds(1));
        return QueryResponse{};
      },
      &metrics);

  auto blocker = scheduler.Submit(SimilarRequest());
  auto doomed = scheduler.Submit(SimilarRequest());
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(doomed.ok());
  doomed->Cancel();
  release.store(true);
  EXPECT_TRUE(blocker->Get().status.ok());
  EXPECT_EQ(doomed->Get().status.code(), StatusCode::kCancelled);
  EXPECT_EQ(executed.load(), 1);  // The cancelled request never ran.
  EXPECT_EQ(metrics.counter("server_cancelled")->value(), 1u);
}

TEST(SchedulerTest, ShutdownWithInflightWorkFulfillsEveryFuture) {
  Scheduler::Options options;
  options.threads = 2;
  Scheduler scheduler(
      options,
      [](const QueryRequest&) {
        std::this_thread::sleep_for(milliseconds(5));
        QueryResponse response;
        response.neighbors.push_back({7, 0.0});
        return response;
      },
      nullptr);

  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 16; ++i) {
    auto ticket = scheduler.Submit(SimilarRequest());
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(*ticket));
  }
  scheduler.Shutdown();  // Graceful drain: no broken promises.
  for (RequestTicket& ticket : tickets) {
    QueryResponse response = ticket.Get();
    EXPECT_TRUE(response.status.ok());
    ASSERT_EQ(response.neighbors.size(), 1u);
  }
  EXPECT_EQ(scheduler.in_flight(), 0u);
  // Post-shutdown submission is refused outright.
  auto late = scheduler.Submit(SimilarRequest());
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST(SchedulerTest, ConcurrentSubmittersNeverExceedWindow) {
  Scheduler::Options options;
  options.threads = 4;
  options.queue_capacity = 32;
  std::atomic<size_t> peak{0};
  Scheduler* raw = nullptr;
  Scheduler scheduler(
      options,
      [&](const QueryRequest&) {
        const size_t now = raw->in_flight();
        size_t seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        return QueryResponse{};
      },
      nullptr);
  raw = &scheduler;

  std::vector<std::thread> submitters;
  std::atomic<int> rejected{0};
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto ticket = scheduler.Submit(SimilarRequest());
        if (!ticket.ok()) rejected.fetch_add(1);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  scheduler.Shutdown();
  EXPECT_LE(peak.load(), options.queue_capacity);
}

}  // namespace
}  // namespace s2::service
