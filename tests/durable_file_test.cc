#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/durable.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "io/mem_env.h"

namespace s2::io::durable {
namespace {

std::vector<char> Bytes(const std::string& s) {
  return std::vector<char>(s.begin(), s.end());
}

std::string Str(const std::vector<char>& v) {
  return std::string(v.begin(), v.end());
}

TEST(DurableFileTest, CommitLoadRoundtrip) {
  MemEnv env;
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("payload one")).ok());
  std::vector<char> out;
  uint64_t generation = 0;
  ASSERT_TRUE(LoadLatest(&env, "f.bin", &out, &generation).ok());
  EXPECT_EQ(Str(out), "payload one");
  EXPECT_EQ(generation, 1u);
}

TEST(DurableFileTest, GenerationsIncrement) {
  MemEnv env;
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("one")).ok());
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("two")).ok());
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("three")).ok());
  EXPECT_EQ(CurrentGeneration(&env, "f.bin"), 3u);
  std::vector<char> out;
  ASSERT_TRUE(LoadLatest(&env, "f.bin", &out).ok());
  EXPECT_EQ(Str(out), "three");
  // The committed tmp is renamed away, not left behind.
  EXPECT_FALSE(env.FileExists("f.bin.tmp"));
}

TEST(DurableFileTest, MissingFileIsNotFound) {
  MemEnv env;
  std::vector<char> out;
  const Status status = LoadLatest(&env, "absent.bin", &out);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(CurrentGeneration(&env, "absent.bin"), 0u);
}

TEST(DurableFileTest, EmptyPayloadRoundtrips) {
  MemEnv env;
  ASSERT_TRUE(CommitNext(&env, "f.bin", {}).ok());
  std::vector<char> out = Bytes("stale");
  ASSERT_TRUE(LoadLatest(&env, "f.bin", &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DurableFileTest, LegacyHeaderlessFileLoadsAsGenerationZero) {
  MemEnv env;
  {
    auto file = env.Open("legacy.bin", OpenMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(WriteExact(file->get(), "OLDFMT99 raw body", 17).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  std::vector<char> out;
  uint64_t generation = 99;
  ASSERT_TRUE(LoadLatest(&env, "legacy.bin", &out, &generation).ok());
  EXPECT_EQ(Str(out), "OLDFMT99 raw body");
  EXPECT_EQ(generation, 0u);
}

TEST(DurableFileTest, CorruptChecksumIsRejected) {
  MemEnv env;
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("checksummed payload")).ok());
  // Flip one payload byte in place; the header checksum no longer matches.
  {
    auto file = env.Open("f.bin", OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    char c = 0;
    ASSERT_TRUE(ReadExactAt(file->get(), &c, 1, kGenHeaderBytes).ok());
    c ^= 0x40;
    ASSERT_TRUE(WriteExactAt(file->get(), &c, 1, kGenHeaderBytes).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  std::vector<char> out;
  const Status status = LoadLatest(&env, "f.bin", &out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(DurableFileTest, TruncatedContainerIsRejected) {
  MemEnv env;
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("will be cut short")).ok());
  std::vector<char> image;
  ASSERT_TRUE(ReadFileToBuffer(&env, "f.bin", &image).ok());
  image.resize(image.size() - 5);
  {
    auto file = env.Open("f.bin", OpenMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(WriteExact(file->get(), image.data(), image.size()).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  std::vector<char> out;
  EXPECT_EQ(LoadLatest(&env, "f.bin", &out).code(), StatusCode::kCorruption);
}

TEST(DurableFileTest, LeftoverTmpWithNewerGenerationWins) {
  MemEnv env;
  ASSERT_TRUE(Commit(&env, "f.bin", "old", 3, /*generation=*/1).ok());
  // Simulate a crash after the tmp was fully written and synced but before
  // the rename: produce a valid generation-2 container at f.bin.tmp.
  ASSERT_TRUE(Commit(&env, "f.bin.tmp", "new", 3, /*generation=*/2).ok());
  std::vector<char> out;
  uint64_t generation = 0;
  ASSERT_TRUE(LoadLatest(&env, "f.bin", &out, &generation).ok());
  EXPECT_EQ(Str(out), "new");
  EXPECT_EQ(generation, 2u);
}

TEST(DurableFileTest, CorruptTmpFallsBackToMainFile) {
  MemEnv env;
  ASSERT_TRUE(Commit(&env, "f.bin", "good", 4, /*generation=*/5).ok());
  {
    auto file = env.Open("f.bin.tmp", OpenMode::kTruncate);
    ASSERT_TRUE(file.ok());
    // A torn tmp from a crash mid-write: container magic but garbage after.
    ASSERT_TRUE(WriteExact(file->get(), kGenMagic, sizeof(kGenMagic)).ok());
    ASSERT_TRUE(WriteExact(file->get(), "garbage", 7).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  std::vector<char> out;
  uint64_t generation = 0;
  ASSERT_TRUE(LoadLatest(&env, "f.bin", &out, &generation).ok());
  EXPECT_EQ(Str(out), "good");
  EXPECT_EQ(generation, 5u);
}

TEST(DurableFileTest, CommitPreservesBytesUnderALiveTmpReader) {
  MemEnv env;
  ASSERT_TRUE(Commit(&env, "f.bin", "old", 3, /*generation=*/1).ok());
  // Crash aftermath: a fully committed generation-2 tmp that BestCandidate
  // prefers; a reader is serving from it right now.
  ASSERT_TRUE(Commit(&env, "f.bin.tmp", "new", 3, /*generation=*/2).ok());
  auto info = OpenLatest(&env, "f.bin");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->generation, 2u);
  // A new commit reuses the f.bin.tmp name. It must unlink-and-recreate, not
  // truncate in place: the reader's handle keeps the old bytes.
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("generation 3")).ok());
  char buffer[3];
  ASSERT_TRUE(
      ReadExactAt(info->file.get(), buffer, 3, info->payload_offset).ok());
  EXPECT_EQ(std::string(buffer, 3), "new");
  std::vector<char> out;
  uint64_t generation = 0;
  ASSERT_TRUE(LoadLatest(&env, "f.bin", &out, &generation).ok());
  EXPECT_EQ(Str(out), "generation 3");
  EXPECT_EQ(generation, 3u);
}

TEST(DurableFileTest, OpenLatestExposesPayloadWindow) {
  MemEnv env;
  ASSERT_TRUE(CommitNext(&env, "f.bin", Bytes("ABCDEFGH")).ok());
  auto info = OpenLatest(&env, "f.bin");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->payload_offset, kGenHeaderBytes);
  EXPECT_EQ(info->payload_size, 8u);
  EXPECT_EQ(info->generation, 1u);
  char buffer[8];
  ASSERT_TRUE(
      ReadExactAt(info->file.get(), buffer, 8, info->payload_offset).ok());
  EXPECT_EQ(std::string(buffer, 8), "ABCDEFGH");
}

TEST(DurableFileTest, CommitInterruptedBeforeRenameKeepsOldGeneration) {
  MemEnv base;
  ASSERT_TRUE(CommitNext(&base, "f.bin", Bytes("generation 1")).ok());
  // Crash the env on every mutating op of the second commit, one op at a
  // time; after each crash the previous generation must still load.
  for (uint64_t crash_at = 1;; ++crash_at) {
    FaultPlan plan;
    plan.crash_at_op = crash_at;
    FaultInjectingEnv env(&base, plan);
    const Status commit = CommitNext(&env, "f.bin", Bytes("generation 2"));
    const bool crashed = env.crashed();
    env.ClearCrash();
    std::vector<char> out;
    ASSERT_TRUE(LoadLatest(&base, "f.bin", &out).ok())
        << "unloadable after crash at mutating op " << crash_at;
    if (crashed) {
      // A crash before the rename leaves generation 1; a crash at the
      // directory sync (after the rename, the commit point) leaves
      // generation 2. Either is a complete, loadable state — a torn hybrid
      // never is.
      EXPECT_TRUE(Str(out) == "generation 1" || Str(out) == "generation 2")
          << "unexpected content: " << Str(out);
      // Clean up any torn tmp the crash left for the next iteration.
      ASSERT_TRUE(base.Remove("f.bin.tmp").ok());
    } else {
      ASSERT_TRUE(commit.ok());
      EXPECT_EQ(Str(out), "generation 2");
      break;  // crash_at exceeded the workload's op count: sweep complete.
    }
  }
}

TEST(DurableFileTest, Fnv1a64MatchesKnownVector) {
  // FNV-1a("a") with the standard offset basis.
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
}

}  // namespace
}  // namespace s2::io::durable
