# Empty compiler generated dependencies file for periodogram_test.
# This may be replaced when dependencies are built.
