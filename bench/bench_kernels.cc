// Kernel baselines for the simd layer (DESIGN.md §12): times every backend
// compiled into this binary against the scalar reference on the hot
// distance/DSP kernels, prints a speedup table, and records the rows in
// BENCH_kernels.json so the perf trajectory of the vectorized paths is
// tracked alongside the serving benches. Correctness is not re-checked
// here — tests/simd_kernel_test.cc proves every backend bit-identical —
// but each measurement folds its kernel results into a checksum so the
// compiler cannot discard the work.

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "simd/kernels.h"
#include "simd/simd.h"

namespace s2 {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One timed kernel: runs `fn(reps)` (which must consume its results into a
// sink) and returns the best-of-3 seconds per rep.
template <typename Fn>
double TimeBest(size_t reps, Fn&& fn) {
  double best = kInf;
  for (int trial = 0; trial < 3; ++trial) {
    bench::Timer timer;
    fn(reps);
    best = std::min(best, timer.Seconds() / static_cast<double>(reps));
  }
  return best;
}

struct KernelCase {
  const char* name;
  // Seconds per call of this kernel from `table` at length n.
  double (*run)(const simd::KernelTable& table, size_t n, size_t reps);
};

volatile double g_sink = 0.0;

// Shared inputs, sized for the largest n and reused across backends so
// every backend reads identical memory. Slot 2 is the lower envelope,
// slot 3 the upper (lower + nonnegative gap).
std::vector<double>& Buf(int which, size_t n) {
  static std::vector<double> bufs[4];
  std::vector<double>& b = bufs[which];
  if (b.size() < n) {
    Rng rng(1000 + which);
    b.resize(n);
    for (double& v : b) v = rng.Normal(0.0, 1.0);
    if (which == 3) {
      const std::vector<double>& lo = Buf(2, n);
      for (size_t i = 0; i < n; ++i) b[i] = lo[i] + std::abs(b[i]);
    }
  }
  return b;
}

double RunSumSqDiff(const simd::KernelTable& t, size_t n, size_t reps) {
  const double* a = Buf(0, n).data();
  const double* b = Buf(1, n).data();
  return TimeBest(reps, [&](size_t r) {
    double acc = 0.0;
    for (size_t i = 0; i < r; ++i) acc += t.sum_sq_diff(a, b, n);
    g_sink = acc;
  });
}

double RunSumSqDiffAbandon(const simd::KernelTable& t, size_t n, size_t reps) {
  const double* a = Buf(0, n).data();
  const double* b = Buf(1, n).data();
  return TimeBest(reps, [&](size_t r) {
    double acc = 0.0;
    // Infinite limit: the kernel scans every element, so this measures the
    // full-distance throughput the index verification path sees on
    // accepted candidates (the worst case; abandons only get cheaper).
    for (size_t i = 0; i < r; ++i) acc += t.sum_sq_diff_abandon(a, b, n, kInf);
    g_sink = acc;
  });
}

double RunLbKeogh(const simd::KernelTable& t, size_t n, size_t reps) {
  const double* lo = Buf(2, n).data();
  const double* hi = Buf(3, n).data();
  const double* c = Buf(0, n).data();
  return TimeBest(reps, [&](size_t r) {
    double acc = 0.0;
    for (size_t i = 0; i < r; ++i)
      acc += t.lb_keogh_sq_abandon(lo, hi, c, n, kInf);
    g_sink = acc;
  });
}

double RunStandardize(const simd::KernelTable& t, size_t n, size_t reps) {
  const double* x = Buf(0, n).data();
  static std::vector<double> out;
  if (out.size() < n) out.resize(n);
  return TimeBest(reps, [&](size_t r) {
    for (size_t i = 0; i < r; ++i) t.standardize(x, n, 0.1, 1.7, out.data());
    g_sink = out[n - 1];
  });
}

double RunSum(const simd::KernelTable& t, size_t n, size_t reps) {
  const double* x = Buf(0, n).data();
  return TimeBest(reps, [&](size_t r) {
    double acc = 0.0;
    for (size_t i = 0; i < r; ++i) acc += t.sum(x, n);
    g_sink = acc;
  });
}

double RunSlideComplexBins(const simd::KernelTable& t, size_t n, size_t reps) {
  // n doubles = n/2 interleaved complex bins; rotation magnitude 1 keeps
  // the values bounded over millions of reps.
  static std::vector<double> bins;
  if (bins.size() < n) bins = Buf(0, n);
  static std::vector<double> tw;
  if (tw.size() < n) {
    tw.resize(n);
    for (size_t i = 0; i < n; i += 2) {
      tw[i] = 0.8;
      tw[i + 1] = 0.6;
    }
  }
  return TimeBest(reps, [&](size_t r) {
    for (size_t i = 0; i < r; ++i)
      t.slide_complex_bins(bins.data(), tw.data(), n / 2, 1e-6);
    g_sink = bins[0];
  });
}

const KernelCase kCases[] = {
    {"sum", RunSum},
    {"sum_sq_diff", RunSumSqDiff},
    {"euclidean_early_abandon", RunSumSqDiffAbandon},
    {"lb_keogh", RunLbKeogh},
    {"standardize", RunStandardize},
    {"slide_complex_bins", RunSlideComplexBins},
};

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_kernels.json");
  const size_t max_reps = bench::ArgSize(argc, argv, "--reps", 200000);

  const std::vector<simd::Isa> isas = simd::AvailableIsas();
  bench::PrintHeader("simd kernel baselines: scalar vs " +
                     std::to_string(isas.size() - 1) +
                     " vectorized backend(s), ns per call");

  bench::Json rows = bench::Json::Array();
  bool speedup_bar_met = true;
  for (const KernelCase& kc : kCases) {
    std::printf("\n%s\n", kc.name);
    std::printf("  %8s", "n");
    for (simd::Isa isa : isas) std::printf(" %14s", simd::IsaName(isa));
    std::printf(" %10s\n", "speedup");
    for (size_t n : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
      const size_t reps = std::max<size_t>(1000, max_reps * 64 / n);
      double scalar_ns = 0.0;
      std::printf("  %8zu", n);
      bench::Json row = bench::Json::Object();
      row.Add("kernel", kc.name).Add("n", static_cast<uint64_t>(n));
      double best_speedup = 1.0;
      for (simd::Isa isa : isas) {
        const double ns = kc.run(*simd::TableFor(isa), n, reps) * 1e9;
        if (isa == simd::Isa::kScalar) scalar_ns = ns;
        std::printf(" %12.1fns", ns);
        row.Add(std::string(simd::IsaName(isa)) + "_ns", ns);
        best_speedup = std::max(best_speedup, scalar_ns / ns);
      }
      std::printf(" %9.2fx\n", best_speedup);
      row.Add("speedup_best", best_speedup);
      rows.Push(std::move(row));
      // The ISSUE acceptance bar: >= 2x on the early-abandon Euclidean and
      // LB_Keogh kernels at window >= 128 when a vector backend exists.
      if (isas.size() > 1 && n >= 128 &&
          (std::string(kc.name) == "euclidean_early_abandon" ||
           std::string(kc.name) == "lb_keogh")) {
        if (best_speedup < 2.0) speedup_bar_met = false;
      }
    }
  }

  bench::Json available = bench::Json::Array();
  for (simd::Isa isa : isas) available.Push(bench::Json::String(simd::IsaName(isa)));
  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_kernels")
          .Add("contract",
               "all backends bit-identical (tests/simd_kernel_test.cc); "
               "rows record ns/call, best-of-3")
          .Add("backends", std::move(available))
          .Add("active_default", simd::IsaName(simd::ActiveIsa()))
          .Add("rows", std::move(rows))
          .Add("speedup_2x_bar",
               bench::Json::String(isas.size() == 1   ? "SKIP (scalar only)"
                                   : speedup_bar_met ? "PASS"
                                                     : "MISS")));
  std::printf("\n  2x speedup bar (abandon kernels, n >= 128): %s\n",
              isas.size() == 1 ? "SKIP" : speedup_bar_met ? "PASS" : "MISS");
  return 0;
}
