# Empty compiler generated dependencies file for moving_average_test.
# This may be replaced when dependencies are built.
