// The acceptance bar for s2::stream: after ANY interleaving of appends,
// compactions and queries, every query verb must answer exactly as a
// batch-rebuilt engine over the same final data — at shard counts
// {1,2,3,8}, RAM- and disk-resident — and replaying the WAL after a
// simulated crash
// must lose no acknowledged append.
//
// Appends are window slides (drop the oldest day, append the new one), so
// the corpus stays rectangular and "the same final data" is well-defined at
// every step: a shadow copy of the series, slid in lockstep, is rebuilt
// into a fresh batch engine at each checkpoint. Equality is bitwise
// (EXPECT_EQ on doubles) on purpose: the delta tier answers through the
// same distance code over the same rows, so exact agreement is the bar —
// same ids, same distances, same periods, same burst intervals and scores.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/s2_engine.h"
#include "io/fault_env.h"
#include "io/mem_env.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"
#include "shard/sharded_engine.h"

namespace s2::stream {
namespace {

constexpr size_t kNumSeries = 48;
constexpr size_t kDays = 128;
constexpr size_t kK = 7;
constexpr uint64_t kSeed = 614;

ts::Corpus MakeCorpus(uint64_t seed = kSeed) {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

/// The corpus as plain series, for shadowing the stream's slides.
std::vector<ts::TimeSeries> Snapshot(const ts::Corpus& corpus) {
  std::vector<ts::TimeSeries> series;
  series.reserve(corpus.size());
  for (ts::SeriesId id = 0; id < corpus.size(); ++id) series.push_back(corpus.at(id));
  return series;
}

void SlideShadow(ts::TimeSeries* series, double value) {
  series->values.erase(series->values.begin());
  series->values.push_back(value);
  ++series->start_day;
}

core::S2Engine BatchRebuild(const std::vector<ts::TimeSeries>& shadow) {
  ts::Corpus corpus;
  for (const ts::TimeSeries& series : shadow) corpus.Add(series);
  auto engine = core::S2Engine::Build(std::move(corpus), EngineOptions());
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

void ExpectSameNeighbors(const std::vector<index::Neighbor>& want,
                         const std::vector<index::Neighbor>& got,
                         const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id) << what << " rank " << i;
    EXPECT_EQ(want[i].distance, got[i].distance) << what << " rank " << i;
  }
}

/// Compares every query verb of `streamed` (any engine-shaped callable set)
/// against the batch engine. `Streamed` is either core::S2Engine or
/// shard::ShardedEngine — both expose the same verb signatures.
template <typename Streamed>
void ExpectAllVerbsEqual(const core::S2Engine& batch, const Streamed& streamed,
                         const std::string& what) {
  for (ts::SeriesId id = 0; id < kNumSeries; id += 7) {
    const std::string where = what + " id " + std::to_string(id);

    auto want_knn = batch.SimilarTo(id, kK);
    auto got_knn = streamed.SimilarTo(id, kK);
    ASSERT_TRUE(want_knn.ok()) << where;
    ASSERT_TRUE(got_knn.ok()) << where << ": " << got_knn.status().ToString();
    ExpectSameNeighbors(*want_knn, *got_knn, where + " knn");

    auto want_dtw = batch.SimilarToDtw(id, kK);
    auto got_dtw = streamed.SimilarToDtw(id, kK);
    ASSERT_TRUE(want_dtw.ok()) << where;
    ASSERT_TRUE(got_dtw.ok()) << where << ": " << got_dtw.status().ToString();
    ExpectSameNeighbors(*want_dtw, *got_dtw, where + " dtw");

    auto want_periods = batch.FindPeriods(id);
    auto got_periods = streamed.FindPeriods(id);
    ASSERT_TRUE(want_periods.ok() && got_periods.ok()) << where;
    ASSERT_EQ(want_periods->size(), got_periods->size()) << where << " periods";
    for (size_t i = 0; i < want_periods->size(); ++i) {
      EXPECT_EQ((*want_periods)[i].period, (*got_periods)[i].period) << where;
      EXPECT_EQ((*want_periods)[i].power, (*got_periods)[i].power) << where;
    }

    for (const auto horizon :
         {core::BurstHorizon::kLongTerm, core::BurstHorizon::kShortTerm}) {
      auto want_bursts = batch.BurstsOf(id, horizon);
      auto got_bursts = streamed.BurstsOf(id, horizon);
      ASSERT_TRUE(want_bursts.ok() && got_bursts.ok()) << where;
      ASSERT_EQ(want_bursts->size(), got_bursts->size()) << where << " bursts";
      for (size_t i = 0; i < want_bursts->size(); ++i) {
        EXPECT_EQ((*want_bursts)[i].start, (*got_bursts)[i].start) << where;
        EXPECT_EQ((*want_bursts)[i].end, (*got_bursts)[i].end) << where;
        EXPECT_EQ((*want_bursts)[i].avg_value, (*got_bursts)[i].avg_value)
            << where;
      }
    }

    auto want_qbb = batch.QueryByBurst(id, kK, core::BurstHorizon::kLongTerm);
    auto got_qbb = streamed.QueryByBurst(id, kK, core::BurstHorizon::kLongTerm);
    ASSERT_TRUE(want_qbb.ok() && got_qbb.ok()) << where;
    ASSERT_EQ(want_qbb->size(), got_qbb->size()) << where << " qbb";
    for (size_t i = 0; i < want_qbb->size(); ++i) {
      EXPECT_EQ((*want_qbb)[i].series_id, (*got_qbb)[i].series_id) << where;
      EXPECT_EQ((*want_qbb)[i].bsim, (*got_qbb)[i].bsim) << where;
    }
  }
}

/// Drives a deterministic interleaving of appends and compactions against
/// `apply`/`compact`, shadowing every slide, and checks all verbs against a
/// batch rebuild at periodic checkpoints (including one with a non-empty
/// delta tier and one right after a compaction).
template <typename AppendFn, typename CompactFn, typename Streamed>
void RunInterleaving(std::vector<ts::TimeSeries> shadow, const AppendFn& apply,
                     const CompactFn& compact, const Streamed& streamed,
                     const std::string& what) {
  Rng rng(kSeed + 99);
  for (size_t step = 0; step < 60; ++step) {
    const auto id = static_cast<ts::SeriesId>((step * 13) % kNumSeries);
    const double value = rng.Uniform(0.0, 40.0);
    ASSERT_TRUE(apply(id, value).ok()) << what << " step " << step;
    SlideShadow(&shadow[id], value);
    if (step % 25 == 24) {
      ASSERT_TRUE(compact().ok()) << what << " step " << step;
    }
    if (step % 20 == 19) {
      const core::S2Engine batch = BatchRebuild(shadow);
      ExpectAllVerbsEqual(batch, streamed,
                          what + " step " + std::to_string(step));
    }
  }
}

TEST(StreamEquivalenceTest, SingleEngineRamMatchesBatchRebuild) {
  auto engine = core::S2Engine::Build(MakeCorpus(), EngineOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  RunInterleaving(
      Snapshot(engine->corpus()),
      [&](ts::SeriesId id, double v) { return engine->AppendPoint(id, v); },
      [&] { return engine->Compact(); }, *engine, "single-ram");
  ASSERT_TRUE(engine->ValidateInvariants().ok());
}

TEST(StreamEquivalenceTest, SingleEngineDiskMatchesBatchRebuild) {
  io::MemEnv env;
  core::S2Engine::Options options = EngineOptions();
  options.disk_store_path = "stream_store.bin";
  options.env = &env;
  auto engine = core::S2Engine::Build(MakeCorpus(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  RunInterleaving(
      Snapshot(engine->corpus()),
      [&](ts::SeriesId id, double v) { return engine->AppendPoint(id, v); },
      [&] { return engine->Compact(); }, *engine, "single-disk");
  ASSERT_TRUE(engine->ValidateInvariants().ok());
}

TEST(StreamEquivalenceTest, ShardedRamMatchesBatchRebuild) {
  for (const size_t shards : {1u, 2u, 3u, 8u}) {
    shard::ShardedEngine::Options options;
    options.num_shards = shards;
    options.engine = EngineOptions();
    auto sharded = shard::ShardedEngine::Build(MakeCorpus(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    auto engine = core::S2Engine::Build(MakeCorpus(), EngineOptions());
    ASSERT_TRUE(engine.ok());
    RunInterleaving(
        Snapshot(engine->corpus()),
        [&](ts::SeriesId id, double v) { return sharded->AppendPoint(id, v); },
        [&] { return sharded->Compact(); }, *sharded,
        "sharded-" + std::to_string(shards));
    ASSERT_TRUE(sharded->ValidateInvariants().ok());
    EXPECT_GT(sharded->TotalAppendCount(), 0u);
  }
}

TEST(StreamEquivalenceTest, ShardedDiskMatchesBatchRebuild) {
  for (const size_t shards : {2u, 3u}) {
    io::MemEnv env;
    shard::ShardedEngine::Options options;
    options.num_shards = shards;
    options.engine = EngineOptions();
    options.engine.disk_store_path = "stream_store.bin";
    options.engine.env = &env;
    auto sharded = shard::ShardedEngine::Build(MakeCorpus(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    RunInterleaving(
        Snapshot(MakeCorpus()),
        [&](ts::SeriesId id, double v) { return sharded->AppendPoint(id, v); },
        [&] { return sharded->Compact(); }, *sharded,
        "sharded-disk-" + std::to_string(shards));
    ASSERT_TRUE(sharded->ValidateInvariants().ok());
  }
}

TEST(StreamEquivalenceTest, RepeatedAppendsToTombstonedDeltaRowsStayExact) {
  // Every re-append to a delta-resident series tombstones its old vantage
  // with the *pinned* row it was indexed under (DeltaIndex::Remove), so the
  // tree keeps routing through rows the store no longer holds. Hammering a
  // handful of series many times — with no compaction to wash the
  // tombstones away — piles pinned-row tombstones on exactly the vantages
  // queries must route through, at every shard count.
  for (const size_t shards : {1u, 2u, 8u}) {
    shard::ShardedEngine::Options options;
    options.num_shards = shards;
    options.engine = EngineOptions();
    auto sharded = shard::ShardedEngine::Build(MakeCorpus(), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    std::vector<ts::TimeSeries> shadow = Snapshot(MakeCorpus());
    const std::string what = "tombstone-" + std::to_string(shards);

    Rng rng(kSeed + 7);
    for (size_t step = 0; step < 48; ++step) {
      // Only 4 distinct targets: each series is re-appended ~12 times, so
      // its delta vantage is tombstoned and re-pinned again and again.
      const auto id = static_cast<ts::SeriesId>(step % 4);
      const double value = rng.Uniform(0.0, 40.0);
      ASSERT_TRUE(sharded->AppendPoint(id, value).ok())
          << what << " step " << step;
      SlideShadow(&shadow[id], value);
      if (step % 16 == 15) {
        const core::S2Engine batch = BatchRebuild(shadow);
        ExpectAllVerbsEqual(batch, *sharded,
                            what + " step " + std::to_string(step));
      }
    }
    ASSERT_TRUE(sharded->ValidateInvariants().ok());
  }
}

TEST(StreamEquivalenceTest, IncrementalMaintenanceTracksExactWithinTolerance) {
  // The opt-in O(k)-per-append path (sliding DFT + online burst detector)
  // trades bitwise equality for speed; its drift bound is the same 1e-6
  // documented in stream_feature_test.cc. Euclidean k-NN must stay bitwise
  // (the delta tree always compresses exactly).
  constexpr double kTol = 1e-6;
  auto exact = core::S2Engine::Build(MakeCorpus(), EngineOptions());
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  core::S2Engine::Options options = EngineOptions();
  options.stream.incremental_maintenance = true;
  auto fast = core::S2Engine::Build(MakeCorpus(), options);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();

  // Hammer a few series so the recurrences accumulate real drift — a
  // series' first append only anchors its accumulators with an exact pass.
  Rng rng(kSeed + 42);
  for (size_t step = 0; step < 120; ++step) {
    const auto id = static_cast<ts::SeriesId>(step % 6);
    const double value = rng.Uniform(0.0, 40.0);
    ASSERT_TRUE(exact->AppendPoint(id, value).ok());
    ASSERT_TRUE(fast->AppendPoint(id, value).ok());
  }

  for (ts::SeriesId id = 0; id < 8; ++id) {
    const std::string where = "incremental id " + std::to_string(id);
    auto want_knn = exact->SimilarTo(id, kK);
    auto got_knn = fast->SimilarTo(id, kK);
    ASSERT_TRUE(want_knn.ok() && got_knn.ok()) << where;
    ExpectSameNeighbors(*want_knn, *got_knn, where + " knn");

    // DTW: the drifted feature only moves pruning lower bounds; every
    // reported distance is an exact DTW computed on the raw windows.
    auto want_dtw = exact->SimilarToDtw(id, kK);
    auto got_dtw = fast->SimilarToDtw(id, kK);
    ASSERT_TRUE(want_dtw.ok() && got_dtw.ok()) << where;
    ASSERT_EQ(want_dtw->size(), got_dtw->size()) << where;
    for (size_t i = 0; i < want_dtw->size(); ++i) {
      EXPECT_EQ((*want_dtw)[i].id, (*got_dtw)[i].id) << where << " rank " << i;
      EXPECT_NEAR((*want_dtw)[i].distance, (*got_dtw)[i].distance, kTol)
          << where << " rank " << i;
    }

    for (const auto horizon :
         {core::BurstHorizon::kLongTerm, core::BurstHorizon::kShortTerm}) {
      auto want_bursts = exact->BurstsOf(id, horizon);
      auto got_bursts = fast->BurstsOf(id, horizon);
      ASSERT_TRUE(want_bursts.ok() && got_bursts.ok()) << where;
      ASSERT_EQ(want_bursts->size(), got_bursts->size()) << where;
      for (size_t i = 0; i < want_bursts->size(); ++i) {
        EXPECT_EQ((*want_bursts)[i].start, (*got_bursts)[i].start) << where;
        EXPECT_EQ((*want_bursts)[i].end, (*got_bursts)[i].end) << where;
        EXPECT_NEAR((*want_bursts)[i].avg_value, (*got_bursts)[i].avg_value,
                    kTol)
            << where;
      }
    }
  }
}

// --- WAL crash-recovery ----------------------------------------------------

service::S2Server::Options WalServerOptions(io::Env* wal_env) {
  service::S2Server::Options options;
  options.scheduler.threads = 1;
  options.cache_capacity = 0;
  options.compaction_threshold = 0;  // Manual compaction only.
  options.wal_path = "stream.wal";
  options.wal_env = wal_env;
  return options;
}

TEST(StreamEquivalenceTest, WalReplayAfterCleanCrashLosesNoAcknowledgedAppend) {
  io::MemEnv wal_env;
  std::vector<ts::TimeSeries> shadow = Snapshot(MakeCorpus());

  {
    auto server = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                           WalServerOptions(&wal_env));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    Rng rng(kSeed + 5);
    for (size_t step = 0; step < 30; ++step) {
      const auto id = static_cast<ts::SeriesId>((step * 11) % kNumSeries);
      const double value = rng.Uniform(0.0, 40.0);
      ASSERT_TRUE((*server)->AppendPoint(id, value).ok());
      SlideShadow(&shadow[id], value);
      if (step == 14) ASSERT_TRUE((*server)->Compact().ok());
    }
    // Crash: everything unsynced dies. With sync_every == 1 every
    // acknowledged append was synced, so nothing acknowledged is lost.
    ASSERT_TRUE(wal_env.DropUnsynced().ok());
  }

  auto revived = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                          WalServerOptions(&wal_env));
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  const auto info = (*revived)->stream_info();
  EXPECT_TRUE(info.wal_enabled);
  EXPECT_EQ(info.replayed_records, 30u);

  const core::S2Engine batch = BatchRebuild(shadow);
  ExpectAllVerbsEqual(batch, (*revived)->engine(), "wal-replay");
}

TEST(StreamEquivalenceTest, CrashPointSweepKeepsExactlyTheAcknowledgedPrefix) {
  // Crash the WAL at every mutating-op index that can land inside the append
  // sequence (ops 1-2 are the monitor WAL's header write+sync, 3-4 the
  // stream WAL's; each append is one write + one sync). Whatever was
  // acknowledged before the crash must replay; nothing else may.
  for (uint64_t crash_at = 5; crash_at <= 14; ++crash_at) {
    io::MemEnv base;
    io::FaultPlan plan;
    plan.crash_at_op = crash_at;
    io::FaultInjectingEnv wal_env(&base, plan);

    std::vector<ts::TimeSeries> shadow = Snapshot(MakeCorpus());
    size_t acknowledged = 0;
    {
      auto server = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                             WalServerOptions(&wal_env));
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      Rng rng(kSeed + 6);
      for (size_t step = 0; step < 8; ++step) {
        const auto id = static_cast<ts::SeriesId>((step * 11) % kNumSeries);
        const double value = rng.Uniform(0.0, 40.0);
        if ((*server)->AppendPoint(id, value).ok()) {
          SlideShadow(&shadow[id], value);
          ++acknowledged;
        } else {
          break;  // Crashed mid-append: not acknowledged, not in the shadow.
        }
      }
    }
    ASSERT_TRUE(wal_env.crashed()) << "crash_at " << crash_at;
    wal_env.ClearCrash();

    auto revived = service::S2Server::Build(MakeCorpus(), EngineOptions(),
                                            WalServerOptions(&wal_env));
    ASSERT_TRUE(revived.ok()) << revived.status().ToString();
    EXPECT_EQ((*revived)->stream_info().replayed_records, acknowledged)
        << "crash_at " << crash_at;

    const core::S2Engine batch = BatchRebuild(shadow);
    ExpectAllVerbsEqual(batch, (*revived)->engine(),
                        "crash_at " + std::to_string(crash_at));
  }
}

}  // namespace
}  // namespace s2::stream
