#include "core/s2_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "diag/check.h"
#include "diag/validate.h"
#include "dsp/stats.h"
#include "dtw/dtw.h"
#include "simd/simd.h"

namespace s2::core {

Result<S2Engine> S2Engine::Build(ts::Corpus corpus, const Options& options) {
  if (corpus.empty()) return Status::InvalidArgument("S2Engine: empty corpus");
  const size_t length = corpus.at(0).size();
  for (const ts::TimeSeries& series : corpus.series()) {
    if (series.size() != length) {
      return Status::InvalidArgument("S2Engine: all series must share one length");
    }
  }

  if (!options.simd.empty()) {
    S2_RETURN_NOT_OK(simd::Configure(options.simd));
  }

  S2Engine engine;
  engine.options_ = options;
  engine.long_detector_ = burst::BurstDetector(options.long_burst);
  engine.short_detector_ = burst::BurstDetector(options.short_burst);
  engine.period_detector_ = period::PeriodDetector(options.period);

  // Standardize all sequences (the paper's preprocessing for both
  // similarity and burst features).
  engine.standardized_.reserve(corpus.size());
  for (const ts::TimeSeries& series : corpus.series()) {
    engine.standardized_.push_back(dsp::Standardize(series.values));
  }

  // Name catalog. Later duplicates keep their id unreachable by name, which
  // matches a real log where query strings are unique.
  for (ts::SeriesId id = 0; id < corpus.size(); ++id) {
    engine.by_name_.emplace(corpus.at(id).name, id);
  }

  // Similarity index over the standardized data.
  S2_ASSIGN_OR_RETURN(index::VpTreeIndex built,
                      index::VpTreeIndex::Build(engine.standardized_, options.index));
  engine.index_ = std::make_unique<index::VpTreeIndex>(std::move(built));

  // DTW search helper (Section 8 extension), sharing the budget of the
  // Euclidean index.
  dtw::DtwKnnSearch::Options dtw_options;
  dtw_options.window = options.dtw_window;
  dtw_options.budget_c = options.index.budget_c;
  S2_ASSIGN_OR_RETURN(dtw::DtwKnnSearch dtw_built,
                      dtw::DtwKnnSearch::BuildFeatures(engine.standardized_,
                                                       dtw_options));
  engine.dtw_search_ = std::make_unique<dtw::DtwKnnSearch>(std::move(dtw_built));

  // Verification source: RAM or disk.
  if (options.disk_store_path.empty()) {
    S2_ASSIGN_OR_RETURN(auto source,
                        storage::InMemorySequenceSource::Create(engine.standardized_));
    engine.mem_source_ = source.get();
    engine.source_ = std::move(source);
  } else {
    S2_ASSIGN_OR_RETURN(auto source,
                        storage::DiskSequenceStore::Create(options.disk_store_path,
                                                           engine.standardized_,
                                                           options.env));
    // Disk reads can fail transiently (EINTR, injected faults); wrap them in
    // the retry decorator so one blip does not abort a whole query.
    engine.disk_source_ = source.get();
    auto retrying = std::make_unique<resilience::RetryingSequenceSource>(
        std::move(source), options.retry);
    engine.retry_source_ = retrying.get();
    engine.source_ = std::move(retrying);
  }

  // Burst stores for both horizons.
  for (ts::SeriesId id = 0; id < corpus.size(); ++id) {
    const ts::TimeSeries& series = corpus.at(id);
    S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> long_regions,
                        engine.long_detector_.Detect(series.values));
    engine.long_bursts_.Insert(id, long_regions, series.start_day);
    S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> short_regions,
                        engine.short_detector_.Detect(series.values));
    engine.short_bursts_.Insert(id, short_regions, series.start_day);
  }

  // Approximate tier: adopt the preset config (sharded engines train one on
  // the full corpus before partitioning) or train on this corpus.
  if (options.approx.enabled) {
    approx::SummaryConfig config;
    if (options.approx.preset_config != nullptr) {
      config = *options.approx.preset_config;
    } else {
      S2_ASSIGN_OR_RETURN(config,
                          approx::SummaryConfig::Train(engine.standardized_,
                                                       options.approx.summary));
    }
    S2_ASSIGN_OR_RETURN(approx::SummaryIndex summary,
                        approx::SummaryIndex::Build(std::move(config),
                                                    engine.standardized_));
    engine.summary_ = std::make_unique<approx::SummaryIndex>(std::move(summary));
  }

  engine.corpus_ = std::move(corpus);
  S2_DCHECK_OK(engine.ValidateInvariants());
  return engine;
}

Status S2Engine::ValidateInvariants() const {
  S2_RETURN_NOT_OK(index_->Validate());
  if (delta_ != nullptr) S2_RETURN_NOT_OK(delta_->Validate());
  S2_RETURN_NOT_OK(long_bursts_.Validate());
  S2_RETURN_NOT_OK(short_bursts_.Validate());

  diag::Validator v("S2Engine");
  v.Check(corpus_.size() == standardized_.size())
      << "corpus holds " << corpus_.size() << " series but "
      << standardized_.size() << " standardized rows exist";
  // Every series lives in exactly one index tier; the tiers partition the
  // corpus (delta membership disjointness is enforced by AppendPoint, which
  // removes from one tier before inserting into the other).
  const size_t in_delta = delta_ == nullptr ? 0 : delta_->size();
  v.Check(index_->size() + in_delta == corpus_.size())
      << "index tiers hold " << index_->size() << " main + " << in_delta
      << " delta objects for a corpus of " << corpus_.size();
  const size_t length = standardized_.empty() ? 0 : standardized_.front().size();
  for (size_t id = 0; id < standardized_.size(); ++id) {
    v.Check(standardized_[id].size() == length)
        << "standardized row " << id << " has length "
        << standardized_[id].size() << ", expected " << length;
  }
  for (const auto& [name, id] : by_name_) {
    v.Check(id < corpus_.size())
        << "catalog name '" << name << "' maps to out-of-range id " << id;
  }
  v.Check(source_ != nullptr && source_->num_series() == corpus_.size())
      << "sequence source holds "
      << (source_ == nullptr ? 0 : source_->num_series())
      << " series for a corpus of " << corpus_.size();
  if (summary_ != nullptr) {
    S2_RETURN_NOT_OK(summary_->Validate());
    v.Check(summary_->size() == corpus_.size())
        << "summary index holds " << summary_->size()
        << " envelopes for a corpus of " << corpus_.size();
  }
  return v.ToStatus();
}

Result<ts::SeriesId> S2Engine::FindByName(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("S2Engine: no series named '" + std::string(name) + "'");
  }
  return it->second;
}

Result<ts::SeriesId> S2Engine::AddSeries(ts::TimeSeries series) {
  if (mem_source_ == nullptr) {
    return Status::InvalidArgument(
        "S2Engine::AddSeries: only supported for RAM-resident engines");
  }
  if (series.size() != standardized_.front().size()) {
    return Status::InvalidArgument("S2Engine::AddSeries: series length mismatch");
  }
  std::vector<double> z = dsp::Standardize(series.values);
  S2_ASSIGN_OR_RETURN(ts::SeriesId id, mem_source_->Append(z));
  S2_RETURN_NOT_OK(index_->Insert(id, z, mem_source_));
  {
    S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                        repr::HalfSpectrum::FromSeries(z));
    S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum feature,
                        repr::CompressedSpectrum::Compress(
                            spectrum, repr::ReprKind::kBestKError,
                            options_.index.budget_c));
    S2_RETURN_NOT_OK(dtw_search_->AddFeature(std::move(feature)));
  }

  S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> long_regions,
                      long_detector_.Detect(series.values));
  long_bursts_.Insert(id, long_regions, series.start_day);
  S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> short_regions,
                      short_detector_.Detect(series.values));
  short_bursts_.Insert(id, short_regions, series.start_day);

  if (summary_ != nullptr) S2_RETURN_NOT_OK(summary_->Append(z));

  standardized_.push_back(std::move(z));
  by_name_.emplace(series.name, id);
  corpus_.Add(std::move(series));
  S2_DCHECK_OK(ValidateInvariants());
  return id;
}

Status S2Engine::AppendPoint(ts::SeriesId id, double value) {
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("S2Engine::AppendPoint: value must be finite");
  }
  ts::TimeSeries& series = corpus_.at(id);

  // Stage the slid window; nothing is mutated until the fallible steps pass.
  const double dropped = series.values.front();
  std::vector<double> values(series.values.begin() + 1, series.values.end());
  values.push_back(value);
  std::vector<double> z = dsp::Standardize(values);
  // Pinned for tombstone routing: the row the series is currently indexed
  // under, which the store is about to forget.
  const std::vector<double> old_z = standardized_[id];

  // 1. Stored row first — the index mutations below route against it.
  if (mem_source_ != nullptr) {
    S2_RETURN_NOT_OK(mem_source_->Update(id, z));
  } else {
    S2_RETURN_NOT_OK(disk_source_->UpdateRecord(id, z));
  }

  // 2. Move the series into the delta tier under its new row. The old
  // entry must leave its tier entirely: a tombstoned vantage with a stale
  // compressed repr routes but never advertises bounds, so it can never
  // tighten a pruning radius against the data it no longer describes.
  if (delta_ == nullptr) {
    S2_ASSIGN_OR_RETURN(stream::DeltaIndex created,
                        stream::DeltaIndex::Create(
                            options_.index, static_cast<uint32_t>(z.size())));
    delta_ = std::make_unique<stream::DeltaIndex>(std::move(created));
  }
  if (delta_->Contains(id)) {
    S2_RETURN_NOT_OK(delta_->Remove(id, &old_z));
  } else {
    S2_RETURN_NOT_OK(index_->Remove(id, &old_z));
  }
  const Status inserted = delta_->Insert(id, z, source_.get());
  if (!inserted.ok()) {
    // A routing read failed (disk engines under persistent faults). Roll the
    // series back to its pre-append state: revert the stored row, re-index
    // the old row in the delta. If even that fails the series stays
    // unindexed — degraded but never wrong — until WAL replay rebuilds.
    Status rollback = mem_source_ != nullptr
                          ? mem_source_->Update(id, old_z)
                          : disk_source_->UpdateRecord(id, old_z);
    if (rollback.ok()) rollback = delta_->Insert(id, old_z, source_.get());
    (void)rollback;
    return inserted;
  }

  // 3. Commit the window; every fallible index step is behind us.
  series.values = std::move(values);
  series.start_day += 1;
  standardized_[id] = std::move(z);
  // Re-summarize under the frozen config. The envelope is widened to
  // contain the new projection, so summary pruning stays sound even when
  // the slid window leaves its training-time cell. The rollback path above
  // returns before this point, leaving the summary consistent with the
  // (unchanged) standardized row.
  if (summary_ != nullptr) {
    S2_RETURN_NOT_OK(summary_->Update(id, standardized_[id]));
  }

  // 4. Derived state: DTW feature and burst rows of both horizons.
  S2_RETURN_NOT_OK(RefreshDerivedState(id, dropped, value));

  ++appends_;

  // 5. Standing subscriptions on this series — O(active subscriptions on
  // id), one hash probe when there are none. Evaluation reads only the
  // committed window and standardized row (identical under exact and
  // incremental maintenance), so the fired alert stream cannot depend on
  // the maintenance mode or on which shard this engine happens to be.
  if (registry_.CountOn(id) > 0) {
    const auto eval_start = std::chrono::steady_clock::now();
    monitor::EvalContext ctx;
    ctx.raw = &series.values;
    ctx.z = &standardized_[id];
    ctx.start_day = series.start_day;
    ctx.detector = &period_detector_;
    std::vector<monitor::Alert> fired;
    S2_RETURN_NOT_OK(registry_.Evaluate(id, ctx, &fired));
    if (alert_queue_ != nullptr) {
      alert_queue_->Push(std::move(fired));
      alert_queue_->RecordEval(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - eval_start)
              .count()));
    }
  }

  S2_DCHECK_OK(ValidateInvariants());
  return Status::OK();
}

Status S2Engine::Subscribe(ts::SeriesId key, monitor::Subscription sub) {
  if (key >= corpus_.size()) {
    return Status::NotFound("S2Engine::Subscribe: bad series id");
  }
  const ts::TimeSeries& series = corpus_.at(key);
  monitor::EvalContext ctx;
  ctx.raw = &series.values;
  ctx.z = &standardized_[key];
  ctx.start_day = series.start_day;
  ctx.detector = &period_detector_;
  return registry_.Subscribe(key, std::move(sub), ctx);
}

Status S2Engine::RestoreSubscription(ts::SeriesId key,
                                     monitor::Subscription sub, bool engaged,
                                     uint32_t bin) {
  if (key >= corpus_.size()) {
    return Status::NotFound("S2Engine::RestoreSubscription: bad series id");
  }
  const ts::TimeSeries& series = corpus_.at(key);
  monitor::EvalContext ctx;
  ctx.raw = &series.values;
  ctx.z = &standardized_[key];
  ctx.start_day = series.start_day;
  ctx.detector = &period_detector_;
  return registry_.Restore(key, std::move(sub), engaged, bin, ctx);
}

Status S2Engine::Unsubscribe(monitor::SubscriptionId id) {
  return registry_.Unsubscribe(id);
}

Status S2Engine::RefreshDerivedState(ts::SeriesId id, double x_old,
                                     double x_new) {
  const ts::TimeSeries& series = corpus_.at(id);
  const std::vector<double>& z = standardized_[id];

  bool feature_done = false;
  bool bursts_done = false;
  if (options_.stream.incremental_maintenance) {
    auto it = incremental_.find(id);
    if (it == incremental_.end()) {
      // First append of this series: anchor the accumulators with one exact
      // pass (FFT for the tracked positions, full scans for the burst MA).
      // Creation can be infeasible for degenerate geometries (e.g. windows
      // so short that every bin is retained); those series simply stay on
      // the exact path below.
      auto spectrum = repr::HalfSpectrum::FromSeries(z);
      if (spectrum.ok()) {
        auto feature = repr::CompressedSpectrum::Compress(
            *spectrum, repr::ReprKind::kBestKError, options_.index.budget_c);
        if (feature.ok()) {
          auto sliding =
              stream::SlidingSpectrum::Create(series.values, feature->positions());
          auto long_stream = stream::BurstStream::Create(long_detector_.options(),
                                                         series.values);
          auto short_stream = stream::BurstStream::Create(
              short_detector_.options(), series.values);
          if (sliding.ok() && long_stream.ok() && short_stream.ok()) {
            it = incremental_
                     .emplace(id, IncrementalState{std::move(*sliding),
                                                   std::move(*long_stream),
                                                   std::move(*short_stream)})
                     .first;
          }
        }
      }
    } else {
      it->second.spectrum.Slide(x_old, x_new);
      it->second.long_bursts.Slide(x_new);
      it->second.short_bursts.Slide(x_new);
    }
    if (it != incremental_.end()) {
      S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum feature,
                          it->second.spectrum.ToCompressed());
      S2_RETURN_NOT_OK(dtw_search_->UpdateFeature(id, std::move(feature)));
      feature_done = true;
      long_bursts_.EraseSeries(id);
      long_bursts_.Insert(id, it->second.long_bursts.Regions(),
                          series.start_day);
      short_bursts_.EraseSeries(id);
      short_bursts_.Insert(id, it->second.short_bursts.Regions(),
                           series.start_day);
      bursts_done = true;
    }
  }

  if (!feature_done) {
    S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                        repr::HalfSpectrum::FromSeries(z));
    S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum feature,
                        repr::CompressedSpectrum::Compress(
                            spectrum, repr::ReprKind::kBestKError,
                            options_.index.budget_c));
    S2_RETURN_NOT_OK(dtw_search_->UpdateFeature(id, std::move(feature)));
  }
  if (!bursts_done) {
    S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> long_regions,
                        long_detector_.Detect(series.values));
    long_bursts_.EraseSeries(id);
    long_bursts_.Insert(id, long_regions, series.start_day);
    S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> short_regions,
                        short_detector_.Detect(series.values));
    short_bursts_.EraseSeries(id);
    short_bursts_.Insert(id, short_regions, series.start_day);
  }
  return Status::OK();
}

Status S2Engine::Compact() {
  if (delta_ == nullptr || delta_->size() == 0) return Status::OK();
  // Per-series move keeps the tiers a partition of the corpus even if an
  // insert fails midway (disk routing reads are fallible): a series is in
  // both tiers only between its two statements, which no reader can observe
  // under the writer lock.
  for (ts::SeriesId id : delta_->MemberIds()) {
    S2_RETURN_NOT_OK(index_->Insert(id, standardized_[id], source_.get()));
    S2_RETURN_NOT_OK(delta_->Remove(id, &standardized_[id]));
  }
  // Reset the delta tree outright, dropping its accumulated tombstones.
  S2_RETURN_NOT_OK(delta_->Clear());
  ++compactions_;
  S2_DCHECK_OK(ValidateInvariants());
  return Status::OK();
}

Result<std::vector<index::Neighbor>> S2Engine::SearchIndexBoth(
    const std::vector<double>& z, size_t k,
    index::VpTreeIndex::SearchStats* stats, index::SharedRadius* shared) const {
  if (delta_ == nullptr || delta_->size() == 0) {
    return index_->Search(z, k, source_.get(), stats, shared);
  }
  // The tiers partition the corpus, so this is the scatter-gather argument
  // at tier granularity: each search returns every member of its tier that
  // could be in the global top-k (with exact distances), the shared radius
  // lets each prune against the other's certified bounds, and the merge by
  // (distance, id) is exact. Ids are disjoint across tiers by construction.
  index::SharedRadius local;
  index::SharedRadius* radius = shared != nullptr ? shared : &local;
  S2_ASSIGN_OR_RETURN(std::vector<index::Neighbor> merged,
                      index_->Search(z, k, source_.get(), stats, radius));
  S2_ASSIGN_OR_RETURN(std::vector<index::Neighbor> from_delta,
                      delta_->Search(z, k, source_.get(), stats, radius));
  merged.insert(merged.end(), from_delta.begin(), from_delta.end());
  std::sort(merged.begin(), merged.end(),
            [](const index::Neighbor& a, const index::Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.id < b.id;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarTo(
    ts::SeriesId id, size_t k, index::VpTreeIndex::SearchStats* stats) const {
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  // Ask for k+1 and drop the series itself (its own nearest neighbor).
  S2_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> neighbors,
      SearchIndexBoth(standardized_[id], k + 1, stats, nullptr));
  std::erase_if(neighbors, [id](const index::Neighbor& n) { return n.id == id; });
  if (neighbors.size() > k) neighbors.resize(k);
  return neighbors;
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToSeries(
    const std::vector<double>& raw_values, size_t k,
    index::VpTreeIndex::SearchStats* stats) const {
  const std::vector<double> z = dsp::Standardize(raw_values);
  return SearchIndexBoth(z, k, stats, nullptr);
}

Result<S2Engine::ApproxAnswer> S2Engine::ApproxKnn(
    ts::SeriesId id, const approx::QueryParams& params,
    approx::ScanStats* stats) const {
  if (summary_ == nullptr) {
    return Status::InvalidArgument(
        "S2Engine::ApproxKnn: approximate tier disabled at Build");
  }
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  S2_ASSIGN_OR_RETURN(std::vector<double> proj, ApproxProject(standardized_[id]));
  // The query itself is excluded from the scan, so the population the
  // candidates are drawn from is one smaller than the corpus — the same
  // convention the sharded gather uses, so bounds agree across topologies.
  const size_t population = summary_->size() - 1;
  const size_t c =
      approx::ResolveCandidates(params, population, options_.approx.summary);
  std::vector<approx::SummaryIndex::Candidate> candidates =
      summary_->Candidates(proj, c, id, stats);
  S2_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> neighbors,
      ApproxVerify(standardized_[id], candidates, params.k, stats, nullptr));
  // Canonical answer order — identical to the sharded gather's merge.
  std::sort(neighbors.begin(), neighbors.end(),
            [](const index::Neighbor& a, const index::Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.id < b.id;
            });
  const double worst_lb_sq = candidates.empty() ? 0.0 : candidates.back().lb_sq;
  ApproxAnswer answer;
  answer.bound = approx::BoundFromVerification(worst_lb_sq, candidates.size(),
                                               population, neighbors, params.k);
  answer.neighbors = std::move(neighbors);
  return answer;
}

Result<std::vector<double>> S2Engine::ApproxProject(
    const std::vector<double>& z) const {
  if (summary_ == nullptr) {
    return Status::InvalidArgument(
        "S2Engine::ApproxProject: approximate tier disabled at Build");
  }
  std::vector<double> proj;
  S2_RETURN_NOT_OK(summary_->config().Project(z, &proj));
  return proj;
}

Result<std::vector<approx::SummaryIndex::Candidate>> S2Engine::ApproxCandidates(
    const std::vector<double>& proj, size_t c, ts::SeriesId exclude,
    approx::ScanStats* stats) const {
  if (summary_ == nullptr) {
    return Status::InvalidArgument(
        "S2Engine::ApproxCandidates: approximate tier disabled at Build");
  }
  return summary_->Candidates(proj, c, exclude, stats);
}

Result<std::vector<index::Neighbor>> S2Engine::ApproxVerify(
    const std::vector<double>& z,
    const std::vector<approx::SummaryIndex::Candidate>& candidates, size_t k,
    approx::ScanStats* stats, index::SharedRadius* shared) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  index::BestList best(k);
  // Same loop shape as the VP-tree verification pass, in the squared
  // domain: candidates arrive ascending by (lb_sq, id), so once the local
  // list is full and a lower bound clears the local threshold nothing after
  // it can either. The shared radius only prunes (never terminates) —
  // another shard's tighter answer says "skip this one", not "stop".
  for (const approx::SummaryIndex::Candidate& candidate : candidates) {
    if (candidate.id >= standardized_.size()) {
      return Status::InvalidArgument(
          "S2Engine::ApproxVerify: candidate id out of range");
    }
    const double local = best.Threshold();
    double threshold = local;
    if (shared != nullptr) threshold = std::min(threshold, shared->load());
    const double local_sq = std::isinf(local) ? kInf : local * local;
    const double threshold_sq = std::isinf(threshold) ? kInf : threshold * threshold;
    if (best.Full() && candidate.lb_sq > local_sq) break;
    if (candidate.lb_sq > threshold_sq) continue;
    const std::vector<double>& row = standardized_[candidate.id];
    const double dist_sq = dsp::SquaredEuclideanEarlyAbandon(
        z.data(), row.data(), std::min(z.size(), row.size()), threshold_sq);
    if (dist_sq <= threshold_sq) {
      if (stats != nullptr) ++stats->verified;
      best.Offer(candidate.id, std::sqrt(dist_sq));
      if (shared != nullptr && best.Full()) shared->Tighten(best.Threshold());
    }
  }
  return std::move(best).Take();
}

namespace {

// Exact Euclidean k-NN by linear scan over RAM-resident rows; `exclude`
// drops the query series itself. Cannot touch disk, cannot fail.
std::vector<index::Neighbor> ExactScan(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& query, size_t k, ts::SeriesId exclude) {
  index::BestList best(k);
  for (ts::SeriesId id = 0; id < rows.size(); ++id) {
    if (id == exclude) continue;
    const std::vector<double>& row = rows[id];
    const size_t n = std::min(row.size(), query.size());
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = row[i] - query[i];
      sum += d * d;
    }
    best.Offer(id, std::sqrt(sum));
  }
  return std::move(best).Take();
}

}  // namespace

Result<std::vector<index::Neighbor>> S2Engine::SimilarToExact(
    ts::SeriesId id, size_t k) const {
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  return ExactScan(standardized_, standardized_[id], k, id);
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToSeriesExact(
    const std::vector<double>& raw_values, size_t k) const {
  const std::vector<double> z = dsp::Standardize(raw_values);
  return ExactScan(standardized_, z, k, ts::kInvalidSeriesId);
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToDtwExact(
    ts::SeriesId id, size_t k) const {
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  const std::vector<double>& query = standardized_[id];
  index::BestList best(k);
  for (ts::SeriesId other = 0; other < standardized_.size(); ++other) {
    if (other == id) continue;
    S2_ASSIGN_OR_RETURN(double d,
                        dtw::DtwDistanceEarlyAbandon(query, standardized_[other],
                                                     options_.dtw_window,
                                                     best.Threshold()));
    best.Offer(other, d);
  }
  return std::move(best).Take();
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToDtw(
    ts::SeriesId id, size_t k, dtw::DtwKnnSearch::SearchStats* stats) const {
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  S2_ASSIGN_OR_RETURN(std::vector<index::Neighbor> neighbors,
                      dtw_search_->Search(standardized_[id], k + 1, source_.get(),
                                          stats));
  std::erase_if(neighbors, [id](const index::Neighbor& n) { return n.id == id; });
  if (neighbors.size() > k) neighbors.resize(k);
  return neighbors;
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToStandardized(
    const std::vector<double>& z, size_t k, ts::SeriesId exclude,
    index::VpTreeIndex::SearchStats* stats, index::SharedRadius* shared) const {
  const bool drop_self = exclude != ts::kInvalidSeriesId;
  S2_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> neighbors,
      SearchIndexBoth(z, drop_self ? k + 1 : k, stats, shared));
  if (drop_self) {
    std::erase_if(neighbors,
                  [exclude](const index::Neighbor& n) { return n.id == exclude; });
    if (neighbors.size() > k) neighbors.resize(k);
  }
  return neighbors;
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToDtwStandardized(
    const std::vector<double>& z, size_t k, ts::SeriesId exclude,
    dtw::DtwKnnSearch::SearchStats* stats, index::SharedRadius* shared) const {
  const bool drop_self = exclude != ts::kInvalidSeriesId;
  S2_ASSIGN_OR_RETURN(
      std::vector<index::Neighbor> neighbors,
      dtw_search_->Search(z, drop_self ? k + 1 : k, source_.get(), stats, shared));
  if (drop_self) {
    std::erase_if(neighbors,
                  [exclude](const index::Neighbor& n) { return n.id == exclude; });
    if (neighbors.size() > k) neighbors.resize(k);
  }
  return neighbors;
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToStandardizedExact(
    const std::vector<double>& z, size_t k, ts::SeriesId exclude) const {
  return ExactScan(standardized_, z, k, exclude);
}

Result<std::vector<index::Neighbor>> S2Engine::SimilarToDtwStandardizedExact(
    const std::vector<double>& z, size_t k, ts::SeriesId exclude) const {
  index::BestList best(k);
  for (ts::SeriesId other = 0; other < standardized_.size(); ++other) {
    if (other == exclude) continue;
    S2_ASSIGN_OR_RETURN(double d,
                        dtw::DtwDistanceEarlyAbandon(z, standardized_[other],
                                                     options_.dtw_window,
                                                     best.Threshold()));
    best.Offer(other, d);
  }
  return std::move(best).Take();
}

Result<std::vector<period::PeriodHit>> S2Engine::FindPeriods(ts::SeriesId id) const {
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  return period_detector_.Detect(corpus_.at(id).values);
}

Result<std::vector<burst::BurstRegion>> S2Engine::BurstsOf(
    ts::SeriesId id, BurstHorizon horizon) const {
  if (id >= corpus_.size()) return Status::NotFound("S2Engine: bad series id");
  const ts::TimeSeries& series = corpus_.at(id);
  S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> regions,
                      DetectorFor(horizon).Detect(series.values));
  for (burst::BurstRegion& region : regions) {
    region.start += series.start_day;
    region.end += series.start_day;
  }
  return regions;
}

Result<std::vector<burst::BurstMatch>> S2Engine::QueryByBurst(
    ts::SeriesId id, size_t k, BurstHorizon horizon) const {
  S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> regions, BurstsOf(id, horizon));
  return burst_table(horizon).QueryByBurst(regions, k, id);
}

Result<std::vector<burst::BurstMatch>> S2Engine::QueryByBurstSeries(
    const ts::TimeSeries& series, size_t k, BurstHorizon horizon) const {
  S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> regions,
                      DetectorFor(horizon).Detect(series.values));
  for (burst::BurstRegion& region : regions) {
    region.start += series.start_day;
    region.end += series.start_day;
  }
  return burst_table(horizon).QueryByBurst(regions, k);
}

}  // namespace s2::core
