// The S2 Similarity Tool (paper Section 7.5) as an interactive terminal
// program. It offers the same three functionalities as the paper's C# GUI:
//
//   * identification of important periods,
//   * similarity search,
//   * burst detection & query-by-burst,
//
// plus inspection of the best-k reconstruction quality.
//
//   ./build/examples/s2_tool            # interactive shell
//   echo "demo" | ./build/examples/s2_tool   # scripted demo
//   ./build/examples/s2_tool --serve 4  # server mode: 4 worker threads
//   ./build/examples/s2_tool --serve 4 --shards 4   # scatter-gather topology
//
// Commands:
//   list [prefix]          - list query names
//   show <name>            - plot the demand curve
//   similar <name> [k]     - k most similar queries
//   periods <name>         - significant periods
//   bursts <name> [long|short]
//   qbb <name> [k]         - query-by-burst
//   reconstruct <name> [c] - best-k reconstruction quality
//   append <name> <value>  - stream one more day into a series
//   compact                - merge the delta tier into the main index
//   stream                 - streaming-state snapshot (delta size, counters)
//   replay                 - WAL replay stats from startup
//   checkpoint             - take a coordinated checkpoint now
//   recover                - how this process came up (checkpoint/fallback)
//   wal-ls                 - list live WAL segments (data + monitor)
//   subscribe burst <name> [window [enter [exit]]]
//                          - standing burst alert (MA ratio with hysteresis)
//   subscribe period <name>- standing periodicity-change alert
//   subscribe similar <name> [radius]
//                          - drift alert: the series' own current shape is
//                            the query; alerts fire when appends push it out
//                            of (and back into) the ball
//   unsubscribe <id>       - retire a standing subscription
//   subs                   - list active subscriptions + hysteresis state
//   alerts [max]           - poll pending alerts, then ack them (gaps in
//                            seq mark overflow-dropped alerts)
//   monitor                - standing-query state snapshot
//   demo                   - run a scripted tour
//   quit
//
// Server mode (--serve [threads]) dispatches similar/periods/bursts/qbb
// through the s2::service scheduler (thread pool + result cache) and adds:
//   load <n> [k]           - fire n concurrent similar-queries, print qps
//   metrics                - plain-text metrics snapshot
//
// --shards N (implies server mode) partitions the corpus across N engine
// shards answered by scatter-gather — same answers, and `metrics` shows the
// fan-out instrumentation (server_shard_fanout/prune_hits/latency).
//
// --wal PATH arms the write-ahead log: every `append` is durably logged
// before it is applied, and restarting with the same PATH (and the same
// synthetic corpus) replays the log so no acknowledged append is lost —
// `replay` shows what came back.
//
// --ckpt (requires --wal) arms checkpointed recovery: `checkpoint` commits
// a coordinated snapshot so a restart loads it and replays only the WAL
// tail past its anchor. --ckpt-every N checkpoints automatically every N
// appends; --rotate BYTES segments the WALs so retired history can be
// garbage-collected after each checkpoint.

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/s2_engine.h"
#include "monitor/monitor_wal.h"
#include "monitor/registry.h"
#include "monitor/subscription.h"
#include "stream/wal.h"
#include "service/s2_server.h"
#include "shard/sharded_engine.h"
#include "dsp/stats.h"
#include "querylog/archetypes.h"
#include "querylog/corpus_generator.h"
#include "querylog/synthesizer.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"
#include "timeseries/calendar.h"

using namespace s2;

namespace {

std::string Spark(const std::vector<double>& values, size_t width = 72) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  width = std::min(width, values.size());
  const size_t bucket = (values.size() + width - 1) / width;
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 0 ? hi - lo : 1;
  std::string out;
  for (size_t s = 0; s < values.size(); s += bucket) {
    double m = values[s];
    for (size_t i = s; i < std::min(values.size(), s + bucket); ++i) {
      m = std::max(m, values[i]);
    }
    out += kLevels[std::min<size_t>(7, static_cast<size_t>((m - lo) / span * 8))];
  }
  return out;
}

class Tool {
 public:
  /// `serving == false` keeps the classic inline mode; otherwise queries
  /// dispatch through the s2::service scheduler. The server may wrap either
  /// topology — every command below is topology-neutral.
  Tool(std::unique_ptr<service::S2Server> server, bool serving,
       std::string wal_path = "")
      : server_(std::move(server)),
        serving_(serving),
        wal_path_(std::move(wal_path)) {}

  void Run() {
    std::string line;
    std::printf("s2> ");
    std::fflush(stdout);
    while (std::getline(std::cin, line)) {
      if (!Dispatch(line)) break;
      std::printf("s2> ");
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  bool Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command.empty()) return true;
    if (command == "quit" || command == "exit") return false;
    if (command == "help") {
      Help();
    } else if (command == "list") {
      std::string prefix;
      in >> prefix;
      List(prefix);
    } else if (command == "show") {
      Show(Rest(in));
    } else if (command == "similar") {
      auto [name, k] = NameAndCount(in, 5);
      Similar(name, k);
    } else if (command == "periods") {
      Periods(Rest(in));
    } else if (command == "bursts") {
      std::string rest = Rest(in);
      core::BurstHorizon horizon = core::BurstHorizon::kLongTerm;
      if (rest.size() > 6 && rest.substr(rest.size() - 6) == " short") {
        horizon = core::BurstHorizon::kShortTerm;
        rest = rest.substr(0, rest.size() - 6);
      } else if (rest.size() > 5 && rest.substr(rest.size() - 5) == " long") {
        rest = rest.substr(0, rest.size() - 5);
      }
      Bursts(rest, horizon);
    } else if (command == "qbb") {
      auto [name, k] = NameAndCount(in, 5);
      QueryByBurst(name, k);
    } else if (command == "aknn") {
      Aknn(Rest(in));
    } else if (command == "approx") {
      ApproxState();
    } else if (command == "reconstruct") {
      auto [name, c] = NameAndCount(in, 16);
      Reconstruct(name, c);
    } else if (command == "append") {
      Append(Rest(in));
    } else if (command == "compact") {
      const Status status = server_->Compact();
      if (!status.ok()) {
        std::printf("  %s\n", status.ToString().c_str());
      } else {
        std::printf("  delta tier merged (%llu compactions total)\n",
                    static_cast<unsigned long long>(
                        server_->stream_info().compaction_count));
      }
    } else if (command == "stream") {
      StreamState();
    } else if (command == "replay") {
      ReplayStats();
    } else if (command == "checkpoint") {
      TakeCheckpoint();
    } else if (command == "recover") {
      RecoveryState();
    } else if (command == "wal-ls") {
      ListWalSegments();
    } else if (command == "subscribe") {
      std::string kind;
      in >> kind;
      Subscribe(kind, Rest(in));
    } else if (command == "unsubscribe") {
      unsigned long long id = 0;
      if (in >> id) {
        const Status status = server_->Unsubscribe(id);
        std::printf("  %s\n", status.ok() ? "unsubscribed"
                                          : status.ToString().c_str());
      } else {
        std::printf("  usage: unsubscribe <id>\n");
      }
    } else if (command == "subs") {
      ListSubscriptions();
    } else if (command == "alerts") {
      size_t max = 20;
      if (!(in >> max)) max = 20;
      Alerts(max);
    } else if (command == "monitor") {
      MonitorState();
    } else if (command == "demo") {
      Demo();
    } else if (serving_ && command == "metrics") {
      std::printf("%s", server_->MetricsText().c_str());
    } else if (serving_ && command == "load") {
      size_t n = 200, k = 10;
      if (!(in >> n)) n = 200;
      if (!(in >> k)) k = 10;
      Load(n, k);
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
    return true;
  }

 private:
  static std::string Rest(std::istringstream& in) {
    std::string rest;
    std::getline(in, rest);
    const size_t start = rest.find_first_not_of(' ');
    return start == std::string::npos ? "" : rest.substr(start);
  }

  // Parses "<multi word name> [count]" — the trailing token is a count only
  // if numeric.
  static std::pair<std::string, size_t> NameAndCount(std::istringstream& in,
                                                     size_t default_count) {
    std::string rest = Rest(in);
    size_t count = default_count;
    const size_t space = rest.find_last_of(' ');
    if (space != std::string::npos) {
      const std::string tail = rest.substr(space + 1);
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(tail.c_str(), &end, 10);
      if (end != tail.c_str() && *end == '\0') {
        count = parsed;
        rest = rest.substr(0, space);
      }
    }
    return {rest, count};
  }

  void Help() {
    std::printf(
        "  list [prefix] | show <name> | similar <name> [k] | periods <name>\n"
        "  bursts <name> [long|short] | qbb <name> [k] | reconstruct <name> [c]\n"
        "  aknn <name> [k] [--recall r] [--candidates c] | approx\n"
        "  append <name> <value> | compact | stream | replay\n"
        "  checkpoint | recover | wal-ls\n"
        "  subscribe burst <name> [window [enter [exit]]]\n"
        "  subscribe period <name> | subscribe similar <name> [radius]\n"
        "  unsubscribe <id> | subs | alerts [max] | monitor\n"
        "  demo | quit\n");
    if (serving_) {
      std::printf("  load <n> [k] | metrics     (server mode)\n");
    }
  }

  void List(const std::string& prefix) {
    size_t shown = 0;
    for (ts::SeriesId id = 0; id < CorpusSize() && shown < 40; ++id) {
      const std::string& name = SeriesAt(id).name;
      if (name.rfind(prefix, 0) == 0) {
        std::printf("  %s\n", name.c_str());
        ++shown;
      }
    }
  }

  void Show(const std::string& name) {
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    const auto& series = SeriesAt(*id);
    std::printf("  %s  (%zu days from %s)\n", series.name.c_str(), series.size(),
                ts::FormatDayIndex(series.start_day).c_str());
    std::printf("  %s\n", Spark(series.values).c_str());
  }

  void Similar(const std::string& name, size_t k) {
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    if (serving_) {
      service::QueryRequest request;
      request.kind = service::RequestKind::kSimilarTo;
      request.id = *id;
      request.k = k;
      auto ticket = server_->Submit(request);
      if (!ticket.ok()) {
        std::printf("  %s\n", ticket.status().ToString().c_str());
        return;
      }
      service::QueryResponse response = ticket->Get();
      if (!response.status.ok()) {
        std::printf("  %s\n", response.status.ToString().c_str());
        return;
      }
      for (const auto& n : response.neighbors) {
        std::printf("  %-24s distance %.2f  %s\n",
                    SeriesAt(n.id).name.c_str(), n.distance,
                    Spark(SeriesAt(n.id).values, 48).c_str());
      }
      std::printf("  [%s, %lld us]\n",
                  response.cache_hit ? "cache hit" : "engine",
                  static_cast<long long>(response.latency.count()));
      return;
    }
    index::VpTreeIndex::SearchStats stats;
    auto neighbors = engine().SimilarTo(*id, k, &stats);
    if (!neighbors.ok()) return;
    for (const auto& n : *neighbors) {
      std::printf("  %-24s distance %.2f  %s\n",
                  SeriesAt(n.id).name.c_str(), n.distance,
                  Spark(SeriesAt(n.id).values, 48).c_str());
    }
    std::printf("  [index: %zu bound computations, %zu full fetches]\n",
                stats.bound_computations, stats.full_retrievals);
  }

  // `aknn <name> [k] [--recall r] [--candidates c]` — the approximate-first
  // tier: summary-scan candidates, exactly verified, with the per-query
  // quality bound printed alongside the answer.
  void Aknn(const std::string& rest) {
    std::istringstream tokens(rest);
    std::vector<std::string> words;
    std::string word;
    while (tokens >> word) words.push_back(word);
    double recall = 0.0;
    size_t candidates = 0;
    std::vector<std::string> plain;
    for (size_t i = 0; i < words.size(); ++i) {
      if (words[i] == "--recall" && i + 1 < words.size()) {
        recall = std::strtod(words[++i].c_str(), nullptr);
      } else if (words[i] == "--candidates" && i + 1 < words.size()) {
        candidates = std::strtoul(words[++i].c_str(), nullptr, 10);
      } else {
        plain.push_back(words[i]);
      }
    }
    size_t k = 10;
    if (!plain.empty()) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(plain.back().c_str(), &end, 10);
      if (end != plain.back().c_str() && *end == '\0') {
        k = parsed;
        plain.pop_back();
      }
    }
    std::string name;
    for (size_t i = 0; i < plain.size(); ++i) {
      if (i > 0) name += ' ';
      name += plain[i];
    }
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }

    std::vector<index::Neighbor> neighbors;
    approx::QualityBound quality;
    if (serving_) {
      service::QueryRequest request;
      request.kind = service::RequestKind::kApproxKnn;
      request.id = *id;
      request.k = k;
      request.recall_target = recall;
      request.max_candidates = candidates;
      auto ticket = server_->Submit(request);
      if (!ticket.ok()) {
        std::printf("  %s\n", ticket.status().ToString().c_str());
        return;
      }
      service::QueryResponse response = ticket->Get();
      if (!response.status.ok()) {
        std::printf("  %s\n", response.status.ToString().c_str());
        return;
      }
      neighbors = std::move(response.neighbors);
      quality = response.quality;
    } else {
      approx::QueryParams params;
      params.k = k;
      params.recall_target = recall;
      params.max_candidates = candidates;
      auto answer = server_->is_sharded()
                        ? server_->sharded().ApproxKnn(*id, params)
                        : engine().ApproxKnn(*id, params);
      if (!answer.ok()) {
        std::printf("  %s\n", answer.status().ToString().c_str());
        return;
      }
      neighbors = std::move(answer->neighbors);
      quality = answer->bound;
    }
    for (const auto& n : neighbors) {
      std::printf("  %-24s distance %.2f  %s\n", SeriesAt(n.id).name.c_str(),
                  n.distance, Spark(SeriesAt(n.id).values, 48).c_str());
    }
    if (quality.guaranteed_exact) {
      std::printf("  [exact: verified %zu of %zu candidates]\n",
                  quality.candidates, quality.population);
    } else {
      std::printf(
          "  [approximate: epsilon <= %.4f, non-candidates >= %.2f away, "
          "%zu of %zu verified]\n",
          quality.epsilon, quality.threshold_lb, quality.candidates,
          quality.population);
    }
  }

  // `approx` — the summary-tier introspection snapshot.
  void ApproxState() {
    const service::S2Server::ApproxInfo info = server_->approx_info();
    if (!info.enabled) {
      std::printf("  approximate tier disabled\n");
      return;
    }
    std::printf("  summary: %zu dims x %zu cells over %zu series\n",
                info.summary_dims, info.summary_cells, info.indexed_series);
    std::printf("  envelopes: %.2f MiB resident\n",
                static_cast<double>(info.summary_bytes) / (1024.0 * 1024.0));
    std::printf("  config fingerprint: %016llx\n",
                static_cast<unsigned long long>(info.config_fingerprint));
  }

  // Fires `n` concurrent SimilarTo requests over a hot-key set and prints
  // aggregate throughput — a one-command load generator for the server.
  void Load(size_t n, size_t k) {
    const size_t corpus_size = CorpusSize();
    const auto start = std::chrono::steady_clock::now();
    std::vector<service::RequestTicket> tickets;
    tickets.reserve(n);
    size_t rejected = 0;
    for (size_t i = 0; i < n; ++i) {
      service::QueryRequest request;
      request.kind = service::RequestKind::kSimilarTo;
      request.id = static_cast<ts::SeriesId>(i % std::min<size_t>(corpus_size, 16));
      request.k = k;
      auto ticket = server_->Submit(request);
      if (ticket.ok()) {
        tickets.push_back(std::move(*ticket));
      } else {
        ++rejected;
      }
    }
    size_t ok = 0;
    for (auto& ticket : tickets) {
      if (ticket.Get().status.ok()) ++ok;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf(
        "  %zu ok, %zu rejected (backpressure) in %.3f s  ->  %.0f qps\n", ok,
        rejected, seconds, static_cast<double>(ok) / seconds);
    std::printf("  cache: %llu hits / %llu misses\n",
                static_cast<unsigned long long>(server_->cache().hits()),
                static_cast<unsigned long long>(server_->cache().misses()));
  }

  void Periods(const std::string& name) {
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    std::vector<period::PeriodHit> periods;
    if (serving_) {
      service::QueryRequest request;
      request.kind = service::RequestKind::kPeriodsOf;
      request.id = *id;
      service::QueryResponse response = server_->Execute(request);
      if (!response.status.ok()) return;
      periods = std::move(response.periods);
    } else {
      auto direct = engine().FindPeriods(*id);
      if (!direct.ok()) return;
      periods = std::move(direct).value();
    }
    if (periods.empty()) {
      std::printf("  no significant periods\n");
      return;
    }
    for (const auto& p : periods) {
      std::printf("  period %8.2f days   power %8.2f\n", p.period, p.power);
    }
  }

  void Bursts(const std::string& name, core::BurstHorizon horizon) {
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    std::vector<burst::BurstRegion> regions;
    if (serving_) {
      service::QueryRequest request;
      request.kind = service::RequestKind::kBurstsOf;
      request.id = *id;
      request.horizon = horizon;
      service::QueryResponse response = server_->Execute(request);
      if (!response.status.ok()) return;
      regions = std::move(response.bursts);
    } else {
      auto direct = engine().BurstsOf(*id, horizon);
      if (!direct.ok()) return;
      regions = std::move(direct).value();
    }
    if (regions.empty()) {
      std::printf("  no bursts\n");
      return;
    }
    for (const auto& b : regions) {
      std::printf("  [%s .. %s]  height %+.2f  (%d days)\n",
                  ts::FormatDayIndex(b.start).c_str(),
                  ts::FormatDayIndex(b.end).c_str(), b.avg_value, b.length());
    }
  }

  void QueryByBurst(const std::string& name, size_t k) {
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    std::vector<burst::BurstMatch> matches;
    if (serving_) {
      service::QueryRequest request;
      request.kind = service::RequestKind::kQueryByBurst;
      request.id = *id;
      request.k = k;
      service::QueryResponse response = server_->Execute(request);
      if (!response.status.ok()) return;
      matches = std::move(response.burst_matches);
    } else {
      auto direct = engine().QueryByBurst(*id, k, core::BurstHorizon::kLongTerm);
      if (!direct.ok()) return;
      matches = std::move(direct).value();
    }
    for (const auto& m : matches) {
      std::printf("  %-24s BSim %.3f\n",
                  SeriesAt(m.series_id).name.c_str(), m.bsim);
    }
  }

  void Reconstruct(const std::string& name, size_t c) {
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    const std::vector<double> z = StandardizedRow(*id);
    auto spectrum = repr::HalfSpectrum::FromSeries(z);
    if (!spectrum.ok()) return;
    auto compressed = repr::CompressedSpectrum::Compress(
        *spectrum, repr::ReprKind::kBestKError, c);
    if (!compressed.ok()) {
      std::printf("  %s\n", compressed.status().ToString().c_str());
      return;
    }
    auto reconstruction = compressed->Reconstruct();
    if (!reconstruction.ok()) return;
    std::printf("  original      %s\n", Spark(z).c_str());
    std::printf("  best-%-2zu       %s   (error %.1f%% of energy)\n",
                compressed->positions().size(), Spark(*reconstruction).c_str(),
                100.0 * compressed->error() / spectrum->Energy());
  }

  // "append <multi word name> <value>" — the trailing token is the value.
  void Append(const std::string& rest) {
    const size_t space = rest.find_last_of(' ');
    if (space == std::string::npos) {
      std::printf("  usage: append <name> <value>\n");
      return;
    }
    const std::string tail = rest.substr(space + 1);
    char* end = nullptr;
    const double value = std::strtod(tail.c_str(), &end);
    if (end == tail.c_str() || *end != '\0') {
      std::printf("  usage: append <name> <value>\n");
      return;
    }
    const std::string name = rest.substr(0, space);
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    const Status status = server_->AppendPoint(*id, value);
    if (!status.ok()) {
      std::printf("  %s\n", status.ToString().c_str());
      return;
    }
    const auto info = server_->stream_info();
    std::printf("  appended %.2f to '%s'  (delta tier: %zu series%s)\n", value,
                name.c_str(), info.delta_size,
                info.wal_enabled ? ", logged" : "");
  }

  void StreamState() {
    const auto info = server_->stream_info();
    std::printf("  wal          %s\n", info.wal_enabled ? "on" : "off");
    std::printf("  delta size   %zu series\n", info.delta_size);
    std::printf("  appends      %llu\n",
                static_cast<unsigned long long>(info.append_count));
    std::printf("  compactions  %llu\n",
                static_cast<unsigned long long>(info.compaction_count));
  }

  void ReplayStats() {
    const auto info = server_->stream_info();
    if (!info.wal_enabled) {
      std::printf("  no WAL (start with --wal PATH)\n");
      return;
    }
    std::printf("  replayed %zu records (%llu torn tail bytes dropped) in %lld us\n",
                info.replayed_records,
                static_cast<unsigned long long>(info.replay_dropped_bytes),
                static_cast<long long>(info.replay_time.count()));
    const auto minfo = server_->monitor_info();
    if (minfo.wal_enabled) {
      std::printf("  monitor log: %llu ops replayed (%llu bytes dropped)\n",
                  static_cast<unsigned long long>(minfo.replayed_ops),
                  static_cast<unsigned long long>(minfo.replay_dropped_bytes));
    }
  }

  void TakeCheckpoint() {
    const Status status = server_->Checkpoint();
    if (!status.ok()) {
      std::printf("  %s\n", status.ToString().c_str());
      return;
    }
    const auto info = server_->checkpoint_info();
    std::printf(
        "  generation %llu committed  (anchors: %llu appends, %llu monitor "
        "ops)\n",
        static_cast<unsigned long long>(info.generation),
        static_cast<unsigned long long>(info.anchor_appends),
        static_cast<unsigned long long>(info.anchor_monitor_ops));
  }

  void RecoveryState() {
    const auto info = server_->checkpoint_info();
    if (!info.enabled) {
      std::printf("  checkpointing off (start with --wal PATH --ckpt)\n");
      return;
    }
    const char* origin = "cold start / full replay";
    if (info.recovered_from_checkpoint) {
      origin = info.recovered_from_fallback
                   ? "previous checkpoint generation (newest was corrupt)"
                   : "checkpoint";
    }
    std::printf("  came up from     %s\n", origin);
    std::printf("  replay started   append %llu, monitor op %llu\n",
                static_cast<unsigned long long>(info.recovery_anchor_appends),
                static_cast<unsigned long long>(
                    info.recovery_anchor_monitor_ops));
    if (info.generation > 0) {
      std::printf("  last generation  %llu (anchors %llu / %llu)\n",
                  static_cast<unsigned long long>(info.generation),
                  static_cast<unsigned long long>(info.anchor_appends),
                  static_cast<unsigned long long>(info.anchor_monitor_ops));
    } else {
      std::printf("  last generation  (none committed yet)\n");
    }
  }

  void ListWalSegments() {
    if (wal_path_.empty()) {
      std::printf("  no WAL (start with --wal PATH)\n");
      return;
    }
    const auto print = [](const char* label,
                          const Result<std::vector<io::walseg::SegmentInfo>>&
                              segments) {
      if (!segments.ok()) {
        std::printf("  %s: %s\n", label, segments.status().ToString().c_str());
        return;
      }
      std::printf("  %s (%zu segment%s)\n", label, segments->size(),
                  segments->size() == 1 ? "" : "s");
      for (const auto& seg : *segments) {
        std::printf("    seq %-6llu base %-10llu %s\n",
                    static_cast<unsigned long long>(seg.seq),
                    static_cast<unsigned long long>(seg.base_records),
                    seg.path.c_str());
      }
    };
    print("data log", stream::Wal::ListSegments(nullptr, wal_path_));
    print("monitor log",
          monitor::MonitorWal::ListSegments(nullptr, wal_path_ + ".monitor"));
  }

  // Splits "<multi word name> [num [num [num]]]" — trailing numeric tokens
  // (at most `max_numbers`) peel off into `numbers`, front to back.
  static std::string SplitTrailingNumbers(std::string rest, size_t max_numbers,
                                          std::vector<double>* numbers) {
    std::vector<double> tail;
    while (tail.size() < max_numbers) {
      const size_t space = rest.find_last_of(' ');
      if (space == std::string::npos) break;
      const std::string token = rest.substr(space + 1);
      char* end = nullptr;
      const double parsed = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') break;
      tail.insert(tail.begin(), parsed);
      rest = rest.substr(0, space);
    }
    *numbers = std::move(tail);
    return rest;
  }

  void Subscribe(const std::string& kind, const std::string& rest) {
    monitor::Subscription sub;
    std::vector<double> params;
    std::string name;
    if (kind == "burst") {
      name = SplitTrailingNumbers(rest, 3, &params);
      sub.kind = monitor::SubscriptionKind::kBurstThreshold;
      if (params.size() > 0) sub.burst.window = static_cast<uint32_t>(params[0]);
      if (params.size() > 1) sub.burst.enter_ratio = params[1];
      if (params.size() > 2) sub.burst.exit_ratio = params[2];
    } else if (kind == "period") {
      name = rest;
      sub.kind = monitor::SubscriptionKind::kPeriodicityChange;
    } else if (kind == "similar") {
      name = SplitTrailingNumbers(rest, 1, &params);
      sub.kind = monitor::SubscriptionKind::kSimilarityWatch;
      sub.similarity.radius = params.empty() ? 1.0 : params[0];
    } else {
      std::printf("  usage: subscribe burst|period|similar <name> [params]\n");
      return;
    }
    auto id = FindId(name);
    if (!id.ok()) {
      std::printf("  %s\n", id.status().ToString().c_str());
      return;
    }
    sub.series = *id;
    if (sub.kind == monitor::SubscriptionKind::kSimilarityWatch) {
      // The series' own current shape is the query: the watch arms inside
      // the ball (silently) and alerts when future appends push it out.
      sub.similarity.query = SeriesAt(*id).values;
    }
    auto assigned = server_->Subscribe(sub);
    if (!assigned.ok()) {
      std::printf("  %s\n", assigned.status().ToString().c_str());
      return;
    }
    std::printf("  subscription %llu armed on '%s' (%s)\n",
                static_cast<unsigned long long>(*assigned), name.c_str(),
                kind.c_str());
  }

  void ListSubscriptions() {
    // Topology-neutral: one engine's registry, or every shard's (entries
    // carry global series ids either way; merge sorted by id).
    std::vector<monitor::SubscriptionRegistry::Entry> entries;
    if (server_->is_sharded()) {
      for (size_t s = 0; s < server_->sharded().num_shards(); ++s) {
        const auto shard_entries =
            server_->sharded().shard(s).monitor_registry().List();
        entries.insert(entries.end(), shard_entries.begin(),
                       shard_entries.end());
      }
      std::sort(entries.begin(), entries.end(),
                [](const auto& a, const auto& b) { return a.sub.id < b.sub.id; });
    } else {
      entries = engine().monitor_registry().List();
    }
    if (entries.empty()) {
      std::printf("  no active subscriptions\n");
      return;
    }
    static const char* kKinds[] = {"burst", "period", "similar"};
    for (const auto& entry : entries) {
      std::printf("  #%-4llu %-8s %-24s %s\n",
                  static_cast<unsigned long long>(entry.sub.id),
                  kKinds[static_cast<uint32_t>(entry.sub.kind)],
                  SeriesAt(entry.sub.series).name.c_str(),
                  entry.engaged ? "engaged" : "armed");
    }
  }

  void Alerts(size_t max) {
    static const char* kAlertKinds[] = {
        "burst-begin",  "burst-end",   "period-gained",   "period-shift",
        "period-lost",  "similar-in",  "similar-out"};
    const std::vector<monitor::Alert> alerts = server_->PollAlerts(max);
    if (alerts.empty()) {
      std::printf("  no pending alerts\n");
      return;
    }
    uint64_t expected = last_seen_seq_set_ ? last_seen_seq_ + 1
                                           : alerts.front().seq;
    for (const auto& alert : alerts) {
      if (alert.seq != expected) {
        std::printf("  ... %llu alert(s) dropped (queue overflow)\n",
                    static_cast<unsigned long long>(alert.seq - expected));
      }
      std::printf("  seq %-5llu #%-3llu %-14s %-20s %s  value %.3f vs %.3f\n",
                  static_cast<unsigned long long>(alert.seq),
                  static_cast<unsigned long long>(alert.subscription),
                  kAlertKinds[static_cast<uint32_t>(alert.kind)],
                  SeriesAt(alert.series).name.c_str(),
                  ts::FormatDayIndex(alert.day).c_str(), alert.value,
                  alert.threshold);
      expected = alert.seq + 1;
    }
    last_seen_seq_ = alerts.back().seq;
    last_seen_seq_set_ = true;
    const Status acked = server_->AckAlerts(last_seen_seq_);
    if (!acked.ok()) {
      std::printf("  ack failed: %s\n", acked.ToString().c_str());
      return;
    }
    std::printf("  acked through seq %llu%s\n",
                static_cast<unsigned long long>(last_seen_seq_),
                server_->monitor_info().wal_enabled ? " (logged)" : "");
  }

  void MonitorState() {
    const auto info = server_->monitor_info();
    std::printf("  wal            %s\n", info.wal_enabled ? "on" : "off");
    std::printf("  subscriptions  %zu\n", info.active_subscriptions);
    std::printf("  queue depth    %zu\n", info.queue_depth);
    std::printf("  alerts fired   %llu  (dropped %llu)\n",
                static_cast<unsigned long long>(info.alerts_fired),
                static_cast<unsigned long long>(info.alerts_dropped));
    if (info.any_acked) {
      std::printf("  acked upto     seq %llu\n",
                  static_cast<unsigned long long>(info.acked_upto));
    } else {
      std::printf("  acked upto     (nothing acked yet)\n");
    }
  }

  void Demo() {
    std::printf("--- show cinema\n");
    Show("cinema");
    std::printf("--- similar cinema\n");
    Similar("cinema", 5);
    std::printf("--- aknn cinema (approximate tier with quality bound)\n");
    Aknn("cinema 5 --recall 0.95");
    std::printf("--- periods cinema\n");
    Periods("cinema");
    std::printf("--- periods full moon\n");
    Periods("full moon");
    std::printf("--- bursts easter\n");
    Bursts("easter", core::BurstHorizon::kLongTerm);
    std::printf("--- qbb christmas\n");
    QueryByBurst("christmas", 5);
    std::printf("--- reconstruct cinema 8\n");
    Reconstruct("cinema", 8);
    std::printf("--- subscribe burst cinema\n");
    Subscribe("burst", "cinema 7 1.3 1.1");
    std::printf("--- append a hot streak, then poll\n");
    for (int i = 0; i < 8; ++i) Dispatch("append cinema 5000");
    Alerts(20);
    std::printf("--- subs\n");
    ListSubscriptions();
  }

  const core::S2Engine& engine() const { return server_->engine(); }

  // Topology-neutral catalog access: the commands above must not care
  // whether the server wraps one engine or a sharded scatter-gather one.
  size_t CorpusSize() const {
    return server_->is_sharded() ? server_->sharded().size()
                                 : engine().corpus().size();
  }

  Result<ts::SeriesId> FindId(const std::string& name) const {
    return server_->is_sharded() ? server_->sharded().FindByName(name)
                                 : engine().FindByName(name);
  }

  const ts::TimeSeries& SeriesAt(ts::SeriesId id) const {
    if (server_->is_sharded()) return *server_->sharded().Series(id).value();
    return engine().corpus().at(id);
  }

  std::vector<double> StandardizedRow(ts::SeriesId id) const {
    if (server_->is_sharded()) {
      const auto placement = server_->sharded().PlacementOf(id);
      return server_->sharded().shard(placement->shard)
          .standardized(placement->local);
    }
    return engine().standardized(id);
  }

  std::unique_ptr<service::S2Server> server_;
  bool serving_;
  /// Startup --wal path; empty disables the wal-ls command.
  std::string wal_path_;
  /// Last alert seq this shell has seen, for cross-poll gap detection.
  uint64_t last_seen_seq_ = 0;
  bool last_seen_seq_set_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  size_t serve_threads = 0;
  size_t shards = 1;
  std::string wal_path;
  bool ckpt = false;
  uint64_t ckpt_every = 0;
  uint64_t rotate_bytes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve_threads = 4;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
        serve_threads = std::strtoul(argv[i + 1], nullptr, 10);
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoul(argv[i + 1], nullptr, 10);
      if (shards == 0) shards = 1;
    } else if (std::strcmp(argv[i], "--wal") == 0 && i + 1 < argc) {
      wal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ckpt") == 0) {
      ckpt = true;
    } else if (std::strcmp(argv[i], "--ckpt-every") == 0 && i + 1 < argc) {
      ckpt_every = std::strtoull(argv[++i], nullptr, 10);
      ckpt = true;
    } else if (std::strcmp(argv[i], "--rotate") == 0 && i + 1 < argc) {
      rotate_bytes = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  // Sharded execution dispatches through the server; force serve mode.
  if (shards > 1 && serve_threads == 0) serve_threads = 4;

  Rng rng(75);
  ts::Corpus corpus;
  for (auto archetype :
       {qlog::MakeCinema(), qlog::MakeEaster(), qlog::MakeElvis(),
        qlog::MakeFullMoon(), qlog::MakeNordstrom(), qlog::MakeHalloween(),
        qlog::MakeChristmas(), qlog::MakeFlowers(), qlog::MakeHurricane()}) {
    auto series = qlog::Synthesize(archetype, 0, 1024, &rng);
    if (series.ok()) corpus.Add(std::move(series).ValueOrDie());
  }
  qlog::CorpusSpec spec;
  spec.num_series = 500;
  spec.n_days = 1024;
  spec.seed = 76;
  auto filler = qlog::GenerateCorpus(spec);
  if (filler.ok()) {
    for (const auto& series : filler->series()) corpus.Add(series);
  }

  const size_t corpus_size = corpus.size();
  core::S2Engine::Options options;
  options.index.budget_c = 16;
  options.long_burst.min_avg_value = 0.5;
  options.long_burst.min_length = 5;
  service::S2Server::Options server_options;
  server_options.scheduler.threads = serve_threads > 0 ? serve_threads : 1;
  server_options.cache_capacity = serve_threads > 0 ? 1024 : 0;
  server_options.shards = shards;
  server_options.wal_path = wal_path;
  server_options.checkpoint_enabled = ckpt;
  server_options.checkpoint_every_appends = ckpt_every;
  server_options.wal_rotate_bytes = rotate_bytes;
  // Recover prefers the newest committed checkpoint + WAL tail; it falls
  // through to a full Build (and full replay) when none exists yet.
  auto server =
      wal_path.empty()
          ? service::S2Server::Build(std::move(corpus), options, server_options)
          : service::S2Server::Recover(std::move(corpus), options,
                                       server_options);
  if (!server.ok()) {
    std::printf("build failed: %s\n", server.status().ToString().c_str());
    return 1;
  }
  size_t compressed_bytes = 0;
  if ((*server)->is_sharded()) {
    const shard::ShardedEngine& sharded = (*server)->sharded();
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      compressed_bytes += sharded.shard(s).index().CompressedBytes();
    }
  } else {
    compressed_bytes = (*server)->engine().index().CompressedBytes();
  }
  std::printf(
      "S2 Similarity Tool - %zu queries indexed (%zu KiB compressed "
      "features).\nType 'help' for commands, 'demo' for a tour.\n",
      corpus_size, compressed_bytes / 1024);
  if (serve_threads > 0) {
    std::printf("Server mode: %zu worker threads, result cache on", serve_threads);
    if (shards > 1) std::printf(", %zu shards", shards);
    std::printf(".\n");
  }
  if (!wal_path.empty()) {
    const auto info = (*server)->stream_info();
    std::printf("WAL at %s: replayed %zu records (%llu bytes dropped).\n",
                wal_path.c_str(), info.replayed_records,
                static_cast<unsigned long long>(info.replay_dropped_bytes));
    const auto ckpt_info = (*server)->checkpoint_info();
    if (ckpt_info.recovered_from_checkpoint) {
      std::printf("Recovered from checkpoint%s: replay began at append %llu.\n",
                  ckpt_info.recovered_from_fallback ? " (fallback generation)"
                                                    : "",
                  static_cast<unsigned long long>(
                      ckpt_info.recovery_anchor_appends));
    }
  }
  Tool tool(std::move(server).ValueOrDie(), serve_threads > 0, wal_path);
  tool.Run();
  return 0;
}
