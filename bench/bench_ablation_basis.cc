// Ablation: the paper claims its algorithms "can be adapted to any class of
// orthogonal decompositions ... with minimal or no adjustments". We run the
// identical compression + bounding + pruning machinery in the Fourier basis
// (the paper's choice) and in the Haar wavelet basis, and compare
//   (a) energy captured by the best-k coefficients,
//   (b) lower/upper bound tightness, and
//   (c) 1-NN pruning power,
// per workload family. Periodic demand favors Fourier; bursty/piecewise
// demand favors Haar.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dsp/stats.h"
#include "querylog/corpus_generator.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2 {
namespace {

struct BasisStats {
  double energy_captured = 0.0;
  double lb_sum = 0.0;
  double ub_sum = 0.0;
  double truth_sum = 0.0;
  double fraction_examined = 0.0;
};

BasisStats Evaluate(const std::vector<std::vector<double>>& rows,
                    const std::vector<std::vector<double>>& queries,
                    repr::Basis basis, size_t c) {
  BasisStats stats;
  std::vector<repr::HalfSpectrum> spectra;
  std::vector<repr::CompressedSpectrum> compressed;
  for (const auto& row : rows) {
    auto spectrum = repr::HalfSpectrum::FromSeriesInBasis(row, basis);
    if (!spectrum.ok()) return stats;
    auto rep = repr::CompressedSpectrum::Compress(
        *spectrum, repr::ReprKind::kBestKError, c);
    if (!rep.ok()) return stats;
    stats.energy_captured += 1.0 - rep->error() / std::max(1e-12, spectrum->Energy());
    compressed.push_back(std::move(rep).ValueOrDie());
    spectra.push_back(std::move(spectrum).ValueOrDie());
  }
  stats.energy_captured /= static_cast<double>(rows.size());

  for (const auto& query : queries) {
    auto query_spectrum = repr::HalfSpectrum::FromSeriesInBasis(query, basis);
    if (!query_spectrum.ok()) return stats;
    struct Entry {
      uint32_t id;
      double lb;
      double ub;
    };
    std::vector<Entry> entries;
    double sub = std::numeric_limits<double>::infinity();
    for (uint32_t id = 0; id < rows.size(); ++id) {
      auto bounds = repr::ComputeBounds(*query_spectrum, compressed[id],
                                        repr::BoundMethod::kBestMinError);
      if (!bounds.ok()) return stats;
      stats.lb_sum += bounds->lower;
      stats.ub_sum += bounds->upper;
      stats.truth_sum += dsp::EuclideanEarlyAbandon(
          query, rows[id], std::numeric_limits<double>::infinity());
      entries.push_back({id, bounds->lower, bounds->upper});
      sub = std::min(sub, bounds->upper);
    }
    std::erase_if(entries, [sub](const Entry& e) { return e.lb > sub; });
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.lb < b.lb; });
    size_t examined = 0;
    double best = std::numeric_limits<double>::infinity();
    for (const Entry& entry : entries) {
      if (entry.lb > best) break;
      ++examined;
      best = std::min(best, dsp::EuclideanEarlyAbandon(
                                query, rows[entry.id],
                                std::isinf(best)
                                    ? std::numeric_limits<double>::infinity()
                                    : best * best));
    }
    stats.fraction_examined +=
        static_cast<double>(examined) / static_cast<double>(rows.size());
  }
  stats.fraction_examined /= static_cast<double>(queries.size());
  return stats;
}

void RunFamily(const char* label, const qlog::FamilyMix& mix, size_t db,
               size_t queries_count, size_t c) {
  qlog::CorpusSpec spec;
  spec.num_series = db;
  spec.n_days = 1024;
  spec.seed = 61;
  spec.mix = mix;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return;
  const auto rows = bench::StandardizedRows(*corpus);
  auto held_out = qlog::GenerateQueries(spec, queries_count);
  if (!held_out.ok()) return;
  std::vector<std::vector<double>> queries;
  for (const auto& q : *held_out) queries.push_back(dsp::Standardize(q.values));

  const BasisStats fourier = Evaluate(rows, queries, repr::Basis::kFourierHalf, c);
  const BasisStats haar = Evaluate(rows, queries, repr::Basis::kOrthonormalReal, c);

  std::printf("\n%s (db=%zu, c=%zu)\n", label, db, c);
  std::printf("  %-10s %14s %14s %14s %12s\n", "basis", "energy@best-k",
              "cum LB", "cum UB", "frac exam.");
  std::printf("  %-10s %13.1f%% %14.0f %14.0f %12.4f\n", "Fourier",
              100 * fourier.energy_captured, fourier.lb_sum, fourier.ub_sum,
              fourier.fraction_examined);
  std::printf("  %-10s %13.1f%% %14.0f %14.0f %12.4f\n", "Haar",
              100 * haar.energy_captured, haar.lb_sum, haar.ub_sum,
              haar.fraction_examined);
  std::printf("  (cumulative true distance over all pairs: %.0f)\n",
              fourier.truth_sum);
}

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t db = bench::ArgSize(argc, argv, "--db", 1024);
  const size_t queries = bench::ArgSize(argc, argv, "--queries", 20);
  bench::PrintHeader(
      "Ablation: Fourier vs Haar wavelet basis for the same compression and "
      "bounding machinery");

  qlog::FamilyMix periodic{0.6, 0.2, 0.1, 0.0, 0.1};
  qlog::FamilyMix bursty{0.0, 0.0, 0.4, 0.5, 0.1};
  RunFamily("periodic-dominated workload", periodic, db, queries, 16);
  RunFamily("bursty/event-dominated workload", bursty, db, queries, 16);

  std::printf(
      "\nReading: the identical bound/pruning machinery runs in both bases "
      "(the paper's generality claim). Fourier captures more energy and "
      "prunes better on periodic demand; Haar narrows the gap (or wins) on "
      "bursty, piecewise demand.\n");
  return 0;
}
