#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "approx/summary.h"
#include "common/rng.h"
#include "dsp/stats.h"
#include "fuzz_util.h"

namespace s2::approx {
namespace {

// Corruption fuzzing for the serialized summary index: Load on a mutated
// image either fails with a Status, or yields an index whose Validate,
// Project, and Candidates never crash.

std::vector<std::vector<double>> MakeRows(size_t n, size_t length,
                                          uint64_t seed) {
  s2::Rng rng(seed);
  std::vector<std::vector<double>> rows(n);
  for (auto& row : rows) {
    std::vector<double> raw(length);
    for (double& x : raw) x = rng.Normal(0.0, 1.0);
    row = dsp::Standardize(raw);
  }
  return rows;
}

SummaryIndex BuildIndex(const std::vector<std::vector<double>>& rows) {
  SummaryOptions options;
  options.dims = 6;
  options.cells = 8;
  auto config = SummaryConfig::Train(rows, options);
  EXPECT_TRUE(config.ok());
  auto index = SummaryIndex::Build(*config, rows);
  EXPECT_TRUE(index.ok());
  return std::move(index).ValueOrDie();
}

TEST(FuzzApproxSummary, MutatedImagesNeverCrashLoadOrScan) {
  s2::Rng rng(0xA99120F1);
  const auto rows = MakeRows(32, 32, 99);
  SummaryIndex index = BuildIndex(rows);

  const std::string path = fuzz::TempPath("s2_fuzz_approx_summary.idx");
  ASSERT_TRUE(index.Save(path).ok());
  const std::vector<char> image = fuzz::ReadFileBytes(path);
  ASSERT_FALSE(image.empty());

  for (int round = 0; round < 150; ++round) {
    fuzz::WriteFileBytes(path, fuzz::Mutate(image, &rng));
    auto loaded = SummaryIndex::Load(path);
    if (!loaded.ok()) {
      EXPECT_NE(loaded.status().code(), StatusCode::kOk);
      continue;
    }
    // A surviving image must still be structurally safe to use.
    (void)loaded->Validate();
    std::vector<double> proj;
    if (loaded->config().Project(rows[0], &proj).ok()) {
      (void)loaded->Candidates(proj, 8, 0, nullptr);
    }
  }
  std::remove(path.c_str());
}

TEST(FuzzApproxSummary, TruncatedImagesAreRejectedAsCorruption) {
  const auto rows = MakeRows(16, 16, 5);
  SummaryIndex index = BuildIndex(rows);

  const std::string path = fuzz::TempPath("s2_fuzz_approx_summary_trunc.idx");
  ASSERT_TRUE(index.Save(path).ok());
  const std::vector<char> image = fuzz::ReadFileBytes(path);

  for (size_t cut : {0ul, 2ul, 4ul, 8ul, 16ul, 24ul, 64ul}) {
    if (cut >= image.size()) continue;
    fuzz::WriteFileBytes(path,
                         std::vector<char>(image.begin(),
                                           image.begin() +
                                               static_cast<ptrdiff_t>(cut)));
    auto loaded = SummaryIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << "cut at " << cut;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2::approx
