#ifndef S2_IO_WAL_SEGMENT_H_
#define S2_IO_WAL_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/env.h"

namespace s2::io::walseg {

/// Shared segmentation scaffolding for the repository's two chained-checksum
/// write-ahead logs (`stream::Wal`, `monitor::MonitorWal`).
///
/// `io::File` has no truncate, so a WAL can never shrink in place; bounding
/// recovery therefore requires *rotation*: when the active segment exceeds a
/// byte threshold the writer seals it and starts a new file. A log is the
/// ordered chain
///
///   <base>                 — segment seq 0: the legacy single-file layout,
///                            8-byte format magic then records
///   <base>.seg000001 ...   — rotated segments: a 40-byte header
///                            [seg_magic(8) | u64 seq | u64 base_records |
///                             u64 chain_seed | u64 fnv1a64]
///                            then records
///
/// where `base_records` is the count of records in all earlier segments and
/// `chain_seed` is the chained checksum carried across the boundary (the
/// last record's checksum in the previous segment). The header checksum
/// covers the first 32 bytes, so replay can *trust* a segment header and
/// start mid-history: a checkpoint anchor names a record index, and replay
/// opens at the last segment whose `base_records` does not exceed it —
/// recovery cost is bounded by segment size + tail, not total history.
///
/// Crash discipline (mirrors the record chain's):
///  - Rotation writes + syncs the new header, then syncs the directory,
///    before any record lands in the new segment. A failed rotation is
///    retried verbatim (same seq, same header bytes) at the same boundary.
///  - Only the *last* segment may have a torn record tail; a chain break in
///    any earlier segment means acknowledged data was lost → Corruption.
///  - A last segment whose header is short or checksum-invalid is the
///    artifact of a crashed rotation — dropped (counted in
///    `dropped_bytes`), the previous segment is the live tail. A *valid*
///    but discontinuous last header (wrong base_records/chain_seed) is
///    real corruption, never a crash artifact, and fails the open.
///  - GC removes only whole segments whose entire record range lies below
///    the caller's safe point (a committed checkpoint's previous-generation
///    anchor), oldest first, and never the live tail.
inline constexpr size_t kMagicBytes = 8;
inline constexpr size_t kSegmentHeaderBytes = 40;

/// One live segment of a log, ordered by `seq`.
struct SegmentInfo {
  std::string path;
  uint64_t seq = 0;
  /// Records contained in all segments before this one.
  uint64_t base_records = 0;
};

/// The decoded fields of a rotated segment's header.
struct SegmentHeader {
  uint64_t seq = 0;
  uint64_t base_records = 0;
  uint64_t chain_seed = 0;
};

/// `<base>.seg000042` — fixed-width so lexicographic directory order is
/// numeric order for the first million rotations (parsing is numeric
/// regardless).
std::string SegmentPath(const std::string& base, uint64_t seq);

/// Parses the sequence number out of a `SegmentPath`-shaped path. False when
/// `path` is not `base` + ".seg" + digits.
bool ParseSegmentSeq(const std::string& base, const std::string& path,
                     uint64_t* seq);

/// Encodes a 40-byte rotated-segment header into `out`.
void EncodeSegmentHeader(const char* seg_magic, const SegmentHeader& header,
                         char* out);

/// Decodes and validates a rotated-segment header. Corruption on short
/// input, wrong magic, or checksum mismatch.
Status DecodeSegmentHeader(const char* seg_magic, const char* in, size_t n,
                           SegmentHeader* out);

/// Scans one record at `data` (with `avail` bytes to the end of the
/// segment) against the running `chain`. On an intact record: set
/// `*consumed` to its encoded size, `*next_chain` to its checksum, and —
/// only when `apply` is true — deliver it; return OK. On a torn, stale or
/// short record: set `*consumed = 0` and return OK (the scan stops there).
/// A non-OK return is fatal (an undecodable payload behind a valid
/// checksum, or a failing apply) and aborts the open.
using RecordScanner =
    std::function<Status(const char* data, size_t avail, uint64_t chain,
                         bool apply, size_t* consumed, uint64_t* next_chain)>;

/// What `OpenLog` hands back: the open tail segment positioned for the next
/// append, the replayed chain state, and the live segment list.
struct OpenResult {
  std::unique_ptr<File> tail_file;
  std::string tail_path;
  uint64_t tail_offset = 0;  ///< Next append offset within `tail_file`.
  uint64_t chain = 0;        ///< Checksum chain at the logical tail.
  uint64_t record_count = 0; ///< Total intact records across all segments.
  uint64_t tail_seq = 0;
  uint64_t tail_base_records = 0;  ///< Records before the tail segment.
  uint64_t applied = 0;            ///< Records delivered (index >= replay_from).
  uint64_t dropped_bytes = 0;      ///< Torn tail + rotation-artifact bytes.
  std::vector<SegmentInfo> segments;  ///< All live segments, tail last.
};

/// Opens (creating `<base>` fresh when nothing exists) the segmented log
/// and replays it through `scan`. Records with index < `replay_from` are
/// chain-verified but not delivered; segments wholly below `replay_from`
/// are skipped without reading their bodies (their headers carry the chain
/// seed). Corruption when the log's surviving history starts above
/// `replay_from` or ends below it — both mean acknowledged records are
/// unreachable.
Result<OpenResult> OpenLog(Env* env, const std::string& base,
                           const char* base_magic, const char* seg_magic,
                           uint64_t replay_from, const RecordScanner& scan);

/// Seals the current segment and opens segment `header.seq`: writes + syncs
/// the header, syncs the directory, returns the new file positioned at
/// `kSegmentHeaderBytes`. The caller Syncs the outgoing segment *before*
/// calling (so `base_records` counts only durable records) and swaps its
/// state only on OK — a failure leaves the boundary unchanged and the retry
/// rewrites the identical header.
Result<std::unique_ptr<File>> CreateSegment(Env* env, const std::string& base,
                                            const char* seg_magic,
                                            const SegmentHeader& header);

/// Removes leading segments whose entire record range lies below
/// `keep_from` (i.e. the *next* segment's `base_records` <= `keep_from`),
/// erasing them from `segments`. The tail always survives. Returns how many
/// were removed; stops (with the error) at the first failing unlink, leaving
/// a still-consistent prefix.
Result<size_t> RemoveSegmentsBelow(Env* env,
                                   std::vector<SegmentInfo>* segments,
                                   uint64_t keep_from);

/// Lists a (possibly closed) log's live segments by reading headers off
/// disk — the `wal-ls` tooling path. Tolerates a rotation-artifact last
/// segment (skips it); Corruption on mid-list damage.
Result<std::vector<SegmentInfo>> ListSegments(Env* env,
                                              const std::string& base,
                                              const char* base_magic,
                                              const char* seg_magic);

}  // namespace s2::io::walseg

#endif  // S2_IO_WAL_SEGMENT_H_
