#ifndef S2_QUERYLOG_COMPONENTS_H_
#define S2_QUERYLOG_COMPONENTS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace s2::qlog {

/// Multiplicative day-of-week demand shape (0 = Monday .. 6 = Sunday).
///
/// `day_weights` scales the base intensity; e.g. the "cinema" archetype uses
/// weights peaking on Friday/Saturday, producing the 52 weekend peaks of the
/// paper's Figure 1.
struct WeeklyComponent {
  std::array<double, 7> day_weights = {1, 1, 1, 1, 1, 1, 1};
  double amplitude = 1.0;  ///< Strength of the weekly modulation.
};

/// Additive sinusoidal component with an arbitrary period, e.g. the ~29.53
/// day lunar cycle behind the "full moon" query.
struct SinusoidComponent {
  double period_days = 29.53;
  double phase = 0.0;       ///< Radians.
  double amplitude = 1.0;   ///< Relative to the base rate.
};

/// A burst recurring every year, shaped as a Gaussian bump centered on a day
/// of year — "Easter", "Halloween", "Christmas gifts". An optional linear
/// pre-ramp models the gradual build-up with sharp post-event drop the paper
/// shows for "Easter" (Figure 2).
struct AnnualBurstComponent {
  double peak_day_of_year = 100;  ///< 1..366.
  double width_days = 10;         ///< Gaussian sigma.
  double amplitude = 5.0;         ///< Relative to the base rate.
  bool sharp_drop = false;        ///< Truncate the bump after the peak.
};

/// A single, non-recurring event: sharp rise then exponential decay, e.g. a
/// news story ("dudley moore", "world trade center").
struct EventBurstComponent {
  int32_t day_index = 0;     ///< Calendar day of the event.
  double rise_days = 1.0;    ///< Ramp-up duration before the peak.
  double decay_days = 7.0;   ///< Exponential decay constant after the peak.
  double amplitude = 10.0;   ///< Relative to the base rate.
};

/// Linear drift of the base intensity, e.g. queries gaining popularity.
struct TrendComponent {
  double slope_per_year = 0.0;  ///< Fractional change of base rate per year.
};

/// A query archetype: the generative recipe for one demand curve.
///
/// The synthesized intensity on day d is
///   base_rate * weekly(d) * (1 + trend(d))
///   + base_rate * (sinusoids(d) + annual_bursts(d) + events(d))
///   + random_walk(d)
/// and the emitted count is Poisson(intensity) (or intensity + Gaussian noise
/// when `poisson_counts` is false), clipped at zero.
struct QueryArchetype {
  std::string name;
  double base_rate = 100.0;          ///< Mean daily request count.
  double noise_sigma = 0.05;         ///< Gaussian noise, fraction of base rate.
  double random_walk_sigma = 0.0;    ///< Per-day random-walk step, fraction of base.
  bool poisson_counts = true;        ///< Sample counts from Poisson(intensity).

  std::vector<WeeklyComponent> weekly;
  std::vector<SinusoidComponent> sinusoids;
  std::vector<AnnualBurstComponent> annual_bursts;
  std::vector<EventBurstComponent> events;
  TrendComponent trend;
};

}  // namespace s2::qlog

#endif  // S2_QUERYLOG_COMPONENTS_H_
