#ifndef S2_MONITOR_REGISTRY_H_
#define S2_MONITOR_REGISTRY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "monitor/subscription.h"
#include "period/period_detector.h"
#include "timeseries/time_series.h"

namespace s2::monitor {

/// What a subscription is evaluated against: the watched series' *current*
/// window, as committed by the append that just slid it. Everything here is
/// identical under exact and incremental feature maintenance — evaluation
/// deliberately reads the raw window and the standardized row, never the
/// drifting incremental accumulators — which is why the alert stream's
/// trigger values agree across modes to fp identity, well inside the
/// documented 1e-6 bound.
struct EvalContext {
  const std::vector<double>* raw = nullptr;  ///< Current raw window.
  const std::vector<double>* z = nullptr;    ///< Standardized row.
  int64_t start_day = 0;                     ///< First day of the window.
  const period::PeriodDetector* detector = nullptr;
};

/// Per-engine registry of standing subscriptions, keyed by the *engine
/// local* series id so a shard evaluates only its own slice; each
/// subscription's `series` field keeps the global id for reporting.
///
/// Evaluation is O(active subscriptions on the appended series): the append
/// path asks `CountOn(id)` first (one hash lookup) and skips everything for
/// unwatched series. Per-series subscriptions evaluate in registration
/// order, which — registration being serialized by the same writer lock as
/// appends — pins a deterministic fire order inside one append.
///
/// Thread safety: none. The registry mutates only under the engine writer
/// lock (Subscribe/Unsubscribe/Evaluate are all writer-path operations);
/// const accessors follow the engine's reader contract.
class SubscriptionRegistry {
 public:
  /// A subscription plus its live hysteresis state, for introspection.
  struct Entry {
    Subscription sub;
    /// Burst: inside a burst. Similarity: inside the ball. Periodicity:
    /// a significant period is currently present.
    bool engaged = false;
    /// Periodicity: the last dominant significant bin.
    uint32_t bin = 0;
  };

  /// Validates `sub` against the current window and registers it under
  /// `key`, arming the hysteresis state *silently* from the present data —
  /// no alert fires at registration. Replaying a logged subscription at its
  /// original stream position therefore reconstructs the exact working
  /// state, making post-crash alert streams identical to pre-crash ones.
  Status Subscribe(ts::SeriesId key, Subscription sub, const EvalContext& ctx);

  /// Registers `sub` with its hysteresis state installed *verbatim* instead
  /// of re-armed from the window — the checkpoint-recovery path, where the
  /// snapshot recorded the exact state at the WAL anchor and re-arming
  /// against the rebuilt window would be both redundant and (for a window
  /// mid-transition) wrong. Validation and query standardization match
  /// `Subscribe`.
  Status Restore(ts::SeriesId key, Subscription sub, bool engaged,
                 uint32_t bin, const EvalContext& ctx);

  /// Removes a subscription by id.
  Status Unsubscribe(SubscriptionId id);

  bool Contains(SubscriptionId id) const {
    return key_of_.find(id) != key_of_.end();
  }

  /// Evaluates every subscription on `key` against the just-slid window and
  /// appends fired alerts (seq unassigned — the delivery queue owns seqs)
  /// to `out` in registration order.
  Status Evaluate(ts::SeriesId key, const EvalContext& ctx,
                  std::vector<Alert>* out);

  /// Active subscriptions on one series (O(1) hash probe; the append path's
  /// fast-out).
  size_t CountOn(ts::SeriesId key) const;

  /// Total active subscriptions.
  size_t size() const { return key_of_.size(); }

  /// Snapshot of every active subscription, ordered by subscription id.
  std::vector<Entry> List() const;

 private:
  struct State {
    bool engaged = false;
    uint32_t bin = 0;
  };
  struct Item {
    Subscription sub;
    std::vector<double> query_z;  ///< Similarity: standardized query.
    State state;
  };

  /// Computes the dominant eligible periodogram bin of `ctx.z` and the
  /// exponential threshold. Mirrors PeriodDetector::Detect's eligibility
  /// rules (non-DC, period within max_period_fraction) so a periodicity
  /// alert always corresponds to a hit FindPeriods would report.
  struct PeriodProbe {
    bool significant = false;  ///< Dominant power clears the threshold.
    uint32_t bin = 0;          ///< Dominant eligible bin (0 = none eligible).
    double power = 0.0;
    double threshold = 0.0;
  };
  static Result<PeriodProbe> ProbePeriods(const EvalContext& ctx);

  static double BurstRatio(const Item& item, const EvalContext& ctx);
  static double Distance(const std::vector<double>& a,
                         const std::vector<double>& b);

  /// Initializes (silently) or advances one subscription's state machine.
  /// `out == nullptr` means arming: transitions are absorbed into the
  /// state without emitting alerts.
  Status Step(Item& item, const EvalContext& ctx, std::vector<Alert>* out);

  std::unordered_map<ts::SeriesId, std::vector<Item>> by_series_;
  std::unordered_map<SubscriptionId, ts::SeriesId> key_of_;
};

}  // namespace s2::monitor

#endif  // S2_MONITOR_REGISTRY_H_
