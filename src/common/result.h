#ifndef S2_COMMON_RESULT_H_
#define S2_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "common/status.h"

namespace s2 {

/// Either a value of type `T` or an error `Status`.
///
/// This is the value-returning counterpart of `Status`, modelled after
/// `arrow::Result`. Construction from a `T` yields a successful result;
/// construction from a non-OK `Status` yields an error. Accessing the value
/// of an error result aborts, so callers must check `ok()` first (or use the
/// `S2_ASSIGN_OR_RETURN` macro).
/// Like `Status`, `Result` is `[[nodiscard]]`: discarding one silently drops
/// both the value and any error it carries.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) std::abort();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff this result holds a value.
  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// The held value; aborts if this result is an error.
  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Moves the held value out; aborts if this result is an error.
  T ValueOrDie() && { return std::move(*this).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) std::abort();
  }
  std::variant<T, Status> repr_;
};

}  // namespace s2

#define S2_CONCAT_IMPL_(a, b) a##b
#define S2_CONCAT_(a, b) S2_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a `Result<T>`); on error returns its status from the
/// current function, otherwise moves the value into `lhs`.
///
/// ```
/// S2_ASSIGN_OR_RETURN(auto series, store.Read(id));
/// ```
#define S2_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  S2_ASSIGN_OR_RETURN_IMPL_(S2_CONCAT_(_s2_result_, __COUNTER__), lhs, rexpr)

#define S2_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#endif  // S2_COMMON_RESULT_H_
