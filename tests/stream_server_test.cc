// Serving-layer behavior of the streaming subsystem: the append verb's
// locking/caching/metrics contract, WAL acknowledgement ordering (validate
// before logging, log before applying), and threshold-triggered background
// compaction on the maintenance thread.

#include "service/s2_server.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/mem_env.h"
#include "querylog/corpus_generator.h"

namespace s2::service {
namespace {

constexpr size_t kNumSeries = 24;
constexpr size_t kDays = 64;

ts::Corpus MakeCorpus() {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = 303;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

std::unique_ptr<S2Server> MakeServer(S2Server::Options options) {
  options.scheduler.threads = 1;
  auto server = S2Server::Build(MakeCorpus(), EngineOptions(), options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

QueryResponse Query(S2Server* server, RequestKind kind, ts::SeriesId id) {
  QueryRequest request;
  request.kind = kind;
  request.id = id;
  request.k = 5;
  return server->Execute(request);
}

TEST(StreamServerTest, AppendUpdatesStateMetricsAndAnswers) {
  S2Server::Options options;
  options.compaction_threshold = 0;
  std::unique_ptr<S2Server> server = MakeServer(options);

  EXPECT_EQ(server->stream_info().delta_size, 0u);
  ASSERT_TRUE(server->AppendPoint(3, 17.5).ok());
  ASSERT_TRUE(server->AppendPoint(3, 18.5).ok());
  ASSERT_TRUE(server->AppendPoint(9, 2.0).ok());

  const auto info = server->stream_info();
  EXPECT_FALSE(info.wal_enabled);
  EXPECT_EQ(info.delta_size, 2u);  // Two distinct series moved to the delta.
  EXPECT_EQ(info.append_count, 3u);
  EXPECT_EQ(server->metrics().counter("stream_appends")->value(), 3u);
  EXPECT_EQ(server->metrics().histogram("stream_append_latency")->count(), 3u);

  // The slid series answers with its new tail.
  EXPECT_EQ(server->engine().corpus().at(3).values.back(), 18.5);
  EXPECT_TRUE(Query(server.get(), RequestKind::kSimilarTo, 3).status.ok());

  // Manual compaction drains the delta and counts.
  ASSERT_TRUE(server->Compact().ok());
  EXPECT_EQ(server->stream_info().delta_size, 0u);
  EXPECT_EQ(server->stream_info().compaction_count, 1u);
  EXPECT_EQ(server->metrics().counter("stream_compacted_series")->value(), 2u);
  EXPECT_EQ(server->metrics().histogram("stream_compaction_latency")->count(), 1u);
  // An empty delta makes Compact a no-op, not another compaction.
  ASSERT_TRUE(server->Compact().ok());
  EXPECT_EQ(server->stream_info().compaction_count, 1u);
}

TEST(StreamServerTest, AppendValidatesBeforeTouchingAnything) {
  S2Server::Options options;
  std::unique_ptr<S2Server> server = MakeServer(options);
  EXPECT_EQ(server->AppendPoint(kNumSeries + 5, 1.0).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server->AppendPoint(0, std::nan("")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server->stream_info().append_count, 0u);
  EXPECT_EQ(server->stream_info().delta_size, 0u);
}

TEST(StreamServerTest, AppendInvalidatesExactlyTheAffectedCacheEntries) {
  S2Server::Options options;
  options.cache_capacity = 64;
  options.compaction_threshold = 0;
  std::unique_ptr<S2Server> server = MakeServer(options);

  // Warm the cache: per-series entries for two series plus a cross-series
  // entry for the untouched one.
  ASSERT_TRUE(Query(server.get(), RequestKind::kPeriodsOf, 3).status.ok());
  ASSERT_TRUE(Query(server.get(), RequestKind::kPeriodsOf, 9).status.ok());
  ASSERT_TRUE(Query(server.get(), RequestKind::kSimilarTo, 9).status.ok());
  ASSERT_EQ(server->cache().size(), 3u);

  ASSERT_TRUE(server->AppendPoint(3, 21.0).ok());

  // Survivor: periods of the untouched series 9. Dropped: periods of 3 (its
  // values changed) and the k-NN entry (any top-k may now include the slid
  // series 3).
  EXPECT_EQ(server->cache().size(), 1u);
  EXPECT_TRUE(Query(server.get(), RequestKind::kPeriodsOf, 9).cache_hit);
  EXPECT_FALSE(Query(server.get(), RequestKind::kPeriodsOf, 3).cache_hit);
  EXPECT_FALSE(Query(server.get(), RequestKind::kSimilarTo, 9).cache_hit);
}

TEST(StreamServerTest, BackgroundCompactionFiresPastTheThreshold) {
  S2Server::Options options;
  options.compaction_threshold = 3;
  std::unique_ptr<S2Server> server = MakeServer(options);

  ASSERT_TRUE(server->AppendPoint(1, 5.0).ok());
  ASSERT_TRUE(server->AppendPoint(2, 5.0).ok());
  EXPECT_EQ(server->stream_info().compaction_count, 0u);  // Below threshold.
  ASSERT_TRUE(server->AppendPoint(3, 5.0).ok());

  // The maintenance thread runs asynchronously; poll with a bounded wait.
  bool compacted = false;
  for (int i = 0; i < 200 && !compacted; ++i) {
    const auto info = server->stream_info();
    compacted = info.compaction_count >= 1 && info.delta_size == 0;
    if (!compacted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(compacted) << "background compaction never drained the delta";
  EXPECT_EQ(server->metrics().counter("stream_compactions")->value(), 1u);
}

TEST(StreamServerTest, BackgroundCompactionNeverStrandsDeltaAboveThreshold) {
  // Regression: appends racing an in-flight background compaction used to be
  // able to push the delta back over the threshold *after* Compact() drained
  // it but *before* the inflight flag cleared — the schedule check saw the
  // flag, skipped, and no later append ever re-triggered (the delta was
  // already over threshold, appends to delta-resident series don't grow it).
  // The maintenance task now re-checks the delta size under the writer lock
  // before retiring, so the delta must always settle below the threshold.
  S2Server::Options options;
  options.compaction_threshold = 4;
  std::unique_ptr<S2Server> server = MakeServer(options);

  constexpr size_t kThreads = 4;
  constexpr size_t kAppendsPerThread = 24;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&server, t] {
      for (size_t i = 0; i < kAppendsPerThread; ++i) {
        // Distinct series per append so the delta genuinely grows while a
        // compaction is in flight.
        const auto id =
            static_cast<ts::SeriesId>((t * kAppendsPerThread + i) % kNumSeries);
        ASSERT_TRUE(server->AppendPoint(id, 1.0 + static_cast<double>(i)).ok());
      }
    });
  }
  for (auto& w : writers) w.join();

  bool settled = false;
  for (int i = 0; i < 500 && !settled; ++i) {
    settled = server->stream_info().delta_size < options.compaction_threshold;
    if (!settled) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(settled) << "delta stranded at " << server->stream_info().delta_size
                       << " >= threshold " << options.compaction_threshold
                       << " with no compaction scheduled";
  EXPECT_GE(server->metrics().counter("stream_compactions")->value(), 1u);
}

TEST(StreamServerTest, WalAcknowledgesBeforeApplyAndReplaysOnRestart) {
  io::MemEnv wal_env;
  S2Server::Options options;
  options.wal_path = "server.wal";
  options.wal_env = &wal_env;
  options.compaction_threshold = 0;

  {
    std::unique_ptr<S2Server> server = MakeServer(options);
    EXPECT_TRUE(server->stream_info().wal_enabled);
    EXPECT_EQ(server->stream_info().replayed_records, 0u);
    ASSERT_TRUE(server->AppendPoint(4, 9.0).ok());
    ASSERT_TRUE(server->AppendPoint(4, 10.0).ok());
    // Rejected appends must leave no poison record behind.
    EXPECT_FALSE(server->AppendPoint(kNumSeries + 1, 1.0).ok());
    EXPECT_FALSE(server->AppendPoint(0, std::nan("")).ok());
  }

  std::unique_ptr<S2Server> revived = MakeServer(options);
  const auto info = revived->stream_info();
  EXPECT_EQ(info.replayed_records, 2u);
  EXPECT_EQ(info.replay_dropped_bytes, 0u);
  EXPECT_EQ(revived->metrics().counter("stream_replay_records")->value(), 2u);
  EXPECT_EQ(revived->engine().corpus().at(4).values.back(), 10.0);
  // Replayed appends live in the delta tier until compaction.
  EXPECT_EQ(info.delta_size, 1u);
}

TEST(StreamServerTest, ShardedServerRoutesAppendsToOwnerShards) {
  S2Server::Options options;
  options.shards = 3;
  options.compaction_threshold = 0;
  std::unique_ptr<S2Server> server = MakeServer(options);
  ASSERT_TRUE(server->is_sharded());

  ASSERT_TRUE(server->AppendPoint(0, 4.0).ok());
  ASSERT_TRUE(server->AppendPoint(1, 4.0).ok());
  ASSERT_TRUE(server->AppendPoint(2, 4.0).ok());

  const auto info = server->stream_info();
  EXPECT_EQ(info.append_count, 3u);
  EXPECT_EQ(info.delta_size, 3u);
  // Round-robin placement: ids 0, 1, 2 land on three different shards, so
  // each shard's delta holds exactly one series.
  for (size_t s = 0; s < server->sharded().num_shards(); ++s) {
    EXPECT_EQ(server->sharded().shard(s).delta_size(), 1u) << "shard " << s;
  }
  ASSERT_TRUE(server->Compact().ok());
  EXPECT_EQ(server->stream_info().delta_size, 0u);
  ASSERT_TRUE(server->sharded().ValidateInvariants().ok());
}

// With `wal_sync_every > 1` the last few acknowledged appends ride in an
// open fsync group; a clean `Shutdown` must flush that group so a graceful
// restart loses nothing. `DropUnsynced` after the shutdown plays the role
// of the machine stopping right after the process exits — only what was
// fsynced survives.
TEST(StreamServerTest, GracefulShutdownFlushesTheOpenSyncGroup) {
  io::MemEnv wal_env;
  S2Server::Options options;
  options.wal_path = "server.wal";
  options.wal_env = &wal_env;
  options.compaction_threshold = 0;
  options.wal_sync_every = 8;

  {
    std::unique_ptr<S2Server> server = MakeServer(options);
    // 5 appends: fewer than the sync group, so none of them has forced an
    // fsync yet when the server stops.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(server->AppendPoint(4, 100.0 + i).ok());
    }
    server->Shutdown();
  }
  ASSERT_TRUE(wal_env.DropUnsynced().ok());

  std::unique_ptr<S2Server> revived = MakeServer(options);
  const auto info = revived->stream_info();
  EXPECT_EQ(info.replayed_records, 5u);
  EXPECT_EQ(info.replay_dropped_bytes, 0u);
  EXPECT_EQ(revived->engine().corpus().at(4).values.back(), 104.0);
}

}  // namespace
}  // namespace s2::service
