# Empty compiler generated dependencies file for similar_queries.
# This may be replaced when dependencies are built.
