file(REMOVE_RECURSE
  "CMakeFiles/s2_index.dir/linear_scan.cc.o"
  "CMakeFiles/s2_index.dir/linear_scan.cc.o.d"
  "CMakeFiles/s2_index.dir/mvp_tree.cc.o"
  "CMakeFiles/s2_index.dir/mvp_tree.cc.o.d"
  "CMakeFiles/s2_index.dir/vp_tree.cc.o"
  "CMakeFiles/s2_index.dir/vp_tree.cc.o.d"
  "libs2_index.a"
  "libs2_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
