#include "base/sync.h"

#include <cstdio>
#include <string>

#include "diag/check.h"

namespace s2::sync::internal {
namespace {

/// One ranked lock the current thread holds. `mutex_id` identifies the
/// Mutex object so non-LIFO releases match the right entry; the rest is
/// reporting context for violations.
struct HeldLock {
  const void* mutex_id = nullptr;
  uint32_t rank = 0;
  const char* name = "";
  const char* file = "";
  int line = 0;
};

/// Deep enough for the real hierarchy (longest documented chain is 4:
/// engine → retry-jitter → fault-env → mem-env) with a wide margin for
/// tests; a fixed array keeps the hot path allocation-free.
constexpr std::size_t kMaxHeldLocks = 32;

thread_local HeldLock g_held[kMaxHeldLocks];
thread_local std::size_t g_depth = 0;

void ReportRankViolation(const HeldLock& acquiring, const HeldLock& held) {
  diag::CheckFailure failure;
  failure.location = {acquiring.file, acquiring.line, "sync::Mutex::Lock"};
  failure.condition = "lock rank strictly increases";
  failure.message =
      "lock-rank violation: acquiring \"" + std::string(acquiring.name) +
      "\" (rank " + std::to_string(acquiring.rank) + ") at " +
      acquiring.file + ":" + std::to_string(acquiring.line) +
      " while holding \"" + held.name + "\" (rank " +
      std::to_string(held.rank) + ") acquired at " + held.file + ":" +
      std::to_string(held.line) +
      "; ranks must strictly increase along every acquisition chain "
      "(lock table: src/base/sync.h, DESIGN.md section 10)";
  failure.is_dcheck = true;
  diag::ReportCheckFailure(failure);
}

}  // namespace

void RankPushAcquire(const void* mutex_id, uint32_t rank, const char* name,
                     const char* file, int line) {
  const HeldLock acquiring{mutex_id, rank, name, file, line};
  if (g_depth > 0) {
    const HeldLock& top = g_held[g_depth - 1];
    if (rank <= top.rank) {
      // Report, then keep going: the default handler aborts; a test
      // handler returns, and pushing anyway keeps the stack consistent
      // with the lock that is in fact about to be taken.
      ReportRankViolation(acquiring, top);
    }
  }
  if (g_depth < kMaxHeldLocks) {
    g_held[g_depth++] = acquiring;
  } else {
    diag::CheckFailure failure;
    failure.location = {file, line, "sync::Mutex::Lock"};
    failure.condition = "held-lock stack has capacity";
    failure.message = "thread holds more than " +
                      std::to_string(kMaxHeldLocks) +
                      " ranked locks; raise kMaxHeldLocks in sync.cc";
    failure.is_dcheck = true;
    diag::ReportCheckFailure(failure);
  }
}

void RankPop(const void* mutex_id) {
  // Releases need not be LIFO (std::mutex allows any order), so search from
  // the top. A miss is possible only after a stack overflow dropped the
  // entry, which already reported; ignore it here.
  for (std::size_t i = g_depth; i > 0; --i) {
    if (g_held[i - 1].mutex_id == mutex_id) {
      for (std::size_t j = i - 1; j + 1 < g_depth; ++j) {
        g_held[j] = g_held[j + 1];
      }
      --g_depth;
      return;
    }
  }
}

std::size_t HeldLockDepth() { return g_depth; }

}  // namespace s2::sync::internal
