// Reproduces paper Figure 4 (decomposition of a signal into its DFT
// components) and Figure 5 (reconstruction error: 5 *first* coefficients vs
// 4 *best* coefficients for four queries). The paper's claim: on periodic
// query-demand data the best coefficients give a markedly lower
// reconstruction error E even with fewer components.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dsp/stats.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"
#include "timeseries/calendar.h"

namespace s2 {
namespace {

// The paper's four Figure-5 queries. "athens 2004" (pre-olympics interest
// ramp) is modelled as a trend + weekly mix; "bank" and "president" are
// typical weekly/aperiodic mixes.
qlog::QueryArchetype MakeAthens2004() {
  qlog::QueryArchetype a;
  a.name = "athens 2004";
  a.base_rate = 60;
  a.trend.slope_per_year = 0.8;
  a.random_walk_sigma = 0.04;
  qlog::SinusoidComponent seasonal;
  seasonal.period_days = 182;
  seasonal.amplitude = 0.4;
  a.sinusoids.push_back(seasonal);
  qlog::WeeklyComponent weekly;  // News-reading weekday cycle.
  weekly.day_weights = {1.2, 1.15, 1.1, 1.1, 1.0, 0.7, 0.75};
  a.weekly.push_back(weekly);
  return a;
}

qlog::QueryArchetype MakeBank() {
  qlog::QueryArchetype a;
  a.name = "bank";
  a.base_rate = 300;
  qlog::WeeklyComponent weekly;
  weekly.day_weights = {1.3, 1.2, 1.2, 1.2, 1.25, 0.7, 0.55};  // Weekday query.
  a.weekly.push_back(weekly);
  return a;
}

qlog::QueryArchetype MakePresident() {
  qlog::QueryArchetype a;
  a.name = "president";
  a.base_rate = 140;
  qlog::WeeklyComponent weekly;
  weekly.day_weights = {1.2, 1.15, 1.15, 1.1, 1.0, 0.7, 0.7};
  a.weekly.push_back(weekly);
  a.random_walk_sigma = 0.05;
  return a;
}

void ShowDecomposition(const std::vector<double>& x) {
  auto spectrum = repr::HalfSpectrum::FromSeries(dsp::Standardize(x));
  if (!spectrum.ok()) return;
  std::printf("\nFigure 4: signal and its first 7 Fourier components\n");
  std::printf("  %-12s %s\n", "signal", bench::Sparkline(x, 80).c_str());
  for (uint32_t k = 0; k <= 6; ++k) {
    auto component = spectrum->ReconstructFrom({k});
    if (!component.ok()) continue;
    std::printf("  a%-11u %s  |X_%u| = %.3f\n", k,
                bench::Sparkline(*component, 80).c_str(), k,
                std::abs(spectrum->coeff(k)));
  }
}

void CompareReconstruction(const qlog::QueryArchetype& archetype, Rng* rng) {
  auto series = qlog::Synthesize(archetype, 0, 365, rng);
  if (!series.ok()) return;
  const std::vector<double> z = dsp::Standardize(series->values);
  auto spectrum = repr::HalfSpectrum::FromSeries(z);
  if (!spectrum.ok()) return;

  // Paper setup: 5 first coefficients vs 4 best (equal memory; see Table 1).
  auto first5 =
      repr::CompressedSpectrum::Compress(*spectrum, repr::ReprKind::kFirstKMiddle, 5);
  auto best4 =
      repr::CompressedSpectrum::Compress(*spectrum, repr::ReprKind::kBestKMiddle, 5);
  if (!first5.ok() || !best4.ok()) return;

  auto rec_first = first5->Reconstruct();
  auto rec_best = best4->Reconstruct();
  if (!rec_first.ok() || !rec_best.ok()) return;
  const double err_first = *dsp::Euclidean(z, *rec_first);
  const double err_best = *dsp::Euclidean(z, *rec_best);

  std::printf("\n%s\n", archetype.name.c_str());
  std::printf("  data            %s\n", bench::Sparkline(z, 80).c_str());
  std::printf("  5 first coeffs  %s  E=%.1f\n", bench::Sparkline(*rec_first, 80).c_str(),
              err_first);
  std::printf("  4 best coeffs   %s  E=%.1f  (%+.0f%%)\n",
              bench::Sparkline(*rec_best, 80).c_str(), err_best,
              100.0 * (err_best - err_first) / err_first);
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  Rng rng(45);

  bench::PrintHeader("Figure 4: DFT decomposition of a demand signal");
  {
    Rng local(4);
    auto cinema = qlog::Synthesize(qlog::MakeCinema(), 0, 365, &local);
    if (cinema.ok()) ShowDecomposition(cinema->values);
  }

  bench::PrintHeader(
      "Figure 5: reconstruction error, 5 first vs 4 best coefficients "
      "(equal memory)");
  CompareReconstruction(MakeAthens2004(), &rng);
  CompareReconstruction(MakeBank(), &rng);
  CompareReconstruction(qlog::MakeCinema(), &rng);
  CompareReconstruction(MakePresident(), &rng);

  std::printf(
      "\nExpected shape (paper): E(best) < E(first) for every periodic "
      "query.\n");
  return 0;
}
