#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "io/mem_env.h"

namespace s2::io {
namespace {

Status WriteWholeFile(Env* env, const std::string& path,
                      const std::string& contents) {
  S2_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      env->Open(path, OpenMode::kTruncate));
  S2_RETURN_NOT_OK(WriteExact(file.get(), contents.data(), contents.size()));
  return file->Sync();
}

TEST(FaultEnvTest, NoPlanMeansNoFaults) {
  MemEnv base;
  FaultInjectingEnv env(&base, FaultPlan{});
  ASSERT_TRUE(WriteWholeFile(&env, "f.bin", "clean run").ok());
  std::vector<char> buffer;
  ASSERT_TRUE(ReadFileToBuffer(&env, "f.bin", &buffer).ok());
  EXPECT_EQ(env.injected_faults(), 0u);
  EXPECT_GT(env.read_ops(), 0u);
  EXPECT_GT(env.write_ops(), 0u);
  EXPECT_EQ(env.sync_ops(), 1u);
}

TEST(FaultEnvTest, FailsExactlyTheNthRead) {
  MemEnv base;
  ASSERT_TRUE(WriteWholeFile(&base, "f.bin", "0123456789").ok());
  FaultPlan plan;
  plan.fail_read_at = 2;
  FaultInjectingEnv env(&base, plan);
  auto file = env.Open("f.bin", OpenMode::kRead);
  ASSERT_TRUE(file.ok());
  char c = 0;
  auto first = (*file)->ReadAt(&c, 1, 0);
  EXPECT_TRUE(first.ok());
  auto second = (*file)->ReadAt(&c, 1, 1);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kIoTransient);
  auto third = (*file)->ReadAt(&c, 1, 2);
  EXPECT_TRUE(third.ok());  // One-shot trigger: only the 2nd read fails.
  EXPECT_EQ(env.injected_faults(), 1u);
}

TEST(FaultEnvTest, HardFaultsAreIoError) {
  MemEnv base;
  ASSERT_TRUE(WriteWholeFile(&base, "f.bin", "x").ok());
  FaultPlan plan;
  plan.fail_read_at = 1;
  plan.faults_are_transient = false;
  FaultInjectingEnv env(&base, plan);
  auto file = env.Open("f.bin", OpenMode::kRead);
  ASSERT_TRUE(file.ok());
  char c = 0;
  auto read = (*file)->ReadAt(&c, 1, 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(FaultEnvTest, FailsExactlyTheNthWriteAndSync) {
  MemEnv base;
  FaultPlan plan;
  plan.fail_write_at = 2;
  plan.fail_sync_at = 1;
  FaultInjectingEnv env(&base, plan);
  auto file = env.Open("f.bin", OpenMode::kTruncate);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->WriteAt("a", 1, 0).ok());
  auto w2 = (*file)->WriteAt("b", 1, 1);
  ASSERT_FALSE(w2.ok());
  EXPECT_EQ(w2.status().code(), StatusCode::kIoTransient);
  const Status sync = (*file)->Sync();
  ASSERT_FALSE(sync.ok());
  EXPECT_EQ(sync.code(), StatusCode::kIoTransient);
  EXPECT_EQ(env.injected_faults(), 2u);
}

TEST(FaultEnvTest, ProbabilisticFaultsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    MemEnv base;
    FaultPlan plan;
    plan.seed = seed;
    plan.read_fault_rate = 0.3;
    FaultInjectingEnv env(&base, plan);
    (void)WriteWholeFile(&env, "f.bin", std::string(1000, 'x'));
    std::vector<bool> outcomes;
    auto file = env.Open("f.bin", OpenMode::kRead);
    if (!file.ok()) return outcomes;
    for (int i = 0; i < 200; ++i) {
      char c = 0;
      outcomes.push_back((*file)->ReadAt(&c, 1, 0).ok());
    }
    return outcomes;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);  // Same seed, same op sequence -> identical faults.
  EXPECT_NE(a, c);  // Different seed decorrelates.
  // ~30% of 200 reads should have failed; allow generous slack.
  const size_t failures = std::count(a.begin(), a.end(), false);
  EXPECT_GT(failures, 20u);
  EXPECT_LT(failures, 120u);
}

TEST(FaultEnvTest, ShortReadsStillCompleteViaReadExact) {
  MemEnv base;
  const std::string payload(4096, 'p');
  ASSERT_TRUE(WriteWholeFile(&base, "f.bin", payload).ok());
  FaultPlan plan;
  plan.short_io_rate = 1.0;  // Every transfer is short; loops must cope.
  FaultInjectingEnv env(&base, plan);
  auto file = env.Open("f.bin", OpenMode::kRead);
  ASSERT_TRUE(file.ok());
  std::vector<char> buffer(payload.size());
  ASSERT_TRUE(ReadExactAt(file->get(), buffer.data(), buffer.size(), 0).ok());
  EXPECT_EQ(std::string(buffer.begin(), buffer.end()), payload);
  EXPECT_GT(env.read_ops(), 1u);  // The short reads forced extra calls.
}

TEST(FaultEnvTest, ShortWritesStillCompleteViaWriteExact) {
  MemEnv base;
  FaultPlan plan;
  plan.short_io_rate = 1.0;
  FaultInjectingEnv env(&base, plan);
  const std::string payload(4096, 'w');
  ASSERT_TRUE(WriteWholeFile(&env, "f.bin", payload).ok());
  std::vector<char> buffer;
  ASSERT_TRUE(ReadFileToBuffer(&base, "f.bin", &buffer).ok());
  EXPECT_EQ(std::string(buffer.begin(), buffer.end()), payload);
}

TEST(FaultEnvTest, CrashDropsUnsyncedAndBlocksIo) {
  MemEnv base;
  FaultPlan plan;
  plan.crash_at_op = 3;  // write, write, <crash on third mutating op>.
  FaultInjectingEnv env(&base, plan);
  ASSERT_TRUE(WriteWholeFile(&env, "a.bin", "x").ok());  // write + sync = ops 1, 2
  auto file = env.Open("b.bin", OpenMode::kTruncate);
  ASSERT_TRUE(file.ok());
  auto write = (*file)->WriteAt("y", 1, 0);  // op 3: crash.
  ASSERT_FALSE(write.ok());
  EXPECT_TRUE(env.crashed());
  // Everything fails during the outage, including opens.
  EXPECT_FALSE(env.Open("a.bin", OpenMode::kRead).ok());
  // "Reboot": un-synced b.bin is gone, synced a.bin survived.
  env.ClearCrash();
  EXPECT_FALSE(env.FileExists("b.bin"));
  std::vector<char> buffer;
  ASSERT_TRUE(ReadFileToBuffer(&env, "a.bin", &buffer).ok());
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer[0], 'x');
}

TEST(FaultEnvTest, OpCountersExposeWorkloadSize) {
  MemEnv base;
  FaultInjectingEnv env(&base, FaultPlan{});
  ASSERT_TRUE(WriteWholeFile(&env, "f.bin", "abc").ok());
  EXPECT_EQ(env.mutating_ops(), env.write_ops() + env.sync_ops());
  EXPECT_GE(env.mutating_ops(), 2u);
}

}  // namespace
}  // namespace s2::io
