file(REMOVE_RECURSE
  "libs2_period.a"
)
