#include "monitor/registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "dsp/periodogram.h"
#include "dsp/stats.h"

namespace s2::monitor {

namespace {

Status ValidateParams(const Subscription& sub, const EvalContext& ctx) {
  const size_t n = ctx.raw->size();
  switch (sub.kind) {
    case SubscriptionKind::kBurstThreshold: {
      const BurstThresholdParams& p = sub.burst;
      if (p.window == 0 || p.window > n) {
        return Status::InvalidArgument(
            "monitor: burst window must be in [1, series length]");
      }
      if (!(p.exit_ratio > 0.0) || !(p.enter_ratio >= p.exit_ratio)) {
        return Status::InvalidArgument(
            "monitor: need enter_ratio >= exit_ratio > 0");
      }
      return Status::OK();
    }
    case SubscriptionKind::kPeriodicityChange:
      if (ctx.detector == nullptr) {
        return Status::InvalidArgument("monitor: no period detector");
      }
      return Status::OK();
    case SubscriptionKind::kSimilarityWatch: {
      const SimilarityWatchParams& p = sub.similarity;
      if (p.query.size() != n) {
        return Status::InvalidArgument(
            "monitor: similarity query length must match the corpus window");
      }
      if (!(p.radius > 0.0)) {
        return Status::InvalidArgument("monitor: radius must be positive");
      }
      if (p.exit_radius != 0.0 && p.exit_radius < p.radius) {
        return Status::InvalidArgument(
            "monitor: exit_radius must be >= radius (or 0 for same)");
      }
      for (double v : p.query) {
        if (!std::isfinite(v)) {
          return Status::InvalidArgument("monitor: query must be finite");
        }
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("monitor: unknown subscription kind");
}

}  // namespace

Result<SubscriptionRegistry::PeriodProbe> SubscriptionRegistry::ProbePeriods(
    const EvalContext& ctx) {
  S2_ASSIGN_OR_RETURN(std::vector<double> psd, dsp::PeriodogramOf(*ctx.z));
  const period::PeriodDetector::Options& options = ctx.detector->options();
  PeriodProbe probe;
  probe.threshold = ctx.detector->Threshold(psd);
  const double n = static_cast<double>(ctx.z->size());
  const double max_period = options.max_period_fraction * n;
  // Dominant = highest-power eligible bin, ties to the lowest bin (strict >
  // while scanning ascending). Tracked even while insignificant so the
  // gained-alert reports the bin that crossed.
  bool any = false;
  for (size_t k = 1; k < psd.size(); ++k) {
    const double period = dsp::BinToPeriod(k, ctx.z->size());
    if (max_period > 0.0 && period > max_period) continue;
    if (!any || psd[k] > probe.power) {
      probe.bin = static_cast<uint32_t>(k);
      probe.power = psd[k];
      any = true;
    }
  }
  probe.significant = any && probe.power > probe.threshold;
  return probe;
}

double SubscriptionRegistry::BurstRatio(const Item& item,
                                        const EvalContext& ctx) {
  const std::vector<double>& raw = *ctx.raw;
  const size_t n = raw.size();
  const size_t w = item.sub.burst.window;
  double total = 0.0;
  for (double v : raw) total += v;
  double tail = 0.0;
  for (size_t i = n - w; i < n; ++i) tail += raw[i];
  const double base = total / static_cast<double>(n);
  const double ma = tail / static_cast<double>(w);
  // A non-positive baseline has no meaningful "x times the mean"; the
  // ratio pins to 0 (never fires) rather than dividing by zero. Demand
  // series are non-negative, so this only triggers on degenerate data.
  if (!(base > 0.0)) return 0.0;
  return ma / base;
}

double SubscriptionRegistry::Distance(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

Status SubscriptionRegistry::Step(Item& item, const EvalContext& ctx,
                                  std::vector<Alert>* out) {
  Alert alert;
  alert.subscription = item.sub.id;
  alert.series = item.sub.series;
  alert.day = ctx.start_day + static_cast<int64_t>(ctx.raw->size()) - 1;

  switch (item.sub.kind) {
    case SubscriptionKind::kBurstThreshold: {
      const double ratio = BurstRatio(item, ctx);
      if (!item.state.engaged && ratio >= item.sub.burst.enter_ratio) {
        item.state.engaged = true;
        if (out != nullptr) {
          alert.kind = AlertKind::kBurstBegin;
          alert.value = ratio;
          alert.threshold = item.sub.burst.enter_ratio;
          out->push_back(alert);
        }
      } else if (item.state.engaged && ratio < item.sub.burst.exit_ratio) {
        item.state.engaged = false;
        if (out != nullptr) {
          alert.kind = AlertKind::kBurstEnd;
          alert.value = ratio;
          alert.threshold = item.sub.burst.exit_ratio;
          out->push_back(alert);
        }
      }
      return Status::OK();
    }

    case SubscriptionKind::kPeriodicityChange: {
      S2_ASSIGN_OR_RETURN(PeriodProbe probe, ProbePeriods(ctx));
      alert.value = probe.power;
      alert.threshold = probe.threshold;
      alert.bin = probe.bin;
      if (!item.state.engaged && probe.significant) {
        item.state.engaged = true;
        item.state.bin = probe.bin;
        if (out != nullptr) {
          alert.kind = AlertKind::kPeriodGained;
          out->push_back(alert);
        }
      } else if (item.state.engaged && !probe.significant) {
        item.state.engaged = false;
        if (out != nullptr) {
          alert.kind = AlertKind::kPeriodLost;
          out->push_back(alert);
        }
      } else if (item.state.engaged && probe.bin != item.state.bin) {
        item.state.bin = probe.bin;
        if (out != nullptr) {
          alert.kind = AlertKind::kPeriodShift;
          out->push_back(alert);
        }
      }
      return Status::OK();
    }

    case SubscriptionKind::kSimilarityWatch: {
      const double dist = Distance(*ctx.z, item.query_z);
      const SimilarityWatchParams& p = item.sub.similarity;
      const double exit_radius = p.exit_radius > 0.0 ? p.exit_radius : p.radius;
      if (!item.state.engaged && dist <= p.radius) {
        item.state.engaged = true;
        if (out != nullptr) {
          alert.kind = AlertKind::kSimilarityEnter;
          alert.value = dist;
          alert.threshold = p.radius;
          out->push_back(alert);
        }
      } else if (item.state.engaged && dist > exit_radius) {
        item.state.engaged = false;
        if (out != nullptr) {
          alert.kind = AlertKind::kSimilarityLeave;
          alert.value = dist;
          alert.threshold = exit_radius;
          out->push_back(alert);
        }
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("monitor: unknown subscription kind");
}

Status SubscriptionRegistry::Subscribe(ts::SeriesId key, Subscription sub,
                                       const EvalContext& ctx) {
  if (sub.id == kInvalidSubscriptionId) {
    return Status::InvalidArgument("monitor: subscription id unset");
  }
  if (Contains(sub.id)) {
    return Status::InvalidArgument("monitor: duplicate subscription id");
  }
  S2_RETURN_NOT_OK(ValidateParams(sub, ctx));

  Item item;
  item.sub = std::move(sub);
  if (item.sub.kind == SubscriptionKind::kSimilarityWatch) {
    item.query_z = dsp::Standardize(item.sub.similarity.query);
  }
  // Silent arming: absorb the current window into the state machine so the
  // first append only fires on a *transition*, never on standing data.
  S2_RETURN_NOT_OK(Step(item, ctx, nullptr));

  const SubscriptionId id = item.sub.id;
  by_series_[key].push_back(std::move(item));
  key_of_.emplace(id, key);
  return Status::OK();
}

Status SubscriptionRegistry::Restore(ts::SeriesId key, Subscription sub,
                                     bool engaged, uint32_t bin,
                                     const EvalContext& ctx) {
  if (sub.id == kInvalidSubscriptionId) {
    return Status::InvalidArgument("monitor: subscription id unset");
  }
  if (Contains(sub.id)) {
    return Status::InvalidArgument("monitor: duplicate subscription id");
  }
  S2_RETURN_NOT_OK(ValidateParams(sub, ctx));

  Item item;
  item.sub = std::move(sub);
  if (item.sub.kind == SubscriptionKind::kSimilarityWatch) {
    item.query_z = dsp::Standardize(item.sub.similarity.query);
  }
  // No Step here: the snapshot's state is authoritative for its anchor.
  item.state.engaged = engaged;
  item.state.bin = bin;

  const SubscriptionId id = item.sub.id;
  by_series_[key].push_back(std::move(item));
  key_of_.emplace(id, key);
  return Status::OK();
}

Status SubscriptionRegistry::Unsubscribe(SubscriptionId id) {
  auto it = key_of_.find(id);
  if (it == key_of_.end()) {
    return Status::NotFound("monitor: no such subscription");
  }
  std::vector<Item>& items = by_series_[it->second];
  items.erase(std::remove_if(items.begin(), items.end(),
                             [id](const Item& item) { return item.sub.id == id; }),
              items.end());
  if (items.empty()) by_series_.erase(it->second);
  key_of_.erase(it);
  return Status::OK();
}

Status SubscriptionRegistry::Evaluate(ts::SeriesId key, const EvalContext& ctx,
                                      std::vector<Alert>* out) {
  auto it = by_series_.find(key);
  if (it == by_series_.end()) return Status::OK();
  for (Item& item : it->second) {
    S2_RETURN_NOT_OK(Step(item, ctx, out));
  }
  return Status::OK();
}

size_t SubscriptionRegistry::CountOn(ts::SeriesId key) const {
  auto it = by_series_.find(key);
  return it == by_series_.end() ? 0 : it->second.size();
}

std::vector<SubscriptionRegistry::Entry> SubscriptionRegistry::List() const {
  std::vector<Entry> entries;
  entries.reserve(key_of_.size());
  for (const auto& [key, items] : by_series_) {
    for (const Item& item : items) {
      Entry entry;
      entry.sub = item.sub;
      entry.engaged = item.state.engaged;
      entry.bin = item.state.bin;
      entries.push_back(std::move(entry));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.sub.id < b.sub.id; });
  return entries;
}

}  // namespace s2::monitor
