#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/checkpoint_store.h"
#include "ckpt/snapshot.h"
#include "common/rng.h"
#include "fuzz_util.h"
#include "io/env.h"

namespace s2::ckpt {
namespace {

// Corruption fuzzing for the checkpoint family: any mutation of the
// MANIFEST or of a snapshot file must come back from `Load` as a Status
// (or a clean fallback to the previous generation) — never a crash,
// out-of-bounds read, or runaway allocation. The sanitizer configurations
// of the durability profile turn latent UB here into hard failures.

EngineSnapshot MakeSnapshot(uint64_t tag) {
  EngineSnapshot snapshot;
  snapshot.anchor_appends = 100 + tag;
  snapshot.anchor_monitor_ops = 10 + tag;
  snapshot.next_subscription_id = 3 + tag;
  for (int s = 0; s < 3; ++s) {
    ts::TimeSeries series;
    series.name = "series-" + std::to_string(s);
    series.start_day = static_cast<int32_t>(tag) + s;
    series.values.assign(8, 0.25 * static_cast<double>(tag + s));
    snapshot.corpus.push_back(std::move(series));
  }
  return snapshot;
}

// Commits generations 1 and 2 into a fresh family rooted at `base` and
// returns the store.
CheckpointStore MakeFamily(const std::string& base) {
  CheckpointStore store(io::Env::Default(), base);
  for (uint64_t tag : {1ull, 2ull}) {
    const Status status =
        store.Commit(MakeSnapshot(tag), /*shard_count=*/1,
                     {CheckpointStore::CorpusChecksum(MakeSnapshot(tag).corpus)},
                     /*data_segments=*/{}, /*monitor_segments=*/{},
                     /*manifest_out=*/nullptr);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  return store;
}

void RemoveFamily(const CheckpointStore& store) {
  std::remove(store.ManifestPath().c_str());
  std::remove(store.SnapshotPath(1).c_str());
  std::remove(store.SnapshotPath(2).c_str());
}

// A loaded result, however the mutation landed, must be one of the two
// committed generations, bit-exact.
void ExpectCommittedGeneration(const CheckpointStore::Loaded& loaded) {
  const uint64_t tag = loaded.from_fallback ? 1 : 2;
  const EngineSnapshot want = MakeSnapshot(tag);
  EXPECT_EQ(loaded.snapshot.anchor_appends, want.anchor_appends);
  EXPECT_EQ(loaded.snapshot.anchor_monitor_ops, want.anchor_monitor_ops);
  EXPECT_EQ(loaded.snapshot.next_subscription_id, want.next_subscription_id);
  ASSERT_EQ(loaded.snapshot.corpus.size(), want.corpus.size());
  for (size_t i = 0; i < want.corpus.size(); ++i) {
    EXPECT_EQ(loaded.snapshot.corpus[i].name, want.corpus[i].name);
    EXPECT_EQ(loaded.snapshot.corpus[i].start_day, want.corpus[i].start_day);
    EXPECT_EQ(loaded.snapshot.corpus[i].values, want.corpus[i].values);
  }
}

TEST(FuzzManifest, MutatedManifestNeverCrashesLoad) {
  s2::Rng rng(0xAB1EFE57);
  CheckpointStore store = MakeFamily(fuzz::TempPath("s2_fuzz_manifest"));
  const std::vector<char> image = fuzz::ReadFileBytes(store.ManifestPath());
  ASSERT_FALSE(image.empty());

  for (int round = 0; round < 200; ++round) {
    fuzz::WriteFileBytes(store.ManifestPath(), fuzz::Mutate(image, &rng));
    const Result<CheckpointStore::Loaded> loaded = store.Load();
    if (loaded.ok()) {
      ExpectCommittedGeneration(*loaded);
    } else {
      EXPECT_TRUE(loaded.status().code() == StatusCode::kCorruption ||
                  loaded.status().code() == StatusCode::kNotFound)
          << loaded.status().ToString();
    }
  }
  RemoveFamily(store);
}

TEST(FuzzManifest, MutatedCurrentSnapshotFallsBackOrFailsCleanly) {
  s2::Rng rng(0x5E0712AD);
  CheckpointStore store =
      MakeFamily(fuzz::TempPath("s2_fuzz_manifest_snap"));
  const std::vector<char> image = fuzz::ReadFileBytes(store.SnapshotPath(2));
  ASSERT_FALSE(image.empty());

  for (int round = 0; round < 200; ++round) {
    fuzz::WriteFileBytes(store.SnapshotPath(2), fuzz::Mutate(image, &rng));
    const Result<CheckpointStore::Loaded> loaded = store.Load();
    // The previous generation is pristine, so most mutations resolve to a
    // clean fallback; a mutation the container doesn't notice (flipping a
    // byte to itself) loads the current generation. Either way the result
    // is a committed generation, bit-exact.
    if (loaded.ok()) {
      ExpectCommittedGeneration(*loaded);
    } else {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << loaded.status().ToString();
    }
  }
  RemoveFamily(store);
}

TEST(FuzzManifest, BothGenerationsMutatedNeverCrashesLoad) {
  s2::Rng rng(0xD00DFEED);
  CheckpointStore store =
      MakeFamily(fuzz::TempPath("s2_fuzz_manifest_both"));
  const std::vector<char> current = fuzz::ReadFileBytes(store.SnapshotPath(2));
  const std::vector<char> prev = fuzz::ReadFileBytes(store.SnapshotPath(1));
  ASSERT_FALSE(current.empty());
  ASSERT_FALSE(prev.empty());

  for (int round = 0; round < 200; ++round) {
    fuzz::WriteFileBytes(store.SnapshotPath(2), fuzz::Mutate(current, &rng));
    fuzz::WriteFileBytes(store.SnapshotPath(1), fuzz::Mutate(prev, &rng));
    const Result<CheckpointStore::Loaded> loaded = store.Load();
    if (loaded.ok()) {
      ExpectCommittedGeneration(*loaded);
    } else {
      EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
          << loaded.status().ToString();
    }
  }
  RemoveFamily(store);
}

TEST(FuzzManifest, ManifestTruncationAtEveryBoundaryIsAnError) {
  CheckpointStore store =
      MakeFamily(fuzz::TempPath("s2_fuzz_manifest_trunc"));
  const std::vector<char> image = fuzz::ReadFileBytes(store.ManifestPath());
  ASSERT_FALSE(image.empty());

  for (size_t cut = 0; cut < image.size(); cut += 7) {
    fuzz::WriteFileBytes(
        store.ManifestPath(),
        std::vector<char>(image.begin(),
                          image.begin() + static_cast<ptrdiff_t>(cut)));
    const Result<CheckpointStore::Loaded> loaded = store.Load();
    EXPECT_FALSE(loaded.ok()) << "cut at " << cut;
  }
  RemoveFamily(store);
}

}  // namespace
}  // namespace s2::ckpt
