#ifndef S2_CKPT_SNAPSHOT_H_
#define S2_CKPT_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "monitor/alert_queue.h"
#include "monitor/registry.h"
#include "timeseries/time_series.h"

namespace s2::ckpt {

/// A coordinated point-in-time image of everything the WAL pair would
/// otherwise have to rebuild from scratch: the corpus (every series'
/// current window, in *global* id order so the image is shard-count
/// invisible), the standing-query registry with its live hysteresis
/// state, the alert delivery queue, and the server's subscription-id
/// counter — all captured atomically under the writer lock at a single
/// stream position.
///
/// The two anchors name that position: `anchor_appends` data-WAL records
/// and `anchor_monitor_ops` monitor-WAL records were durable and applied
/// when the image was taken. Recovery rebuilds the engine from the image
/// and replays only the WAL tails past the anchors; the invariant that
/// makes this exact is that every acknowledged verb is either *inside*
/// the image or *after* its anchor, never both and never neither.
struct EngineSnapshot {
  /// Data-WAL records applied (== durable) at capture.
  uint64_t anchor_appends = 0;
  /// Monitor-WAL records applied at capture.
  uint64_t anchor_monitor_ops = 0;
  /// The server's next unassigned subscription id.
  uint64_t next_subscription_id = 0;
  /// Every series' current window, in global id order.
  std::vector<ts::TimeSeries> corpus;
  /// Every active subscription with its hysteresis state, in id order.
  std::vector<monitor::SubscriptionRegistry::Entry> subscriptions;
  /// The delivery queue's full state (queued alerts, seqs, watermark).
  monitor::AlertQueue::Image alerts;
};

/// Serializes `snapshot` into the payload committed through the
/// `io::durable` generation container (which adds the outer checksum).
std::vector<char> EncodeSnapshot(const EngineSnapshot& snapshot);

/// Decodes a snapshot payload. Every length and count is bounds-checked
/// against the remaining bytes and every enum against its range, so any
/// mutation of the payload yields `Corruption` — never UB — even though
/// the outer container checksum normally catches it first.
Status DecodeSnapshot(const char* data, size_t n, EngineSnapshot* out);

}  // namespace s2::ckpt

#endif  // S2_CKPT_SNAPSHOT_H_
