# Empty compiler generated dependencies file for sequence_store_test.
# This may be replaced when dependencies are built.
