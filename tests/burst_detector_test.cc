#include "burst/burst_detector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"
#include "timeseries/calendar.h"

namespace s2::burst {
namespace {

std::vector<double> FlatWithBump(size_t n, size_t bump_start, size_t bump_len,
                                 double height, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = 100.0 + rng.Normal(0, 2.0);
  for (size_t i = bump_start; i < bump_start + bump_len && i < n; ++i) {
    x[i] += height;
  }
  return x;
}

TEST(BurstDetectorTest, RejectsTooShortInput) {
  BurstDetector detector(BurstDetector::Options{30, 1.5, true});
  EXPECT_FALSE(detector.Detect(std::vector<double>(10, 1.0)).ok());
}

TEST(BurstDetectorTest, QuietSequenceHasFewBursts) {
  Rng rng(1);
  std::vector<double> x(365);
  for (double& v : x) v = 100.0 + rng.Normal(0, 2.0);
  auto regions = BurstDetector::LongTerm().Detect(x);
  ASSERT_TRUE(regions.ok());
  // Gaussian noise can nick the cutoff, but nothing substantial.
  size_t burst_days = 0;
  for (const BurstRegion& r : *regions) burst_days += static_cast<size_t>(r.length());
  EXPECT_LE(burst_days, 30u);
}

TEST(BurstDetectorTest, FindsPlantedBump) {
  const std::vector<double> x = FlatWithBump(365, 200, 40, 80.0, 2);
  auto regions = BurstDetector::LongTerm().Detect(x);
  ASSERT_TRUE(regions.ok());
  ASSERT_FALSE(regions->empty());
  // The widest detected region must cover the bump's core. The trailing MA
  // lags by up to the window length on both edges.
  const BurstRegion* widest = &regions->front();
  for (const BurstRegion& r : *regions) {
    if (r.length() > widest->length()) widest = &r;
  }
  EXPECT_GE(widest->start, 195);
  EXPECT_LE(widest->start, 235);
  EXPECT_GE(widest->end, 220);
  EXPECT_LE(widest->end, 275);
  EXPECT_GT(widest->avg_value, 1.0);  // Standardized height well above mean.
}

TEST(BurstDetectorTest, ShortWindowLocalizesBetter) {
  const std::vector<double> x = FlatWithBump(365, 200, 10, 100.0, 3);
  auto long_regions = BurstDetector::LongTerm().Detect(x);
  auto short_regions = BurstDetector::ShortTerm().Detect(x);
  ASSERT_TRUE(long_regions.ok());
  ASSERT_TRUE(short_regions.ok());
  ASSERT_FALSE(short_regions->empty());
  const BurstRegion& s = short_regions->front();
  EXPECT_GE(s.start, 198);
  EXPECT_LE(s.end, 220);
}

TEST(BurstDetectorTest, HigherCutoffFindsFewerBurstDays) {
  const std::vector<double> x = FlatWithBump(365, 100, 60, 30.0, 4);
  auto loose = BurstDetector(BurstDetector::Options{30, 1.0, true}).Detect(x);
  auto strict = BurstDetector(BurstDetector::Options{30, 2.5, true}).Detect(x);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  size_t loose_days = 0;
  size_t strict_days = 0;
  for (const BurstRegion& r : *loose) loose_days += static_cast<size_t>(r.length());
  for (const BurstRegion& r : *strict) strict_days += static_cast<size_t>(r.length());
  EXPECT_GE(loose_days, strict_days);
}

TEST(BurstDetectorTest, RegionsAreDisjointAndOrdered) {
  Rng rng(5);
  std::vector<double> x(730);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = 100.0 + rng.Normal(0, 5.0) +
           (i % 180 < 20 ? 60.0 : 0.0);  // Several planted episodes.
  }
  auto regions = BurstDetector::ShortTerm().Detect(x);
  ASSERT_TRUE(regions.ok());
  for (size_t i = 0; i < regions->size(); ++i) {
    EXPECT_LE((*regions)[i].start, (*regions)[i].end);
    if (i > 0) {
      EXPECT_GT((*regions)[i].start, (*regions)[i - 1].end + 1);
    }
  }
}

TEST(BurstDetectorTest, TraceExposesMovingAverageAndCutoff) {
  const std::vector<double> x = FlatWithBump(365, 200, 40, 80.0, 6);
  auto trace = BurstDetector::LongTerm().DetectWithTrace(x);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->moving_average.size(), x.size());
  EXPECT_GT(trace->cutoff, 0.0);  // mean + 1.5 std of a standardized MA.
  // Every reported day is above the cutoff.
  for (const BurstRegion& r : trace->regions) {
    for (int32_t i = r.start; i <= r.end; ++i) {
      EXPECT_GT(trace->moving_average[static_cast<size_t>(i)], trace->cutoff);
    }
  }
}

TEST(BurstDetectorTest, HalloweenArchetypeBurstsInLateOctober) {
  // Paper Fig. 14: the Halloween burst lands in October/November.
  Rng rng(7);
  auto series = qlog::Synthesize(qlog::MakeHalloween(),
                                 ts::DateToDayIndex({2002, 1, 1}), 365, &rng);
  ASSERT_TRUE(series.ok());
  auto regions = BurstDetector::LongTerm().Detect(series->values);
  ASSERT_TRUE(regions.ok());
  ASSERT_FALSE(regions->empty());
  const BurstRegion* widest = &regions->front();
  for (const BurstRegion& r : *regions) {
    if (r.length() > widest->length()) widest = &r;
  }
  const int oct1 = 273;
  const int dec1 = 334;
  EXPECT_GE(widest->start, oct1 - 15);
  EXPECT_LE(widest->end, dec1 + 10);
}

TEST(BurstDetectorTest, EasterArchetypeBurstsEachSpringOverThreeYears) {
  // Paper Fig. 15: "Easter" 2000-2002 shows one burst per spring.
  Rng rng(8);
  auto series = qlog::Synthesize(qlog::MakeEaster(), 0, 1024, &rng);
  ASSERT_TRUE(series.ok());
  auto regions = BurstDetector::LongTerm().Detect(series->values);
  ASSERT_TRUE(regions.ok());
  // At least one burst in each year's spring window (days ~60-150 mod year).
  int springs_hit = 0;
  for (int year = 0; year < 3; ++year) {
    const int32_t base = ts::DateToDayIndex({2000 + year, 1, 1});
    bool hit = false;
    for (const BurstRegion& r : *regions) {
      if (r.end >= base + 50 && r.start <= base + 160) hit = true;
    }
    springs_hit += hit ? 1 : 0;
  }
  EXPECT_EQ(springs_hit, 3);
}

TEST(BurstDetectorTest, MinAvgValueFiltersShallowRegions) {
  const std::vector<double> x = FlatWithBump(365, 200, 40, 80.0, 10);
  BurstDetector::Options loose{30, 1.5, true};
  BurstDetector::Options filtered{30, 1.5, true};
  filtered.min_avg_value = 1.0;
  auto all = BurstDetector(loose).Detect(x);
  auto tall_only = BurstDetector(filtered).Detect(x);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(tall_only.ok());
  EXPECT_LE(tall_only->size(), all->size());
  ASSERT_FALSE(tall_only->empty());  // The real bump survives.
  for (const BurstRegion& r : *tall_only) EXPECT_GE(r.avg_value, 1.0);
}

TEST(BurstDetectorTest, MinLengthFiltersWeeklyRippleArtifacts) {
  // A pure weekend-peaked weekly series: the 30-day MA ripples with a 7-day
  // cycle, producing 1-day "bursts" every week. min_length removes them.
  Rng rng(11);
  std::vector<double> x(730);
  for (size_t i = 0; i < x.size(); ++i) {
    const bool weekend = i % 7 == 4 || i % 7 == 5;
    x[i] = (weekend ? 250.0 : 100.0) + rng.Normal(0, 4.0);
  }
  BurstDetector::Options plain{30, 1.5, true};
  auto ripple = BurstDetector(plain).Detect(x);
  ASSERT_TRUE(ripple.ok());

  BurstDetector::Options guarded = plain;
  guarded.min_length = 5;
  auto clean = BurstDetector(guarded).Detect(x);
  ASSERT_TRUE(clean.ok());
  EXPECT_LT(clean->size(), std::max<size_t>(ripple->size(), 1));
  for (const BurstRegion& r : *clean) EXPECT_GE(r.length(), 5);
}

TEST(BurstDetectorTest, MinLengthKeepsGenuineLongBursts) {
  const std::vector<double> x = FlatWithBump(365, 150, 40, 90.0, 12);
  BurstDetector::Options guarded{30, 1.5, true};
  guarded.min_length = 5;
  guarded.min_avg_value = 0.5;
  auto regions = BurstDetector(guarded).Detect(x);
  ASSERT_TRUE(regions.ok());
  ASSERT_FALSE(regions->empty());
  EXPECT_GE(regions->front().length(), 20);
}

TEST(BurstDetectorTest, StandardizationMakesDetectionScaleInvariant) {
  const std::vector<double> x = FlatWithBump(365, 150, 30, 50.0, 9);
  std::vector<double> scaled(x.size());
  for (size_t i = 0; i < x.size(); ++i) scaled[i] = 1000.0 * x[i];
  auto a = BurstDetector::LongTerm().Detect(x);
  auto b = BurstDetector::LongTerm().Detect(scaled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].start, (*b)[i].start);
    EXPECT_EQ((*a)[i].end, (*b)[i].end);
    EXPECT_NEAR((*a)[i].avg_value, (*b)[i].avg_value, 1e-9);
  }
}

}  // namespace
}  // namespace s2::burst
