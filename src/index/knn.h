#ifndef S2_INDEX_KNN_H_
#define S2_INDEX_KNN_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <vector>

#include "timeseries/time_series.h"

namespace s2::index {

/// One nearest-neighbor answer.
struct Neighbor {
  ts::SeriesId id = ts::kInvalidSeriesId;
  double distance = 0.0;
};

/// A bounded best-k list ordered by ascending distance.
///
/// Keeps at most `k` neighbors; `Threshold()` is the current k-th distance
/// (the pruning radius), +infinity until the list fills.
class BestList {
 public:
  explicit BestList(size_t k) : k_(k) {}

  /// Offers a candidate; keeps it if it beats the current k-th distance.
  void Offer(ts::SeriesId id, double distance) {
    if (items_.size() == k_ && distance >= Threshold()) return;
    // Insert sorted; lists are tiny (k is small), linear insertion is fine.
    auto it = std::lower_bound(
        items_.begin(), items_.end(), distance,
        [](const Neighbor& n, double d) { return n.distance < d; });
    items_.insert(it, Neighbor{id, distance});
    if (items_.size() > k_) items_.pop_back();
  }

  /// Current pruning radius: k-th best distance, +infinity while unfilled.
  double Threshold() const {
    if (items_.size() < k_) return std::numeric_limits<double>::infinity();
    return items_.back().distance;
  }

  bool Full() const { return items_.size() == k_; }
  const std::vector<Neighbor>& items() const { return items_; }
  std::vector<Neighbor> Take() && { return std::move(items_); }

 private:
  size_t k_;
  std::vector<Neighbor> items_;
};

/// A monotonically shrinking global best-k radius shared by concurrent
/// searches over disjoint partitions of one corpus (the scatter-gather kNN
/// of `s2::shard`, following TSseek's shared-pruning-bound pattern).
///
/// Each partition publishes (`Tighten`) any upper bound it can certify on
/// the *global* k-th nearest distance — its best-list threshold once full,
/// or the k-th smallest compressed upper bound — and reads (`load`) the
/// tightest bound published by anyone to prune harder than its local state
/// alone would allow. Soundness: every published value is witnessed by k
/// real objects at that distance or closer, so a candidate provably beyond
/// the shared radius can never be in the global top-k; a stale (larger)
/// read only prunes less. Relaxed ordering is therefore enough — the value
/// is a hint for pruning, never a synchronization edge.
class SharedRadius {
 public:
  SharedRadius() = default;
  SharedRadius(const SharedRadius&) = delete;
  SharedRadius& operator=(const SharedRadius&) = delete;

  /// The tightest radius published so far (+infinity until someone has a
  /// full best-k list).
  double load() const { return radius_.load(std::memory_order_relaxed); }

  /// Publishes `r` if it improves on the current radius (atomic min).
  void Tighten(double r) {
    double current = radius_.load(std::memory_order_relaxed);
    while (r < current && !radius_.compare_exchange_weak(
                              current, r, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> radius_{std::numeric_limits<double>::infinity()};
};

}  // namespace s2::index

#endif  // S2_INDEX_KNN_H_
