file(REMOVE_RECURSE
  "CMakeFiles/half_spectrum_test.dir/half_spectrum_test.cc.o"
  "CMakeFiles/half_spectrum_test.dir/half_spectrum_test.cc.o.d"
  "half_spectrum_test"
  "half_spectrum_test.pdb"
  "half_spectrum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/half_spectrum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
