# Empty dependencies file for bench_ablation_vp.
# This may be replaced when dependencies are built.
