#ifndef S2_REPR_HALF_SPECTRUM_H_
#define S2_REPR_HALF_SPECTRUM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dsp/fft.h"

namespace s2::repr {

using dsp::Complex;

/// Which orthonormal decomposition a spectrum's coefficients come from.
///
/// The bound algorithms of Section 3 only require that Euclidean distance be
/// preserved by the decomposition, so they run unchanged on any orthonormal
/// basis (the paper: "can be adapted to any class of orthogonal
/// decompositions ... with minimal or no adjustments").
enum class Basis {
  /// Conjugate-symmetric half of the normalized DFT; interior bins carry
  /// multiplicity 2.
  kFourierHalf,
  /// A real orthonormal transform (e.g. the Haar DWT of dsp/wavelet.h); all
  /// coefficients carry multiplicity 1 and zero imaginary part.
  kOrthonormalReal,
};

/// The non-redundant half of a real sequence's normalized DFT.
///
/// For a real sequence of length N the spectrum is conjugate-symmetric:
/// `X[k] == conj(X[N-k])`. Retaining bins `k = 0 .. floor(N/2)` loses
/// nothing; a bin's *multiplicity* says how many full-spectrum coefficients
/// it stands for (1 for DC and — when N is even — the Nyquist bin, else 2).
/// Parseval for the normalized transform gives
///   `sum_k multiplicity(k) * |X[k]|^2 == sum_n x[n]^2`,
/// so Euclidean distances computed with multiplicity weights in this domain
/// equal time-domain distances exactly. All compressed representations and
/// distance bounds in this module work in this weighted half-spectrum space;
/// it is the "exploit the symmetric property" trick of Rafiei et al. that
/// the paper's storage accounting (Section 7.1) relies on.
class HalfSpectrum {
 public:
  /// Computes the half spectrum of `x` (any length >= 1).
  static Result<HalfSpectrum> FromSeries(const std::vector<double>& x);

  /// Builds from raw parts; `coeffs.size()` must equal `n/2 + 1`.
  static Result<HalfSpectrum> FromParts(uint32_t n, std::vector<Complex> coeffs);

  /// Wraps the coefficients of a real orthonormal transform (multiplicity 1
  /// everywhere). `n` equals the coefficient count.
  static Result<HalfSpectrum> FromOrthonormalReal(std::vector<double> coeffs);

  /// Transforms `x` into the requested basis: the normalized DFT for
  /// kFourierHalf, the Haar DWT (power-of-two lengths only) for
  /// kOrthonormalReal.
  static Result<HalfSpectrum> FromSeriesInBasis(const std::vector<double>& x,
                                                Basis basis);

  /// The decomposition this spectrum lives in.
  Basis basis() const { return basis_; }

  /// Original (time-domain) sequence length.
  uint32_t n() const { return n_; }

  /// Number of retained bins, `n/2 + 1`.
  size_t num_bins() const { return coeffs_.size(); }

  /// Coefficient at bin `k`.
  const Complex& coeff(size_t k) const { return coeffs_[k]; }
  const std::vector<Complex>& coeffs() const { return coeffs_; }

  /// How many full-spectrum coefficients bin `k` represents (1 or 2).
  double multiplicity(size_t k) const {
    if (basis_ == Basis::kOrthonormalReal) return 1.0;
    if (k == 0) return 1.0;
    if (n_ % 2 == 0 && k == static_cast<size_t>(n_ / 2)) return 1.0;
    return 2.0;
  }

  /// Total signal energy `sum_k m_k |X_k|^2` (== time-domain energy).
  double Energy() const;

  /// Exact Euclidean distance to another half spectrum of the same shape
  /// (equals the time-domain Euclidean distance of the two sequences).
  Result<double> DistanceTo(const HalfSpectrum& other) const;

  /// Reconstructs the time-domain sequence keeping only the bins listed in
  /// `kept` (all other bins zeroed). Fourier spectra are mirrored into a
  /// full conjugate-symmetric spectrum and inverted with the FFT; real-basis
  /// spectra are inverted with the Haar DWT. Passing all bins reproduces the
  /// original sequence up to round-off. Out-of-range positions yield
  /// InvalidArgument.
  Result<std::vector<double>> ReconstructFrom(const std::vector<uint32_t>& kept) const;

 private:
  HalfSpectrum(uint32_t n, std::vector<Complex> coeffs, Basis basis)
      : n_(n), coeffs_(std::move(coeffs)), basis_(basis) {}

  uint32_t n_;
  std::vector<Complex> coeffs_;
  Basis basis_ = Basis::kFourierHalf;
};

}  // namespace s2::repr

#endif  // S2_REPR_HALF_SPECTRUM_H_
