#ifndef S2_SIMD_KERNELS_H_
#define S2_SIMD_KERNELS_H_

#include <cstddef>

#include "simd/simd.h"

namespace s2::simd {

/// One resolved backend: a function pointer per kernel. All entries of all
/// tables compute the same canonical result bit-for-bit (see simd.h); only
/// the instruction mix differs. Exposed so the differential test harness
/// and bench_kernels can drive specific backends side by side without
/// flipping global dispatch.
struct KernelTable {
  Isa isa;
  const char* name;
  double (*sum)(const double* x, size_t n);
  double (*sum_sq)(const double* x, size_t n);
  double (*centered_sum_sq)(const double* x, size_t n, double mean);
  double (*sum_sq_diff)(const double* a, const double* b, size_t n);
  double (*sum_sq_diff_abandon)(const double* a, const double* b, size_t n,
                                double limit_sq);
  double (*lb_keogh_sq_abandon)(const double* lower, const double* upper,
                                const double* candidate, size_t n,
                                double limit_sq);
  void (*standardize)(const double* x, size_t n, double mean, double stddev,
                      double* out);
  void (*slide_complex_bins)(double* reim, const double* twiddles_reim,
                             size_t bins, double delta);
};

/// Table for one backend, or nullptr when it is not compiled in or the CPU
/// lacks it. TableFor(Isa::kScalar) never returns nullptr.
const KernelTable* TableFor(Isa isa);

/// The table kernel calls currently route through.
const KernelTable& ActiveTable();

}  // namespace s2::simd

#endif  // S2_SIMD_KERNELS_H_
