#ifndef S2_DSP_STATS_H_
#define S2_DSP_STATS_H_

#include <vector>

#include "common/result.h"

namespace s2::dsp {

/// Arithmetic mean of `x`; 0 for empty input.
double Mean(const std::vector<double>& x);

/// Population variance (divides by N); 0 for inputs shorter than 2.
double Variance(const std::vector<double>& x);

/// Population standard deviation.
double StdDev(const std::vector<double>& x);

/// Sum of squares of the elements (the signal energy).
double Energy(const std::vector<double>& x);

/// Mean power `(1/N) * sum x_i^2`, as used by the period-detection threshold.
double MeanPower(const std::vector<double>& x);

/// Z-normalization: subtract the mean and divide by the standard deviation.
///
/// This is the standardization the paper applies before feature extraction to
/// "compensate for the variation of counts for different queries". A constant
/// sequence (stddev == 0) standardizes to all zeros.
std::vector<double> Standardize(const std::vector<double>& x);

/// Squared Euclidean distance between equal-length sequences.
/// Returns InvalidArgument on length mismatch.
Result<double> SquaredEuclidean(const std::vector<double>& a,
                                const std::vector<double>& b);

/// Euclidean distance between equal-length sequences.
Result<double> Euclidean(const std::vector<double>& a, const std::vector<double>& b);

/// Partial Euclidean distance with early abandoning: accumulates squared
/// differences and stops as soon as the running sum exceeds
/// `abandon_after_sq` (pass +infinity to disable). Returns the exact distance
/// when it is below the threshold, and any value > sqrt(abandon_after_sq)
/// otherwise. Used by the linear-scan baseline and kNN verification, matching
/// the early-termination optimization described in the paper's Section 7.4.
double EuclideanEarlyAbandon(const std::vector<double>& a,
                             const std::vector<double>& b,
                             double abandon_after_sq);

}  // namespace s2::dsp

#endif  // S2_DSP_STATS_H_
