// Google-benchmark microbenchmarks for the performance-critical kernels:
// FFT, bound computation, B+-tree operations and burst detection. On top
// of the normal console run, a reporter shim records every run into
// BENCH_micro.json through the bench::Json emitter (override the path
// with --json <path>).

#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>
#include <string>

#include "bench/bench_util.h"
#include "burst/burst_detector.h"
#include "common/rng.h"
#include "dsp/fft.h"
#include "dsp/stats.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"
#include "storage/bptree.h"

namespace s2 {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 7.0) +
           rng.Normal(0, 0.5);
  }
  return dsp::Standardize(x);
}

void BM_FftPowerOfTwo(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(n, 1);
  for (auto _ : state) {
    auto spectrum = dsp::ForwardDft(x);
    benchmark::DoNotOptimize(spectrum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPowerOfTwo)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(n, 2);
  for (auto _ : state) {
    auto spectrum = dsp::ForwardDft(x);
    benchmark::DoNotOptimize(spectrum);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(365)->Arg(1000)->Arg(1096);

void BM_DirectDft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> x = RandomSeries(n, 3);
  for (auto _ : state) {
    auto spectrum = dsp::ForwardDftDirect(x);
    benchmark::DoNotOptimize(spectrum);
  }
}
BENCHMARK(BM_DirectDft)->Arg(256)->Arg(1024);

void BM_ComputeBounds(benchmark::State& state) {
  const size_t c = static_cast<size_t>(state.range(0));
  const std::vector<double> a = RandomSeries(1024, 4);
  const std::vector<double> b = RandomSeries(1024, 5);
  auto query = repr::HalfSpectrum::FromSeries(a);
  auto target = repr::HalfSpectrum::FromSeries(b);
  auto compressed = repr::CompressedSpectrum::Compress(
      *target, repr::ReprKind::kBestKError, c);
  for (auto _ : state) {
    auto bounds = repr::ComputeBounds(*query, *compressed,
                                      repr::BoundMethod::kBestMinError);
    benchmark::DoNotOptimize(bounds);
  }
}
BENCHMARK(BM_ComputeBounds)->Arg(8)->Arg(16)->Arg(32);

void BM_EuclideanEarlyAbandon(benchmark::State& state) {
  const std::vector<double> a = RandomSeries(1024, 6);
  const std::vector<double> b = RandomSeries(1024, 7);
  for (auto _ : state) {
    const double d = dsp::EuclideanEarlyAbandon(a, b, 1.0);  // Abandons early.
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_EuclideanEarlyAbandon);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    state.PauseTiming();
    storage::BPlusTree<int32_t, uint32_t> tree;
    state.ResumeTiming();
    for (uint32_t i = 0; i < 10000; ++i) {
      tree.Insert(static_cast<int32_t>(rng.UniformInt(0, 100000)), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_BPlusTreeScan(benchmark::State& state) {
  Rng rng(9);
  storage::BPlusTree<int32_t, uint32_t> tree;
  for (uint32_t i = 0; i < 100000; ++i) {
    tree.Insert(static_cast<int32_t>(rng.UniformInt(0, 1000000)), i);
  }
  for (auto _ : state) {
    size_t count = 0;
    tree.Scan(400000, 600000, [&count](int32_t, uint32_t) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BPlusTreeScan);

void BM_BurstDetection(benchmark::State& state) {
  const std::vector<double> x = RandomSeries(1024, 10);
  const burst::BurstDetector detector = burst::BurstDetector::LongTerm();
  for (auto _ : state) {
    auto regions = detector.Detect(x);
    benchmark::DoNotOptimize(regions);
  }
}
BENCHMARK(BM_BurstDetection);

// Console output as usual, plus one bench::Json row per finished run.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  JsonTeeReporter() : rows_(bench::Json::Array()) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      bench::Json row = bench::Json::Object()
                            .Add("name", bench::Json::String(run.benchmark_name()))
                            .Add("iterations", static_cast<uint64_t>(run.iterations))
                            .Add("real_ns", run.GetAdjustedRealTime())
                            .Add("cpu_ns", run.GetAdjustedCPUTime());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row.Add("items_per_second", static_cast<double>(items->second));
      }
      rows_.Push(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  bench::Json TakeRows() { return std::move(rows_); }

 private:
  bench::Json rows_;
};

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  const std::string json_path =
      s2::bench::ArgString(argc, argv, "--json", "BENCH_micro.json");
  benchmark::Initialize(&argc, argv);
  s2::JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  s2::bench::WriteJsonFile(json_path,
                           s2::bench::Json::Object()
                               .Add("bench", "bench_micro")
                               .Add("rows", reporter.TakeRows()));
  return 0;
}
