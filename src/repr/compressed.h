#ifndef S2_REPR_COMPRESSED_H_
#define S2_REPR_COMPRESSED_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "repr/half_spectrum.h"

namespace s2::repr {

/// Which coefficients a compressed representation retains, and which side
/// information accompanies them. These mirror the five contenders of the
/// paper's Section 7 (Table 1):
///
/// | kind               | coefficients      | extra double          |
/// |--------------------|-------------------|-----------------------|
/// | kFirstKMiddle      | c first           | middle (Nyquist) coeff|  GEMINI
/// | kFirstKError       | c first           | omitted energy        |  Wang
/// | kBestKMiddle       | floor(c/1.125) best | middle coeff        |  BestMin
/// | kBestKError        | floor(c/1.125) best | omitted energy      |  BestError / BestMinError
///
/// "First" coefficients are bins 1..c (DC is skipped: sequences are
/// standardized, so bin 0 carries no energy). "Best" coefficients are the
/// bins of largest magnitude anywhere in the half spectrum. The best-k count
/// is reduced by the 1.125 factor because each best coefficient must also
/// record its 2-byte position (Section 7.1).
enum class ReprKind {
  kFirstKMiddle,
  kFirstKError,
  kBestKMiddle,
  kBestKError,
};

/// Short human-readable name ("GEMINI", "Wang", "BestMiddle", "BestError").
std::string_view ReprKindToString(ReprKind kind);

/// Number of best coefficients that fit in the memory of `c` first
/// coefficients: floor(c / 1.125) (each costs 16+2 bytes instead of 16).
size_t BestCoefficientBudget(size_t c);

/// A sequence's compressed spectral footprint: the retained coefficients
/// plus (depending on kind) either the middle coefficient or the energy of
/// everything omitted. This is what the index stores per object.
class CompressedSpectrum {
 public:
  /// Constructs an empty (invalid) representation; useful only as a
  /// placeholder to assign into. Use `Compress` to create real ones.
  CompressedSpectrum() = default;

  /// Compresses `spectrum` with the memory budget of `c` first coefficients
  /// (i.e. 2c+1 doubles for every kind; see Table 1). Returns
  /// InvalidArgument when c == 0 or c exceeds the available bins.
  static Result<CompressedSpectrum> Compress(const HalfSpectrum& spectrum,
                                             ReprKind kind, size_t c);

  /// The paper's Section 8 extension: a *variable* number of best
  /// coefficients — adds best coefficients (largest magnitude first) until
  /// the representation contains at least `energy_fraction` of the signal
  /// energy (equivalently, until the error drops below 1 - fraction). The
  /// result is a kBestKError representation, so all Best* bounds and the
  /// VP-tree work unchanged. `energy_fraction` must be in (0, 1); at least
  /// one and at most num_bins()-1 coefficients are kept.
  static Result<CompressedSpectrum> CompressToEnergy(const HalfSpectrum& spectrum,
                                                     double energy_fraction);

  /// Reassembles a representation from its serialized parts (see
  /// feature_store.h). Positions must be strictly ascending and within
  /// `n/2 + 1` bins; `coeffs` must parallel `positions`. For middle-kinds
  /// `error` is ignored (stored as NaN); for first-kinds `min_power` is
  /// ignored (stored as +infinity).
  static Result<CompressedSpectrum> FromParts(ReprKind kind, uint32_t n,
                                              std::vector<uint32_t> positions,
                                              std::vector<Complex> coeffs,
                                              double error, double min_power,
                                              Basis basis = Basis::kFourierHalf);

  ReprKind kind() const { return kind_; }

  /// The orthonormal decomposition the coefficients come from.
  Basis basis() const { return basis_; }

  /// Original sequence length.
  uint32_t n() const { return n_; }

  /// Retained bin positions (ascending) and their coefficients.
  const std::vector<uint32_t>& positions() const { return positions_; }
  const std::vector<Complex>& coeffs() const { return coeffs_; }

  /// True iff bin `k` is retained; `slot` receives its index when non-null.
  bool Holds(uint32_t k, size_t* slot) const;

  /// Weighted energy of all omitted coefficients (`T.err` in the paper).
  /// Only meaningful for kinds that store it; NaN otherwise.
  double error() const { return error_; }

  /// Magnitude of the smallest *best* retained coefficient (`minPower`).
  /// Every omitted coefficient has magnitude <= this. Only meaningful for
  /// best-k kinds; +infinity otherwise (first-k kinds cannot bound omitted
  /// magnitudes).
  double min_power() const { return min_power_; }

  /// Multiplicity of bin `k` (depends only on n and the basis).
  double multiplicity(size_t k) const {
    if (basis_ == Basis::kOrthonormalReal) return 1.0;
    if (k == 0) return 1.0;
    if (n_ % 2 == 0 && k == static_cast<size_t>(n_ / 2)) return 1.0;
    return 2.0;
  }

  /// Bytes this representation occupies on disk, per the paper's accounting:
  /// 16 bytes per coefficient, +2 per coefficient for best-k positions,
  /// +8 for the middle coefficient or the stored error.
  size_t StorageBytes() const;

  /// Reconstructs the time-domain sequence using only the retained bins
  /// (Figure 5's reconstruction quality experiment). The middle coefficient,
  /// when stored, participates.
  Result<std::vector<double>> Reconstruct() const;

 private:
  ReprKind kind_ = ReprKind::kBestKError;
  Basis basis_ = Basis::kFourierHalf;
  uint32_t n_ = 0;
  std::vector<uint32_t> positions_;
  std::vector<Complex> coeffs_;
  double error_ = 0.0;
  double min_power_ = 0.0;
};

}  // namespace s2::repr

#endif  // S2_REPR_COMPRESSED_H_
