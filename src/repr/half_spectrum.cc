#include "repr/half_spectrum.h"

#include <cmath>

#include "dsp/wavelet.h"

namespace s2::repr {

Result<HalfSpectrum> HalfSpectrum::FromSeries(const std::vector<double>& x) {
  S2_ASSIGN_OR_RETURN(std::vector<Complex> full, dsp::ForwardDft(x));
  const size_t bins = x.size() / 2 + 1;
  full.resize(bins);
  return HalfSpectrum(static_cast<uint32_t>(x.size()), std::move(full),
                      Basis::kFourierHalf);
}

Result<HalfSpectrum> HalfSpectrum::FromParts(uint32_t n, std::vector<Complex> coeffs) {
  if (n == 0) return Status::InvalidArgument("HalfSpectrum: n must be > 0");
  if (coeffs.size() != static_cast<size_t>(n / 2 + 1)) {
    return Status::InvalidArgument("HalfSpectrum: expected n/2+1 coefficients");
  }
  return HalfSpectrum(n, std::move(coeffs), Basis::kFourierHalf);
}

Result<HalfSpectrum> HalfSpectrum::FromOrthonormalReal(std::vector<double> coeffs) {
  if (coeffs.empty()) {
    return Status::InvalidArgument("HalfSpectrum: empty coefficient vector");
  }
  std::vector<Complex> complex_coeffs;
  complex_coeffs.reserve(coeffs.size());
  for (double c : coeffs) complex_coeffs.emplace_back(c, 0.0);
  return HalfSpectrum(static_cast<uint32_t>(coeffs.size()),
                      std::move(complex_coeffs), Basis::kOrthonormalReal);
}

Result<HalfSpectrum> HalfSpectrum::FromSeriesInBasis(const std::vector<double>& x,
                                                     Basis basis) {
  switch (basis) {
    case Basis::kFourierHalf:
      return FromSeries(x);
    case Basis::kOrthonormalReal: {
      S2_ASSIGN_OR_RETURN(std::vector<double> coeffs, dsp::HaarForward(x));
      return FromOrthonormalReal(std::move(coeffs));
    }
  }
  return Status::InvalidArgument("HalfSpectrum: unknown basis");
}

double HalfSpectrum::Energy() const {
  double energy = 0.0;
  for (size_t k = 0; k < coeffs_.size(); ++k) {
    energy += multiplicity(k) * std::norm(coeffs_[k]);
  }
  return energy;
}

Result<double> HalfSpectrum::DistanceTo(const HalfSpectrum& other) const {
  if (n_ != other.n_ || basis_ != other.basis_) {
    return Status::InvalidArgument("HalfSpectrum::DistanceTo: shape/basis mismatch");
  }
  double sum = 0.0;
  for (size_t k = 0; k < coeffs_.size(); ++k) {
    sum += multiplicity(k) * std::norm(coeffs_[k] - other.coeffs_[k]);
  }
  return std::sqrt(sum);
}

Result<std::vector<double>> HalfSpectrum::ReconstructFrom(
    const std::vector<uint32_t>& kept) const {
  if (basis_ == Basis::kOrthonormalReal) {
    std::vector<double> sparse(n_, 0.0);
    for (uint32_t k : kept) {
      if (k >= coeffs_.size()) {
        return Status::InvalidArgument("ReconstructFrom: bin position out of range");
      }
      sparse[k] = coeffs_[k].real();
    }
    return dsp::HaarInverse(sparse);
  }
  std::vector<Complex> full(n_, Complex(0, 0));
  for (uint32_t k : kept) {
    if (k >= coeffs_.size()) {
      return Status::InvalidArgument("ReconstructFrom: bin position out of range");
    }
    full[k] = coeffs_[k];
    if (k != 0 && !(n_ % 2 == 0 && k == n_ / 2)) {
      full[n_ - k] = std::conj(coeffs_[k]);
    }
  }
  return dsp::InverseDftReal(full);
}

}  // namespace s2::repr
