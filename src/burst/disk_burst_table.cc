#include "burst/disk_burst_table.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <utility>

#include "burst/burst_similarity.h"
#include "diag/validate.h"

namespace s2::burst {

namespace {

constexpr char kMagic[8] = {'S', '2', 'B', 'U', 'R', 'S', 'T', '1'};
constexpr size_t kMetaCountOffset = 8;

// Fixed on-disk record: series_id u32 | start i32 | end i32 | pad | avg f64.
constexpr size_t kRecordBytes = 24;
constexpr size_t kRecordsPerPage = (storage::kPageSize - 0) / kRecordBytes;

// Record ids map to heap pages 1.. (page 0 is metadata).
storage::PageId PageOf(uint64_t record_id) {
  return static_cast<storage::PageId>(1 + record_id / kRecordsPerPage);
}
size_t SlotOf(uint64_t record_id) {
  return (record_id % kRecordsPerPage) * kRecordBytes;
}

void EncodeRecord(const BurstRecord& record, char* out) {
  std::memcpy(out, &record.series_id, 4);
  std::memcpy(out + 4, &record.start, 4);
  std::memcpy(out + 8, &record.end, 4);
  const uint32_t pad = 0;
  std::memcpy(out + 12, &pad, 4);
  std::memcpy(out + 16, &record.avg_value, 8);
}

BurstRecord DecodeRecord(const char* in) {
  BurstRecord record;
  std::memcpy(&record.series_id, in, 4);
  std::memcpy(&record.start, in + 4, 4);
  std::memcpy(&record.end, in + 8, 4);
  std::memcpy(&record.avg_value, in + 16, 8);
  return record;
}

}  // namespace

Result<std::unique_ptr<DiskBurstTable>> DiskBurstTable::Open(
    const std::string& prefix, size_t pool_pages) {
  Options options;
  options.pool_pages = pool_pages;
  return Open(prefix, options);
}

Result<std::unique_ptr<DiskBurstTable>> DiskBurstTable::Open(
    const std::string& prefix, Options options) {
  io::Env* env = options.env != nullptr ? options.env : io::Env::Default();
  storage::Pager::Options heap_options;
  heap_options.env = options.env;
  heap_options.durable = options.durable;
  S2_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::Pager> heap,
      storage::Pager::Open(prefix + ".heap", options.pool_pages, heap_options));

  const std::string idx_path = prefix + ".idx";
  storage::DiskBPlusTree::Options index_options;
  index_options.env = options.env;
  index_options.durable = options.durable;
  index_options.pool_pages = options.pool_pages;
  // Discards every on-disk trace of the index (published file, pending
  // commit, shadow copy) and opens an empty tree in its place.
  auto fresh_index = [&]() -> Result<std::unique_ptr<storage::DiskBPlusTree>> {
    S2_RETURN_NOT_OK(env->Remove(idx_path));
    S2_RETURN_NOT_OK(env->Remove(idx_path + ".tmp"));
    S2_RETURN_NOT_OK(env->Remove(idx_path + ".shadow"));
    return storage::DiskBPlusTree::Open(idx_path, index_options);
  };

  // The index is fully derivable from the heap, so a corrupt index file is
  // recoverable, not fatal: replace it and repopulate from the heap below.
  // Any other open failure (I/O) propagates.
  bool rebuild = false;
  std::unique_ptr<storage::DiskBPlusTree> index;
  Result<std::unique_ptr<storage::DiskBPlusTree>> opened =
      storage::DiskBPlusTree::Open(idx_path, index_options);
  if (opened.ok()) {
    index = std::move(*opened);
  } else if (opened.status().code() == StatusCode::kCorruption) {
    rebuild = true;
    S2_ASSIGN_OR_RETURN(index, fresh_index());
  } else {
    return opened.status();
  }

  std::unique_ptr<DiskBurstTable> table(
      new DiskBurstTable(std::move(heap), std::move(index)));
  if (table->heap_->num_pages() == 0) {
    char* meta = nullptr;
    S2_ASSIGN_OR_RETURN(storage::PageId meta_id, table->heap_->Allocate(&meta));
    std::memcpy(meta, kMagic, sizeof(kMagic));
    const uint64_t zero = 0;
    std::memcpy(meta + kMetaCountOffset, &zero, sizeof(zero));
    S2_RETURN_NOT_OK(table->heap_->Unpin(meta_id, /*dirty=*/true));
    S2_RETURN_NOT_OK(table->heap_->FlushAll());
  } else {
    S2_RETURN_NOT_OK(table->LoadMeta());
  }

  // Flush commits the heap strictly before the index, so a crash between the
  // two commits leaves the index one generation behind the heap. A
  // cardinality disagreement therefore means the index cannot be trusted;
  // replace it and rebuild. (Equal counts with mismatched keys are genuine
  // corruption and stay visible to Validate.)
  if (!rebuild && table->index_->size() != table->record_count_) {
    rebuild = true;
    table->index_.reset();  // Publishes (stale) state; superseded next line.
    S2_ASSIGN_OR_RETURN(table->index_, fresh_index());
  }
  if (rebuild) {
    S2_RETURN_NOT_OK(table->RebuildIndex());
    table->index_rebuilt_ = true;
  }
  return table;
}

// Repopulates the (empty) index from the heap: one entry per record, keyed
// by start date — the same pairs Insert would have produced.
Status DiskBurstTable::RebuildIndex() {
  for (uint64_t id = 0; id < record_count_; ++id) {
    S2_ASSIGN_OR_RETURN(BurstRecord record, ReadRecord(id));
    S2_RETURN_NOT_OK(index_->Insert(record.start, id));
  }
  return index_->Flush();
}

Status DiskBurstTable::LoadMeta() {
  S2_ASSIGN_OR_RETURN(char* meta, heap_->Fetch(0));
  const bool ok = std::memcmp(meta, kMagic, sizeof(kMagic)) == 0;
  if (ok) std::memcpy(&record_count_, meta + kMetaCountOffset, sizeof(record_count_));
  S2_RETURN_NOT_OK(heap_->Unpin(0, false));
  if (!ok) return Status::Corruption("DiskBurstTable: bad heap magic");
  // The declared count must fit in the heap pages actually on disk, or
  // every ReadRecord past the end would fault below the range check.
  const uint64_t max_records =
      (static_cast<uint64_t>(heap_->num_pages()) - 1) * kRecordsPerPage;
  if (record_count_ > max_records) {
    return Status::Corruption(
        "DiskBurstTable: record count " + std::to_string(record_count_) +
        " exceeds the heap capacity of " + std::to_string(max_records));
  }
  return Status::OK();
}

Status DiskBurstTable::StoreMeta() {
  S2_ASSIGN_OR_RETURN(char* meta, heap_->Fetch(0));
  std::memcpy(meta + kMetaCountOffset, &record_count_, sizeof(record_count_));
  return heap_->Unpin(0, /*dirty=*/true);
}

Result<uint64_t> DiskBurstTable::AppendRecord(const BurstRecord& record) {
  const uint64_t record_id = record_count_;
  const storage::PageId page_id = PageOf(record_id);
  char* page = nullptr;
  if (page_id >= heap_->num_pages()) {
    S2_ASSIGN_OR_RETURN(storage::PageId allocated, heap_->Allocate(&page));
    if (allocated != page_id) {
      (void)heap_->Unpin(allocated, false);
      return Status::Internal("DiskBurstTable: heap page allocation out of order");
    }
  } else {
    S2_ASSIGN_OR_RETURN(page, heap_->Fetch(page_id));
  }
  EncodeRecord(record, page + SlotOf(record_id));
  S2_RETURN_NOT_OK(heap_->Unpin(page_id, /*dirty=*/true));
  ++record_count_;
  S2_RETURN_NOT_OK(StoreMeta());
  return record_id;
}

Result<BurstRecord> DiskBurstTable::ReadRecord(uint64_t record_id) {
  if (record_id >= record_count_) {
    return Status::OutOfRange("DiskBurstTable: record id out of range");
  }
  const storage::PageId page_id = PageOf(record_id);
  S2_ASSIGN_OR_RETURN(char* page, heap_->Fetch(page_id));
  const BurstRecord record = DecodeRecord(page + SlotOf(record_id));
  S2_RETURN_NOT_OK(heap_->Unpin(page_id, false));
  return record;
}

Status DiskBurstTable::Insert(ts::SeriesId series_id,
                              const std::vector<BurstRegion>& regions,
                              int32_t offset) {
  for (const BurstRegion& region : regions) {
    BurstRecord record;
    record.series_id = series_id;
    record.start = region.start + offset;
    record.end = region.end + offset;
    record.avg_value = region.avg_value;
    S2_ASSIGN_OR_RETURN(uint64_t record_id, AppendRecord(record));
    S2_RETURN_NOT_OK(index_->Insert(record.start, record_id));
  }
  return Status::OK();
}

Result<std::vector<BurstRecord>> DiskBurstTable::FindOverlapping(
    const BurstRegion& query) {
  // Index scan: startDate <= query.end; residual filter on endDate.
  std::vector<uint64_t> record_ids;
  S2_RETURN_NOT_OK(index_->Scan(std::numeric_limits<int64_t>::min(), query.end,
                                [&record_ids](int64_t, uint64_t record_id) {
                                  record_ids.push_back(record_id);
                                  return true;
                                }));
  std::vector<BurstRecord> out;
  for (uint64_t record_id : record_ids) {
    S2_ASSIGN_OR_RETURN(BurstRecord record, ReadRecord(record_id));
    if (record.end >= query.start) out.push_back(record);
  }
  return out;
}

Result<std::vector<BurstMatch>> DiskBurstTable::QueryByBurst(
    const std::vector<BurstRegion>& query_bursts, size_t k, ts::SeriesId exclude) {
  std::unordered_map<ts::SeriesId, double> scores;
  for (const BurstRegion& q : query_bursts) {
    S2_ASSIGN_OR_RETURN(std::vector<BurstRecord> overlapping, FindOverlapping(q));
    for (const BurstRecord& record : overlapping) {
      if (record.series_id == exclude) continue;
      const BurstRegion b = record.region();
      const double intersect = Intersect(q, b);
      if (intersect == 0.0) continue;
      scores[record.series_id] += intersect * ValueSimilarity(q, b);
    }
  }
  std::vector<BurstMatch> matches;
  matches.reserve(scores.size());
  for (const auto& [id, score] : scores) matches.push_back({id, score});
  std::sort(matches.begin(), matches.end(),
            [](const BurstMatch& a, const BurstMatch& b) {
              if (a.bsim != b.bsim) return a.bsim > b.bsim;
              return a.series_id < b.series_id;
            });
  if (k > 0 && matches.size() > k) matches.resize(k);
  return matches;
}

Status DiskBurstTable::Validate() {
  diag::Validator v("DiskBurstTable");

  // Heap metadata.
  if (heap_->num_pages() == 0) {
    return diag::CorruptionError("DiskBurstTable", "heap has no metadata page");
  }
  {
    S2_ASSIGN_OR_RETURN(char* meta, heap_->Fetch(0));
    uint64_t stored_count = 0;
    const bool magic_ok = std::memcmp(meta, kMagic, sizeof(kMagic)) == 0;
    std::memcpy(&stored_count, meta + kMetaCountOffset, sizeof(stored_count));
    S2_RETURN_NOT_OK(heap_->Unpin(0, false));
    v.Check(magic_ok) << "bad heap magic";
    v.Check(stored_count == record_count_)
        << "heap metadata stores " << stored_count << " records, table claims "
        << record_count_;
  }
  const uint64_t max_records =
      (static_cast<uint64_t>(heap_->num_pages()) - 1) * kRecordsPerPage;
  v.Check(record_count_ <= max_records)
      << "record count " << record_count_ << " exceeds the heap capacity of "
      << max_records;
  if (!v.ok()) return v.ToStatus();

  // Every record must be well-formed.
  for (uint64_t id = 0; id < record_count_; ++id) {
    S2_ASSIGN_OR_RETURN(BurstRecord record, ReadRecord(id));
    v.Check(record.series_id != ts::kInvalidSeriesId)
        << "record " << id << " has an invalid series id";
    v.Check(record.start <= record.end)
        << "record " << id << " has an inverted interval [" << record.start
        << ", " << record.end << "]";
    v.Check(std::isfinite(record.avg_value))
        << "record " << id << " has a non-finite average burst value";
  }

  // The index tree itself, then its exact agreement with the heap.
  S2_RETURN_NOT_OK(index_->Validate());
  v.Check(index_->size() == record_count_)
      << "index holds " << index_->size() << " entries for " << record_count_
      << " heap records";
  std::vector<uint8_t> indexed(record_count_, 0);
  std::vector<std::pair<int64_t, uint64_t>> entries;
  S2_RETURN_NOT_OK(index_->ScanAll([&entries](int64_t key, uint64_t record_id) {
    entries.push_back({key, record_id});
    return true;
  }));
  for (const auto& [key, record_id] : entries) {
    if (record_id >= record_count_) {
      v.AddViolation("index entry points past the heap (record " +
                     std::to_string(record_id) + " of " +
                     std::to_string(record_count_) + ")");
      continue;
    }
    v.Check(indexed[record_id] == 0) << "record " << record_id
                                     << " indexed twice";
    indexed[record_id] = 1;
    S2_ASSIGN_OR_RETURN(BurstRecord record, ReadRecord(record_id));
    v.Check(record.start == key)
        << "index key " << key << " != record " << record_id << " start date "
        << record.start;
  }
  for (uint64_t id = 0; id < record_count_ && id < indexed.size(); ++id) {
    v.Check(indexed[id] != 0) << "record " << id << " missing from the index";
  }
  return v.ToStatus();
}

Status DiskBurstTable::Flush() {
  // Heap first: the index is derivable from the heap but not vice versa, so
  // a crash between the two commits is always recoverable (Open rebuilds).
  S2_RETURN_NOT_OK(heap_->Sync());
  return index_->Flush();
}

uint64_t DiskBurstTable::disk_reads() const {
  return heap_->disk_reads() + index_->pager()->disk_reads();
}

uint64_t DiskBurstTable::disk_writes() const {
  return heap_->disk_writes() + index_->pager()->disk_writes();
}

}  // namespace s2::burst
