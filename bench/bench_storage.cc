// Reproduces paper Table 1: the equal-memory accounting that gives every
// method the same per-sequence footprint of 2c+1 doubles. For each budget
// the table reports the number of coefficients each method stores and the
// realized bytes of the compressed representation on real (synthetic)
// corpus sequences.

#include <cstdio>

#include "bench/bench_util.h"
#include "querylog/corpus_generator.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2 {
namespace {

void Run(size_t n_days) {
  qlog::CorpusSpec spec;
  spec.num_series = 64;
  spec.n_days = n_days;
  spec.seed = 11;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return;
  const auto rows = bench::StandardizedRows(*corpus);

  std::printf("\nSequence length N = %zu, budget c first coefficients\n", n_days);
  std::printf("%-14s %-24s %10s %12s %12s\n", "method", "stores", "coeffs",
              "bytes(avg)", "budget(2c+1)");
  struct MethodRow {
    repr::ReprKind kind;
    const char* label;
    const char* stores;
  };
  const MethodRow methods[] = {
      {repr::ReprKind::kFirstKMiddle, "GEMINI", "c first + middle coeff"},
      {repr::ReprKind::kFirstKError, "Wang", "c first + error"},
      {repr::ReprKind::kBestKMiddle, "BestMin", "floor(c/1.125) best + middle"},
      {repr::ReprKind::kBestKError, "BestMinError", "floor(c/1.125) best + error"},
  };
  for (size_t c : {8u, 16u, 32u}) {
    std::printf("--- c = %zu --------------------------------------------------\n",
                c);
    for (const MethodRow& method : methods) {
      double total_bytes = 0;
      size_t coeff_count = 0;
      size_t samples = 0;
      for (const auto& row : rows) {
        auto spectrum = repr::HalfSpectrum::FromSeries(row);
        if (!spectrum.ok()) continue;
        auto compressed =
            repr::CompressedSpectrum::Compress(*spectrum, method.kind, c);
        if (!compressed.ok()) continue;
        total_bytes += static_cast<double>(compressed->StorageBytes());
        coeff_count = compressed->positions().size();
        ++samples;
      }
      std::printf("%-14s %-24s %10zu %12.1f %12zu\n", method.label, method.stores,
                  coeff_count, total_bytes / static_cast<double>(samples),
                  (2 * c + 1) * 8);
    }
  }
}

}  // namespace
}  // namespace s2

int main() {
  s2::bench::PrintHeader(
      "Table 1: equal-memory storage accounting for each compressed "
      "representation");
  s2::Run(1024);
  s2::Run(2048);
  std::printf(
      "\nExpected shape (paper): every method fits the 2c+1-double budget; "
      "best-k methods trade ~11%% of the coefficients for their stored "
      "positions (16+2 bytes each).\n");
  return 0;
}
