#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "resilience/retrying_source.h"
#include "storage/sequence_store.h"

namespace s2::resilience {
namespace {

// A source that fails the first `fail_first` Gets with `failure`.
class FlakySource : public storage::SequenceSource {
 public:
  FlakySource(std::vector<std::vector<double>> rows, int fail_first,
              Status failure)
      : rows_(std::move(rows)), fail_remaining_(fail_first),
        failure_(std::move(failure)) {}

  Result<std::vector<double>> Get(ts::SeriesId id) override {
    ++gets_;
    if (fail_remaining_ > 0) {
      --fail_remaining_;
      return failure_;
    }
    if (id >= rows_.size()) return Status::NotFound("no such row");
    return rows_[id];
  }
  size_t num_series() const override { return rows_.size(); }
  size_t series_length() const override {
    return rows_.empty() ? 0 : rows_[0].size();
  }
  uint64_t read_count() const override { return gets_; }
  void ResetCounters() override { gets_ = 0; }

  int gets() const { return gets_; }

 private:
  std::vector<std::vector<double>> rows_;
  int fail_remaining_;
  Status failure_;
  int gets_ = 0;
};

RetryPolicy FastPolicy(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  return policy;
}

Retrier::Sleeper NoSleep() {
  return [](std::chrono::microseconds) {};
}

TEST(RetryingSourceTest, PassesThroughOnSuccess) {
  auto flaky = std::make_unique<FlakySource>(
      std::vector<std::vector<double>>{{1.0, 2.0}}, 0, Status::OK());
  RetryingSequenceSource source(std::move(flaky), FastPolicy(3), NoSleep());
  auto row = source.Get(0);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1], 2.0);
  EXPECT_EQ(source.retry_count(), 0u);
  EXPECT_EQ(source.giveup_count(), 0u);
  EXPECT_EQ(source.num_series(), 1u);
  EXPECT_EQ(source.series_length(), 2u);
}

TEST(RetryingSourceTest, RetriesTransientFaults) {
  auto flaky = std::make_unique<FlakySource>(
      std::vector<std::vector<double>>{{7.0}}, 2,
      Status::TransientIo("blip"));
  FlakySource* raw = flaky.get();
  RetryingSequenceSource source(std::move(flaky), FastPolicy(4), NoSleep());
  auto row = source.Get(0);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], 7.0);
  EXPECT_EQ(raw->gets(), 3);
  EXPECT_EQ(source.retry_count(), 2u);
  EXPECT_EQ(source.giveup_count(), 0u);
}

TEST(RetryingSourceTest, GivesUpAfterPolicyExhausted) {
  auto flaky = std::make_unique<FlakySource>(
      std::vector<std::vector<double>>{{7.0}}, 1000,
      Status::TransientIo("always down"));
  FlakySource* raw = flaky.get();
  RetryingSequenceSource source(std::move(flaky), FastPolicy(3), NoSleep());
  auto row = source.Get(0);
  ASSERT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kIoTransient);
  EXPECT_EQ(raw->gets(), 3);
  EXPECT_EQ(source.retry_count(), 2u);
  EXPECT_EQ(source.giveup_count(), 1u);
}

TEST(RetryingSourceTest, DoesNotRetryHardFailures) {
  auto flaky = std::make_unique<FlakySource>(
      std::vector<std::vector<double>>{{7.0}}, 1000,
      Status::Corruption("bad bytes"));
  FlakySource* raw = flaky.get();
  RetryingSequenceSource source(std::move(flaky), FastPolicy(5), NoSleep());
  auto row = source.Get(0);
  ASSERT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(raw->gets(), 1);
  EXPECT_EQ(source.retry_count(), 0u);
  EXPECT_EQ(source.giveup_count(), 0u);
}

TEST(RetryingSourceTest, CountersAccumulateAcrossGets) {
  auto flaky = std::make_unique<FlakySource>(
      std::vector<std::vector<double>>{{1.0}, {2.0}}, 1,
      Status::TransientIo("one blip"));
  RetryingSequenceSource source(std::move(flaky), FastPolicy(3), NoSleep());
  ASSERT_TRUE(source.Get(0).ok());  // One retry consumed here.
  ASSERT_TRUE(source.Get(1).ok());  // Clean.
  EXPECT_EQ(source.retry_count(), 1u);
  // ResetCounters resets the base's read accounting, not retry history.
  source.ResetCounters();
  EXPECT_EQ(source.read_count(), 0u);
  EXPECT_EQ(source.retry_count(), 1u);
}

}  // namespace
}  // namespace s2::resilience
