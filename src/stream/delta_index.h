#ifndef S2_STREAM_DELTA_INDEX_H_
#define S2_STREAM_DELTA_INDEX_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "index/vp_tree.h"
#include "repr/row_matrix.h"

namespace s2::stream {

/// The small, mutable tier of the LSM-style two-tier index: series touched
/// by streaming appends live here (in a VP-tree grown purely by `Insert`)
/// until a background compaction folds them back into the large, mostly
/// immutable main tree.
///
/// Membership is tracked explicitly: at any moment every indexed series is
/// in *exactly one* tier, so a query searches both trees under one shared
/// pruning radius and merges by (distance, id) — the same exactness
/// argument as the cross-shard scatter-gather merge, with the two tiers
/// playing the role of disjoint partitions.
class DeltaIndex {
 public:
  /// An empty delta tier compatible with the main tree's options (same
  /// representation, basis, bound method and budget, so both tiers' bounds
  /// live in the same metric).
  static Result<DeltaIndex> Create(const index::VpTreeIndex::Options& options,
                                   uint32_t series_length);

  /// Inserts `id` under `row`; `source->Get(id)` must already return `row`.
  Status Insert(ts::SeriesId id, const std::vector<double>& row,
                storage::SequenceSource* source);

  /// Removes `id` (an already-delta-resident series being appended to
  /// again). `pinned_row` — the row the series was indexed under — is
  /// forwarded to the tree so a tombstoned vantage keeps routing correctly
  /// after the store's row changes.
  Status Remove(ts::SeriesId id, const std::vector<double>* pinned_row);

  bool Contains(ts::SeriesId id) const { return members_.count(id) != 0; }

  /// Live members, ascending — the compaction order.
  std::vector<ts::SeriesId> MemberIds() const {
    return std::vector<ts::SeriesId>(members_.begin(), members_.end());
  }

  /// Drops every member and resets the tree (post-compaction).
  Status Clear();

  /// Live series in this tier (tombstones excluded).
  size_t size() const { return members_.size(); }

  const index::VpTreeIndex& tree() const { return tree_; }

  /// Exact k-NN over this tier: tree candidate collection, then batched
  /// verification against the tier's own cache-aligned `repr::RowMatrix`
  /// row cache — the delta tier is RAM-hot by definition (every member was
  /// just written), so verification never goes back to the sequence source.
  /// Same loop, thresholds and squared-domain gate as
  /// `VpTreeIndex::Search`, so answers are bitwise identical.
  Result<std::vector<index::Neighbor>> Search(
      const std::vector<double>& query, size_t k,
      storage::SequenceSource* source, index::VpTreeIndex::SearchStats* stats,
      index::SharedRadius* shared = nullptr) const;

  /// Tree self-check plus the membership census (tree size == member set).
  Status Validate(storage::SequenceSource* source = nullptr) const;

 private:
  DeltaIndex(index::VpTreeIndex tree, index::VpTreeIndex::Options options,
             uint32_t series_length)
      : tree_(std::move(tree)),
        options_(options),
        series_length_(series_length) {}

  /// Copies `row` into the slot, growing the matrix capacity as needed.
  void CacheRow(size_t slot, const std::vector<double>& row);

  index::VpTreeIndex tree_;
  index::VpTreeIndex::Options options_;
  uint32_t series_length_;
  std::set<ts::SeriesId> members_;
  // Verification row cache: one RowMatrix slot per live member, kept dense
  // by swap-with-last on Remove. rows_ capacity (num_rows) may exceed the
  // live count; slots >= slot_ids_.size() are unused.
  repr::RowMatrix rows_;
  std::vector<ts::SeriesId> slot_ids_;              // slot -> member id
  std::unordered_map<ts::SeriesId, size_t> slot_of_;  // member id -> slot
};

}  // namespace s2::stream

#endif  // S2_STREAM_DELTA_INDEX_H_
