#include "io/mem_env.h"

#include <algorithm>
#include <cstring>

namespace s2::io {

namespace {
constexpr size_t kMaxMemFileBytes = size_t{1} << 32;  // 4 GiB sanity bound
}  // namespace

/// A handle onto a MemEnv node. Handles share the node, so two opens of the
/// same path observe each other's writes (like fds on one inode), and a
/// handle that outlives a Remove keeps the node alive (POSIX unlink
/// semantics).
class MemFile : public File {
 public:
  MemFile(MemEnv* env, std::shared_ptr<MemEnv::Node> node)
      : env_(env), node_(std::move(node)) {}

  Result<size_t> Read(void* buf, size_t n) override {
    sync::MutexLock lock(&env_->mu_);
    const size_t got = ReadLocked(buf, n, pos_);
    pos_ += got;
    return got;
  }

  Result<size_t> Write(const void* buf, size_t n) override {
    sync::MutexLock lock(&env_->mu_);
    S2_RETURN_NOT_OK(WriteLocked(buf, n, pos_));
    pos_ += n;
    return n;
  }

  Result<size_t> ReadAt(void* buf, size_t n, uint64_t offset) override {
    sync::MutexLock lock(&env_->mu_);
    return ReadLocked(buf, n, static_cast<size_t>(offset));
  }

  Result<size_t> WriteAt(const void* buf, size_t n, uint64_t offset) override {
    sync::MutexLock lock(&env_->mu_);
    S2_RETURN_NOT_OK(WriteLocked(buf, n, static_cast<size_t>(offset)));
    return n;
  }

  Status Seek(uint64_t offset) override {
    sync::MutexLock lock(&env_->mu_);
    pos_ = static_cast<size_t>(offset);
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    sync::MutexLock lock(&env_->mu_);
    return static_cast<uint64_t>(node_->current.size());
  }

  Status Sync() override {
    sync::MutexLock lock(&env_->mu_);
    node_->durable = node_->current;
    node_->synced_once = true;
    return Status::OK();
  }

 private:
  size_t ReadLocked(void* buf, size_t n, size_t offset)
      S2_REQUIRES(env_->mu_) {
    const auto& bytes = node_->current;
    if (offset >= bytes.size()) return 0;
    const size_t got = std::min(n, bytes.size() - offset);
    std::memcpy(buf, bytes.data() + offset, got);
    return got;
  }

  Status WriteLocked(const void* buf, size_t n, size_t offset)
      S2_REQUIRES(env_->mu_) {
    const size_t end = offset + n;
    if (end > kMaxMemFileBytes) {
      return Status::IoError("MemEnv write would exceed file size bound");
    }
    auto& bytes = node_->current;
    if (end > bytes.size()) bytes.resize(end);
    std::memcpy(bytes.data() + offset, buf, n);
    return Status::OK();
  }

  MemEnv* env_;
  std::shared_ptr<MemEnv::Node> node_;
  size_t pos_ S2_GUARDED_BY(env_->mu_) = 0;
};

Result<std::unique_ptr<File>> MemEnv::Open(const std::string& path,
                                           OpenMode mode) {
  sync::MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    if (mode == OpenMode::kRead) {
      return Status::NotFound("open failed for " + path + ": no such file");
    }
    it = files_.emplace(path, std::make_shared<Node>()).first;
  } else if (mode == OpenMode::kTruncate) {
    it->second->current.clear();
  }
  return std::unique_ptr<File>(new MemFile(this, it->second));
}

Status MemEnv::Rename(const std::string& from, const std::string& to) {
  sync::MutexLock lock(&mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("rename failed: no such file: " + from);
  }
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::Remove(const std::string& path) {
  sync::MutexLock lock(&mu_);
  files_.erase(path);
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& path) {
  sync::MutexLock lock(&mu_);
  return files_.count(path) != 0;
}

Status MemEnv::DropUnsynced() {
  sync::MutexLock lock(&mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    Node& node = *it->second;
    if (!node.synced_once) {
      // Never fsynced: after a reboot neither the bytes nor (for files the
      // commit protocol creates fresh, like *.tmp) the entry can be trusted.
      it = files_.erase(it);
      continue;
    }
    node.current = node.durable;
    ++it;
  }
  return Status::OK();
}

Result<std::vector<std::string>> MemEnv::ListPrefix(const std::string& prefix) {
  sync::MutexLock lock(&mu_);
  std::vector<std::string> out;
  // files_ is an ordered map, so the matching range is contiguous and the
  // result is already sorted.
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::vector<std::string> MemEnv::ListFiles() {
  sync::MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, node] : files_) out.push_back(path);
  return out;
}

}  // namespace s2::io
