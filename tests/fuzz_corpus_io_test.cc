#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzz_util.h"
#include "storage/corpus_io.h"
#include "timeseries/time_series.h"

namespace s2::storage {
namespace {

// Corruption fuzzing for the corpus file format: every mutated image must
// come back as a Status from ReadCorpus — never a crash, out-of-bounds read
// (caught by the sanitizer configurations), or runaway allocation.

ts::Corpus MakeCorpus(s2::Rng* rng) {
  ts::Corpus corpus;
  for (int i = 0; i < 8; ++i) {
    ts::TimeSeries series;
    series.name = "query-" + std::to_string(i);
    series.start_day = static_cast<int32_t>(rng->UniformInt(0, 100));
    series.values.resize(64);
    for (double& x : series.values) x = rng->Normal(0.0, 1.0);
    corpus.Add(std::move(series));
  }
  return corpus;
}

TEST(FuzzCorpusIo, MutatedImagesNeverCrashTheLoader) {
  s2::Rng rng(0xC0DECAFE);
  const std::string path = fuzz::TempPath("s2_fuzz_corpus.bin");
  ASSERT_TRUE(WriteCorpus(path, MakeCorpus(&rng)).ok());
  const std::vector<char> image = fuzz::ReadFileBytes(path);
  ASSERT_FALSE(image.empty());

  for (int round = 0; round < 200; ++round) {
    fuzz::WriteFileBytes(path, fuzz::Mutate(image, &rng));
    const Result<ts::Corpus> loaded = ReadCorpus(path);
    if (loaded.ok()) {
      // A flip that survives parsing must still yield a bounded corpus.
      EXPECT_LE(loaded->size(), 1u << 20);
    } else {
      EXPECT_NE(loaded.status().code(), StatusCode::kOk);
    }
  }
  std::remove(path.c_str());
}

TEST(FuzzCorpusIo, TruncationAtEveryHeaderBoundaryIsAnError) {
  s2::Rng rng(7);
  const std::string path = fuzz::TempPath("s2_fuzz_corpus_trunc.bin");
  ASSERT_TRUE(WriteCorpus(path, MakeCorpus(&rng)).ok());
  const std::vector<char> image = fuzz::ReadFileBytes(path);

  for (size_t cut : {0ul, 4ul, 8ul, 12ul, 16ul, 20ul, 30ul}) {
    if (cut >= image.size()) continue;
    fuzz::WriteFileBytes(path,
                         std::vector<char>(image.begin(),
                                           image.begin() +
                                               static_cast<ptrdiff_t>(cut)));
    EXPECT_FALSE(ReadCorpus(path).ok()) << "cut at " << cut;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2::storage
