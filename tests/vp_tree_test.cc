#include "index/vp_tree.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"
#include "index/linear_scan.h"
#include "querylog/corpus_generator.h"

namespace s2::index {
namespace {

struct Fixture {
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> queries;
  std::unique_ptr<storage::InMemorySequenceSource> source;
};

Fixture MakeFixture(size_t num_series, size_t n_days, size_t num_queries,
                    uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = num_series;
  spec.n_days = n_days;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  Fixture fx;
  for (const auto& series : corpus->series()) {
    fx.rows.push_back(dsp::Standardize(series.values));
  }
  auto queries = qlog::GenerateQueries(spec, num_queries);
  EXPECT_TRUE(queries.ok());
  for (const auto& query : *queries) {
    fx.queries.push_back(dsp::Standardize(query.values));
  }
  auto source = storage::InMemorySequenceSource::Create(fx.rows);
  EXPECT_TRUE(source.ok());
  fx.source = std::move(source).ValueOrDie();
  return fx;
}

TEST(VpTreeTest, BuildRejectsBadInput) {
  VpTreeIndex::Options options;
  EXPECT_FALSE(VpTreeIndex::Build({}, options).ok());
  EXPECT_FALSE(VpTreeIndex::Build({{}}, options).ok());
  EXPECT_FALSE(VpTreeIndex::Build({{1.0, 2.0}, {1.0}}, options).ok());
  VpTreeIndex::Options bad_leaf = options;
  bad_leaf.leaf_size = 0;
  std::vector<std::vector<double>> rows(4, std::vector<double>(64, 0.0));
  EXPECT_FALSE(VpTreeIndex::Build(rows, bad_leaf).ok());
}

TEST(VpTreeTest, SearchValidatesArguments) {
  Fixture fx = MakeFixture(32, 128, 1, 1);
  VpTreeIndex::Options options;
  options.budget_c = 8;
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->Search(std::vector<double>(5, 0.0), 1, fx.source.get(),
                             nullptr)
                   .ok());
  EXPECT_FALSE(index->Search(fx.queries[0], 0, fx.source.get(), nullptr).ok());
  EXPECT_FALSE(index->Search(fx.queries[0], 1, nullptr, nullptr).ok());
}

// Exactness: the VP-tree must return exactly the linear-scan ground truth
// for every bound method, representation and k.
using ExactnessParam = std::tuple<repr::BoundMethod, size_t /*k*/, size_t /*c*/>;

class VpTreeExactnessTest : public ::testing::TestWithParam<ExactnessParam> {};

TEST_P(VpTreeExactnessTest, MatchesLinearScan) {
  const auto [method, k, c] = GetParam();
  Fixture fx = MakeFixture(300, 256, 12, 42);

  VpTreeIndex::Options options;
  options.method = method;
  options.budget_c = c;
  switch (method) {
    case repr::BoundMethod::kGemini:
      options.repr_kind = repr::ReprKind::kFirstKMiddle;
      break;
    case repr::BoundMethod::kWang:
      options.repr_kind = repr::ReprKind::kFirstKError;
      break;
    case repr::BoundMethod::kBestMin:
      options.repr_kind = repr::ReprKind::kBestKMiddle;
      break;
    default:
      options.repr_kind = repr::ReprKind::kBestKError;
  }
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  LinearScan scan(fx.source.get());

  for (const auto& query : fx.queries) {
    auto expected = scan.Search(query, k);
    auto got = index->Search(query, k, fx.source.get(), nullptr);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), expected->size());
    for (size_t i = 0; i < got->size(); ++i) {
      // Distances must agree exactly; ids may differ only under exact ties.
      EXPECT_NEAR((*got)[i].distance, (*expected)[i].distance, 1e-9)
          << "rank " << i;
    }
    EXPECT_EQ((*got)[0].id, (*expected)[0].id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndBudgets, VpTreeExactnessTest,
    ::testing::Combine(
        ::testing::Values(repr::BoundMethod::kGemini, repr::BoundMethod::kWang,
                          repr::BoundMethod::kBestMin,
                          repr::BoundMethod::kBestError,
                          repr::BoundMethod::kBestMinError),
        ::testing::Values(1u, 5u),
        ::testing::Values(8u, 16u)));

TEST(VpTreeTest, GuidedTraversalOffStillExact) {
  Fixture fx = MakeFixture(200, 128, 6, 7);
  VpTreeIndex::Options options;
  options.guided_traversal = false;
  options.budget_c = 8;
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  LinearScan scan(fx.source.get());
  for (const auto& query : fx.queries) {
    auto expected = scan.Search(query, 1);
    auto got = index->Search(query, 1, fx.source.get(), nullptr);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0].id, (*expected)[0].id);
  }
}

TEST(VpTreeTest, IndexedObjectFindsItself) {
  Fixture fx = MakeFixture(100, 128, 0, 9);
  VpTreeIndex::Options options;
  options.budget_c = 16;
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  for (ts::SeriesId id = 0; id < 100; id += 7) {
    auto got = index->Search(fx.rows[id], 1, fx.source.get(), nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR((*got)[0].distance, 0.0, 1e-9);
  }
}

TEST(VpTreeTest, PruningActuallyHappens) {
  Fixture fx = MakeFixture(1000, 256, 5, 11);
  VpTreeIndex::Options options;
  options.budget_c = 32;
  options.method = repr::BoundMethod::kBestMinError;
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  for (const auto& query : fx.queries) {
    VpTreeIndex::SearchStats stats;
    fx.source->ResetCounters();
    auto got = index->Search(query, 1, fx.source.get(), &stats);
    ASSERT_TRUE(got.ok());
    // Verification must touch far fewer sequences than the database size.
    EXPECT_LT(stats.full_retrievals, 1000u / 4);
    EXPECT_EQ(stats.full_retrievals, fx.source->read_count());
  }
}

TEST(VpTreeTest, CompressedBytesIsCompact) {
  Fixture fx = MakeFixture(256, 512, 0, 13);
  VpTreeIndex::Options options;
  options.budget_c = 16;
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  const size_t raw_bytes = 256 * 512 * sizeof(double);
  // (2c+1) doubles per object plus the split radii: far below the raw data.
  EXPECT_LT(index->CompressedBytes(), raw_bytes / 3);
  EXPECT_GT(index->CompressedBytes(), 0u);
}

TEST(VpTreeTest, SmallCorpusSingleLeaf) {
  Fixture fx = MakeFixture(4, 64, 2, 15);
  VpTreeIndex::Options options;
  options.leaf_size = 8;  // Everything in the root leaf.
  options.budget_c = 8;
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  LinearScan scan(fx.source.get());
  for (const auto& query : fx.queries) {
    auto expected = scan.Search(query, 2);
    auto got = index->Search(query, 2, fx.source.get(), nullptr);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0].id, (*expected)[0].id);
    EXPECT_EQ((*got)[1].id, (*expected)[1].id);
  }
}

TEST(VpTreeTest, VariableEnergyRepresentationStaysExact) {
  // Section 8 extension: per-object variable coefficient counts, indexed by
  // the same tree, must still return exact nearest neighbors.
  Fixture fx = MakeFixture(250, 256, 8, 23);
  VpTreeIndex::Options options;
  options.energy_fraction = 0.9;
  options.method = repr::BoundMethod::kBestMinError;
  auto index = VpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  LinearScan scan(fx.source.get());
  for (const auto& query : fx.queries) {
    auto expected = scan.Search(query, 3);
    auto got = index->Search(query, 3, fx.source.get(), nullptr);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_NEAR((*got)[i].distance, (*expected)[i].distance, 1e-9);
    }
  }
}

TEST(LinearScanTest, ValidatesArguments) {
  Fixture fx = MakeFixture(8, 64, 1, 17);
  LinearScan scan(fx.source.get());
  EXPECT_FALSE(scan.Search(fx.queries[0], 0).ok());
  EXPECT_FALSE(scan.Search(std::vector<double>(3, 0.0), 1).ok());
}

TEST(LinearScanTest, ReturnsAscendingDistances) {
  Fixture fx = MakeFixture(64, 128, 3, 19);
  LinearScan scan(fx.source.get());
  for (const auto& query : fx.queries) {
    auto got = scan.Search(query, 10);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 10u);
    for (size_t i = 1; i < got->size(); ++i) {
      EXPECT_LE((*got)[i - 1].distance, (*got)[i].distance);
    }
  }
}

TEST(LinearScanTest, BruteForceAgreement) {
  Fixture fx = MakeFixture(50, 64, 4, 21);
  LinearScan scan(fx.source.get());
  for (const auto& query : fx.queries) {
    auto got = scan.Search(query, 1);
    ASSERT_TRUE(got.ok());
    // Brute force without early abandoning.
    double best = 1e300;
    ts::SeriesId best_id = 0;
    for (ts::SeriesId id = 0; id < fx.rows.size(); ++id) {
      const double d = *dsp::Euclidean(query, fx.rows[id]);
      if (d < best) {
        best = d;
        best_id = id;
      }
    }
    EXPECT_EQ((*got)[0].id, best_id);
    EXPECT_NEAR((*got)[0].distance, best, 1e-9);
  }
}

}  // namespace
}  // namespace s2::index
