#ifndef S2_QUERYLOG_SYNTHESIZER_H_
#define S2_QUERYLOG_SYNTHESIZER_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "querylog/components.h"
#include "timeseries/time_series.h"

namespace s2::qlog {

/// Deterministic intensity (expected demand) of `archetype` on calendar day
/// `day_index`, before count noise. Exposed so tests can verify planted
/// structure independently of sampling noise.
double IntensityOn(const QueryArchetype& archetype, int32_t day_index);

/// Synthesizes `n_days` of daily counts for `archetype` starting at
/// `start_day`, drawing sampling noise from `rng`.
///
/// Returns InvalidArgument for `n_days == 0`.
Result<ts::TimeSeries> Synthesize(const QueryArchetype& archetype,
                                  int32_t start_day, size_t n_days, Rng* rng);

}  // namespace s2::qlog

#endif  // S2_QUERYLOG_SYNTHESIZER_H_
