
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/burst/burst_detector.cc" "src/burst/CMakeFiles/s2_burst.dir/burst_detector.cc.o" "gcc" "src/burst/CMakeFiles/s2_burst.dir/burst_detector.cc.o.d"
  "/root/repo/src/burst/burst_similarity.cc" "src/burst/CMakeFiles/s2_burst.dir/burst_similarity.cc.o" "gcc" "src/burst/CMakeFiles/s2_burst.dir/burst_similarity.cc.o.d"
  "/root/repo/src/burst/burst_table.cc" "src/burst/CMakeFiles/s2_burst.dir/burst_table.cc.o" "gcc" "src/burst/CMakeFiles/s2_burst.dir/burst_table.cc.o.d"
  "/root/repo/src/burst/disk_burst_table.cc" "src/burst/CMakeFiles/s2_burst.dir/disk_burst_table.cc.o" "gcc" "src/burst/CMakeFiles/s2_burst.dir/disk_burst_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/s2_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s2_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/s2_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
