file(REMOVE_RECURSE
  "CMakeFiles/compressed_test.dir/compressed_test.cc.o"
  "CMakeFiles/compressed_test.dir/compressed_test.cc.o.d"
  "compressed_test"
  "compressed_test.pdb"
  "compressed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
