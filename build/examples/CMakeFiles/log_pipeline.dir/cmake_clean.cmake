file(REMOVE_RECURSE
  "CMakeFiles/log_pipeline.dir/log_pipeline.cpp.o"
  "CMakeFiles/log_pipeline.dir/log_pipeline.cpp.o.d"
  "log_pipeline"
  "log_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
