#ifndef S2_SHARD_SHARDED_ENGINE_H_
#define S2_SHARD_SHARDED_ENGINE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "approx/summary.h"
#include "common/result.h"
#include "core/s2_engine.h"
#include "exec/thread_pool.h"
#include "monitor/alert_queue.h"
#include "monitor/subscription.h"
#include "timeseries/time_series.h"

namespace s2::shard {

/// A corpus partitioned across N independent `core::S2Engine` shards with
/// scatter-gather query execution — the horizontal-scaling layer the
/// paper's production setting implies (50M+ distinct query strings do not
/// fit one index build on one core).
///
/// ## Partitioning
///
/// Series are assigned round-robin by global id (`shard = id % N`), so every
/// shard sees a statistically identical slice of the corpus and no shard
/// becomes a hot spot for range-correlated workloads. Global ids are dense
/// and stable; explicit bidirectional maps translate between global ids and
/// per-shard local ids (round-robin arithmetic would suffice at build time,
/// but `AddSeries` routes by load and would break it).
///
/// ## Scatter-gather with a shared pruning radius
///
/// Every similarity verb standardizes (or fetches) the query row ONCE, then
/// searches all shards concurrently on the internal `exec::ThreadPool`. The
/// searches share one `index::SharedRadius`: each shard publishes every
/// upper bound it certifies on its own k-th distance and prunes against the
/// tightest bound any shard has published (TSseek's shared-bound pattern).
/// This is exact: a published radius is always witnessed by k real objects,
/// so it upper-bounds the *global* k-th distance, and anything pruned
/// beyond it cannot be a global top-k member. The gather phase merges the
/// per-shard answers by `(distance, global id)` — because per-shard answers
/// carry exact distances for every candidate that can still reach the
/// global top-k, the merged prefix of length k IS the exact global answer,
/// identical to a single engine over the whole corpus.
///
/// Periods and per-series bursts route to the owning shard alone;
/// query-by-burst scatters over the per-shard burst tables and merges by
/// `(bsim desc, global id asc)`, the burst table's own tie order.
///
/// ## Reentrancy contract
///
/// Same shape as `core::S2Engine`: all `const` verbs are safe to call
/// concurrently from any number of threads (the scatter tasks only touch
/// `const` engine state plus the shared atomic radius); `AddSeries` is a
/// writer and must be externally serialized against all readers —
/// `service::S2Server` holds its shared_mutex in write mode around it.
class ShardedEngine {
 public:
  struct Options {
    /// Number of shards; 0 = `std::thread::hardware_concurrency()`. Always
    /// clamped to [1, corpus size].
    size_t num_shards = 0;
    /// Template for every per-shard engine. When `engine.disk_store_path`
    /// is non-empty, shard i stores its slice at
    /// `disk_store_path + ".shard" + i`.
    core::S2Engine::Options engine;
    /// Optional per-shard filesystem override (fault-injection tests: fault
    /// one shard, leave the rest healthy). Shard i uses `shard_envs[i]`
    /// when `i < shard_envs.size()`, else `engine.env`.
    std::vector<io::Env*> shard_envs;
    /// Worker threads for shard builds and query fan-out; 0 = one per
    /// shard. The pool is owned by the engine and lives as long as it does.
    size_t threads = 0;
  };

  /// Per-query fan-out instrumentation (the server exports these).
  struct QueryStats {
    /// Shards the query was sent to (1 for owner-routed verbs).
    size_t fanout = 0;
    /// Prune/skip decisions across all shards that only succeeded because
    /// another shard's published radius was tighter than local state.
    size_t shared_radius_prunes = 0;
    /// Wall time of each shard's local search, index-aligned with shards.
    std::vector<std::chrono::microseconds> shard_latencies;
  };

  /// Partitions `corpus` round-robin and builds all shard engines in
  /// parallel on the internal pool. Fails if any shard build fails.
  static Result<ShardedEngine> Build(ts::Corpus corpus, const Options& options);

  ShardedEngine(ShardedEngine&&) noexcept = default;
  ShardedEngine& operator=(ShardedEngine&&) noexcept = default;

  // --- Catalog -------------------------------------------------------------

  /// Resolves a name to its *global* id. Duplicate names resolve to the
  /// smallest global id, matching the single-engine first-wins catalog.
  Result<ts::SeriesId> FindByName(std::string_view name) const;

  /// Ingests one more series into the least-loaded shard (smallest corpus,
  /// ties to the lowest shard index — which reproduces round-robin when
  /// starting from a round-robin layout). RAM-resident engines only.
  /// Returns the new *global* id. Writer: serialize externally.
  Result<ts::SeriesId> AddSeries(ts::TimeSeries series);

  /// Total number of series across all shards.
  size_t size() const { return placements_.size(); }

  // --- Streaming (owner-routed, per-shard deltas) --------------------------

  /// Appends one point to the series' owning shard: the window slides on
  /// that shard alone, the series moves into that shard's delta tier, and
  /// every other shard is untouched. Because all similarity verbs already
  /// scatter over every shard and each shard searches its own delta
  /// alongside its main tree, shard-count invisibility is preserved with no
  /// extra plumbing. Writer: serialize externally (same contract as
  /// `AddSeries`).
  Status AppendPoint(ts::SeriesId id, double value);

  /// Merges every shard's delta tier into its main index. Writer.
  Status Compact();

  /// Summed delta-tier sizes / append counts / compaction counts across
  /// shards (the server exports these as stream metrics).
  size_t TotalDeltaSize() const;
  uint64_t TotalAppendCount() const;
  uint64_t TotalCompactionCount() const;

  /// The raw series for a global id (owner shard's corpus row).
  Result<const ts::TimeSeries*> Series(ts::SeriesId id) const;

  // --- Standing queries (owner-routed; see src/monitor) --------------------

  /// Registers `sub` (whose `series` is a *global* id) with the owning
  /// shard under its local id. Fired alerts keep the global id, and all
  /// shards push into one shared delivery queue in the externally
  /// serialized append order — so the alert stream, including its sequence
  /// numbers, is identical to a single engine's over the same appends
  /// (shard-count invisibility, the §7 bar). Writer: serialize externally.
  Status Subscribe(monitor::Subscription sub);

  /// Registers `sub` with its hysteresis state installed verbatim —
  /// checkpoint recovery routing the snapshot's subscriptions back to
  /// their owner shards. Writer.
  Status RestoreSubscription(monitor::Subscription sub, bool engaged,
                             uint32_t bin);

  /// Removes a subscription wherever it lives. Writer.
  Status Unsubscribe(monitor::SubscriptionId id);

  /// Attaches one delivery queue to every shard (not owned; nullptr
  /// detaches). The serving layer owns the queue in both topologies.
  void set_alert_queue(monitor::AlertQueue* queue);

  /// Active subscriptions across all shards.
  size_t ActiveSubscriptionCount() const;

  /// Every shard's subscriptions merged and ordered by subscription id.
  std::vector<monitor::SubscriptionRegistry::Entry> ListSubscriptions() const;

  // --- Similarity (global ids, exact, shard-count invisible) ---------------

  Result<std::vector<index::Neighbor>> SimilarTo(ts::SeriesId id, size_t k,
                                                 QueryStats* stats = nullptr) const;
  Result<std::vector<index::Neighbor>> SimilarToSeries(
      const std::vector<double>& raw_values, size_t k,
      QueryStats* stats = nullptr) const;
  Result<std::vector<index::Neighbor>> SimilarToDtw(
      ts::SeriesId id, size_t k, QueryStats* stats = nullptr) const;

  /// Degraded-path scans (exact, no index, no disk I/O), scatter-gathered
  /// over the shards' RAM rows.
  Result<std::vector<index::Neighbor>> SimilarToExact(ts::SeriesId id,
                                                      size_t k) const;
  Result<std::vector<index::Neighbor>> SimilarToSeriesExact(
      const std::vector<double>& raw_values, size_t k) const;
  Result<std::vector<index::Neighbor>> SimilarToDtwExact(ts::SeriesId id,
                                                         size_t k) const;

  // --- Approximate search (DESIGN.md §13) ----------------------------------

  /// Approximate k-NN with a per-query quality bound, bit-identical to a
  /// single engine over the same corpus at any shard count. Two-phase
  /// scatter: (1) the owner projects the query ONCE under the global config
  /// (trained on the full corpus before partitioning — see Build) and every
  /// shard ranks its own top-C candidates; the gather merges by (lb_sq,
  /// global id) and truncates to the global top-C, which equals the
  /// single-engine candidate set because any global top-C member is also in
  /// its own shard's top-C. (2) Candidates are verified on the shards that
  /// own their rows, under one shared radius; the gather merges by
  /// (distance, global id). The worst merged lower bound is the same
  /// threshold a single engine would certify, so the quality bound is also
  /// topology-invariant.
  Result<core::S2Engine::ApproxAnswer> ApproxKnn(
      ts::SeriesId id, const approx::QueryParams& params,
      QueryStats* stats = nullptr,
      approx::ScanStats* scan_stats = nullptr) const;

  // --- Periods & bursts ----------------------------------------------------

  Result<std::vector<period::PeriodHit>> FindPeriods(ts::SeriesId id) const;
  Result<std::vector<burst::BurstRegion>> BurstsOf(ts::SeriesId id,
                                                   core::BurstHorizon horizon) const;
  Result<std::vector<burst::BurstMatch>> QueryByBurst(
      ts::SeriesId id, size_t k, core::BurstHorizon horizon,
      QueryStats* stats = nullptr) const;
  Result<std::vector<burst::BurstMatch>> QueryByBurstSeries(
      const ts::TimeSeries& series, size_t k, core::BurstHorizon horizon,
      QueryStats* stats = nullptr) const;

  // --- Introspection -------------------------------------------------------

  size_t num_shards() const { return shards_.size(); }
  const core::S2Engine& shard(size_t i) const { return *shards_[i]; }

  /// Which shard owns a global id, and under which local id.
  struct Placement {
    uint32_t shard = 0;
    ts::SeriesId local = ts::kInvalidSeriesId;
  };
  Result<Placement> PlacementOf(ts::SeriesId id) const;

  /// Global id of shard-local series (used when gathering shard answers).
  ts::SeriesId GlobalId(size_t shard, ts::SeriesId local) const {
    return local_to_global_[shard][local];
  }

  /// Summed disk-retry counters across shards (0 for RAM-resident).
  uint64_t TotalRetryCount() const;
  uint64_t TotalGiveupCount() const;

  /// Every shard's own invariants, plus the placement maps: a bijection
  /// between global ids and (shard, local) pairs covering every shard
  /// corpus exactly.
  Status ValidateInvariants() const;

 private:
  ShardedEngine() = default;

  /// Runs `fn(shard_index)` for every shard — shard 0 inline on the calling
  /// thread, the rest on the pool (inline fallback when the pool rejects) —
  /// and waits for all. `fn` must be thread-safe and record its own result;
  /// per-shard wall time lands in `stats->shard_latencies`.
  void ScatterGather(const std::function<void(size_t)>& fn,
                     QueryStats* stats) const;

  std::vector<std::unique_ptr<core::S2Engine>> shards_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::vector<Placement> placements_;                    // global -> (shard, local)
  std::vector<std::vector<ts::SeriesId>> local_to_global_;
  // Which shard holds each live subscription (Unsubscribe routing).
  std::unordered_map<monitor::SubscriptionId, uint32_t> sub_shard_;
};

}  // namespace s2::shard

#endif  // S2_SHARD_SHARDED_ENGINE_H_
