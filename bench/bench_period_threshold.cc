// Reproduces paper Figure 12 (the PSD histogram of non-periodic sequences
// follows an exponential distribution) and Figure 13 (detected periods with
// the exponential-tail power threshold, p = 1e-4, for "cinema",
// "full moon", "nordstrom" and "dudley moore").

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dsp/periodogram.h"
#include "dsp/stats.h"
#include "period/period_detector.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"
#include "timeseries/calendar.h"

namespace s2 {
namespace {

// Figure 12: histogram of periodogram values for an aperiodic sequence,
// with the exponential fit (lambda = 1/mean) printed alongside.
void ShowPsdHistogram(const char* label, const std::vector<double>& x) {
  auto psd = dsp::PeriodogramOf(dsp::Standardize(x));
  if (!psd.ok()) return;
  std::vector<double> values(psd->begin() + 1, psd->end());
  const double mean = dsp::Mean(values);
  const double max_value = *std::max_element(values.begin(), values.end());

  constexpr int kBins = 12;
  std::vector<int> histogram(kBins, 0);
  for (double v : values) {
    int bin = static_cast<int>(v / max_value * kBins);
    histogram[std::min(bin, kBins - 1)] += 1;
  }
  std::printf("\n%s  (mean periodogram value mu = %.4f)\n", label, mean);
  std::printf("  %-22s %-30s %10s %10s\n", "power range", "count", "observed",
              "exp fit");
  for (int b = 0; b < kBins; ++b) {
    const double lo = max_value * b / kBins;
    const double hi = max_value * (b + 1) / kBins;
    const double expected =
        static_cast<double>(values.size()) *
        (std::exp(-lo / mean) - std::exp(-hi / mean));
    std::string bar(static_cast<size_t>(std::min(30.0, histogram[b] / 4.0)), '#');
    std::printf("  [%8.4f, %8.4f) %-30s %10d %10.1f\n", lo, hi, bar.c_str(),
                histogram[b], expected);
  }
}

void ShowDetectedPeriods(const char* label, const std::vector<double>& x) {
  period::PeriodDetector detector;
  auto psd = dsp::PeriodogramOf(dsp::Standardize(x));
  auto hits = detector.Detect(x);
  if (!psd.ok() || !hits.ok()) return;
  const double threshold = detector.Threshold(*psd);
  std::printf("\nQuery *%s*   threshold T_p = %.4f (p = %g)\n", label, threshold,
              detector.options().false_alarm_probability);
  std::printf("  periodogram  %s\n",
              bench::Sparkline({psd->begin() + 1, psd->end()}, 80).c_str());
  if (hits->empty()) {
    std::printf("  no significant periods (correct for aperiodic queries)\n");
    return;
  }
  int rank = 1;
  for (const auto& hit : *hits) {
    if (rank > 3) break;
    std::printf("  P%d = %.2f days   (power %.4f, frequency %.4f)\n", rank,
                hit.period, hit.power, hit.frequency);
    ++rank;
  }
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  Rng rng(13);

  bench::PrintHeader(
      "Figure 12: periodogram histograms of non-periodic sequences vs the "
      "exponential model");
  {
    // Three aperiodic signal classes, as in the paper's figure.
    std::vector<double> white(1024);
    for (double& v : white) v = rng.Normal(0, 1);
    ShowPsdHistogram("Sequence 1: white noise", white);

    auto aperiodic = qlog::Synthesize(qlog::MakeRandomAperiodic("s2", &rng), 0,
                                      1024, &rng);
    if (aperiodic.ok()) {
      ShowPsdHistogram("Sequence 2: aperiodic query demand", aperiodic->values);
    }

    auto event = qlog::Synthesize(
        qlog::MakeDudleyMoore(ts::DateToDayIndex({2002, 3, 27})), 0, 1024, &rng);
    if (event.ok()) {
      ShowPsdHistogram("Sequence 3: news-event query demand", event->values);
    }
  }

  bench::PrintHeader(
      "Figure 13: automatically discovered periods (99.99% confidence)");
  {
    // One calendar year of data (2002), as in the paper's figure.
    Rng synth(14);
    const int32_t start = ts::DateToDayIndex({2002, 1, 1});
    auto cinema = qlog::Synthesize(qlog::MakeCinema(), start, 365, &synth);
    if (cinema.ok()) ShowDetectedPeriods("cinema", cinema->values);
    auto moon = qlog::Synthesize(qlog::MakeFullMoon(), start, 365, &synth);
    if (moon.ok()) ShowDetectedPeriods("full moon", moon->values);
    auto nordstrom = qlog::Synthesize(qlog::MakeNordstrom(), start, 365, &synth);
    if (nordstrom.ok()) ShowDetectedPeriods("nordstrom", nordstrom->values);
    auto dudley = qlog::Synthesize(
        qlog::MakeDudleyMoore(ts::DateToDayIndex({2002, 3, 27})), start, 365,
        &synth);
    if (dudley.ok()) ShowDetectedPeriods("dudley moore", dudley->values);
  }

  std::printf(
      "\nExpected shape (paper): cinema & nordstrom show P1=7 and the 3.5 "
      "harmonic; full moon shows ~29.5-30.3; dudley moore shows no (short) "
      "period despite its burst.\n");
  return 0;
}
