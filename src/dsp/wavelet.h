#ifndef S2_DSP_WAVELET_H_
#define S2_DSP_WAVELET_H_

#include <vector>

#include "common/result.h"

namespace s2::dsp {

/// Orthonormal Haar discrete wavelet transform.
///
/// The paper notes its bounding algorithms "can be adapted to any class of
/// orthogonal decompositions (such as wavelets, PCA, etc.) with minimal or
/// no adjustments"; this transform is the wavelet instantiation used by the
/// repr module's `Basis::kOrthonormalReal` path.
///
/// The full multi-level decomposition of a power-of-two-length input is
/// returned in the standard layout
///   `[approximation, detail_L, detail_{L-1}, ..., detail_1]`
/// (coarsest first), with the 1/sqrt(2) normalization that makes the
/// transform orthonormal: energies and Euclidean distances are preserved
/// exactly, so the compressed-representation distance bounds remain valid
/// verbatim.
///
/// Returns InvalidArgument unless `x.size()` is a power of two (>= 1).
Result<std::vector<double>> HaarForward(const std::vector<double>& x);

/// Inverse of `HaarForward`.
Result<std::vector<double>> HaarInverse(const std::vector<double>& coeffs);

}  // namespace s2::dsp

#endif  // S2_DSP_WAVELET_H_
