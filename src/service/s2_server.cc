#include "service/s2_server.h"

#include <mutex>
#include <utility>

#include "diag/check.h"

namespace s2::service {

namespace {

CacheKey KeyFor(const QueryRequest& request) {
  CacheKey key;
  key.kind = request.kind;
  key.id = request.id;
  key.k = request.k;
  key.horizon = (request.kind == RequestKind::kBurstsOf ||
                 request.kind == RequestKind::kQueryByBurst)
                    ? static_cast<int>(request.horizon)
                    : 0;
  return key;
}

/// Copies a Result's payload into the response or records its error.
template <typename T>
void Fill(Result<T> result, T* payload, QueryResponse* response) {
  if (result.ok()) {
    *payload = std::move(result).value();
  } else {
    response->status = result.status();
  }
}

/// Failures of the serving substrate (disk, retries exhausted, corrupted
/// bytes) — the conditions the degradation ladder exists for. Caller errors
/// (NotFound, InvalidArgument, OutOfRange...) pass through untouched:
/// degrading those would mask real bugs in the request.
bool IsInfrastructureFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kIoTransient:
    case StatusCode::kUnavailable:
    case StatusCode::kCorruption:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::unique_ptr<S2Server> S2Server::Create(core::S2Engine engine,
                                           const Options& options) {
  return std::unique_ptr<S2Server>(new S2Server(std::move(engine), options));
}

S2Server::S2Server(core::S2Engine engine, const Options& options)
    : engine_(std::move(engine)),
      options_(options),
      cache_(options.cache_capacity, &metrics_),
      breaker_(options.breaker),
      engine_calls_(metrics_.counter("server_engine_calls")),
      degraded_(metrics_.counter("server_degraded")),
      shed_(metrics_.counter("server_shed")),
      retry_attempts_(metrics_.counter("server_retry_attempts")),
      retry_giveups_(metrics_.counter("server_retry_giveups")),
      breaker_trips_(metrics_.counter("server_breaker_trips")) {
  // The scheduler is built last: its workers may call Execute (via the
  // handler) as soon as requests arrive, so everything above must be live.
  scheduler_ = std::make_unique<Scheduler>(
      options.scheduler,
      [this](const QueryRequest& request) { return Execute(request); },
      &metrics_);
}

QueryResponse S2Server::Execute(const QueryRequest& request) {
  QueryResponse response;
  const CacheKey key = KeyFor(request);
  if (std::optional<QueryResponse> hit = cache_.Lookup(key)) {
    return *std::move(hit);
  }

  // Ladder step 3: while the breaker is open, shed fast instead of queueing
  // more work onto a known-bad primary path. Cache hits (above) still serve.
  if (!breaker_.AllowRequest()) {
    shed_->Increment();
    response.status =
        Status::Unavailable("S2Server: circuit open, request shed");
    return response;
  }

  {
    std::shared_lock<std::shared_mutex> lock(engine_mu_);
    engine_calls_->Increment();
    switch (request.kind) {
      case RequestKind::kSimilarTo:
        Fill(engine_.SimilarTo(request.id, request.k), &response.neighbors,
             &response);
        break;
      case RequestKind::kSimilarToDtw:
        Fill(engine_.SimilarToDtw(request.id, request.k), &response.neighbors,
             &response);
        break;
      case RequestKind::kPeriodsOf:
        Fill(engine_.FindPeriods(request.id), &response.periods, &response);
        break;
      case RequestKind::kBurstsOf:
        Fill(engine_.BurstsOf(request.id, request.horizon), &response.bursts,
             &response);
        break;
      case RequestKind::kQueryByBurst:
        Fill(engine_.QueryByBurst(request.id, request.k, request.horizon),
             &response.burst_matches, &response);
        break;
    }
    if (response.status.ok()) {
      breaker_.RecordSuccess();
      // Insert before releasing the shared lock: inserting after release
      // could race an AddSeries invalidation and re-publish a stale answer.
      cache_.Insert(key, response);
    } else if (IsInfrastructureFailure(response.status)) {
      breaker_.RecordFailure();
      if (options_.degrade_on_failure) {
        // Ladder step 2, still under the shared lock (the fallback reads the
        // engine's RAM rows). Degraded answers are exact but bypass the
        // index, so they are deliberately not cached: the next request
        // probes the primary path again.
        response = Degrade(request, std::move(response));
      }
    } else {
      // Caller errors (NotFound, InvalidArgument...) say nothing bad about
      // the serving substrate, but the breaker must still hear the outcome:
      // if this request was the half-open probe, staying silent would leak
      // the probe slot and shed all future traffic forever.
      breaker_.RecordNonFailure();
    }
  }

  SyncResilienceMetrics();
  return response;
}

QueryResponse S2Server::Degrade(const QueryRequest& request,
                                QueryResponse primary) {
  QueryResponse fallback;
  switch (request.kind) {
    case RequestKind::kSimilarTo:
      Fill(engine_.SimilarToExact(request.id, request.k), &fallback.neighbors,
           &fallback);
      break;
    case RequestKind::kSimilarToDtw:
      Fill(engine_.SimilarToDtwExact(request.id, request.k),
           &fallback.neighbors, &fallback);
      break;
    default:
      // Periods and bursts already run purely on RAM structures; an
      // infrastructure failure there has no cheaper path to fall back to.
      return primary;
  }
  if (!fallback.status.ok()) return primary;
  fallback.degraded = true;
  degraded_->Increment();
  return fallback;
}

void S2Server::SyncResilienceMetrics() {
  std::lock_guard<std::mutex> lock(export_mu_);
  if (const resilience::RetryingSequenceSource* rs = engine_.retry_source()) {
    const uint64_t retries = rs->retry_count();
    const uint64_t giveups = rs->giveup_count();
    retry_attempts_->Increment(retries - exported_retries_);
    retry_giveups_->Increment(giveups - exported_giveups_);
    exported_retries_ = retries;
    exported_giveups_ = giveups;
  }
  const uint64_t trips = breaker_.trip_count();
  breaker_trips_->Increment(trips - exported_trips_);
  exported_trips_ = trips;
}

Result<ts::SeriesId> S2Server::AddSeries(ts::TimeSeries series) {
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  S2_ASSIGN_OR_RETURN(ts::SeriesId id, engine_.AddSeries(std::move(series)));
  // Checked builds re-validate the whole engine while no reader can observe
  // it (we still hold the writer lock).
  S2_DCHECK_OK(engine_.ValidateInvariants());
  // Invalidate while still holding the writer lock: a reader admitted after
  // us must not see a stale answer re-inserted for the old corpus.
  cache_.Invalidate();
  return id;
}

}  // namespace s2::service
