// Section 8 future work, realized: exact k-NN under dynamic time warping
// with a pruning cascade built from (a) the compressed representations'
// linear-cost Euclidean upper bounds (valid for DTW since DTW <= ED) and
// (b) LB_Keogh envelope lower bounds with early abandoning. This bench
// quantifies how many O(n*w) DTW dynamic programs each stage saves.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dsp/stats.h"
#include "dtw/dtw_search.h"
#include "querylog/corpus_generator.h"
#include "storage/sequence_store.h"

namespace s2 {
namespace {

struct Row {
  const char* label;
  bool use_ub;
  bool use_lb;
};

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t db = bench::ArgSize(argc, argv, "--db", 2048);
  const size_t n_days = bench::ArgSize(argc, argv, "--days", 512);
  const size_t n_queries = bench::ArgSize(argc, argv, "--queries", 20);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_dtw.json");
  bench::Json json_rows = bench::Json::Array();

  bench::PrintHeader(
      "Section 8 extension: exact DTW 1-NN with compressed-UB + LB_Keogh "
      "cascade (db = " + std::to_string(db) + ")");

  qlog::CorpusSpec spec;
  spec.num_series = db;
  spec.n_days = n_days;
  spec.seed = 81;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return 1;
  const auto rows = bench::StandardizedRows(*corpus);
  auto held_out = qlog::GenerateQueries(spec, n_queries);
  if (!held_out.ok()) return 1;
  std::vector<std::vector<double>> queries;
  for (const auto& q : *held_out) queries.push_back(dsp::Standardize(q.values));
  auto source = storage::InMemorySequenceSource::Create(rows);
  if (!source.ok()) return 1;

  const Row configs[] = {
      {"no pruning (plain scan of DTW)", false, false},
      {"LB_Keogh only", false, true},
      {"compressed UB seed only", true, false},
      {"full cascade (UB seed + LB_Keogh)", true, true},
  };

  for (size_t window : {8u, 32u}) {
    std::printf("\nSakoe-Chiba window w = %zu\n", window);
    std::printf("  %-36s %10s %10s %10s %8s\n", "configuration", "DTW/q",
                "LBK/q", "skip%", "time(s)");
    for (const Row& config : configs) {
      dtw::DtwKnnSearch::Options options;
      options.window = window;
      options.budget_c = 16;
      options.use_compressed_upper_bounds = config.use_ub;
      options.use_lb_keogh = config.use_lb;
      auto search = dtw::DtwKnnSearch::BuildFeatures(rows, options);
      if (!search.ok()) return 1;

      dtw::DtwKnnSearch::SearchStats totals;
      bench::Timer timer;
      for (const auto& query : queries) {
        dtw::DtwKnnSearch::SearchStats stats;
        auto got = search->Search(query, 1, source->get(), &stats);
        if (!got.ok()) return 1;
        totals.dtw_computed += stats.dtw_computed;
        totals.lb_keogh_computed += stats.lb_keogh_computed;
        totals.lb_keogh_skips += stats.lb_keogh_skips;
      }
      const double q = static_cast<double>(n_queries);
      std::printf("  %-36s %10.1f %10.1f %9.1f%% %8.2f\n", config.label,
                  static_cast<double>(totals.dtw_computed) / q,
                  static_cast<double>(totals.lb_keogh_computed) / q,
                  100.0 * static_cast<double>(db - totals.dtw_computed / n_queries) /
                      static_cast<double>(db),
                  timer.Seconds());
      json_rows.Push(bench::Json::Object()
                         .Add("window", static_cast<uint64_t>(window))
                         .Add("config", config.label)
                         .Add("dtw_per_query",
                              static_cast<double>(totals.dtw_computed) / q)
                         .Add("lb_keogh_per_query",
                              static_cast<double>(totals.lb_keogh_computed) / q)
                         .Add("seconds", timer.Seconds()));
    }
  }

  std::printf(
      "\nReading: the compressed upper bounds seed the pruning radius before "
      "any DTW runs, letting LB_Keogh discard most candidates; the full "
      "cascade computes the DP for only a small fraction of the database "
      "while returning exactly the same neighbors (verified by tests).\n");
  bench::WriteJsonFile(json_path,
                       bench::Json::Object()
                           .Add("bench", "bench_dtw")
                           .Add("db", static_cast<uint64_t>(db))
                           .Add("queries", static_cast<uint64_t>(n_queries))
                           .Add("rows", std::move(json_rows)));
  return 0;
}
