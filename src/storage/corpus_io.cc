#include "storage/corpus_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace s2::storage {

namespace {

constexpr char kMagic[8] = {'S', '2', 'C', 'O', 'R', 'P', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

}  // namespace

Status WriteCorpus(const std::string& path, const ts::Corpus& corpus) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return Status::IoError("WriteCorpus: cannot create " + path);
  std::FILE* f = file.get();

  if (std::fwrite(kMagic, 1, sizeof(kMagic), f) != sizeof(kMagic) ||
      !WriteScalar<uint64_t>(f, corpus.size())) {
    return Status::IoError("WriteCorpus: short write");
  }
  for (const ts::TimeSeries& series : corpus.series()) {
    const uint32_t name_length = static_cast<uint32_t>(series.name.size());
    const uint64_t value_count = series.values.size();
    const bool ok =
        WriteScalar(f, name_length) &&
        std::fwrite(series.name.data(), 1, name_length, f) == name_length &&
        WriteScalar(f, series.start_day) && WriteScalar(f, value_count) &&
        std::fwrite(series.values.data(), sizeof(double), series.values.size(), f) ==
            series.values.size();
    if (!ok) return Status::IoError("WriteCorpus: short write");
  }
  return Status::OK();
}

Result<ts::Corpus> ReadCorpus(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return Status::IoError("ReadCorpus: cannot open " + path);
  std::FILE* f = file.get();

  // Every declared length below is bounded by the bytes actually remaining
  // in the file, so a corrupt header can never trigger a huge allocation —
  // it fails as Corruption before the resize.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("ReadCorpus: seek failed on " + path);
  }
  const long file_size = std::ftell(f);
  if (file_size < 0 || std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IoError("ReadCorpus: cannot determine size of " + path);
  }

  char magic[sizeof(kMagic)];
  uint64_t count = 0;
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      !ReadScalar(f, &count)) {
    return Status::Corruption("ReadCorpus: truncated header in " + path);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("ReadCorpus: bad magic in " + path);
  }
  uint64_t remaining = static_cast<uint64_t>(file_size) - sizeof(kMagic) -
                       sizeof(uint64_t);
  // Each series costs at least its fixed-size header fields.
  constexpr uint64_t kMinSeriesBytes =
      sizeof(uint32_t) + sizeof(int32_t) + sizeof(uint64_t);
  if (count > remaining / kMinSeriesBytes) {
    return Status::Corruption("ReadCorpus: series count " +
                              std::to_string(count) +
                              " exceeds the file size in " + path);
  }
  ts::Corpus corpus;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_length = 0;
    if (!ReadScalar(f, &name_length)) {
      return Status::Corruption("ReadCorpus: truncated series header in " + path);
    }
    remaining -= sizeof(uint32_t);
    if (name_length > remaining) {
      return Status::Corruption("ReadCorpus: name length " +
                                std::to_string(name_length) +
                                " exceeds the remaining file in " + path);
    }
    ts::TimeSeries series;
    series.name.resize(name_length);
    uint64_t value_count = 0;
    if (std::fread(series.name.data(), 1, name_length, f) != name_length ||
        !ReadScalar(f, &series.start_day) || !ReadScalar(f, &value_count)) {
      return Status::Corruption("ReadCorpus: truncated series header in " + path);
    }
    remaining -= name_length + sizeof(series.start_day) + sizeof(value_count);
    if (value_count > remaining / sizeof(double)) {
      return Status::Corruption("ReadCorpus: value count " +
                                std::to_string(value_count) +
                                " exceeds the remaining file in " + path);
    }
    series.values.resize(value_count);
    if (std::fread(series.values.data(), sizeof(double), value_count, f) !=
        value_count) {
      return Status::Corruption("ReadCorpus: truncated values in " + path);
    }
    remaining -= value_count * sizeof(double);
    corpus.Add(std::move(series));
  }
  return corpus;
}

}  // namespace s2::storage
