#include "stream/wal.h"

#include <cstring>
#include <utility>
#include <vector>

#include "io/durable.h"

namespace s2::stream {

namespace {

constexpr char kWalMagic[8] = {'S', '2', 'W', 'A', 'L', 'F', '0', '1'};
// Rotated-segment header magic — distinct from the record-stream magic so a
// segment file can never be mistaken for a legacy base file.
constexpr char kSegMagic[8] = {'S', '2', 'W', 'A', 'L', 'S', '0', '1'};
constexpr size_t kPayloadBytes = sizeof(uint32_t) + sizeof(double);
constexpr size_t kRecordBytes = kPayloadBytes + sizeof(uint64_t);
static_assert(kRecordBytes == Wal::kRecordBytes,
              "public record-size constant out of sync with the codec");

void EncodeRecord(const WalRecord& record, uint64_t chain, char* out) {
  const uint32_t id = record.series_id;
  std::memcpy(out, &id, sizeof(id));
  std::memcpy(out + sizeof(id), &record.value, sizeof(record.value));
  const uint64_t sum = io::durable::Fnv1a64(out, kPayloadBytes, chain);
  std::memcpy(out + kPayloadBytes, &sum, sizeof(sum));
}

// Decodes one record, verifying the chained checksum. Returns false on a
// mismatch (torn or stale bytes).
bool DecodeRecord(const char* in, uint64_t chain, WalRecord* record,
                  uint64_t* next_chain) {
  uint64_t stored = 0;
  std::memcpy(&stored, in + kPayloadBytes, sizeof(stored));
  const uint64_t expected = io::durable::Fnv1a64(in, kPayloadBytes, chain);
  if (stored != expected) return false;
  uint32_t id = 0;
  std::memcpy(&id, in, sizeof(id));
  record->series_id = id;
  std::memcpy(&record->value, in + sizeof(id), sizeof(record->value));
  *next_chain = stored;
  return true;
}

}  // namespace

Wal::Wal(io::Env* env, std::string path, Options options,
         io::walseg::OpenResult state)
    : env_(env),
      path_(std::move(path)),
      file_(std::move(state.tail_file)),
      options_(options),
      tail_(state.tail_offset),
      chain_(state.chain),
      record_count_(static_cast<size_t>(state.record_count)),
      seq_(state.tail_seq),
      segments_(std::move(state.segments)) {}

Wal::~Wal() {
  if (unsynced_ > 0 && file_ != nullptr) (void)file_->Sync();
}

Result<std::unique_ptr<Wal>> Wal::Open(
    io::Env* env, const std::string& path,
    const std::function<Status(const WalRecord&)>& apply, ReplayInfo* info,
    const Options& options) {
  if (env == nullptr) env = io::Env::Default();
  if (options.sync_every == 0) {
    return Status::InvalidArgument("Wal: sync_every must be > 0");
  }

  const io::walseg::RecordScanner scan =
      [&apply](const char* data, size_t avail, uint64_t chain, bool deliver,
               size_t* consumed, uint64_t* next_chain) -> Status {
    *consumed = 0;
    if (avail < kRecordBytes) return Status::OK();
    WalRecord record;
    if (!DecodeRecord(data, chain, &record, next_chain)) return Status::OK();
    if (deliver) S2_RETURN_NOT_OK(apply(record));
    *consumed = kRecordBytes;
    return Status::OK();
  };

  S2_ASSIGN_OR_RETURN(io::walseg::OpenResult state,
                      io::walseg::OpenLog(env, path, kWalMagic, kSegMagic,
                                          options.replay_from, scan));
  if (info != nullptr) {
    info->records = static_cast<size_t>(state.applied);
    info->dropped_bytes = state.dropped_bytes;
  }
  return std::unique_ptr<Wal>(
      new Wal(env, path, options, std::move(state)));
}

Status Wal::MaybeRotate() {
  if (options_.rotate_bytes == 0) return Status::OK();
  const size_t header =
      seq_ == 0 ? io::walseg::kMagicBytes : io::walseg::kSegmentHeaderBytes;
  if (tail_ - header < options_.rotate_bytes) return Status::OK();
  // Seal: the outgoing segment must be fully durable before the new
  // header claims `record_count_` records precede it.
  S2_RETURN_NOT_OK(Sync());
  io::walseg::SegmentHeader next;
  next.seq = seq_ + 1;
  next.base_records = record_count_;
  next.chain_seed = chain_;
  S2_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                      io::walseg::CreateSegment(env_, path_, kSegMagic, next));
  // Only now does the in-memory boundary move; a failure above leaves the
  // log appending to the old segment and the retry rewrites the identical
  // header at the same path.
  file_ = std::move(file);
  seq_ = next.seq;
  tail_ = io::walseg::kSegmentHeaderBytes;
  segments_.push_back(io::walseg::SegmentInfo{
      io::walseg::SegmentPath(path_, next.seq), next.seq, next.base_records});
  return Status::OK();
}

Status Wal::Append(const WalRecord& record) {
  S2_RETURN_NOT_OK(MaybeRotate());
  char buf[kRecordBytes];
  EncodeRecord(record, chain_, buf);
  S2_RETURN_NOT_OK(io::WriteExactAt(file_.get(), buf, sizeof(buf), tail_));
  if (unsynced_ + 1 >= options_.sync_every) {
    // Sync before advancing: on failure the log state is unchanged and a
    // retried append overwrites the same offset with the same chain.
    S2_RETURN_NOT_OK(file_->Sync());
    unsynced_ = 0;
  } else {
    ++unsynced_;
  }
  tail_ += sizeof(buf);
  std::memcpy(&chain_, buf + kPayloadBytes, sizeof(chain_));
  ++record_count_;
  return Status::OK();
}

Status Wal::Sync() {
  if (unsynced_ == 0) return Status::OK();
  S2_RETURN_NOT_OK(file_->Sync());
  unsynced_ = 0;
  return Status::OK();
}

Result<size_t> Wal::RemoveObsoleteSegments(uint64_t keep_from) {
  return io::walseg::RemoveSegmentsBelow(env_, &segments_, keep_from);
}

Result<std::vector<io::walseg::SegmentInfo>> Wal::ListSegments(
    io::Env* env, const std::string& path) {
  if (env == nullptr) env = io::Env::Default();
  return io::walseg::ListSegments(env, path, kWalMagic, kSegMagic);
}

}  // namespace s2::stream
