#include "storage/corpus_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace s2::storage {

namespace {

constexpr char kMagic[8] = {'S', '2', 'C', 'O', 'R', 'P', '0', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteScalar(std::FILE* f, T value) {
  return std::fwrite(&value, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* value) {
  return std::fread(value, sizeof(T), 1, f) == 1;
}

}  // namespace

Status WriteCorpus(const std::string& path, const ts::Corpus& corpus) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return Status::IoError("WriteCorpus: cannot create " + path);
  std::FILE* f = file.get();

  if (std::fwrite(kMagic, 1, sizeof(kMagic), f) != sizeof(kMagic) ||
      !WriteScalar<uint64_t>(f, corpus.size())) {
    return Status::IoError("WriteCorpus: short write");
  }
  for (const ts::TimeSeries& series : corpus.series()) {
    const uint32_t name_length = static_cast<uint32_t>(series.name.size());
    const uint64_t value_count = series.values.size();
    const bool ok =
        WriteScalar(f, name_length) &&
        std::fwrite(series.name.data(), 1, name_length, f) == name_length &&
        WriteScalar(f, series.start_day) && WriteScalar(f, value_count) &&
        std::fwrite(series.values.data(), sizeof(double), series.values.size(), f) ==
            series.values.size();
    if (!ok) return Status::IoError("WriteCorpus: short write");
  }
  return Status::OK();
}

Result<ts::Corpus> ReadCorpus(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return Status::IoError("ReadCorpus: cannot open " + path);
  std::FILE* f = file.get();

  char magic[sizeof(kMagic)];
  uint64_t count = 0;
  if (std::fread(magic, 1, sizeof(magic), f) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 || !ReadScalar(f, &count)) {
    return Status::IoError("ReadCorpus: bad header in " + path);
  }
  ts::Corpus corpus;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t name_length = 0;
    if (!ReadScalar(f, &name_length) || name_length > (1u << 20)) {
      return Status::IoError("ReadCorpus: corrupt series header");
    }
    ts::TimeSeries series;
    series.name.resize(name_length);
    uint64_t value_count = 0;
    if (std::fread(series.name.data(), 1, name_length, f) != name_length ||
        !ReadScalar(f, &series.start_day) || !ReadScalar(f, &value_count) ||
        value_count > (1ull << 32)) {
      return Status::IoError("ReadCorpus: corrupt series header");
    }
    series.values.resize(value_count);
    if (std::fread(series.values.data(), sizeof(double), value_count, f) !=
        value_count) {
      return Status::IoError("ReadCorpus: truncated values");
    }
    corpus.Add(std::move(series));
  }
  return corpus;
}

}  // namespace s2::storage
