#include "dsp/stats.h"

#include <cmath>

namespace s2::dsp {

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double sum = 0.0;
  for (double v : x) sum += v;
  return sum / static_cast<double>(x.size());
}

double Variance(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  const double mean = Mean(x);
  double sum = 0.0;
  for (double v : x) sum += (v - mean) * (v - mean);
  return sum / static_cast<double>(x.size());
}

double StdDev(const std::vector<double>& x) { return std::sqrt(Variance(x)); }

double Energy(const std::vector<double>& x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return sum;
}

double MeanPower(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return Energy(x) / static_cast<double>(x.size());
}

std::vector<double> Standardize(const std::vector<double>& x) {
  std::vector<double> out(x.size(), 0.0);
  const double stddev = StdDev(x);
  if (stddev == 0.0) return out;
  const double mean = Mean(x);
  for (size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - mean) / stddev;
  return out;
}

Result<double> SquaredEuclidean(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("SquaredEuclidean: length mismatch");
  }
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

Result<double> Euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  S2_ASSIGN_OR_RETURN(double sq, SquaredEuclidean(a, b));
  return std::sqrt(sq);
}

double EuclideanEarlyAbandon(const std::vector<double>& a,
                             const std::vector<double>& b,
                             double abandon_after_sq) {
  double sum = 0.0;
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
    if (sum > abandon_after_sq) return std::sqrt(sum);
  }
  return std::sqrt(sum);
}

}  // namespace s2::dsp
