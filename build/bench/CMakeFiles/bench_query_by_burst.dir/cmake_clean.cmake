file(REMOVE_RECURSE
  "CMakeFiles/bench_query_by_burst.dir/bench_query_by_burst.cc.o"
  "CMakeFiles/bench_query_by_burst.dir/bench_query_by_burst.cc.o.d"
  "bench_query_by_burst"
  "bench_query_by_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_by_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
