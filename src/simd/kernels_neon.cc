#include "simd/kernels_inl.h"

// NEON is the aarch64 baseline; this TU is only added on aarch64 targets.
// -ffp-contract=off matters most here: without it the compiler would fuse
// the generic a*b+c accumulations into fmla and break bit-compatibility
// with x86 and with the scalar reference.
#if defined(__aarch64__)

namespace s2::simd {

const KernelTable* NeonTable() {
  static const KernelTable table =
      detail::MakeTable<detail::VecNeon>(Isa::kNeon, "neon");
  return &table;
}

}  // namespace s2::simd

#else
#error "kernels_neon.cc requires aarch64"
#endif
