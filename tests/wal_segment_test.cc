#include "io/wal_segment.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/mem_env.h"
#include "stream/wal.h"

namespace s2::stream {
namespace {

// 20-byte records; with rotate_bytes = 3 records the 4th append rotates.
constexpr uint64_t kRecordBytes = Wal::kRecordBytes;
constexpr uint64_t kRotateBytes = 3 * kRecordBytes;

std::function<Status(const WalRecord&)> CollectInto(
    std::vector<WalRecord>* out) {
  return [out](const WalRecord& record) {
    out->push_back(record);
    return Status::OK();
  };
}

// Appends records 0..n-1 (value = 10*i) to a fresh or existing log that
// rotates every `kRotateBytes` of record body.
void AppendN(io::Env* env, const std::string& path, uint32_t n) {
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  std::vector<WalRecord> ignored;
  auto wal = Wal::Open(env, path, CollectInto(&ignored), nullptr, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const uint32_t base = static_cast<uint32_t>((*wal)->record_count());
  for (uint32_t i = base; i < base + n; ++i) {
    ASSERT_TRUE((*wal)->Append({i, 10.0 * i}).ok());
  }
}

TEST(WalSegmentTest, RotationSplitsTheLogAndReplayReadsAcrossSegments) {
  io::MemEnv env;
  {
    Wal::Options options;
    options.rotate_bytes = kRotateBytes;
    std::vector<WalRecord> none;
    auto wal = Wal::Open(&env, "log", CollectInto(&none), nullptr, options);
    ASSERT_TRUE(wal.ok());
    for (uint32_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*wal)->Append({i, 10.0 * i}).ok());
    }
    // Records 0-2 fill the base, then every 3 appends seal a segment:
    // base + .seg1(3-5) + .seg2(6-8) + .seg3(9).
    const auto& segments = (*wal)->segments();
    ASSERT_EQ(segments.size(), 4u);
    EXPECT_EQ(segments[0].seq, 0u);
    EXPECT_EQ(segments[0].base_records, 0u);
    EXPECT_EQ(segments[1].base_records, 3u);
    EXPECT_EQ(segments[2].base_records, 6u);
    EXPECT_EQ(segments[3].base_records, 9u);
    EXPECT_TRUE(env.FileExists(io::walseg::SegmentPath("log", 3)));
  }
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(replayed.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(replayed[i].series_id, i);
    EXPECT_DOUBLE_EQ(replayed[i].value, 10.0 * i);
  }
  EXPECT_EQ(info.dropped_bytes, 0u);
  EXPECT_EQ((*wal)->record_count(), 10u);
  // The reopened handle keeps appending into the live tail segment.
  ASSERT_TRUE((*wal)->Append({99, -1.0}).ok());
  EXPECT_EQ((*wal)->record_count(), 11u);
}

TEST(WalSegmentTest, ReplayFromDeliversOnlyTheTailPastTheAnchor) {
  io::MemEnv env;
  AppendN(&env, "log", 10);
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  options.replay_from = 4;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  // Records 0-3 are verified but not delivered; 4-9 replay.
  ASSERT_EQ(replayed.size(), 6u);
  EXPECT_EQ(replayed.front().series_id, 4u);
  EXPECT_EQ(replayed.back().series_id, 9u);
  EXPECT_EQ(info.records, 6u);
  // record_count still counts the whole history, anchor included.
  EXPECT_EQ((*wal)->record_count(), 10u);
}

TEST(WalSegmentTest, GcUnlinksRetiredSegmentsAndAnchoredReplayStillWorks) {
  io::MemEnv env;
  AppendN(&env, "log", 10);
  {
    Wal::Options options;
    options.rotate_bytes = kRotateBytes;
    std::vector<WalRecord> ignored;
    auto wal = Wal::Open(&env, "log", CollectInto(&ignored), nullptr, options);
    ASSERT_TRUE(wal.ok());
    // Safe point 6: base (0-2) and .seg1 (3-5) lie wholly below it.
    auto removed = (*wal)->RemoveObsoleteSegments(6);
    ASSERT_TRUE(removed.ok()) << removed.status().ToString();
    EXPECT_EQ(*removed, 2u);
    EXPECT_EQ((*wal)->segments().size(), 2u);
    EXPECT_FALSE(env.FileExists("log"));
    EXPECT_FALSE(env.FileExists(io::walseg::SegmentPath("log", 1)));
    // Idempotent: nothing else lies below the safe point.
    auto again = (*wal)->RemoveObsoleteSegments(6);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again, 0u);
  }
  // Replay from the anchor succeeds over the surviving suffix...
  {
    std::vector<WalRecord> replayed;
    Wal::Options options;
    options.rotate_bytes = kRotateBytes;
    options.replay_from = 6;
    auto wal = Wal::Open(&env, "log", CollectInto(&replayed), nullptr, options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_EQ(replayed.size(), 4u);
    EXPECT_EQ(replayed.front().series_id, 6u);
  }
  // ...but a full replay can no longer reach the unlinked history.
  {
    std::vector<WalRecord> replayed;
    auto wal = Wal::Open(&env, "log", CollectInto(&replayed));
    ASSERT_FALSE(wal.ok());
    EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
  }
}

TEST(WalSegmentTest, AnchorBeyondHistoryIsCorruption) {
  io::MemEnv env;
  AppendN(&env, "log", 5);
  std::vector<WalRecord> replayed;
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  options.replay_from = 11;  // Only 5 records exist.
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), nullptr, options);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

TEST(WalSegmentTest, InvalidLastHeaderIsACrashedRotationArtifact) {
  io::MemEnv env;
  AppendN(&env, "log", 7);  // base(0-2), .seg1(3-5), .seg2(6).
  // Tear the newest segment's header as a crash mid-rotation would: the
  // header checksum fails, so the open must fall back to .seg1 as the live
  // tail, dropping the artifact's bytes (header + its one record).
  {
    auto file =
        env.Open(io::walseg::SegmentPath("log", 2), io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    char byte = 0;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, 3).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, 3).ok());
  }
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(replayed.size(), 6u);
  EXPECT_EQ(replayed.back().series_id, 5u);
  EXPECT_GT(info.dropped_bytes, 0u);
  // The next rotation overwrites the artifact at the same seq.
  for (uint32_t i = 6; i < 10; ++i) {
    ASSERT_TRUE((*wal)->Append({i, 10.0 * i}).ok());
  }
  std::vector<WalRecord> again;
  auto reopened = Wal::Open(&env, "log", CollectInto(&again), nullptr, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(again.size(), 10u);
  EXPECT_EQ(again.back().series_id, 9u);
}

TEST(WalSegmentTest, MissingMiddleSegmentIsCorruption) {
  io::MemEnv env;
  AppendN(&env, "log", 10);
  ASSERT_TRUE(env.Remove(io::walseg::SegmentPath("log", 1)).ok());
  std::vector<WalRecord> replayed;
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), nullptr, options);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

TEST(WalSegmentTest, TornRecordInASealedSegmentIsCorruption) {
  io::MemEnv env;
  AppendN(&env, "log", 10);
  // Flip a record byte in .seg1 — not the live tail, so the chain break
  // means acknowledged data is gone: the open must refuse, not drop.
  {
    auto file =
        env.Open(io::walseg::SegmentPath("log", 1), io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    char byte = 0;
    const uint64_t off = io::walseg::kSegmentHeaderBytes + 2;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, off).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, off).ok());
  }
  std::vector<WalRecord> replayed;
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), nullptr, options);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

TEST(WalSegmentTest, TornTailInTheLiveSegmentIsDroppedAsBefore) {
  io::MemEnv env;
  AppendN(&env, "log", 8);  // Live tail .seg2 holds records 6, 7.
  {
    auto file =
        env.Open(io::walseg::SegmentPath("log", 2), io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    char byte = 0;
    const uint64_t off =
        io::walseg::kSegmentHeaderBytes + kRecordBytes + 12;  // Record 7's sum.
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, off).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, off).ok());
  }
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  Wal::Options options;
  options.rotate_bytes = kRotateBytes;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(replayed.size(), 7u);
  EXPECT_EQ(info.dropped_bytes, kRecordBytes);
  EXPECT_EQ((*wal)->record_count(), 7u);
}

TEST(WalSegmentTest, ListSegmentsReadsAClosedLogOffDisk) {
  io::MemEnv env;
  AppendN(&env, "log", 10);
  auto listed = Wal::ListSegments(&env, "log");
  ASSERT_TRUE(listed.ok()) << listed.status().ToString();
  ASSERT_EQ(listed->size(), 4u);
  EXPECT_EQ((*listed)[0].path, "log");
  EXPECT_EQ((*listed)[3].seq, 3u);
  EXPECT_EQ((*listed)[3].base_records, 9u);
}

TEST(WalSegmentTest, SegmentPathRoundTripsThroughParse) {
  const std::string path = io::walseg::SegmentPath("dir/wal", 42);
  EXPECT_EQ(path, "dir/wal.seg000042");
  uint64_t seq = 0;
  EXPECT_TRUE(io::walseg::ParseSegmentSeq("dir/wal", path, &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(io::walseg::ParseSegmentSeq("dir/wal", "dir/wal.segXYZ", &seq));
  EXPECT_FALSE(io::walseg::ParseSegmentSeq("dir/wal", "dir/wal.monitor", &seq));
}

TEST(WalSegmentTest, HeaderCodecRejectsDamage) {
  const char magic[8] = {'S', '2', 'T', 'E', 'S', 'T', '0', '1'};
  io::walseg::SegmentHeader header;
  header.seq = 7;
  header.base_records = 1234;
  header.chain_seed = 0xdeadbeefu;
  char buf[io::walseg::kSegmentHeaderBytes];
  io::walseg::EncodeSegmentHeader(magic, header, buf);
  io::walseg::SegmentHeader decoded;
  ASSERT_TRUE(io::walseg::DecodeSegmentHeader(magic, buf, sizeof(buf), &decoded)
                  .ok());
  EXPECT_EQ(decoded.seq, 7u);
  EXPECT_EQ(decoded.base_records, 1234u);
  EXPECT_EQ(decoded.chain_seed, 0xdeadbeefu);
  // Short input.
  EXPECT_EQ(io::walseg::DecodeSegmentHeader(magic, buf, 16, &decoded).code(),
            StatusCode::kCorruption);
  // Any flipped byte breaks either the magic or the checksum.
  for (size_t at : {0u, 9u, 20u, 33u}) {
    char damaged[sizeof(buf)];
    std::memcpy(damaged, buf, sizeof(buf));
    damaged[at] ^= 0x01;
    EXPECT_EQ(io::walseg::DecodeSegmentHeader(magic, damaged, sizeof(damaged),
                                              &decoded)
                  .code(),
              StatusCode::kCorruption)
        << "byte " << at;
  }
}

}  // namespace
}  // namespace s2::stream
