#ifndef S2_QUERYLOG_CORPUS_GENERATOR_H_
#define S2_QUERYLOG_CORPUS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "querylog/components.h"
#include "timeseries/time_series.h"

namespace s2::qlog {

/// Mixture weights over archetype families for whole-corpus synthesis.
/// The defaults approximate the structure the paper reports in MSN logs:
/// many strongly week-periodic queries, a sizeable aperiodic mass, plus
/// seasonal/monthly/news-event minorities. Weights are normalized internally.
struct FamilyMix {
  double weekly = 0.35;
  double monthly = 0.05;
  double seasonal = 0.15;
  double event = 0.15;
  double aperiodic = 0.30;
};

/// Recipe for a synthetic corpus mirroring the paper's experimental data:
/// sequences of length `n_days` (1024 in the paper, covering 2000-2002),
/// `num_series` of them (up to 2^15 in the paper).
struct CorpusSpec {
  size_t num_series = 1024;
  size_t n_days = 1024;
  int32_t start_day = 0;  ///< Day index of the first sample (0 = 2000-01-01).
  uint64_t seed = 42;
  FamilyMix mix;
};

/// Generates a corpus per `spec`. Series names encode their family
/// ("weekly_000123") so experiments can evaluate retrieval semantics.
Result<ts::Corpus> GenerateCorpus(const CorpusSpec& spec);

/// Generates `count` *held-out* query series drawn from the same family
/// mixture but from an independent random stream — the paper evaluates with
/// "queries not found in the database". Uses `spec.seed ^ salt` internally.
Result<std::vector<ts::TimeSeries>> GenerateQueries(const CorpusSpec& spec,
                                                    size_t count);

/// Draws a single archetype from the family mixture. Exposed for tests.
QueryArchetype DrawArchetype(const CorpusSpec& spec, size_t ordinal, Rng* rng);

}  // namespace s2::qlog

#endif  // S2_QUERYLOG_CORPUS_GENERATOR_H_
