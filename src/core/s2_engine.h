#ifndef S2_CORE_S2_ENGINE_H_
#define S2_CORE_S2_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "approx/summary.h"
#include "burst/burst_detector.h"
#include "burst/burst_table.h"
#include "common/result.h"
#include "dtw/dtw_search.h"
#include "index/knn.h"
#include "index/vp_tree.h"
#include "monitor/alert_queue.h"
#include "monitor/registry.h"
#include "period/period_detector.h"
#include "resilience/retrying_source.h"
#include "storage/sequence_store.h"
#include "stream/burst_stream.h"
#include "stream/delta_index.h"
#include "stream/sliding_spectrum.h"
#include "timeseries/time_series.h"

namespace s2::core {

/// Which burst-detection horizon to use (Section 6.1: the paper's database
/// keeps both a 30-day and a 7-day moving-average pass).
enum class BurstHorizon { kLongTerm, kShortTerm };

/// The S2 engine: the library façade corresponding to the paper's S2
/// Similarity Tool (Section 7.5). It ingests a corpus of query-demand
/// series and provides the three headline capabilities:
///
///   * similarity search over compressed spectral features (VP-tree index),
///   * automatic discovery of significant periods,
///   * burst detection and query-by-burst over a relational burst store.
///
/// All sequences are standardized at ingest; similarity is Euclidean
/// distance between standardized sequences (exact — the index bounds only
/// prune, never approximate).
///
/// ## Reentrancy contract (audited for the `s2::service` layer)
///
/// All `const` member functions — `SimilarTo`, `SimilarToSeries`,
/// `SimilarToDtw`, `FindPeriods`, `BurstsOf`, `QueryByBurst`,
/// `QueryByBurstSeries`, `FindByName` and the accessors — are safe to call
/// concurrently from any number of threads, provided no thread is
/// concurrently calling `AddSeries` (or moving the engine). They keep all
/// search scratch state (best-lists, candidate buffers, DP tables) on the
/// stack; the only shared state they touch is instrumentation:
///
///   * `SequenceSource` read counters (atomic),
///   * `BurstTable::last_scanned()` (atomic; reports "some recent query"),
///   * `DiskSequenceStore` record fetches (positioned `pread`, no shared
///     file-position cursor).
///
/// `AddSeries` is a *writer*: it mutates the VP-tree, both burst tables,
/// the catalog and the standardized rows, and must be externally serialized
/// against all readers (e.g. `service::S2Server` holds a shared_mutex in
/// write mode around it). Per-call `SearchStats` out-params are owned by the
/// caller and need no synchronization.
class S2Engine {
 public:
  struct Options {
    index::VpTreeIndex::Options index;
    period::PeriodDetector::Options period;
    /// Sakoe-Chiba half-width for SimilarToDtw (Section 8 extension).
    size_t dtw_window = 16;
    burst::BurstDetector::Options long_burst{30, 1.5, true};
    burst::BurstDetector::Options short_burst{7, 1.5, true};
    /// When non-empty, the standardized sequences are spilled to this file
    /// and verification reads come from disk (the paper's external-memory
    /// configuration); otherwise everything stays in RAM.
    std::string disk_store_path;
    /// Filesystem the disk store lives in; null means the POSIX
    /// environment. Tests substitute `io::MemEnv` / `io::FaultInjectingEnv`.
    io::Env* env = nullptr;
    /// Retry policy for transient faults on the disk verification path
    /// (disk-resident engines only; see resilience::RetryingSequenceSource).
    resilience::RetryPolicy retry;
    /// Streaming ingestion (`AppendPoint`) behavior.
    struct StreamOptions {
      /// false (default): every append recomputes the touched series'
      /// features exactly — standardize, FFT + compress, batch burst
      /// detection — so a streamed engine stays *bitwise* identical to a
      /// batch rebuild over the same data. true: maintain the DTW feature
      /// with an O(k) sliding-DFT update (stream::SlidingSpectrum) and the
      /// burst rows with an incremental moving-average detector
      /// (stream::BurstStream); results then agree with batch up to
      /// documented fp-drift tolerances. The delta VP-tree always compresses
      /// its entries exactly (routing needs the exact rows regardless), so
      /// Euclidean k-NN answers are unaffected by this flag.
      bool incremental_maintenance = false;
    };
    StreamOptions stream;
    /// Approximate-first search tier (src/approx, DESIGN.md §13).
    struct ApproxOptions {
      /// Builds the summary index at Build time (a few hundred bytes per
      /// series) and keeps it current through AddSeries/AppendPoint. Off
      /// disables the ApproxKnn verbs.
      bool enabled = true;
      /// Training knobs + candidate-budget defaults.
      approx::SummaryOptions summary;
      /// A pre-trained configuration to adopt instead of training on this
      /// engine's own corpus. The sharded engine trains ONE config on the
      /// full corpus *before* partitioning and installs it here on every
      /// shard, so projections and candidate ranks are bit-identical across
      /// shard counts. Shared and immutable once installed.
      std::shared_ptr<const approx::SummaryConfig> preset_config;
    };
    ApproxOptions approx;
    /// Kernel dispatch override applied at Build: "" leaves the process
    /// default (CPUID + the S2_SIMD environment variable), "off"/"scalar"
    /// force the scalar backend, "sse2"/"avx2"/"neon" pin that backend
    /// (Unavailable if absent). Dispatch is process-global — every backend
    /// is bit-compatible, so flipping it never changes results, only
    /// throughput (see src/simd/simd.h).
    std::string simd;
  };

  /// Ingests `corpus` and builds every derived structure. All series must
  /// share one length.
  static Result<S2Engine> Build(ts::Corpus corpus, const Options& options);

  S2Engine(S2Engine&&) noexcept = default;
  S2Engine& operator=(S2Engine&&) noexcept = default;

  // --- Catalog -------------------------------------------------------------

  /// Resolves a query string to its series id.
  Result<ts::SeriesId> FindByName(std::string_view name) const;

  /// Incrementally ingests one more series: standardizes it, inserts it
  /// into the VP-tree (dynamic insert), detects its bursts into both burst
  /// stores and registers its name. Only supported for RAM-resident engines
  /// (empty `disk_store_path`); the series must match the corpus length.
  /// Returns the new series id.
  Result<ts::SeriesId> AddSeries(ts::TimeSeries series);

  // --- Streaming ingestion ---------------------------------------------------

  /// Slides one series' window forward by a day: the oldest sample falls off
  /// the front, `value` enters the back, `start_day` advances — the corpus
  /// stays rectangular, so every query verb remains well-defined mid-stream.
  /// The series moves to the delta tier (a small side VP-tree searched
  /// alongside the main index; see stream::DeltaIndex) and all its derived
  /// state — stored row, DTW feature, burst rows of both horizons — is
  /// brought current per `Options::StreamOptions`.
  ///
  /// A writer, like `AddSeries`: serialize externally against all readers.
  /// On an I/O error (disk-resident engines) the engine rolls the series
  /// back to its pre-append state; if even the rollback's reads fail, the
  /// series may be left unindexed until WAL replay rebuilds the engine —
  /// degraded but never wrong (queries simply miss that one series).
  Status AppendPoint(ts::SeriesId id, double value);

  /// Folds every delta-tier series back into the main index and empties the
  /// delta (the LSM merge). A writer. Safe to call with an empty delta
  /// (no-op). The merged tree answers queries identically — both tiers hold
  /// exact compressed features over the same rows, so only *where* a series
  /// is probed changes, never its distance.
  Status Compact();

  // --- Standing queries (s2::monitor) ---------------------------------------

  /// Registers a standing subscription evaluated by every `AppendPoint`
  /// that slides series `key` — the *engine-local* id; `sub.series` is the
  /// id fired alerts report (a sharding layer passes the global id there,
  /// single engines pass the same id twice). Hysteresis state arms
  /// *silently* against the current window — no alert at registration —
  /// which is what lets WAL replay re-arm a logged subscription into the
  /// exact pre-crash state. A writer: serialize like `AddSeries`.
  Status Subscribe(ts::SeriesId key, monitor::Subscription sub);

  /// Registers a subscription with its hysteresis state installed verbatim
  /// instead of armed from the current window — the checkpoint-recovery
  /// path (the snapshot recorded the state at the WAL anchor; re-arming
  /// against the rebuilt window would be wrong mid-transition). A writer.
  Status RestoreSubscription(ts::SeriesId key, monitor::Subscription sub,
                             bool engaged, uint32_t bin);

  /// Removes a standing subscription. A writer.
  Status Unsubscribe(monitor::SubscriptionId id);

  /// Attaches the delivery queue fired alerts are pushed into (not owned;
  /// must outlive the engine or be detached with nullptr). Unset, appends
  /// still advance subscription state but fired alerts are discarded —
  /// shards share their server's queue, standalone engines may run
  /// unmonitored.
  void set_alert_queue(monitor::AlertQueue* queue) { alert_queue_ = queue; }

  const monitor::SubscriptionRegistry& monitor_registry() const {
    return registry_;
  }

  /// Series currently in the delta tier.
  size_t delta_size() const { return delta_ == nullptr ? 0 : delta_->size(); }
  /// Points appended / compactions run over this engine's lifetime.
  uint64_t append_count() const { return appends_; }
  uint64_t compaction_count() const { return compactions_; }
  /// The delta tier, or null while no append has created one (tests).
  const stream::DeltaIndex* delta() const { return delta_.get(); }

  /// The ingested corpus.
  const ts::Corpus& corpus() const { return corpus_; }

  /// Standardized values of a series.
  const std::vector<double>& standardized(ts::SeriesId id) const {
    return standardized_[id];
  }

  // --- Similarity ----------------------------------------------------------

  /// k nearest neighbors of an indexed series (itself excluded).
  Result<std::vector<index::Neighbor>> SimilarTo(ts::SeriesId id, size_t k,
                                                 index::VpTreeIndex::SearchStats*
                                                     stats = nullptr) const;

  /// k nearest neighbors of an external (raw, unstandardized) sequence.
  Result<std::vector<index::Neighbor>> SimilarToSeries(
      const std::vector<double>& raw_values, size_t k,
      index::VpTreeIndex::SearchStats* stats = nullptr) const;

  /// Degraded-mode answer: exact k-NN by linear scan over the RAM-resident
  /// standardized rows. No index traversal, no sequence-store I/O — this
  /// path cannot fail on disk faults, which is exactly why the serving
  /// layer falls back to it when the indexed path hits I/O trouble. O(N·len)
  /// per query, but the answer set is identical to `SimilarTo` (both are
  /// exact Euclidean k-NN).
  Result<std::vector<index::Neighbor>> SimilarToExact(ts::SeriesId id,
                                                      size_t k) const;

  /// Degraded-mode counterpart of `SimilarToSeries` (same linear scan).
  Result<std::vector<index::Neighbor>> SimilarToSeriesExact(
      const std::vector<double>& raw_values, size_t k) const;

  /// Degraded-mode counterpart of `SimilarToDtw`: exact windowed-DTW k-NN
  /// by early-abandoning linear scan over the RAM rows — same answers, no
  /// index, no disk.
  Result<std::vector<index::Neighbor>> SimilarToDtwExact(ts::SeriesId id,
                                                         size_t k) const;

  /// k nearest neighbors of an indexed series under *dynamic time warping*
  /// (Section 8 extension): exact windowed-DTW search accelerated by the
  /// compressed-representation upper bounds and LB_Keogh. Itself excluded.
  Result<std::vector<index::Neighbor>> SimilarToDtw(
      ts::SeriesId id, size_t k,
      dtw::DtwKnnSearch::SearchStats* stats = nullptr) const;

  // --- Sharded-search entry points ------------------------------------------
  //
  // Used by shard::ShardedEngine, whose scatter phase runs one search per
  // shard over the *same* query row. The row arrives already standardized
  // (re-standardizing per shard would drift bitwise from the single-engine
  // answer), `exclude` names a *local* series id to drop from the results
  // (`ts::kInvalidSeriesId` for none — only the shard owning the query
  // series excludes), and `shared` threads the cross-shard pruning radius
  // through the search. With `exclude` set the search asks for k+1 exactly
  // like `SimilarTo`, so the owning shard's answers stay bit-identical to
  // the single-engine path.

  Result<std::vector<index::Neighbor>> SimilarToStandardized(
      const std::vector<double>& z, size_t k,
      ts::SeriesId exclude = ts::kInvalidSeriesId,
      index::VpTreeIndex::SearchStats* stats = nullptr,
      index::SharedRadius* shared = nullptr) const;

  Result<std::vector<index::Neighbor>> SimilarToDtwStandardized(
      const std::vector<double>& z, size_t k,
      ts::SeriesId exclude = ts::kInvalidSeriesId,
      dtw::DtwKnnSearch::SearchStats* stats = nullptr,
      index::SharedRadius* shared = nullptr) const;

  /// Degraded-path counterparts: exact linear scans over the RAM rows with
  /// an explicit local exclusion (no index, no disk — cannot fail).
  Result<std::vector<index::Neighbor>> SimilarToStandardizedExact(
      const std::vector<double>& z, size_t k,
      ts::SeriesId exclude = ts::kInvalidSeriesId) const;
  Result<std::vector<index::Neighbor>> SimilarToDtwStandardizedExact(
      const std::vector<double>& z, size_t k,
      ts::SeriesId exclude = ts::kInvalidSeriesId) const;

  // --- Approximate search (s2::approx, DESIGN.md §13) ------------------------

  /// An approximate answer plus its per-query quality bound.
  struct ApproxAnswer {
    std::vector<index::Neighbor> neighbors;
    approx::QualityBound bound;
  };

  /// Approximate k-NN of an indexed series (itself excluded): summary scan
  /// -> candidate set -> exact verification with the early-abandon kernel,
  /// reporting a per-query quality bound. RAM-only end to end (envelope
  /// planes + standardized rows) — this path cannot hit disk faults, which
  /// is why the serving layer's degradation ladder may route to it.
  /// `params.max_candidates >= corpus size` degenerates to the exact answer
  /// bit-for-bit.
  Result<ApproxAnswer> ApproxKnn(ts::SeriesId id,
                                 const approx::QueryParams& params,
                                 approx::ScanStats* stats = nullptr) const;

  // Sharded entry points (same pattern as the exact counterparts below):
  // the owner projects the query ONCE, every shard ranks its own slice's
  // candidates under the shared global config, and verification runs where
  // the rows live under one shared radius.

  /// Projects a standardized row under the engine's summary configuration.
  Result<std::vector<double>> ApproxProject(const std::vector<double>& z) const;

  /// This engine's top-`c` candidates for a projected query, ascending
  /// (lb_sq, id); `exclude` names a local id to skip.
  Result<std::vector<approx::SummaryIndex::Candidate>> ApproxCandidates(
      const std::vector<double>& proj, size_t c,
      ts::SeriesId exclude = ts::kInvalidSeriesId,
      approx::ScanStats* stats = nullptr) const;

  /// Exactly verifies `candidates` (ascending (lb_sq, id)) against the RAM
  /// rows under `shared`, returning the best `k` with exact distances.
  Result<std::vector<index::Neighbor>> ApproxVerify(
      const std::vector<double>& z,
      const std::vector<approx::SummaryIndex::Candidate>& candidates, size_t k,
      approx::ScanStats* stats = nullptr,
      index::SharedRadius* shared = nullptr) const;

  /// The summary index, or null when the approximate tier is disabled.
  const approx::SummaryIndex* summary() const { return summary_.get(); }

  // --- Periods ---------------------------------------------------------------

  /// Significant periods of an indexed series (descending power).
  Result<std::vector<period::PeriodHit>> FindPeriods(ts::SeriesId id) const;

  // --- Bursts ----------------------------------------------------------------

  /// Precomputed burst triplets of a series (positions are absolute days).
  Result<std::vector<burst::BurstRegion>> BurstsOf(ts::SeriesId id,
                                                   BurstHorizon horizon) const;

  /// Query-by-burst against the corpus burst store, excluding `id` itself.
  Result<std::vector<burst::BurstMatch>> QueryByBurst(ts::SeriesId id, size_t k,
                                                      BurstHorizon horizon) const;

  /// Query-by-burst for an external raw sequence.
  Result<std::vector<burst::BurstMatch>> QueryByBurstSeries(
      const ts::TimeSeries& series, size_t k, BurstHorizon horizon) const;

  // --- Introspection ---------------------------------------------------------

  const index::VpTreeIndex& index() const { return *index_; }
  const burst::BurstTable& burst_table(BurstHorizon horizon) const {
    return horizon == BurstHorizon::kLongTerm ? long_bursts_ : short_bursts_;
  }
  storage::SequenceSource* source() const { return source_.get(); }
  /// The retrying decorator around the disk store; null for RAM-resident
  /// engines (whose source cannot fail). Exposes retry/giveup counters.
  const resilience::RetryingSequenceSource* retry_source() const {
    return retry_source_;
  }
  const Options& options() const { return options_; }

  /// Cross-structure self-check: validates the VP-tree (structure only —
  /// the exact-distance pass is the index's own opt-in) and both burst
  /// tables, then the engine-level agreement between them: catalog names
  /// resolving to in-range ids, one standardized row of the corpus length
  /// per series, and the index population matching the corpus. `Build` and
  /// `AddSeries` run this under `S2_DCHECK_OK` in checked builds.
  Status ValidateInvariants() const;

 private:
  S2Engine() = default;

  const burst::BurstDetector& DetectorFor(BurstHorizon horizon) const {
    return horizon == BurstHorizon::kLongTerm ? long_detector_ : short_detector_;
  }

  /// Exact k-NN over both index tiers: searches the main tree and (when
  /// non-empty) the delta tree under one shared pruning radius and merges by
  /// (distance, id) — the cross-shard scatter-gather argument applied to the
  /// two tiers, which partition the corpus. With an empty delta this is
  /// exactly a main-tree search (bitwise, including stats).
  Result<std::vector<index::Neighbor>> SearchIndexBoth(
      const std::vector<double>& z, size_t k,
      index::VpTreeIndex::SearchStats* stats, index::SharedRadius* shared) const;

  /// Recomputes/maintains the DTW feature and both horizons' burst rows of
  /// `id` after its window slid. `x_old` left the front, `x_new` entered
  /// the back. The corpus row and `standardized_[id]` are already current.
  Status RefreshDerivedState(ts::SeriesId id, double x_old, double x_new);

  Options options_;
  ts::Corpus corpus_;
  std::vector<std::vector<double>> standardized_;
  // Non-owning alias of source_ when it is RAM-resident; enables AddSeries.
  storage::InMemorySequenceSource* mem_source_ = nullptr;
  // Non-owning alias of source_ when it is disk-resident (retry decorator).
  resilience::RetryingSequenceSource* retry_source_ = nullptr;
  // Non-owning alias of the raw disk store under retry_source_; enables
  // streamed in-place record updates. Null for RAM-resident engines.
  storage::DiskSequenceStore* disk_source_ = nullptr;
  std::unordered_map<std::string, ts::SeriesId> by_name_;
  std::unique_ptr<index::VpTreeIndex> index_;
  // Approximate tier (null when Options::ApproxOptions::enabled is false):
  // summary envelopes over standardized_, slot == series id, kept current
  // by AddSeries/AppendPoint under the build-time-frozen config.
  std::unique_ptr<approx::SummaryIndex> summary_;
  std::unique_ptr<dtw::DtwKnnSearch> dtw_search_;
  std::unique_ptr<storage::SequenceSource> source_;
  burst::BurstDetector long_detector_;
  burst::BurstDetector short_detector_;
  burst::BurstTable long_bursts_;
  burst::BurstTable short_bursts_;
  period::PeriodDetector period_detector_;

  // --- Streaming state -------------------------------------------------------
  // Delta tier; created lazily by the first AppendPoint.
  std::unique_ptr<stream::DeltaIndex> delta_;
  uint64_t appends_ = 0;
  uint64_t compactions_ = 0;
  // Incremental-maintenance state (only populated when
  // options_.stream.incremental_maintenance): per-series sliding-DFT and
  // burst-detector accumulators, created on a series' first append.
  struct IncrementalState {
    stream::SlidingSpectrum spectrum;
    stream::BurstStream long_bursts;
    stream::BurstStream short_bursts;
  };
  std::unordered_map<ts::SeriesId, IncrementalState> incremental_;

  // --- Standing queries ------------------------------------------------------
  // Subscriptions keyed by local series id; mutated only on the writer
  // path, like everything above. The queue is shared infrastructure owned
  // by the serving layer (or a test); null drops fired alerts.
  monitor::SubscriptionRegistry registry_;
  monitor::AlertQueue* alert_queue_ = nullptr;
};

}  // namespace s2::core

#endif  // S2_CORE_S2_ENGINE_H_
