file(REMOVE_RECURSE
  "CMakeFiles/periodogram_test.dir/periodogram_test.cc.o"
  "CMakeFiles/periodogram_test.dir/periodogram_test.cc.o.d"
  "periodogram_test"
  "periodogram_test.pdb"
  "periodogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
