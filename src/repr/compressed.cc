#include "repr/compressed.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "dsp/wavelet.h"

namespace s2::repr {

namespace {

// Positions 1..c (DC skipped; sequences are standardized so bin 0 is ~0).
std::vector<uint32_t> FirstPositions(size_t c) {
  std::vector<uint32_t> positions(c);
  std::iota(positions.begin(), positions.end(), 1u);
  return positions;
}

// The `k` bins of largest magnitude anywhere in the half spectrum
// (including DC and Nyquist), returned in ascending position order.
std::vector<uint32_t> BestPositions(const HalfSpectrum& spectrum, size_t k) {
  std::vector<uint32_t> order(spectrum.num_bins());
  std::iota(order.begin(), order.end(), 0u);
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(k),
                    order.end(), [&spectrum](uint32_t a, uint32_t b) {
                      const double ma = std::abs(spectrum.coeff(a));
                      const double mb = std::abs(spectrum.coeff(b));
                      if (ma != mb) return ma > mb;
                      return a < b;  // Deterministic tie-break.
                    });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

std::string_view ReprKindToString(ReprKind kind) {
  switch (kind) {
    case ReprKind::kFirstKMiddle:
      return "GEMINI";
    case ReprKind::kFirstKError:
      return "Wang";
    case ReprKind::kBestKMiddle:
      return "BestMiddle";
    case ReprKind::kBestKError:
      return "BestError";
  }
  return "Unknown";
}

size_t BestCoefficientBudget(size_t c) {
  // 16 bytes per first coefficient vs 16+2 per best coefficient (Section 7.1):
  // floor(16c / 18) == floor(c / 1.125).
  return (16 * c) / 18;
}

bool CompressedSpectrum::Holds(uint32_t k, size_t* slot) const {
  const auto it = std::lower_bound(positions_.begin(), positions_.end(), k);
  if (it == positions_.end() || *it != k) return false;
  if (slot != nullptr) *slot = static_cast<size_t>(it - positions_.begin());
  return true;
}

Result<CompressedSpectrum> CompressedSpectrum::Compress(const HalfSpectrum& spectrum,
                                                        ReprKind kind, size_t c) {
  if (c == 0) {
    return Status::InvalidArgument("Compress: coefficient budget must be > 0");
  }
  const size_t bins = spectrum.num_bins();
  const bool best = kind == ReprKind::kBestKMiddle || kind == ReprKind::kBestKError;
  const size_t keep = best ? BestCoefficientBudget(c) : c;
  if (keep == 0) {
    return Status::InvalidArgument("Compress: budget too small for best-k storage");
  }
  if (keep >= bins) {
    return Status::InvalidArgument("Compress: budget exceeds available bins");
  }

  const bool with_middle_kind =
      kind == ReprKind::kFirstKMiddle || kind == ReprKind::kBestKMiddle;
  if (with_middle_kind && spectrum.basis() == Basis::kOrthonormalReal) {
    return Status::InvalidArgument(
        "Compress: middle-coefficient kinds require the Fourier basis");
  }

  CompressedSpectrum out;
  out.kind_ = kind;
  out.basis_ = spectrum.basis();
  out.n_ = spectrum.n();

  if (best) {
    out.positions_ = BestPositions(spectrum, keep);
    // minPower over the selected best bins: every omitted bin is smaller.
    double min_power = std::numeric_limits<double>::infinity();
    for (uint32_t k : out.positions_) {
      min_power = std::min(min_power, std::abs(spectrum.coeff(k)));
    }
    out.min_power_ = min_power;
  } else {
    out.positions_ = FirstPositions(keep);
    out.min_power_ = std::numeric_limits<double>::infinity();
  }

  const bool with_middle =
      kind == ReprKind::kFirstKMiddle || kind == ReprKind::kBestKMiddle;
  if (with_middle) {
    // Spend the spare double on the middle (Nyquist) coefficient, which is
    // real for even-length inputs. If it is already retained, the
    // representation simply uses one fewer double (paper, Section 7.1).
    const uint32_t middle = static_cast<uint32_t>(spectrum.n() / 2);
    if (middle < bins) {
      const auto it =
          std::lower_bound(out.positions_.begin(), out.positions_.end(), middle);
      if (it == out.positions_.end() || *it != middle) {
        out.positions_.insert(it, middle);
      }
    }
  }

  out.coeffs_.reserve(out.positions_.size());
  for (uint32_t k : out.positions_) out.coeffs_.push_back(spectrum.coeff(k));

  // T.err: weighted energy of everything not retained.
  if (kind == ReprKind::kFirstKError || kind == ReprKind::kBestKError) {
    double err = 0.0;
    size_t next = 0;
    for (size_t k = 0; k < bins; ++k) {
      if (next < out.positions_.size() && out.positions_[next] == k) {
        ++next;
        continue;
      }
      err += spectrum.multiplicity(k) * std::norm(spectrum.coeff(k));
    }
    out.error_ = err;
  } else {
    out.error_ = std::numeric_limits<double>::quiet_NaN();
  }
  return out;
}

Result<CompressedSpectrum> CompressedSpectrum::CompressToEnergy(
    const HalfSpectrum& spectrum, double energy_fraction) {
  if (!(energy_fraction > 0.0 && energy_fraction < 1.0)) {
    return Status::InvalidArgument(
        "CompressToEnergy: energy_fraction must be in (0, 1)");
  }
  const size_t bins = spectrum.num_bins();
  if (bins < 2) {
    return Status::InvalidArgument("CompressToEnergy: sequence too short");
  }
  const double total = spectrum.Energy();

  // Bins by descending magnitude.
  std::vector<uint32_t> order(bins);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&spectrum](uint32_t a, uint32_t b) {
    const double ma = std::abs(spectrum.coeff(a));
    const double mb = std::abs(spectrum.coeff(b));
    if (ma != mb) return ma > mb;
    return a < b;
  });

  size_t keep = 0;
  double captured = 0.0;
  // A zero-energy (constant) sequence is fully captured by one coefficient.
  while (keep < bins - 1 &&
         (keep == 0 || (total > 0.0 && captured < energy_fraction * total))) {
    captured += spectrum.multiplicity(order[keep]) *
                std::norm(spectrum.coeff(order[keep]));
    ++keep;
  }

  CompressedSpectrum out;
  out.kind_ = ReprKind::kBestKError;
  out.basis_ = spectrum.basis();
  out.n_ = spectrum.n();
  out.positions_.assign(order.begin(), order.begin() + static_cast<ptrdiff_t>(keep));
  std::sort(out.positions_.begin(), out.positions_.end());
  double min_power = std::numeric_limits<double>::infinity();
  out.coeffs_.reserve(keep);
  for (uint32_t k : out.positions_) {
    out.coeffs_.push_back(spectrum.coeff(k));
    min_power = std::min(min_power, std::abs(spectrum.coeff(k)));
  }
  out.min_power_ = min_power;
  out.error_ = std::max(0.0, total - captured);
  return out;
}

Result<CompressedSpectrum> CompressedSpectrum::FromParts(
    ReprKind kind, uint32_t n, std::vector<uint32_t> positions,
    std::vector<Complex> coeffs, double error, double min_power, Basis basis) {
  if (n == 0) return Status::InvalidArgument("FromParts: n must be > 0");
  if (positions.size() != coeffs.size()) {
    return Status::InvalidArgument("FromParts: positions/coeffs size mismatch");
  }
  if (positions.empty()) {
    return Status::InvalidArgument("FromParts: empty representation");
  }
  const uint32_t bins = basis == Basis::kOrthonormalReal ? n : n / 2 + 1;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (positions[i] >= bins) {
      return Status::InvalidArgument("FromParts: position out of range");
    }
    if (i > 0 && positions[i] <= positions[i - 1]) {
      return Status::InvalidArgument("FromParts: positions must be ascending");
    }
  }
  const bool best = kind == ReprKind::kBestKMiddle || kind == ReprKind::kBestKError;
  const bool has_error =
      kind == ReprKind::kFirstKError || kind == ReprKind::kBestKError;
  if (has_error && !(error >= 0.0)) {
    return Status::InvalidArgument("FromParts: error must be >= 0");
  }
  if (best && !(min_power >= 0.0)) {
    return Status::InvalidArgument("FromParts: min_power must be >= 0");
  }

  CompressedSpectrum out;
  out.kind_ = kind;
  out.basis_ = basis;
  out.n_ = n;
  out.positions_ = std::move(positions);
  out.coeffs_ = std::move(coeffs);
  out.error_ = has_error ? error : std::numeric_limits<double>::quiet_NaN();
  out.min_power_ = best ? min_power : std::numeric_limits<double>::infinity();
  return out;
}

size_t CompressedSpectrum::StorageBytes() const {
  const bool best = kind_ == ReprKind::kBestKMiddle || kind_ == ReprKind::kBestKError;
  const bool with_middle =
      kind_ == ReprKind::kFirstKMiddle || kind_ == ReprKind::kBestKMiddle;
  size_t coeff_count = positions_.size();
  size_t bytes = 0;
  if (with_middle) {
    // The middle coefficient is real: 8 bytes, no position needed.
    const uint32_t middle = n_ / 2;
    if (!positions_.empty() && positions_.back() == middle) {
      coeff_count -= 1;
      bytes += 8;
    }
  } else {
    bytes += 8;  // The stored error.
  }
  bytes += coeff_count * (best ? 18 : 16);
  return bytes;
}

Result<std::vector<double>> CompressedSpectrum::Reconstruct() const {
  if (basis_ == Basis::kOrthonormalReal) {
    std::vector<double> sparse(n_, 0.0);
    for (size_t i = 0; i < positions_.size(); ++i) {
      sparse[positions_[i]] = coeffs_[i].real();
    }
    return dsp::HaarInverse(sparse);
  }
  std::vector<Complex> full(n_, Complex(0, 0));
  for (size_t i = 0; i < positions_.size(); ++i) {
    const uint32_t k = positions_[i];
    full[k] = coeffs_[i];
    if (k != 0 && !(n_ % 2 == 0 && k == n_ / 2)) {
      full[n_ - k] = std::conj(coeffs_[i]);
    }
  }
  return dsp::InverseDftReal(full);
}

}  // namespace s2::repr
