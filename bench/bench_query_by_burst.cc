// Reproduces paper Figure 19: 'query-by-burst' discovery. The paper shows
// three example retrievals: "world trade center" -> "pentagon attack" /
// "nostradamus prediction"; "hurricane" -> "www.nhc.noaa.gov" / "tropical
// storm"; "christmas" -> "gingerbread men" / "rudolph the red nosed
// reindeer". We synthesize a corpus with the same correlation structure
// (co-bursting query families around shared events) plus background series
// and verify that query-by-burst surfaces the intended partners.

#include <cstdio>

#include "bench/bench_util.h"
#include "burst/burst_table.h"
#include "core/s2_engine.h"
#include "common/rng.h"
#include "querylog/archetypes.h"
#include "querylog/corpus_generator.h"
#include "querylog/synthesizer.h"
#include "timeseries/calendar.h"

namespace s2 {
namespace {

// A co-bursting variant of an existing event archetype: same event days,
// slightly different amplitudes/decays (other queries about the same news).
qlog::QueryArchetype CoBurst(const qlog::QueryArchetype& base,
                             const std::string& name, double scale, Rng* rng) {
  qlog::QueryArchetype a = base;
  a.name = name;
  a.base_rate = base.base_rate * rng->Uniform(0.4, 1.6);
  for (auto& event : a.events) {
    event.amplitude *= scale * rng->Uniform(0.8, 1.2);
    event.decay_days *= rng->Uniform(0.8, 1.3);
  }
  for (auto& annual : a.annual_bursts) {
    annual.amplitude *= scale * rng->Uniform(0.8, 1.2);
    annual.width_days *= rng->Uniform(0.9, 1.2);
  }
  return a;
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  bench::PrintHeader(
      "Figure 19: query-by-burst over a 3-year corpus (2000-2002)");

  Rng rng(919);
  const size_t n_days = 1024;
  ts::Corpus corpus;
  auto add = [&](const qlog::QueryArchetype& archetype) {
    auto series = qlog::Synthesize(archetype, 0, n_days, &rng);
    if (series.ok()) corpus.Add(std::move(series).ValueOrDie());
  };

  // Example 1: the 9/11 cluster.
  const int32_t sep11 = ts::DateToDayIndex({2001, 9, 11});
  const auto wtc = qlog::MakeWorldTradeCenter(sep11);
  add(wtc);
  add(CoBurst(wtc, "pentagon attack", 0.8, &rng));
  add(CoBurst(wtc, "nostradamus prediction", 0.5, &rng));

  // Example 2: the hurricane-season cluster.
  const auto hurricane = qlog::MakeHurricane();
  add(hurricane);
  add(CoBurst(hurricane, "www.nhc.noaa.gov", 0.9, &rng));
  add(CoBurst(hurricane, "tropical storm", 1.1, &rng));

  // Example 3: the Christmas cluster.
  const auto christmas = qlog::MakeChristmas();
  add(christmas);
  add(CoBurst(christmas, "gingerbread men", 0.7, &rng));
  add(CoBurst(christmas, "rudolph the red nosed reindeer", 0.9, &rng));

  // Background: unrelated series that must NOT surface.
  qlog::CorpusSpec filler_spec;
  filler_spec.num_series = 400;
  filler_spec.n_days = n_days;
  filler_spec.seed = 920;
  auto filler = qlog::GenerateCorpus(filler_spec);
  if (filler.ok()) {
    for (const auto& series : filler->series()) corpus.Add(series);
  }

  core::S2Engine::Options options;
  options.index.budget_c = 8;
  // Practical prominence guard (see BurstDetector::Options::min_avg_value):
  // suppresses the noise micro-bursts of flat weekly series that would
  // otherwise pollute BSim rankings.
  options.long_burst.min_avg_value = 0.5;
  options.long_burst.min_length = 5;
  options.short_burst.min_avg_value = 0.5;
  auto engine = core::S2Engine::Build(std::move(corpus), options);
  if (!engine.ok()) {
    std::printf("engine build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  for (const char* query :
       {"world trade center", "hurricane", "christmas"}) {
    auto id = engine->FindByName(query);
    if (!id.ok()) {
      std::printf("\nquery = %s: %s\n", query, id.status().ToString().c_str());
      continue;
    }
    std::printf("\nquery = %s\n", query);
    auto bursts = engine->BurstsOf(*id, core::BurstHorizon::kLongTerm);
    if (!bursts.ok()) {
      std::printf("  burst detection failed: %s\n",
                  bursts.status().ToString().c_str());
    }
    if (bursts.ok()) {
      std::printf("  query bursts:");
      for (const auto& b : *bursts) {
        std::printf(" [%s..%s]", ts::FormatDayIndex(b.start).c_str(),
                    ts::FormatDayIndex(b.end).c_str());
      }
      std::printf("\n");
    }
    auto matches = engine->QueryByBurst(*id, 5, core::BurstHorizon::kLongTerm);
    if (!matches.ok()) continue;
    int rank = 1;
    for (const auto& match : *matches) {
      std::printf("  %d. %-36s BSim = %.3f\n", rank,
                  engine->corpus().at(match.series_id).name.c_str(), match.bsim);
      ++rank;
    }
    std::printf("  burst records scanned via B+-tree: %zu of %zu\n",
                engine->burst_table(core::BurstHorizon::kLongTerm).last_scanned(),
                engine->burst_table(core::BurstHorizon::kLongTerm).size());
  }

  std::printf(
      "\nExpected shape (paper): each query's co-bursting partners rank at "
      "the top; unrelated background series score near zero. This type of "
      "search is especially useful for non-periodic bursty sequences.\n");
  return 0;
}
