file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coeffs.dir/bench_ablation_coeffs.cc.o"
  "CMakeFiles/bench_ablation_coeffs.dir/bench_ablation_coeffs.cc.o.d"
  "bench_ablation_coeffs"
  "bench_ablation_coeffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coeffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
