#include "ckpt/manifest.h"

#include <cstring>
#include <string>

namespace s2::ckpt {

namespace {

constexpr char kManifestMagic[8] = {'S', '2', 'C', 'K', 'M', 'F', '0', '1'};
constexpr uint32_t kManifestVersion = 1;

void PutU32(std::vector<char>* out, uint32_t v) {
  const char* c = reinterpret_cast<const char*>(&v);
  out->insert(out->end(), c, c + sizeof(v));
}

void PutU64(std::vector<char>* out, uint64_t v) {
  const char* c = reinterpret_cast<const char*>(&v);
  out->insert(out->end(), c, c + sizeof(v));
}

void PutMeta(std::vector<char>* out, const CheckpointMeta& meta) {
  PutU64(out, meta.generation);
  PutU64(out, meta.anchor_appends);
  PutU64(out, meta.anchor_monitor_ops);
}

void PutSegments(std::vector<char>* out,
                 const std::vector<SegmentMeta>& segments) {
  PutU64(out, segments.size());
  for (const SegmentMeta& seg : segments) {
    PutU64(out, seg.seq);
    PutU64(out, seg.base_records);
  }
}

class Reader {
 public:
  Reader(const char* data, size_t n) : data_(data), n_(n) {}
  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool Magic() {
    if (n_ - pos_ < sizeof(kManifestMagic)) return false;
    const bool ok =
        std::memcmp(data_ + pos_, kManifestMagic, sizeof(kManifestMagic)) == 0;
    pos_ += sizeof(kManifestMagic);
    return ok;
  }
  bool Meta(CheckpointMeta* meta) {
    return U64(&meta->generation) && U64(&meta->anchor_appends) &&
           U64(&meta->anchor_monitor_ops);
  }
  Status Segments(std::vector<SegmentMeta>* out, const char* what) {
    uint64_t count = 0;
    if (!U64(&count)) {
      return Status::Corruption(std::string("manifest: truncated ") + what);
    }
    if (count > Remaining() / (2 * sizeof(uint64_t))) {
      return Status::Corruption(std::string("manifest: ") + what +
                                " count overruns payload");
    }
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      SegmentMeta seg;
      if (!U64(&seg.seq) || !U64(&seg.base_records)) {
        return Status::Corruption(std::string("manifest: truncated ") + what);
      }
      out->push_back(seg);
    }
    return Status::OK();
  }
  size_t Remaining() const { return n_ - pos_; }
  bool Done() const { return pos_ == n_; }

 private:
  bool Raw(void* p, size_t n) {
    if (n_ - pos_ < n) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t n_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<char> EncodeManifest(const Manifest& manifest) {
  // Sized up front: GCC 12 at -O3 otherwise mis-models the first growth of
  // an empty vector and flags the insert with -Wstringop-overflow.
  std::vector<char> out;
  out.reserve(64);
  out.insert(out.end(), kManifestMagic,
             kManifestMagic + sizeof(kManifestMagic));
  PutU32(&out, kManifestVersion);
  PutMeta(&out, manifest.current);
  out.push_back(manifest.has_prev ? 1 : 0);
  PutMeta(&out, manifest.prev);
  PutU64(&out, manifest.shard_count);
  PutU64(&out, manifest.shard_checksums.size());
  for (uint64_t sum : manifest.shard_checksums) PutU64(&out, sum);
  PutSegments(&out, manifest.data_segments);
  PutSegments(&out, manifest.monitor_segments);
  return out;
}

Status DecodeManifest(const char* data, size_t n, Manifest* out) {
  Reader reader(data, n);
  if (!reader.Magic()) return Status::Corruption("manifest: bad magic");
  uint32_t version = 0;
  if (!reader.U32(&version)) {
    return Status::Corruption("manifest: truncated header");
  }
  if (version != kManifestVersion) {
    return Status::Corruption("manifest: unknown version " +
                              std::to_string(version));
  }
  uint8_t has_prev = 0;
  if (!reader.Meta(&out->current) || !reader.U8(&has_prev) ||
      !reader.Meta(&out->prev)) {
    return Status::Corruption("manifest: truncated checkpoint metas");
  }
  if (has_prev > 1) {
    return Status::Corruption("manifest: non-boolean has_prev flag");
  }
  out->has_prev = has_prev != 0;
  if (out->has_prev && out->prev.generation >= out->current.generation) {
    return Status::Corruption("manifest: fallback generation not older");
  }
  uint64_t checksum_count = 0;
  if (!reader.U64(&out->shard_count) || !reader.U64(&checksum_count)) {
    return Status::Corruption("manifest: truncated shard block");
  }
  if (checksum_count > reader.Remaining() / sizeof(uint64_t)) {
    return Status::Corruption("manifest: checksum count overruns payload");
  }
  out->shard_checksums.clear();
  out->shard_checksums.reserve(checksum_count);
  for (uint64_t i = 0; i < checksum_count; ++i) {
    uint64_t sum = 0;
    if (!reader.U64(&sum)) {
      return Status::Corruption("manifest: truncated checksums");
    }
    out->shard_checksums.push_back(sum);
  }
  S2_RETURN_NOT_OK(reader.Segments(&out->data_segments, "data segments"));
  S2_RETURN_NOT_OK(
      reader.Segments(&out->monitor_segments, "monitor segments"));
  if (!reader.Done()) {
    return Status::Corruption("manifest: trailing bytes");
  }
  return Status::OK();
}

}  // namespace s2::ckpt
