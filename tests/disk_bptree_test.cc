#include "storage/disk_bptree.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace s2::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class DiskBPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("s2_disk_bptree_" +
                     std::string(::testing::UnitTest::GetInstance()
                                     ->current_test_info()
                                     ->name()) +
                     ".db");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

std::vector<std::pair<int64_t, uint64_t>> CollectAll(DiskBPlusTree* tree) {
  std::vector<std::pair<int64_t, uint64_t>> out;
  EXPECT_TRUE(tree->ScanAll([&out](int64_t k, uint64_t v) {
                    out.emplace_back(k, v);
                    return true;
                  })
                  .ok());
  return out;
}

TEST_F(DiskBPlusTreeTest, OpenValidates) {
  EXPECT_FALSE(DiskBPlusTree::Open(path_, 4).ok());  // Pool too small.
  EXPECT_FALSE(DiskBPlusTree::Open("/no/such/dir/tree.db").ok());
}

TEST_F(DiskBPlusTreeTest, EmptyTree) {
  auto tree = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->size(), 0u);
  EXPECT_TRUE(CollectAll(tree->get()).empty());
  auto ok = (*tree)->CheckInvariants();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DiskBPlusTreeTest, InsertAndScanSorted) {
  auto tree = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k : {5, 3, 9, 1, 7, 2, 8, 4, 6, 0}) {
    ASSERT_TRUE((*tree)->Insert(k, static_cast<uint64_t>(k * 10)).ok());
  }
  const auto all = CollectAll(tree->get());
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].first, static_cast<int64_t>(i));
    EXPECT_EQ(all[i].second, i * 10);
  }
}

TEST_F(DiskBPlusTreeTest, RangeScanInclusive) {
  auto tree = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = 0; k < 100; ++k) ASSERT_TRUE((*tree)->Insert(k, 0).ok());
  std::vector<int64_t> seen;
  ASSERT_TRUE((*tree)
                  ->Scan(10, 20,
                         [&seen](int64_t k, uint64_t) {
                           seen.push_back(k);
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), 10);
  EXPECT_EQ(seen.back(), 20);
}

TEST_F(DiskBPlusTreeTest, ManyInsertsForceMultiLevelSplits) {
  auto tree = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(tree.ok());
  Rng rng(1);
  std::multimap<int64_t, uint64_t> model;
  for (uint64_t i = 0; i < 50000; ++i) {
    const int64_t key = rng.UniformInt(0, 5000);
    ASSERT_TRUE((*tree)->Insert(key, i).ok());
    model.emplace(key, i);
  }
  EXPECT_EQ((*tree)->size(), model.size());
  auto ok = (*tree)->CheckInvariants();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  // The file must span multiple levels of pages.
  EXPECT_GT((*tree)->pager()->num_pages(), 200u);

  // Full contents agree with the model.
  auto it = model.begin();
  bool match = true;
  ASSERT_TRUE((*tree)
                  ->ScanAll([&](int64_t k, uint64_t) {
                    if (it == model.end() || it->first != k) {
                      match = false;
                      return false;
                    }
                    ++it;
                    return true;
                  })
                  .ok());
  EXPECT_TRUE(match);
  EXPECT_EQ(it, model.end());
}

TEST_F(DiskBPlusTreeTest, DuplicateKeys) {
  auto tree = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(tree.ok());
  for (uint64_t v = 0; v < 600; ++v) {
    ASSERT_TRUE((*tree)->Insert(7, v).ok());  // More than two leaves of dups.
  }
  std::set<uint64_t> values;
  ASSERT_TRUE((*tree)
                  ->Scan(7, 7,
                         [&values](int64_t, uint64_t v) {
                           values.insert(v);
                           return true;
                         })
                  .ok());
  EXPECT_EQ(values.size(), 600u);
  auto ok = (*tree)->CheckInvariants();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DiskBPlusTreeTest, EraseSpecificPairs) {
  auto tree = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE((*tree)->Insert(1, 100).ok());
  ASSERT_TRUE((*tree)->Insert(1, 200).ok());
  ASSERT_TRUE((*tree)->Insert(2, 300).ok());
  auto erased = (*tree)->Erase(1, 200);
  ASSERT_TRUE(erased.ok());
  EXPECT_TRUE(*erased);
  erased = (*tree)->Erase(1, 200);
  ASSERT_TRUE(erased.ok());
  EXPECT_FALSE(*erased);
  EXPECT_EQ((*tree)->size(), 2u);
  const auto all = CollectAll(tree->get());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].second, 100u);
  EXPECT_EQ(all[1].second, 300u);
}

TEST_F(DiskBPlusTreeTest, PersistenceAcrossReopen) {
  {
    auto tree = DiskBPlusTree::Open(path_);
    ASSERT_TRUE(tree.ok());
    for (int64_t k = 0; k < 2000; ++k) {
      ASSERT_TRUE((*tree)->Insert(k, static_cast<uint64_t>(k + 1)).ok());
    }
    ASSERT_TRUE((*tree)->Flush().ok());
  }  // Destructor also flushes.
  auto reopened = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 2000u);
  const auto all = CollectAll(reopened->get());
  ASSERT_EQ(all.size(), 2000u);
  EXPECT_EQ(all[0].first, 0);
  EXPECT_EQ(all[1999].second, 2000u);
  auto ok = (*reopened)->CheckInvariants();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
}

TEST_F(DiskBPlusTreeTest, TinyBufferPoolStillCorrect) {
  // Pool of 8 frames with a tree of thousands of pairs: constant eviction.
  auto tree = DiskBPlusTree::Open(path_, 8);
  ASSERT_TRUE(tree.ok());
  Rng rng(2);
  std::multimap<int64_t, uint64_t> model;
  for (uint64_t i = 0; i < 10000; ++i) {
    const int64_t key = rng.UniformInt(-1000, 1000);
    ASSERT_TRUE((*tree)->Insert(key, i).ok());
    model.emplace(key, i);
  }
  EXPECT_GT((*tree)->pager()->disk_reads(), 0u);
  EXPECT_GT((*tree)->pager()->disk_writes(), 0u);
  // Spot-check random ranges against the model.
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.UniformInt(-1100, 1100);
    int64_t hi = lo + rng.UniformInt(0, 300);
    size_t expected = 0;
    for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi; ++it) {
      ++expected;
    }
    size_t got = 0;
    ASSERT_TRUE((*tree)
                    ->Scan(lo, hi,
                           [&got](int64_t, uint64_t) {
                             ++got;
                             return true;
                           })
                    .ok());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST_F(DiskBPlusTreeTest, RandomInsertEraseModelCheck) {
  auto tree = DiskBPlusTree::Open(path_, 16);
  ASSERT_TRUE(tree.ok());
  Rng rng(3);
  std::multimap<int64_t, uint64_t> model;
  uint64_t next = 0;
  for (int step = 0; step < 20000; ++step) {
    if (model.empty() || rng.Bernoulli(0.65)) {
      const int64_t key = rng.UniformInt(-200, 200);
      ASSERT_TRUE((*tree)->Insert(key, next).ok());
      model.emplace(key, next);
      ++next;
    } else {
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(model.size()) - 1));
      auto erased = (*tree)->Erase(it->first, it->second);
      ASSERT_TRUE(erased.ok());
      EXPECT_TRUE(*erased);
      model.erase(it);
    }
    ASSERT_EQ((*tree)->size(), model.size());
  }
  auto ok = (*tree)->CheckInvariants();
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);
  std::multiset<std::pair<int64_t, uint64_t>> expect(model.begin(), model.end());
  std::multiset<std::pair<int64_t, uint64_t>> got;
  ASSERT_TRUE((*tree)
                  ->ScanAll([&got](int64_t k, uint64_t v) {
                    got.emplace(k, v);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(got, expect);
}

TEST_F(DiskBPlusTreeTest, ScanEarlyStop) {
  auto tree = DiskBPlusTree::Open(path_);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = 0; k < 50; ++k) ASSERT_TRUE((*tree)->Insert(k, 0).ok());
  int visited = 0;
  ASSERT_TRUE((*tree)
                  ->Scan(0, 49,
                         [&visited](int64_t, uint64_t) {
                           ++visited;
                           return visited < 5;
                         })
                  .ok());
  EXPECT_EQ(visited, 5);
}

TEST_F(DiskBPlusTreeTest, CacheHitsDominateHotWorkload) {
  auto tree = DiskBPlusTree::Open(path_, 64);
  ASSERT_TRUE(tree.ok());
  for (int64_t k = 0; k < 1000; ++k) ASSERT_TRUE((*tree)->Insert(k, 0).ok());
  (*tree)->pager()->ResetCounters();
  for (int repeat = 0; repeat < 50; ++repeat) {
    ASSERT_TRUE((*tree)->Scan(100, 120, [](int64_t, uint64_t) { return true; }).ok());
  }
  EXPECT_GT((*tree)->pager()->cache_hits(),
            50 * ((*tree)->pager()->disk_reads() + 1));
}

}  // namespace
}  // namespace s2::storage
