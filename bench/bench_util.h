#ifndef S2_BENCH_BENCH_UTIL_H_
#define S2_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses: ASCII plotting, small table
// printers, corpus preparation and wall-clock timing. Each bench binary
// reproduces one table/figure of the paper and prints the corresponding
// rows/series to stdout.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dsp/stats.h"
#include "querylog/corpus_generator.h"
#include "timeseries/calendar.h"
#include "timeseries/time_series.h"

namespace s2::bench {

/// Renders `values` as a one-line unicode sparkline of `width` columns.
inline std::string Sparkline(const std::vector<double>& values, size_t width = 96) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  if (values.empty()) return "";
  width = std::min(width, values.size());
  const size_t bucket = (values.size() + width - 1) / width;
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 0 ? hi - lo : 1.0;
  std::string out;
  for (size_t start = 0; start < values.size(); start += bucket) {
    double max_in_bucket = values[start];
    for (size_t i = start; i < std::min(values.size(), start + bucket); ++i) {
      max_in_bucket = std::max(max_in_bucket, values[i]);
    }
    const int level =
        static_cast<int>(std::round((max_in_bucket - lo) / span * 8.0));
    out += kLevels[std::clamp(level, 0, 8)];
  }
  return out;
}

/// Renders a multi-row ASCII chart (height rows) of `values`, with an
/// optional horizontal `threshold` line drawn as '-'.
inline void PrintAsciiChart(const std::vector<double>& values, size_t height = 12,
                            size_t width = 96, double threshold = NAN) {
  if (values.empty()) return;
  width = std::min(width, values.size());
  const size_t bucket = (values.size() + width - 1) / width;
  std::vector<double> cols;
  for (size_t start = 0; start < values.size(); start += bucket) {
    double m = values[start];
    for (size_t i = start; i < std::min(values.size(), start + bucket); ++i) {
      m = std::max(m, values[i]);
    }
    cols.push_back(m);
  }
  double lo = *std::min_element(cols.begin(), cols.end());
  double hi = *std::max_element(cols.begin(), cols.end());
  if (!std::isnan(threshold)) {
    lo = std::min(lo, threshold);
    hi = std::max(hi, threshold);
  }
  const double span = hi - lo > 0 ? hi - lo : 1.0;
  for (size_t row = 0; row < height; ++row) {
    const double level = hi - span * static_cast<double>(row) / (height - 1);
    std::string line;
    const bool is_threshold_row =
        !std::isnan(threshold) &&
        std::abs(level - threshold) <= span / (2.0 * (height - 1));
    for (double c : cols) {
      if (c >= level) {
        line += "#";
      } else if (is_threshold_row) {
        line += "-";
      } else {
        line += " ";
      }
    }
    std::printf("  %10.3f |%s\n", level, line.c_str());
  }
}

/// Month tick ruler for one year of daily data, aligned to `width` columns.
inline void PrintMonthRuler(size_t n_days, size_t width = 96) {
  std::string ruler(std::min(width, n_days), ' ');
  const char* kMonths = "JFMAMJJASOND";
  for (int m = 0; m < 12; ++m) {
    const size_t day = static_cast<size_t>(m * 30.4);
    const size_t col = day * ruler.size() / n_days;
    if (col < ruler.size()) ruler[col] = kMonths[m];
  }
  std::printf("  %10s |%s|\n", "", ruler.c_str());
}

/// Standardizes every series of a corpus into a row matrix.
inline std::vector<std::vector<double>> StandardizedRows(const ts::Corpus& corpus) {
  std::vector<std::vector<double>> rows;
  rows.reserve(corpus.size());
  for (const auto& series : corpus.series()) {
    rows.push_back(dsp::Standardize(series.values));
  }
  return rows;
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Simple "--flag value" argument lookup with a default.
inline size_t ArgSize(int argc, char** argv, const std::string& flag, size_t def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return static_cast<size_t>(std::stoull(argv[i + 1]));
  }
  return def;
}

inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace s2::bench

#endif  // S2_BENCH_BENCH_UTIL_H_
