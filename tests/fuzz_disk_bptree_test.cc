#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fuzz_util.h"
#include "storage/disk_bptree.h"

namespace s2::storage {
namespace {

// Corruption fuzzing for the disk B+-tree: a mutated page file must never
// crash Open, Scan, Insert or Validate — corrupt pages surface as Status.
// The descent depth guards and leaf-chain hop counters are exactly what
// these byte flips exercise.

std::string BuildTreeFile(const std::string& path, s2::Rng* rng) {
  std::remove(path.c_str());
  auto tree = DiskBPlusTree::Open(path, 16);
  EXPECT_TRUE(tree.ok());
  for (int i = 0; i < 600; ++i) {
    EXPECT_TRUE(
        (*tree)->Insert(rng->UniformInt(-1000, 1000), static_cast<uint64_t>(i))
            .ok());
  }
  EXPECT_TRUE((*tree)->Flush().ok());
  return path;
}

TEST(FuzzDiskBPlusTree, MutatedImagesNeverCrash) {
  s2::Rng rng(0xB7EE5EED);
  const std::string path = fuzz::TempPath("s2_fuzz_bptree.db");
  BuildTreeFile(path, &rng);
  const std::vector<char> image = fuzz::ReadFileBytes(path);
  ASSERT_FALSE(image.empty());

  for (int round = 0; round < 150; ++round) {
    fuzz::WriteFileBytes(path, fuzz::Mutate(image, &rng));
    auto tree = DiskBPlusTree::Open(path, 16);
    if (!tree.ok()) {
      EXPECT_NE(tree.status().code(), StatusCode::kOk);
      continue;
    }
    // All of these may fail (with any error code) but must not fault.
    (void)(*tree)->Validate();
    uint64_t scanned = 0;
    (void)(*tree)->ScanAll([&scanned](int64_t, uint64_t) {
      ++scanned;
      return scanned < 10000;
    });
    (void)(*tree)->Scan(-100, 100, [](int64_t, uint64_t) { return true; });
    (void)(*tree)->Insert(42, 42);
    (void)(*tree)->Erase(42, 42);
  }
  std::remove(path.c_str());
}

TEST(FuzzDiskBPlusTree, ValidateDetectsSwappedLeafKeys) {
  s2::Rng rng(11);
  const std::string path = fuzz::TempPath("s2_fuzz_bptree_swap.db");
  std::remove(path.c_str());
  {
    auto tree = DiskBPlusTree::Open(path, 16);
    ASSERT_TRUE(tree.ok());
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE((*tree)->Insert(k, static_cast<uint64_t>(k)).ok());
    }
    ASSERT_TRUE((*tree)->Flush().ok());
    EXPECT_TRUE((*tree)->Validate().ok());
  }
  // Ten pairs fit one leaf: page 1, pairs at offset 8, 16 bytes each
  // (key i64, value u64). Swap the first two keys on disk.
  std::vector<char> image = fuzz::ReadFileBytes(path);
  ASSERT_GE(image.size(), 2 * kPageSize);
  char* leaf = image.data() + kPageSize;
  std::swap_ranges(leaf + 8, leaf + 16, leaf + 24);
  fuzz::WriteFileBytes(path, image);

  auto tree = DiskBPlusTree::Open(path, 16);
  ASSERT_TRUE(tree.ok());
  const Status status = (*tree)->Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("out of order"), std::string::npos);
  auto invariants = (*tree)->CheckInvariants();
  ASSERT_TRUE(invariants.ok());
  EXPECT_FALSE(*invariants);
  std::remove(path.c_str());
}

TEST(FuzzDiskBPlusTree, ValidateDetectsLeafChainCycle) {
  const std::string path = fuzz::TempPath("s2_fuzz_bptree_cycle.db");
  std::remove(path.c_str());
  {
    auto tree = DiskBPlusTree::Open(path, 16);
    ASSERT_TRUE(tree.ok());
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE((*tree)->Insert(k, static_cast<uint64_t>(k)).ok());
    }
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  // Point the lone leaf's next pointer back at itself (offset 4: PageId).
  std::vector<char> image = fuzz::ReadFileBytes(path);
  ASSERT_GE(image.size(), 2 * kPageSize);
  const PageId self = 1;
  std::memcpy(image.data() + kPageSize + 4, &self, sizeof(self));
  fuzz::WriteFileBytes(path, image);

  auto tree = DiskBPlusTree::Open(path, 16);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->Validate().code(), StatusCode::kCorruption);
  // A full scan must terminate (hop counter) instead of looping forever.
  const Status scan = (*tree)->ScanAll([](int64_t, uint64_t) { return true; });
  EXPECT_EQ(scan.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(FuzzDiskBPlusTree, ValidateDetectsMetaSizeMismatch) {
  const std::string path = fuzz::TempPath("s2_fuzz_bptree_meta.db");
  std::remove(path.c_str());
  {
    auto tree = DiskBPlusTree::Open(path, 16);
    ASSERT_TRUE(tree.ok());
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE((*tree)->Insert(k, static_cast<uint64_t>(k)).ok());
    }
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  // Meta page: magic at 0, root PageId at 8, pair count u64 at 12.
  std::vector<char> image = fuzz::ReadFileBytes(path);
  const uint64_t wrong = 99;
  std::memcpy(image.data() + 12, &wrong, sizeof(wrong));
  fuzz::WriteFileBytes(path, image);

  auto tree = DiskBPlusTree::Open(path, 16);
  ASSERT_TRUE(tree.ok());
  const Status status = (*tree)->Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("metadata size"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace s2::storage
