#include "burst/burst_table.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace s2::burst {
namespace {

BurstRegion R(int32_t start, int32_t end, double avg) { return {start, end, avg}; }

TEST(BurstTableTest, EmptyTable) {
  BurstTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.FindOverlapping(R(0, 100, 1.0)).empty());
  EXPECT_TRUE(table.QueryByBurst({R(0, 100, 1.0)}, 5).empty());
}

TEST(BurstTableTest, InsertWithOffsetShiftsDates) {
  BurstTable table;
  table.Insert(3, {R(10, 20, 1.5)}, 1000);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.records()[0].start, 1010);
  EXPECT_EQ(table.records()[0].end, 1020);
  EXPECT_EQ(table.records()[0].series_id, 3u);
}

TEST(BurstTableTest, FindOverlappingMatchesSqlPredicate) {
  BurstTable table;
  table.Insert(0, {R(10, 20, 1.0)}, 0);
  table.Insert(1, {R(15, 30, 1.0)}, 0);
  table.Insert(2, {R(40, 50, 1.0)}, 0);
  table.Insert(3, {R(0, 9, 1.0)}, 0);

  const auto hits = table.FindOverlapping(R(12, 22, 1.0));
  std::vector<ts::SeriesId> ids;
  for (const BurstRecord& r : hits) ids.push_back(r.series_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<ts::SeriesId>{0, 1}));
}

TEST(BurstTableTest, BoundaryOverlapIsInclusive) {
  BurstTable table;
  table.Insert(0, {R(10, 20, 1.0)}, 0);
  EXPECT_EQ(table.FindOverlapping(R(20, 25, 1.0)).size(), 1u);  // Shares day 20.
  EXPECT_EQ(table.FindOverlapping(R(21, 25, 1.0)).size(), 0u);
  EXPECT_EQ(table.FindOverlapping(R(5, 10, 1.0)).size(), 1u);   // Shares day 10.
  EXPECT_EQ(table.FindOverlapping(R(5, 9, 1.0)).size(), 0u);
}

TEST(BurstTableTest, AgreesWithFullScan) {
  Rng rng(1);
  BurstTable table;
  std::vector<BurstRecord> all;
  for (ts::SeriesId id = 0; id < 200; ++id) {
    std::vector<BurstRegion> regions;
    const int n = static_cast<int>(rng.UniformInt(0, 3));
    for (int b = 0; b < n; ++b) {
      const int32_t start = static_cast<int32_t>(rng.UniformInt(0, 1000));
      const int32_t len = static_cast<int32_t>(rng.UniformInt(1, 60));
      regions.push_back(R(start, start + len - 1, rng.Uniform(0.5, 4.0)));
    }
    table.Insert(id, regions, 0);
    for (const BurstRegion& r : regions) {
      all.push_back(BurstRecord{id, r.start, r.end, r.avg_value});
    }
  }
  for (int trial = 0; trial < 50; ++trial) {
    const int32_t qs = static_cast<int32_t>(rng.UniformInt(0, 1000));
    const int32_t qe = qs + static_cast<int32_t>(rng.UniformInt(0, 100));
    const BurstRegion query = R(qs, qe, 1.0);
    auto indexed = table.FindOverlapping(query);
    size_t expected = 0;
    for (const BurstRecord& r : all) {
      if (r.start <= qe && r.end >= qs) ++expected;
    }
    EXPECT_EQ(indexed.size(), expected) << "trial " << trial;
  }
}

TEST(BurstTableTest, QueryByBurstRanksAlignedSeriesFirst) {
  BurstTable table;
  table.Insert(0, {R(100, 130, 2.0)}, 0);  // Perfectly aligned.
  table.Insert(1, {R(120, 160, 2.0)}, 0);  // Partial overlap.
  table.Insert(2, {R(500, 520, 2.0)}, 0);  // No overlap.
  const auto matches = table.QueryByBurst({R(100, 130, 2.0)}, 10);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].series_id, 0u);
  EXPECT_EQ(matches[1].series_id, 1u);
  EXPECT_GT(matches[0].bsim, matches[1].bsim);
}

TEST(BurstTableTest, QueryByBurstAggregatesAcrossBursts) {
  BurstTable table;
  // Series 0 overlaps both query bursts; series 1 only one.
  table.Insert(0, {R(10, 20, 1.0), R(100, 110, 1.0)}, 0);
  table.Insert(1, {R(10, 20, 1.0)}, 0);
  const auto matches =
      table.QueryByBurst({R(10, 20, 1.0), R(100, 110, 1.0)}, 10);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].series_id, 0u);
  EXPECT_NEAR(matches[0].bsim, 2.0, 1e-12);
  EXPECT_NEAR(matches[1].bsim, 1.0, 1e-12);
}

TEST(BurstTableTest, QueryByBurstExcludesSelf) {
  BurstTable table;
  table.Insert(0, {R(10, 20, 1.0)}, 0);
  table.Insert(1, {R(12, 22, 1.0)}, 0);
  const auto matches = table.QueryByBurst({R(10, 20, 1.0)}, 10, /*exclude=*/0);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].series_id, 1u);
}

TEST(BurstTableTest, TopKTruncates) {
  BurstTable table;
  for (ts::SeriesId id = 0; id < 20; ++id) {
    table.Insert(id, {R(100, 120 + static_cast<int32_t>(id), 2.0)}, 0);
  }
  const auto matches = table.QueryByBurst({R(100, 120, 2.0)}, 5);
  EXPECT_EQ(matches.size(), 5u);
  // Descending scores.
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].bsim, matches[i].bsim);
  }
}

TEST(BurstTableTest, StorageIsCompact) {
  BurstTable table;
  table.Insert(0, {R(10, 20, 1.0), R(30, 40, 2.0)}, 0);
  // Two records, far below the footprint of a 1024-double sequence.
  EXPECT_LE(table.StorageBytes(), 2 * sizeof(BurstRecord));
  EXPECT_LT(table.StorageBytes(), 1024 * sizeof(double));
}

TEST(BurstTableTest, ScanStatisticsExposed) {
  BurstTable table;
  for (ts::SeriesId id = 0; id < 100; ++id) {
    table.Insert(id, {R(static_cast<int32_t>(id * 10), static_cast<int32_t>(id * 10 + 5), 1.0)}, 0);
  }
  table.FindOverlapping(R(0, 50, 1.0));
  // The index scan stops at startDate <= 50: only ~6 records touched.
  EXPECT_LE(table.last_scanned(), 7u);
}

}  // namespace
}  // namespace s2::burst
