#include "service/s2_server.h"

#include <bit>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "diag/check.h"

namespace s2::service {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::microseconds Since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start);
}

CacheKey KeyFor(const QueryRequest& request) {
  CacheKey key;
  key.kind = request.kind;
  key.id = request.id;
  key.k = request.k;
  key.horizon = (request.kind == RequestKind::kBurstsOf ||
                 request.kind == RequestKind::kQueryByBurst)
                    ? static_cast<int>(request.horizon)
                    : 0;
  if (request.kind == RequestKind::kApproxKnn) {
    // Approximate answers live under their own cache identity: the quality
    // tier keeps them from ever serving an exact request, and the knobs are
    // folded into param_hash because different knobs produce different
    // candidate sets — different answers.
    key.quality = AnswerQuality::kApproximate;
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(std::bit_cast<uint64_t>(request.recall_target));
    mix(static_cast<uint64_t>(request.max_candidates));
    key.param_hash = h;
  }
  return key;
}

/// Copies a Result's payload into the response or records its error.
template <typename T>
void Fill(Result<T> result, T* payload, QueryResponse* response) {
  if (result.ok()) {
    *payload = std::move(result).value();
  } else {
    response->status = result.status();
  }
}

/// Failures of the serving substrate (disk, retries exhausted, corrupted
/// bytes) — the conditions the degradation ladder exists for. Caller errors
/// (NotFound, InvalidArgument, OutOfRange...) pass through untouched:
/// degrading those would mask real bugs in the request.
bool IsInfrastructureFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:
    case StatusCode::kIoTransient:
    case StatusCode::kUnavailable:
    case StatusCode::kCorruption:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::unique_ptr<S2Server> S2Server::Create(core::S2Engine engine,
                                           const Options& options) {
  return std::unique_ptr<S2Server>(
      new S2Server(std::move(engine), std::nullopt, options));
}

std::unique_ptr<S2Server> S2Server::Create(shard::ShardedEngine engine,
                                           const Options& options) {
  return std::unique_ptr<S2Server>(
      new S2Server(std::nullopt, std::move(engine), options));
}

Result<std::unique_ptr<S2Server>> S2Server::Build(
    ts::Corpus corpus, const core::S2Engine::Options& engine_options,
    const Options& options) {
  if (options.shards == 1) {
    S2_ASSIGN_OR_RETURN(core::S2Engine engine,
                        core::S2Engine::Build(std::move(corpus), engine_options));
    std::unique_ptr<S2Server> server = Create(std::move(engine), options);
    S2_RETURN_NOT_OK(server->OpenWal());
    return server;
  }
  shard::ShardedEngine::Options shard_options;
  shard_options.num_shards = options.shards;
  shard_options.engine = engine_options;
  shard_options.shard_envs = options.shard_envs;
  S2_ASSIGN_OR_RETURN(shard::ShardedEngine engine,
                      shard::ShardedEngine::Build(std::move(corpus), shard_options));
  std::unique_ptr<S2Server> server = Create(std::move(engine), options);
  S2_RETURN_NOT_OK(server->OpenWal());
  return server;
}

Result<std::unique_ptr<S2Server>> S2Server::Recover(
    ts::Corpus corpus, const core::S2Engine::Options& engine_options,
    const Options& options) {
  if (options.wal_path.empty() || !options.checkpoint_enabled) {
    return Build(std::move(corpus), engine_options, options);
  }
  ckpt::CheckpointStore store(options.wal_env, options.wal_path);
  Result<ckpt::CheckpointStore::Loaded> loaded = store.Load();
  if (!loaded.ok()) {
    // NotFound: cold start, nothing checkpointed yet. Corruption: no
    // recorded generation validates — the full WAL over the base corpus
    // is the last resort (it only exists while GC has not reclaimed the
    // early segments; past that the open surfaces the corruption).
    return Build(std::move(corpus), engine_options, options);
  }
  ckpt::CheckpointStore::Loaded checkpoint = std::move(loaded).value();

  // Rebuild the engine from the snapshot's corpus image (global id
  // order, so any shard count maps it identically to a full replay).
  ts::Corpus image;
  for (ts::TimeSeries& series : checkpoint.snapshot.corpus) {
    image.Add(std::move(series));
  }
  std::unique_ptr<S2Server> server;
  if (options.shards == 1) {
    S2_ASSIGN_OR_RETURN(core::S2Engine engine,
                        core::S2Engine::Build(std::move(image), engine_options));
    server = Create(std::move(engine), options);
  } else {
    shard::ShardedEngine::Options shard_options;
    shard_options.num_shards = options.shards;
    shard_options.engine = engine_options;
    shard_options.shard_envs = options.shard_envs;
    S2_ASSIGN_OR_RETURN(
        shard::ShardedEngine engine,
        shard::ShardedEngine::Build(std::move(image), shard_options));
    server = Create(std::move(engine), options);
  }

  // Cross-check the rebuilt corpus against the manifest's recorded
  // per-shard checksums when the topology matches (a different shard
  // count relocates series between shards, so the per-shard sums are
  // incomparable — the snapshot's own container checksum already vouched
  // for the bytes). The manifest records the *current* generation's
  // checksums, so the check also doesn't apply when recovery fell back
  // to the previous snapshot. A mismatch means the snapshot and manifest
  // disagree about the data; fall back to the full-replay path rather
  // than serve an image of unknown pedigree.
  bool checksums_ok = true;
  const ckpt::Manifest& manifest = checkpoint.manifest;
  if (checkpoint.from_fallback) {
    // Only the container checksum vouches for the fallback snapshot.
  } else if (!server->is_sharded()) {
    if (manifest.shard_count == 1 && manifest.shard_checksums.size() == 1) {
      checksums_ok =
          ckpt::CheckpointStore::CorpusChecksum(
              server->engine_->corpus().series()) ==
          manifest.shard_checksums[0];
    }
  } else if (server->sharded_->num_shards() == manifest.shard_count &&
             manifest.shard_checksums.size() == manifest.shard_count) {
    for (size_t s = 0; s < manifest.shard_count; ++s) {
      if (ckpt::CheckpointStore::CorpusChecksum(
              server->sharded_->shard(s).corpus().series()) !=
          manifest.shard_checksums[s]) {
        checksums_ok = false;
        break;
      }
    }
  }
  if (!checksums_ok) {
    return Build(std::move(corpus), engine_options, options);
  }

  S2_RETURN_NOT_OK(server->RestoreFromSnapshot(checkpoint));
  S2_RETURN_NOT_OK(server->OpenWal());
  return server;
}

Status S2Server::RestoreFromSnapshot(
    const ckpt::CheckpointStore::Loaded& loaded) {
  sync::WriterMutexLock lock(&engine_mu_);
  // Subscriptions restore in id order — the order they registered in,
  // which (ids being assigned under the writer lock) is also per-series
  // evaluation order. The hysteresis state installs verbatim; no silent
  // re-arming against the rebuilt window.
  for (const monitor::SubscriptionRegistry::Entry& entry :
       loaded.snapshot.subscriptions) {
    if (is_sharded()) {
      S2_RETURN_NOT_OK(sharded_->RestoreSubscription(entry.sub, entry.engaged,
                                                     entry.bin));
    } else {
      S2_RETURN_NOT_OK(engine_->RestoreSubscription(
          entry.sub.series, entry.sub, entry.engaged, entry.bin));
    }
  }
  alert_queue_.Restore(loaded.snapshot.alerts);
  next_subscription_id_ = loaded.snapshot.next_subscription_id;
  recovery_anchor_appends_ = loaded.snapshot.anchor_appends;
  recovery_anchor_monitor_ops_ = loaded.snapshot.anchor_monitor_ops;
  recovered_from_checkpoint_ = true;
  recovered_from_fallback_ = loaded.from_fallback;
  last_checkpoint_records_ = loaded.snapshot.anchor_appends;
  last_checkpoint_generation_ = loaded.from_fallback
                                    ? loaded.manifest.prev.generation
                                    : loaded.manifest.current.generation;
  last_checkpoint_anchor_appends_ = loaded.snapshot.anchor_appends;
  last_checkpoint_anchor_monitor_ops_ = loaded.snapshot.anchor_monitor_ops;
  return Status::OK();
}

S2Server::S2Server(std::optional<core::S2Engine> engine,
                   std::optional<shard::ShardedEngine> sharded,
                   const Options& options)
    : engine_(std::move(engine)),
      sharded_(std::move(sharded)),
      options_(options),
      cache_(options.cache_capacity, &metrics_),
      breaker_(options.breaker),
      engine_calls_(metrics_.counter("server_engine_calls")),
      degraded_(metrics_.counter("server_degraded")),
      shed_(metrics_.counter("server_shed")),
      shard_fanout_(metrics_.counter("server_shard_fanout")),
      shard_prune_hits_(metrics_.counter("server_shard_prune_hits")),
      shard_latency_(metrics_.histogram("server_shard_latency")),
      approx_queries_(metrics_.counter("approx_queries")),
      approx_guaranteed_(metrics_.counter("approx_guaranteed_exact")),
      approx_degraded_(metrics_.counter("approx_degraded")),
      approx_candidates_(metrics_.histogram("approx_candidates")),
      retry_attempts_(metrics_.counter("server_retry_attempts")),
      retry_giveups_(metrics_.counter("server_retry_giveups")),
      breaker_trips_(metrics_.counter("server_breaker_trips")),
      stream_appends_(metrics_.counter("stream_appends")),
      stream_compactions_(metrics_.counter("stream_compactions")),
      stream_compacted_series_(metrics_.counter("stream_compacted_series")),
      stream_replay_records_(metrics_.counter("stream_replay_records")),
      stream_append_latency_(metrics_.histogram("stream_append_latency")),
      stream_compaction_latency_(metrics_.histogram("stream_compaction_latency")),
      monitor_subscribes_(metrics_.counter("monitor_subscriptions")),
      monitor_unsubscribes_(metrics_.counter("monitor_unsubscribes")),
      monitor_alerts_fired_(metrics_.counter("monitor_alerts_fired")),
      monitor_alerts_dropped_(metrics_.counter("monitor_alerts_dropped")),
      monitor_alerts_delivered_(metrics_.counter("monitor_alerts_delivered")),
      monitor_eval_latency_(metrics_.histogram("monitor_eval_latency")),
      stream_replay_dropped_(metrics_.counter("stream_replay_dropped_bytes")),
      monitor_replay_ops_(metrics_.counter("monitor_replay_ops")),
      monitor_replay_dropped_(
          metrics_.counter("monitor_replay_dropped_bytes")),
      checkpoint_count_(metrics_.counter("checkpoint_count")),
      checkpoint_failures_(metrics_.counter("checkpoint_failures")),
      checkpoint_gc_segments_(metrics_.counter("checkpoint_gc_segments")),
      checkpoint_gc_snapshots_(metrics_.counter("checkpoint_gc_snapshots")),
      checkpoint_latency_(metrics_.histogram("checkpoint_latency")),
      alert_queue_(monitor::AlertQueue::Options{options.alert_queue_capacity}) {
  // Every shard (or the single engine) pushes fired alerts into the one
  // server-owned queue; appends are serialized by the writer lock, so
  // sequence numbers are assigned in a shard-count-invisible order.
  if (engine_.has_value()) {
    engine_->set_alert_queue(&alert_queue_);
  } else {
    sharded_->set_alert_queue(&alert_queue_);
  }
  // Checkpoints live next to the WAL and require one.
  if (options.checkpoint_enabled && !options.wal_path.empty()) {
    checkpoint_store_ = std::make_unique<ckpt::CheckpointStore>(
        options.wal_env, options.wal_path);
  }
  // One dedicated maintenance thread keeps compaction and checkpointing
  // off the query workers (both take the writer lock at least briefly;
  // running them on a scheduler worker would stall a serving slot).
  if (options.compaction_threshold > 0 || checkpoint_store_ != nullptr) {
    maintenance_ = std::make_unique<exec::ThreadPool>(1);
  }
  // The scheduler is built last: its workers may call Execute (via the
  // handler) as soon as requests arrive, so everything above must be live.
  scheduler_ = std::make_unique<Scheduler>(
      options.scheduler,
      [this](const QueryRequest& request) { return Execute(request); },
      &metrics_);
}

void S2Server::Dispatch(const QueryRequest& request, QueryResponse* response) {
  if (!is_sharded()) {
    switch (request.kind) {
      case RequestKind::kSimilarTo:
        Fill(engine_->SimilarTo(request.id, request.k), &response->neighbors,
             response);
        break;
      case RequestKind::kSimilarToDtw:
        Fill(engine_->SimilarToDtw(request.id, request.k), &response->neighbors,
             response);
        break;
      case RequestKind::kPeriodsOf:
        Fill(engine_->FindPeriods(request.id), &response->periods, response);
        break;
      case RequestKind::kBurstsOf:
        Fill(engine_->BurstsOf(request.id, request.horizon), &response->bursts,
             response);
        break;
      case RequestKind::kQueryByBurst:
        Fill(engine_->QueryByBurst(request.id, request.k, request.horizon),
             &response->burst_matches, response);
        break;
      case RequestKind::kApproxKnn: {
        approx::QueryParams params;
        params.k = request.k;
        params.recall_target = request.recall_target;
        params.max_candidates = request.max_candidates;
        auto result = engine_->ApproxKnn(request.id, params);
        if (result.ok()) {
          core::S2Engine::ApproxAnswer answer = std::move(result).ValueOrDie();
          response->neighbors = std::move(answer.neighbors);
          response->quality = answer.bound;
          response->approximate = true;
          approx_queries_->Increment();
          if (answer.bound.guaranteed_exact) approx_guaranteed_->Increment();
          approx_candidates_->Record(answer.bound.candidates);
        } else {
          response->status = result.status();
        }
        break;
      }
    }
    return;
  }

  shard::ShardedEngine::QueryStats stats;
  switch (request.kind) {
    case RequestKind::kSimilarTo:
      Fill(sharded_->SimilarTo(request.id, request.k, &stats),
           &response->neighbors, response);
      break;
    case RequestKind::kSimilarToDtw:
      Fill(sharded_->SimilarToDtw(request.id, request.k, &stats),
           &response->neighbors, response);
      break;
    case RequestKind::kPeriodsOf:
      Fill(sharded_->FindPeriods(request.id), &response->periods, response);
      stats.fanout = 1;  // Owner-routed.
      break;
    case RequestKind::kBurstsOf:
      Fill(sharded_->BurstsOf(request.id, request.horizon), &response->bursts,
           response);
      stats.fanout = 1;  // Owner-routed.
      break;
    case RequestKind::kQueryByBurst:
      Fill(sharded_->QueryByBurst(request.id, request.k, request.horizon,
                                  &stats),
           &response->burst_matches, response);
      break;
    case RequestKind::kApproxKnn: {
      approx::QueryParams params;
      params.k = request.k;
      params.recall_target = request.recall_target;
      params.max_candidates = request.max_candidates;
      auto result = sharded_->ApproxKnn(request.id, params, &stats);
      if (result.ok()) {
        core::S2Engine::ApproxAnswer answer = std::move(result).ValueOrDie();
        response->neighbors = std::move(answer.neighbors);
        response->quality = answer.bound;
        response->approximate = true;
        approx_queries_->Increment();
        if (answer.bound.guaranteed_exact) approx_guaranteed_->Increment();
        approx_candidates_->Record(answer.bound.candidates);
      } else {
        response->status = result.status();
      }
      break;
    }
  }
  shard_fanout_->Increment(stats.fanout);
  shard_prune_hits_->Increment(stats.shared_radius_prunes);
  for (const std::chrono::microseconds& lat : stats.shard_latencies) {
    shard_latency_->Record(static_cast<uint64_t>(lat.count()));
  }
}

QueryResponse S2Server::Execute(const QueryRequest& request) {
  QueryResponse response;
  const CacheKey key = KeyFor(request);
  if (std::optional<QueryResponse> hit = cache_.Lookup(key)) {
    return *std::move(hit);
  }

  // Ladder step 3: while the breaker is open, shed fast instead of queueing
  // more work onto a known-bad primary path. Cache hits (above) still serve.
  if (!breaker_.AllowRequest()) {
    shed_->Increment();
    response.status =
        Status::Unavailable("S2Server: circuit open, request shed");
    return response;
  }

  {
    sync::ReaderMutexLock lock(&engine_mu_);
    engine_calls_->Increment();
    Dispatch(request, &response);
    if (response.status.ok()) {
      breaker_.RecordSuccess();
      // Insert before releasing the shared lock: inserting after release
      // could race an AddSeries invalidation and re-publish a stale answer.
      cache_.Insert(key, response);
    } else if (IsInfrastructureFailure(response.status)) {
      breaker_.RecordFailure();
      if (options_.degrade_on_failure) {
        // Ladder step 2, still under the shared lock (the fallback reads the
        // engine's RAM rows). Degraded answers are exact but bypass the
        // index, so they are deliberately not cached: the next request
        // probes the primary path again.
        response = Degrade(request, std::move(response));
      }
    } else {
      // Caller errors (NotFound, InvalidArgument...) say nothing bad about
      // the serving substrate, but the breaker must still hear the outcome:
      // if this request was the half-open probe, staying silent would leak
      // the probe slot and shed all future traffic forever.
      breaker_.RecordNonFailure();
    }
  }

  SyncResilienceMetrics();
  return response;
}

QueryResponse S2Server::Degrade(const QueryRequest& request,
                                QueryResponse primary) {
  QueryResponse fallback;
  switch (request.kind) {
    case RequestKind::kSimilarTo:
      // Ladder rung 2a: a request that opted into the approximate tier (by
      // setting a quality knob) is re-answered there first — RAM-only like
      // the exact scan but orders of magnitude cheaper, with the quality
      // bound attached. Knob-free requests skip straight to the exact scan:
      // they asked for exact answers and degradation must not change that.
      if (options_.degrade_to_approx &&
          (request.recall_target > 0.0 || request.max_candidates > 0)) {
        approx::QueryParams params;
        params.k = request.k;
        params.recall_target = request.recall_target;
        params.max_candidates = request.max_candidates;
        auto result = is_sharded()
                          ? sharded_->ApproxKnn(request.id, params)
                          : engine_->ApproxKnn(request.id, params);
        if (result.ok()) {
          core::S2Engine::ApproxAnswer answer = std::move(result).ValueOrDie();
          fallback.neighbors = std::move(answer.neighbors);
          fallback.quality = answer.bound;
          fallback.approximate = true;
          fallback.degraded = true;
          degraded_->Increment();
          approx_queries_->Increment();
          approx_degraded_->Increment();
          if (answer.bound.guaranteed_exact) approx_guaranteed_->Increment();
          approx_candidates_->Record(answer.bound.candidates);
          return fallback;
        }
        // The approximate tier is disabled or unusable: fall through to the
        // exact RAM scan, rung 2b.
      }
      Fill(is_sharded() ? sharded_->SimilarToExact(request.id, request.k)
                        : engine_->SimilarToExact(request.id, request.k),
           &fallback.neighbors, &fallback);
      break;
    case RequestKind::kSimilarToDtw:
      Fill(is_sharded() ? sharded_->SimilarToDtwExact(request.id, request.k)
                        : engine_->SimilarToDtwExact(request.id, request.k),
           &fallback.neighbors, &fallback);
      break;
    default:
      // Periods and bursts already run purely on RAM structures; an
      // infrastructure failure there has no cheaper path to fall back to.
      return primary;
  }
  if (!fallback.status.ok()) return primary;
  fallback.degraded = true;
  degraded_->Increment();
  return fallback;
}

void S2Server::SyncResilienceMetrics() {
  // Read the source counters before taking export_mu_: the breaker's mutex
  // (kCircuitBreaker) ranks below kMetricsExport, so the locks must be
  // sequential, not nested — same shape as SyncMonitorMetrics.
  uint64_t retries = 0;
  uint64_t giveups = 0;
  if (is_sharded()) {
    retries = sharded_->TotalRetryCount();
    giveups = sharded_->TotalGiveupCount();
  } else if (const resilience::RetryingSequenceSource* rs =
                 engine_->retry_source()) {
    retries = rs->retry_count();
    giveups = rs->giveup_count();
  }
  const uint64_t trips = breaker_.trip_count();
  sync::MutexLock lock(&export_mu_);
  retry_attempts_->Increment(retries - exported_retries_);
  retry_giveups_->Increment(giveups - exported_giveups_);
  exported_retries_ = retries;
  exported_giveups_ = giveups;
  breaker_trips_->Increment(trips - exported_trips_);
  exported_trips_ = trips;
}

Result<ts::SeriesId> S2Server::AddSeries(ts::TimeSeries series) {
  sync::WriterMutexLock lock(&engine_mu_);
  ts::SeriesId id = ts::kInvalidSeriesId;
  if (is_sharded()) {
    // The sharded engine routes to its least-loaded shard itself.
    S2_ASSIGN_OR_RETURN(id, sharded_->AddSeries(std::move(series)));
    S2_DCHECK_OK(sharded_->ValidateInvariants());
  } else {
    S2_ASSIGN_OR_RETURN(id, engine_->AddSeries(std::move(series)));
    // Checked builds re-validate the whole engine while no reader can
    // observe it (we still hold the writer lock).
    S2_DCHECK_OK(engine_->ValidateInvariants());
  }
  // Invalidate while still holding the writer lock: a reader admitted after
  // us must not see a stale answer re-inserted for the old corpus. Only the
  // answers a new series can change are dropped — cached periods/bursts of
  // existing series are untouched by an append and survive.
  cache_.InvalidateCrossSeries();
  return id;
}

Status S2Server::EngineAppend(ts::SeriesId id, double value) {
  return is_sharded() ? sharded_->AppendPoint(id, value)
                      : engine_->AppendPoint(id, value);
}

size_t S2Server::EngineDeltaSize() const {
  return is_sharded() ? sharded_->TotalDeltaSize() : engine_->delta_size();
}

Status S2Server::ApplyMonitorOpsUpTo(uint64_t upto, ReplayState* state) {
  const std::vector<monitor::MonitorOp>& ops = *state->ops;
  while (state->next_op < ops.size() && ops[state->next_op].anchor <= upto) {
    S2_RETURN_NOT_OK(ApplyMonitorOp(ops[state->next_op]));
    ++state->next_op;
  }
  return Status::OK();
}

Status S2Server::ReplayWalRecord(const stream::WalRecord& record,
                                 ReplayState* state) {
  // OpenWal holds the writer lock across the whole replay; see the header
  // for why this function opts out of the static analysis.
  S2_RETURN_NOT_OK(ApplyMonitorOpsUpTo(state->applied_appends, state));
  S2_RETURN_NOT_OK(EngineAppend(record.series_id, record.value));
  ++state->applied_appends;
  return Status::OK();
}

Status S2Server::OpenWal() {
  if (options_.wal_path.empty()) return Status::OK();
  const Clock::time_point start = Clock::now();
  sync::WriterMutexLock lock(&engine_mu_);
  // Checked under the lock (it used to be a pre-lock fast path): two racing
  // OpenWal calls must not both observe "no WAL yet" and replay twice.
  if (wal_ != nullptr) return Status::OK();

  // Subscription-lifecycle ops are decoded first, then merged into the
  // append replay below by their stream anchor: an op logged after N
  // acknowledged appends re-applies after exactly N replayed appends. A
  // replayed subscription therefore arms against the very window it
  // originally armed against and the re-fired alert stream — sequence
  // numbers included — reproduces the pre-crash run; replayed acks then
  // retire exactly the acknowledged range (monitor_equivalence_test pins
  // this with a crash-point sweep).
  std::vector<monitor::MonitorOp> ops;
  monitor::MonitorWal::ReplayInfo monitor_replay;
  monitor::MonitorWal::Options monitor_options;
  monitor_options.rotate_bytes = options_.wal_rotate_bytes;
  monitor_options.replay_from = recovery_anchor_monitor_ops_;
  S2_ASSIGN_OR_RETURN(
      monitor_wal_,
      monitor::MonitorWal::Open(options_.wal_env,
                                options_.wal_path + ".monitor", &ops,
                                &monitor_replay, monitor_options));
  ReplayState state;
  state.ops = &ops;
  // Checkpoint recovery: the snapshot already holds everything at or
  // before the anchors, so the WALs deliver only their tails and the
  // replay cursor starts at the anchor (monitor ops are merged by
  // absolute append position either way).
  state.applied_appends = recovery_anchor_appends_;

  stream::Wal::Options wal_options;
  wal_options.sync_every = options_.wal_sync_every;
  wal_options.rotate_bytes = options_.wal_rotate_bytes;
  wal_options.replay_from = recovery_anchor_appends_;
  stream::Wal::ReplayInfo info;
  S2_ASSIGN_OR_RETURN(
      wal_, stream::Wal::Open(
                options_.wal_env, options_.wal_path,
                [this, &state](const stream::WalRecord& record) {
                  return ReplayWalRecord(record, &state);
                },
                &info, wal_options));
  // Ops anchored past the last intact append (their appends tore off, or
  // none followed) re-arm against the final replayed window.
  S2_RETURN_NOT_OK(
      ApplyMonitorOpsUpTo(std::numeric_limits<uint64_t>::max(), &state));
  replayed_monitor_ops_ = ops.size();
  monitor_replay_dropped_bytes_ = monitor_replay.dropped_bytes;

  replayed_records_ = info.records;
  replay_dropped_bytes_ = info.dropped_bytes;
  replay_time_ = Since(start);
  stream_replay_records_->Increment(info.records);
  stream_replay_dropped_->Increment(info.dropped_bytes);
  monitor_replay_ops_->Increment(ops.size());
  monitor_replay_dropped_->Increment(monitor_replay.dropped_bytes);
  SyncMonitorMetrics();
  // Replay mutated the engine; any entries cached before this call (Create +
  // manual OpenWal usage) are stale for the replayed series.
  if (info.records > 0) cache_.Invalidate();
  return Status::OK();
}

Status S2Server::EngineSubscribe(monitor::Subscription sub) {
  if (is_sharded()) return sharded_->Subscribe(std::move(sub));
  const ts::SeriesId key = sub.series;
  return engine_->Subscribe(key, std::move(sub));
}

Status S2Server::EngineUnsubscribe(monitor::SubscriptionId id) {
  return is_sharded() ? sharded_->Unsubscribe(id) : engine_->Unsubscribe(id);
}

bool S2Server::EngineHasSubscription(monitor::SubscriptionId id) const {
  if (is_sharded()) {
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      if (sharded_->shard(s).monitor_registry().Contains(id)) return true;
    }
    return false;
  }
  return engine_->monitor_registry().Contains(id);
}

size_t S2Server::EngineSubscriptionCount() const {
  return is_sharded() ? sharded_->ActiveSubscriptionCount()
                      : engine_->monitor_registry().size();
}

Status S2Server::ApplyMonitorOp(const monitor::MonitorOp& op) {
  switch (op.op) {
    case monitor::MonitorOp::Kind::kSubscribe:
      S2_RETURN_NOT_OK(EngineSubscribe(op.sub));
      if (op.sub.id >= next_subscription_id_) {
        next_subscription_id_ = op.sub.id + 1;
      }
      return Status::OK();
    case monitor::MonitorOp::Kind::kUnsubscribe:
      return EngineUnsubscribe(op.sub.id);
    case monitor::MonitorOp::Kind::kAck:
      alert_queue_.Ack(op.ack_upto);
      return Status::OK();
  }
  return Status::Corruption("S2Server: unknown monitor op");
}

Result<monitor::SubscriptionId> S2Server::Subscribe(monitor::Subscription sub) {
  sync::WriterMutexLock lock(&engine_mu_);
  sub.id = next_subscription_id_;
  monitor::MonitorOp op;
  op.op = monitor::MonitorOp::Kind::kSubscribe;
  op.anchor = wal_ != nullptr ? wal_->record_count() : 0;
  op.sub = sub;
  // Apply first (registration is in-memory and validates everything), log
  // second: a caller error never reaches the log, and a log failure rolls
  // the registration back — the subscription is only acknowledged once it
  // is both armed and durable.
  S2_RETURN_NOT_OK(EngineSubscribe(sub));
  if (monitor_wal_ != nullptr) {
    const Status logged = monitor_wal_->Append(op);
    if (!logged.ok()) {
      (void)EngineUnsubscribe(sub.id);
      return logged;
    }
  }
  ++next_subscription_id_;
  monitor_subscribes_->Increment();
  return sub.id;
}

Status S2Server::Unsubscribe(monitor::SubscriptionId id) {
  sync::WriterMutexLock lock(&engine_mu_);
  // Validate before logging, like AppendPoint: a cancellation of an unknown
  // id must not poison the log for every future replay.
  if (!EngineHasSubscription(id)) {
    return Status::NotFound("S2Server: no subscription with id " +
                            std::to_string(id));
  }
  if (monitor_wal_ != nullptr) {
    monitor::MonitorOp op;
    op.op = monitor::MonitorOp::Kind::kUnsubscribe;
    op.anchor = wal_ != nullptr ? wal_->record_count() : 0;
    op.sub.id = id;
    S2_RETURN_NOT_OK(monitor_wal_->Append(op));
  }
  S2_RETURN_NOT_OK(EngineUnsubscribe(id));
  monitor_unsubscribes_->Increment();
  return Status::OK();
}

std::vector<monitor::Alert> S2Server::PollAlerts(size_t max) {
  std::vector<monitor::Alert> alerts = alert_queue_.Poll(max);
  SyncMonitorMetrics();
  return alerts;
}

Status S2Server::AckAlerts(uint64_t upto_seq) {
  sync::WriterMutexLock lock(&engine_mu_);
  if (monitor_wal_ != nullptr) {
    monitor::MonitorOp op;
    op.op = monitor::MonitorOp::Kind::kAck;
    op.anchor = wal_ != nullptr ? wal_->record_count() : 0;
    op.ack_upto = upto_seq;
    S2_RETURN_NOT_OK(monitor_wal_->Append(op));
  }
  alert_queue_.Ack(upto_seq);
  return Status::OK();
}

void S2Server::SyncMonitorMetrics() {
  const monitor::AlertQueue::Stats stats = alert_queue_.stats();
  sync::MutexLock lock(&export_mu_);
  monitor_alerts_fired_->Increment(stats.fired - exported_fired_);
  monitor_alerts_dropped_->Increment(stats.dropped - exported_dropped_);
  monitor_alerts_delivered_->Increment(stats.delivered - exported_delivered_);
  exported_fired_ = stats.fired;
  exported_dropped_ = stats.dropped;
  exported_delivered_ = stats.delivered;
  if (stats.evaluations > exported_evals_) {
    // One sample per sync keeps the histogram a sample of evaluation cost
    // rather than a full census; the append path syncs after every append,
    // so under serial appends it is a census anyway.
    monitor_eval_latency_->Record(stats.last_eval_micros);
    exported_evals_ = stats.evaluations;
  }
}

S2Server::MonitorInfo S2Server::monitor_info() {
  sync::ReaderMutexLock lock(&engine_mu_);
  MonitorInfo info;
  info.wal_enabled = monitor_wal_ != nullptr;
  info.replayed_ops = replayed_monitor_ops_;
  info.replay_dropped_bytes = monitor_replay_dropped_bytes_;
  info.active_subscriptions = EngineSubscriptionCount();
  const monitor::AlertQueue::Stats stats = alert_queue_.stats();
  info.queue_depth = stats.depth;
  info.next_seq = stats.next_seq;
  info.acked_upto = stats.acked_upto;
  info.any_acked = stats.any_acked;
  info.alerts_fired = stats.fired;
  info.alerts_dropped = stats.dropped;
  info.alerts_delivered = stats.delivered;
  info.alerts_acked = stats.acked;
  return info;
}

Status S2Server::AppendPoint(ts::SeriesId id, double value) {
  const Clock::time_point start = Clock::now();
  sync::WriterMutexLock lock(&engine_mu_);
  // Validate before logging: a caller error (bad id, non-finite value) must
  // not leave a poison record in the WAL that every future replay trips on.
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("S2Server: appended value must be finite");
  }
  const size_t corpus_size = is_sharded() ? sharded_->size()
                                          : engine_->corpus().size();
  if (id >= corpus_size) {
    return Status::NotFound("S2Server: no series with id " + std::to_string(id));
  }
  if (wal_ != nullptr) {
    // Durable acknowledgement first. On error the log is unchanged (WAL
    // contract) and the engine was never touched — the caller may retry.
    S2_RETURN_NOT_OK(wal_->Append({id, value}));
  }
  const Status applied = EngineAppend(id, value);
  // Even a failed apply may have moved state (the engine's rollback is
  // best-effort on disk faults), so drop the affected cache entries either
  // way — while still holding the writer lock, for the same reason as
  // AddSeries.
  cache_.InvalidateForAppend(id);
  S2_RETURN_NOT_OK(applied);
  stream_appends_->Increment();
  stream_append_latency_->Record(static_cast<uint64_t>(Since(start).count()));
  SyncMonitorMetrics();
  MaybeScheduleCompaction();
  MaybeScheduleCheckpoint();
  return Status::OK();
}

Status S2Server::Compact() {
  const Clock::time_point start = Clock::now();
  sync::WriterMutexLock lock(&engine_mu_);
  const size_t before = EngineDeltaSize();
  if (before == 0) return Status::OK();
  S2_RETURN_NOT_OK(is_sharded() ? sharded_->Compact() : engine_->Compact());
  // No cache invalidation: compaction moves series between tiers without
  // changing any answer (the two-tier search is exact).
  stream_compactions_->Increment();
  stream_compacted_series_->Increment(before - EngineDeltaSize());
  stream_compaction_latency_->Record(
      static_cast<uint64_t>(Since(start).count()));
  return Status::OK();
}

void S2Server::MaybeScheduleCompaction() {
  if (maintenance_ == nullptr || options_.compaction_threshold == 0) return;
  // The caller holds the exclusive engine lock, so this delta-size snapshot
  // and the inflight-flag transition are one atomic scheduling step — no
  // append can interleave between the check and the claim.
  if (EngineDeltaSize() < options_.compaction_threshold) return;
  // At most one background compaction in flight. Appends that cross the
  // threshold while one runs skip scheduling here; BackgroundCompaction's
  // locked re-check before releasing the flag picks their delta up.
  if (compaction_inflight_.exchange(true, std::memory_order_acq_rel)) return;
  const bool submitted =
      maintenance_->Submit([this] { BackgroundCompaction(); });
  if (!submitted) {
    compaction_inflight_.store(false, std::memory_order_release);
  }
}

void S2Server::BackgroundCompaction() {
  for (;;) {
    // Errors are not fatal to serving: the delta tier keeps answering
    // queries exactly; the next threshold crossing retries the merge.
    const Status status = Compact();
    // Release the flag only after re-reading the delta size under the same
    // lock appends take their snapshot under. Every threshold-crossing
    // append now either observes the flag cleared (and schedules) or has
    // its delta observed by this re-check (and compacted by the next lap) —
    // previously the flag was cleared unlocked after Compact(), and a burst
    // whose final appends landed mid-compaction left the delta above
    // threshold forever once appends stopped.
    sync::WriterMutexLock lock(&engine_mu_);
    if (!status.ok() ||
        EngineDeltaSize() < options_.compaction_threshold) {
      compaction_inflight_.store(false, std::memory_order_release);
      return;
    }
  }
}

Status S2Server::CaptureSnapshot(
    ckpt::EngineSnapshot* snapshot, std::vector<uint64_t>* shard_checksums,
    std::vector<ckpt::SegmentMeta>* data_segments,
    std::vector<ckpt::SegmentMeta>* monitor_segments) {
  sync::WriterMutexLock lock(&engine_mu_);
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "S2Server: checkpointing requires an open WAL");
  }
  // Flush the open fsync group first: with `sync_every > 1`
  // `record_count()` includes records whose durability is still pending,
  // and a snapshot anchored past the durable point would make recovery
  // demand WAL records that never hit disk.
  S2_RETURN_NOT_OK(wal_->Sync());
  snapshot->anchor_appends = wal_->record_count();
  snapshot->anchor_monitor_ops =
      monitor_wal_ != nullptr ? monitor_wal_->record_count() : 0;
  snapshot->next_subscription_id = next_subscription_id_;
  if (is_sharded()) {
    const size_t n = sharded_->size();
    snapshot->corpus.reserve(n);
    for (size_t id = 0; id < n; ++id) {
      S2_ASSIGN_OR_RETURN(const ts::TimeSeries* series,
                          sharded_->Series(static_cast<ts::SeriesId>(id)));
      snapshot->corpus.push_back(*series);
    }
    snapshot->subscriptions = sharded_->ListSubscriptions();
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      shard_checksums->push_back(ckpt::CheckpointStore::CorpusChecksum(
          sharded_->shard(s).corpus().series()));
    }
  } else {
    snapshot->corpus = engine_->corpus().series();
    snapshot->subscriptions = engine_->monitor_registry().List();
    shard_checksums->push_back(
        ckpt::CheckpointStore::CorpusChecksum(snapshot->corpus));
  }
  snapshot->alerts = alert_queue_.Snapshot();
  for (const io::walseg::SegmentInfo& seg : wal_->segments()) {
    data_segments->push_back(ckpt::SegmentMeta{seg.seq, seg.base_records});
  }
  if (monitor_wal_ != nullptr) {
    for (const io::walseg::SegmentInfo& seg : monitor_wal_->segments()) {
      monitor_segments->push_back(
          ckpt::SegmentMeta{seg.seq, seg.base_records});
    }
  }
  return Status::OK();
}

Status S2Server::DoCheckpoint() {
  const Clock::time_point start = Clock::now();
  ckpt::EngineSnapshot snapshot;
  std::vector<uint64_t> shard_checksums;
  std::vector<ckpt::SegmentMeta> data_segments;
  std::vector<ckpt::SegmentMeta> monitor_segments;
  S2_RETURN_NOT_OK(CaptureSnapshot(&snapshot, &shard_checksums,
                                   &data_segments, &monitor_segments));
  // Encode + commit off-lock: serialization and the two fsync'd renames
  // are the expensive part, and appends continue meanwhile (only this
  // maintenance thread removes segments, so the captured lists stay a
  // valid point-in-time prefix of the live state).
  const uint64_t shard_count = is_sharded() ? sharded_->num_shards() : 1;
  ckpt::Manifest manifest;
  S2_RETURN_NOT_OK(checkpoint_store_->Commit(
      snapshot, shard_count, std::move(shard_checksums),
      std::move(data_segments), std::move(monitor_segments), &manifest));

  // Both recorded generations must stay replayable: GC only below the
  // *fallback* anchor (the older of the two).
  const uint64_t safe_appends = manifest.has_prev
                                    ? manifest.prev.anchor_appends
                                    : manifest.current.anchor_appends;
  const uint64_t safe_monitor_ops = manifest.has_prev
                                        ? manifest.prev.anchor_monitor_ops
                                        : manifest.current.anchor_monitor_ops;
  {
    sync::WriterMutexLock lock(&engine_mu_);
    last_checkpoint_records_ = snapshot.anchor_appends;
    last_checkpoint_generation_ = manifest.current.generation;
    last_checkpoint_anchor_appends_ = snapshot.anchor_appends;
    last_checkpoint_anchor_monitor_ops_ = snapshot.anchor_monitor_ops;
    if (options_.checkpoint_gc && wal_ != nullptr) {
      S2_ASSIGN_OR_RETURN(size_t removed,
                          wal_->RemoveObsoleteSegments(safe_appends));
      checkpoint_gc_segments_->Increment(removed);
      if (monitor_wal_ != nullptr) {
        S2_ASSIGN_OR_RETURN(
            size_t monitor_removed,
            monitor_wal_->RemoveObsoleteSegments(safe_monitor_ops));
        checkpoint_gc_segments_->Increment(monitor_removed);
      }
    }
  }
  if (options_.checkpoint_gc) {
    S2_ASSIGN_OR_RETURN(size_t snapshots_removed,
                        checkpoint_store_->GarbageCollectSnapshots(manifest));
    checkpoint_gc_snapshots_->Increment(snapshots_removed);
  }
  checkpoint_count_->Increment();
  checkpoint_latency_->Record(static_cast<uint64_t>(Since(start).count()));
  return Status::OK();
}

Status S2Server::Checkpoint() {
  if (checkpoint_store_ == nullptr) {
    return Status::InvalidArgument(
        "S2Server: checkpointing is not enabled (checkpoint_enabled + "
        "wal_path)");
  }
  if (checkpoint_inflight_.exchange(true, std::memory_order_acq_rel)) {
    return Status::Unavailable("S2Server: checkpoint already in flight");
  }
  const Status status = DoCheckpoint();
  if (!status.ok()) checkpoint_failures_->Increment();
  checkpoint_inflight_.store(false, std::memory_order_release);
  return status;
}

void S2Server::MaybeScheduleCheckpoint() {
  if (maintenance_ == nullptr || checkpoint_store_ == nullptr ||
      wal_ == nullptr) {
    return;
  }
  // Caller holds the exclusive lock: the records-since-anchor snapshot
  // and the inflight transition form one atomic scheduling step.
  const uint64_t since = wal_->record_count() - last_checkpoint_records_;
  const bool due =
      (options_.checkpoint_every_appends > 0 &&
       since >= options_.checkpoint_every_appends) ||
      (options_.checkpoint_every_bytes > 0 &&
       since * stream::Wal::kRecordBytes >= options_.checkpoint_every_bytes);
  if (!due) return;
  if (checkpoint_inflight_.exchange(true, std::memory_order_acq_rel)) return;
  const bool submitted =
      maintenance_->Submit([this] { BackgroundCheckpoint(); });
  if (!submitted) {
    checkpoint_inflight_.store(false, std::memory_order_release);
  }
}

void S2Server::BackgroundCheckpoint() {
  // Errors are not fatal to serving: the WAL still covers everything, and
  // the next threshold crossing retries. The counter is the observable.
  const Status status = DoCheckpoint();
  if (!status.ok()) checkpoint_failures_->Increment();
  checkpoint_inflight_.store(false, std::memory_order_release);
}

S2Server::CheckpointInfo S2Server::checkpoint_info() {
  sync::ReaderMutexLock lock(&engine_mu_);
  CheckpointInfo info;
  info.enabled = checkpoint_store_ != nullptr;
  info.generation = last_checkpoint_generation_;
  info.anchor_appends = last_checkpoint_anchor_appends_;
  info.anchor_monitor_ops = last_checkpoint_anchor_monitor_ops_;
  info.recovered_from_checkpoint = recovered_from_checkpoint_;
  info.recovered_from_fallback = recovered_from_fallback_;
  info.recovery_anchor_appends = recovery_anchor_appends_;
  info.recovery_anchor_monitor_ops = recovery_anchor_monitor_ops_;
  return info;
}

void S2Server::Shutdown() {
  scheduler_->Shutdown();
  if (maintenance_ != nullptr) maintenance_->Shutdown();
  // Flush an open WAL fsync group: with `wal_sync_every > 1` the last
  // `< sync_every` acknowledged appends are not yet durable, and a clean
  // shutdown must not lose what only a crash may.
  sync::WriterMutexLock lock(&engine_mu_);
  if (wal_ != nullptr) (void)wal_->Sync();
}

S2Server::ApproxInfo S2Server::approx_info() {
  sync::ReaderMutexLock lock(&engine_mu_);
  ApproxInfo info;
  if (is_sharded()) {
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      const approx::SummaryIndex* summary = sharded_->shard(s).summary();
      if (summary == nullptr) return ApproxInfo{};
      if (s == 0) {
        info.enabled = true;
        info.summary_dims = summary->config().dims;
        info.summary_cells = summary->config().cells;
        info.config_fingerprint = summary->config().Fingerprint();
      }
      info.summary_bytes += summary->SummaryBytes();
      info.indexed_series += summary->size();
    }
    return info;
  }
  const approx::SummaryIndex* summary = engine_->summary();
  if (summary == nullptr) return info;
  info.enabled = true;
  info.summary_dims = summary->config().dims;
  info.summary_cells = summary->config().cells;
  info.summary_bytes = summary->SummaryBytes();
  info.indexed_series = summary->size();
  info.config_fingerprint = summary->config().Fingerprint();
  return info;
}

S2Server::StreamInfo S2Server::stream_info() {
  sync::ReaderMutexLock lock(&engine_mu_);
  StreamInfo info;
  info.wal_enabled = wal_ != nullptr;
  info.replayed_records = replayed_records_;
  info.replay_dropped_bytes = replay_dropped_bytes_;
  info.replay_time = replay_time_;
  info.delta_size = EngineDeltaSize();
  if (is_sharded()) {
    info.append_count = sharded_->TotalAppendCount();
    info.compaction_count = sharded_->TotalCompactionCount();
  } else {
    info.append_count = engine_->append_count();
    info.compaction_count = engine_->compaction_count();
  }
  return info;
}

}  // namespace s2::service
