#include "querylog/log_aggregator.h"

#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"

namespace s2::qlog {
namespace {

LogRecord R(int64_t day, int64_t second_of_day, const std::string& query) {
  return LogRecord{day * kSecondsPerDay + second_of_day, query};
}

TEST(LogAggregatorTest, RejectsBadRecords) {
  LogAggregator agg;
  EXPECT_FALSE(agg.Add(LogRecord{-1, "x"}).ok());
  EXPECT_FALSE(agg.Add(LogRecord{0, ""}).ok());
  EXPECT_EQ(agg.num_records(), 0u);
}

TEST(LogAggregatorTest, CountsPerDay) {
  LogAggregator agg;
  ASSERT_TRUE(agg.Add(R(0, 100, "cinema")).ok());
  ASSERT_TRUE(agg.Add(R(0, 50000, "cinema")).ok());
  ASSERT_TRUE(agg.Add(R(2, 10, "cinema")).ok());
  ASSERT_TRUE(agg.Add(R(1, 10, "easter")).ok());
  EXPECT_EQ(agg.num_queries(), 2u);
  EXPECT_EQ(agg.num_records(), 4u);

  auto series = agg.SeriesFor("cinema", 0, 3);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->values, (std::vector<double>{2.0, 0.0, 1.0, 0.0}));
}

TEST(LogAggregatorTest, DayBoundaryAssignment) {
  LogAggregator agg;
  ASSERT_TRUE(agg.Add(R(5, kSecondsPerDay - 1, "q")).ok());  // 23:59:59 day 5.
  ASSERT_TRUE(agg.Add(R(6, 0, "q")).ok());                   // 00:00:00 day 6.
  auto series = agg.SeriesFor("q", 5, 6);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->values, (std::vector<double>{1.0, 1.0}));
}

TEST(LogAggregatorTest, UnknownQueryIsNotFound) {
  LogAggregator agg;
  EXPECT_EQ(agg.SeriesFor("nope", 0, 1).status().code(), StatusCode::kNotFound);
}

TEST(LogAggregatorTest, WindowClipsOutOfRangeDays) {
  LogAggregator agg;
  ASSERT_TRUE(agg.Add(R(0, 0, "q")).ok());
  ASSERT_TRUE(agg.Add(R(10, 0, "q")).ok());
  ASSERT_TRUE(agg.Add(R(20, 0, "q")).ok());
  auto series = agg.SeriesFor("q", 5, 15);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 11u);
  EXPECT_DOUBLE_EQ(series->values[5], 1.0);  // Day 10.
  EXPECT_DOUBLE_EQ(dsp::Energy(series->values), 1.0);
  EXPECT_FALSE(agg.SeriesFor("q", 10, 5).ok());
}

TEST(LogAggregatorTest, BuildCorpusAppliesVolumeCutoff) {
  LogAggregator agg;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(agg.Add(R(i, 0, "popular")).ok());
  ASSERT_TRUE(agg.Add(R(0, 0, "rare")).ok());
  auto corpus = agg.BuildCorpus(0, 9, /*min_total_count=*/5);
  ASSERT_TRUE(corpus.ok());
  ASSERT_EQ(corpus->size(), 1u);
  EXPECT_EQ(corpus->at(0).name, "popular");

  auto all = agg.BuildCorpus(0, 9, 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  // Lexicographic order.
  EXPECT_EQ(all->at(0).name, "popular");
  EXPECT_EQ(all->at(1).name, "rare");
}

TEST(LogAggregatorTest, EndToEndPipelineMatchesDirectSynthesis) {
  // GenerateLog -> aggregate must reproduce the archetype's demand shape:
  // the aggregated daily total over a year approximates the intensity sum.
  Rng rng(3);
  const QueryArchetype cinema = MakeCinema();
  auto log = GenerateLog(cinema, 0, 56, &rng);
  ASSERT_TRUE(log.ok());
  LogAggregator agg;
  ASSERT_TRUE(agg.AddAll(*log).ok());
  auto series = agg.SeriesFor("cinema", 0, 55);
  ASSERT_TRUE(series.ok());

  // Expected totals from the deterministic intensity.
  double expected = 0.0;
  for (int32_t day = 0; day < 56; ++day) expected += IntensityOn(cinema, day);
  const double observed = dsp::Mean(series->values) * 56;
  EXPECT_NEAR(observed, expected, 0.05 * expected);
  EXPECT_EQ(static_cast<uint64_t>(observed), agg.num_records());
}

TEST(LogAggregatorTest, GenerateLogValidates) {
  Rng rng(4);
  QueryArchetype a;
  a.name = "x";
  EXPECT_FALSE(GenerateLog(a, 0, 0, &rng).ok());
  EXPECT_FALSE(GenerateLog(a, 0, 5, nullptr).ok());
  EXPECT_FALSE(GenerateLog(a, -3, 5, &rng).ok());
}

TEST(LogAggregatorTest, TimestampsStayWithinTheirDay) {
  Rng rng(5);
  auto log = GenerateLog(MakeCinema(), 7, 3, &rng);
  ASSERT_TRUE(log.ok());
  ASSERT_FALSE(log->empty());
  for (const LogRecord& record : *log) {
    const int64_t day = record.timestamp_seconds / kSecondsPerDay;
    EXPECT_GE(day, 7);
    EXPECT_LE(day, 9);
  }
}

}  // namespace
}  // namespace s2::qlog
