// Sharded-engine benchmark: build time and query throughput of
// shard::ShardedEngine at 1/2/4/8 shards, RAM-resident and disk-resident
// (MemEnv-backed store files), plus the scatter-gather instrumentation the
// server exports (fan-out width, cross-shard prune hits, per-shard latency).
//
//   ./build/bench/bench_shard [--series 2048] [--days 512] [--requests 200]
//                             [--k 10] [--shards-max 8]
//
// Reading the numbers: shard speedups come from running per-shard builds and
// searches on separate cores. On a machine with few hardware threads the
// scatter runs (mostly) sequentially and sharding can only show its
// *overheads* (task dispatch, merge, slightly weaker per-shard pruning) —
// the table prints hardware_concurrency so a flat QPS column on a 1-2 core
// box is read as expected behaviour, not as a defect. The cross-shard prune
// column shows the shared radius doing its job regardless of parallelism:
// those are candidate evaluations a naive independent-shard design would
// have paid for.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "io/mem_env.h"
#include "querylog/corpus_generator.h"
#include "shard/sharded_engine.h"

using namespace s2;

namespace {

struct Row {
  size_t shards = 0;
  double build_s = 0.0;
  double qps = 0.0;
  double avg_fanout = 0.0;
  double avg_prunes = 0.0;
  uint64_t shard_p50_us = 0;
  uint64_t shard_max_us = 0;
};

ts::Corpus MakeCorpus(size_t series, size_t days) {
  qlog::CorpusSpec spec;
  spec.num_series = series;
  spec.n_days = days;
  spec.seed = 20040613;  // SIGMOD'04.
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).ValueOrDie();
}

Row RunConfig(size_t shards, size_t series, size_t days, size_t requests,
              size_t k, io::Env* env, const std::string& store_path) {
  Row row;
  row.shards = shards;

  shard::ShardedEngine::Options options;
  options.num_shards = shards;
  options.engine.index.budget_c = 16;
  if (env != nullptr) {
    options.engine.env = env;
    options.engine.disk_store_path = store_path;
  }
  bench::Timer build_timer;
  auto built = shard::ShardedEngine::Build(MakeCorpus(series, days), options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
    std::exit(1);
  }
  row.build_s = build_timer.Seconds();
  const shard::ShardedEngine& engine = *built;

  Rng rng(7);
  std::vector<ts::SeriesId> ids;
  ids.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    ids.push_back(static_cast<ts::SeriesId>(
        rng.Uniform(0.0, static_cast<double>(series))));
  }

  uint64_t fanout = 0;
  uint64_t prunes = 0;
  std::vector<uint64_t> latencies;
  bench::Timer query_timer;
  for (ts::SeriesId id : ids) {
    shard::ShardedEngine::QueryStats stats;
    auto result = engine.SimilarTo(id, k, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    fanout += stats.fanout;
    prunes += stats.shared_radius_prunes;
    for (const auto& lat : stats.shard_latencies) {
      latencies.push_back(static_cast<uint64_t>(lat.count()));
    }
  }
  const double elapsed = query_timer.Seconds();
  row.qps = elapsed > 0 ? static_cast<double>(requests) / elapsed : 0.0;
  row.avg_fanout = static_cast<double>(fanout) / static_cast<double>(requests);
  row.avg_prunes = static_cast<double>(prunes) / static_cast<double>(requests);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    row.shard_p50_us = latencies[latencies.size() / 2];
    row.shard_max_us = latencies.back();
  }
  return row;
}

void PrintTable(const char* title, const std::vector<Row>& rows) {
  bench::PrintHeader(title);
  std::printf("  %7s %10s %10s %8s %12s %12s %12s\n", "shards", "build_s",
              "qps", "fanout", "prunes/q", "shard_p50us", "shard_maxus");
  for (const Row& row : rows) {
    std::printf("  %7zu %10.3f %10.1f %8.1f %12.2f %12llu %12llu\n",
                row.shards, row.build_s, row.qps, row.avg_fanout,
                row.avg_prunes,
                static_cast<unsigned long long>(row.shard_p50_us),
                static_cast<unsigned long long>(row.shard_max_us));
  }
}

bench::Json JsonRows(const std::vector<Row>& rows) {
  bench::Json array = bench::Json::Array();
  for (const Row& row : rows) {
    array.Push(bench::Json::Object()
                   .Add("shards", static_cast<uint64_t>(row.shards))
                   .Add("build_s", row.build_s)
                   .Add("qps", row.qps)
                   .Add("avg_fanout", row.avg_fanout)
                   .Add("avg_prunes", row.avg_prunes)
                   .Add("shard_p50_us", row.shard_p50_us)
                   .Add("shard_max_us", row.shard_max_us));
  }
  return array;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t series = bench::ArgSize(argc, argv, "--series", 2048);
  const size_t days = bench::ArgSize(argc, argv, "--days", 512);
  const size_t requests = bench::ArgSize(argc, argv, "--requests", 200);
  const size_t k = bench::ArgSize(argc, argv, "--k", 10);
  const size_t shards_max = bench::ArgSize(argc, argv, "--shards-max", 8);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_shard.json");

  std::printf("bench_shard: series=%zu days=%zu requests=%zu k=%zu "
              "hardware_concurrency=%u\n",
              series, days, requests, k,
              std::thread::hardware_concurrency());

  std::vector<size_t> shard_counts;
  for (size_t n = 1; n <= shards_max; n *= 2) shard_counts.push_back(n);

  std::vector<Row> ram;
  for (size_t n : shard_counts) {
    ram.push_back(RunConfig(n, series, days, requests, k, nullptr, ""));
  }
  PrintTable("RAM-resident: SimilarTo scatter-gather", ram);

  std::vector<Row> disk;
  for (size_t n : shard_counts) {
    io::MemEnv env;  // Fresh filesystem per configuration.
    disk.push_back(RunConfig(n, series, days, requests, k, &env, "bench.bin"));
  }
  PrintTable("Disk-resident (MemEnv store files): SimilarTo scatter-gather",
             disk);

  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_shard")
          .Add("spec",
               bench::Json::Object()
                   .Add("series", static_cast<uint64_t>(series))
                   .Add("days", static_cast<uint64_t>(days))
                   .Add("requests", static_cast<uint64_t>(requests))
                   .Add("k", static_cast<uint64_t>(k))
                   .Add("shards_max", static_cast<uint64_t>(shards_max))
                   .Add("hardware_threads",
                        static_cast<uint64_t>(
                            std::thread::hardware_concurrency())))
          .Add("ram_resident", JsonRows(ram))
          .Add("disk_resident", JsonRows(disk)));
  return 0;
}
