// End-to-end degradation ladder: S2Server over a disk-resident engine whose
// filesystem injects faults. Exercises all three rungs — engine-level retry,
// exact-scan fallback with the `degraded` flag, and circuit-breaker load
// shedding — plus the resilience counters they export.

#include <chrono>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "io/fault_env.h"
#include "io/mem_env.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

namespace s2::service {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr size_t kNumSeries = 48;

struct Fixture {
  io::MemEnv base;
  io::FaultInjectingEnv fault_env{&base, io::FaultPlan{}};
  std::unique_ptr<S2Server> server;
};

// Builds a disk-resident engine through `fault_env` (no faults planned yet,
// so the build is clean), then wraps it in a server. Cache is disabled so
// every Execute reaches the engine and hence the faulty disk.
std::unique_ptr<Fixture> MakeFixture(
    resilience::CircuitBreaker::Options breaker = {},
    bool degrade_on_failure = true) {
  auto fx = std::make_unique<Fixture>();
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = 128;
  spec.seed = 23;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.disk_store_path = "store.bin";
  options.env = &fx->fault_env;
  options.retry.max_attempts = 4;
  options.retry.base_backoff = microseconds(1);
  options.retry.max_backoff = microseconds(8);
  auto engine = core::S2Engine::Build(std::move(corpus).ValueOrDie(), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  S2Server::Options server_options;
  server_options.scheduler.threads = 2;
  server_options.cache_capacity = 0;
  server_options.breaker = breaker;
  server_options.degrade_on_failure = degrade_on_failure;
  fx->server = S2Server::Create(std::move(engine).ValueOrDie(), server_options);
  return fx;
}

resilience::CircuitBreaker::Options NeverTrips() {
  resilience::CircuitBreaker::Options options;
  options.failure_threshold = 1u << 20;
  return options;
}

QueryRequest SimilarTo(ts::SeriesId id, size_t k = 5) {
  QueryRequest request;
  request.kind = RequestKind::kSimilarTo;
  request.id = id;
  request.k = k;
  return request;
}

uint64_t CounterValue(S2Server& server, const std::string& name) {
  return server.metrics().counter(name)->value();
}

TEST(DegradedServerTest, TransientFaultRateYieldsOnlyGoodAnswers) {
  auto fx = MakeFixture(NeverTrips());
  io::FaultPlan plan;
  plan.read_fault_rate = 0.01;  // The acceptance-criteria rate.
  plan.seed = 7;
  fx->fault_env.set_plan(plan);
  size_t degraded = 0;
  for (int round = 0; round < 4; ++round) {
    for (ts::SeriesId id = 0; id < kNumSeries; ++id) {
      QueryResponse response = fx->server->Execute(SimilarTo(id));
      // Every answer must be a real answer: retried, or degraded to the
      // exact scan — never an error surfaced to the caller.
      ASSERT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_FALSE(response.neighbors.empty());
      if (response.degraded) ++degraded;
    }
  }
  // At a 1% per-read rate over ~200 multi-read requests, some faults fired.
  EXPECT_GT(CounterValue(*fx->server, "server_retry_attempts") + degraded, 0u);
  EXPECT_EQ(CounterValue(*fx->server, "server_shed"), 0u);
}

TEST(DegradedServerTest, ExhaustedRetriesDegradeToExactScan) {
  auto fx = MakeFixture(NeverTrips());
  // Capture the ground truth before the disk goes bad.
  auto expected = fx->server->engine().SimilarToExact(0, 5);
  ASSERT_TRUE(expected.ok());
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;  // Every read fails; retries must exhaust.
  fx->fault_env.set_plan(plan);
  QueryResponse response = fx->server->Execute(SimilarTo(0));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(response.neighbors.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(response.neighbors[i].id, (*expected)[i].id);
    EXPECT_DOUBLE_EQ(response.neighbors[i].distance, (*expected)[i].distance);
  }
  EXPECT_GE(CounterValue(*fx->server, "server_degraded"), 1u);
  EXPECT_GE(CounterValue(*fx->server, "server_retry_giveups"), 1u);
}

TEST(DegradedServerTest, DtwRequestsDegradeToo) {
  auto fx = MakeFixture(NeverTrips());
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);
  QueryRequest request = SimilarTo(1);
  request.kind = RequestKind::kSimilarToDtw;
  QueryResponse response = fx->server->Execute(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.neighbors.empty());
}

TEST(DegradedServerTest, CallerErrorsPassThroughUndegraded) {
  auto fx = MakeFixture(NeverTrips());
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);
  QueryResponse response = fx->server->Execute(SimilarTo(kNumSeries + 1000));
  // A bad series id is the caller's fault, not infrastructure: no fallback,
  // no degraded flag, and the breaker must not count it as a failure.
  EXPECT_FALSE(response.status.ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(CounterValue(*fx->server, "server_degraded"), 0u);
  EXPECT_EQ(fx->server->breaker().trip_count(), 0u);
}

TEST(DegradedServerTest, DegradationCanBeDisabled) {
  auto fx = MakeFixture(NeverTrips(), /*degrade_on_failure=*/false);
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);
  QueryResponse response = fx->server->Execute(SimilarTo(0));
  EXPECT_FALSE(response.status.ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(CounterValue(*fx->server, "server_degraded"), 0u);
}

TEST(DegradedServerTest, SustainedFailureTripsBreakerAndSheds) {
  resilience::CircuitBreaker::Options breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown = milliseconds(60'000);  // Stays open for the whole test.
  auto fx = MakeFixture(breaker);
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);
  // The first three requests fail on the primary path (tripping the
  // breaker) but are still answered via the exact-scan fallback.
  for (ts::SeriesId id = 0; id < 3; ++id) {
    QueryResponse response = fx->server->Execute(SimilarTo(id));
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(response.degraded);
  }
  EXPECT_EQ(fx->server->breaker().state(),
            resilience::CircuitBreaker::State::kOpen);
  // While open, requests are shed fast with Unavailable — no retries, no
  // disk traffic piling onto the failing device.
  const uint64_t reads_before = fx->fault_env.read_ops();
  QueryResponse shed = fx->server->Execute(SimilarTo(4));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fx->fault_env.read_ops(), reads_before);
  EXPECT_GE(CounterValue(*fx->server, "server_shed"), 1u);
  EXPECT_EQ(CounterValue(*fx->server, "server_breaker_trips"), 1u);
}

TEST(DegradedServerTest, CallerErrorProbeDoesNotWedgeTheBreaker) {
  resilience::CircuitBreaker::Options breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown = milliseconds(0);  // Probe on the very next request.
  auto fx = MakeFixture(breaker);
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);
  for (ts::SeriesId id = 0; id < 3; ++id) {
    (void)fx->server->Execute(SimilarTo(id));
  }
  ASSERT_EQ(fx->server->breaker().state(),
            resilience::CircuitBreaker::State::kOpen);
  // The disk heals, and the half-open probe happens to be a request that
  // fails with a caller error (unknown id). That outcome must release the
  // probe slot...
  fx->fault_env.set_plan(io::FaultPlan{});
  QueryResponse probe = fx->server->Execute(SimilarTo(kNumSeries + 1000));
  EXPECT_FALSE(probe.status.ok());
  EXPECT_NE(probe.status.code(), StatusCode::kUnavailable);
  // ...so real traffic flows again instead of being shed forever.
  QueryResponse after = fx->server->Execute(SimilarTo(0));
  EXPECT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(CounterValue(*fx->server, "server_shed"), 0u);
}

// --- Sharded fault isolation -------------------------------------------------
//
// One shard's filesystem going bad must degrade the request through the same
// server ladder — not fail the whole fan-out, and not mark the healthy
// shards' work lost. The fixture builds a 4-shard disk-resident server where
// shard 2 (and only shard 2) reads through a FaultInjectingEnv.

struct ShardedFixture {
  io::MemEnv healthy;
  io::MemEnv faulty_base;
  io::FaultInjectingEnv fault_env{&faulty_base, io::FaultPlan{}};
  std::unique_ptr<S2Server> server;
};

std::unique_ptr<ShardedFixture> MakeShardedFixture(
    resilience::CircuitBreaker::Options breaker = NeverTrips()) {
  auto fx = std::make_unique<ShardedFixture>();
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = 128;
  spec.seed = 23;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.disk_store_path = "store.bin";
  options.env = &fx->healthy;
  options.retry.max_attempts = 4;
  options.retry.base_backoff = microseconds(1);
  options.retry.max_backoff = microseconds(8);
  S2Server::Options server_options;
  server_options.scheduler.threads = 2;
  server_options.cache_capacity = 0;
  server_options.breaker = breaker;
  server_options.shards = 4;
  server_options.shard_envs = {&fx->healthy, &fx->healthy, &fx->fault_env,
                               &fx->healthy};
  auto server =
      S2Server::Build(std::move(corpus).ValueOrDie(), options, server_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  fx->server = std::move(server).ValueOrDie();
  return fx;
}

TEST(DegradedServerTest, OneFaultyShardDegradesInsteadOfFailingTheFanOut) {
  auto fx = MakeShardedFixture();
  ASSERT_TRUE(fx->server->is_sharded());
  // Ground truth from the still-healthy disk (exact scan is RAM-only, but
  // capture it before the faults for clarity).
  auto expected = fx->server->sharded().SimilarToExact(0, 5);
  ASSERT_TRUE(expected.ok());
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;  // Shard 2's every read fails; retries exhaust.
  fx->fault_env.set_plan(plan);
  for (ts::SeriesId id = 0; id < 8; ++id) {
    QueryResponse response = fx->server->Execute(SimilarTo(id));
    // The scatter hits all four shards; shard 2's failure must surface as a
    // degraded-but-correct answer, exactly like the single-engine ladder.
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(response.degraded);
    EXPECT_FALSE(response.neighbors.empty());
  }
  QueryResponse response = fx->server->Execute(SimilarTo(0));
  ASSERT_TRUE(response.status.ok());
  ASSERT_EQ(response.neighbors.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(response.neighbors[i].id, (*expected)[i].id);
    EXPECT_DOUBLE_EQ(response.neighbors[i].distance, (*expected)[i].distance);
  }
  EXPECT_GE(CounterValue(*fx->server, "server_degraded"), 9u);
  EXPECT_GE(CounterValue(*fx->server, "server_retry_giveups"), 1u);
}

TEST(DegradedServerTest, OwnerRoutedVerbsOnHealthyShardsIgnoreTheFaultyOne) {
  auto fx = MakeShardedFixture();
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);
  // Periods and bursts route to the owner shard alone. For a series owned by
  // a healthy shard they never touch shard 2's disk (they run on RAM
  // structures anyway) and must succeed undegraded.
  QueryRequest request;
  request.kind = RequestKind::kPeriodsOf;
  request.id = 0;  // Round-robin: shard 0.
  QueryResponse response = fx->server->Execute(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.degraded);
  request.kind = RequestKind::kBurstsOf;
  response = fx->server->Execute(request);
  EXPECT_TRUE(response.status.ok());
  EXPECT_FALSE(response.degraded);
}

TEST(DegradedServerTest, ShardedSustainedFailureStillTripsTheBreaker) {
  resilience::CircuitBreaker::Options breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown = milliseconds(60'000);
  auto fx = MakeShardedFixture(breaker);
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);
  for (ts::SeriesId id = 0; id < 3; ++id) {
    QueryResponse response = fx->server->Execute(SimilarTo(id));
    ASSERT_TRUE(response.status.ok());
    EXPECT_TRUE(response.degraded);
  }
  // Rung 3 is topology-independent: the persistent one-shard failure counts
  // as primary-path failure and trips the same breaker.
  EXPECT_EQ(fx->server->breaker().state(),
            resilience::CircuitBreaker::State::kOpen);
  QueryResponse shed = fx->server->Execute(SimilarTo(4));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_GE(CounterValue(*fx->server, "server_shed"), 1u);
}

TEST(DegradedServerTest, MetricsSnapshotNamesTheResilienceCounters) {
  auto fx = MakeFixture(NeverTrips());
  const std::string text = fx->server->MetricsText();
  EXPECT_NE(text.find("server_degraded"), std::string::npos);
  EXPECT_NE(text.find("server_shed"), std::string::npos);
  EXPECT_NE(text.find("server_retry_attempts"), std::string::npos);
  EXPECT_NE(text.find("server_retry_giveups"), std::string::npos);
  EXPECT_NE(text.find("server_breaker_trips"), std::string::npos);
}

}  // namespace
}  // namespace s2::service
