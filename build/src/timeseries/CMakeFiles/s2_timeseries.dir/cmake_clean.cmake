file(REMOVE_RECURSE
  "CMakeFiles/s2_timeseries.dir/calendar.cc.o"
  "CMakeFiles/s2_timeseries.dir/calendar.cc.o.d"
  "libs2_timeseries.a"
  "libs2_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
