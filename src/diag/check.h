#ifndef S2_DIAG_CHECK_H_
#define S2_DIAG_CHECK_H_

#include <sstream>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace s2::diag {

/// Where a check was written (captured by the S2_CHECK macros; the library
/// targets C++20 with GCC 12 where `std::source_location` is available, but
/// macro capture keeps the *caller's* location through helper functions and
/// costs nothing in the happy path).
struct SourceLocation {
  const char* file = "";
  int line = 0;
  const char* function = "";
};

/// A structured assertion-failure report. The default handler renders it to
/// stderr and aborts; tests install a capturing handler to assert on the
/// exact condition/location instead of dying.
struct CheckFailure {
  SourceLocation location;
  /// The literal condition text, e.g. "pin_count >= 0".
  std::string condition;
  /// The streamed message, e.g. "frame 3 of page 17".
  std::string message;
  /// True for S2_DCHECK failures (debug-only checks).
  bool is_dcheck = false;
};

/// "file:line: S2_CHECK(cond) failed in function: message".
std::string FormatCheckFailure(const CheckFailure& failure);

/// Receives every check failure. Handlers may return (the macro then
/// continues after the failed check), which is how tests observe failures;
/// the default handler never returns.
using CheckFailureHandler = void (*)(const CheckFailure& failure);

/// Installs `handler` (nullptr restores the default abort handler) and
/// returns the previous one. Not thread-safe; intended for test setup.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

/// Routes a failure to the installed handler. Used by the macros; callable
/// directly by code that detects a violation without a boolean condition.
void ReportCheckFailure(const CheckFailure& failure);

namespace internal {

/// Collects the streamed message of one failing check and fires the handler
/// from its destructor, so `S2_CHECK(x) << "detail " << v;` reports after
/// the whole message is assembled.
class CheckStream {
 public:
  CheckStream(SourceLocation location, const char* condition, bool is_dcheck)
      : location_(location), condition_(condition), is_dcheck_(is_dcheck) {}
  ~CheckStream() {
    ReportCheckFailure(
        CheckFailure{location_, condition_, stream_.str(), is_dcheck_});
  }
  CheckStream(const CheckStream&) = delete;
  CheckStream& operator=(const CheckStream&) = delete;

  template <typename T>
  CheckStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  SourceLocation location_;
  const char* condition_;
  bool is_dcheck_;
  std::ostringstream stream_;
};

/// `operator&` binds looser than `<<`, letting the ternary in S2_CHECK
/// swallow the whole stream expression as one void operand.
struct Voidify {
  void operator&(const CheckStream&) {}
};

}  // namespace internal
}  // namespace s2::diag

#define S2_DIAG_SOURCE_LOCATION() \
  ::s2::diag::SourceLocation { __FILE__, __LINE__, __func__ }

#define S2_DIAG_CHECK_IMPL_(cond, text, is_dcheck)          \
  (__builtin_expect(static_cast<bool>(cond), 1))            \
      ? (void)0                                             \
      : ::s2::diag::internal::Voidify() &                   \
            ::s2::diag::internal::CheckStream(              \
                S2_DIAG_SOURCE_LOCATION(), text, is_dcheck)

/// Always-on invariant assertion. Streams an optional message:
///   S2_CHECK(count <= capacity) << "page " << id;
#define S2_CHECK(cond) S2_DIAG_CHECK_IMPL_((cond), #cond, false)

/// Always-on assertion that `expr` (a Status or Result) is OK; the failure
/// report carries the status text.
#define S2_CHECK_OK(expr)                                          \
  ::s2::diag::internal::CheckOkImpl((expr), S2_DIAG_SOURCE_LOCATION(), \
                                    #expr, false)

// S2_DCHECK compiles away in optimized builds unless explicitly kept:
// sanitizer configurations define S2_DIAG_DCHECK_ENABLED so the self-checks
// run exactly where the extra cost buys detection power.
#if !defined(NDEBUG) || defined(S2_DIAG_DCHECK_ENABLED)
#define S2_DIAG_DCHECK_IS_ON 1
#define S2_DCHECK(cond) S2_DIAG_CHECK_IMPL_((cond), #cond, true)
#define S2_DCHECK_OK(expr)                                             \
  ::s2::diag::internal::CheckOkImpl((expr), S2_DIAG_SOURCE_LOCATION(), \
                                    #expr, true)
#else
#define S2_DIAG_DCHECK_IS_ON 0
#define S2_DCHECK(cond) \
  S2_DIAG_CHECK_IMPL_(true || (cond), #cond, true)
#define S2_DCHECK_OK(expr) \
  do {                     \
  } while (false)
#endif

namespace s2::diag::internal {

inline void CheckOkImpl(const ::s2::Status& status, SourceLocation location,
                        const char* expr_text, bool is_dcheck) {
  if (__builtin_expect(status.ok(), 1)) return;
  ReportCheckFailure(CheckFailure{location, expr_text,
                                  status.ToString(), is_dcheck});
}

template <typename T>
void CheckOkImpl(const ::s2::Result<T>& result, SourceLocation location,
                 const char* expr_text, bool is_dcheck) {
  CheckOkImpl(result.status(), location, expr_text, is_dcheck);
}

}  // namespace s2::diag::internal

#endif  // S2_DIAG_CHECK_H_
