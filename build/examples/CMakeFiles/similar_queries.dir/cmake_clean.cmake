file(REMOVE_RECURSE
  "CMakeFiles/similar_queries.dir/similar_queries.cpp.o"
  "CMakeFiles/similar_queries.dir/similar_queries.cpp.o.d"
  "similar_queries"
  "similar_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similar_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
