#include "exec/thread_pool.h"

#include <utility>

namespace s2::exec {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Shutdown already ran (or is running on another thread); workers are
      // joined exactly once below, so second callers just return.
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    try {
      task();
    } catch (...) {
      // Contract rule 3: contain, count, keep serving. A worker must never
      // take the whole process down (std::terminate) because one task threw.
      tasks_aborted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace s2::exec
