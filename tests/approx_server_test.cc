// Serving-layer coverage for the approximate tier: the kApproxKnn verb
// end-to-end (single and sharded), the degradation-ladder placement —
// "retry -> approximate-with-quality-bound -> exact-scan -> shed", where the
// approximate rung engages only for requests that opted in via a quality
// knob — the answer-quality cache identity, the approx_* metrics, and the
// approx_info() introspection snapshot.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "io/fault_env.h"
#include "io/mem_env.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

namespace s2::service {
namespace {

using std::chrono::microseconds;

constexpr size_t kNumSeries = 48;
constexpr size_t kDays = 128;

ts::Corpus MakeCorpus(uint64_t seed = 23) {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).ValueOrDie();
}

std::unique_ptr<S2Server> MakeRamServer(size_t cache_capacity = 64,
                                        size_t shards = 1) {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  S2Server::Options server_options;
  server_options.scheduler.threads = 2;
  server_options.cache_capacity = cache_capacity;
  server_options.shards = shards;
  auto server = S2Server::Build(MakeCorpus(), options, server_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

QueryRequest ApproxKnn(ts::SeriesId id, size_t k = 5) {
  QueryRequest request;
  request.kind = RequestKind::kApproxKnn;
  request.id = id;
  request.k = k;
  return request;
}

uint64_t CounterValue(S2Server& server, const std::string& name) {
  return server.metrics().counter(name)->value();
}

TEST(ApproxServerTest, ApproxKnnEndToEnd) {
  auto server = MakeRamServer();
  QueryResponse response = server->Execute(ApproxKnn(0));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.approximate);
  EXPECT_FALSE(response.degraded);
  ASSERT_EQ(response.neighbors.size(), 5u);
  EXPECT_EQ(response.quality.population, kNumSeries - 1);
  EXPECT_GT(response.quality.candidates, 0u);
  EXPECT_EQ(CounterValue(*server, "approx_queries"), 1u);
  EXPECT_EQ(CounterValue(*server, "approx_degraded"), 0u);
}

TEST(ApproxServerTest, FullBudgetRequestMatchesExactVerb) {
  auto server = MakeRamServer(/*cache_capacity=*/0);
  QueryRequest exact;
  exact.kind = RequestKind::kSimilarTo;
  exact.id = 7;
  exact.k = 5;
  QueryResponse exact_response = server->Execute(exact);
  ASSERT_TRUE(exact_response.status.ok());

  QueryRequest full = ApproxKnn(7);
  full.max_candidates = kNumSeries;  // >= population: degenerate-exact.
  QueryResponse response = server->Execute(full);
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.quality.guaranteed_exact);
  EXPECT_EQ(response.quality.epsilon, 0.0);
  ASSERT_EQ(response.neighbors.size(), exact_response.neighbors.size());
  for (size_t i = 0; i < response.neighbors.size(); ++i) {
    EXPECT_EQ(response.neighbors[i].id, exact_response.neighbors[i].id);
    EXPECT_EQ(response.neighbors[i].distance,
              exact_response.neighbors[i].distance);
  }
  EXPECT_GE(CounterValue(*server, "approx_guaranteed_exact"), 1u);
}

TEST(ApproxServerTest, ShardedServerAnswersApproxKnn) {
  auto single = MakeRamServer(/*cache_capacity=*/0);
  auto sharded = MakeRamServer(/*cache_capacity=*/0, /*shards=*/4);
  ASSERT_TRUE(sharded->is_sharded());
  for (ts::SeriesId id : {0u, 13u, 40u}) {
    QueryResponse a = single->Execute(ApproxKnn(id));
    QueryResponse b = sharded->Execute(ApproxKnn(id));
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    EXPECT_TRUE(b.approximate);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id);
      EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance);
    }
    EXPECT_EQ(a.quality.guaranteed_exact, b.quality.guaranteed_exact);
    EXPECT_EQ(a.quality.epsilon, b.quality.epsilon);
    EXPECT_EQ(a.quality.candidates, b.quality.candidates);
  }
}

TEST(ApproxServerTest, BadIdsPassThroughAsCallerErrors) {
  auto server = MakeRamServer();
  QueryResponse response = server->Execute(ApproxKnn(kNumSeries + 1000));
  EXPECT_FALSE(response.status.ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(server->breaker().trip_count(), 0u);
}

// --- Cache identity ----------------------------------------------------------

TEST(ApproxServerTest, ApproximateAnswersNeverServeExactRequests) {
  auto server = MakeRamServer(/*cache_capacity=*/64);
  // Prime the cache with an approximate answer for (id=3, k=5)...
  QueryResponse first = server->Execute(ApproxKnn(3));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  // ...then ask for the *exact* verb with the same id/k: must miss.
  QueryRequest exact;
  exact.kind = RequestKind::kSimilarTo;
  exact.id = 3;
  exact.k = 5;
  QueryResponse second = server->Execute(exact);
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(second.cache_hit);
  EXPECT_FALSE(second.approximate);
}

TEST(ApproxServerTest, SameKnobsHitDifferentKnobsMiss) {
  auto server = MakeRamServer(/*cache_capacity=*/64);
  QueryRequest request = ApproxKnn(5);
  request.recall_target = 0.95;
  QueryResponse first = server->Execute(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);

  // Identical knobs: served from cache, quality metadata intact.
  QueryResponse repeat = server->Execute(request);
  ASSERT_TRUE(repeat.status.ok());
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_TRUE(repeat.approximate);
  EXPECT_EQ(repeat.quality.candidates, first.quality.candidates);

  // Different knobs shape a different candidate set: own cache identity.
  QueryRequest different = request;
  different.max_candidates = 16;
  QueryResponse miss = server->Execute(different);
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.cache_hit);
}

// --- Degradation ladder ------------------------------------------------------

struct FaultyFixture {
  io::MemEnv base;
  io::FaultInjectingEnv fault_env{&base, io::FaultPlan{}};
  std::unique_ptr<S2Server> server;
};

std::unique_ptr<FaultyFixture> MakeFaultyFixture(bool degrade_to_approx) {
  auto fx = std::make_unique<FaultyFixture>();
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.disk_store_path = "store.bin";
  options.env = &fx->fault_env;
  options.retry.max_attempts = 2;
  options.retry.base_backoff = microseconds(1);
  options.retry.max_backoff = microseconds(4);
  S2Server::Options server_options;
  server_options.scheduler.threads = 2;
  server_options.cache_capacity = 0;
  server_options.breaker.failure_threshold = 1u << 20;  // Never trips.
  server_options.degrade_to_approx = degrade_to_approx;
  auto server = S2Server::Build(MakeCorpus(), options, server_options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  fx->server = std::move(server).ValueOrDie();
  return fx;
}

TEST(ApproxServerTest, KnobbedRequestsDegradeThroughApproxTier) {
  auto fx = MakeFaultyFixture(/*degrade_to_approx=*/true);
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;  // Every disk read fails; retries exhaust.
  fx->fault_env.set_plan(plan);

  QueryRequest request;
  request.kind = RequestKind::kSimilarTo;
  request.id = 0;
  request.k = 5;
  request.recall_target = 0.95;  // The opt-in knob.
  QueryResponse response = fx->server->Execute(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.approximate);
  ASSERT_EQ(response.neighbors.size(), 5u);
  EXPECT_GT(response.quality.candidates, 0u);
  EXPECT_GE(CounterValue(*fx->server, "approx_degraded"), 1u);
  EXPECT_GE(CounterValue(*fx->server, "server_degraded"), 1u);
}

TEST(ApproxServerTest, KnobFreeRequestsStillGetTheExactScanFallback) {
  auto fx = MakeFaultyFixture(/*degrade_to_approx=*/true);
  auto expected = fx->server->engine().SimilarToExact(0, 5);
  ASSERT_TRUE(expected.ok());
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);

  QueryRequest request;
  request.kind = RequestKind::kSimilarTo;
  request.id = 0;
  request.k = 5;  // No quality knobs: the caller asked for exact answers.
  QueryResponse response = fx->server->Execute(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.approximate);
  ASSERT_EQ(response.neighbors.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(response.neighbors[i].id, (*expected)[i].id);
    EXPECT_DOUBLE_EQ(response.neighbors[i].distance, (*expected)[i].distance);
  }
  EXPECT_EQ(CounterValue(*fx->server, "approx_degraded"), 0u);
}

TEST(ApproxServerTest, ApproxRungCanBeDisabled) {
  auto fx = MakeFaultyFixture(/*degrade_to_approx=*/false);
  io::FaultPlan plan;
  plan.read_fault_rate = 1.0;
  fx->fault_env.set_plan(plan);

  QueryRequest request;
  request.kind = RequestKind::kSimilarTo;
  request.id = 0;
  request.k = 5;
  request.recall_target = 0.95;  // Knob set, but the rung is switched off.
  QueryResponse response = fx->server->Execute(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.approximate);
  EXPECT_EQ(CounterValue(*fx->server, "approx_degraded"), 0u);
}

// --- Introspection -----------------------------------------------------------

TEST(ApproxServerTest, ApproxInfoSnapshot) {
  auto server = MakeRamServer();
  S2Server::ApproxInfo info = server->approx_info();
  EXPECT_TRUE(info.enabled);
  EXPECT_GT(info.summary_dims, 0u);
  EXPECT_GT(info.summary_cells, 0u);
  EXPECT_GT(info.summary_bytes, 0u);
  EXPECT_EQ(info.indexed_series, kNumSeries);
  EXPECT_NE(info.config_fingerprint, 0u);

  auto sharded = MakeRamServer(/*cache_capacity=*/0, /*shards=*/4);
  S2Server::ApproxInfo sharded_info = sharded->approx_info();
  EXPECT_TRUE(sharded_info.enabled);
  EXPECT_EQ(sharded_info.indexed_series, kNumSeries);
  // The global config is shared verbatim by every shard.
  EXPECT_EQ(sharded_info.config_fingerprint, info.config_fingerprint);
}

TEST(ApproxServerTest, MetricsSnapshotNamesTheApproxCounters) {
  auto server = MakeRamServer();
  (void)server->Execute(ApproxKnn(0));
  const std::string text = server->MetricsText();
  EXPECT_NE(text.find("approx_queries"), std::string::npos);
  EXPECT_NE(text.find("approx_guaranteed_exact"), std::string::npos);
  EXPECT_NE(text.find("approx_degraded"), std::string::npos);
  EXPECT_NE(text.find("server_requests_approx_knn"), std::string::npos);
}

}  // namespace
}  // namespace s2::service
