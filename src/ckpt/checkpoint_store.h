#ifndef S2_CKPT_CHECKPOINT_STORE_H_
#define S2_CKPT_CHECKPOINT_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/manifest.h"
#include "ckpt/snapshot.h"
#include "common/result.h"
#include "io/env.h"

namespace s2::ckpt {

/// Owns the on-disk checkpoint family rooted at one base path:
///
///   <base>.manifest        the MANIFEST (durable generation container)
///   <base>.ckpt.<gen>      one snapshot per retained generation (same
///                          container; <gen> matches the manifest)
///
/// Commit protocol (crash-safe at every step):
///   1. the new snapshot is committed at generation G = manifest gen + 1
///      via write-temp / fsync / atomic-rename;
///   2. the manifest naming G (with the old current demoted to `prev`) is
///      committed the same way.
/// A crash before (2) leaves an orphan snapshot the next GC sweeps; a
/// crash inside either rename resolves to old-or-new complete file by the
/// container contract. The manifest therefore never names a snapshot that
/// was not fully durable first.
///
/// Load picks the manifest's current snapshot, falling back to `prev`
/// when the current one is missing or corrupt — the fallback anchor is
/// older, so recovery replays a longer WAL tail but loses nothing.
///
/// Thread safety: none; the server serializes checkpoint commits on its
/// maintenance thread.
class CheckpointStore {
 public:
  CheckpointStore(io::Env* env, std::string base);

  /// What recovery starts from.
  struct Loaded {
    EngineSnapshot snapshot;
    Manifest manifest;
    /// The current generation failed validation and `snapshot` is the
    /// previous one (replay will start from its older anchor).
    bool from_fallback = false;
  };

  /// Commits `snapshot` as the next generation, then the manifest naming
  /// it. `manifest_out` (may be null) receives the committed manifest.
  /// On failure the previous checkpoint family is untouched.
  Status Commit(const EngineSnapshot& snapshot, uint64_t shard_count,
                std::vector<uint64_t> shard_checksums,
                std::vector<SegmentMeta> data_segments,
                std::vector<SegmentMeta> monitor_segments,
                Manifest* manifest_out);

  /// Loads the newest recoverable checkpoint. NotFound when no manifest
  /// exists (cold start — replay the full WAL); Corruption when a
  /// manifest family exists but neither recorded generation validates.
  Result<Loaded> Load();

  /// Removes snapshot files of retired generations: everything older
  /// than the manifest's fallback (or current, when no fallback) plus
  /// orphans newer than current (a crash between snapshot and manifest
  /// commits). Returns the number of files removed.
  Result<size_t> GarbageCollectSnapshots(const Manifest& manifest);

  const std::string& base() const { return base_; }
  std::string ManifestPath() const { return base_ + ".manifest"; }
  std::string SnapshotPath(uint64_t generation) const {
    return base_ + ".ckpt." + std::to_string(generation);
  }

  /// FNV-1a over a corpus slice (name, start_day, values per series, in
  /// the given order) — the manifest's per-shard cross-check.
  static uint64_t CorpusChecksum(const std::vector<ts::TimeSeries>& series);

 private:
  Status LoadSnapshotAt(uint64_t generation, EngineSnapshot* out);

  io::Env* env_;
  std::string base_;
};

}  // namespace s2::ckpt

#endif  // S2_CKPT_CHECKPOINT_STORE_H_
