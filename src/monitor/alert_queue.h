#ifndef S2_MONITOR_ALERT_QUEUE_H_
#define S2_MONITOR_ALERT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "base/sync.h"
#include "base/thread_annotations.h"
#include "monitor/subscription.h"

namespace s2::monitor {

/// Bounded, overflow-accounted alert delivery queue with at-least-once
/// drain semantics.
///
/// `Push` assigns every alert the next global sequence number in fire
/// order; because appends are externally serialized (the server's writer
/// lock) and per-series evaluation walks subscriptions in registration
/// order, sequence assignment is deterministic — the same append schedule
/// produces the same (seq, alert) stream regardless of shard count or
/// maintenance mode, which is what monitor_equivalence_test pins.
///
/// Delivery contract:
///  * `Poll` *peeks* — alerts stay queued until acknowledged, so a consumer
///    that crashes after a poll sees the same alerts again (at-least-once).
///  * `Ack(upto)` retires every queued alert with `seq <= upto` and
///    advances the acknowledged watermark.
///  * When a push would exceed `capacity`, the *oldest* unacknowledged
///    alerts are dropped and counted; consumers detect the loss window as a
///    gap between their last acknowledged seq and the head's seq (plus the
///    `dropped` counter for the aggregate).
///
/// Thread safety: fully synchronized — producers (append path, any shard)
/// and consumers (poll/ack verbs) may run concurrently.
class AlertQueue {
 public:
  struct Options {
    /// Maximum queued (fired but unacknowledged) alerts.
    size_t capacity = 1024;
  };

  struct Stats {
    uint64_t fired = 0;      ///< Alerts ever pushed (== seqs assigned).
    uint64_t dropped = 0;    ///< Alerts lost to overflow before an ack.
    uint64_t delivered = 0;  ///< Alerts handed out by Poll (re-polls count).
    uint64_t acked = 0;      ///< Alerts retired by Ack.
    uint64_t evaluations = 0;        ///< RecordEval calls (appends evaluated).
    uint64_t last_eval_micros = 0;   ///< Wall time of the latest evaluation.
    uint64_t next_seq = 0;           ///< Seq the next fired alert will get.
    uint64_t acked_upto = 0;         ///< Highest acknowledged seq (watermark).
    bool any_acked = false;          ///< Whether acked_upto is meaningful.
    size_t depth = 0;                ///< Alerts currently queued.
  };

  AlertQueue() : AlertQueue(Options{}) {}
  explicit AlertQueue(Options options) : options_(options) {}

  AlertQueue(const AlertQueue&) = delete;
  AlertQueue& operator=(const AlertQueue&) = delete;

  /// Enqueues `alerts` in order, assigning each the next sequence number,
  /// then drops from the front (oldest first) anything beyond capacity.
  void Push(std::vector<Alert> alerts);

  /// Copies up to `max` alerts from the head without removing them,
  /// in (seq, series) order — the deque is already sorted by seq.
  std::vector<Alert> Poll(size_t max) const;

  /// Retires every queued alert with `seq <= upto_seq` and advances the
  /// acknowledged watermark (monotone; acking an already-empty range is a
  /// no-op, which makes replayed acks idempotent).
  void Ack(uint64_t upto_seq);

  /// Notes one append-path evaluation pass of `micros` wall time (the
  /// server exports these into the monitor_eval_latency histogram).
  void RecordEval(uint64_t micros);

  Stats stats() const;

  /// A point-in-time copy of the queue's full state — the alert-delivery
  /// half of a coordinated checkpoint. `Restore` installs an image
  /// verbatim; together they make a revived queue indistinguishable from
  /// one that replayed the same history (same queued alerts, same seqs,
  /// same watermark and counters).
  struct Image {
    std::vector<Alert> queued;
    uint64_t next_seq = 0;
    uint64_t fired = 0;
    uint64_t dropped = 0;
    uint64_t delivered = 0;
    uint64_t acked = 0;
    uint64_t acked_upto = 0;
    bool any_acked = false;
    uint64_t evaluations = 0;
    uint64_t last_eval_micros = 0;
  };

  Image Snapshot() const;
  void Restore(const Image& image);

 private:
  Options options_;
  mutable sync::Mutex mu_{sync::LockRank::kAlertQueue, "monitor::AlertQueue"};
  std::deque<Alert> queue_ S2_GUARDED_BY(mu_);
  uint64_t next_seq_ S2_GUARDED_BY(mu_) = 0;
  uint64_t fired_ S2_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ S2_GUARDED_BY(mu_) = 0;
  mutable uint64_t delivered_ S2_GUARDED_BY(mu_) = 0;
  uint64_t acked_ S2_GUARDED_BY(mu_) = 0;
  uint64_t acked_upto_ S2_GUARDED_BY(mu_) = 0;
  bool any_acked_ S2_GUARDED_BY(mu_) = false;
  uint64_t evaluations_ S2_GUARDED_BY(mu_) = 0;
  uint64_t last_eval_micros_ S2_GUARDED_BY(mu_) = 0;
};

}  // namespace s2::monitor

#endif  // S2_MONITOR_ALERT_QUEUE_H_
