# Empty compiler generated dependencies file for bench_query_by_burst.
# This may be replaced when dependencies are built.
