file(REMOVE_RECURSE
  "CMakeFiles/feature_store_test.dir/feature_store_test.cc.o"
  "CMakeFiles/feature_store_test.dir/feature_store_test.cc.o.d"
  "feature_store_test"
  "feature_store_test.pdb"
  "feature_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
