#ifndef S2_DTW_DTW_H_
#define S2_DTW_DTW_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace s2::dtw {

/// Dynamic time warping distance (paper Section 8's "expensive distance
/// measure"), with an optional Sakoe-Chiba band constraint.
///
/// `DtwDistance(a, b, w)` returns
///   sqrt( min over monotone alignment paths of sum (a_i - b_j)^2 )
/// where paths may deviate at most `window` steps from the diagonal
/// (window == 0 means the unconstrained full matrix). Defined for
/// equal-length sequences, like the rest of the library. Computed with an
/// O(n * window) rolling-array dynamic program.
///
/// With squared point costs and the identity path always admissible,
/// `DtwDistance(a, b, w) <= Euclidean(a, b)` for every window — which is
/// what lets the Euclidean *upper* bounds of the compressed representations
/// double as DTW upper bounds (see dtw_search.h).
Result<double> DtwDistance(const std::vector<double>& a,
                           const std::vector<double>& b, size_t window);

/// Early-abandoning variant: returns early (with a value > `abandon_after`)
/// as soon as every cell of a DP row exceeds `abandon_after`^2, since the
/// final distance can then only be larger. Pass +infinity to disable.
Result<double> DtwDistanceEarlyAbandon(const std::vector<double>& a,
                                       const std::vector<double>& b,
                                       size_t window, double abandon_after);

/// Squared-domain variant for exact gating: abandons once every cell of a
/// DP row exceeds `abandon_sq` and returns that row minimum; otherwise
/// returns the complete squared DTW distance. The result is <= abandon_sq
/// exactly when it is complete, so callers compare `sq <= radius * radius`
/// and only sqrt accepted candidates — immune to the sqrt-rounding hazard
/// described at dsp::SquaredEuclideanEarlyAbandon.
Result<double> DtwDistanceEarlyAbandonSq(const std::vector<double>& a,
                                         const std::vector<double>& b,
                                         size_t window, double abandon_sq);

/// The Keogh warping envelope of a sequence: for each position i,
///   upper[i] = max(q[i-w .. i+w]),  lower[i] = min(q[i-w .. i+w])
/// (clipped at the edges). Computed in O(n) with monotonic deques.
struct Envelope {
  std::vector<double> upper;
  std::vector<double> lower;
};
Result<Envelope> ComputeEnvelope(const std::vector<double>& q, size_t window);

/// LB_Keogh (Keogh, VLDB 2002): a lower bound on the windowed DTW distance
/// between the enveloped query and `candidate`:
///   sqrt( sum_i (c_i - upper_i)^2 if c_i > upper_i,
///                (lower_i - c_i)^2 if c_i < lower_i, else 0 ).
/// Costs O(n); supports early abandoning via `abandon_after` (+infinity to
/// disable).
Result<double> LbKeogh(const Envelope& query_envelope,
                       const std::vector<double>& candidate,
                       double abandon_after);

/// Squared LB_Keogh with the s2::simd blocked early-abandon contract: the
/// partial sum is checked against `abandon_sq` every 16 elements, and the
/// result is <= abandon_sq exactly when it is the complete squared bound.
/// Vectorized under the active dispatch, bit-identical across backends.
Result<double> LbKeoghSq(const Envelope& query_envelope,
                         const std::vector<double>& candidate,
                         double abandon_sq);

}  // namespace s2::dtw

#endif  // S2_DTW_DTW_H_
