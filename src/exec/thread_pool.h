#ifndef S2_EXEC_THREAD_POOL_H_
#define S2_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/sync.h"
#include "base/thread_annotations.h"

namespace s2::exec {

/// A fixed-size thread pool with a single shared FIFO task queue.
///
/// Deliberately simple (no work stealing): tasks are coarse-grained — whole
/// serving requests, or whole shard builds/searches in `s2::shard` — so a
/// shared queue under one mutex is nowhere near contention-bound and keeps
/// FIFO fairness, which the scheduler's deadline semantics rely on.
///
/// ## Contract (pinned by tests/thread_pool_test.cc)
///
/// The sharded engine leans on this pool much harder than the scheduler
/// does, so the exact stop/drain semantics are spelled out and regression-
/// tested rather than implied:
///
///  1. `Submit` returns true iff the task was enqueued; an enqueued task
///     runs exactly once. It returns false — and the task is dropped,
///     never run — from the moment `Shutdown` has set the stopping flag,
///     including submissions racing `Shutdown` from other threads and
///     submissions made *by running tasks* during the drain. Callers must
///     complete any associated promise/latch themselves on false.
///  2. `Shutdown` is a graceful drain: every task enqueued before the
///     stopping flag was set runs to completion before `Shutdown` returns.
///     It is idempotent and safe to call concurrently from several threads;
///     late callers return without touching the workers (the first caller
///     joins them).
///  3. Exceptions do not cross the pool boundary: a task that throws is
///     contained by the worker (the exception is swallowed, the worker
///     survives, later tasks still run) and counted in `tasks_aborted()`.
///     Status-based code never throws, so a nonzero count is always a bug
///     signal — but it degrades to a counter, not a `std::terminate`.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task per contract rule 1.
  bool Submit(std::function<void()> task);

  /// Drains the queue and joins all workers per contract rule 2.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued (not yet picked up by a worker).
  size_t queue_depth() const;

  /// Tasks whose exception was contained by a worker (contract rule 3).
  uint64_t tasks_aborted() const {
    return tasks_aborted_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  mutable sync::Mutex mu_{sync::LockRank::kThreadPool, "exec::ThreadPool"};
  sync::CondVar cv_;
  std::deque<std::function<void()>> tasks_ S2_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool stopping_ S2_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> tasks_aborted_{0};
};

}  // namespace s2::exec

#endif  // S2_EXEC_THREAD_POOL_H_
