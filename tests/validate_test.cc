#include "diag/validate.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "burst/burst_table.h"
#include "common/rng.h"
#include "common/status.h"
#include "index/mvp_tree.h"
#include "index/vp_tree.h"
#include "storage/bptree.h"
#include "storage/sequence_store.h"

namespace s2::storage {

// Test-only backdoor for corrupting private B+-tree state.
struct BPlusTreeTestPeer {
  template <typename Tree>
  static auto* Root(Tree* tree) {
    return tree->root_.get();
  }
  template <typename Tree>
  static void SetSize(Tree* tree, size_t size) {
    tree->size_ = size;
  }
};

}  // namespace s2::storage

namespace s2::index {

struct VpTreeTestPeer {
  static auto& Nodes(VpTreeIndex* index) { return index->nodes_; }
  static void SetNumObjects(VpTreeIndex* index, size_t n) {
    index->num_objects_ = n;
  }
};

struct MvpTreeTestPeer {
  static auto& Nodes(MvpTreeIndex* index) { return index->nodes_; }
  static void SetNumObjects(MvpTreeIndex* index, size_t n) {
    index->num_objects_ = n;
  }
};

}  // namespace s2::index

namespace s2::burst {

struct BurstTableTestPeer {
  static std::vector<BurstRecord>& Records(BurstTable* table) {
    return table->records_;
  }
};

}  // namespace s2::burst

namespace s2::diag {
namespace {

// ---------------------------------------------------------------------------
// Validator itself.

TEST(ValidatorTest, CleanValidatorIsOk) {
  Validator v("Thing");
  v.Check(true) << "never recorded";
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.violation_count(), 0u);
  EXPECT_TRUE(v.ToStatus().ok());
}

TEST(ValidatorTest, FailingCheckRecordsStreamedDetail) {
  Validator v("Thing");
  v.Check(false) << "slot " << 3 << " broke";
  EXPECT_FALSE(v.ok());
  ASSERT_EQ(v.violations().size(), 1u);
  EXPECT_EQ(v.violations().front(), "slot 3 broke");
  const Status status = v.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(status.message(), "Thing: slot 3 broke");
}

TEST(ValidatorTest, MultipleViolationsJoinWithSemicolons) {
  Validator v("Thing");
  v.AddViolation("first");
  v.Check(false) << "second";
  EXPECT_EQ(v.ToStatus().message(), "Thing: first; second");
}

TEST(ValidatorTest, ViolationsAreCappedButCounted) {
  Validator v("Thing");
  for (int i = 0; i < 20; ++i) v.AddViolation("v" + std::to_string(i));
  EXPECT_EQ(v.violations().size(), Validator::kMaxViolations);
  EXPECT_EQ(v.violation_count(), 20u);
  // The summary must admit that violations were dropped.
  EXPECT_NE(v.ToStatus().message().find("12 more"), std::string::npos);
}

TEST(ValidatorTest, CorruptionErrorFormatsLikeSingleViolation) {
  const Status status = CorruptionError("Pager", "bad magic");
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(status.message(), "Pager: bad magic");
}

// ---------------------------------------------------------------------------
// In-memory B+-tree: seeded corruptions must produce exact reports.

using TestTree = storage::BPlusTree<int64_t, uint64_t, 4>;

TestTree BuildTree(int n) {
  TestTree tree;
  s2::Rng rng(17);
  std::vector<int64_t> keys(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) keys[static_cast<size_t>(i)] = i;
  rng.Shuffle(&keys);
  for (int64_t key : keys) {
    tree.Insert(key, static_cast<uint64_t>(key) * 10);
  }
  return tree;
}

TEST(BPlusTreeValidateTest, HealthyTreeValidates) {
  TestTree tree = BuildTree(100);
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BPlusTreeValidateTest, SwappedLeafKeysAreReported) {
  TestTree tree = BuildTree(100);
  auto* node = storage::BPlusTreeTestPeer::Root(&tree);
  while (!node->leaf) node = node->children.front().get();
  ASSERT_GE(node->keys.size(), 2u);
  std::swap(node->keys[0], node->keys[1]);
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("keys not sorted"), std::string::npos);
}

TEST(BPlusTreeValidateTest, SeparatorViolationIsReported) {
  TestTree tree = BuildTree(100);
  auto* root = storage::BPlusTreeTestPeer::Root(&tree);
  ASSERT_FALSE(root->leaf);
  // Push a key of the leftmost subtree above the first separator.
  auto* node = root->children.front().get();
  while (!node->leaf) node = node->children.front().get();
  node->keys.back() = 1000;
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("above the separator window"),
            std::string::npos);
}

TEST(BPlusTreeValidateTest, BrokenLeafChainIsReported) {
  TestTree tree = BuildTree(100);
  auto* node = storage::BPlusTreeTestPeer::Root(&tree);
  while (!node->leaf) node = node->children.front().get();
  ASSERT_NE(node->next, nullptr);
  node->next = node->next->next;  // Skip one leaf.
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("leaf chain"), std::string::npos);
}

TEST(BPlusTreeValidateTest, SizeMismatchIsReported) {
  TestTree tree = BuildTree(50);
  storage::BPlusTreeTestPeer::SetSize(&tree, 49);
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("!= size()"), std::string::npos);
  EXPECT_FALSE(tree.CheckInvariants());
}

// ---------------------------------------------------------------------------
// VP-tree.

std::vector<std::vector<double>> MakeRows(size_t n, size_t length,
                                          uint64_t seed) {
  s2::Rng rng(seed);
  std::vector<std::vector<double>> rows(n, std::vector<double>(length));
  for (auto& row : rows) {
    for (double& x : row) x = rng.Normal(0.0, 1.0);
  }
  return rows;
}

index::VpTreeIndex BuildVpTree(const std::vector<std::vector<double>>& rows) {
  index::VpTreeIndex::Options options;
  options.leaf_size = 4;
  auto built = index::VpTreeIndex::Build(rows, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST(VpTreeValidateTest, HealthyTreeValidatesWithExactDistances) {
  const auto rows = MakeRows(60, 32, 3);
  index::VpTreeIndex tree = BuildVpTree(rows);
  auto source = storage::InMemorySequenceSource::Create(rows);
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(tree.Validate(source->get()).ok());
}

TEST(VpTreeValidateTest, NegativeRadiusIsReported) {
  index::VpTreeIndex tree = BuildVpTree(MakeRows(60, 32, 3));
  for (auto& node : index::VpTreeTestPeer::Nodes(&tree)) {
    if (!node.leaf) {
      node.median = -1.0;
      break;
    }
  }
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("invalid split radius"), std::string::npos);
}

TEST(VpTreeValidateTest, BrokenRadiusFailsExactDistanceCheck) {
  const auto rows = MakeRows(60, 32, 3);
  index::VpTreeIndex tree = BuildVpTree(rows);
  // Shrink one internal radius so its left subtree spills outside it.
  for (auto& node : index::VpTreeTestPeer::Nodes(&tree)) {
    if (!node.leaf && node.left != -1) {
      node.median /= 4.0;
      break;
    }
  }
  auto source = storage::InMemorySequenceSource::Create(rows);
  ASSERT_TRUE(source.ok());
  const Status status = tree.Validate(source->get());
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("vantage point"), std::string::npos);
}

TEST(VpTreeValidateTest, SharedChildIsReported) {
  index::VpTreeIndex tree = BuildVpTree(MakeRows(60, 32, 3));
  auto& nodes = index::VpTreeTestPeer::Nodes(&tree);
  for (auto& node : nodes) {
    if (!node.leaf && node.left != -1 && node.right != -1) {
      node.right = node.left;  // Two edges into one subtree.
      break;
    }
  }
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("reachable twice"), std::string::npos);
}

TEST(VpTreeValidateTest, ObjectCountMismatchIsReported) {
  index::VpTreeIndex tree = BuildVpTree(MakeRows(60, 32, 3));
  index::VpTreeTestPeer::SetNumObjects(&tree, 59);
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("census finds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MVP-tree.

index::MvpTreeIndex BuildMvpTree(const std::vector<std::vector<double>>& rows) {
  index::MvpTreeIndex::Options options;
  options.leaf_size = 4;
  auto built = index::MvpTreeIndex::Build(rows, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST(MvpTreeValidateTest, HealthyTreeValidatesWithExactDistances) {
  const auto rows = MakeRows(80, 32, 5);
  index::MvpTreeIndex tree = BuildMvpTree(rows);
  auto source = storage::InMemorySequenceSource::Create(rows);
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(tree.Validate(source->get()).ok());
}

TEST(MvpTreeValidateTest, BrokenVp1RadiusFailsExactDistanceCheck) {
  const auto rows = MakeRows(80, 32, 5);
  index::MvpTreeIndex tree = BuildMvpTree(rows);
  for (auto& node : index::MvpTreeTestPeer::Nodes(&tree)) {
    if (!node.leaf) {
      node.mu1 /= 4.0;
      break;
    }
  }
  auto source = storage::InMemorySequenceSource::Create(rows);
  ASSERT_TRUE(source.ok());
  const Status status = tree.Validate(source->get());
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("vp1 window"), std::string::npos);
}

TEST(MvpTreeValidateTest, OutOfRangeChildIsReported) {
  index::MvpTreeIndex tree = BuildMvpTree(MakeRows(80, 32, 5));
  auto& nodes = index::MvpTreeTestPeer::Nodes(&tree);
  for (auto& node : nodes) {
    if (!node.leaf) {
      node.children[0] = static_cast<int32_t>(nodes.size()) + 7;
      break;
    }
  }
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("out of range"), std::string::npos);
}

TEST(MvpTreeValidateTest, ObjectCountMismatchIsReported) {
  index::MvpTreeIndex tree = BuildMvpTree(MakeRows(80, 32, 5));
  index::MvpTreeTestPeer::SetNumObjects(&tree, 3);
  const Status status = tree.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("census finds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Burst table.

burst::BurstTable BuildBurstTable() {
  burst::BurstTable table;
  s2::Rng rng(23);
  for (ts::SeriesId id = 0; id < 20; ++id) {
    std::vector<burst::BurstRegion> regions;
    const int count = static_cast<int>(rng.UniformInt(1, 4));
    for (int i = 0; i < count; ++i) {
      const int32_t start = static_cast<int32_t>(rng.UniformInt(0, 300));
      regions.push_back(
          {start, start + static_cast<int32_t>(rng.UniformInt(0, 20)),
           rng.Uniform(0.5, 3.0)});
    }
    table.Insert(id, regions, /*offset=*/0);
  }
  return table;
}

TEST(BurstTableValidateTest, HealthyTableValidates) {
  burst::BurstTable table = BuildBurstTable();
  EXPECT_TRUE(table.Validate().ok());
}

TEST(BurstTableValidateTest, InvertedIntervalIsReported) {
  burst::BurstTable table = BuildBurstTable();
  auto& records = burst::BurstTableTestPeer::Records(&table);
  std::swap(records[2].start, records[2].end);
  records[2].start += 50;  // Guarantee start > end.
  const Status status = table.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("inverted interval"), std::string::npos);
}

TEST(BurstTableValidateTest, IndexDisagreementIsReported) {
  burst::BurstTable table = BuildBurstTable();
  // Move a record's start date without touching the index.
  burst::BurstTableTestPeer::Records(&table)[5].start += 1;
  const Status status = table.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("start date"), std::string::npos);
}

}  // namespace
}  // namespace s2::diag
