#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "querylog/corpus_generator.h"
#include "storage/sequence_store.h"

namespace s2::index {
namespace {

std::vector<std::vector<double>> MakeRows(size_t count, size_t n_days,
                                          uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = count;
  spec.n_days = n_days;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  std::vector<std::vector<double>> rows;
  for (const auto& series : corpus->series()) {
    rows.push_back(dsp::Standardize(series.values));
  }
  return rows;
}

// Ground truth over an explicit id set.
std::vector<ts::SeriesId> BruteForceKnn(const std::vector<std::vector<double>>& rows,
                                        const std::vector<ts::SeriesId>& live,
                                        const std::vector<double>& query, size_t k) {
  std::vector<std::pair<double, ts::SeriesId>> dists;
  for (ts::SeriesId id : live) {
    dists.emplace_back(*dsp::Euclidean(query, rows[id]), id);
  }
  std::sort(dists.begin(), dists.end());
  std::vector<ts::SeriesId> out;
  for (size_t i = 0; i < std::min(k, dists.size()); ++i) out.push_back(dists[i].second);
  return out;
}

class VpTreeDynamicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rows_ = MakeRows(160, 128, 31);
    auto source = storage::InMemorySequenceSource::Create(rows_);
    ASSERT_TRUE(source.ok());
    source_ = std::move(source).ValueOrDie();

    // Build over the first 100; the rest arrive dynamically.
    std::vector<std::vector<double>> initial(rows_.begin(), rows_.begin() + 100);
    VpTreeIndex::Options options;
    options.budget_c = 16;
    options.leaf_size = 4;
    auto index = VpTreeIndex::Build(initial, options);
    ASSERT_TRUE(index.ok());
    index_ = std::make_unique<VpTreeIndex>(std::move(index).ValueOrDie());
    for (ts::SeriesId id = 0; id < 100; ++id) live_.push_back(id);
  }

  void CheckExactness(size_t k) {
    for (ts::SeriesId query_id : {0u, 50u, 120u, 159u}) {
      const auto expected = BruteForceKnn(rows_, live_, rows_[query_id], k);
      auto got = index_->Search(rows_[query_id], k, source_.get(), nullptr);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        const double want = *dsp::Euclidean(rows_[query_id], rows_[expected[i]]);
        EXPECT_NEAR((*got)[i].distance, want, 1e-9) << "rank " << i;
      }
    }
  }

  std::vector<std::vector<double>> rows_;
  std::unique_ptr<storage::InMemorySequenceSource> source_;
  std::unique_ptr<VpTreeIndex> index_;
  std::vector<ts::SeriesId> live_;
};

TEST_F(VpTreeDynamicTest, InsertValidates) {
  EXPECT_EQ(index_->Insert(200, std::vector<double>(5, 0.0), source_.get()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->Insert(200, rows_[100], nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->Insert(50, rows_[50], source_.get()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(VpTreeDynamicTest, InsertedObjectsAreFound) {
  for (ts::SeriesId id = 100; id < 160; ++id) {
    ASSERT_TRUE(index_->Insert(id, rows_[id], source_.get()).ok()) << id;
    live_.push_back(id);
  }
  EXPECT_EQ(index_->size(), 160u);
  CheckExactness(1);
  CheckExactness(5);
  // Every inserted object must find itself at distance 0.
  for (ts::SeriesId id = 100; id < 160; ++id) {
    auto got = index_->Search(rows_[id], 1, source_.get(), nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR((*got)[0].distance, 0.0, 1e-9);
  }
}

TEST_F(VpTreeDynamicTest, RemoveLeafObject) {
  // Id 0..99 are indexed; remove a handful and verify they never come back.
  for (ts::SeriesId id : {3u, 17u, 42u, 77u}) {
    ASSERT_TRUE(index_->Remove(id).ok());
    live_.erase(std::find(live_.begin(), live_.end(), id));
  }
  EXPECT_EQ(index_->size(), 96u);
  CheckExactness(3);
  for (ts::SeriesId id : {3u, 17u, 42u, 77u}) {
    auto got = index_->Search(rows_[id], 3, source_.get(), nullptr);
    ASSERT_TRUE(got.ok());
    for (const auto& n : *got) EXPECT_NE(n.id, id);
  }
}

TEST_F(VpTreeDynamicTest, RemoveUnknownIdIsNotFound) {
  EXPECT_EQ(index_->Remove(999).code(), StatusCode::kNotFound);
}

TEST_F(VpTreeDynamicTest, RemoveVantagePointTombstones) {
  // Remove every id once; all removals must succeed regardless of whether
  // the id is a leaf object or a vantage point.
  for (ts::SeriesId id = 0; id < 100; ++id) {
    ASSERT_TRUE(index_->Remove(id).ok()) << id;
  }
  EXPECT_EQ(index_->size(), 0u);
  EXPECT_GT(index_->num_tombstones(), 0u);
  // Double removal fails.
  EXPECT_EQ(index_->Remove(0).code(), StatusCode::kNotFound);
}

TEST_F(VpTreeDynamicTest, RemoveWithWrongLengthPinIsRejected) {
  const std::vector<double> short_pin(5, 0.0);
  EXPECT_EQ(index_->Remove(0, &short_pin).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index_->size(), 100u);  // Nothing was removed.
}

TEST_F(VpTreeDynamicTest, CreateEmptyGrowsPurelyThroughInserts) {
  // The delta tier of the streaming layer starts from zero objects.
  VpTreeIndex::Options options;
  options.budget_c = 16;
  options.leaf_size = 4;
  auto delta = VpTreeIndex::CreateEmpty(options, 128);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->size(), 0u);

  auto none = delta->Search(rows_[0], 5, source_.get(), nullptr);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  std::vector<ts::SeriesId> live;
  for (ts::SeriesId id = 100; id < 160; ++id) {
    ASSERT_TRUE(delta->Insert(id, rows_[id], source_.get()).ok()) << id;
    live.push_back(id);
  }
  EXPECT_EQ(delta->size(), 60u);
  ASSERT_TRUE(delta->Validate(source_.get()).ok());
  for (ts::SeriesId query_id : {0u, 130u, 159u}) {
    const auto expected = BruteForceKnn(rows_, live, rows_[query_id], 5);
    auto got = delta->Search(rows_[query_id], 5, source_.get(), nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      const double want = *dsp::Euclidean(rows_[query_id], rows_[expected[i]]);
      EXPECT_NEAR((*got)[i].distance, want, 1e-9) << "rank " << i;
    }
  }
}

TEST_F(VpTreeDynamicTest, PinnedRowsSurviveStoreRowChangesAndReinsertion) {
  // Tombstone a batch of ids, pinning each row at removal time. Some of the
  // removals hit vantage points (tombstones), some leaf objects.
  std::vector<ts::SeriesId> removed;
  for (ts::SeriesId id = 0; id < 100 && index_->num_tombstones() < 6; id += 5) {
    ASSERT_TRUE(index_->Remove(id, &rows_[id]).ok()) << id;
    removed.push_back(id);
    live_.erase(std::find(live_.begin(), live_.end(), id));
  }
  ASSERT_GT(index_->num_tombstones(), 0u);

  // The streaming append path slides each removed series' window in place:
  // the store's row for a tombstoned vantage changes under the tree.
  Rng rng(5);
  for (ts::SeriesId id : removed) {
    std::vector<double> slid(rows_[id].size());
    for (double& v : slid) v = rng.Normal(0.0, 1.0);
    rows_[id] = slid;
    ASSERT_TRUE(source_->Update(id, slid).ok());
  }

  // ...then re-inserts the series under its new row. Tombstoned ids are not
  // "contained", so the same id re-enters; any routing that crosses its own
  // tombstone must use the pinned old row — routing by the store's new row
  // would contradict the medians built around the old one.
  for (ts::SeriesId id : removed) {
    ASSERT_TRUE(index_->Insert(id, rows_[id], source_.get()).ok()) << id;
    live_.push_back(id);
  }
  ASSERT_TRUE(index_->Validate(source_.get()).ok());
  CheckExactness(1);
  CheckExactness(5);
  // Every re-inserted series finds its new self at distance zero.
  for (ts::SeriesId id : removed) {
    auto got = index_->Search(rows_[id], 1, source_.get(), nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0].id, id);
    EXPECT_NEAR((*got)[0].distance, 0.0, 1e-9);
  }
}

TEST_F(VpTreeDynamicTest, MixedWorkloadStaysExact) {
  Rng rng(99);
  std::vector<ts::SeriesId> pending;
  for (ts::SeriesId id = 100; id < 160; ++id) pending.push_back(id);

  for (int step = 0; step < 120; ++step) {
    const bool do_insert = !pending.empty() && (live_.size() < 40 || rng.Bernoulli(0.55));
    if (do_insert) {
      const ts::SeriesId id = pending.back();
      pending.pop_back();
      ASSERT_TRUE(index_->Insert(id, rows_[id], source_.get()).ok());
      live_.push_back(id);
    } else if (!live_.empty()) {
      const size_t slot =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live_.size()) - 1));
      ASSERT_TRUE(index_->Remove(live_[slot]).ok());
      live_.erase(live_.begin() + static_cast<ptrdiff_t>(slot));
    }
  }
  ASSERT_EQ(index_->size(), live_.size());
  CheckExactness(1);
  CheckExactness(5);
}

TEST_F(VpTreeDynamicTest, SplitsPreserveExactnessUnderHeavyInsertion) {
  // Insert enough into one index to force many leaf splits.
  const auto extra = MakeRows(200, 128, 77);
  std::vector<std::vector<double>> all_rows = rows_;
  all_rows.insert(all_rows.end(), extra.begin(), extra.end());
  auto big_source = storage::InMemorySequenceSource::Create(all_rows);
  ASSERT_TRUE(big_source.ok());

  for (ts::SeriesId id = 100; id < 360; ++id) {
    ASSERT_TRUE(index_->Insert(id, all_rows[id], big_source->get()).ok()) << id;
  }
  EXPECT_EQ(index_->size(), 360u);

  // Exactness vs linear scan over everything.
  LinearScan scan(big_source->get());
  for (ts::SeriesId query_id : {10u, 150u, 359u}) {
    auto expected = scan.Search(all_rows[query_id], 5);
    auto got = index_->Search(all_rows[query_id], 5, big_source->get(), nullptr);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR((*got)[i].distance, (*expected)[i].distance, 1e-9);
    }
  }
}

}  // namespace
}  // namespace s2::index
