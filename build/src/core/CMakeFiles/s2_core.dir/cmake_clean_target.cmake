file(REMOVE_RECURSE
  "libs2_core.a"
)
