// Reproduces paper Figure 22: pruning power. For a set of held-out queries,
// measure the average fraction F of database objects whose full sequence
// must be examined to find the exact 1-NN, using only the compressed
// bounds: compute LB/UB for every object, drop objects with LB > SUB
// (smallest upper bound), then fetch survivors in ascending-LB order with
// the best-so-far early stop. No index structure is involved — this
// isolates the quality of the distance bounds, as in the paper.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dsp/stats.h"
#include "querylog/corpus_generator.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2 {
namespace {

struct MethodSpec {
  repr::BoundMethod method;
  repr::ReprKind kind;
  const char* label;
};

// Average fraction of objects examined over all queries.
double FractionExamined(const std::vector<std::vector<double>>& rows,
                        const std::vector<repr::HalfSpectrum>& spectra,
                        const std::vector<std::vector<double>>& queries,
                        const MethodSpec& spec, size_t c, size_t db_size) {
  // Pre-compress the database once per (method, budget).
  std::vector<repr::CompressedSpectrum> compressed;
  compressed.reserve(db_size);
  for (size_t i = 0; i < db_size; ++i) {
    auto rep = repr::CompressedSpectrum::Compress(spectra[i], spec.kind, c);
    if (!rep.ok()) return std::nan("");
    compressed.push_back(std::move(rep).ValueOrDie());
  }

  double fraction_sum = 0.0;
  for (const auto& query : queries) {
    auto query_spectrum = repr::HalfSpectrum::FromSeries(query);
    if (!query_spectrum.ok()) return std::nan("");

    struct Entry {
      uint32_t id;
      double lb;
      double ub;
    };
    std::vector<Entry> entries;
    entries.reserve(db_size);
    double sub = std::numeric_limits<double>::infinity();
    for (uint32_t id = 0; id < db_size; ++id) {
      auto bounds =
          repr::ComputeBounds(*query_spectrum, compressed[id], spec.method);
      if (!bounds.ok()) return std::nan("");
      entries.push_back({id, bounds->lower, bounds->upper});
      sub = std::min(sub, bounds->upper);
    }
    // SUB filter (skipped implicitly for GEMINI where all UB are infinite).
    std::erase_if(entries, [sub](const Entry& e) { return e.lb > sub; });
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.lb < b.lb; });

    size_t examined = 0;
    double best = std::numeric_limits<double>::infinity();
    for (const Entry& entry : entries) {
      if (entry.lb > best) break;
      ++examined;
      const double dist = dsp::EuclideanEarlyAbandon(
          query, rows[entry.id],
          std::isinf(best) ? std::numeric_limits<double>::infinity()
                           : best * best);
      best = std::min(best, dist);
    }
    fraction_sum += static_cast<double>(examined) / static_cast<double>(db_size);
  }
  return fraction_sum / static_cast<double>(queries.size());
}

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t max_db = bench::ArgSize(argc, argv, "--db", 32768);
  const size_t n_days = bench::ArgSize(argc, argv, "--days", 1024);
  const size_t n_queries = bench::ArgSize(argc, argv, "--queries", 100);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_pruning.json");
  bench::Json json_rows = bench::Json::Array();

  bench::PrintHeader(
      "Figure 22: fraction of database objects examined for exact 1-NN (" +
      std::to_string(n_queries) + " held-out queries)");

  qlog::CorpusSpec spec;
  spec.num_series = max_db;
  spec.n_days = n_days;
  spec.seed = 22;
  std::printf("generating corpus of %zu x %zu ...\n", max_db, n_days);
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) return 1;
  const auto rows = bench::StandardizedRows(*corpus);
  auto held_out = qlog::GenerateQueries(spec, n_queries);
  if (!held_out.ok()) return 1;
  std::vector<std::vector<double>> queries;
  for (const auto& q : *held_out) {
    queries.push_back(dsp::Standardize(q.values));
  }

  std::printf("computing spectra ...\n");
  std::vector<repr::HalfSpectrum> spectra;
  spectra.reserve(rows.size());
  for (const auto& row : rows) {
    auto s = repr::HalfSpectrum::FromSeries(row);
    if (!s.ok()) return 1;
    spectra.push_back(std::move(s).ValueOrDie());
  }

  const MethodSpec methods[] = {
      {repr::BoundMethod::kGemini, repr::ReprKind::kFirstKMiddle, "GEMINI"},
      {repr::BoundMethod::kWang, repr::ReprKind::kFirstKError, "Wang"},
      {repr::BoundMethod::kBestMinError, repr::ReprKind::kBestKError,
       "BestMinError"},
  };

  std::printf("\n%10s %6s %12s %12s %14s\n", "db size", "c", "GEMINI", "Wang",
              "BestMinError");
  for (size_t db_size : {max_db / 4, max_db / 2, max_db}) {
    for (size_t c : {8u, 16u, 32u}) {
      double fractions[3] = {0, 0, 0};
      for (int m = 0; m < 3; ++m) {
        fractions[m] =
            FractionExamined(rows, spectra, queries, methods[m], c, db_size);
      }
      std::printf("%10zu %6zu %12.4f %12.4f %14.4f   (-%.1f%% vs next best)\n",
                  db_size, c, fractions[0], fractions[1], fractions[2],
                  100.0 * (std::min(fractions[0], fractions[1]) - fractions[2]) /
                      std::min(fractions[0], fractions[1]));
      json_rows.Push(bench::Json::Object()
                         .Add("db", static_cast<uint64_t>(db_size))
                         .Add("budget_c", static_cast<uint64_t>(c))
                         .Add("fraction_gemini", fractions[0])
                         .Add("fraction_wang", fractions[1])
                         .Add("fraction_best_min_error", fractions[2]));
    }
  }
  std::printf(
      "\nExpected shape (paper): BestMinError examines the smallest fraction "
      "(10-35%% fewer objects than the next best method), even though it "
      "uses fewer coefficients for the same memory.\n");
  bench::WriteJsonFile(json_path,
                       bench::Json::Object()
                           .Add("bench", "bench_pruning")
                           .Add("queries", static_cast<uint64_t>(n_queries))
                           .Add("days", static_cast<uint64_t>(n_days))
                           .Add("rows", std::move(json_rows)));
  return 0;
}
