file(REMOVE_RECURSE
  "libs2_timeseries.a"
)
