#include "simd/simd.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "simd/kernels.h"

// Differential harness for the simd kernel tables (DESIGN.md §12).
//
// The contract under test: every backend compiled into this binary and
// supported by this CPU computes the *same bits* as the scalar reference
// for every kernel, every length, and every abandon threshold — including
// the partial sums returned by an abandoning kernel, which are part of the
// canonical spec. The fuzz rounds steer inputs through the hostile corners
// of IEEE double: denormals, +/-inf (whose differences manufacture NaNs),
// constant series, and thresholds planted exactly on 16-element block
// boundaries where one ulp of divergence would flip the abandon decision.

namespace s2::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t Bits(double x) {
  uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Bitwise equality, except any-NaN == any-NaN: inf - inf produces a NaN on
// every backend, but we do not insist on one particular payload.
bool BitEq(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return Bits(a) == Bits(b);
}

#define EXPECT_BITEQ(a, b, what)                                            \
  EXPECT_TRUE(BitEq((a), (b)))                                              \
      << what << ": scalar=" << (a) << " (0x" << std::hex << Bits(a)        \
      << ") other=" << (b) << " (0x" << Bits(b) << std::dec << ")"

// One fuzzed input set: two aligned-ish series plus an envelope.
struct Inputs {
  std::vector<double> a;
  std::vector<double> b;
  std::vector<double> lower;
  std::vector<double> upper;
  double mean = 0.0;
  double stddev = 1.0;
  double limit_sq = kInf;
};

// Draws one value from a mixture that covers magnitudes from denormal to
// huge, exact small integers (which expose reassociation instantly), and
// occasionally +/-inf.
double HostileValue(Rng& rng, bool allow_inf) {
  const int kind = static_cast<int>(rng.UniformInt(0, 9));
  switch (kind) {
    case 0:
      return static_cast<double>(rng.UniformInt(-8, 8));  // exact integers
    case 1:
      return rng.Uniform(-1e-308, 1e-308);  // denormal territory
    case 2:
      return rng.Uniform(-1e12, 1e12);  // large magnitudes
    case 3:
      if (allow_inf && rng.Bernoulli(0.3)) return rng.Bernoulli(0.5) ? kInf : -kInf;
      return rng.Normal(0.0, 1.0);
    default:
      return rng.Normal(0.0, 1.0);  // the common case
  }
}

Inputs MakeInputs(Rng& rng, size_t n, bool allow_inf) {
  Inputs in;
  in.a.resize(n);
  in.b.resize(n);
  in.lower.resize(n);
  in.upper.resize(n);
  const bool constant_a = rng.Bernoulli(0.1);
  const double const_val = rng.Normal(0.0, 3.0);
  for (size_t i = 0; i < n; ++i) {
    in.a[i] = constant_a ? const_val : HostileValue(rng, allow_inf);
    in.b[i] = HostileValue(rng, allow_inf);
    double lo = HostileValue(rng, allow_inf);
    double hi = HostileValue(rng, allow_inf);
    if (lo > hi) std::swap(lo, hi);
    in.lower[i] = lo;
    in.upper[i] = hi;
  }
  in.mean = rng.Normal(0.0, 2.0);
  in.stddev = rng.Bernoulli(0.05) ? 1e-300 : rng.Uniform(0.1, 10.0);
  // Thresholds: mostly infinite (no abandon), sometimes tiny (abandon at
  // the first boundary), sometimes mid-range.
  const int tk = static_cast<int>(rng.UniformInt(0, 3));
  if (tk == 0) in.limit_sq = kInf;
  else if (tk == 1) in.limit_sq = 0.0;
  else in.limit_sq = rng.Uniform(0.0, static_cast<double>(n) * 4.0);
  return in;
}

// Runs every kernel of `table` against the scalar reference on `in`,
// failing with `tag` context on any bit mismatch.
void CheckAllKernels(const KernelTable& scalar, const KernelTable& table,
                     const Inputs& in, const std::string& tag) {
  const size_t n = in.a.size();
  const double* a = in.a.data();
  const double* b = in.b.data();

  EXPECT_BITEQ(scalar.sum(a, n), table.sum(a, n), tag + " sum");
  EXPECT_BITEQ(scalar.sum_sq(a, n), table.sum_sq(a, n), tag + " sum_sq");
  EXPECT_BITEQ(scalar.centered_sum_sq(a, n, in.mean),
               table.centered_sum_sq(a, n, in.mean), tag + " centered_sum_sq");
  EXPECT_BITEQ(scalar.sum_sq_diff(a, b, n), table.sum_sq_diff(a, b, n),
               tag + " sum_sq_diff");
  EXPECT_BITEQ(scalar.sum_sq_diff_abandon(a, b, n, in.limit_sq),
               table.sum_sq_diff_abandon(a, b, n, in.limit_sq),
               tag + " sum_sq_diff_abandon");
  EXPECT_BITEQ(
      scalar.lb_keogh_sq_abandon(in.lower.data(), in.upper.data(), a, n,
                                 in.limit_sq),
      table.lb_keogh_sq_abandon(in.lower.data(), in.upper.data(), a, n,
                                in.limit_sq),
      tag + " lb_keogh_sq_abandon");

  std::vector<double> out_ref(n, -1.0);
  std::vector<double> out_got(n, -1.0);
  scalar.standardize(a, n, in.mean, in.stddev, out_ref.data());
  table.standardize(a, n, in.mean, in.stddev, out_got.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_BITEQ(out_ref[i], out_got[i],
                 tag + " standardize[" + std::to_string(i) + "]");
  }

  // SlideComplexBins mutates in place: run each backend on its own copy.
  // a doubles as interleaved (re, im) pairs; b supplies the twiddles.
  const size_t bins = n / 2;
  std::vector<double> bins_ref(in.a.begin(), in.a.begin() + 2 * bins);
  std::vector<double> bins_got = bins_ref;
  const double delta = in.mean;
  scalar.slide_complex_bins(bins_ref.data(), b, bins, delta);
  table.slide_complex_bins(bins_got.data(), b, bins, delta);
  for (size_t i = 0; i < 2 * bins; ++i) {
    EXPECT_BITEQ(bins_ref[i], bins_got[i],
                 tag + " slide_complex_bins[" + std::to_string(i) + "]");
  }
}

TEST(SimdKernelTest, ScalarTableAlwaysAvailable) {
  ASSERT_NE(TableFor(Isa::kScalar), nullptr);
  EXPECT_STREQ(TableFor(Isa::kScalar)->name, "scalar");
  const std::vector<Isa> isas = AvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::kScalar);
  for (Isa isa : isas) EXPECT_NE(TableFor(isa), nullptr) << IsaName(isa);
}

// The centerpiece: 520 seeded rounds over lengths 0..130 (every tail
// residue and up to eight 16-element blocks), all backends vs scalar.
TEST(SimdKernelTest, DifferentialFuzzAllBackends) {
  const KernelTable& scalar = *TableFor(Isa::kScalar);
  const std::vector<Isa> isas = AvailableIsas();
  Rng rng(20260808);
  int rounds = 0;
  for (int rep = 0; rep < 4; ++rep) {
    for (size_t n = 0; n <= 130; ++n) {
      const bool allow_inf = rep == 3;  // one hostile pass with infinities
      const Inputs in = MakeInputs(rng, n, allow_inf);
      for (Isa isa : isas) {
        if (isa == Isa::kScalar) continue;
        const std::string tag = "n=" + std::to_string(n) + " rep=" +
                                std::to_string(rep) + " isa=" + IsaName(isa);
        CheckAllKernels(scalar, *TableFor(isa), in, tag);
        if (HasFailure()) {
          FAIL() << "stopping at first diverging round: " << tag;
        }
      }
      ++rounds;
    }
  }
  EXPECT_GE(rounds, 500);
}

// Thresholds planted exactly on the canonical partial sums at every
// 16-element boundary: one ulp below must abandon with the identical
// partial, exactly-at must continue, and the abandoned partials themselves
// must match bit-for-bit across backends.
TEST(SimdKernelTest, AbandonThresholdAtEveryBlockBoundary) {
  const KernelTable& scalar = *TableFor(Isa::kScalar);
  const std::vector<Isa> isas = AvailableIsas();
  Rng rng(77);
  for (size_t n : {16u, 32u, 48u, 64u, 128u, 130u}) {
    const Inputs in = MakeInputs(rng, n, /*allow_inf=*/false);
    const double* a = in.a.data();
    const double* b = in.b.data();
    for (size_t boundary = 16; boundary <= n; boundary += 16) {
      // The canonical partial at a 16-boundary equals the canonical full
      // sum over the prefix (same lane assignment, same reduction tree).
      const double partial = scalar.sum_sq_diff(a, b, boundary);
      ASSERT_TRUE(std::isfinite(partial));
      const double below = std::nextafter(partial, -kInf);
      for (Isa isa : isas) {
        const KernelTable& t = *TableFor(isa);
        const std::string tag = std::string(IsaName(isa)) + " n=" +
                                std::to_string(n) + " boundary=" +
                                std::to_string(boundary);
        // limit one ulp below the partial: must abandon here (or earlier,
        // if an earlier partial already exceeds it) — in every backend
        // with the same bits as scalar.
        EXPECT_BITEQ(scalar.sum_sq_diff_abandon(a, b, n, below),
                     t.sum_sq_diff_abandon(a, b, n, below), tag + " below");
        // limit exactly at the partial: boundary check is strict-greater,
        // so the scan must continue past this block identically.
        EXPECT_BITEQ(scalar.sum_sq_diff_abandon(a, b, n, partial),
                     t.sum_sq_diff_abandon(a, b, n, partial), tag + " at");
      }
      // Abandoning at `below` before the end must return a value that is
      // strictly greater than the limit (the squared-gating contract).
      if (boundary < n) {
        const double got = scalar.sum_sq_diff_abandon(a, b, n, below);
        EXPECT_GT(got, below);
      }
    }
    // Infinite limit must reproduce the no-abandon kernel bit-for-bit.
    for (Isa isa : isas) {
      const KernelTable& t = *TableFor(isa);
      EXPECT_BITEQ(t.sum_sq_diff(a, b, n),
                   t.sum_sq_diff_abandon(a, b, n, kInf),
                   std::string(IsaName(isa)) + " inf-limit n=" +
                       std::to_string(n));
    }
  }
}

// Same boundary drill for the LB_Keogh kernel, whose per-element terms go
// through the compare-select clamp.
TEST(SimdKernelTest, LbKeoghAbandonBoundaries) {
  const KernelTable& scalar = *TableFor(Isa::kScalar);
  const std::vector<Isa> isas = AvailableIsas();
  Rng rng(78);
  for (size_t n : {16u, 64u, 129u}) {
    const Inputs in = MakeInputs(rng, n, /*allow_inf=*/false);
    for (size_t boundary = 16; boundary <= n; boundary += 16) {
      const double partial = scalar.lb_keogh_sq_abandon(
          in.lower.data(), in.upper.data(), in.a.data(), boundary, kInf);
      const double below = std::nextafter(partial, -kInf);
      for (Isa isa : isas) {
        const KernelTable& t = *TableFor(isa);
        for (double limit : {below, partial}) {
          EXPECT_BITEQ(
              scalar.lb_keogh_sq_abandon(in.lower.data(), in.upper.data(),
                                         in.a.data(), n, limit),
              t.lb_keogh_sq_abandon(in.lower.data(), in.upper.data(),
                                    in.a.data(), n, limit),
              std::string(IsaName(isa)) + " lbk n=" + std::to_string(n) +
                  " boundary=" + std::to_string(boundary));
        }
      }
    }
  }
}

// A candidate inside the envelope contributes exactly zero, even when the
// series is constant or denormal.
TEST(SimdKernelTest, LbKeoghInsideEnvelopeIsZero) {
  for (size_t n : {0u, 1u, 3u, 16u, 33u, 128u}) {
    std::vector<double> lower(n, -1.0), upper(n, 1.0), cand(n, 0.5);
    for (Isa isa : AvailableIsas()) {
      const KernelTable& t = *TableFor(isa);
      EXPECT_EQ(t.lb_keogh_sq_abandon(lower.data(), upper.data(), cand.data(),
                                      n, kInf),
                0.0)
          << IsaName(isa) << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, EmptyAndTinyLengths) {
  const double x[4] = {2.0, -3.0, 5e-320, kInf};
  for (Isa isa : AvailableIsas()) {
    const KernelTable& t = *TableFor(isa);
    EXPECT_EQ(t.sum(x, 0), 0.0) << IsaName(isa);
    EXPECT_EQ(t.sum_sq(x, 0), 0.0) << IsaName(isa);
    EXPECT_EQ(t.sum_sq_diff(x, x, 0), 0.0) << IsaName(isa);
    EXPECT_EQ(t.sum_sq_diff_abandon(x, x, 0, 0.0), 0.0) << IsaName(isa);
    EXPECT_EQ(t.sum(x, 1), 2.0) << IsaName(isa);
    EXPECT_EQ(t.sum(x, 2), -1.0) << IsaName(isa);
    EXPECT_EQ(t.sum_sq_diff(x, x, 3), 0.0) << IsaName(isa);
  }
}

// Public dispatched entry points must answer through whichever backend is
// pinned, and flipping the pin must not change a single bit.
TEST(SimdKernelTest, DispatchPinningIsBitInvariant) {
  Rng rng(5150);
  const Inputs in = MakeInputs(rng, 100, /*allow_inf=*/false);
  const double ref_sum = Sum(in.a.data(), in.a.size());
  const double ref_dist =
      SumSqDiffAbandon(in.a.data(), in.b.data(), in.a.size(), in.limit_sq);
  for (Isa isa : AvailableIsas()) {
    ASSERT_TRUE(SetIsa(isa).ok()) << IsaName(isa);
    EXPECT_EQ(ActiveIsa(), isa);
    EXPECT_BITEQ(ref_sum, Sum(in.a.data(), in.a.size()),
                 std::string("dispatched sum via ") + IsaName(isa));
    EXPECT_BITEQ(ref_dist,
                 SumSqDiffAbandon(in.a.data(), in.b.data(), in.a.size(),
                                  in.limit_sq),
                 std::string("dispatched abandon via ") + IsaName(isa));
  }
  ResetDispatch();
}

TEST(SimdKernelTest, ConfigureModes) {
  EXPECT_TRUE(Configure("off").ok());
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_TRUE(Configure("scalar").ok());
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_TRUE(Configure("auto").ok());
  EXPECT_TRUE(Configure("").ok());
  EXPECT_FALSE(Configure("sse9").ok());
  // Pinning a backend that exists must succeed; one that does not must
  // come back Unavailable, not crash.
  for (Isa isa : {Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    const Status s = SetIsa(isa);
    if (TableFor(isa) != nullptr) {
      EXPECT_TRUE(s.ok()) << IsaName(isa);
    } else {
      EXPECT_FALSE(s.ok()) << IsaName(isa);
    }
  }
  ResetDispatch();
}

}  // namespace
}  // namespace s2::simd
