#include "repr/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace s2::repr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double Sq(double v) { return v * v; }

// One pass over the half spectrum, splitting bins into "kept" (stored in the
// compressed object) and "omitted", and accumulating every quantity any of
// the bound methods needs. All sums carry the conjugate-symmetry
// multiplicity m_k, so they equal full-spectrum (== time-domain) sums.
struct Accumulated {
  double dist_sq_kept = 0.0;   // sum_kept m |Q_k - T_k|^2
  double q_err_all = 0.0;      // sum_omitted m |Q_k|^2
  double credit = 0.0;         // sum_{omitted, |Q|>minPower} m (|Q|-minPower)^2
  double ub_per_coeff = 0.0;   // sum_omitted m (|Q|+minPower)^2
  double min_power_used = 0.0; // sum_{omitted, |Q|>minPower} m minPower^2
  double q_nused = 0.0;        // sum_{omitted, |Q|<=minPower} m |Q|^2
  // Omitted |Q_k| magnitudes with multiplicities (for the waterfill UB).
  std::vector<std::pair<double, double>> omitted;  // (|Q_k|, m_k)
};

Accumulated Accumulate(const HalfSpectrum& query, const CompressedSpectrum& object,
                       bool collect_omitted) {
  Accumulated acc;
  const double min_power = object.min_power();
  const std::vector<uint32_t>& kept = object.positions();
  size_t next_kept = 0;
  for (size_t k = 0; k < query.num_bins(); ++k) {
    const double m = query.multiplicity(k);
    if (next_kept < kept.size() && kept[next_kept] == k) {
      acc.dist_sq_kept +=
          m * std::norm(query.coeff(k) - object.coeffs()[next_kept]);
      ++next_kept;
      continue;
    }
    const double q_mag = std::abs(query.coeff(k));
    acc.q_err_all += m * q_mag * q_mag;
    if (std::isfinite(min_power)) {
      acc.ub_per_coeff += m * Sq(q_mag + min_power);
      if (q_mag > min_power) {
        acc.credit += m * Sq(q_mag - min_power);
        acc.min_power_used += m * min_power * min_power;
      } else {
        acc.q_nused += m * q_mag * q_mag;
      }
    }
    if (collect_omitted) acc.omitted.emplace_back(q_mag, m);
  }
  return acc;
}

// Exactly tight upper bound on sum_omitted m (|Q_k| + t_k)^2 where the
// adversary chooses magnitudes t_k subject to
//   sum m t_k^2 == t_err   and   0 <= t_k <= min_power.
// The objective is concave in the energies e_k = m t_k^2, so the maximizer
// water-fills: t_k = clamp(|Q_k| / (lambda - 1), 0, min_power) for the
// multiplier lambda > 1 that exhausts the budget. Bins with |Q_k| == 0
// absorb nothing through that formula; any residual budget is parked there
// (each unit of parked energy adds exactly one unit to the objective).
double WaterfillUpperSq(const std::vector<std::pair<double, double>>& omitted,
                        double t_err, double min_power) {
  if (omitted.empty() || t_err <= 0.0) {
    double base = 0.0;
    for (const auto& [q, m] : omitted) base += m * q * q;
    return base;
  }

  auto energy_at = [&](double lambda) {
    double energy = 0.0;
    for (const auto& [q, m] : omitted) {
      const double t = std::min(q / lambda, min_power);
      energy += m * t * t;
    }
    return energy;
  };

  // Parameterize by u = lambda - 1 > 0; energy_at is decreasing in u.
  // At u -> 0 every bin with |Q|>0 saturates at min_power.
  double lo = 1e-12;
  double hi = 1.0;
  while (energy_at(hi) > t_err) hi *= 2.0;

  double residual = 0.0;
  if (energy_at(lo) < t_err) {
    // Even with all positive-|Q| bins capped the budget is not exhausted;
    // the remainder goes to zero-|Q| bins (capacity is guaranteed because
    // the object's true coefficients realize exactly this budget).
    residual = t_err - energy_at(lo);
    hi = lo;
  } else {
    for (int iter = 0; iter < 200 && hi - lo > 1e-14 * hi; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (energy_at(mid) > t_err) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }

  const double u = hi;
  double total = 0.0;
  for (const auto& [q, m] : omitted) {
    const double t = std::min(q / u, min_power);
    total += m * Sq(q + t);
  }
  return total + residual;
}

}  // namespace

std::string_view BoundMethodToString(BoundMethod method) {
  switch (method) {
    case BoundMethod::kGemini:
      return "GEMINI";
    case BoundMethod::kWang:
      return "Wang";
    case BoundMethod::kBestMin:
      return "BestMin";
    case BoundMethod::kBestError:
      return "BestError";
    case BoundMethod::kBestMinError:
      return "BestMinError";
    case BoundMethod::kBestMinErrorLiteral:
      return "BestMinErrorLiteral";
    case BoundMethod::kBestMinErrorWaterfill:
      return "BestMinErrorWaterfill";
  }
  return "Unknown";
}

bool MethodCompatibleWith(BoundMethod method, ReprKind kind) {
  const bool has_error =
      kind == ReprKind::kFirstKError || kind == ReprKind::kBestKError;
  const bool is_best =
      kind == ReprKind::kBestKMiddle || kind == ReprKind::kBestKError;
  switch (method) {
    case BoundMethod::kGemini:
      return true;
    case BoundMethod::kWang:
      return has_error;
    case BoundMethod::kBestMin:
      return is_best;
    case BoundMethod::kBestError:
      return has_error;
    case BoundMethod::kBestMinError:
    case BoundMethod::kBestMinErrorLiteral:
    case BoundMethod::kBestMinErrorWaterfill:
      return has_error && is_best;
  }
  return false;
}

Result<DistanceBounds> ComputeBounds(const HalfSpectrum& query,
                                     const CompressedSpectrum& object,
                                     BoundMethod method) {
  if (query.n() != object.n() || query.basis() != object.basis()) {
    return Status::InvalidArgument("ComputeBounds: shape or basis mismatch");
  }
  if (!MethodCompatibleWith(method, object.kind())) {
    return Status::InvalidArgument("ComputeBounds: method incompatible with kind");
  }

  const bool needs_omitted = method == BoundMethod::kBestMinErrorWaterfill;
  const Accumulated acc = Accumulate(query, object, needs_omitted);
  const double t_err = object.error();
  const double min_power = object.min_power();

  DistanceBounds bounds;
  switch (method) {
    case BoundMethod::kGemini: {
      // Distance in the retained subspace lower-bounds the full distance
      // (with symmetry weighting this is LB-GEMINI of Rafiei et al.).
      bounds.lower = std::sqrt(acc.dist_sq_kept);
      bounds.upper = kInf;
      break;
    }
    case BoundMethod::kWang:
    case BoundMethod::kBestError: {
      // ||Q- - T-|| is bracketed by | ||Q-|| - ||T-|| | and ||Q-|| + ||T-||.
      const double q_norm = std::sqrt(acc.q_err_all);
      const double t_norm = std::sqrt(t_err);
      bounds.lower = std::sqrt(acc.dist_sq_kept + Sq(q_norm - t_norm));
      bounds.upper = std::sqrt(acc.dist_sq_kept + Sq(q_norm + t_norm));
      break;
    }
    case BoundMethod::kBestMin: {
      // Figure 7: every omitted |T_k| <= minPower, so each omitted
      // coefficient contributes at least (|Q_k| - minPower)^2 when
      // |Q_k| > minPower and at most (|Q_k| + minPower)^2.
      bounds.lower = std::sqrt(acc.dist_sq_kept + acc.credit);
      bounds.upper = std::sqrt(acc.dist_sq_kept + acc.ub_per_coeff);
      break;
    }
    case BoundMethod::kBestMinError: {
      // Sound reformulation of Figure 9. Split the omitted bins into
      //   case 1: |Q_k| >  minPower  (per-coefficient credit is always valid)
      //   case 2: |Q_k| <= minPower  (energies Q.nused / T.nused)
      // The omitted T energy splits as ||T1||^2 + ||T2||^2 = T.err with
      // ||T1||^2 <= min_power_used, hence ||T2||^2 >= T.err - min_power_used
      // (=: T.nused) and ||T2||^2 <= T.err. Three simultaneously valid lower
      // bounds follow; take the largest:
      //   A: credit + max(0, ||Q2|| - sqrt(T.err))^2     (Q2 outweighs all of T)
      //   B: credit + max(0, sqrt(T.nused) - ||Q2||)^2   (T2 cannot shrink below T.nused)
      //   C: (sqrt(Q.err_all) - sqrt(T.err))^2           (plain BestError)
      // The paper's printed formula (sqrt(Q.nused)-sqrt(T.nused))^2 assumes
      // the adversary always maxes out case-1 energy, which is not forced;
      // see kBestMinErrorLiteral for the verbatim version.
      const double t_nused = std::max(0.0, t_err - acc.min_power_used);
      const double q2 = std::sqrt(acc.q_nused);
      const double term_a = acc.credit + Sq(std::max(0.0, q2 - std::sqrt(t_err)));
      const double term_b = acc.credit + Sq(std::max(0.0, std::sqrt(t_nused) - q2));
      const double term_c = Sq(std::sqrt(acc.q_err_all) - std::sqrt(t_err));
      bounds.lower =
          std::sqrt(acc.dist_sq_kept + std::max({term_a, term_b, term_c}));
      // Upper bound: both the per-coefficient cap (BestMin) and the energy
      // cap (BestError) are valid; their minimum is the tightest sound
      // combination without per-bin optimization.
      const double ub_energy = Sq(std::sqrt(acc.q_err_all) + std::sqrt(t_err));
      bounds.upper =
          std::sqrt(acc.dist_sq_kept + std::min(acc.ub_per_coeff, ub_energy));
      break;
    }
    case BoundMethod::kBestMinErrorLiteral: {
      // Figure 9 verbatim (including its unsoundness); used by the fidelity
      // ablation only.
      const double t_nused = std::max(0.0, t_err - acc.min_power_used);
      const double lb_part = acc.credit;
      bounds.lower = std::sqrt(acc.dist_sq_kept + lb_part +
                               Sq(std::sqrt(acc.q_nused) - std::sqrt(t_nused)));
      bounds.upper = std::sqrt(acc.dist_sq_kept + lb_part +
                               Sq(std::sqrt(acc.q_nused) + std::sqrt(t_err)));
      break;
    }
    case BoundMethod::kBestMinErrorWaterfill: {
      // Extension: the upper bound is made exactly tight by maximizing the
      // omitted contribution over all T- consistent with the stored
      // information (energy budget + minProperty caps).
      const double t_nused = std::max(0.0, t_err - acc.min_power_used);
      const double q2 = std::sqrt(acc.q_nused);
      const double term_a = acc.credit + Sq(std::max(0.0, q2 - std::sqrt(t_err)));
      const double term_b = acc.credit + Sq(std::max(0.0, std::sqrt(t_nused) - q2));
      const double term_c = Sq(std::sqrt(acc.q_err_all) - std::sqrt(t_err));
      bounds.lower =
          std::sqrt(acc.dist_sq_kept + std::max({term_a, term_b, term_c}));
      bounds.upper = std::sqrt(acc.dist_sq_kept +
                               WaterfillUpperSq(acc.omitted, t_err, min_power));
      break;
    }
  }
  return bounds;
}

}  // namespace s2::repr
