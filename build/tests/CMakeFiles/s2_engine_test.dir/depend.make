# Empty dependencies file for s2_engine_test.
# This may be replaced when dependencies are built.
