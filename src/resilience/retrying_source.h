#ifndef S2_RESILIENCE_RETRYING_SOURCE_H_
#define S2_RESILIENCE_RETRYING_SOURCE_H_

#include <atomic>
#include <memory>

#include "base/sync.h"
#include "base/thread_annotations.h"
#include "resilience/retry.h"
#include "storage/sequence_store.h"

namespace s2::resilience {

/// A `SequenceSource` decorator that retries transient `Get` failures.
///
/// The engine's verification phase is the hottest disk path (the paper
/// fetches full sequences "from the disk, in the order suggested by their
/// lower bounds"); one EINTR there must not abort a whole query. This
/// decorator re-issues `Get` under a `RetryPolicy` whenever the failure is
/// `s2::IsRetryable`, and keeps atomic retry/giveup counters the serving
/// layer exports into `MetricsRegistry`.
///
/// Thread safety: `Get` is safe concurrently (matching the base contract) —
/// the operation runs lock-free; only the jitter rng takes a short mutex.
class RetryingSequenceSource : public storage::SequenceSource {
 public:
  RetryingSequenceSource(std::unique_ptr<storage::SequenceSource> base,
                         RetryPolicy policy);
  /// Test hook: injectable sleeper (fault sweeps run backoff at full speed).
  RetryingSequenceSource(std::unique_ptr<storage::SequenceSource> base,
                         RetryPolicy policy, Retrier::Sleeper sleeper);

  Result<std::vector<double>> Get(ts::SeriesId id) override;
  size_t num_series() const override { return base_->num_series(); }
  size_t series_length() const override { return base_->series_length(); }
  uint64_t read_count() const override { return base_->read_count(); }
  void ResetCounters() override { base_->ResetCounters(); }

  /// Lifetime retry accounting (never reset by `ResetCounters`, which
  /// follows the base contract of I/O read accounting only).
  uint64_t retry_count() const {
    return retries_.load(std::memory_order_relaxed);
  }
  uint64_t giveup_count() const {
    return giveups_.load(std::memory_order_relaxed);
  }

  storage::SequenceSource* base() { return base_.get(); }

 private:
  std::chrono::microseconds Backoff(int retry_index);

  std::unique_ptr<storage::SequenceSource> base_;
  RetryPolicy policy_;
  Retrier::Sleeper sleeper_;

  sync::Mutex rng_mu_{sync::LockRank::kRetryJitter,
                      "resilience::RetryingSequenceSource"};
  s2::Rng rng_ S2_GUARDED_BY(rng_mu_);

  std::atomic<uint64_t> retries_ = 0;
  std::atomic<uint64_t> giveups_ = 0;
};

}  // namespace s2::resilience

#endif  // S2_RESILIENCE_RETRYING_SOURCE_H_
