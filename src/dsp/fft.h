#ifndef S2_DSP_FFT_H_
#define S2_DSP_FFT_H_

#include <complex>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace s2::dsp {

using Complex = std::complex<double>;

/// Direction of a Fourier transform.
enum class FftDirection {
  kForward,   ///< e^{-j 2 pi k n / N} kernel.
  kInverse,   ///< e^{+j 2 pi k n / N} kernel.
};

/// In-place fast Fourier transform of `data`, any length >= 1.
///
/// Power-of-two lengths use an iterative radix-2 Cooley-Tukey; other lengths
/// use Bluestein's chirp-z algorithm. The transform is *unnormalized*: a
/// forward pass computes `X[k] = sum_n x[n] e^{-j2pikn/N}` and an inverse pass
/// computes `x[n] = sum_k X[k] e^{+j2pikn/N}`; running forward then inverse
/// scales the input by N.
///
/// Returns InvalidArgument for empty input.
Status Fft(std::vector<Complex>* data, FftDirection direction);

/// Normalized DFT of a real sequence, as defined in the paper:
///   `X(k) = (1/sqrt(N)) sum_n x(n) e^{-j2pikn/N}`.
///
/// The normalization makes the transform unitary, so Euclidean distances and
/// energies are preserved between the time and frequency domains (Parseval).
/// Returns a vector of N complex coefficients.
Result<std::vector<Complex>> ForwardDft(const std::vector<double>& x);

/// Inverse of `ForwardDft`: reconstructs the real sequence from its full
/// normalized spectrum. The (numerically tiny) imaginary residue is dropped.
Result<std::vector<double>> InverseDftReal(const std::vector<Complex>& spectrum);

/// Naive O(N^2) normalized DFT. Reference implementation used by tests to
/// validate the FFT paths; do not use on large inputs.
std::vector<Complex> ForwardDftDirect(const std::vector<double>& x);

/// True iff `n` is a power of two (n >= 1).
constexpr bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace s2::dsp

#endif  // S2_DSP_FFT_H_
