// Streaming-ingestion benchmark: sustained append throughput and the cost
// a non-empty delta tier adds to queries.
//
//   ./build/bench/bench_stream [--series 1024] [--days 256] [--appends 2000]
//                              [--requests 200] [--k 10] [--delta 64]
//
// Two tables:
//  1. Appends/s across the four maintenance configurations — exact
//     per-append recompute vs the O(k) incremental path (sliding DFT +
//     online burst detector), each with and without a WAL (MemEnv-backed,
//     sync-every-append). The WAL column prices durability; the incremental
//     column prices the exact/approximate trade documented in DESIGN.md.
//  2. Query latency with the delta tier holding `--delta` fresh series vs
//     the same engine right after compaction. The acceptance bar from the
//     streaming work is a delta/compacted ratio <= 2.0 for every verb; the
//     table prints that ratio explicitly.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/s2_engine.h"
#include "io/mem_env.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

using namespace s2;

namespace {

ts::Corpus MakeCorpus(size_t series, size_t days) {
  qlog::CorpusSpec spec;
  spec.num_series = series;
  spec.n_days = days;
  spec.seed = 20040613;  // SIGMOD'04.
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus generation failed: %s\n",
                 corpus.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(corpus).ValueOrDie();
}

struct AppendRow {
  const char* config = "";
  double appends_per_s = 0.0;
  double avg_us = 0.0;
  uint64_t compactions = 0;
};

AppendRow RunAppends(const char* config, size_t series, size_t days,
                     size_t appends, bool incremental, bool wal) {
  core::S2Engine::Options engine_options;
  engine_options.index.budget_c = 16;
  engine_options.stream.incremental_maintenance = incremental;

  io::MemEnv wal_env;
  service::S2Server::Options server_options;
  server_options.scheduler.threads = 1;
  server_options.cache_capacity = 0;
  // Compact in the foreground every 256 appends so the delta stays bounded
  // and its compaction cost lands inside the measured interval — this is
  // the sustained rate, not the burst rate into an ever-growing delta.
  server_options.compaction_threshold = 0;
  if (wal) {
    server_options.wal_path = "bench.wal";
    server_options.wal_env = &wal_env;
  }
  auto server = service::S2Server::Build(MakeCorpus(series, days),
                                         engine_options, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server build failed: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }

  Rng rng(13);
  AppendRow row;
  row.config = config;
  bench::Timer timer;
  for (size_t i = 0; i < appends; ++i) {
    const auto id = static_cast<ts::SeriesId>(i % series);
    const Status status = (*server)->AppendPoint(id, rng.Uniform(0.0, 40.0));
    if (!status.ok()) {
      std::fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    if ((i + 1) % 256 == 0) {
      const Status compacted = (*server)->Compact();
      if (!compacted.ok()) {
        std::fprintf(stderr, "compact failed: %s\n",
                     compacted.ToString().c_str());
        std::exit(1);
      }
    }
  }
  const double elapsed = timer.Seconds();
  row.appends_per_s =
      elapsed > 0 ? static_cast<double>(appends) / elapsed : 0.0;
  row.avg_us = elapsed * 1e6 / static_cast<double>(appends);
  row.compactions = (*server)->stream_info().compaction_count;
  return row;
}

struct LatencyRow {
  const char* verb = "";
  double delta_us = 0.0;
  double compacted_us = 0.0;
  double ratio() const {
    return compacted_us > 0 ? delta_us / compacted_us : 0.0;
  }
};

double MeasureVerb(const core::S2Engine& engine, service::RequestKind kind,
                   size_t requests, size_t k, size_t series) {
  Rng rng(29);
  bench::Timer timer;
  for (size_t i = 0; i < requests; ++i) {
    const auto id = static_cast<ts::SeriesId>(
        rng.Uniform(0.0, static_cast<double>(series)));
    Status status = Status::OK();
    switch (kind) {
      case service::RequestKind::kSimilarTo:
        status = engine.SimilarTo(id, k).status();
        break;
      case service::RequestKind::kSimilarToDtw:
        status = engine.SimilarToDtw(id, k).status();
        break;
      default:
        status = engine.QueryByBurst(id, k, core::BurstHorizon::kLongTerm)
                     .status();
        break;
    }
    if (!status.ok()) {
      std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  return timer.Seconds() * 1e6 / static_cast<double>(requests);
}

std::vector<LatencyRow> RunDeltaVsCompacted(size_t series, size_t days,
                                            size_t requests, size_t k,
                                            size_t delta) {
  core::S2Engine::Options options;
  options.index.budget_c = 16;
  auto engine = core::S2Engine::Build(MakeCorpus(series, days), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::exit(1);
  }
  // Slide `delta` distinct series so the delta tier holds that many entries.
  Rng rng(31);
  for (size_t i = 0; i < delta; ++i) {
    const auto id = static_cast<ts::SeriesId>((i * 7) % series);
    const Status status = engine->AppendPoint(id, rng.Uniform(0.0, 40.0));
    if (!status.ok()) {
      std::fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }

  const service::RequestKind kinds[] = {service::RequestKind::kSimilarTo,
                                        service::RequestKind::kSimilarToDtw,
                                        service::RequestKind::kQueryByBurst};
  const char* names[] = {"SimilarTo", "SimilarToDtw", "QueryByBurst"};
  std::vector<LatencyRow> rows(3);
  for (size_t i = 0; i < 3; ++i) {
    rows[i].verb = names[i];
    rows[i].delta_us = MeasureVerb(*engine, kinds[i], requests, k, series);
  }
  const Status compacted = engine->Compact();
  if (!compacted.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", compacted.ToString().c_str());
    std::exit(1);
  }
  for (size_t i = 0; i < 3; ++i) {
    rows[i].compacted_us = MeasureVerb(*engine, kinds[i], requests, k, series);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t series = bench::ArgSize(argc, argv, "--series", 1024);
  const size_t days = bench::ArgSize(argc, argv, "--days", 256);
  const size_t appends = bench::ArgSize(argc, argv, "--appends", 2000);
  const size_t requests = bench::ArgSize(argc, argv, "--requests", 200);
  const size_t k = bench::ArgSize(argc, argv, "--k", 10);
  const size_t delta = bench::ArgSize(argc, argv, "--delta", 64);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_stream.json");

  std::printf("bench_stream: series=%zu days=%zu appends=%zu requests=%zu "
              "k=%zu delta=%zu\n",
              series, days, appends, requests, k, delta);

  bench::PrintHeader("Sustained append throughput (compact every 256)");
  std::printf("  %-24s %12s %10s %12s\n", "config", "appends/s", "avg_us",
              "compactions");
  const struct {
    const char* name;
    bool incremental;
    bool wal;
  } configs[] = {
      {"exact", false, false},
      {"exact+wal", false, true},
      {"incremental", true, false},
      {"incremental+wal", true, true},
  };
  bench::Json append_rows = bench::Json::Array();
  for (const auto& config : configs) {
    const AppendRow row = RunAppends(config.name, series, days, appends,
                                     config.incremental, config.wal);
    std::printf("  %-24s %12.1f %10.1f %12llu\n", row.config,
                row.appends_per_s, row.avg_us,
                static_cast<unsigned long long>(row.compactions));
    append_rows.Push(bench::Json::Object()
                         .Add("config", row.config)
                         .Add("appends_per_s", row.appends_per_s)
                         .Add("avg_us", row.avg_us)
                         .Add("compactions", row.compactions));
  }

  bench::PrintHeader("Query latency: delta tier populated vs compacted");
  std::printf("  %-16s %12s %14s %10s\n", "verb", "delta_us", "compacted_us",
              "ratio");
  bool within_bar = true;
  bench::Json latency_rows = bench::Json::Array();
  for (const LatencyRow& row :
       RunDeltaVsCompacted(series, days, requests, k, delta)) {
    std::printf("  %-16s %12.1f %14.1f %9.2fx\n", row.verb, row.delta_us,
                row.compacted_us, row.ratio());
    within_bar = within_bar && row.ratio() <= 2.0;
    latency_rows.Push(bench::Json::Object()
                          .Add("verb", row.verb)
                          .Add("delta_us", row.delta_us)
                          .Add("compacted_us", row.compacted_us)
                          .Add("ratio", row.ratio()));
  }
  std::printf("\n  acceptance bar (every verb within 2.0x of compacted): %s\n",
              within_bar ? "PASS" : "FAIL");

  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_stream")
          .Add("spec", bench::Json::Object()
                           .Add("series", static_cast<uint64_t>(series))
                           .Add("days", static_cast<uint64_t>(days))
                           .Add("appends", static_cast<uint64_t>(appends))
                           .Add("requests", static_cast<uint64_t>(requests))
                           .Add("k", static_cast<uint64_t>(k))
                           .Add("delta", static_cast<uint64_t>(delta)))
          .Add("append_throughput", std::move(append_rows))
          .Add("delta_vs_compacted", std::move(latency_rows))
          .Add("within_2x_bar", bench::Json::String(within_bar ? "PASS"
                                                               : "FAIL")));
  return 0;
}
