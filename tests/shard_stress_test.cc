// Concurrency stress for the sharded serving path, designed to run under
// S2_SANITIZE=thread (tools/verify_all.sh sharding profile): many reader
// threads hammer every query verb through S2Server::Execute while a writer
// thread keeps appending series. TSan proves the documented contract — the
// shared radius is the only cross-thread state inside a scatter, and the
// server's shared_mutex serializes AddSeries against the fan-out.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "querylog/corpus_generator.h"
#include "service/s2_server.h"
#include "shard/sharded_engine.h"

namespace s2::shard {
namespace {

constexpr size_t kNumSeries = 40;
constexpr size_t kDays = 64;

ts::Corpus MakeCorpus(uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

TEST(ShardStressTest, ConcurrentQueriesOverShardsAreRaceFree) {
  // Pure read concurrency: every verb, all shards, no writer. Any data race
  // inside the scatter (shared radius, stats vectors, engine state) is
  // TSan-visible here without writer noise.
  ShardedEngine::Options options;
  options.num_shards = 4;
  options.engine = EngineOptions();
  auto built = ShardedEngine::Build(MakeCorpus(3), options);
  ASSERT_TRUE(built.ok());
  const ShardedEngine& engine = *built;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&engine, &failures, t] {
      for (int i = 0; i < 12; ++i) {
        const auto id = static_cast<ts::SeriesId>((t * 7 + i) % kNumSeries);
        if (!engine.SimilarTo(id, 5).ok()) failures.fetch_add(1);
        if (!engine.QueryByBurst(id, 5, core::BurstHorizon::kLongTerm).ok()) {
          failures.fetch_add(1);
        }
        if (i % 4 == 0 && !engine.SimilarToDtw(id, 3).ok()) {
          failures.fetch_add(1);
        }
        if (!engine.FindPeriods(id).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ShardStressTest, MixedAddSeriesAndQueryWorkloadStaysConsistent) {
  service::S2Server::Options server_options;
  server_options.scheduler.threads = 3;
  server_options.cache_capacity = 64;
  server_options.shards = 4;
  auto server = service::S2Server::Build(MakeCorpus(17), EngineOptions(),
                                         server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  service::S2Server& srv = **server;

  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = 17;
  auto extra = qlog::GenerateQueries(spec, 10);
  ASSERT_TRUE(extra.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> bad_responses{0};

  // Readers: every verb, synchronous Execute (exercises the shared lock,
  // the cache, and the scatter pool from several threads at once).
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&srv, &stop, &bad_responses, t] {
      const service::RequestKind kinds[] = {
          service::RequestKind::kSimilarTo, service::RequestKind::kSimilarToDtw,
          service::RequestKind::kPeriodsOf, service::RequestKind::kBurstsOf,
          service::RequestKind::kQueryByBurst};
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        service::QueryRequest request;
        request.kind = kinds[(t + i) % 5];
        // Only query the initial ids: they exist regardless of how many
        // appends have landed, so every response must be OK.
        request.id = static_cast<ts::SeriesId>((t * 11 + i) % kNumSeries);
        request.k = 4;
        service::QueryResponse response = srv.Execute(request);
        if (!response.status.ok()) bad_responses.fetch_add(1);
        ++i;
      }
    });
  }

  // Writer: appends all ten extra series, interleaved with the readers.
  std::thread writer([&srv, &extra, &bad_responses] {
    for (const ts::TimeSeries& series : *extra) {
      auto id = srv.AddSeries(series);
      if (!id.ok()) bad_responses.fetch_add(1);
      std::this_thread::yield();
    }
  });
  writer.join();
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(bad_responses.load(), 0);
  ASSERT_TRUE(srv.is_sharded());
  EXPECT_EQ(srv.sharded().size(), kNumSeries + 10);
  EXPECT_TRUE(srv.sharded().ValidateInvariants().ok());
  // New ids are queryable after the writer finishes.
  service::QueryRequest request;
  request.kind = service::RequestKind::kSimilarTo;
  request.id = kNumSeries + 9;
  request.k = 4;
  EXPECT_TRUE(srv.Execute(request).status.ok());
}

TEST(ShardStressTest, ConcurrentSubmitTicketsAllComplete) {
  service::S2Server::Options server_options;
  server_options.scheduler.threads = 2;
  server_options.scheduler.queue_capacity = 512;
  server_options.shards = 3;
  auto server = service::S2Server::Build(MakeCorpus(29), EngineOptions(),
                                         server_options);
  ASSERT_TRUE(server.ok());
  std::vector<service::RequestTicket> tickets;
  for (int i = 0; i < 60; ++i) {
    service::QueryRequest request;
    request.kind = (i % 2 == 0) ? service::RequestKind::kSimilarTo
                                : service::RequestKind::kQueryByBurst;
    request.id = static_cast<ts::SeriesId>(i % kNumSeries);
    request.k = 5;
    auto ticket = (*server)->Submit(request);
    ASSERT_TRUE(ticket.ok());  // Capacity 512 admits everything.
    tickets.push_back(std::move(*ticket));
  }
  for (service::RequestTicket& ticket : tickets) {
    service::QueryResponse response = ticket.Get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

}  // namespace
}  // namespace s2::shard
