#ifndef S2_REPR_FEATURE_STORE_H_
#define S2_REPR_FEATURE_STORE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "io/env.h"
#include "repr/compressed.h"

namespace s2::repr {

/// Binary persistence for compressed spectral features.
///
/// The paper's S2 tool keeps "the compressed features ... stored locally for
/// faster access" and achieves realtime responses for 80000+ sequences from
/// them. These functions serialize a feature set so an index can be reloaded
/// without re-running the DFT over the raw corpus.
///
/// Format (native endianness):
///   magic "S2FEAT01" | u64 feature_count
///   per feature: u8 kind | u32 n | u16 position_count |
///                u16 positions[] | double (re, im) pairs[] |
///                double error | double min_power
///
/// Positions use 2 bytes each, matching the paper's Table 1 accounting
/// (best coefficients cost 16+2 bytes).
///
/// `WriteFeatures` commits through the crash-safe generation container
/// (`io::durable`); `ReadFeatures` loads the newest valid generation (legacy
/// headerless files load as generation 0). `env` defaults to POSIX.
Status WriteFeatures(const std::string& path,
                     const std::vector<CompressedSpectrum>& features,
                     io::Env* env = nullptr);

/// Reads a feature set previously written by `WriteFeatures`.
Result<std::vector<CompressedSpectrum>> ReadFeatures(const std::string& path,
                                                     io::Env* env = nullptr);

/// Record-level primitives for embedding single features inside other file
/// formats (used by the VP-tree serializer). `file` must be positioned at
/// the record boundary.
Status WriteFeatureRecord(io::File* file, const CompressedSpectrum& feature);
Result<CompressedSpectrum> ReadFeatureRecord(io::File* file);

}  // namespace s2::repr

#endif  // S2_REPR_FEATURE_STORE_H_
