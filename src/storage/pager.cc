#include "storage/pager.h"

#include <cstring>

#include "diag/validate.h"

namespace s2::storage {

Pager::Pager(std::string path, io::Env* env, bool durable,
             std::unique_ptr<io::File> file, size_t pool_pages,
             size_t num_pages)
    : path_(std::move(path)),
      env_(env),
      durable_(durable),
      file_(std::move(file)),
      num_pages_(num_pages) {
  frames_.resize(pool_pages);
  for (Frame& frame : frames_) {
    frame.data = std::make_unique<char[]>(kPageSize);
  }
  // Initially every frame is free; represent free frames as LRU entries with
  // kInvalidPageId so eviction naturally picks them first.
  for (size_t i = 0; i < frames_.size(); ++i) {
    lru_.push_back(i);
    lru_pos_[i] = std::prev(lru_.end());
  }
}

std::string Pager::WorkingPath() const {
  return durable_ ? path_ + ".shadow" : path_;
}

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           size_t pool_pages,
                                           Options options) {
  if (pool_pages < 2) {
    return Status::InvalidArgument("Pager: pool must hold at least 2 pages");
  }
  io::Env* env = options.env != nullptr ? options.env : io::Env::Default();
  std::string working = path;
  if (options.durable) {
    // Work on a private shadow; a stale shadow left by a crashed run is
    // untrusted (its publish never completed) and is overwritten from the
    // last published generation at `path`.
    working = path + ".shadow";
    if (env->FileExists(path)) {
      S2_RETURN_NOT_OK(env->CopyFile(path, working));
    } else {
      S2_RETURN_NOT_OK(env->Remove(working));
    }
  }
  S2_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                      env->Open(working, io::OpenMode::kReadWrite));
  S2_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % kPageSize != 0) {
    return Status::Corruption(
        "Pager: truncated or misaligned file (size " + std::to_string(size) +
        " is not a multiple of " + std::to_string(kPageSize) + "): " + path);
  }
  const size_t num_pages = static_cast<size_t>(size / kPageSize);
  if (num_pages >= static_cast<size_t>(kInvalidPageId)) {
    return Status::Corruption("Pager: page count exceeds the PageId range: " +
                              path);
  }
  return std::unique_ptr<Pager>(new Pager(path, env, options.durable,
                                          std::move(file), pool_pages,
                                          num_pages));
}

Pager::~Pager() {
  // Best-effort: persist what we can, but destructors cannot report, so
  // durable clients should call Sync() explicitly and check it.
  (void)Sync();
}

void Pager::TouchLru(size_t frame_idx) {
  const auto it = lru_pos_.find(frame_idx);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_back(frame_idx);
  lru_pos_[frame_idx] = std::prev(lru_.end());
}

Status Pager::WriteBack(Frame* frame) {
  if (!frame->dirty || frame->page_id == kInvalidPageId) return Status::OK();
  const uint64_t offset = static_cast<uint64_t>(frame->page_id) * kPageSize;
  Status s = io::WriteExactAt(file_.get(), frame->data.get(), kPageSize, offset);
  if (!s.ok()) {
    return Status(s.code(), "Pager: write-back of page " +
                                std::to_string(frame->page_id) +
                                " failed: " + s.message());
  }
  ++disk_writes_;
  frame->dirty = false;
  return Status::OK();
}

Result<size_t> Pager::FrameFor(PageId id) {
  const auto hit = frame_of_page_.find(id);
  if (hit != frame_of_page_.end()) {
    ++cache_hits_;
    TouchLru(hit->second);
    return hit->second;
  }

  // Evict the least recently used unpinned frame.
  size_t victim = frames_.size();
  for (size_t idx : lru_) {
    if (frames_[idx].pin_count == 0) {
      victim = idx;
      break;
    }
  }
  if (victim == frames_.size()) {
    return Status::Internal("Pager: buffer pool exhausted (all pages pinned)");
  }
  Frame& frame = frames_[victim];
  S2_RETURN_NOT_OK(WriteBack(&frame));
  if (frame.page_id != kInvalidPageId) frame_of_page_.erase(frame.page_id);

  // Load the requested page. Transient faults propagate with their code
  // intact so callers can retry; EOF inside a known-resident page means the
  // file shrank under us, which ReadExactAt reports as Corruption.
  const uint64_t offset = static_cast<uint64_t>(id) * kPageSize;
  Status s = io::ReadExactAt(file_.get(), frame.data.get(), kPageSize, offset);
  if (!s.ok()) {
    frame.page_id = kInvalidPageId;
    return Status(s.code(), "Pager: read of page " + std::to_string(id) +
                                " failed: " + s.message());
  }
  ++disk_reads_;
  frame.page_id = id;
  frame.dirty = false;
  frame_of_page_[id] = victim;
  TouchLru(victim);
  return victim;
}

Result<PageId> Pager::Allocate(char** data) {
  const PageId id = static_cast<PageId>(num_pages_);
  // Extend the file with a zeroed page.
  std::vector<char> zeros(kPageSize, 0);
  const uint64_t offset = static_cast<uint64_t>(id) * kPageSize;
  Status s = io::WriteExactAt(file_.get(), zeros.data(), kPageSize, offset);
  if (!s.ok()) {
    return Status(s.code(), "Pager: cannot extend file: " + s.message());
  }
  ++disk_writes_;
  ++num_pages_;
  S2_ASSIGN_OR_RETURN(size_t frame_idx, FrameFor(id));
  Frame& frame = frames_[frame_idx];
  ++frame.pin_count;
  if (data != nullptr) *data = frame.data.get();
  return id;
}

Result<char*> Pager::Fetch(PageId id) {
  if (id >= num_pages_) {
    return Status::OutOfRange("Pager: page " + std::to_string(id) +
                              " beyond end of file");
  }
  S2_ASSIGN_OR_RETURN(size_t frame_idx, FrameFor(id));
  Frame& frame = frames_[frame_idx];
  ++frame.pin_count;
  return frame.data.get();
}

Status Pager::Unpin(PageId id, bool dirty) {
  const auto it = frame_of_page_.find(id);
  if (it == frame_of_page_.end()) {
    return Status::InvalidArgument("Pager: unpin of non-resident page");
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::InvalidArgument("Pager: unpin without matching pin");
  }
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Status Pager::Validate() const {
  diag::Validator v("Pager");
  // Frame table: every mapped page resolves to a frame that agrees.
  for (const auto& [page_id, frame_idx] : frame_of_page_) {
    v.Check(page_id < num_pages_)
        << "frame table maps out-of-range page " << page_id << " (file has "
        << num_pages_ << " pages)";
    if (frame_idx >= frames_.size()) {
      v.AddViolation("frame table points past the pool (frame " +
                     std::to_string(frame_idx) + ")");
      continue;
    }
    v.Check(frames_[frame_idx].page_id == page_id)
        << "frame " << frame_idx << " holds page " << frames_[frame_idx].page_id
        << " but the frame table expects page " << page_id;
  }
  // Frames: non-negative pins; every resident page is in the frame table.
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    v.Check(frame.pin_count >= 0)
        << "frame " << i << " has negative pin count " << frame.pin_count;
    v.Check(frame.data != nullptr) << "frame " << i << " has no buffer";
    if (frame.page_id != kInvalidPageId) {
      const auto it = frame_of_page_.find(frame.page_id);
      v.Check(it != frame_of_page_.end() && it->second == i)
          << "frame " << i << " holds page " << frame.page_id
          << " without a frame-table entry";
    }
  }
  // LRU list: a permutation of the frame indices, mirrored by lru_pos_.
  v.Check(lru_.size() == frames_.size())
      << "LRU list tracks " << lru_.size() << " frames, pool has "
      << frames_.size();
  std::vector<bool> seen(frames_.size(), false);
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const size_t idx = *it;
    if (idx >= frames_.size()) {
      v.AddViolation("LRU entry " + std::to_string(idx) + " out of range");
      continue;
    }
    v.Check(!seen[idx]) << "frame " << idx << " appears twice in the LRU list";
    seen[idx] = true;
    const auto pos = lru_pos_.find(idx);
    v.Check(pos != lru_pos_.end() && pos->second == it)
        << "stale LRU position for frame " << idx;
  }
  // File: its size must agree with num_pages() (Allocate extends eagerly).
  Result<uint64_t> size = file_->Size();
  if (!size.ok()) {
    v.AddViolation("cannot stat the backing file: " + size.status().message());
  } else {
    v.Check(*size == num_pages_ * kPageSize)
        << "file size " << *size << " != " << num_pages_ << " pages x "
        << kPageSize << " bytes";
  }
  return v.ToStatus();
}

Status Pager::FlushAll() {
  for (Frame& frame : frames_) {
    S2_RETURN_NOT_OK(WriteBack(&frame));
  }
  return Status::OK();
}

Status Pager::Sync() {
  S2_RETURN_NOT_OK(FlushAll());
  S2_RETURN_NOT_OK(file_->Sync());
  if (!durable_) return Status::OK();
  // Publish: the shadow is complete and durable; expose it at `path` with a
  // copy + single atomic rename so readers of `path` only ever observe a
  // complete generation.
  const std::string tmp = path_ + ".tmp";
  S2_RETURN_NOT_OK(env_->CopyFile(WorkingPath(), tmp));
  S2_RETURN_NOT_OK(env_->Rename(tmp, path_));
  // The rename is the publish point; sync the directory so it survives
  // power loss.
  return env_->SyncDir(path_);
}

}  // namespace s2::storage
