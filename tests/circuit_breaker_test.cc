#include <chrono>

#include <gtest/gtest.h>

#include "resilience/circuit_breaker.h"

namespace s2::resilience {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// A hand-cranked clock so state transitions need no real sleeps.
struct FakeClock {
  steady_clock::time_point now = steady_clock::time_point{};
  void Advance(milliseconds d) { now += d; }
  CircuitBreaker::Clock fn() {
    return [this] { return now; };
  }
};

CircuitBreaker::Options SmallBreaker() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown = milliseconds(100);
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAllows) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejected_count(), 0u);
}

TEST(CircuitBreakerTest, TripsAtConsecutiveFailureThreshold) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();  // Third consecutive failure trips it.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 1u);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.rejected_count(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // Streak broken.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trip_count(), 0u);
}

TEST(CircuitBreakerTest, HalfOpenProbeAfterCooldown) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  clock.Advance(milliseconds(50));
  EXPECT_FALSE(breaker.AllowRequest());  // Still cooling down.
  clock.Advance(milliseconds(60));
  EXPECT_TRUE(breaker.AllowRequest());  // The probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest());  // Exactly one probe at a time.
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(milliseconds(200));
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, NonFailureProbeClosesInsteadOfWedging) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(milliseconds(200));
  ASSERT_TRUE(breaker.AllowRequest());  // The probe...
  breaker.RecordNonFailure();           // ...hits a caller error.
  // The probe reached the dependency, so the path is proven: the breaker
  // closes and traffic flows again (rather than the probe slot leaking and
  // every future request being rejected).
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, NonFailureKeepsTheClosedFailureStreak) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordNonFailure();  // Unlike RecordSuccess: the streak survives.
  breaker.RecordFailure();     // Third infrastructure failure trips it.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 1u);
}

TEST(CircuitBreakerTest, ProbeFailureReopensAndRestartsCooldown) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(milliseconds(200));
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trip_count(), 2u);
  EXPECT_FALSE(breaker.AllowRequest());  // Cooldown restarted.
  clock.Advance(milliseconds(150));
  EXPECT_TRUE(breaker.AllowRequest());  // New probe after the new cooldown.
}

}  // namespace
}  // namespace s2::resilience
