#include "dsp/wavelet.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2::dsp {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Normal(0, 1);
  return x;
}

TEST(WaveletTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(HaarForward({}).ok());
  EXPECT_FALSE(HaarForward(std::vector<double>(3, 1.0)).ok());
  EXPECT_FALSE(HaarForward(std::vector<double>(365, 1.0)).ok());
  EXPECT_FALSE(HaarInverse(std::vector<double>(12, 1.0)).ok());
}

TEST(WaveletTest, SingleElementIsIdentity) {
  auto coeffs = HaarForward({4.2});
  ASSERT_TRUE(coeffs.ok());
  EXPECT_DOUBLE_EQ((*coeffs)[0], 4.2);
}

TEST(WaveletTest, KnownSmallTransform) {
  // x = [1,2,3,4]: level 1 -> approx [3/√2, 7/√2], detail [-1/√2, -1/√2];
  // level 2 -> approx [10/2=5], detail [(3-7)/2=-2].
  auto coeffs = HaarForward({1, 2, 3, 4});
  ASSERT_TRUE(coeffs.ok());
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR((*coeffs)[0], 5.0, 1e-12);
  EXPECT_NEAR((*coeffs)[1], -2.0, 1e-12);
  EXPECT_NEAR((*coeffs)[2], -inv_sqrt2, 1e-12);
  EXPECT_NEAR((*coeffs)[3], -inv_sqrt2, 1e-12);
}

TEST(WaveletTest, RoundTrip) {
  for (size_t n : {2u, 8u, 64u, 1024u}) {
    const std::vector<double> x = RandomSeries(n, 10 + n);
    auto coeffs = HaarForward(x);
    ASSERT_TRUE(coeffs.ok());
    auto back = HaarInverse(*coeffs);
    ASSERT_TRUE(back.ok());
    for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*back)[i], x[i], 1e-10) << n;
  }
}

TEST(WaveletTest, OrthonormalityPreservesEnergyAndDistance) {
  const std::vector<double> a = RandomSeries(256, 1);
  const std::vector<double> b = RandomSeries(256, 2);
  auto wa = HaarForward(a);
  auto wb = HaarForward(b);
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  EXPECT_NEAR(Energy(*wa), Energy(a), 1e-9 * Energy(a));
  EXPECT_NEAR(*Euclidean(*wa, *wb), *Euclidean(a, b), 1e-9);
}

TEST(WaveletTest, ConstantSignalConcentratesInApproximation) {
  auto coeffs = HaarForward(std::vector<double>(64, 3.0));
  ASSERT_TRUE(coeffs.ok());
  EXPECT_NEAR((*coeffs)[0], 3.0 * 8.0, 1e-9);  // 3 * sqrt(64).
  for (size_t i = 1; i < coeffs->size(); ++i) EXPECT_NEAR((*coeffs)[i], 0.0, 1e-12);
}

TEST(WaveletTest, StepSignalSparseInHaar) {
  // A step function has very few nonzero Haar coefficients.
  std::vector<double> x(64, -1.0);
  for (size_t i = 32; i < 64; ++i) x[i] = 1.0;
  auto coeffs = HaarForward(x);
  ASSERT_TRUE(coeffs.ok());
  size_t nonzero = 0;
  for (double c : *coeffs) nonzero += std::abs(c) > 1e-9 ? 1 : 0;
  EXPECT_LE(nonzero, 2u);
}

// --- Integration with the repr module (the paper's "any orthogonal
// decomposition" claim). ---

TEST(WaveletReprTest, SpectrumShapeAndEnergy) {
  const std::vector<double> x = RandomSeries(128, 5);
  auto spectrum = repr::HalfSpectrum::FromSeriesInBasis(
      x, repr::Basis::kOrthonormalReal);
  ASSERT_TRUE(spectrum.ok());
  EXPECT_EQ(spectrum->basis(), repr::Basis::kOrthonormalReal);
  EXPECT_EQ(spectrum->num_bins(), 128u);
  EXPECT_DOUBLE_EQ(spectrum->multiplicity(0), 1.0);
  EXPECT_DOUBLE_EQ(spectrum->multiplicity(64), 1.0);
  EXPECT_NEAR(spectrum->Energy(), Energy(x), 1e-9 * Energy(x));
}

TEST(WaveletReprTest, DistanceMatchesTimeDomain) {
  const std::vector<double> a = RandomSeries(256, 6);
  const std::vector<double> b = RandomSeries(256, 7);
  auto sa = repr::HalfSpectrum::FromSeriesInBasis(a, repr::Basis::kOrthonormalReal);
  auto sb = repr::HalfSpectrum::FromSeriesInBasis(b, repr::Basis::kOrthonormalReal);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_NEAR(*sa->DistanceTo(*sb), *Euclidean(a, b), 1e-9);
}

TEST(WaveletReprTest, MiddleKindsRejected) {
  auto spectrum = repr::HalfSpectrum::FromSeriesInBasis(
      RandomSeries(64, 8), repr::Basis::kOrthonormalReal);
  ASSERT_TRUE(spectrum.ok());
  EXPECT_FALSE(repr::CompressedSpectrum::Compress(
                   *spectrum, repr::ReprKind::kBestKMiddle, 8)
                   .ok());
  EXPECT_TRUE(repr::CompressedSpectrum::Compress(
                  *spectrum, repr::ReprKind::kBestKError, 8)
                  .ok());
}

TEST(WaveletReprTest, BoundsBracketTrueDistanceInWaveletBasis) {
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> a(512);
    std::vector<double> b(512);
    for (size_t i = 0; i < a.size(); ++i) {
      a[i] = std::sin(static_cast<double>(i) / 5.0) + rng.Normal(0, 0.5);
      b[i] = (i % 100 < 30 ? 2.0 : 0.0) + rng.Normal(0, 0.5);
    }
    a = Standardize(a);
    b = Standardize(b);
    auto qa = repr::HalfSpectrum::FromSeriesInBasis(a, repr::Basis::kOrthonormalReal);
    auto tb = repr::HalfSpectrum::FromSeriesInBasis(b, repr::Basis::kOrthonormalReal);
    ASSERT_TRUE(qa.ok());
    ASSERT_TRUE(tb.ok());
    auto compressed =
        repr::CompressedSpectrum::Compress(*tb, repr::ReprKind::kBestKError, 16);
    ASSERT_TRUE(compressed.ok());
    const double truth = *Euclidean(a, b);
    for (repr::BoundMethod method :
         {repr::BoundMethod::kBestError, repr::BoundMethod::kBestMin,
          repr::BoundMethod::kBestMinError}) {
      auto bounds = repr::ComputeBounds(*qa, *compressed, method);
      ASSERT_TRUE(bounds.ok());
      EXPECT_LE(bounds->lower, truth + 1e-7) << trial;
      EXPECT_GE(bounds->upper, truth - 1e-7) << trial;
    }
  }
}

TEST(WaveletReprTest, BasisMismatchRejected) {
  const std::vector<double> x = RandomSeries(64, 11);
  auto fourier = repr::HalfSpectrum::FromSeries(x);
  auto haar = repr::HalfSpectrum::FromSeriesInBasis(x, repr::Basis::kOrthonormalReal);
  ASSERT_TRUE(fourier.ok());
  ASSERT_TRUE(haar.ok());
  auto compressed =
      repr::CompressedSpectrum::Compress(*haar, repr::ReprKind::kBestKError, 8);
  ASSERT_TRUE(compressed.ok());
  EXPECT_FALSE(
      repr::ComputeBounds(*fourier, *compressed, repr::BoundMethod::kBestMinError)
          .ok());
}

TEST(WaveletReprTest, SparseReconstructionIsProjection) {
  const std::vector<double> x = RandomSeries(128, 12);
  auto spectrum = repr::HalfSpectrum::FromSeriesInBasis(
      x, repr::Basis::kOrthonormalReal);
  ASSERT_TRUE(spectrum.ok());
  auto compressed = repr::CompressedSpectrum::CompressToEnergy(*spectrum, 0.9);
  ASSERT_TRUE(compressed.ok());
  auto reconstruction = compressed->Reconstruct();
  ASSERT_TRUE(reconstruction.ok());
  const double residual = *SquaredEuclidean(x, *reconstruction);
  EXPECT_NEAR(residual, compressed->error(), 1e-6 * (1.0 + compressed->error()));
}

}  // namespace
}  // namespace s2::dsp
