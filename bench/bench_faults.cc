// Fault-injection benchmark: serving-path latency and availability under
// transient disk faults, with and without the degradation ladder.
//
//   ./build/bench/bench_faults [--series 512] [--days 256] [--requests 400]
//                              [--k 10]
//
// Section 1 sweeps the per-read transient-fault rate (0%, 0.1%, 1%, 5%)
// against a disk-resident engine on an in-memory fault-injecting
// filesystem, once with graceful degradation on (retry -> exact-scan
// fallback) and once with it off (failures surface to the caller). Reported
// per row: success rate (non-error answers), degraded-answer fraction,
// retry counters and latency percentiles.
//
// Section 2 takes the disk fully down (100% fault rate) with a small
// circuit breaker and compares the latency of degraded answers (full retry
// ladder + exact scan) against shed requests once the breaker opens — the
// "fail fast" payoff.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/s2_engine.h"
#include "io/fault_env.h"
#include "io/mem_env.h"
#include "querylog/corpus_generator.h"
#include "service/s2_server.h"

using namespace s2;

namespace {

struct Config {
  size_t series = 512;
  size_t days = 256;
  size_t requests = 400;
  size_t k = 10;
};

struct Row {
  double fault_rate = 0.0;
  size_t ok_primary = 0;
  size_t ok_degraded = 0;
  size_t errors = 0;
  uint64_t retries = 0;
  uint64_t giveups = 0;
  std::vector<uint64_t> latencies_us;
};

uint64_t Percentile(std::vector<uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

struct Deployment {
  io::MemEnv base;
  std::unique_ptr<io::FaultInjectingEnv> env;
  std::unique_ptr<service::S2Server> server;
};

// Builds a disk-resident engine through a (currently fault-free) injecting
// env and wraps it in a server with the result cache off, so every request
// exercises the disk path.
std::unique_ptr<Deployment> MakeDeployment(const Config& config, bool degrade,
                                           resilience::CircuitBreaker::Options breaker) {
  auto d = std::make_unique<Deployment>();
  d->env = std::make_unique<io::FaultInjectingEnv>(&d->base, io::FaultPlan{});
  qlog::CorpusSpec spec;
  spec.num_series = config.series;
  spec.n_days = config.days;
  spec.seed = 97;
  auto corpus = qlog::GenerateCorpus(spec);
  if (!corpus.ok()) {
    std::fprintf(stderr, "corpus: %s\n", corpus.status().ToString().c_str());
    return nullptr;
  }
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.disk_store_path = "store.bin";
  options.env = d->env.get();
  options.retry.base_backoff = std::chrono::microseconds(20);
  options.retry.max_backoff = std::chrono::microseconds(200);
  auto engine = core::S2Engine::Build(std::move(corpus).ValueOrDie(), options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return nullptr;
  }
  service::S2Server::Options server_options;
  server_options.scheduler.threads = 2;
  server_options.cache_capacity = 0;
  server_options.breaker = breaker;
  server_options.degrade_on_failure = degrade;
  d->server =
      service::S2Server::Create(std::move(engine).ValueOrDie(), server_options);
  return d;
}

Row RunRow(Deployment& d, const Config& config, double fault_rate) {
  io::FaultPlan plan;
  plan.read_fault_rate = fault_rate;
  plan.seed = 1234;
  d.env->set_plan(plan);
  const uint64_t retries_before =
      d.server->metrics().counter("server_retry_attempts")->value();
  const uint64_t giveups_before =
      d.server->metrics().counter("server_retry_giveups")->value();
  Row row;
  row.fault_rate = fault_rate;
  for (size_t i = 0; i < config.requests; ++i) {
    service::QueryRequest request;
    request.kind = service::RequestKind::kSimilarTo;
    request.id = static_cast<ts::SeriesId>(i % config.series);
    request.k = config.k;
    const auto start = std::chrono::steady_clock::now();
    service::QueryResponse response = d.server->Execute(request);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    row.latencies_us.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
    if (!response.status.ok()) {
      ++row.errors;
    } else if (response.degraded) {
      ++row.ok_degraded;
    } else {
      ++row.ok_primary;
    }
  }
  row.retries =
      d.server->metrics().counter("server_retry_attempts")->value() -
      retries_before;
  row.giveups =
      d.server->metrics().counter("server_retry_giveups")->value() -
      giveups_before;
  return row;
}

void PrintRow(const Row& row, size_t requests) {
  const double success =
      100.0 * static_cast<double>(requests - row.errors) /
      static_cast<double>(requests);
  const double degraded =
      100.0 * static_cast<double>(row.ok_degraded) / static_cast<double>(requests);
  std::printf(
      "  %5.1f%% | %7.2f%% | %8.2f%% | %7llu | %7llu | %6llu | %6llu | %6llu\n",
      100.0 * row.fault_rate, success, degraded,
      static_cast<unsigned long long>(row.retries),
      static_cast<unsigned long long>(row.giveups),
      static_cast<unsigned long long>(Percentile(row.latencies_us, 0.50)),
      static_cast<unsigned long long>(Percentile(row.latencies_us, 0.95)),
      static_cast<unsigned long long>(Percentile(row.latencies_us, 0.99)));
}

bench::Json JsonRow(const Row& row, size_t requests) {
  const double success = 100.0 * static_cast<double>(requests - row.errors) /
                         static_cast<double>(requests);
  const double degraded = 100.0 * static_cast<double>(row.ok_degraded) /
                          static_cast<double>(requests);
  return bench::Json::Object()
      .Add("fault_rate", row.fault_rate)
      .Add("success_pct", success)
      .Add("degraded_pct", degraded)
      .Add("retries", row.retries)
      .Add("giveups", row.giveups)
      .Add("p50_us", Percentile(row.latencies_us, 0.50))
      .Add("p95_us", Percentile(row.latencies_us, 0.95))
      .Add("p99_us", Percentile(row.latencies_us, 0.99));
}

resilience::CircuitBreaker::Options HugeThreshold() {
  resilience::CircuitBreaker::Options breaker;
  breaker.failure_threshold = 1u << 30;  // Sections 1 rows never shed.
  return breaker;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (!std::strcmp(argv[i], "--series")) config.series = std::stoul(argv[i + 1]);
    if (!std::strcmp(argv[i], "--days")) config.days = std::stoul(argv[i + 1]);
    if (!std::strcmp(argv[i], "--requests"))
      config.requests = std::stoul(argv[i + 1]);
    if (!std::strcmp(argv[i], "--k")) config.k = std::stoul(argv[i + 1]);
  }
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_faults.json");
  const std::vector<double> rates = {0.0, 0.001, 0.01, 0.05};

  std::printf("== bench_faults: %zu series x %zu days, %zu requests/row ==\n\n",
              config.series, config.days, config.requests);

  bench::Json ladder_on = bench::Json::Array();
  bench::Json ladder_off = bench::Json::Array();
  for (const bool degrade : {true, false}) {
    auto d = MakeDeployment(config, degrade, HugeThreshold());
    if (!d) return 1;
    std::printf("-- degradation ladder %s --\n", degrade ? "ON" : "OFF");
    std::printf(
        "  fault  | success  | degraded  | retries | giveups |    p50 |    "
        "p95 |    p99 (us)\n");
    for (const double rate : rates) {
      const Row row = RunRow(*d, config, rate);
      PrintRow(row, config.requests);
      (degrade ? ladder_on : ladder_off).Push(JsonRow(row, config.requests));
    }
    std::printf("\n");
  }

  // Section 2: disk fully down; breaker turns retry storms into fast sheds.
  resilience::CircuitBreaker::Options small_breaker;
  small_breaker.failure_threshold = 5;
  small_breaker.cooldown = std::chrono::milliseconds(60'000);
  auto d = MakeDeployment(config, /*degrade=*/true, small_breaker);
  if (!d) return 1;
  io::FaultPlan outage;
  outage.read_fault_rate = 1.0;
  d->env->set_plan(outage);
  std::vector<uint64_t> degraded_us, shed_us;
  for (size_t i = 0; i < config.requests; ++i) {
    service::QueryRequest request;
    request.kind = service::RequestKind::kSimilarTo;
    request.id = static_cast<ts::SeriesId>(i % config.series);
    request.k = config.k;
    const auto start = std::chrono::steady_clock::now();
    service::QueryResponse response = d->server->Execute(request);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
    if (response.status.code() == StatusCode::kUnavailable) {
      shed_us.push_back(us);
    } else if (response.status.ok() && response.degraded) {
      degraded_us.push_back(us);
    }
  }
  std::printf("-- total outage (100%% fault rate), breaker threshold 5 --\n");
  std::printf("  degraded answers: %5zu  p50 %6llu us  p99 %6llu us\n",
              degraded_us.size(),
              static_cast<unsigned long long>(Percentile(degraded_us, 0.50)),
              static_cast<unsigned long long>(Percentile(degraded_us, 0.99)));
  std::printf("  shed (breaker):   %5zu  p50 %6llu us  p99 %6llu us\n",
              shed_us.size(),
              static_cast<unsigned long long>(Percentile(shed_us, 0.50)),
              static_cast<unsigned long long>(Percentile(shed_us, 0.99)));

  bench::WriteJsonFile(
      json_path,
      bench::Json::Object()
          .Add("bench", "bench_faults")
          .Add("spec",
               bench::Json::Object()
                   .Add("series", static_cast<uint64_t>(config.series))
                   .Add("days", static_cast<uint64_t>(config.days))
                   .Add("requests", static_cast<uint64_t>(config.requests))
                   .Add("k", static_cast<uint64_t>(config.k)))
          .Add("ladder_on", std::move(ladder_on))
          .Add("ladder_off", std::move(ladder_off))
          .Add("outage",
               bench::Json::Object()
                   .Add("degraded_answers",
                        static_cast<uint64_t>(degraded_us.size()))
                   .Add("degraded_p50_us", Percentile(degraded_us, 0.50))
                   .Add("degraded_p99_us", Percentile(degraded_us, 0.99))
                   .Add("shed", static_cast<uint64_t>(shed_us.size()))
                   .Add("shed_p50_us", Percentile(shed_us, 0.50))
                   .Add("shed_p99_us", Percentile(shed_us, 0.99))));
  return 0;
}
