#include "simd/kernels_inl.h"

// Compiled with -mavx2 (and -ffp-contract=off, like every kernel TU) only
// when the toolchain supports it; dispatch.cc gates use on CPUID.
#if defined(__AVX2__)

#include <immintrin.h>

namespace s2::simd {
namespace {

// Same lane-wise IEEE operations as detail::SlideComplexBinsGeneric, two
// complex bins per 256-bit register:
//   re' = (re + delta) * cr - im * ci
//   im' =          im  * cr + (re + delta) * ci
// The delta shift is applied with a blend (not an add of (delta, 0)):
// adding +0.0 to a -0.0 imaginary part would flip its sign bit and break
// bit-compatibility with the scalar spec.
void SlideComplexBinsAvx2(double* reim, const double* twiddles_reim,
                          size_t bins, double delta) {
  const __m256d delta_v = _mm256_set1_pd(delta);
  size_t i = 0;
  for (; i + 2 <= bins; i += 2) {
    const __m256d raw = _mm256_loadu_pd(reim + 2 * i);     // re0 im0 re1 im1
    const __m256d shifted = _mm256_add_pd(raw, delta_v);
    const __m256d r = _mm256_blend_pd(raw, shifted, 0x5);  // re lanes shifted
    const __m256d t = _mm256_loadu_pd(twiddles_reim + 2 * i);
    const __m256d t_re = _mm256_movedup_pd(t);             // cr0 cr0 cr1 cr1
    const __m256d t_im = _mm256_permute_pd(t, 0xF);        // ci0 ci0 ci1 ci1
    const __m256d r_swap = _mm256_permute_pd(r, 0x5);      // im0 re0 im1 re1
    const __m256d prod_re = _mm256_mul_pd(r, t_re);
    const __m256d prod_im = _mm256_mul_pd(r_swap, t_im);
    _mm256_storeu_pd(reim + 2 * i, _mm256_addsub_pd(prod_re, prod_im));
  }
  for (; i < bins; ++i) {
    const double re = reim[2 * i] + delta;
    const double im = reim[2 * i + 1];
    const double cr = twiddles_reim[2 * i];
    const double ci = twiddles_reim[2 * i + 1];
    reim[2 * i] = re * cr - im * ci;
    reim[2 * i + 1] = im * cr + re * ci;
  }
}

}  // namespace

const KernelTable* Avx2Table() {
  static const KernelTable table = [] {
    KernelTable t = detail::MakeTable<detail::VecAvx2>(Isa::kAvx2, "avx2");
    t.slide_complex_bins = &SlideComplexBinsAvx2;
    return t;
  }();
  return &table;
}

}  // namespace s2::simd

#else
#error "kernels_avx2.cc must be compiled with -mavx2"
#endif
