#include "timeseries/calendar.h"

#include <array>
#include <cstdio>

namespace s2::ts {

namespace {
constexpr std::array<int, 12> kDaysPerMonth = {31, 28, 31, 30, 31, 30,
                                               31, 31, 30, 31, 30, 31};
}  // namespace

int DaysInMonth(int year, int month) {
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDaysPerMonth[static_cast<size_t>(month - 1)];
}

int32_t DateToDayIndex(const Date& date) {
  int32_t days = 0;
  if (date.year >= kEpochYear) {
    for (int y = kEpochYear; y < date.year; ++y) days += DaysInYear(y);
  } else {
    for (int y = date.year; y < kEpochYear; ++y) days -= DaysInYear(y);
  }
  for (int m = 1; m < date.month; ++m) days += DaysInMonth(date.year, m);
  return days + date.day - 1;
}

Date DayIndexToDate(int32_t day_index) {
  Date date;
  date.year = kEpochYear;
  int32_t remaining = day_index;
  while (remaining < 0) {
    --date.year;
    remaining += DaysInYear(date.year);
  }
  while (remaining >= DaysInYear(date.year)) {
    remaining -= DaysInYear(date.year);
    ++date.year;
  }
  date.month = 1;
  while (remaining >= DaysInMonth(date.year, date.month)) {
    remaining -= DaysInMonth(date.year, date.month);
    ++date.month;
  }
  date.day = remaining + 1;
  return date;
}

int DayOfYear(int32_t day_index) {
  const Date date = DayIndexToDate(day_index);
  int doy = date.day;
  for (int m = 1; m < date.month; ++m) doy += DaysInMonth(date.year, m);
  return doy;
}

int DayOfWeek(int32_t day_index) {
  // 2000-01-01 (day 0) was a Saturday = 5 in Monday-based numbering.
  int dow = (5 + day_index) % 7;
  if (dow < 0) dow += 7;
  return dow;
}

std::string FormatDayIndex(int32_t day_index) {
  const Date date = DayIndexToDate(day_index);
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d", date.year, date.month,
                date.day);
  return buffer;
}

}  // namespace s2::ts
