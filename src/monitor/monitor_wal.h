#ifndef S2_MONITOR_MONITOR_WAL_H_
#define S2_MONITOR_MONITOR_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "io/env.h"
#include "io/wal_segment.h"
#include "monitor/subscription.h"

namespace s2::monitor {

/// One durably logged subscription-lifecycle event. `anchor` is the stream
/// WAL's record count at the moment the op was acknowledged: replay merges
/// the two logs by anchor, applying each op after exactly `anchor` appends
/// have been re-applied — so a replayed subscription arms against the very
/// window it originally armed against, and the re-fired alert stream (and
/// its sequence numbers) matches the pre-crash run bit for bit.
struct MonitorOp {
  enum class Kind : uint32_t {
    kSubscribe = 1,
    kUnsubscribe = 2,
    kAck = 3,
  };
  Kind op = Kind::kSubscribe;
  uint64_t anchor = 0;
  /// kSubscribe: the full subscription. kUnsubscribe: only `sub.id` is
  /// meaningful.
  Subscription sub;
  /// kAck: the acknowledged sequence watermark.
  uint64_t ack_upto = 0;
};

/// Crash-safe append-only log for subscription registrations,
/// cancellations and alert acknowledgements — the monitor-side companion of
/// `stream::Wal`, sharing its durability design: 8-byte magic "S2MWAL01",
/// then variable-size records of
///
///   [u32 payload_bytes | payload | u64 checksum]
///
/// in native byte order, with the FNV-1a checksum computed over the length
/// prefix *and* payload and chained on the previous record's checksum
/// (record 0 on the hash of the magic). Torn tails are never truncated —
/// the next append overwrites them in place, and the chain breaks replay at
/// the tear even when stale bytes of a longer previous log survive intact.
///
/// Every `Append` syncs (registrations are rare and each acknowledgement is
/// a durability promise); a failed append leaves the log state unchanged
/// and may be retried.
///
/// Thread safety: none — the server serializes monitor-log appends behind
/// its writer lock, like every other write path.
class MonitorWal {
 public:
  struct Options {
    /// Segment-body byte threshold that triggers rotation on the next
    /// append (see `io::walseg`). 0 (default) keeps the legacy single-file
    /// layout.
    uint64_t rotate_bytes = 0;
    /// Decode starts at this op index (a checkpoint anchor): earlier ops
    /// are not delivered, and sealed segments wholly below it are skipped
    /// unread.
    uint64_t replay_from = 0;
  };

  struct ReplayInfo {
    size_t records = 0;           ///< Intact records decoded at open.
    uint64_t dropped_bytes = 0;   ///< Torn/stale tail bytes ignored.
  };

  /// Opens (creating if absent) the log at `path` and decodes every intact
  /// record at or past `options.replay_from` into `ops` in append order —
  /// decoding only; the caller applies them, merged with the stream WAL by
  /// anchor. `env` null means the POSIX filesystem.
  static Result<std::unique_ptr<MonitorWal>> Open(io::Env* env,
                                                  const std::string& path,
                                                  std::vector<MonitorOp>* ops,
                                                  ReplayInfo* info,
                                                  const Options& options);
  static Result<std::unique_ptr<MonitorWal>> Open(io::Env* env,
                                                  const std::string& path,
                                                  std::vector<MonitorOp>* ops,
                                                  ReplayInfo* info = nullptr) {
    return Open(env, path, ops, info, Options());
  }

  /// Appends and syncs one op (rotating first when the active segment is
  /// full); on any error the log state is unchanged.
  Status Append(const MonitorOp& op);

  /// Records appended through this handle plus those counted at open
  /// (including the skipped prefix below `replay_from`).
  size_t record_count() const { return record_count_; }

  const std::string& path() const { return path_; }

  /// The live segments, oldest first (the active tail last).
  const std::vector<io::walseg::SegmentInfo>& segments() const {
    return segments_;
  }

  /// Unlinks leading segments whose ops all lie below `keep_from`.
  Result<size_t> RemoveObsoleteSegments(uint64_t keep_from);

  /// Reads the segment list of a (possibly closed) log off disk — tooling.
  static Result<std::vector<io::walseg::SegmentInfo>> ListSegments(
      io::Env* env, const std::string& path);

 private:
  MonitorWal(io::Env* env, std::string path, Options options,
             io::walseg::OpenResult state);

  Status MaybeRotate();

  io::Env* env_;
  std::string path_;
  std::unique_ptr<io::File> file_;
  Options options_;
  uint64_t tail_ = 0;   ///< Next append offset (end of intact records).
  uint64_t chain_ = 0;  ///< Checksum of the last intact record.
  size_t record_count_ = 0;
  uint64_t seq_ = 0;               ///< Active segment's sequence number.
  std::vector<io::walseg::SegmentInfo> segments_;
};

}  // namespace s2::monitor

#endif  // S2_MONITOR_MONITOR_WAL_H_
