#include "diag/check.h"

#include <cstdio>
#include <cstdlib>

namespace s2::diag {

namespace {

void DefaultHandler(const CheckFailure& failure) {
  const std::string report = FormatCheckFailure(failure);
  std::fprintf(stderr, "%s\n", report.c_str());
  std::fflush(stderr);
  std::abort();
}

CheckFailureHandler g_handler = &DefaultHandler;

}  // namespace

std::string FormatCheckFailure(const CheckFailure& failure) {
  std::string out = failure.location.file;
  out += ':';
  out += std::to_string(failure.location.line);
  out += failure.is_dcheck ? ": S2_DCHECK(" : ": S2_CHECK(";
  out += failure.condition;
  out += ") failed in ";
  out += failure.location.function;
  if (!failure.message.empty()) {
    out += ": ";
    out += failure.message;
  }
  return out;
}

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  CheckFailureHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &DefaultHandler;
  return previous;
}

void ReportCheckFailure(const CheckFailure& failure) { g_handler(failure); }

}  // namespace s2::diag
