#ifndef S2_CKPT_MANIFEST_H_
#define S2_CKPT_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace s2::ckpt {

/// Names one committed checkpoint generation and the WAL position its
/// snapshot anchors at. The generation doubles as the snapshot file
/// suffix (`<base>.ckpt.<generation>`).
struct CheckpointMeta {
  uint64_t generation = 0;
  uint64_t anchor_appends = 0;
  uint64_t anchor_monitor_ops = 0;
};

/// One live WAL segment as recorded at checkpoint time: its rotation
/// sequence number and the stream position (records before it) its
/// header carries.
struct SegmentMeta {
  uint64_t seq = 0;
  uint64_t base_records = 0;
};

/// The checkpoint MANIFEST: the single small file recovery reads first.
/// It names the current snapshot generation, the previous one kept as the
/// fallback when the current snapshot fails validation, and the WAL
/// segment sets that were live at commit. Written through the same
/// atomic-rename generation container as every snapshot (`io::durable`),
/// so a crash mid-commit always leaves the previous complete manifest.
///
/// Invariants:
///  * `current.generation` strictly increases across commits; the
///    snapshot file for it is committed *before* the manifest that names
///    it (a crash between the two leaves an orphan snapshot, which the
///    next GC removes, never a manifest naming a missing snapshot).
///  * When `has_prev`, the snapshot for `prev.generation` is retained on
///    disk until the *next* successful commit retires it — corruption of
///    the newest snapshot falls back one generation, losing nothing
///    (the WAL tail past the older anchor is longer, not gone).
///  * Segment GC never removes a segment whose successor's
///    `base_records` exceeds the *fallback* anchor, so both recorded
///    generations can always replay their tails.
struct Manifest {
  CheckpointMeta current;
  bool has_prev = false;
  CheckpointMeta prev;
  /// Engine topology at commit: per-shard corpus checksums (FNV-1a over
  /// each local corpus in local id order). Verified at recovery only when
  /// the topologies match; a different shard count recovers fine — the
  /// snapshot corpus is stored in global id order — it just skips this
  /// extra cross-check.
  uint64_t shard_count = 1;
  std::vector<uint64_t> shard_checksums;
  /// Data / monitor WAL segments live at commit (seq ascending; seq 0 is
  /// the legacy base file).
  std::vector<SegmentMeta> data_segments;
  std::vector<SegmentMeta> monitor_segments;
};

/// Serializes `manifest` into the payload committed through the
/// `io::durable` generation container.
std::vector<char> EncodeManifest(const Manifest& manifest);

/// Decodes a manifest payload; bounds-checked throughout, so mutated
/// bytes yield `Corruption`, never UB.
Status DecodeManifest(const char* data, size_t n, Manifest* out);

}  // namespace s2::ckpt

#endif  // S2_CKPT_MANIFEST_H_
