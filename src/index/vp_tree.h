#ifndef S2_INDEX_VP_TREE_H_
#define S2_INDEX_VP_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/knn.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"
#include "storage/sequence_store.h"

namespace s2::index {

/// The paper's customized vantage-point tree (Section 4).
///
/// Construction uses *exact* distances between uncompressed sequences; after
/// a point is chosen as a vantage point (or lands in a leaf) only its
/// compressed spectral representation is kept, which makes the index "very
/// compact in size". Searches therefore work with lower/upper distance
/// *bounds* (Section 3 algorithms) instead of exact distances:
///
/// * a subtree is pruned when the bound window around the vantage point
///   proves it cannot contain anything better than the best-so-far upper
///   bound `sigma_UB`;
/// * traversal is heuristically guided towards the child whose distance
///   region overlaps the query's [LB, UB] annulus the most;
/// * after traversal, candidates with `LB > SUB` (smallest upper bound) are
///   dropped and the survivors are verified against the full sequences, in
///   ascending-LB order with early termination — exactly the paper's
///   `NNSearch` (Figure 11) generalized to k neighbors.
class VpTreeIndex {
 public:
  struct Options {
    /// Representation stored for vantage points and leaf objects.
    repr::ReprKind repr_kind = repr::ReprKind::kBestKError;
    /// Orthonormal decomposition used for features and bounds. The Fourier
    /// half-spectrum is the paper's choice; kOrthonormalReal switches to the
    /// Haar wavelet basis (power-of-two lengths only, error-kinds only).
    repr::Basis basis = repr::Basis::kFourierHalf;
    /// Bounding algorithm used during search.
    repr::BoundMethod method = repr::BoundMethod::kBestMinError;
    /// Memory budget in "first coefficients" units: every representation
    /// occupies the memory of `2*budget_c + 1` doubles (Table 1).
    size_t budget_c = 16;
    /// Section 8 extension: when > 0, ignore `budget_c`/`repr_kind` and give
    /// each object a *variable* number of best coefficients capturing this
    /// energy fraction (kBestKError representation). In (0, 1).
    double energy_fraction = 0.0;
    /// Maximum number of objects in a leaf.
    size_t leaf_size = 8;
    /// How many candidate vantage points are probed at each split; the one
    /// with the highest deviation of distances wins (paper's heuristic).
    size_t vantage_candidates = 16;
    /// Sample size for estimating a candidate's distance deviation.
    size_t deviation_sample = 64;
    /// Enables the "most promising child first" traversal heuristic.
    bool guided_traversal = true;
    /// Seed for the sampling performed during construction.
    uint64_t seed = 7;
  };

  /// Per-search instrumentation.
  struct SearchStats {
    size_t bound_computations = 0;   ///< Compressed objects scored.
    size_t candidates_surviving = 0; ///< Candidates left after the SUB filter.
    size_t full_retrievals = 0;      ///< Sequences fetched for verification.
    size_t nodes_visited = 0;        ///< Tree nodes touched.
    /// Prune decisions (subtree skips, verification skips/stops) that only
    /// succeeded because another partition's published radius was tighter
    /// than this search's local state — cross-shard prune hits.
    size_t shared_radius_prunes = 0;
  };

  /// Builds the index over `rows` (each row a standardized sequence of equal
  /// length; row index == SeriesId). Returns InvalidArgument on ragged or
  /// empty input, or when the budget is infeasible for the sequence length.
  static Result<VpTreeIndex> Build(const std::vector<std::vector<double>>& rows,
                                   const Options& options);

  /// An index over zero sequences of the given length, grown purely through
  /// `Insert` — the delta tier of the streaming (LSM-style) layer starts
  /// here. Searches over an empty index return no neighbors.
  static Result<VpTreeIndex> CreateEmpty(const Options& options,
                                         uint32_t series_length);

  /// Exact k-nearest-neighbor search. `source` provides the full sequences
  /// for the verification phase (RAM or disk); `stats` is optional.
  ///
  /// `shared`, when non-null, is a cross-partition pruning radius (see
  /// SharedRadius in knn.h): the search additionally prunes against it and
  /// publishes every upper bound it certifies on its own k-th distance.
  /// The returned list then contains every object of *this* index that
  /// could still be in the global top-k — a subset of the local top-k, with
  /// exact distances — which is exactly what a scatter-gather merge needs.
  Result<std::vector<Neighbor>> Search(const std::vector<double>& query, size_t k,
                                       storage::SequenceSource* source,
                                       SearchStats* stats,
                                       SharedRadius* shared = nullptr) const;

  /// Candidate-generation phase only: traverses the tree and returns every
  /// unpruned compressed object with its bounds. Exposed for experiments
  /// that study pruning power without verification I/O.
  struct Candidate {
    ts::SeriesId id;
    double lower;
    double upper;
  };
  Result<std::vector<Candidate>> CollectCandidates(const std::vector<double>& query,
                                                   size_t k, SearchStats* stats,
                                                   SharedRadius* shared = nullptr) const;

  /// Dynamic maintenance. The paper notes that dynamic VP-tree extensions
  /// (Fu et al.) "can be implemented on top of the proposed search
  /// mechanisms"; these methods provide them.
  ///
  /// Inserts the standardized sequence `row` under a fresh `id`. Routing
  /// descends by *exact* distance to each vantage point, whose full
  /// representation is fetched from `source` (one random read per level —
  /// the index itself only holds compressed data). A leaf that grows beyond
  /// `2 * leaf_size` is split in place, again using exact distances from
  /// `source`. `source->Get(id)` must already return `row` (register the
  /// sequence with the store before inserting).
  Status Insert(ts::SeriesId id, const std::vector<double>& row,
                storage::SequenceSource* source);

  /// Removes a sequence. Leaf objects are erased outright; vantage points
  /// are tombstoned — kept for routing but excluded from all results — the
  /// standard deletion strategy for metric trees. Returns NotFound for
  /// unknown ids.
  ///
  /// `pinned_row`, when non-null, is copied into the node if the removal
  /// tombstones a vantage point. It must be the row the vantage was indexed
  /// under; later `Insert` routing and `Validate` use the pinned copy
  /// instead of `source->Get(id)`, so the id's row in the store may change
  /// after the removal (the streaming append path removes a series, updates
  /// its stored row, and re-inserts it elsewhere — without the pin, routing
  /// against the *new* row would contradict the medians and subtree
  /// membership built around the old one). Pass null only when the backing
  /// store stays frozen for the tombstone's lifetime. Pinned rows are not
  /// serialized by `Save`; compact tombstones away before saving.
  Status Remove(ts::SeriesId id,
                const std::vector<double>* pinned_row = nullptr);

  /// Number of tombstoned vantage points (candidates for a rebuild when
  /// this grows large).
  size_t num_tombstones() const { return num_tombstones_; }

  /// Serializes the whole index (options, topology, compressed features) so
  /// a later session can `Load` it without re-running the DFT or the
  /// exact-distance construction — the S2 tool's "compressed features are
  /// stored locally" deployment mode. Commits through the crash-safe
  /// generation container (`io::durable`): a crash mid-save leaves the
  /// previous image loadable. `env` defaults to the POSIX filesystem.
  Status Save(const std::string& path, io::Env* env = nullptr) const;

  /// Loads an index previously written by `Save` (newest valid generation;
  /// legacy headerless images load as generation 0).
  static Result<VpTreeIndex> Load(const std::string& path,
                                  io::Env* env = nullptr);

  /// Structural self-check: child pointers in range, no node reachable
  /// twice, every node reachable from the root, object/tombstone counts
  /// matching the per-node census, leaves childless and internals
  /// bucket-free, split radii finite and non-negative, and no id indexed
  /// twice. When `source` is non-null, additionally verifies the metric
  /// invariant with exact distances: every object in a left subtree lies
  /// within its vantage radius, every right-subtree object at or beyond it
  /// (one `Get` per indexed object — expensive, test/debug use). Reports the
  /// exact violations as `Status::Corruption`.
  Status Validate(storage::SequenceSource* source = nullptr) const;

  /// Total bytes of all compressed representations held by the index (the
  /// paper's compact-index size claim), excluding pointer overhead.
  size_t CompressedBytes() const;

  /// Number of indexed sequences.
  size_t size() const { return num_objects_; }

  const Options& options() const { return options_; }

 private:
  friend struct VpTreeTestPeer;  // Corruption injection in validator tests.

  struct Builder;  // Construction helper, defined in vp_tree.cc.

  struct Entry {
    ts::SeriesId id;
    repr::CompressedSpectrum repr;
  };
  struct Node {
    Entry vantage;               // Meaningful for internal nodes.
    double median = 0.0;         // Split radius around the vantage point.
    int32_t left = -1;           // Child node ids; -1 when absent.
    int32_t right = -1;
    bool leaf = false;
    bool vantage_deleted = false;  // Tombstone: route through, never report.
    std::vector<Entry> bucket;   // Leaf objects.
    // Full row the vantage was indexed under, pinned at tombstoning time so
    // routing/validation survive the store's row changing afterwards (see
    // Remove). Empty when no row was pinned. Per-node, not per-id: the same
    // id may be tombstoned again later under a different row.
    std::vector<double> pinned_row;
  };

  VpTreeIndex(Options options, std::vector<Node> nodes, int32_t root,
              size_t num_objects, uint32_t series_length)
      : options_(options),
        nodes_(std::move(nodes)),
        root_(root),
        num_objects_(num_objects),
        series_length_(series_length) {}

  void SearchNode(int32_t node_id, const repr::HalfSpectrum& query,
                  std::vector<Candidate>* candidates, BestList* upper_bounds,
                  SearchStats* stats, SharedRadius* shared) const;

  Result<repr::CompressedSpectrum> CompressRow(const std::vector<double>& row) const;
  Status SplitLeaf(int32_t node_id, storage::SequenceSource* source);
  bool ContainsId(ts::SeriesId id) const;

  Options options_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t num_objects_ = 0;
  size_t num_tombstones_ = 0;
  uint32_t series_length_ = 0;
};

}  // namespace s2::index

#endif  // S2_INDEX_VP_TREE_H_
