# Empty dependencies file for disk_bptree_test.
# This may be replaced when dependencies are built.
