#ifndef S2_STREAM_SLIDING_SPECTRUM_H_
#define S2_STREAM_SLIDING_SPECTRUM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dsp/fft.h"
#include "repr/compressed.h"

namespace s2::stream {

/// Incremental (momentary) DFT over a sliding window: maintains the
/// normalized-DFT coefficients of a *fixed subset of bins* under
/// slide-by-one updates in O(tracked bins) per append, instead of an
/// O(N log N) FFT per append.
///
/// For the unitary DFT `X_k = (1/sqrt(N)) sum_t x_t e^{-2 pi i k t / N}`,
/// sliding the window by one sample (drop `x_old`, append `x_new`) obeys
/// the exact recurrence
///
///   X'_k = e^{+2 pi i k / N} * (X_k + (x_new - x_old) / sqrt(N)),
///
/// bin-independent in the correction term — O(1) per tracked bin. Running
/// sums maintain the window mean/deviation so standardized coefficients
/// `Z_k = X_k / sigma` (k > 0; the standardized DC bin is identically
/// zero) are available without touching the window.
///
/// `ToCompressed` emits a best-k feature over the *frozen* tracked
/// positions. Two deliberate deviations from a batch recompute keep it
/// sound as the spectrum drifts away from the positions chosen at
/// creation:
///
///  * the omitted energy is derived from Parseval — a standardized window
///    has total energy exactly N — so `error` stays exact (up to fp drift
///    of the running sums) even when the tracked bins are no longer the
///    true best-k;
///  * `min_power` is +infinity: a stale position set cannot bound the
///    magnitude of omitted bins, and an understated minPower would break
///    the lower bounds. With min_power = +inf the Best* bound algorithms
///    degrade gracefully to their error-only (Wang-style) form — valid,
///    merely looser.
///
/// Accumulated fp drift vs. a batch recompute is the documented tolerance
/// tested in stream_feature_test; re-creating the state (one FFT)
/// re-anchors both coefficients and positions.
class SlidingSpectrum {
 public:
  /// Builds the state with one exact FFT over the raw (unstandardized)
  /// `window`. `positions` are the half-spectrum bins to track (ascending,
  /// within n/2+1 bins, non-empty, fewer than all bins) — typically the
  /// best-k positions of the window's standardized feature.
  static Result<SlidingSpectrum> Create(const std::vector<double>& window,
                                        std::vector<uint32_t> positions);

  /// Slides the window by one sample: `x_old` leaves the front, `x_new`
  /// enters the back. O(tracked bins).
  void Slide(double x_old, double x_new);

  /// Window statistics from the running sums (population deviation, as
  /// everywhere in this codebase).
  double mean() const;
  double std_dev() const;

  uint32_t n() const { return n_; }
  const std::vector<uint32_t>& positions() const { return positions_; }

  /// Raw (unstandardized) coefficient of tracked slot `i`.
  dsp::Complex raw_coeff(size_t i) const { return raw_[i]; }

  /// The standardized best-k feature (kind kBestKError) described above. A
  /// constant window (sigma == 0) standardizes to all-zeros, matching
  /// dsp::Standardize.
  Result<repr::CompressedSpectrum> ToCompressed() const;

 private:
  SlidingSpectrum(uint32_t n, std::vector<uint32_t> positions,
                  std::vector<dsp::Complex> raw,
                  std::vector<dsp::Complex> twiddles, double sum, double sumsq)
      : n_(n),
        positions_(std::move(positions)),
        raw_(std::move(raw)),
        twiddles_(std::move(twiddles)),
        sum_(sum),
        sumsq_(sumsq) {}

  uint32_t n_;
  std::vector<uint32_t> positions_;
  std::vector<dsp::Complex> raw_;       // Raw DFT coefficients, tracked bins.
  std::vector<dsp::Complex> twiddles_;  // e^{+2 pi i k / N} per tracked bin.
  double sum_;
  double sumsq_;
};

}  // namespace s2::stream

#endif  // S2_STREAM_SLIDING_SPECTRUM_H_
