#include "simd/kernels_inl.h"

namespace s2::simd {

// Always present; the reference every other backend must match bit-for-bit.
const KernelTable* ScalarTable() {
  static const KernelTable table =
      detail::MakeTable<detail::VecScalar>(Isa::kScalar, "scalar");
  return &table;
}

}  // namespace s2::simd
