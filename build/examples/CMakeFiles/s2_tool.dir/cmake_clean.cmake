file(REMOVE_RECURSE
  "CMakeFiles/s2_tool.dir/s2_tool.cpp.o"
  "CMakeFiles/s2_tool.dir/s2_tool.cpp.o.d"
  "s2_tool"
  "s2_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
