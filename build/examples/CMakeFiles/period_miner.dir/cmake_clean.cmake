file(REMOVE_RECURSE
  "CMakeFiles/period_miner.dir/period_miner.cpp.o"
  "CMakeFiles/period_miner.dir/period_miner.cpp.o.d"
  "period_miner"
  "period_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/period_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
