#ifndef S2_BURST_BURST_TABLE_H_
#define S2_BURST_BURST_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "burst/burst_detector.h"
#include "burst/burst_similarity.h"
#include "common/result.h"
#include "storage/bptree.h"
#include "timeseries/time_series.h"

namespace s2::burst {

/// One row of the paper's DBMS burst table:
/// `[sequenceID, startDate, endDate, average burst value]`.
struct BurstRecord {
  ts::SeriesId series_id = ts::kInvalidSeriesId;
  int32_t start = 0;  ///< Absolute day index of the first burst day.
  int32_t end = 0;    ///< Absolute day index of the last burst day.
  double avg_value = 0.0;

  BurstRegion region() const { return BurstRegion{start, end, avg_value}; }
};

/// A ranked query-by-burst answer.
struct BurstMatch {
  ts::SeriesId series_id = ts::kInvalidSeriesId;
  double bsim = 0.0;
};

/// The relational burst store of Section 6.3: burst triplets as records,
/// indexed with a B-tree on `startDate` so the SQL plan
///
///   SELECT B FROM Bursts B
///   WHERE B.startDate <= Q.endDate AND B.endDate >= Q.startDate
///
/// becomes one index range scan plus a residual filter. `QueryByBurst`
/// aggregates `BSim` per sequence over the qualifying records.
class BurstTable {
 public:
  BurstTable() = default;

  BurstTable(const BurstTable&) = delete;
  BurstTable& operator=(const BurstTable&) = delete;
  // Hand-written moves: the atomic scan counter is not movable by default.
  // Moving is not thread-safe (single-owner operation, like Insert).
  BurstTable(BurstTable&& other) noexcept
      : records_(std::move(other.records_)),
        start_index_(std::move(other.start_index_)),
        last_scanned_(other.last_scanned_.load(std::memory_order_relaxed)) {}
  BurstTable& operator=(BurstTable&& other) noexcept {
    records_ = std::move(other.records_);
    start_index_ = std::move(other.start_index_);
    last_scanned_.store(other.last_scanned_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }

  /// Inserts the burst triplets of one sequence. `offset` shifts
  /// region-local positions into absolute day indices (pass the series'
  /// `start_day`).
  void Insert(ts::SeriesId series_id, const std::vector<BurstRegion>& regions,
              int32_t offset);

  /// Drops every record of one sequence (the streaming append path replaces
  /// a series' bursts after its window slides). Returns the number of
  /// records removed. Rebuilds the start-date index: its values are heap
  /// indices, which shift when records are compacted out. Not thread-safe
  /// against concurrent queries (single-owner operation, like Insert).
  size_t EraseSeries(ts::SeriesId series_id);

  /// All records overlapping `[query.start, query.end]`, via the start-date
  /// index.
  std::vector<BurstRecord> FindOverlapping(const BurstRegion& query) const;

  /// Query-by-burst: ranks sequences by `BSim` against the query's burst
  /// set. Only sequences with at least one overlapping burst can appear.
  /// Returns the top `k` (or all positive-score matches when k == 0),
  /// descending by score. `exclude` drops one id (typically the query's own
  /// sequence when it is part of the table).
  std::vector<BurstMatch> QueryByBurst(const std::vector<BurstRegion>& query_bursts,
                                       size_t k,
                                       ts::SeriesId exclude = ts::kInvalidSeriesId) const;

  /// Number of stored burst records.
  size_t size() const { return records_.size(); }

  /// Bytes of the record heap (the paper's "significantly less storage
  /// space" claim: 4 numbers per burst instead of the full sequence).
  size_t StorageBytes() const { return records_.size() * sizeof(BurstRecord); }

  /// Access to all records (diagnostics/tests).
  const std::vector<BurstRecord>& records() const { return records_; }

  /// Scan statistics of the last FindOverlapping/QueryByBurst call:
  /// records touched by the index scan before the endDate filter. Under
  /// concurrent queries this reports *some* recent call's count (each query
  /// stores atomically; interleavings do not corrupt the value).
  size_t last_scanned() const {
    return last_scanned_.load(std::memory_order_relaxed);
  }

  /// Structural self-check: every record has a valid series id and
  /// `start <= end` with a finite average; the start-date index and the
  /// record heap agree exactly (one entry per record, key == start, scan
  /// keys non-decreasing), including the B+-tree's own `Validate()`.
  /// Reports the exact violations as `Status::Corruption`.
  Status Validate() const;

 private:
  friend struct BurstTableTestPeer;  // Corruption injection in validator tests.

  // FindOverlapping core that reports the scan count to the caller instead
  // of the shared counter, keeping QueryByBurst accurate under concurrency.
  std::vector<BurstRecord> FindOverlappingCounted(const BurstRegion& query,
                                                  size_t* scanned) const;

  std::vector<BurstRecord> records_;
  // startDate -> record index. The B+-tree provides the ordered range scan
  // the SQL plan needs.
  storage::BPlusTree<int32_t, uint32_t> start_index_;
  mutable std::atomic<size_t> last_scanned_ = 0;
};

}  // namespace s2::burst

#endif  // S2_BURST_BURST_TABLE_H_
