// Reproduces paper Figures 20 and 21: tightness of the lower and upper
// Euclidean-distance bounds, measured as the cumulative distance over 100
// random pairwise computations from the query database, for memory budgets
// of 2*(8)+1, 2*(16)+1 and 2*(32)+1 doubles per sequence.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dsp/stats.h"
#include "querylog/corpus_generator.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2 {
namespace {

struct Pair {
  repr::HalfSpectrum query;
  repr::HalfSpectrum target;
  double truth;
};

std::vector<Pair> MakePairs(size_t count, size_t n_days, uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = 2 * count;
  spec.n_days = n_days;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  std::vector<Pair> pairs;
  if (!corpus.ok()) return pairs;
  const auto rows = bench::StandardizedRows(*corpus);
  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    auto qa = repr::HalfSpectrum::FromSeries(rows[i]);
    auto qb = repr::HalfSpectrum::FromSeries(rows[i + 1]);
    if (!qa.ok() || !qb.ok()) continue;
    const double truth = *dsp::Euclidean(rows[i], rows[i + 1]);
    pairs.push_back(Pair{std::move(qa).ValueOrDie(), std::move(qb).ValueOrDie(),
                         truth});
  }
  return pairs;
}

struct MethodSpec {
  repr::BoundMethod method;
  repr::ReprKind kind;
  const char* label;
};

constexpr double kNaN = std::nan("");

double CumulativeBound(const std::vector<Pair>& pairs, const MethodSpec& spec,
                       size_t c, bool lower) {
  double total = 0.0;
  for (const Pair& p : pairs) {
    auto compressed = repr::CompressedSpectrum::Compress(p.target, spec.kind, c);
    if (!compressed.ok()) return kNaN;
    auto bounds = repr::ComputeBounds(p.query, *compressed, spec.method);
    if (!bounds.ok()) return kNaN;
    total += lower ? bounds->lower : bounds->upper;
  }
  return total;
}

void Run(size_t num_pairs, size_t n_days, bench::Json* json_rows) {
  const std::vector<Pair> pairs = MakePairs(num_pairs, n_days, 2020);
  double truth = 0.0;
  for (const Pair& p : pairs) truth += p.truth;

  const MethodSpec methods[] = {
      {repr::BoundMethod::kGemini, repr::ReprKind::kFirstKMiddle, "GEMINI"},
      {repr::BoundMethod::kWang, repr::ReprKind::kFirstKError, "Wang"},
      {repr::BoundMethod::kBestError, repr::ReprKind::kBestKError, "BestError"},
      {repr::BoundMethod::kBestMin, repr::ReprKind::kBestKMiddle, "BestMin"},
      {repr::BoundMethod::kBestMinError, repr::ReprKind::kBestKError,
       "BestMinError"},
  };

  for (size_t c : {8u, 16u, 32u}) {
    std::printf("\n--- Memory = 2*(%zu)+1 doubles ---------------------------\n", c);
    std::printf("%-16s %14s %14s\n", "method", "cumulative LB", "cumulative UB");
    std::printf("%-16s %14.0f %14s   <- Full Euclidean\n", "(truth)", truth, "");
    double best_lb_first = 0.0;
    double best_lb_best = 0.0;
    double best_ub_first = 1e300;
    double best_ub_best = 1e300;
    for (const MethodSpec& method : methods) {
      const double lb = CumulativeBound(pairs, method, c, /*lower=*/true);
      const double ub = CumulativeBound(pairs, method, c, /*lower=*/false);
      const bool is_best_family = method.method != repr::BoundMethod::kGemini &&
                                  method.method != repr::BoundMethod::kWang;
      if (std::isfinite(ub)) {
        if (is_best_family) {
          best_ub_best = std::min(best_ub_best, ub);
        } else {
          best_ub_first = std::min(best_ub_first, ub);
        }
      }
      if (is_best_family) {
        best_lb_best = std::max(best_lb_best, lb);
      } else {
        best_lb_first = std::max(best_lb_first, lb);
      }
      if (std::isfinite(ub)) {
        std::printf("%-16s %14.0f %14.0f\n", method.label, lb, ub);
      } else {
        std::printf("%-16s %14.0f %14s\n", method.label, lb, "N/A");
      }
      bench::Json row = bench::Json::Object();
      row.Add("budget_c", static_cast<uint64_t>(c))
          .Add("method", method.label)
          .Add("cumulative_truth", truth)
          .Add("cumulative_lb", lb);
      if (std::isfinite(ub)) row.Add("cumulative_ub", ub);
      json_rows->Push(std::move(row));
    }
    std::printf("LB improvement of best-coefficient methods: %+.2f%%\n",
                100.0 * (best_lb_best - best_lb_first) / best_lb_first);
    std::printf("UB improvement of best-coefficient methods: %+.2f%%\n",
                100.0 * (best_ub_first - best_ub_best) / best_ub_first);
  }
}

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t pairs = bench::ArgSize(argc, argv, "--pairs", 100);
  const size_t n_days = bench::ArgSize(argc, argv, "--days", 1024);
  const std::string json_path =
      bench::ArgString(argc, argv, "--json", "BENCH_bounds.json");
  bench::PrintHeader(
      "Figures 20-21: tightness of lower/upper bounds (cumulative distance "
      "over " +
      std::to_string(pairs) + " random pairs, N = " + std::to_string(n_days) +
      ")");
  bench::Json json_rows = bench::Json::Array();
  Run(pairs, n_days, &json_rows);
  std::printf(
      "\nExpected shape (paper): LB ordering GEMINI < Wang < Best*, with "
      "BestMinError tightest (~6-10%% over Wang); UB ordering BestMinError < "
      "BestMin < Wang (~13-18%% improvement); UB_BestError loose at small "
      "budgets; all LB <= truth <= all UB.\n");
  bench::WriteJsonFile(json_path,
                       bench::Json::Object()
                           .Add("bench", "bench_bounds")
                           .Add("pairs", static_cast<uint64_t>(pairs))
                           .Add("days", static_cast<uint64_t>(n_days))
                           .Add("rows", std::move(json_rows)));
  return 0;
}
