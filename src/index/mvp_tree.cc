#include "index/mvp_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "common/rng.h"
#include "diag/validate.h"
#include "dsp/stats.h"
#include "repr/row_matrix.h"
#include "simd/simd.h"

namespace s2::index {

namespace {

double ExactDistance(const double* a, const double* b, size_t n) {
  return std::sqrt(dsp::SquaredEuclidean(a, b, n));
}

double ExactDistance(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  return ExactDistance(a.data(), b.data(), n);
}

}  // namespace

struct MvpTreeIndex::Builder {
  // Contiguous SoA copy of the input rows (see repr::RowMatrix).
  const repr::RowMatrix& rows;
  const Options& options;
  const std::vector<repr::HalfSpectrum>& spectra;
  std::vector<Node>* nodes;
  Rng rng;

  Builder(const repr::RowMatrix& r, const Options& o,
          const std::vector<repr::HalfSpectrum>& s, std::vector<Node>* n)
      : rows(r), options(o), spectra(s), nodes(n), rng(o.seed) {}

  Result<repr::CompressedSpectrum> CompressOf(ts::SeriesId id) {
    return repr::CompressedSpectrum::Compress(spectra[id], options.repr_kind,
                                              options.budget_c);
  }

  ts::SeriesId PickVantage(const std::vector<ts::SeriesId>& ids,
                           ts::SeriesId exclude) {
    const size_t n_cands = std::min(options.vantage_candidates, ids.size());
    const size_t n_probe = std::min(options.deviation_sample, ids.size());
    ts::SeriesId best_id = ids.front() == exclude && ids.size() > 1 ? ids[1]
                                                                    : ids.front();
    double best_dev = -1.0;
    for (size_t c = 0; c < n_cands; ++c) {
      const ts::SeriesId cand = ids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
      if (cand == exclude) continue;
      std::vector<double> dists;
      dists.reserve(n_probe);
      for (size_t p = 0; p < n_probe; ++p) {
        const ts::SeriesId other = ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
        if (other == cand) continue;
        dists.push_back(
            ExactDistance(rows.row(cand), rows.row(other), rows.row_length()));
      }
      const double dev = dsp::StdDev(dists);
      if (dev > best_dev) {
        best_dev = dev;
        best_id = cand;
      }
    }
    return best_id;
  }

  Result<int32_t> BuildNode(std::vector<ts::SeriesId> ids) {
    // Two vantage points plus four non-trivial children need a minimum
    // population; below that a leaf is both simpler and faster.
    if (ids.size() <= std::max<size_t>(options.leaf_size, 6)) {
      Node node;
      node.leaf = true;
      node.bucket.reserve(ids.size());
      for (ts::SeriesId id : ids) {
        S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum compressed, CompressOf(id));
        node.bucket.push_back({id, std::move(compressed)});
      }
      nodes->push_back(std::move(node));
      return static_cast<int32_t>(nodes->size() - 1);
    }

    const ts::SeriesId vp1 = PickVantage(ids, ts::kInvalidSeriesId);
    const ts::SeriesId vp2 = PickVantage(ids, vp1);

    struct DistEntry {
      ts::SeriesId id;
      double d1;
      double d2;
    };
    std::vector<DistEntry> entries;
    entries.reserve(ids.size());
    const double* vp1_row = rows.row(vp1);
    const double* vp2_row = rows.row(vp2);
    const size_t len = rows.row_length();
    for (size_t i = 0; i < ids.size(); ++i) {
      const ts::SeriesId id = ids[i];
      if (id == vp1 || id == vp2) continue;
      if (i + 1 < ids.size()) simd::PrefetchRead(rows.row(ids[i + 1]));
      entries.push_back({id, ExactDistance(vp1_row, rows.row(id), len),
                         ExactDistance(vp2_row, rows.row(id), len)});
    }

    // Split by the median distance to vp1...
    const size_t mid1 = entries.size() / 2;
    std::nth_element(entries.begin(), entries.begin() + static_cast<ptrdiff_t>(mid1),
                     entries.end(), [](const DistEntry& a, const DistEntry& b) {
                       return a.d1 < b.d1;
                     });
    const double mu1 = entries[mid1].d1;
    std::vector<DistEntry> half_left(entries.begin(),
                                     entries.begin() + static_cast<ptrdiff_t>(mid1));
    std::vector<DistEntry> half_right(entries.begin() + static_cast<ptrdiff_t>(mid1),
                                      entries.end());

    // ... then split each half by its own median distance to vp2.
    auto split_by_d2 = [](std::vector<DistEntry>* half, double* mu2,
                          std::vector<ts::SeriesId>* near_ids,
                          std::vector<ts::SeriesId>* far_ids) {
      if (half->empty()) {
        *mu2 = 0.0;
        return;
      }
      const size_t mid = half->size() / 2;
      std::nth_element(half->begin(), half->begin() + static_cast<ptrdiff_t>(mid),
                       half->end(), [](const DistEntry& a, const DistEntry& b) {
                         return a.d2 < b.d2;
                       });
      *mu2 = (*half)[mid].d2;
      for (size_t i = 0; i < half->size(); ++i) {
        (i < mid ? near_ids : far_ids)->push_back((*half)[i].id);
      }
    };

    double mu2_left = 0.0;
    double mu2_right = 0.0;
    std::vector<ts::SeriesId> child_ids[4];
    split_by_d2(&half_left, &mu2_left, &child_ids[0], &child_ids[1]);
    split_by_d2(&half_right, &mu2_right, &child_ids[2], &child_ids[3]);

    S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum c1, CompressOf(vp1));
    S2_ASSIGN_OR_RETURN(repr::CompressedSpectrum c2, CompressOf(vp2));

    nodes->push_back(Node{});
    const int32_t node_id = static_cast<int32_t>(nodes->size() - 1);

    int32_t children[4] = {-1, -1, -1, -1};
    for (int c = 0; c < 4; ++c) {
      if (!child_ids[c].empty()) {
        S2_ASSIGN_OR_RETURN(children[c], BuildNode(std::move(child_ids[c])));
      }
    }

    Node& node = (*nodes)[static_cast<size_t>(node_id)];
    node.leaf = false;
    node.vp1 = {vp1, std::move(c1)};
    node.vp2 = {vp2, std::move(c2)};
    node.has_vp2 = vp2 != vp1;
    node.mu1 = mu1;
    node.mu2_left = mu2_left;
    node.mu2_right = mu2_right;
    for (int c = 0; c < 4; ++c) node.children[c] = children[c];
    return node_id;
  }
};

Result<MvpTreeIndex> MvpTreeIndex::Build(const std::vector<std::vector<double>>& rows,
                                         const Options& options) {
  if (rows.empty()) return Status::InvalidArgument("MvpTreeIndex: empty input");
  const size_t length = rows.front().size();
  if (length == 0) return Status::InvalidArgument("MvpTreeIndex: empty sequences");
  for (const auto& row : rows) {
    if (row.size() != length) {
      return Status::InvalidArgument("MvpTreeIndex: ragged input rows");
    }
  }
  if (options.leaf_size == 0) {
    return Status::InvalidArgument("MvpTreeIndex: leaf_size must be > 0");
  }

  std::vector<repr::HalfSpectrum> spectra;
  spectra.reserve(rows.size());
  for (const auto& row : rows) {
    S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                        repr::HalfSpectrum::FromSeriesInBasis(row, options.basis));
    spectra.push_back(std::move(spectrum));
  }

  std::vector<Node> nodes;
  const repr::RowMatrix matrix = repr::RowMatrix::FromRows(rows);
  Builder builder(matrix, options, spectra, &nodes);
  std::vector<ts::SeriesId> ids(rows.size());
  std::iota(ids.begin(), ids.end(), 0u);
  S2_ASSIGN_OR_RETURN(int32_t root, builder.BuildNode(std::move(ids)));

  return MvpTreeIndex(options, std::move(nodes), root, rows.size(),
                      static_cast<uint32_t>(length));
}

void MvpTreeIndex::SearchNode(int32_t node_id, const repr::HalfSpectrum& query,
                              std::vector<Candidate>* candidates,
                              BestList* upper_bounds, SearchStats* stats) const {
  if (node_id < 0) return;
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  ++stats->nodes_visited;

  if (node.leaf) {
    for (const Entry& entry : node.bucket) {
      auto bounds = repr::ComputeBounds(query, entry.repr, options_.method);
      if (!bounds.ok()) continue;
      ++stats->bound_computations;
      candidates->push_back({entry.id, bounds->lower, bounds->upper});
      upper_bounds->Offer(entry.id, bounds->upper);
    }
    return;
  }

  auto b1 = repr::ComputeBounds(query, node.vp1.repr, options_.method);
  if (!b1.ok()) return;
  ++stats->bound_computations;
  candidates->push_back({node.vp1.id, b1->lower, b1->upper});
  upper_bounds->Offer(node.vp1.id, b1->upper);

  double lb2 = 0.0;
  double ub2 = std::numeric_limits<double>::infinity();
  if (node.has_vp2) {
    auto b2 = repr::ComputeBounds(query, node.vp2.repr, options_.method);
    if (b2.ok()) {
      ++stats->bound_computations;
      candidates->push_back({node.vp2.id, b2->lower, b2->upper});
      upper_bounds->Offer(node.vp2.id, b2->upper);
      lb2 = b2->lower;
      ub2 = b2->upper;
    }
  }

  // Minimum feasible distance for each child region, from the triangle
  // inequality through both vantage points:
  //   x in the vp1-near half  => D(Q,x) >= LB1 - mu1
  //   x in the vp1-far half   => D(Q,x) >= mu1 - UB1
  // and analogously for vp2 with the half's own median.
  auto min_feasible = [&](int child) {
    const bool near1 = child < 2;
    const bool near2 = (child & 1) == 0;
    const double mu2 = child < 2 ? node.mu2_left : node.mu2_right;
    double floor1 = near1 ? b1->lower - node.mu1 : node.mu1 - b1->upper;
    double floor2 = node.has_vp2 ? (near2 ? lb2 - mu2 : mu2 - ub2)
                                 : -std::numeric_limits<double>::infinity();
    return std::max({floor1, floor2, 0.0});
  };

  int order[4] = {0, 1, 2, 3};
  if (options_.guided_traversal) {
    std::sort(order, order + 4,
              [&](int a, int b) { return min_feasible(a) < min_feasible(b); });
  }
  for (int c : order) {
    if (node.children[c] < 0) continue;
    if (min_feasible(c) > upper_bounds->Threshold()) continue;
    SearchNode(node.children[c], query, candidates, upper_bounds, stats);
  }
}

Result<std::vector<MvpTreeIndex::Candidate>> MvpTreeIndex::CollectCandidates(
    const std::vector<double>& query, size_t k, SearchStats* stats) const {
  if (query.size() != series_length_) {
    return Status::InvalidArgument("MvpTreeIndex: query length mismatch");
  }
  if (k == 0) return Status::InvalidArgument("MvpTreeIndex: k must be > 0");
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                      repr::HalfSpectrum::FromSeriesInBasis(query, options_.basis));
  std::vector<Candidate> candidates;
  BestList upper_bounds(k);
  SearchNode(root_, spectrum, &candidates, &upper_bounds, stats);

  const double sub = upper_bounds.Threshold();
  std::erase_if(candidates, [sub](const Candidate& c) { return c.lower > sub; });
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.lower < b.lower; });
  stats->candidates_surviving = candidates.size();
  return candidates;
}

Result<std::vector<Neighbor>> MvpTreeIndex::Search(const std::vector<double>& query,
                                                   size_t k,
                                                   storage::SequenceSource* source,
                                                   SearchStats* stats) const {
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  if (source == nullptr) {
    return Status::InvalidArgument("MvpTreeIndex: source must not be null");
  }
  S2_ASSIGN_OR_RETURN(std::vector<Candidate> candidates,
                      CollectCandidates(query, k, stats));

  BestList best(k);
  for (const Candidate& candidate : candidates) {
    if (best.Full() && candidate.lower > best.Threshold()) break;
    S2_ASSIGN_OR_RETURN(std::vector<double> row, source->Get(candidate.id));
    ++stats->full_retrievals;
    const double threshold = best.Threshold();
    const double abandon_sq = std::isinf(threshold)
                                  ? std::numeric_limits<double>::infinity()
                                  : threshold * threshold;
    const double dist_sq = dsp::SquaredEuclideanEarlyAbandon(
        query.data(), row.data(), query.size(), abandon_sq);
    // Squared-domain gate; abandoned partials exceed abandon_sq by
    // construction, so only complete distances reach the list.
    if (dist_sq <= abandon_sq) {
      best.Offer(candidate.id, std::sqrt(dist_sq));
    }
  }
  return std::move(best).Take();
}

Status MvpTreeIndex::Validate(storage::SequenceSource* source) const {
  diag::Validator v("MvpTreeIndex");
  const int32_t limit = static_cast<int32_t>(nodes_.size());
  v.Check(root_ >= -1 && root_ < limit)
      << "root " << root_ << " out of range (have " << limit << " nodes)";
  if (!v.ok()) return v.ToStatus();

  std::vector<uint8_t> visited(nodes_.size(), 0);
  std::unordered_set<ts::SeriesId> seen_ids;
  size_t objects = 0;
  std::vector<int32_t> stack;
  if (root_ >= 0) stack.push_back(root_);
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    if (id < 0 || id >= limit) {
      v.AddViolation("child pointer " + std::to_string(id) + " out of range");
      continue;
    }
    if (visited[static_cast<size_t>(id)] != 0) {
      v.AddViolation("node " + std::to_string(id) +
                     " reachable twice (cycle or shared child)");
      continue;
    }
    visited[static_cast<size_t>(id)] = 1;
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.leaf) {
      for (int c = 0; c < 4; ++c) {
        v.Check(node.children[c] == -1) << "leaf node " << id << " has children";
      }
      for (const Entry& entry : node.bucket) {
        ++objects;
        v.Check(seen_ids.insert(entry.id).second)
            << "series " << entry.id << " indexed twice";
      }
    } else {
      v.Check(std::isfinite(node.mu1) && node.mu1 >= 0.0)
          << "internal node " << id << " has invalid vp1 radius " << node.mu1;
      v.Check(std::isfinite(node.mu2_left) && node.mu2_left >= 0.0 &&
              std::isfinite(node.mu2_right) && node.mu2_right >= 0.0)
          << "internal node " << id << " has invalid vp2 radii";
      v.Check(node.bucket.empty())
          << "internal node " << id << " carries a leaf bucket";
      ++objects;
      v.Check(seen_ids.insert(node.vp1.id).second)
          << "series " << node.vp1.id << " indexed twice";
      if (node.has_vp2) {
        ++objects;
        v.Check(seen_ids.insert(node.vp2.id).second)
            << "series " << node.vp2.id << " indexed twice";
      }
      for (int c = 0; c < 4; ++c) {
        if (node.children[c] != -1) stack.push_back(node.children[c]);
      }
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    v.Check(visited[i] != 0) << "node " << i << " unreachable from the root";
  }
  v.Check(objects == num_objects_)
      << "census finds " << objects << " objects, index claims " << num_objects_;

  // Two-vantage metric invariant with exact distances: child c holds the
  // population with d1 on the (c < 2 ? near : far) side of mu1 and d2 on the
  // (c even ? near : far) side of the matching mu2.
  if (source != nullptr && v.ok()) {
    constexpr double kSlack = 1e-9;
    for (int32_t id = 0; id < limit; ++id) {
      const Node& node = nodes_[static_cast<size_t>(id)];
      if (node.leaf) continue;
      S2_ASSIGN_OR_RETURN(std::vector<double> vp1_row, source->Get(node.vp1.id));
      std::vector<double> vp2_row;
      if (node.has_vp2) {
        S2_ASSIGN_OR_RETURN(vp2_row, source->Get(node.vp2.id));
      }
      for (int c = 0; c < 4; ++c) {
        if (node.children[c] == -1) continue;
        const bool near1 = c < 2;
        const bool near2 = (c % 2) == 0;
        const double mu2 = near1 ? node.mu2_left : node.mu2_right;
        std::vector<int32_t> sub{node.children[c]};
        while (!sub.empty()) {
          const int32_t cur = sub.back();
          sub.pop_back();
          const Node& n = nodes_[static_cast<size_t>(cur)];
          std::vector<ts::SeriesId> ids;
          if (n.leaf) {
            for (const Entry& entry : n.bucket) ids.push_back(entry.id);
          } else {
            ids.push_back(n.vp1.id);
            if (n.has_vp2) ids.push_back(n.vp2.id);
            for (int cc = 0; cc < 4; ++cc) {
              if (n.children[cc] != -1) sub.push_back(n.children[cc]);
            }
          }
          for (ts::SeriesId object : ids) {
            S2_ASSIGN_OR_RETURN(std::vector<double> row, source->Get(object));
            const double d1 = ExactDistance(vp1_row, row);
            v.Check(near1 ? d1 <= node.mu1 + kSlack : d1 >= node.mu1 - kSlack)
                << "series " << object << " in child " << c << " of node " << id
                << " violates the vp1 window (d1 " << d1 << ", mu1 "
                << node.mu1 << ")";
            if (node.has_vp2) {
              const double d2 = ExactDistance(vp2_row, row);
              v.Check(near2 ? d2 <= mu2 + kSlack : d2 >= mu2 - kSlack)
                  << "series " << object << " in child " << c << " of node "
                  << id << " violates the vp2 window (d2 " << d2 << ", mu2 "
                  << mu2 << ")";
            }
          }
          if (!v.ok()) return v.ToStatus();
        }
      }
    }
  }
  return v.ToStatus();
}

size_t MvpTreeIndex::CompressedBytes() const {
  size_t total = 0;
  for (const Node& node : nodes_) {
    if (node.leaf) {
      for (const Entry& entry : node.bucket) total += entry.repr.StorageBytes();
    } else {
      total += node.vp1.repr.StorageBytes();
      if (node.has_vp2) total += node.vp2.repr.StorageBytes();
      total += 3 * sizeof(double);
    }
  }
  return total;
}

}  // namespace s2::index
