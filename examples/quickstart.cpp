// Quickstart: build an S2 engine over a small synthetic query-log corpus,
// then run the three headline operations of the paper — similarity search,
// period discovery and burst detection / query-by-burst — for one query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "core/s2_engine.h"
#include "querylog/archetypes.h"
#include "querylog/corpus_generator.h"
#include "querylog/synthesizer.h"
#include "timeseries/calendar.h"

using namespace s2;

int main() {
  // 1. Assemble a corpus: a few named archetypes (the queries the paper
  //    discusses) plus 200 randomized background queries, 512 days each.
  Rng rng(1);
  ts::Corpus corpus;
  for (auto archetype : {qlog::MakeCinema(), qlog::MakeEaster(), qlog::MakeElvis(),
                         qlog::MakeFullMoon(), qlog::MakeNordstrom(),
                         qlog::MakeHalloween(), qlog::MakeChristmas()}) {
    auto series = qlog::Synthesize(archetype, 0, 512, &rng);
    if (series.ok()) corpus.Add(std::move(series).ValueOrDie());
  }
  qlog::CorpusSpec spec;
  spec.num_series = 200;
  spec.n_days = 512;
  auto filler = qlog::GenerateCorpus(spec);
  if (!filler.ok()) return 1;
  for (const auto& series : filler->series()) corpus.Add(series);

  // 2. Build the engine: standardization, best-coefficient compression,
  //    VP-tree index, periodogram analysis and burst tables, in one call.
  core::S2Engine::Options options;
  options.index.budget_c = 16;  // Memory of 2*16+1 doubles per sequence.
  auto engine = core::S2Engine::Build(std::move(corpus), options);
  if (!engine.ok()) {
    std::printf("build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 3. Similarity search: which queries have demand most like "cinema"?
  const ts::SeriesId cinema = *engine->FindByName("cinema");
  auto neighbors = engine->SimilarTo(cinema, 5);
  if (neighbors.ok()) {
    std::printf("queries similar to 'cinema':\n");
    for (const auto& n : *neighbors) {
      std::printf("  %-20s distance %.2f\n",
                  engine->corpus().at(n.id).name.c_str(), n.distance);
    }
  }

  // 4. Period discovery: the weekly habit shows up as P = 7 days.
  auto periods = engine->FindPeriods(cinema);
  if (periods.ok()) {
    std::printf("\nsignificant periods of 'cinema':\n");
    for (const auto& p : *periods) {
      std::printf("  period %.2f days (power %.2f)\n", p.period, p.power);
    }
  }

  // 5. Bursts and query-by-burst: what else bursts when "easter" does?
  const ts::SeriesId easter = *engine->FindByName("easter");
  auto bursts = engine->BurstsOf(easter, core::BurstHorizon::kLongTerm);
  if (bursts.ok()) {
    std::printf("\nbursts of 'easter':\n");
    for (const auto& b : *bursts) {
      std::printf("  [%s .. %s] avg height %.2f\n",
                  ts::FormatDayIndex(b.start).c_str(),
                  ts::FormatDayIndex(b.end).c_str(), b.avg_value);
    }
  }
  auto matches = engine->QueryByBurst(easter, 5, core::BurstHorizon::kLongTerm);
  if (matches.ok()) {
    std::printf("\nqueries bursting when 'easter' bursts:\n");
    for (const auto& m : *matches) {
      std::printf("  %-20s BSim %.3f\n",
                  engine->corpus().at(m.series_id).name.c_str(), m.bsim);
    }
  }
  return 0;
}
