# Empty dependencies file for half_spectrum_test.
# This may be replaced when dependencies are built.
