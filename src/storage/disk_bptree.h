#ifndef S2_STORAGE_DISK_BPTREE_H_
#define S2_STORAGE_DISK_BPTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "diag/validate.h"
#include "storage/pager.h"

namespace s2::storage {

/// A disk-resident B+-tree over the buffer pool of pager.h — the
/// database-grade counterpart of the in-memory `BPlusTree`, with the fixed
/// schema the burst store needs: `int64 key -> uint64 value`, multimap
/// semantics.
///
/// Layout: page 0 holds the tree metadata (magic, root, pair count); every
/// other page is a node. Leaves store (key, value) pairs and are forward
/// chained for range scans; internal nodes store separator keys and child
/// page ids. Nodes split when full. `Erase` removes pairs lazily (no
/// merge/borrow): structurally simpler, and the burst workload is
/// append-mostly — space is reclaimed by rebuilding, as in many production
/// LSM/B-tree hybrids.
///
/// Durability is flush-granular: `Flush` persists all dirty pages and (in
/// the default durable mode) publishes a complete generation of the file via
/// the pager's shadow-copy protocol, so a crash at any point leaves the last
/// flushed state loadable.
class DiskBPlusTree {
 public:
  struct Options {
    /// Filesystem to operate in; null means `io::Env::Default()`.
    io::Env* env = nullptr;
    /// Crash-safe shadow publishing (see Pager). On by default: the tree is
    /// a real store, not scratch.
    bool durable = true;
    /// Buffer-pool capacity; at least 8 frames are required (a root-to-leaf
    /// path plus split scratch must fit pinned).
    size_t pool_pages = 64;
  };

  /// Opens (or creates) a tree at `path`.
  static Result<std::unique_ptr<DiskBPlusTree>> Open(const std::string& path,
                                                     size_t pool_pages = 64);
  static Result<std::unique_ptr<DiskBPlusTree>> Open(const std::string& path,
                                                     Options options);

  DiskBPlusTree(const DiskBPlusTree&) = delete;
  DiskBPlusTree& operator=(const DiskBPlusTree&) = delete;

  /// Inserts one pair; duplicates are kept.
  Status Insert(int64_t key, uint64_t value);

  /// Removes one pair matching (key, value); returns whether one was found.
  Result<bool> Erase(int64_t key, uint64_t value);

  /// Visits all pairs with lo <= key <= hi in key order; the callback
  /// returns false to stop early.
  Status Scan(int64_t lo, int64_t hi,
              const std::function<bool(int64_t, uint64_t)>& fn);

  /// Visits every pair in key order.
  Status ScanAll(const std::function<bool(int64_t, uint64_t)>& fn);

  /// Number of stored pairs.
  uint64_t size() const { return size_; }

  /// Persists all dirty pages.
  Status Flush();

  /// The underlying pager (I/O statistics for benches/tests).
  Pager* pager() { return pager_.get(); }

  /// Structural self-check: node types and fill bounds, key sortedness,
  /// separator windows, reachability (no cycles, no shared children), pair
  /// count vs metadata, and the leaf forward chain against the in-order
  /// traversal. Reads the whole tree; reports the exact violations as
  /// `Status::Corruption` and I/O failures as their own codes.
  Status Validate();

  /// Boolean wrapper around `Validate()`: true when structurally sound,
  /// false on corruption, error status on I/O failure.
  Result<bool> CheckInvariants();

 private:
  explicit DiskBPlusTree(std::unique_ptr<Pager> pager) : pager_(std::move(pager)) {}

  struct SplitResult {
    bool happened = false;
    int64_t separator = 0;
    PageId right = kInvalidPageId;
  };

  Status InitializeNewFile();
  Status LoadMeta();
  Status StoreMeta();

  /// Pins a node page after verifying its header (valid page id, node type,
  /// fill bound, leaf-chain pointer range). Corrupt pages come back as
  /// `Status::Corruption` with the page id, never as out-of-bounds reads.
  Result<char*> FetchNode(PageId page_id);

  Result<SplitResult> InsertInto(PageId page_id, int64_t key, uint64_t value,
                                 size_t depth);
  Result<bool> EraseFrom(PageId page_id, int64_t key, uint64_t value,
                         size_t depth);
  Result<PageId> LeftmostLeaf();
  Result<PageId> DescendToLeaf(int64_t key);

  /// Validate() worker: checks one subtree against the separator window
  /// [lo, hi], accumulating violations. Operates on unpinned page copies so
  /// arbitrarily deep (even corrupt, cyclic) trees cannot exhaust the pool.
  Status ValidateNode(PageId page_id, const int64_t* lo, const int64_t* hi,
                      uint64_t* pair_count, std::vector<PageId>* leaves,
                      std::vector<uint8_t>* visited, size_t depth,
                      diag::Validator* validator);

  std::unique_ptr<Pager> pager_;
  PageId root_ = kInvalidPageId;
  uint64_t size_ = 0;
};

}  // namespace s2::storage

#endif  // S2_STORAGE_DISK_BPTREE_H_
