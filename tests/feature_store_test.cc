#include "repr/feature_store.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "querylog/corpus_generator.h"
#include "repr/bounds.h"

namespace s2::repr {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<CompressedSpectrum> MakeFeatures(ReprKind kind, size_t c,
                                             size_t count) {
  qlog::CorpusSpec spec;
  spec.num_series = count;
  spec.n_days = 256;
  spec.seed = 77;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  std::vector<CompressedSpectrum> features;
  for (const auto& series : corpus->series()) {
    auto spectrum = HalfSpectrum::FromSeries(dsp::Standardize(series.values));
    EXPECT_TRUE(spectrum.ok());
    auto compressed = CompressedSpectrum::Compress(*spectrum, kind, c);
    EXPECT_TRUE(compressed.ok());
    features.push_back(std::move(compressed).ValueOrDie());
  }
  return features;
}

void ExpectEqualFeature(const CompressedSpectrum& a, const CompressedSpectrum& b) {
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.n(), b.n());
  EXPECT_EQ(a.positions(), b.positions());
  ASSERT_EQ(a.coeffs().size(), b.coeffs().size());
  for (size_t i = 0; i < a.coeffs().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.coeffs()[i].real(), b.coeffs()[i].real());
    EXPECT_DOUBLE_EQ(a.coeffs()[i].imag(), b.coeffs()[i].imag());
  }
  if (std::isnan(a.error())) {
    EXPECT_TRUE(std::isnan(b.error()));
  } else {
    EXPECT_DOUBLE_EQ(a.error(), b.error());
  }
  if (std::isinf(a.min_power())) {
    EXPECT_TRUE(std::isinf(b.min_power()));
  } else {
    EXPECT_DOUBLE_EQ(a.min_power(), b.min_power());
  }
}

TEST(FeatureStoreTest, RoundTripAllKinds) {
  for (ReprKind kind : {ReprKind::kFirstKMiddle, ReprKind::kFirstKError,
                        ReprKind::kBestKMiddle, ReprKind::kBestKError}) {
    const auto features = MakeFeatures(kind, 8, 12);
    const std::string path = TempPath("s2_features_roundtrip.bin");
    ASSERT_TRUE(WriteFeatures(path, features).ok());
    auto loaded = ReadFeatures(path);
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->size(), features.size());
    for (size_t i = 0; i < features.size(); ++i) {
      ExpectEqualFeature(features[i], (*loaded)[i]);
    }
    std::remove(path.c_str());
  }
}

TEST(FeatureStoreTest, ReloadedFeaturesGiveIdenticalBounds) {
  const auto features = MakeFeatures(ReprKind::kBestKError, 16, 10);
  const std::string path = TempPath("s2_features_bounds.bin");
  ASSERT_TRUE(WriteFeatures(path, features).ok());
  auto loaded = ReadFeatures(path);
  ASSERT_TRUE(loaded.ok());

  qlog::CorpusSpec spec;
  spec.num_series = 1;
  spec.n_days = 256;
  spec.seed = 99;
  auto queries = qlog::GenerateQueries(spec, 3);
  ASSERT_TRUE(queries.ok());
  for (const auto& query : *queries) {
    auto spectrum = HalfSpectrum::FromSeries(dsp::Standardize(query.values));
    ASSERT_TRUE(spectrum.ok());
    for (size_t i = 0; i < features.size(); ++i) {
      auto a = ComputeBounds(*spectrum, features[i], BoundMethod::kBestMinError);
      auto b = ComputeBounds(*spectrum, (*loaded)[i], BoundMethod::kBestMinError);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_DOUBLE_EQ(a->lower, b->lower);
      EXPECT_DOUBLE_EQ(a->upper, b->upper);
    }
  }
  std::remove(path.c_str());
}

TEST(FeatureStoreTest, EmptySetRoundTrips) {
  const std::string path = TempPath("s2_features_empty.bin");
  ASSERT_TRUE(WriteFeatures(path, {}).ok());
  auto loaded = ReadFeatures(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(FeatureStoreTest, CorruptFilesRejected) {
  EXPECT_EQ(ReadFeatures("/no/such/file.bin").status().code(),
            StatusCode::kNotFound);
  const std::string path = TempPath("s2_features_corrupt.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("WRONGMAG", 1, 8, f);
  std::fclose(f);
  EXPECT_EQ(ReadFeatures(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(FeatureStoreTest, TruncationDetected) {
  const auto features = MakeFeatures(ReprKind::kBestKError, 8, 6);
  const std::string path = TempPath("s2_features_trunc.bin");
  ASSERT_TRUE(WriteFeatures(path, features).ok());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 10);
  EXPECT_EQ(ReadFeatures(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(FromPartsTest, Validation) {
  std::vector<uint32_t> positions = {1, 3, 5};
  std::vector<Complex> coeffs = {{1, 0}, {0, 1}, {1, 1}};
  EXPECT_TRUE(CompressedSpectrum::FromParts(ReprKind::kBestKError, 64, positions,
                                            coeffs, 1.0, 0.5)
                  .ok());
  // Size mismatch.
  EXPECT_FALSE(CompressedSpectrum::FromParts(ReprKind::kBestKError, 64, {1, 2},
                                             coeffs, 1.0, 0.5)
                   .ok());
  // Out of range (bins = 33 for n=64).
  EXPECT_FALSE(CompressedSpectrum::FromParts(ReprKind::kBestKError, 64, {1, 3, 40},
                                             coeffs, 1.0, 0.5)
                   .ok());
  // Not ascending.
  EXPECT_FALSE(CompressedSpectrum::FromParts(ReprKind::kBestKError, 64, {5, 3, 1},
                                             coeffs, 1.0, 0.5)
                   .ok());
  // Negative error.
  EXPECT_FALSE(CompressedSpectrum::FromParts(ReprKind::kBestKError, 64, positions,
                                             coeffs, -1.0, 0.5)
                   .ok());
  // Empty.
  EXPECT_FALSE(
      CompressedSpectrum::FromParts(ReprKind::kBestKError, 64, {}, {}, 1.0, 0.5)
          .ok());
}

}  // namespace
}  // namespace s2::repr
