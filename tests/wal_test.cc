#include "stream/wal.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/env.h"
#include "io/fault_env.h"
#include "io/mem_env.h"

namespace s2::stream {
namespace {

constexpr uint64_t kHeaderBytes = 8;
constexpr uint64_t kRecordBytes = 20;

/// Collects replayed records into a vector, never failing.
std::function<Status(const WalRecord&)> CollectInto(std::vector<WalRecord>* out) {
  return [out](const WalRecord& record) {
    out->push_back(record);
    return Status::OK();
  };
}

TEST(WalTest, EmptyLogOpensAndReplaysNothing) {
  io::MemEnv env;
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(replayed.empty());
  EXPECT_EQ(info.records, 0u);
  EXPECT_EQ(info.dropped_bytes, 0u);
  EXPECT_EQ((*wal)->record_count(), 0u);
  EXPECT_EQ((*wal)->tail_offset(), kHeaderBytes);
}

TEST(WalTest, RoundTripReplaysEveryRecordInOrder) {
  io::MemEnv env;
  {
    std::vector<WalRecord> none;
    auto wal = Wal::Open(&env, "log", CollectInto(&none));
    ASSERT_TRUE(wal.ok());
    for (uint32_t i = 0; i < 16; ++i) {
      ASSERT_TRUE((*wal)->Append({i, 0.5 * i}).ok());
    }
    EXPECT_EQ((*wal)->record_count(), 16u);
  }
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(replayed.size(), 16u);
  EXPECT_EQ(info.records, 16u);
  EXPECT_EQ(info.dropped_bytes, 0u);
  for (uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(replayed[i].series_id, i);
    EXPECT_DOUBLE_EQ(replayed[i].value, 0.5 * i);
  }
  // The reopened handle continues where the log left off.
  ASSERT_TRUE((*wal)->Append({99, -1.0}).ok());
  EXPECT_EQ((*wal)->record_count(), 17u);
}

TEST(WalTest, BadMagicIsCorruption) {
  io::MemEnv env;
  {
    auto file = env.Open("log", io::OpenMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(io::WriteExact(file->get(), "NOTAWAL!", 8).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  std::vector<WalRecord> replayed;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed));
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, TornTailIsDroppedAndOverwritten) {
  io::MemEnv env;
  {
    std::vector<WalRecord> none;
    auto wal = Wal::Open(&env, "log", CollectInto(&none));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append({1, 1.0}).ok());
    ASSERT_TRUE((*wal)->Append({2, 2.0}).ok());
  }
  // Tear the second record: flip one checksum byte in place.
  {
    auto file = env.Open("log", io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    const uint64_t checksum_off = kHeaderBytes + kRecordBytes + 12;
    char byte = 0;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, checksum_off).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, checksum_off).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].series_id, 1u);
  EXPECT_EQ(info.dropped_bytes, kRecordBytes);
  EXPECT_EQ((*wal)->tail_offset(), kHeaderBytes + kRecordBytes);

  // The next append overwrites the torn bytes in place; a fresh open then
  // sees both intact records and no garbage.
  ASSERT_TRUE((*wal)->Append({3, 3.0}).ok());
  std::vector<WalRecord> again;
  Wal::ReplayInfo info2;
  auto reopened = Wal::Open(&env, "log", CollectInto(&again), &info2);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0].series_id, 1u);
  EXPECT_EQ(again[1].series_id, 3u);
  EXPECT_EQ(info2.dropped_bytes, 0u);
}

TEST(WalTest, ChainedChecksumRejectsStaleTailOfALongerLog) {
  io::MemEnv env;
  {
    std::vector<WalRecord> none;
    auto wal = Wal::Open(&env, "log", CollectInto(&none));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append({1, 1.0}).ok());
    ASSERT_TRUE((*wal)->Append({2, 2.0}).ok());
    ASSERT_TRUE((*wal)->Append({3, 3.0}).ok());
  }
  // Simulate a crash that tore record 2: corrupt its checksum, reopen (which
  // logically discards records 2 and 3), and append a replacement record
  // over record 2's slot. Record 3's bytes remain beyond the new tail,
  // fully intact *as a record of the old log*.
  {
    auto file = env.Open("log", io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    const uint64_t checksum_off = kHeaderBytes + kRecordBytes + 12;
    char byte = 0;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, checksum_off).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, checksum_off).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  {
    std::vector<WalRecord> replayed;
    auto wal = Wal::Open(&env, "log", CollectInto(&replayed));
    ASSERT_TRUE(wal.ok());
    ASSERT_EQ(replayed.size(), 1u);
    ASSERT_TRUE((*wal)->Append({7, 7.0}).ok());
  }
  // Replay must stop after the replacement: the stale record 3 carries a
  // checksum chained on the *old* record 2, so the chain breaks even though
  // the record's own payload+checksum were once valid. A per-record (un-
  // chained) checksum would resurrect the discarded append here.
  std::vector<WalRecord> replayed;
  Wal::ReplayInfo info;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed), &info);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].series_id, 1u);
  EXPECT_EQ(replayed[1].series_id, 7u);
  EXPECT_EQ(info.dropped_bytes, kRecordBytes);
}

TEST(WalTest, FailedAppendLeavesStateUnchangedAndIsRetryable) {
  io::MemEnv base;
  io::FaultPlan plan;
  plan.fail_write_at = 3;  // Header write, header sync... record 1 write ok;
                           // trip the *second* record's write.
  io::FaultInjectingEnv env(&base, plan);
  std::vector<WalRecord> none;
  auto wal = Wal::Open(&env, "log", CollectInto(&none));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append({1, 1.0}).ok());
  const Status failed = (*wal)->Append({2, 2.0});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ((*wal)->record_count(), 1u);
  EXPECT_EQ((*wal)->tail_offset(), kHeaderBytes + kRecordBytes);
  // Retry verbatim: the one-shot fault has passed, the log accepts it.
  ASSERT_TRUE((*wal)->Append({2, 2.0}).ok());
  EXPECT_EQ((*wal)->record_count(), 2u);

  std::vector<WalRecord> replayed;
  auto reopened = Wal::Open(&env, "log", CollectInto(&replayed));
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[1].series_id, 2u);
}

TEST(WalTest, FailedSyncIsAlsoRetryable) {
  io::MemEnv base;
  io::FaultPlan plan;
  plan.fail_sync_at = 2;  // Header sync is 1; record 1's sync trips.
  io::FaultInjectingEnv env(&base, plan);
  std::vector<WalRecord> none;
  auto wal = Wal::Open(&env, "log", CollectInto(&none));
  ASSERT_TRUE(wal.ok());
  const Status failed = (*wal)->Append({1, 1.0});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ((*wal)->record_count(), 0u);
  ASSERT_TRUE((*wal)->Append({1, 1.0}).ok());
  EXPECT_EQ((*wal)->record_count(), 1u);
}

TEST(WalTest, CrashDropsOnlyTheUnsyncedGroup) {
  io::MemEnv env;
  Wal::Options options;
  options.sync_every = 4;
  {
    std::vector<WalRecord> none;
    auto wal = Wal::Open(&env, "log", CollectInto(&none), nullptr, options);
    ASSERT_TRUE(wal.ok());
    // Records 1-4 complete a group (synced); 5 and 6 stay in the open group.
    for (uint32_t i = 1; i <= 6; ++i) {
      ASSERT_TRUE((*wal)->Append({i, 1.0 * i}).ok());
    }
    ASSERT_TRUE(env.DropUnsynced().ok());  // Crash.
  }
  std::vector<WalRecord> replayed;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed));
  ASSERT_TRUE(wal.ok());
  // Exactly the acknowledged (synced) prefix survives.
  ASSERT_EQ(replayed.size(), 4u);
  EXPECT_EQ(replayed.back().series_id, 4u);
}

TEST(WalTest, ExplicitSyncAcknowledgesTheOpenGroup) {
  io::MemEnv env;
  Wal::Options options;
  options.sync_every = 8;
  {
    std::vector<WalRecord> none;
    auto wal = Wal::Open(&env, "log", CollectInto(&none), nullptr, options);
    ASSERT_TRUE(wal.ok());
    for (uint32_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*wal)->Append({i, 1.0 * i}).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
    ASSERT_TRUE(env.DropUnsynced().ok());  // Crash after the explicit sync.
  }
  std::vector<WalRecord> replayed;
  auto wal = Wal::Open(&env, "log", CollectInto(&replayed));
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(replayed.size(), 3u);
}

TEST(WalTest, FailingApplyAbortsOpen) {
  io::MemEnv env;
  {
    std::vector<WalRecord> none;
    auto wal = Wal::Open(&env, "log", CollectInto(&none));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append({1, 1.0}).ok());
  }
  auto wal = Wal::Open(&env, "log", [](const WalRecord&) {
    return Status::InvalidArgument("reject");
  });
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace s2::stream
