// Ablation (beyond the paper's own tables): fidelity and soundness of the
// BestMinError variants.
//
//  1. The paper's Figure 9 pseudocode taken literally
//     (kBestMinErrorLiteral) vs our provably sound reformulation
//     (kBestMinError): how often and by how much does the literal version
//     violate the true distance on realistic data?
//  2. The water-filling upper bound extension (kBestMinErrorWaterfill): how
//     much tighter is the exactly-tight UB than the paper-level one?

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "dsp/stats.h"
#include "querylog/corpus_generator.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"

namespace s2 {
namespace {

struct Pair {
  repr::HalfSpectrum query;
  repr::CompressedSpectrum target;
  double truth;
};

std::vector<Pair> MakePairs(size_t count, size_t n_days, size_t c, uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = 2 * count;
  spec.n_days = n_days;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  std::vector<Pair> pairs;
  if (!corpus.ok()) return pairs;
  const auto rows = bench::StandardizedRows(*corpus);
  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    auto qs = repr::HalfSpectrum::FromSeries(rows[i]);
    auto ts_spec = repr::HalfSpectrum::FromSeries(rows[i + 1]);
    if (!qs.ok() || !ts_spec.ok()) continue;
    auto compressed = repr::CompressedSpectrum::Compress(
        *ts_spec, repr::ReprKind::kBestKError, c);
    if (!compressed.ok()) continue;
    pairs.push_back(Pair{std::move(qs).ValueOrDie(),
                         std::move(compressed).ValueOrDie(),
                         *dsp::Euclidean(rows[i], rows[i + 1])});
  }
  return pairs;
}

}  // namespace
}  // namespace s2

int main(int argc, char** argv) {
  using namespace s2;
  const size_t count = bench::ArgSize(argc, argv, "--pairs", 2000);
  bench::PrintHeader(
      "Ablation A: literal Figure-9 pseudocode vs sound BestMinError (" +
      std::to_string(count) + " pairs)");

  for (size_t c : {8u, 16u, 32u}) {
    const auto pairs = MakePairs(count, 1024, c, 31 + c);
    size_t lb_violations = 0;
    size_t ub_violations = 0;
    double worst_lb_violation = 0.0;
    double worst_ub_violation = 0.0;
    double literal_lb_sum = 0.0;
    double sound_lb_sum = 0.0;
    double truth_sum = 0.0;
    for (const Pair& p : pairs) {
      auto literal =
          repr::ComputeBounds(p.query, p.target,
                              repr::BoundMethod::kBestMinErrorLiteral);
      auto sound =
          repr::ComputeBounds(p.query, p.target, repr::BoundMethod::kBestMinError);
      if (!literal.ok() || !sound.ok()) continue;
      truth_sum += p.truth;
      literal_lb_sum += literal->lower;
      sound_lb_sum += sound->lower;
      if (literal->lower > p.truth + 1e-9) {
        ++lb_violations;
        worst_lb_violation = std::max(worst_lb_violation, literal->lower - p.truth);
      }
      if (literal->upper < p.truth - 1e-9) {
        ++ub_violations;
        worst_ub_violation = std::max(worst_ub_violation, p.truth - literal->upper);
      }
    }
    std::printf(
        "c=%2zu  literal LB violations: %zu/%zu (worst %.4f)   UB violations: "
        "%zu/%zu (worst %.4f)\n",
        c, lb_violations, pairs.size(), worst_lb_violation, ub_violations,
        pairs.size(), worst_ub_violation);
    std::printf(
        "      cumulative LB: literal %.0f vs sound %.0f (truth %.0f)\n",
        literal_lb_sum, sound_lb_sum, truth_sum);
  }

  bench::PrintHeader("Ablation B: water-filling upper bound tightness");
  for (size_t c : {8u, 16u, 32u}) {
    const auto pairs = MakePairs(count / 4, 1024, c, 77 + c);
    double ub_standard = 0.0;
    double ub_waterfill = 0.0;
    double truth = 0.0;
    for (const Pair& p : pairs) {
      auto standard =
          repr::ComputeBounds(p.query, p.target, repr::BoundMethod::kBestMinError);
      auto waterfill = repr::ComputeBounds(
          p.query, p.target, repr::BoundMethod::kBestMinErrorWaterfill);
      if (!standard.ok() || !waterfill.ok()) continue;
      ub_standard += standard->upper;
      ub_waterfill += waterfill->upper;
      truth += p.truth;
    }
    std::printf(
        "c=%2zu  cumulative UB: BestMinError %.0f, Waterfill %.0f (truth %.0f) "
        "-> %.2f%% tighter\n",
        c, ub_standard, ub_waterfill, truth,
        100.0 * (ub_standard - ub_waterfill) / (ub_standard - truth + 1e-12));
  }

  std::printf(
      "\nReading: the literal pseudocode's violations are rare on realistic "
      "standardized query data (its corner cases need adversarial energy "
      "splits), which explains why the paper's experiments did not surface "
      "them; our sound variant keeps the tightness without the risk. The "
      "waterfill UB is the tightest upper bound achievable from the stored "
      "information.\n");
  return 0;
}
