file(REMOVE_RECURSE
  "CMakeFiles/s2_core.dir/s2_engine.cc.o"
  "CMakeFiles/s2_core.dir/s2_engine.cc.o.d"
  "libs2_core.a"
  "libs2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
