// Recall/precision harness for the approximate-first tier (DESIGN.md §13):
//
//  * measured recall against exact ground truth meets the requested target
//    across seeds and backends;
//  * `max_candidates >= population` degenerates to the exact indexed answer
//    bit-for-bit, with `guaranteed_exact` set;
//  * the tier is *shard-count invisible*: ApproxKnn through a ShardedEngine
//    returns bit-identical neighbors and an identical QualityBound for every
//    shard count — the global summary config is trained before partitioning
//    and candidate ranks merge by (lb_sq, id);
//  * disk-backed engines give the same answers as RAM engines (the tier
//    reads only RAM-resident state).

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "approx/summary.h"
#include "core/s2_engine.h"
#include "querylog/corpus_generator.h"
#include "shard/sharded_engine.h"

namespace s2::approx {
namespace {

constexpr size_t kNumSeries = 400;
constexpr size_t kDays = 128;
constexpr size_t kK = 10;
constexpr size_t kQueriesPerSeed = 20;
const uint64_t kSeeds[] = {11, 47, 2026};
const size_t kShardCounts[] = {1, 2, 8};

ts::Corpus MakeCorpus(uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = kNumSeries;
  spec.n_days = kDays;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return std::move(corpus).ValueOrDie();
}

core::S2Engine::Options EngineOptions() {
  core::S2Engine::Options options;
  options.index.budget_c = 8;
  options.index.leaf_size = 4;
  return options;
}

core::S2Engine MakeEngine(uint64_t seed) {
  auto engine = core::S2Engine::Build(MakeCorpus(seed), EngineOptions());
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

double RecallAgainstTruth(const std::vector<index::Neighbor>& truth,
                          const std::vector<index::Neighbor>& got) {
  size_t hits = 0;
  for (const auto& t : truth) {
    for (const auto& g : got) {
      if (g.id == t.id) {
        ++hits;
        break;
      }
    }
  }
  return truth.empty() ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(truth.size());
}

void ExpectSameAnswer(const core::S2Engine::ApproxAnswer& a,
                      const core::S2Engine::ApproxAnswer& b) {
  ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
  for (size_t i = 0; i < a.neighbors.size(); ++i) {
    EXPECT_EQ(a.neighbors[i].id, b.neighbors[i].id) << "rank " << i;
    EXPECT_EQ(a.neighbors[i].distance, b.neighbors[i].distance) << "rank " << i;
  }
  EXPECT_EQ(a.bound.guaranteed_exact, b.bound.guaranteed_exact);
  EXPECT_EQ(a.bound.epsilon, b.bound.epsilon);
  EXPECT_EQ(a.bound.threshold_lb, b.bound.threshold_lb);
  EXPECT_EQ(a.bound.candidates, b.bound.candidates);
  EXPECT_EQ(a.bound.population, b.bound.population);
}

TEST(ApproxRecallTest, MeasuredRecallMeetsTargetAcrossSeeds) {
  for (uint64_t seed : kSeeds) {
    core::S2Engine engine = MakeEngine(seed);
    QueryParams params;
    params.k = kK;
    params.recall_target = 0.95;
    double recall_sum = 0.0;
    for (size_t q = 0; q < kQueriesPerSeed; ++q) {
      const auto id = static_cast<ts::SeriesId>(q * 17 % kNumSeries);
      auto truth = engine.SimilarTo(id, kK);
      ASSERT_TRUE(truth.ok());
      ScanStats stats;
      auto answer = engine.ApproxKnn(id, params, &stats);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      ASSERT_EQ(answer->neighbors.size(), kK);
      // The scan walked the whole population and kept exactly the resolved
      // candidate budget.
      EXPECT_EQ(stats.rows_scanned, kNumSeries - 1);
      EXPECT_EQ(stats.candidates, answer->bound.candidates);
      EXPECT_EQ(answer->bound.population, kNumSeries - 1);
      // The bound is self-consistent: exact answers report epsilon 0; an
      // inexact answer's k-th distance is within (1 + eps) of threshold_lb.
      if (answer->bound.guaranteed_exact) {
        EXPECT_EQ(answer->bound.epsilon, 0.0);
        EXPECT_EQ(RecallAgainstTruth(*truth, answer->neighbors), 1.0);
      } else {
        EXPECT_GE(answer->bound.epsilon, 0.0);
      }
      recall_sum += RecallAgainstTruth(*truth, answer->neighbors);
    }
    const double mean_recall =
        recall_sum / static_cast<double>(kQueriesPerSeed);
    EXPECT_GE(mean_recall, 0.95) << "seed " << seed;
  }
}

TEST(ApproxRecallTest, FullCandidateBudgetIsBitIdenticalToExact) {
  for (uint64_t seed : kSeeds) {
    core::S2Engine engine = MakeEngine(seed);
    QueryParams params;
    params.k = kK;
    params.max_candidates = kNumSeries;  // >= population: degenerate case.
    for (ts::SeriesId id : {0u, 33u, 256u}) {
      auto exact = engine.SimilarTo(id, kK);
      ASSERT_TRUE(exact.ok());
      auto answer = engine.ApproxKnn(id, params);
      ASSERT_TRUE(answer.ok());
      EXPECT_TRUE(answer->bound.guaranteed_exact);
      EXPECT_EQ(answer->bound.epsilon, 0.0);
      ASSERT_EQ(answer->neighbors.size(), exact->size());
      for (size_t i = 0; i < exact->size(); ++i) {
        EXPECT_EQ(answer->neighbors[i].id, (*exact)[i].id) << "rank " << i;
        EXPECT_EQ(answer->neighbors[i].distance, (*exact)[i].distance)
            << "rank " << i;
      }
    }
  }
}

TEST(ApproxRecallTest, ShardCountInvisible) {
  // Same corpus, shard counts {1, 2, 8}: bit-identical neighbors AND an
  // identical QualityBound versus the single engine, for every knob shape.
  for (uint64_t seed : kSeeds) {
    core::S2Engine single = MakeEngine(seed);
    std::vector<QueryParams> shapes(3);
    shapes[0].k = kK;  // Default budget.
    shapes[1].k = kK;
    shapes[1].recall_target = 0.97;
    shapes[2].k = kK;
    shapes[2].max_candidates = 32;
    for (size_t num_shards : kShardCounts) {
      shard::ShardedEngine::Options options;
      options.num_shards = num_shards;
      options.engine = EngineOptions();
      auto sharded = shard::ShardedEngine::Build(MakeCorpus(seed), options);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      for (const auto& params : shapes) {
        for (ts::SeriesId id : {3u, 77u, 390u}) {
          auto a = single.ApproxKnn(id, params);
          shard::ShardedEngine::QueryStats qstats;
          ScanStats sstats;
          auto b = sharded->ApproxKnn(id, params, &qstats, &sstats);
          ASSERT_TRUE(a.ok()) << a.status().ToString();
          ASSERT_TRUE(b.ok()) << b.status().ToString();
          ExpectSameAnswer(*a, *b);
          EXPECT_EQ(sstats.rows_scanned, kNumSeries - 1);
        }
      }
    }
  }
}

TEST(ApproxRecallTest, DiskBackendMatchesRam) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "s2_approx_disk.bin").string();
  ts::Corpus corpus = MakeCorpus(kSeeds[0]);

  auto ram = core::S2Engine::Build(corpus, EngineOptions());
  ASSERT_TRUE(ram.ok());
  core::S2Engine::Options disk_options = EngineOptions();
  disk_options.disk_store_path = path;
  auto disk = core::S2Engine::Build(corpus, disk_options);
  ASSERT_TRUE(disk.ok());

  QueryParams params;
  params.k = kK;
  params.recall_target = 0.95;
  for (ts::SeriesId id : {0u, 19u, 301u}) {
    auto a = ram->ApproxKnn(id, params);
    auto b = disk->ApproxKnn(id, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ExpectSameAnswer(*a, *b);
  }
  std::remove(path.c_str());
}

TEST(ApproxRecallTest, RebuildFromSameCorpusIsDeterministic) {
  // Checkpoint-recovery determinism: two engines built from the same corpus
  // train identical summary configs (equal fingerprints) and answer
  // identically — recovery rebuilds the summary from the restored corpus.
  core::S2Engine a = MakeEngine(kSeeds[1]);
  core::S2Engine b = MakeEngine(kSeeds[1]);
  ASSERT_NE(a.summary(), nullptr);
  ASSERT_NE(b.summary(), nullptr);
  EXPECT_EQ(a.summary()->config().Fingerprint(),
            b.summary()->config().Fingerprint());
  QueryParams params;
  params.k = kK;
  auto ra = a.ApproxKnn(7, params);
  auto rb = b.ApproxKnn(7, params);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ExpectSameAnswer(*ra, *rb);
}

TEST(ApproxRecallTest, DisabledTierReportsInvalidArgument) {
  core::S2Engine::Options options = EngineOptions();
  options.approx.enabled = false;
  auto engine = core::S2Engine::Build(MakeCorpus(kSeeds[0]), options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->summary(), nullptr);
  QueryParams params;
  auto answer = engine->ApproxKnn(0, params);
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApproxRecallTest, AddSeriesKeepsSummaryInSync) {
  core::S2Engine engine = MakeEngine(kSeeds[2]);
  ts::TimeSeries newcomer{"newcomer", 0,
                          engine.corpus().at(0).values};  // A near-twin of 0.
  auto id = engine.AddSeries(newcomer);
  ASSERT_TRUE(id.ok());
  ASSERT_NE(engine.summary(), nullptr);
  EXPECT_EQ(engine.summary()->size(), engine.corpus().size());
  // The twin must surface as series 0's nearest approximate neighbor.
  QueryParams params;
  params.k = 1;
  auto answer = engine.ApproxKnn(0, params);
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->neighbors.size(), 1u);
  EXPECT_EQ(answer->neighbors[0].id, *id);
  EXPECT_NEAR(answer->neighbors[0].distance, 0.0, 1e-6);
}

}  // namespace
}  // namespace s2::approx
