#include "storage/disk_bptree.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace s2::storage {

namespace {

// Upper bound on the depth of any legitimate tree: fanout >= 2 and page ids
// are 32-bit, so 64 levels can never be reached. Exceeding it means a child
// pointer loops back into the tree.
constexpr size_t kMaxDepth = 64;

// --- Meta page (page 0) ---------------------------------------------------
constexpr char kMagic[8] = {'S', '2', 'B', 'P', 'T', 'R', '0', '1'};
constexpr size_t kMetaMagicOffset = 0;
constexpr size_t kMetaRootOffset = 8;
constexpr size_t kMetaSizeOffset = 12;

// --- Node pages -------------------------------------------------------------
// header: u8 type | u8 pad | u16 count | PageId next
constexpr uint8_t kLeafType = 1;
constexpr uint8_t kInternalType = 2;
constexpr size_t kTypeOffset = 0;
constexpr size_t kCountOffset = 2;
constexpr size_t kNextOffset = 4;
constexpr size_t kPayloadOffset = 8;

// Leaf payload: (i64 key, u64 value) pairs.
constexpr size_t kLeafEntryBytes = 16;
constexpr size_t kLeafCapacity = (kPageSize - kPayloadOffset) / kLeafEntryBytes;

// Internal payload: child0 PageId, then (i64 key, PageId child) entries.
constexpr size_t kInternalEntryBytes = 12;
constexpr size_t kInternalCapacity =
    (kPageSize - kPayloadOffset - sizeof(PageId)) / kInternalEntryBytes;

template <typename T>
T ReadAt(const char* page, size_t offset) {
  T value;
  std::memcpy(&value, page + offset, sizeof(T));
  return value;
}

template <typename T>
void WriteAt(char* page, size_t offset, T value) {
  std::memcpy(page + offset, &value, sizeof(T));
}

uint8_t NodeType(const char* page) { return ReadAt<uint8_t>(page, kTypeOffset); }
uint16_t Count(const char* page) { return ReadAt<uint16_t>(page, kCountOffset); }
void SetCount(char* page, uint16_t count) { WriteAt(page, kCountOffset, count); }
PageId Next(const char* page) { return ReadAt<PageId>(page, kNextOffset); }
void SetNext(char* page, PageId next) { WriteAt(page, kNextOffset, next); }

void InitNode(char* page, uint8_t type) {
  std::memset(page, 0, kPageSize);
  WriteAt<uint8_t>(page, kTypeOffset, type);
  SetCount(page, 0);
  SetNext(page, kInvalidPageId);
}

// Leaf accessors.
int64_t LeafKey(const char* page, size_t i) {
  return ReadAt<int64_t>(page, kPayloadOffset + i * kLeafEntryBytes);
}
uint64_t LeafValue(const char* page, size_t i) {
  return ReadAt<uint64_t>(page, kPayloadOffset + i * kLeafEntryBytes + 8);
}
void SetLeafEntry(char* page, size_t i, int64_t key, uint64_t value) {
  WriteAt(page, kPayloadOffset + i * kLeafEntryBytes, key);
  WriteAt(page, kPayloadOffset + i * kLeafEntryBytes + 8, value);
}

// Internal accessors: children are indexed 0..count, keys 0..count-1.
PageId Child(const char* page, size_t i) {
  if (i == 0) return ReadAt<PageId>(page, kPayloadOffset);
  return ReadAt<PageId>(
      page, kPayloadOffset + sizeof(PageId) + (i - 1) * kInternalEntryBytes + 8);
}
void SetChild(char* page, size_t i, PageId child) {
  if (i == 0) {
    WriteAt(page, kPayloadOffset, child);
  } else {
    WriteAt(page,
            kPayloadOffset + sizeof(PageId) + (i - 1) * kInternalEntryBytes + 8,
            child);
  }
}
int64_t InternalKey(const char* page, size_t i) {
  return ReadAt<int64_t>(page,
                         kPayloadOffset + sizeof(PageId) + i * kInternalEntryBytes);
}
void SetInternalKey(char* page, size_t i, int64_t key) {
  WriteAt(page, kPayloadOffset + sizeof(PageId) + i * kInternalEntryBytes, key);
}

// First slot in a leaf with key >= target.
size_t LeafLowerBound(const char* page, int64_t key) {
  size_t lo = 0;
  size_t hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// First slot in a leaf with key > target.
size_t LeafUpperBound(const char* page, int64_t key) {
  size_t lo = 0;
  size_t hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index for routing: inserts go right of equal separators.
size_t RouteUpper(const char* page, int64_t key) {
  size_t lo = 0;
  size_t hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child index for scans: first separator >= key.
size_t RouteLower(const char* page, int64_t key) {
  size_t lo = 0;
  size_t hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (InternalKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Header sanity for a node page loaded from disk. Capacity bounds are
// strict (stored nodes are always post-split, i.e. below capacity), which
// also guarantees the insert path's memmove stays inside the page.
Status CheckNodeHeader(const char* page, PageId page_id, size_t num_pages) {
  const uint8_t type = NodeType(page);
  if (type != kLeafType && type != kInternalType) {
    return diag::CorruptionError(
        "DiskBPlusTree",
        "page " + std::to_string(page_id) + " has unknown node type " +
            std::to_string(type));
  }
  const size_t count = Count(page);
  const size_t capacity = type == kLeafType ? kLeafCapacity : kInternalCapacity;
  if (count >= capacity) {
    return diag::CorruptionError(
        "DiskBPlusTree", "page " + std::to_string(page_id) + " is overfull (" +
                             std::to_string(count) + " entries, capacity " +
                             std::to_string(capacity) + ")");
  }
  if (type == kLeafType) {
    const PageId next = Next(page);
    if (next != kInvalidPageId && (next == 0 || next >= num_pages)) {
      return diag::CorruptionError(
          "DiskBPlusTree", "page " + std::to_string(page_id) +
                               " chains to out-of-range page " +
                               std::to_string(next));
    }
  }
  return Status::OK();
}

// RAII unpin guard.
class Pin {
 public:
  Pin(Pager* pager, PageId id, char* data) : pager_(pager), id_(id), data_(data) {}
  ~Pin() {
    if (pager_ != nullptr) (void)pager_->Unpin(id_, dirty_);
  }
  Pin(const Pin&) = delete;
  Pin& operator=(const Pin&) = delete;

  char* data() { return data_; }
  const char* data() const { return data_; }
  void MarkDirty() { dirty_ = true; }
  PageId id() const { return id_; }

 private:
  Pager* pager_;
  PageId id_;
  char* data_;
  bool dirty_ = false;
};

}  // namespace

Result<std::unique_ptr<DiskBPlusTree>> DiskBPlusTree::Open(const std::string& path,
                                                           size_t pool_pages) {
  Options options;
  options.pool_pages = pool_pages;
  return Open(path, options);
}

Result<std::unique_ptr<DiskBPlusTree>> DiskBPlusTree::Open(const std::string& path,
                                                           Options options) {
  if (options.pool_pages < 8) {
    return Status::InvalidArgument("DiskBPlusTree: pool_pages must be >= 8");
  }
  Pager::Options pager_options;
  pager_options.env = options.env;
  pager_options.durable = options.durable;
  S2_ASSIGN_OR_RETURN(std::unique_ptr<Pager> pager,
                      Pager::Open(path, options.pool_pages, pager_options));
  std::unique_ptr<DiskBPlusTree> tree(new DiskBPlusTree(std::move(pager)));
  if (tree->pager_->num_pages() == 0) {
    S2_RETURN_NOT_OK(tree->InitializeNewFile());
  } else {
    S2_RETURN_NOT_OK(tree->LoadMeta());
  }
  return tree;
}

Status DiskBPlusTree::InitializeNewFile() {
  char* meta = nullptr;
  S2_ASSIGN_OR_RETURN(PageId meta_id, pager_->Allocate(&meta));
  if (meta_id != 0) return Status::Internal("DiskBPlusTree: meta page must be 0");
  std::memcpy(meta + kMetaMagicOffset, kMagic, sizeof(kMagic));

  char* root = nullptr;
  S2_ASSIGN_OR_RETURN(PageId root_id, pager_->Allocate(&root));
  InitNode(root, kLeafType);
  S2_RETURN_NOT_OK(pager_->Unpin(root_id, /*dirty=*/true));

  root_ = root_id;
  size_ = 0;
  WriteAt(meta, kMetaRootOffset, root_);
  WriteAt(meta, kMetaSizeOffset, size_);
  S2_RETURN_NOT_OK(pager_->Unpin(meta_id, /*dirty=*/true));
  return pager_->FlushAll();
}

Status DiskBPlusTree::LoadMeta() {
  S2_ASSIGN_OR_RETURN(char* meta, pager_->Fetch(0));
  Pin pin(pager_.get(), 0, meta);
  if (std::memcmp(meta + kMetaMagicOffset, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("DiskBPlusTree: bad magic in meta page");
  }
  root_ = ReadAt<PageId>(meta, kMetaRootOffset);
  size_ = ReadAt<uint64_t>(meta, kMetaSizeOffset);
  if (root_ == 0 || root_ == kInvalidPageId || root_ >= pager_->num_pages()) {
    return Status::Corruption("DiskBPlusTree: root pointer " +
                              std::to_string(root_) + " out of range (file has " +
                              std::to_string(pager_->num_pages()) + " pages)");
  }
  // A sound tree cannot hold more pairs than its node pages can carry.
  const uint64_t max_pairs =
      static_cast<uint64_t>(pager_->num_pages()) * kLeafCapacity;
  if (size_ > max_pairs) {
    return Status::Corruption("DiskBPlusTree: pair count " +
                              std::to_string(size_) +
                              " impossible for a file of " +
                              std::to_string(pager_->num_pages()) + " pages");
  }
  return Status::OK();
}

Status DiskBPlusTree::StoreMeta() {
  S2_ASSIGN_OR_RETURN(char* meta, pager_->Fetch(0));
  Pin pin(pager_.get(), 0, meta);
  WriteAt(meta, kMetaRootOffset, root_);
  WriteAt(meta, kMetaSizeOffset, size_);
  pin.MarkDirty();
  return Status::OK();
}

Result<char*> DiskBPlusTree::FetchNode(PageId page_id) {
  if (page_id == 0 || page_id == kInvalidPageId ||
      page_id >= pager_->num_pages()) {
    return diag::CorruptionError(
        "DiskBPlusTree",
        "node pointer to invalid page " + std::to_string(page_id) +
            " (file has " + std::to_string(pager_->num_pages()) + " pages)");
  }
  S2_ASSIGN_OR_RETURN(char* page, pager_->Fetch(page_id));
  Status header = CheckNodeHeader(page, page_id, pager_->num_pages());
  if (!header.ok()) {
    (void)pager_->Unpin(page_id, /*dirty=*/false);
    return header;
  }
  return page;
}

Result<DiskBPlusTree::SplitResult> DiskBPlusTree::InsertInto(PageId page_id,
                                                             int64_t key,
                                                             uint64_t value,
                                                             size_t depth) {
  if (depth > kMaxDepth) {
    return diag::CorruptionError("DiskBPlusTree",
                                 "cycle detected on the insert path");
  }
  S2_ASSIGN_OR_RETURN(char* page, FetchNode(page_id));
  Pin pin(pager_.get(), page_id, page);
  SplitResult result;

  if (NodeType(page) == kLeafType) {
    const size_t count = Count(page);
    const size_t pos = LeafUpperBound(page, key);
    // Shift right and insert.
    std::memmove(page + kPayloadOffset + (pos + 1) * kLeafEntryBytes,
                 page + kPayloadOffset + pos * kLeafEntryBytes,
                 (count - pos) * kLeafEntryBytes);
    SetLeafEntry(page, pos, key, value);
    SetCount(page, static_cast<uint16_t>(count + 1));
    pin.MarkDirty();

    if (count + 1 < kLeafCapacity) return result;

    // Split the full leaf.
    char* right = nullptr;
    S2_ASSIGN_OR_RETURN(PageId right_id, pager_->Allocate(&right));
    Pin right_pin(pager_.get(), right_id, right);
    InitNode(right, kLeafType);
    const size_t total = count + 1;
    const size_t mid = total / 2;
    std::memcpy(right + kPayloadOffset, page + kPayloadOffset + mid * kLeafEntryBytes,
                (total - mid) * kLeafEntryBytes);
    SetCount(right, static_cast<uint16_t>(total - mid));
    SetNext(right, Next(page));
    SetCount(page, static_cast<uint16_t>(mid));
    SetNext(page, right_id);
    right_pin.MarkDirty();

    result.happened = true;
    result.separator = LeafKey(right, 0);
    result.right = right_id;
    return result;
  }

  // Internal node.
  if (Count(page) == 0) {
    return diag::CorruptionError(
        "DiskBPlusTree",
        "internal page " + std::to_string(page_id) + " has no separators");
  }
  const size_t idx = RouteUpper(page, key);
  const PageId child = Child(page, idx);
  S2_ASSIGN_OR_RETURN(SplitResult child_split,
                      InsertInto(child, key, value, depth + 1));
  if (!child_split.happened) return result;

  const size_t count = Count(page);
  // Shift entries right of idx and insert (separator, right child).
  std::memmove(
      page + kPayloadOffset + sizeof(PageId) + (idx + 1) * kInternalEntryBytes,
      page + kPayloadOffset + sizeof(PageId) + idx * kInternalEntryBytes,
      (count - idx) * kInternalEntryBytes);
  SetInternalKey(page, idx, child_split.separator);
  SetChild(page, idx + 1, child_split.right);
  SetCount(page, static_cast<uint16_t>(count + 1));
  pin.MarkDirty();

  if (count + 1 < kInternalCapacity) return result;

  // Split the full internal node; the middle key moves up.
  char* right = nullptr;
  S2_ASSIGN_OR_RETURN(PageId right_id, pager_->Allocate(&right));
  Pin right_pin(pager_.get(), right_id, right);
  InitNode(right, kInternalType);
  const size_t total = count + 1;
  const size_t mid = total / 2;
  result.separator = InternalKey(page, mid);

  SetChild(right, 0, Child(page, mid + 1));
  for (size_t i = mid + 1; i < total; ++i) {
    SetInternalKey(right, i - mid - 1, InternalKey(page, i));
    SetChild(right, i - mid, Child(page, i + 1));
  }
  SetCount(right, static_cast<uint16_t>(total - mid - 1));
  SetCount(page, static_cast<uint16_t>(mid));
  right_pin.MarkDirty();

  result.happened = true;
  result.right = right_id;
  return result;
}

Status DiskBPlusTree::Insert(int64_t key, uint64_t value) {
  S2_ASSIGN_OR_RETURN(SplitResult split, InsertInto(root_, key, value, 0));
  if (split.happened) {
    char* new_root = nullptr;
    S2_ASSIGN_OR_RETURN(PageId new_root_id, pager_->Allocate(&new_root));
    Pin pin(pager_.get(), new_root_id, new_root);
    InitNode(new_root, kInternalType);
    SetChild(new_root, 0, root_);
    SetInternalKey(new_root, 0, split.separator);
    SetChild(new_root, 1, split.right);
    SetCount(new_root, 1);
    pin.MarkDirty();
    root_ = new_root_id;
  }
  ++size_;
  return StoreMeta();
}

Result<bool> DiskBPlusTree::EraseFrom(PageId page_id, int64_t key, uint64_t value,
                                      size_t depth) {
  if (depth > kMaxDepth) {
    return diag::CorruptionError("DiskBPlusTree",
                                 "cycle detected on the erase path");
  }
  S2_ASSIGN_OR_RETURN(char* page, FetchNode(page_id));
  Pin pin(pager_.get(), page_id, page);

  if (NodeType(page) == kLeafType) {
    const size_t count = Count(page);
    for (size_t i = LeafLowerBound(page, key); i < count && LeafKey(page, i) == key;
         ++i) {
      if (LeafValue(page, i) == value) {
        std::memmove(page + kPayloadOffset + i * kLeafEntryBytes,
                     page + kPayloadOffset + (i + 1) * kLeafEntryBytes,
                     (count - i - 1) * kLeafEntryBytes);
        SetCount(page, static_cast<uint16_t>(count - 1));
        pin.MarkDirty();
        return true;
      }
    }
    return false;
  }

  // Duplicates may straddle children: try every child that could hold key.
  const size_t first = RouteLower(page, key);
  const size_t last = RouteUpper(page, key);
  for (size_t idx = first; idx <= last; ++idx) {
    S2_ASSIGN_OR_RETURN(bool erased,
                        EraseFrom(Child(page, idx), key, value, depth + 1));
    if (erased) return true;
  }
  return false;
}

Result<bool> DiskBPlusTree::Erase(int64_t key, uint64_t value) {
  S2_ASSIGN_OR_RETURN(bool erased, EraseFrom(root_, key, value, 0));
  if (erased) {
    --size_;
    S2_RETURN_NOT_OK(StoreMeta());
  }
  return erased;
}

Result<PageId> DiskBPlusTree::DescendToLeaf(int64_t key) {
  PageId page_id = root_;
  for (size_t depth = 0; depth <= kMaxDepth; ++depth) {
    S2_ASSIGN_OR_RETURN(char* page, FetchNode(page_id));
    Pin pin(pager_.get(), page_id, page);
    if (NodeType(page) == kLeafType) return page_id;
    page_id = Child(page, RouteLower(page, key));
  }
  return diag::CorruptionError("DiskBPlusTree", "cycle detected while descending");
}

Result<PageId> DiskBPlusTree::LeftmostLeaf() {
  PageId page_id = root_;
  for (size_t depth = 0; depth <= kMaxDepth; ++depth) {
    S2_ASSIGN_OR_RETURN(char* page, FetchNode(page_id));
    Pin pin(pager_.get(), page_id, page);
    if (NodeType(page) == kLeafType) return page_id;
    page_id = Child(page, 0);
  }
  return diag::CorruptionError("DiskBPlusTree", "cycle detected while descending");
}

Status DiskBPlusTree::Scan(int64_t lo, int64_t hi,
                           const std::function<bool(int64_t, uint64_t)>& fn) {
  S2_ASSIGN_OR_RETURN(PageId leaf_id, DescendToLeaf(lo));
  bool first = true;
  // A sound chain visits every leaf at most once; more hops mean a cycle.
  for (size_t hops = 0; leaf_id != kInvalidPageId; ++hops) {
    if (hops > pager_->num_pages()) {
      return diag::CorruptionError("DiskBPlusTree", "cycle in the leaf chain");
    }
    S2_ASSIGN_OR_RETURN(char* page, FetchNode(leaf_id));
    Pin pin(pager_.get(), leaf_id, page);
    if (NodeType(page) != kLeafType) {
      return diag::CorruptionError(
          "DiskBPlusTree",
          "leaf chain reaches internal page " + std::to_string(leaf_id));
    }
    const size_t count = Count(page);
    size_t i = first ? LeafLowerBound(page, lo) : 0;
    first = false;
    for (; i < count; ++i) {
      const int64_t key = LeafKey(page, i);
      if (key > hi) return Status::OK();
      if (!fn(key, LeafValue(page, i))) return Status::OK();
    }
    leaf_id = Next(page);
  }
  return Status::OK();
}

Status DiskBPlusTree::ScanAll(const std::function<bool(int64_t, uint64_t)>& fn) {
  S2_ASSIGN_OR_RETURN(PageId leaf_id, LeftmostLeaf());
  for (size_t hops = 0; leaf_id != kInvalidPageId; ++hops) {
    if (hops > pager_->num_pages()) {
      return diag::CorruptionError("DiskBPlusTree", "cycle in the leaf chain");
    }
    S2_ASSIGN_OR_RETURN(char* page, FetchNode(leaf_id));
    Pin pin(pager_.get(), leaf_id, page);
    if (NodeType(page) != kLeafType) {
      return diag::CorruptionError(
          "DiskBPlusTree",
          "leaf chain reaches internal page " + std::to_string(leaf_id));
    }
    const size_t count = Count(page);
    for (size_t i = 0; i < count; ++i) {
      if (!fn(LeafKey(page, i), LeafValue(page, i))) return Status::OK();
    }
    leaf_id = Next(page);
  }
  return Status::OK();
}

Status DiskBPlusTree::Flush() { return pager_->Sync(); }

Status DiskBPlusTree::ValidateNode(PageId page_id, const int64_t* lo,
                                   const int64_t* hi, uint64_t* pair_count,
                                   std::vector<PageId>* leaves,
                                   std::vector<uint8_t>* visited, size_t depth,
                                   diag::Validator* v) {
  if (page_id == 0 || page_id == kInvalidPageId ||
      page_id >= pager_->num_pages()) {
    v->AddViolation("child pointer to invalid page " + std::to_string(page_id));
    return Status::OK();
  }
  if ((*visited)[page_id] != 0) {
    v->AddViolation("page " + std::to_string(page_id) +
                    " reachable twice (cycle or shared child)");
    return Status::OK();
  }
  (*visited)[page_id] = 1;
  if (depth > kMaxDepth) {
    v->AddViolation("tree deeper than " + std::to_string(kMaxDepth) +
                    " levels (cycle)");
    return Status::OK();
  }

  // Copy the page and unpin immediately: validation may recurse deeper than
  // the pool holds frames, and must not care.
  std::vector<char> copy(kPageSize);
  {
    S2_ASSIGN_OR_RETURN(char* raw, pager_->Fetch(page_id));
    std::memcpy(copy.data(), raw, kPageSize);
    S2_RETURN_NOT_OK(pager_->Unpin(page_id, /*dirty=*/false));
  }
  const char* page = copy.data();
  const std::string where = "page " + std::to_string(page_id);

  const uint8_t type = NodeType(page);
  if (type != kLeafType && type != kInternalType) {
    v->AddViolation(where + " has unknown node type " + std::to_string(type));
    return Status::OK();
  }
  const size_t count = Count(page);
  const size_t capacity = type == kLeafType ? kLeafCapacity : kInternalCapacity;
  if (count >= capacity) {
    v->AddViolation(where + " is overfull (" + std::to_string(count) +
                    " entries, capacity " + std::to_string(capacity) + ")");
    return Status::OK();  // Entry offsets past capacity are meaningless.
  }

  if (type == kLeafType) {
    *pair_count += count;
    leaves->push_back(page_id);
    for (size_t i = 0; i < count; ++i) {
      const int64_t key = LeafKey(page, i);
      v->Check(i == 0 || LeafKey(page, i - 1) <= key)
          << where << " slot " << i << ": leaf keys out of order";
      v->Check(lo == nullptr || key >= *lo)
          << where << " slot " << i << ": key " << key
          << " below the separator window";
      v->Check(hi == nullptr || key <= *hi)
          << where << " slot " << i << ": key " << key
          << " above the separator window";
    }
    return Status::OK();
  }

  v->Check(count > 0) << where << ": internal node with no separators";
  for (size_t i = 1; i < count; ++i) {
    v->Check(InternalKey(page, i - 1) <= InternalKey(page, i))
        << where << " slot " << i << ": separators out of order";
  }
  for (size_t i = 0; i <= count; ++i) {
    int64_t child_lo_value = 0;
    int64_t child_hi_value = 0;
    const int64_t* child_lo = lo;
    const int64_t* child_hi = hi;
    if (i > 0) {
      child_lo_value = InternalKey(page, i - 1);
      child_lo = &child_lo_value;
    }
    if (i < count) {
      child_hi_value = InternalKey(page, i);
      child_hi = &child_hi_value;
    }
    S2_RETURN_NOT_OK(ValidateNode(Child(page, i), child_lo, child_hi,
                                  pair_count, leaves, visited, depth + 1, v));
  }
  return Status::OK();
}

Status DiskBPlusTree::Validate() {
  diag::Validator v("DiskBPlusTree");
  v.Check(root_ != 0 && root_ != kInvalidPageId && root_ < pager_->num_pages())
      << "root pointer " << root_ << " out of range";
  if (!v.ok()) return v.ToStatus();

  uint64_t pairs = 0;
  std::vector<PageId> leaves;
  std::vector<uint8_t> visited(pager_->num_pages(), 0);
  S2_RETURN_NOT_OK(
      ValidateNode(root_, nullptr, nullptr, &pairs, &leaves, &visited, 0, &v));
  v.Check(pairs == size_) << "stored pair count " << pairs
                          << " != metadata size " << size_;

  // The forward leaf chain must enumerate exactly the in-order leaves.
  size_t chain_idx = 0;
  PageId chain = leaves.empty() ? kInvalidPageId : leaves.front();
  while (chain != kInvalidPageId && chain_idx < leaves.size()) {
    if (chain != leaves[chain_idx]) {
      v.AddViolation("leaf chain diverges at hop " + std::to_string(chain_idx) +
                     ": expected page " + std::to_string(leaves[chain_idx]) +
                     ", found page " + std::to_string(chain));
      return v.ToStatus();
    }
    std::vector<char> copy(kPageSize);
    {
      S2_ASSIGN_OR_RETURN(char* raw, pager_->Fetch(chain));
      std::memcpy(copy.data(), raw, kPageSize);
      S2_RETURN_NOT_OK(pager_->Unpin(chain, /*dirty=*/false));
    }
    chain = Next(copy.data());
    ++chain_idx;
  }
  v.Check(chain == kInvalidPageId)
      << "leaf chain continues past the last in-order leaf (to page " << chain
      << ")";
  v.Check(chain_idx == leaves.size())
      << "leaf chain ends after " << chain_idx << " of " << leaves.size()
      << " leaves";
  return v.ToStatus();
}

Result<bool> DiskBPlusTree::CheckInvariants() {
  Status status = Validate();
  if (status.ok()) return true;
  if (status.code() == StatusCode::kCorruption) return false;
  return status;
}

}  // namespace s2::storage
