#include "monitor/alert_queue.h"

#include <algorithm>
#include <utility>

namespace s2::monitor {

void AlertQueue::Push(std::vector<Alert> alerts) {
  if (alerts.empty()) return;
  sync::MutexLock lock(&mu_);
  for (Alert& alert : alerts) {
    alert.seq = next_seq_++;
    ++fired_;
    queue_.push_back(std::move(alert));
  }
  while (queue_.size() > options_.capacity) {
    queue_.pop_front();
    ++dropped_;
  }
}

std::vector<Alert> AlertQueue::Poll(size_t max) const {
  sync::MutexLock lock(&mu_);
  const size_t n = std::min(max, queue_.size());
  std::vector<Alert> out(queue_.begin(),
                         queue_.begin() + static_cast<ptrdiff_t>(n));
  delivered_ += n;
  return out;
}

void AlertQueue::Ack(uint64_t upto_seq) {
  sync::MutexLock lock(&mu_);
  while (!queue_.empty() && queue_.front().seq <= upto_seq) {
    queue_.pop_front();
    ++acked_;
  }
  if (!any_acked_ || upto_seq > acked_upto_) {
    // Only advance the watermark to seqs that were actually assigned;
    // acking past the end would fabricate an acknowledgement of alerts
    // that never fired.
    if (next_seq_ > 0) {
      acked_upto_ = std::min(upto_seq, next_seq_ - 1);
      any_acked_ = true;
    }
  }
}

void AlertQueue::RecordEval(uint64_t micros) {
  sync::MutexLock lock(&mu_);
  ++evaluations_;
  last_eval_micros_ = micros;
}

AlertQueue::Image AlertQueue::Snapshot() const {
  sync::MutexLock lock(&mu_);
  Image image;
  image.queued.assign(queue_.begin(), queue_.end());
  image.next_seq = next_seq_;
  image.fired = fired_;
  image.dropped = dropped_;
  image.delivered = delivered_;
  image.acked = acked_;
  image.acked_upto = acked_upto_;
  image.any_acked = any_acked_;
  image.evaluations = evaluations_;
  image.last_eval_micros = last_eval_micros_;
  return image;
}

void AlertQueue::Restore(const Image& image) {
  sync::MutexLock lock(&mu_);
  queue_.assign(image.queued.begin(), image.queued.end());
  next_seq_ = image.next_seq;
  fired_ = image.fired;
  dropped_ = image.dropped;
  delivered_ = image.delivered;
  acked_ = image.acked;
  acked_upto_ = image.acked_upto;
  any_acked_ = image.any_acked;
  evaluations_ = image.evaluations;
  last_eval_micros_ = image.last_eval_micros;
}

AlertQueue::Stats AlertQueue::stats() const {
  sync::MutexLock lock(&mu_);
  Stats stats;
  stats.fired = fired_;
  stats.dropped = dropped_;
  stats.delivered = delivered_;
  stats.acked = acked_;
  stats.evaluations = evaluations_;
  stats.last_eval_micros = last_eval_micros_;
  stats.next_seq = next_seq_;
  stats.acked_upto = acked_upto_;
  stats.any_acked = any_acked_;
  stats.depth = queue_.size();
  return stats;
}

}  // namespace s2::monitor
