#include "ckpt/snapshot.h"

#include <cstring>
#include <string>
#include <utility>

namespace s2::ckpt {

namespace {

constexpr char kSnapMagic[8] = {'S', '2', 'C', 'K', 'S', 'N', '0', '1'};
constexpr uint32_t kSnapVersion = 1;

class Encoder {
 public:
  void U8(uint8_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Bytes(const std::string& s) { Raw(s.data(), s.size()); }
  std::vector<char> Take() { return std::move(bytes_); }

 private:
  void Raw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    bytes_.insert(bytes_.end(), c, c + n);
  }
  std::vector<char> bytes_;
};

/// Bounds-checked reader: every primitive read fails (rather than walking
/// off the buffer) when fewer bytes remain, and `Remaining` lets count
/// fields be sanity-checked before any reservation.
class Decoder {
 public:
  Decoder(const char* data, size_t n) : data_(data), n_(n) {}
  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Bytes(std::string* s, size_t len) {
    if (n_ - pos_ < len) return false;
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  size_t Remaining() const { return n_ - pos_; }
  bool Done() const { return pos_ == n_; }

 private:
  bool Raw(void* p, size_t n) {
    if (n_ - pos_ < n) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t n_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::Corruption(std::string("snapshot: truncated ") + what);
}

void EncodeSubscription(Encoder* enc, const monitor::Subscription& sub) {
  enc->U64(sub.id);
  enc->U32(static_cast<uint32_t>(sub.kind));
  enc->U32(sub.series);
  enc->U32(sub.burst.window);
  enc->F64(sub.burst.enter_ratio);
  enc->F64(sub.burst.exit_ratio);
  enc->F64(sub.similarity.radius);
  enc->F64(sub.similarity.exit_radius);
  enc->U64(sub.similarity.query.size());
  for (double v : sub.similarity.query) enc->F64(v);
}

Status DecodeSubscription(Decoder* dec, monitor::Subscription* sub) {
  uint32_t kind = 0;
  uint32_t series = 0;
  uint64_t query_len = 0;
  if (!dec->U64(&sub->id) || !dec->U32(&kind) || !dec->U32(&series) ||
      !dec->U32(&sub->burst.window) || !dec->F64(&sub->burst.enter_ratio) ||
      !dec->F64(&sub->burst.exit_ratio) ||
      !dec->F64(&sub->similarity.radius) ||
      !dec->F64(&sub->similarity.exit_radius) || !dec->U64(&query_len)) {
    return Truncated("subscription");
  }
  if (kind > static_cast<uint32_t>(monitor::SubscriptionKind::kSimilarityWatch)) {
    return Status::Corruption("snapshot: subscription kind out of range");
  }
  sub->kind = static_cast<monitor::SubscriptionKind>(kind);
  sub->series = series;
  if (query_len > dec->Remaining() / sizeof(double)) {
    return Status::Corruption("snapshot: similarity query overruns payload");
  }
  sub->similarity.query.clear();
  sub->similarity.query.reserve(query_len);
  for (uint64_t i = 0; i < query_len; ++i) {
    double v = 0.0;
    if (!dec->F64(&v)) return Truncated("similarity query");
    sub->similarity.query.push_back(v);
  }
  return Status::OK();
}

}  // namespace

std::vector<char> EncodeSnapshot(const EngineSnapshot& snapshot) {
  Encoder enc;
  enc.Bytes(std::string(kSnapMagic, sizeof(kSnapMagic)));
  enc.U32(kSnapVersion);
  enc.U64(snapshot.anchor_appends);
  enc.U64(snapshot.anchor_monitor_ops);
  enc.U64(snapshot.next_subscription_id);

  enc.U64(snapshot.corpus.size());
  for (const ts::TimeSeries& series : snapshot.corpus) {
    enc.U32(static_cast<uint32_t>(series.name.size()));
    enc.Bytes(series.name);
    enc.I64(series.start_day);
    enc.U64(series.values.size());
    for (double v : series.values) enc.F64(v);
  }

  enc.U64(snapshot.subscriptions.size());
  for (const monitor::SubscriptionRegistry::Entry& entry :
       snapshot.subscriptions) {
    EncodeSubscription(&enc, entry.sub);
    enc.U8(entry.engaged ? 1 : 0);
    enc.U32(entry.bin);
  }

  const monitor::AlertQueue::Image& alerts = snapshot.alerts;
  enc.U64(alerts.next_seq);
  enc.U64(alerts.fired);
  enc.U64(alerts.dropped);
  enc.U64(alerts.delivered);
  enc.U64(alerts.acked);
  enc.U64(alerts.acked_upto);
  enc.U8(alerts.any_acked ? 1 : 0);
  enc.U64(alerts.evaluations);
  enc.U64(alerts.last_eval_micros);
  enc.U64(alerts.queued.size());
  for (const monitor::Alert& alert : alerts.queued) {
    enc.U64(alert.seq);
    enc.U64(alert.subscription);
    enc.U32(static_cast<uint32_t>(alert.kind));
    enc.U32(alert.series);
    enc.I64(alert.day);
    enc.F64(alert.value);
    enc.F64(alert.threshold);
    enc.U32(alert.bin);
  }
  return enc.Take();
}

Status DecodeSnapshot(const char* data, size_t n, EngineSnapshot* out) {
  Decoder dec(data, n);
  std::string magic;
  if (!dec.Bytes(&magic, sizeof(kSnapMagic)) ||
      std::memcmp(magic.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return Status::Corruption("snapshot: bad magic");
  }
  uint32_t version = 0;
  if (!dec.U32(&version)) return Truncated("header");
  if (version != kSnapVersion) {
    return Status::Corruption("snapshot: unknown version " +
                              std::to_string(version));
  }
  if (!dec.U64(&out->anchor_appends) || !dec.U64(&out->anchor_monitor_ops) ||
      !dec.U64(&out->next_subscription_id)) {
    return Truncated("header");
  }

  uint64_t series_count = 0;
  if (!dec.U64(&series_count)) return Truncated("corpus count");
  // Each series costs at least its fixed fields; a count claiming more
  // than the remaining bytes could hold is corrupt, not just large.
  constexpr size_t kMinSeriesBytes =
      sizeof(uint32_t) + sizeof(int64_t) + sizeof(uint64_t);
  if (series_count > dec.Remaining() / kMinSeriesBytes) {
    return Status::Corruption("snapshot: corpus count overruns payload");
  }
  out->corpus.clear();
  out->corpus.reserve(series_count);
  for (uint64_t i = 0; i < series_count; ++i) {
    ts::TimeSeries series;
    uint32_t name_len = 0;
    if (!dec.U32(&name_len)) return Truncated("series name length");
    if (name_len > dec.Remaining()) {
      return Status::Corruption("snapshot: series name overruns payload");
    }
    if (!dec.Bytes(&series.name, name_len)) return Truncated("series name");
    int64_t start_day = 0;
    uint64_t value_count = 0;
    if (!dec.I64(&start_day) || !dec.U64(&value_count)) {
      return Truncated("series header");
    }
    series.start_day = static_cast<int32_t>(start_day);
    if (value_count > dec.Remaining() / sizeof(double)) {
      return Status::Corruption("snapshot: series values overrun payload");
    }
    series.values.reserve(value_count);
    for (uint64_t j = 0; j < value_count; ++j) {
      double v = 0.0;
      if (!dec.F64(&v)) return Truncated("series values");
      series.values.push_back(v);
    }
    out->corpus.push_back(std::move(series));
  }

  uint64_t sub_count = 0;
  if (!dec.U64(&sub_count)) return Truncated("subscription count");
  constexpr size_t kMinSubscriptionBytes =
      8 + 4 + 4 + 4 + 8 * 4 + 8 + 1 + 4;  // Fixed fields + state.
  if (sub_count > dec.Remaining() / kMinSubscriptionBytes) {
    return Status::Corruption("snapshot: subscription count overruns payload");
  }
  out->subscriptions.clear();
  out->subscriptions.reserve(sub_count);
  for (uint64_t i = 0; i < sub_count; ++i) {
    monitor::SubscriptionRegistry::Entry entry;
    S2_RETURN_NOT_OK(DecodeSubscription(&dec, &entry.sub));
    uint8_t engaged = 0;
    if (!dec.U8(&engaged) || !dec.U32(&entry.bin)) {
      return Truncated("subscription state");
    }
    if (engaged > 1) {
      return Status::Corruption("snapshot: non-boolean engaged flag");
    }
    entry.engaged = engaged != 0;
    out->subscriptions.push_back(std::move(entry));
  }

  monitor::AlertQueue::Image& alerts = out->alerts;
  uint8_t any_acked = 0;
  uint64_t queued_count = 0;
  if (!dec.U64(&alerts.next_seq) || !dec.U64(&alerts.fired) ||
      !dec.U64(&alerts.dropped) || !dec.U64(&alerts.delivered) ||
      !dec.U64(&alerts.acked) || !dec.U64(&alerts.acked_upto) ||
      !dec.U8(&any_acked) || !dec.U64(&alerts.evaluations) ||
      !dec.U64(&alerts.last_eval_micros) || !dec.U64(&queued_count)) {
    return Truncated("alert queue header");
  }
  if (any_acked > 1) {
    return Status::Corruption("snapshot: non-boolean any_acked flag");
  }
  alerts.any_acked = any_acked != 0;
  constexpr size_t kAlertBytes = 8 + 8 + 4 + 4 + 8 + 8 + 8 + 4;
  if (queued_count > dec.Remaining() / kAlertBytes) {
    return Status::Corruption("snapshot: alert count overruns payload");
  }
  alerts.queued.clear();
  alerts.queued.reserve(queued_count);
  for (uint64_t i = 0; i < queued_count; ++i) {
    monitor::Alert alert;
    uint32_t kind = 0;
    uint32_t series = 0;
    if (!dec.U64(&alert.seq) || !dec.U64(&alert.subscription) ||
        !dec.U32(&kind) || !dec.U32(&series) || !dec.I64(&alert.day) ||
        !dec.F64(&alert.value) || !dec.F64(&alert.threshold) ||
        !dec.U32(&alert.bin)) {
      return Truncated("queued alert");
    }
    if (kind > static_cast<uint32_t>(monitor::AlertKind::kSimilarityLeave)) {
      return Status::Corruption("snapshot: alert kind out of range");
    }
    alert.kind = static_cast<monitor::AlertKind>(kind);
    alert.series = series;
    alerts.queued.push_back(alert);
  }

  if (!dec.Done()) {
    return Status::Corruption("snapshot: trailing bytes after image");
  }
  return Status::OK();
}

}  // namespace s2::ckpt
