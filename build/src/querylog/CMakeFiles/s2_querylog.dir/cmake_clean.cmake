file(REMOVE_RECURSE
  "CMakeFiles/s2_querylog.dir/archetypes.cc.o"
  "CMakeFiles/s2_querylog.dir/archetypes.cc.o.d"
  "CMakeFiles/s2_querylog.dir/corpus_generator.cc.o"
  "CMakeFiles/s2_querylog.dir/corpus_generator.cc.o.d"
  "CMakeFiles/s2_querylog.dir/log_aggregator.cc.o"
  "CMakeFiles/s2_querylog.dir/log_aggregator.cc.o.d"
  "CMakeFiles/s2_querylog.dir/synthesizer.cc.o"
  "CMakeFiles/s2_querylog.dir/synthesizer.cc.o.d"
  "libs2_querylog.a"
  "libs2_querylog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_querylog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
