// Pins the exec::ThreadPool contract (see the header): Submit/Shutdown
// stop-drain ordering, submissions racing (and issued during) the drain,
// concurrent Shutdown callers, and exception containment. The sharded
// engine's parallel build and scatter-gather fan-out lean on exactly these
// guarantees, so they are regression-tested rather than implied.

#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

namespace s2::exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::promise<void> done;
  ASSERT_TRUE(pool.Submit([&done] { done.set_value(); }));
  done.get_future().wait();
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> gate{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      gate.fetch_add(1);
      // Hold every worker until all four tasks are in flight, forcing each
      // onto a distinct thread.
      while (gate.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Shutdown();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  // The first task blocks the only worker so the rest stay queued.
  pool.Submit([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ran.fetch_add(1);
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();  // Graceful: everything already queued still runs.
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, DestructorJoinsWithoutExplicitShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool drains and joins.
  EXPECT_EQ(ran.load(), 10);
}

// Contract rule 1: a Submit issued while Shutdown is draining (here: from
// another thread, while a worker still holds an in-flight task) is rejected
// and its task never runs.
TEST(ThreadPoolTest, SubmitDuringShutdownDrainIsRejected) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> accepted_ran{0};
  std::atomic<bool> rejected_ran{false};
  // Occupy the only worker so Shutdown blocks in its join loop.
  ASSERT_TRUE(pool.Submit([gate] { gate.wait(); }));
  std::thread closer([&pool] { pool.Shutdown(); });
  // Race Submits against Shutdown's flag: everything accepted before the
  // flag landed must drain (graceful shutdown); and once one Submit is
  // rejected, rejection is permanent.
  int accepted = 0;
  while (pool.Submit([&accepted_ran] { accepted_ran.fetch_add(1); })) {
    ++accepted;
    std::this_thread::yield();  // Shutdown has not set the flag yet.
  }
  EXPECT_FALSE(pool.Submit([&rejected_ran] { rejected_ran.store(true); }));
  release.set_value();
  closer.join();
  EXPECT_EQ(accepted_ran.load(), accepted);
  EXPECT_FALSE(rejected_ran.load());
}

// Contract rule 1, reentrant flavour: a task that tries to respawn itself
// during the drain gets a clean false instead of extending the queue
// forever (which would make Shutdown unbounded).
TEST(ThreadPoolTest, TasksCannotRespawnDuringDrain) {
  ThreadPool pool(1);
  std::atomic<int> spawned{0};
  std::atomic<int> rejected{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::function<void()> respawn = [&] {
    gate.wait();
    if (pool.Submit(respawn)) {
      spawned.fetch_add(1);
    } else {
      rejected.fetch_add(1);
    }
  };
  ASSERT_TRUE(pool.Submit(respawn));
  std::thread closer([&pool] { pool.Shutdown(); });
  // Give Shutdown time to set the stopping flag, then let the task run.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();
  closer.join();
  EXPECT_EQ(spawned.load(), 0);
  EXPECT_EQ(rejected.load(), 1);
}

// Contract rule 2: Shutdown racing Shutdown — both return, workers join
// exactly once, every task admitted beforehand still runs.
TEST(ThreadPoolTest, ConcurrentShutdownIsSafeAndDrains) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  std::thread a([&pool] { pool.Shutdown(); });
  std::thread b([&pool] { pool.Shutdown(); });
  a.join();
  b.join();
  pool.Shutdown();  // Idempotent third call from the original thread.
  EXPECT_EQ(ran.load(), 50);
}

// Contract rule 3: a throwing task is contained and counted; the worker
// survives and keeps executing subsequent tasks.
TEST(ThreadPoolTest, ExceptionsAreContainedAndCounted) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([] { throw std::runtime_error("task bug"); }));
  ASSERT_TRUE(pool.Submit([] { throw 42; }));  // Non-std exceptions too.
  ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.tasks_aborted(), 2u);
}

}  // namespace
}  // namespace s2::exec
