// Unit contracts of the s2::monitor building blocks: the bounded alert
// queue's seq/overflow/ack accounting, the per-kind subscription state
// machines (hysteresis, silent arming, transition-only firing) and the
// monitor WAL's round-trip + torn-tail recovery.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "io/mem_env.h"
#include "monitor/alert_queue.h"
#include "monitor/monitor_wal.h"
#include "monitor/registry.h"
#include "period/period_detector.h"

namespace s2::monitor {
namespace {

Alert MakeAlert(SubscriptionId sub) {
  Alert alert;
  alert.subscription = sub;
  alert.kind = AlertKind::kBurstBegin;
  alert.series = 1;
  return alert;
}

// --- AlertQueue ------------------------------------------------------------

TEST(AlertQueueTest, AssignsMonotoneSeqsAndPeeksUntilAcked) {
  AlertQueue queue;
  queue.Push({MakeAlert(10), MakeAlert(11)});
  queue.Push({MakeAlert(12)});

  std::vector<Alert> first = queue.Poll(16);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].seq, 0u);
  EXPECT_EQ(first[1].seq, 1u);
  EXPECT_EQ(first[2].seq, 2u);

  // Poll peeks: a re-poll (a consumer that crashed after the first) sees
  // the same alerts again — at-least-once.
  std::vector<Alert> again = queue.Poll(16);
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[0].seq, 0u);

  queue.Ack(1);
  std::vector<Alert> rest = queue.Poll(16);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].seq, 2u);
  EXPECT_EQ(rest[0].subscription, 12u);

  const AlertQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.fired, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered, 7u);  // 3 + 3 + 1.
  EXPECT_EQ(stats.acked, 2u);
  EXPECT_EQ(stats.next_seq, 3u);
  EXPECT_TRUE(stats.any_acked);
  EXPECT_EQ(stats.acked_upto, 1u);
  EXPECT_EQ(stats.depth, 1u);
}

TEST(AlertQueueTest, OverflowDropsOldestWithDetectableGap) {
  AlertQueue queue(AlertQueue::Options{/*capacity=*/4});
  std::vector<Alert> six;
  for (int i = 0; i < 6; ++i) six.push_back(MakeAlert(100 + i));
  queue.Push(std::move(six));

  const AlertQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.fired, 6u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.depth, 4u);

  // The head's seq exposes the loss window: a consumer that acked nothing
  // and sees the head at 2 knows seqs [0, 2) were dropped.
  std::vector<Alert> polled = queue.Poll(16);
  ASSERT_EQ(polled.size(), 4u);
  EXPECT_EQ(polled.front().seq, 2u);
  EXPECT_EQ(polled.back().seq, 5u);
}

TEST(AlertQueueTest, AckIsClampedMonotoneAndIdempotent) {
  AlertQueue queue;
  queue.Push({MakeAlert(1), MakeAlert(2), MakeAlert(3)});

  // Acking far past the fired range clamps the watermark to what exists.
  queue.Ack(100);
  AlertQueue::Stats stats = queue.stats();
  EXPECT_EQ(stats.acked, 3u);
  EXPECT_EQ(stats.acked_upto, 2u);
  EXPECT_EQ(stats.depth, 0u);

  // Replayed (stale) acks are no-ops, not regressions.
  queue.Ack(0);
  stats = queue.stats();
  EXPECT_EQ(stats.acked, 3u);
  EXPECT_EQ(stats.acked_upto, 2u);
}

// --- SubscriptionRegistry --------------------------------------------------

/// A registry fixture owning one window the tests mutate between
/// evaluations, mirroring how the engine slides a series.
class RegistryTest : public ::testing::Test {
 protected:
  static constexpr size_t kN = 32;

  RegistryTest() { SetWindow(std::vector<double>(kN, 10.0)); }

  void SetWindow(std::vector<double> raw) {
    raw_ = std::move(raw);
    z_ = dsp::Standardize(raw_);
  }

  EvalContext Ctx() const {
    EvalContext ctx;
    ctx.raw = &raw_;
    ctx.z = &z_;
    ctx.start_day = start_day_;
    ctx.detector = &detector_;
    return ctx;
  }

  std::vector<Alert> Evaluate() {
    std::vector<Alert> fired;
    EXPECT_TRUE(registry_.Evaluate(kKey, Ctx(), &fired).ok());
    return fired;
  }

  /// A sine of the given period over the current window length — strongly
  /// periodic, so its dominant bin clears the exponential threshold.
  static std::vector<double> Sine(size_t period) {
    std::vector<double> raw(kN);
    for (size_t i = 0; i < kN; ++i) {
      raw[i] = 10.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(i) /
                                     static_cast<double>(period));
    }
    return raw;
  }

  static constexpr ts::SeriesId kKey = 7;
  SubscriptionRegistry registry_;
  period::PeriodDetector detector_;
  std::vector<double> raw_;
  std::vector<double> z_;
  int64_t start_day_ = 100;
};

TEST_F(RegistryTest, BurstFiresOnEnterAndRearmsBelowExit) {
  Subscription sub;
  sub.id = 1;
  sub.kind = SubscriptionKind::kBurstThreshold;
  sub.series = 42;  // Global id: alerts must report this, not kKey.
  sub.burst.window = 4;
  sub.burst.enter_ratio = 1.5;
  sub.burst.exit_ratio = 1.2;
  ASSERT_TRUE(registry_.Subscribe(kKey, sub, Ctx()).ok());
  EXPECT_EQ(registry_.CountOn(kKey), 1u);

  // Flat data: ratio 1.0, below enter — nothing fires.
  EXPECT_TRUE(Evaluate().empty());

  // Tail jumps to 40 over a mean of 13.75: ratio ~2.9 >= 1.5 — burst begins.
  std::vector<double> spiked(kN, 10.0);
  for (size_t i = kN - 4; i < kN; ++i) spiked[i] = 40.0;
  SetWindow(std::move(spiked));
  std::vector<Alert> fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kBurstBegin);
  EXPECT_EQ(fired[0].subscription, 1u);
  EXPECT_EQ(fired[0].series, 42u);
  EXPECT_EQ(fired[0].day, start_day_ + static_cast<int64_t>(kN) - 1);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 1.5);
  EXPECT_GE(fired[0].value, 1.5);

  // Still bursting: no re-fire while engaged.
  EXPECT_TRUE(Evaluate().empty());

  // Back to flat: ratio 1.0 < 1.2 — burst ends, state re-arms.
  SetWindow(std::vector<double>(kN, 10.0));
  fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kBurstEnd);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 1.2);
}

TEST_F(RegistryTest, SubscribingInsideABurstArmsSilently) {
  std::vector<double> spiked(kN, 10.0);
  for (size_t i = kN - 4; i < kN; ++i) spiked[i] = 40.0;
  SetWindow(std::move(spiked));

  Subscription sub;
  sub.id = 2;
  sub.kind = SubscriptionKind::kBurstThreshold;
  sub.series = 7;
  sub.burst.window = 4;
  ASSERT_TRUE(registry_.Subscribe(kKey, sub, Ctx()).ok());

  // The registration itself armed "engaged" from the standing burst; the
  // next evaluation of the same window must NOT fire a begin.
  EXPECT_TRUE(Evaluate().empty());
  ASSERT_EQ(registry_.List().size(), 1u);
  EXPECT_TRUE(registry_.List()[0].engaged);

  // Only the transition out fires.
  SetWindow(std::vector<double>(kN, 10.0));
  std::vector<Alert> fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kBurstEnd);
}

TEST_F(RegistryTest, PeriodicityTracksGainShiftAndLoss) {
  Subscription sub;
  sub.id = 3;
  sub.kind = SubscriptionKind::kPeriodicityChange;
  sub.series = 7;
  // Flat window at subscribe: zero periodogram, nothing significant.
  ASSERT_TRUE(registry_.Subscribe(kKey, sub, Ctx()).ok());

  // A period-8 sine: dominant bin kN/8 = 4 clears the threshold.
  SetWindow(Sine(8));
  std::vector<Alert> fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kPeriodGained);
  EXPECT_EQ(fired[0].bin, 4u);
  EXPECT_GT(fired[0].value, fired[0].threshold);

  // Same window again: no transition, no alert.
  EXPECT_TRUE(Evaluate().empty());

  // The dominant period moves to 16 (bin 2): a shift.
  SetWindow(Sine(16));
  fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kPeriodShift);
  EXPECT_EQ(fired[0].bin, 2u);

  // Flat again: the periodicity disappears.
  SetWindow(std::vector<double>(kN, 10.0));
  fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kPeriodLost);
}

TEST_F(RegistryTest, SimilarityWatchEntersAndLeavesTheBall) {
  // Query = the period-8 sine; the flat start window is far from it.
  Subscription sub;
  sub.id = 4;
  sub.kind = SubscriptionKind::kSimilarityWatch;
  sub.series = 7;
  sub.similarity.query = Sine(8);
  sub.similarity.radius = 1.0;
  ASSERT_TRUE(registry_.Subscribe(kKey, sub, Ctx()).ok());
  EXPECT_TRUE(Evaluate().empty());

  // The window becomes the query itself: standardized distance 0 — enter.
  SetWindow(Sine(8));
  std::vector<Alert> fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kSimilarityEnter);
  EXPECT_DOUBLE_EQ(fired[0].value, 0.0);
  EXPECT_DOUBLE_EQ(fired[0].threshold, 1.0);

  // Far away again — leave (exit_radius 0 means "same as radius").
  SetWindow(Sine(16));
  fired = Evaluate();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::kSimilarityLeave);
  EXPECT_GT(fired[0].value, 1.0);
}

TEST_F(RegistryTest, EvaluationWalksSubscriptionsInRegistrationOrder) {
  for (SubscriptionId id : {11u, 12u, 13u}) {
    Subscription sub;
    sub.id = id;
    sub.kind = SubscriptionKind::kBurstThreshold;
    sub.series = 7;
    sub.burst.window = 4;
    ASSERT_TRUE(registry_.Subscribe(kKey, sub, Ctx()).ok());
  }
  std::vector<double> spiked(kN, 10.0);
  for (size_t i = kN - 4; i < kN; ++i) spiked[i] = 40.0;
  SetWindow(std::move(spiked));

  std::vector<Alert> fired = Evaluate();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].subscription, 11u);
  EXPECT_EQ(fired[1].subscription, 12u);
  EXPECT_EQ(fired[2].subscription, 13u);
}

TEST_F(RegistryTest, RejectsInvalidParamsAndDuplicateIds) {
  Subscription sub;
  sub.id = 1;
  sub.kind = SubscriptionKind::kBurstThreshold;
  sub.series = 7;

  sub.burst.window = 0;
  EXPECT_EQ(registry_.Subscribe(kKey, sub, Ctx()).code(),
            StatusCode::kInvalidArgument);
  sub.burst.window = kN + 1;
  EXPECT_EQ(registry_.Subscribe(kKey, sub, Ctx()).code(),
            StatusCode::kInvalidArgument);
  sub.burst.window = 4;
  sub.burst.enter_ratio = 1.0;
  sub.burst.exit_ratio = 1.5;  // Exit above enter: would chatter.
  EXPECT_EQ(registry_.Subscribe(kKey, sub, Ctx()).code(),
            StatusCode::kInvalidArgument);

  sub.burst = BurstThresholdParams{};
  sub.id = kInvalidSubscriptionId;
  EXPECT_EQ(registry_.Subscribe(kKey, sub, Ctx()).code(),
            StatusCode::kInvalidArgument);
  sub.id = 1;
  ASSERT_TRUE(registry_.Subscribe(kKey, sub, Ctx()).ok());
  EXPECT_EQ(registry_.Subscribe(kKey, sub, Ctx()).code(),
            StatusCode::kInvalidArgument);  // Duplicate id.

  Subscription similar;
  similar.id = 2;
  similar.kind = SubscriptionKind::kSimilarityWatch;
  similar.series = 7;
  similar.similarity.query = std::vector<double>(kN - 1, 1.0);  // Wrong length.
  EXPECT_EQ(registry_.Subscribe(kKey, similar, Ctx()).code(),
            StatusCode::kInvalidArgument);
  similar.similarity.query = std::vector<double>(kN, 1.0);
  similar.similarity.radius = 0.0;
  EXPECT_EQ(registry_.Subscribe(kKey, similar, Ctx()).code(),
            StatusCode::kInvalidArgument);
  similar.similarity.radius = 1.0;
  similar.similarity.exit_radius = 0.5;  // Below radius.
  EXPECT_EQ(registry_.Subscribe(kKey, similar, Ctx()).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(registry_.Unsubscribe(99).code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry_.Unsubscribe(1).ok());
  EXPECT_EQ(registry_.size(), 0u);
  EXPECT_EQ(registry_.CountOn(kKey), 0u);
}

// --- MonitorWal ------------------------------------------------------------

TEST(MonitorWalTest, RoundTripsEveryOpKindWithExactFields) {
  io::MemEnv env;
  {
    std::vector<MonitorOp> none;
    auto wal = MonitorWal::Open(&env, "mon.wal", &none);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_TRUE(none.empty());

    MonitorOp subscribe;
    subscribe.op = MonitorOp::Kind::kSubscribe;
    subscribe.anchor = 5;
    subscribe.sub.id = 3;
    subscribe.sub.kind = SubscriptionKind::kSimilarityWatch;
    subscribe.sub.series = 17;
    subscribe.sub.similarity.query = {1.5, -2.25, 3.0};
    subscribe.sub.similarity.radius = 0.75;
    subscribe.sub.similarity.exit_radius = 1.25;
    ASSERT_TRUE((*wal)->Append(subscribe).ok());

    MonitorOp unsubscribe;
    unsubscribe.op = MonitorOp::Kind::kUnsubscribe;
    unsubscribe.anchor = 9;
    unsubscribe.sub.id = 3;
    ASSERT_TRUE((*wal)->Append(unsubscribe).ok());

    MonitorOp ack;
    ack.op = MonitorOp::Kind::kAck;
    ack.anchor = 12;
    ack.ack_upto = 41;
    ASSERT_TRUE((*wal)->Append(ack).ok());
    EXPECT_EQ((*wal)->record_count(), 3u);
  }

  std::vector<MonitorOp> ops;
  MonitorWal::ReplayInfo info;
  auto wal = MonitorWal::Open(&env, "mon.wal", &ops, &info);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(info.records, 3u);
  EXPECT_EQ(info.dropped_bytes, 0u);
  ASSERT_EQ(ops.size(), 3u);

  EXPECT_EQ(ops[0].op, MonitorOp::Kind::kSubscribe);
  EXPECT_EQ(ops[0].anchor, 5u);
  EXPECT_EQ(ops[0].sub.id, 3u);
  EXPECT_EQ(ops[0].sub.kind, SubscriptionKind::kSimilarityWatch);
  EXPECT_EQ(ops[0].sub.series, 17u);
  ASSERT_EQ(ops[0].sub.similarity.query.size(), 3u);
  EXPECT_DOUBLE_EQ(ops[0].sub.similarity.query[1], -2.25);
  EXPECT_DOUBLE_EQ(ops[0].sub.similarity.radius, 0.75);
  EXPECT_DOUBLE_EQ(ops[0].sub.similarity.exit_radius, 1.25);

  EXPECT_EQ(ops[1].op, MonitorOp::Kind::kUnsubscribe);
  EXPECT_EQ(ops[1].anchor, 9u);
  EXPECT_EQ(ops[1].sub.id, 3u);

  EXPECT_EQ(ops[2].op, MonitorOp::Kind::kAck);
  EXPECT_EQ(ops[2].anchor, 12u);
  EXPECT_EQ(ops[2].ack_upto, 41u);

  // The reopened handle appends past the replayed tail.
  MonitorOp more;
  more.op = MonitorOp::Kind::kAck;
  more.ack_upto = 50;
  ASSERT_TRUE((*wal)->Append(more).ok());
  EXPECT_EQ((*wal)->record_count(), 4u);
}

TEST(MonitorWalTest, TornTailIsDroppedAndOverwritten) {
  io::MemEnv env;
  {
    std::vector<MonitorOp> none;
    auto wal = MonitorWal::Open(&env, "mon.wal", &none);
    ASSERT_TRUE(wal.ok());
    MonitorOp ack;
    ack.op = MonitorOp::Kind::kAck;
    ack.ack_upto = 1;
    ASSERT_TRUE((*wal)->Append(ack).ok());
    ack.ack_upto = 2;
    ASSERT_TRUE((*wal)->Append(ack).ok());
  }

  // Tear the second record by flipping its final (checksum) byte.
  uint64_t size = 0;
  {
    auto file = env.Open("mon.wal", io::OpenMode::kReadWrite);
    ASSERT_TRUE(file.ok());
    auto got = (*file)->Size();
    ASSERT_TRUE(got.ok());
    size = *got;
    char byte = 0;
    ASSERT_TRUE((*file)->ReadAt(&byte, 1, size - 1).ok());
    byte ^= 0x5a;
    ASSERT_TRUE((*file)->WriteAt(&byte, 1, size - 1).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }

  std::vector<MonitorOp> ops;
  MonitorWal::ReplayInfo info;
  auto wal = MonitorWal::Open(&env, "mon.wal", &ops, &info);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].ack_upto, 1u);
  EXPECT_GT(info.dropped_bytes, 0u);

  // The next append overwrites the tear; a fresh open sees both records.
  MonitorOp ack;
  ack.op = MonitorOp::Kind::kAck;
  ack.ack_upto = 3;
  ASSERT_TRUE((*wal)->Append(ack).ok());
  std::vector<MonitorOp> again;
  auto reopened = MonitorWal::Open(&env, "mon.wal", &again);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0].ack_upto, 1u);
  EXPECT_EQ(again[1].ack_upto, 3u);
}

TEST(MonitorWalTest, BadMagicIsCorruption) {
  io::MemEnv env;
  {
    auto file = env.Open("mon.wal", io::OpenMode::kTruncate);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(io::WriteExact(file->get(), "NOTMWAL!", 8).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  std::vector<MonitorOp> ops;
  auto wal = MonitorWal::Open(&env, "mon.wal", &ops);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace s2::monitor
