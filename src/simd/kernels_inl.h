#ifndef S2_SIMD_KERNELS_INL_H_
#define S2_SIMD_KERNELS_INL_H_

/// Generic kernel bodies, instantiated once per backend translation unit
/// (kernels_scalar.cc, kernels_sse2.cc, kernels_avx2.cc, kernels_neon.cc).
/// The backend parameter B is one of the wrappers in vec.h.
///
/// This file IS the canonical arithmetic spec the bit-compatibility
/// contract refers to:
///   - four accumulator lanes; the element at global index j contributes
///     to lane (j mod 4);
///   - the vectorized body consumes 4-element groups in index order;
///   - early-abandon kernels reduce and test the accumulator after every
///     16 elements ("> limit_sq" abandons, returning that partial sum);
///   - the remainder (n mod 4) is accumulated with scalar arithmetic into
///     the spilled lanes, still addressed by global index mod 4;
///   - every reduction — mid-loop or final — is the same fixed tree
///     (lane0+lane2) + (lane1+lane3).
/// Because each step is a lane-wise IEEE-754 operation in a fixed order,
/// instantiating this file with any backend yields bit-identical results,
/// including the partial sums returned on abandonment. Goldens were
/// regenerated once when this blocked order replaced the old sequential
/// summation; from then on every backend must reproduce them exactly.

#include <cstddef>

#include "simd/kernels.h"
#include "simd/vec.h"

namespace s2::simd::detail {

// Reduces spilled lanes with the canonical tree; the scalar twin of
// B::Reduce so "spill + finish scalar tail + reduce" matches "B::Reduce"
// whenever the tail is empty.
inline double ReduceLanes(const double lanes[4]) {
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

template <class B>
double SumImpl(const double* x, size_t n) {
  typename B::Vec acc = B::Zero();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) acc = B::Add(acc, B::Load(x + j));
  double lanes[4];
  B::Store(lanes, acc);
  for (; j < n; ++j) lanes[j & 3] += x[j];
  return ReduceLanes(lanes);
}

template <class B>
double SumSqImpl(const double* x, size_t n) {
  typename B::Vec acc = B::Zero();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const typename B::Vec v = B::Load(x + j);
    acc = B::Add(acc, B::Mul(v, v));
  }
  double lanes[4];
  B::Store(lanes, acc);
  for (; j < n; ++j) lanes[j & 3] += x[j] * x[j];
  return ReduceLanes(lanes);
}

template <class B>
double CenteredSumSqImpl(const double* x, size_t n, double mean) {
  const typename B::Vec mean_v = B::Broadcast(mean);
  typename B::Vec acc = B::Zero();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const typename B::Vec d = B::Sub(B::Load(x + j), mean_v);
    acc = B::Add(acc, B::Mul(d, d));
  }
  double lanes[4];
  B::Store(lanes, acc);
  for (; j < n; ++j) {
    const double d = x[j] - mean;
    lanes[j & 3] += d * d;
  }
  return ReduceLanes(lanes);
}

template <class B>
double SumSqDiffImpl(const double* a, const double* b, size_t n) {
  typename B::Vec acc = B::Zero();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const typename B::Vec d = B::Sub(B::Load(a + j), B::Load(b + j));
    acc = B::Add(acc, B::Mul(d, d));
  }
  double lanes[4];
  B::Store(lanes, acc);
  for (; j < n; ++j) {
    const double d = a[j] - b[j];
    lanes[j & 3] += d * d;
  }
  return ReduceLanes(lanes);
}

template <class B>
double SumSqDiffAbandonImpl(const double* a, const double* b, size_t n,
                            double limit_sq) {
  typename B::Vec acc = B::Zero();
  size_t j = 0;
  while (j + 16 <= n) {
    for (size_t c = 0; c < 16; c += 4) {
      const typename B::Vec d =
          B::Sub(B::Load(a + j + c), B::Load(b + j + c));
      acc = B::Add(acc, B::Mul(d, d));
    }
    j += 16;
    const double partial = B::Reduce(acc);
    if (partial > limit_sq) return partial;
  }
  for (; j + 4 <= n; j += 4) {
    const typename B::Vec d = B::Sub(B::Load(a + j), B::Load(b + j));
    acc = B::Add(acc, B::Mul(d, d));
  }
  double lanes[4];
  B::Store(lanes, acc);
  for (; j < n; ++j) {
    const double d = a[j] - b[j];
    lanes[j & 3] += d * d;
  }
  return ReduceLanes(lanes);
}

template <class B>
double LbKeoghSqAbandonImpl(const double* lower, const double* upper,
                            const double* candidate, size_t n,
                            double limit_sq) {
  typename B::Vec acc = B::Zero();
  size_t j = 0;
  while (j + 16 <= n) {
    for (size_t c = 0; c < 16; c += 4) {
      const typename B::Vec cv = B::Load(candidate + j + c);
      const typename B::Vec uv = B::Load(upper + j + c);
      const typename B::Vec lv = B::Load(lower + j + c);
      const typename B::Vec over = B::GtZeroize(cv, uv, B::Sub(cv, uv));
      const typename B::Vec under = B::GtZeroize(lv, cv, B::Sub(lv, cv));
      acc = B::Add(acc, B::Mul(over, over));
      acc = B::Add(acc, B::Mul(under, under));
    }
    j += 16;
    const double partial = B::Reduce(acc);
    if (partial > limit_sq) return partial;
  }
  for (; j + 4 <= n; j += 4) {
    const typename B::Vec cv = B::Load(candidate + j);
    const typename B::Vec uv = B::Load(upper + j);
    const typename B::Vec lv = B::Load(lower + j);
    const typename B::Vec over = B::GtZeroize(cv, uv, B::Sub(cv, uv));
    const typename B::Vec under = B::GtZeroize(lv, cv, B::Sub(lv, cv));
    acc = B::Add(acc, B::Mul(over, over));
    acc = B::Add(acc, B::Mul(under, under));
  }
  double lanes[4];
  B::Store(lanes, acc);
  for (; j < n; ++j) {
    const double c = candidate[j];
    const double over = c > upper[j] ? c - upper[j] : 0.0;
    const double under = lower[j] > c ? lower[j] - c : 0.0;
    lanes[j & 3] += over * over;
    lanes[j & 3] += under * under;
  }
  return ReduceLanes(lanes);
}

template <class B>
void StandardizeImpl(const double* x, size_t n, double mean, double stddev,
                     double* out) {
  const typename B::Vec mean_v = B::Broadcast(mean);
  const typename B::Vec std_v = B::Broadcast(stddev);
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    B::Store(out + j, B::Div(B::Sub(B::Load(x + j), mean_v), std_v));
  }
  for (; j < n; ++j) out[j] = (x[j] - mean) / stddev;
}

// Naive complex product, deliberately NOT std::complex (whose __muldc3
// NaN-recovery path would diverge from any vector backend). This scalar
// body is the canonical spec; the AVX2 TU overrides it with a
// blend/movedup/permute/addsub sequence that performs the exact same
// lane-wise IEEE operations.
inline void SlideComplexBinsGeneric(double* reim, const double* twiddles_reim,
                                    size_t bins, double delta) {
  for (size_t i = 0; i < bins; ++i) {
    const double re = reim[2 * i] + delta;
    const double im = reim[2 * i + 1];
    const double cr = twiddles_reim[2 * i];
    const double ci = twiddles_reim[2 * i + 1];
    reim[2 * i] = re * cr - im * ci;
    reim[2 * i + 1] = im * cr + re * ci;
  }
}

template <class B>
KernelTable MakeTable(Isa isa, const char* name) {
  KernelTable t;
  t.isa = isa;
  t.name = name;
  t.sum = &SumImpl<B>;
  t.sum_sq = &SumSqImpl<B>;
  t.centered_sum_sq = &CenteredSumSqImpl<B>;
  t.sum_sq_diff = &SumSqDiffImpl<B>;
  t.sum_sq_diff_abandon = &SumSqDiffAbandonImpl<B>;
  t.lb_keogh_sq_abandon = &LbKeoghSqAbandonImpl<B>;
  t.standardize = &StandardizeImpl<B>;
  t.slide_complex_bins = &SlideComplexBinsGeneric;
  return t;
}

}  // namespace s2::simd::detail

#endif  // S2_SIMD_KERNELS_INL_H_
