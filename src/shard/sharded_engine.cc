#include "shard/sharded_engine.h"

#include <algorithm>
#include <latch>
#include <string>
#include <thread>
#include <utility>

#include "diag/check.h"
#include "diag/validate.h"
#include "dsp/stats.h"

namespace s2::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Gather phase for similarity verbs: per-shard answers already carry
/// *global* ids and exact distances for every candidate that can still
/// reach the global top-k, so sorting the union by (distance, id) and
/// truncating to k yields the exact global answer. The id tiebreak makes
/// the merge deterministic under any shard layout.
std::vector<index::Neighbor> MergeNeighbors(
    std::vector<std::vector<index::Neighbor>> locals, size_t k) {
  std::vector<index::Neighbor> merged;
  size_t total = 0;
  for (const auto& part : locals) total += part.size();
  merged.reserve(total);
  for (auto& part : locals) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const index::Neighbor& a, const index::Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

/// Gather phase for query-by-burst, using the burst table's own order:
/// descending BSim, ascending id. k == 0 keeps every positive match,
/// matching BurstTable::QueryByBurst.
std::vector<burst::BurstMatch> MergeBurstMatches(
    std::vector<std::vector<burst::BurstMatch>> locals, size_t k) {
  std::vector<burst::BurstMatch> merged;
  for (auto& part : locals) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const burst::BurstMatch& a, const burst::BurstMatch& b) {
              if (a.bsim != b.bsim) return a.bsim > b.bsim;
              return a.series_id < b.series_id;
            });
  if (k > 0 && merged.size() > k) merged.resize(k);
  return merged;
}

}  // namespace

Result<ShardedEngine> ShardedEngine::Build(ts::Corpus corpus,
                                           const Options& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("ShardedEngine: empty corpus");
  }
  size_t n = options.num_shards;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  n = std::min(n, corpus.size());

  // Train ONE summary configuration on the FULL corpus before partitioning:
  // coordinate ranks and quantization breakpoints become a pure function of
  // the corpus, never of the shard layout, which is what makes the
  // approximate tier's candidate sets and quality bounds bit-identical
  // across shard counts. Every shard engine adopts this config verbatim.
  core::S2Engine::Options engine_options = options.engine;
  if (engine_options.approx.enabled &&
      engine_options.approx.preset_config == nullptr) {
    std::vector<std::vector<double>> standardized;
    standardized.reserve(corpus.size());
    for (const ts::TimeSeries& series : corpus.series()) {
      standardized.push_back(dsp::Standardize(series.values));
    }
    S2_ASSIGN_OR_RETURN(
        approx::SummaryConfig config,
        approx::SummaryConfig::Train(standardized,
                                     engine_options.approx.summary));
    engine_options.approx.preset_config =
        std::make_shared<const approx::SummaryConfig>(std::move(config));
  }

  ShardedEngine engine;
  engine.pool_ = std::make_unique<exec::ThreadPool>(
      options.threads == 0 ? n : options.threads);
  engine.local_to_global_.resize(n);
  engine.placements_.reserve(corpus.size());

  // Round-robin split. Copies the series into per-shard corpora (the
  // engines own their slices); the original corpus is released afterwards.
  std::vector<ts::Corpus> slices(n);
  for (ts::SeriesId g = 0; g < corpus.size(); ++g) {
    const auto shard_idx = static_cast<uint32_t>(g % n);
    const ts::SeriesId local = slices[shard_idx].Add(corpus.at(g));
    engine.placements_.push_back({shard_idx, local});
    engine.local_to_global_[shard_idx].push_back(g);
  }

  // Parallel shard builds (index construction dominates; each build is
  // independent). A rejected Submit cannot happen on a fresh pool, but the
  // contract says handle it — run inline.
  engine.shards_.resize(n);
  std::vector<Status> statuses(n);
  std::latch done(static_cast<ptrdiff_t>(n));
  for (size_t s = 0; s < n; ++s) {
    auto build_one = [&engine, &slices, &statuses, &options, &engine_options,
                      &done, s] {
      core::S2Engine::Options shard_options = engine_options;
      if (!shard_options.disk_store_path.empty()) {
        shard_options.disk_store_path += ".shard" + std::to_string(s);
      }
      if (s < options.shard_envs.size() && options.shard_envs[s] != nullptr) {
        shard_options.env = options.shard_envs[s];
      }
      auto built = core::S2Engine::Build(std::move(slices[s]), shard_options);
      if (built.ok()) {
        engine.shards_[s] =
            std::make_unique<core::S2Engine>(std::move(built).ValueOrDie());
      } else {
        statuses[s] = built.status();
      }
      done.count_down();
    };
    if (!engine.pool_->Submit(build_one)) build_one();
  }
  done.wait();
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);

  S2_DCHECK_OK(engine.ValidateInvariants());
  return engine;
}

void ShardedEngine::ScatterGather(const std::function<void(size_t)>& fn,
                                  QueryStats* stats) const {
  const size_t n = shards_.size();
  if (stats != nullptr) {
    stats->fanout = n;
    stats->shard_latencies.assign(n, std::chrono::microseconds{0});
  }
  auto timed = [&fn, stats](size_t s) {
    const Clock::time_point start = Clock::now();
    fn(s);
    if (stats != nullptr) {
      // Distinct vector elements per shard: no synchronization needed.
      stats->shard_latencies[s] = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - start);
    }
  };
  if (n == 1) {
    timed(0);
    return;
  }
  std::latch done(static_cast<ptrdiff_t>(n - 1));
  for (size_t s = 1; s < n; ++s) {
    auto task = [&timed, &done, s] {
      timed(s);
      done.count_down();
    };
    // The pool only rejects during shutdown (engine teardown); the inline
    // fallback keeps the latch sound either way.
    if (!pool_->Submit(task)) task();
  }
  timed(0);
  done.wait();
}

Result<ShardedEngine::Placement> ShardedEngine::PlacementOf(ts::SeriesId id) const {
  if (id >= placements_.size()) {
    return Status::NotFound("ShardedEngine: bad series id");
  }
  return placements_[id];
}

Result<ts::SeriesId> ShardedEngine::FindByName(std::string_view name) const {
  // Cheap per-shard hash lookups; duplicates across shards resolve to the
  // smallest global id (the single-engine catalog keeps the first insert).
  ts::SeriesId best = ts::kInvalidSeriesId;
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto local = shards_[s]->FindByName(name);
    if (!local.ok()) continue;
    const ts::SeriesId global = GlobalId(s, *local);
    if (best == ts::kInvalidSeriesId || global < best) best = global;
  }
  if (best == ts::kInvalidSeriesId) {
    return Status::NotFound("ShardedEngine: no series named '" +
                            std::string(name) + "'");
  }
  return best;
}

Result<ts::SeriesId> ShardedEngine::AddSeries(ts::TimeSeries series) {
  // Least-loaded routing, ties to the lowest shard id: the strict `<` scan
  // from index 0 never replaces the target on an equal load, so the
  // placement of any AddSeries sequence is a pure function of the sequence
  // itself — never of map iteration order or timing. Starting from a
  // round-robin layout this reproduces round-robin, so shard balance is an
  // invariant, not an accident. Pinned by the placement-determinism
  // regression test in shard_equivalence_test.cc; don't "fix" the tie-break
  // without updating it.
  size_t target = 0;
  for (size_t s = 1; s < shards_.size(); ++s) {
    if (shards_[s]->corpus().size() < shards_[target]->corpus().size()) {
      target = s;
    }
  }
  S2_ASSIGN_OR_RETURN(ts::SeriesId local,
                      shards_[target]->AddSeries(std::move(series)));
  const auto global = static_cast<ts::SeriesId>(placements_.size());
  placements_.push_back({static_cast<uint32_t>(target), local});
  local_to_global_[target].push_back(global);
  S2_DCHECK_OK(ValidateInvariants());
  return global;
}

Status ShardedEngine::AppendPoint(ts::SeriesId id, double value) {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  return shards_[p.shard]->AppendPoint(p.local, value);
}

Status ShardedEngine::Compact() {
  for (const auto& shard : shards_) {
    S2_RETURN_NOT_OK(shard->Compact());
  }
  return Status::OK();
}

size_t ShardedEngine::TotalDeltaSize() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->delta_size();
  return total;
}

uint64_t ShardedEngine::TotalAppendCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->append_count();
  return total;
}

uint64_t ShardedEngine::TotalCompactionCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->compaction_count();
  return total;
}

Result<const ts::TimeSeries*> ShardedEngine::Series(ts::SeriesId id) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  return shards_[p.shard]->corpus().Get(p.local);
}

Status ShardedEngine::Subscribe(monitor::Subscription sub) {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(sub.series));
  const monitor::SubscriptionId sid = sub.id;
  // The shard registry keys on the local id; the subscription itself keeps
  // the global id, which is what its alerts report.
  S2_RETURN_NOT_OK(shards_[p.shard]->Subscribe(p.local, std::move(sub)));
  sub_shard_.emplace(sid, p.shard);
  return Status::OK();
}

Status ShardedEngine::RestoreSubscription(monitor::Subscription sub,
                                          bool engaged, uint32_t bin) {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(sub.series));
  const monitor::SubscriptionId sid = sub.id;
  S2_RETURN_NOT_OK(
      shards_[p.shard]->RestoreSubscription(p.local, std::move(sub), engaged,
                                            bin));
  sub_shard_.emplace(sid, p.shard);
  return Status::OK();
}

Status ShardedEngine::Unsubscribe(monitor::SubscriptionId id) {
  auto it = sub_shard_.find(id);
  if (it == sub_shard_.end()) {
    return Status::NotFound("ShardedEngine: no such subscription");
  }
  S2_RETURN_NOT_OK(shards_[it->second]->Unsubscribe(id));
  sub_shard_.erase(it);
  return Status::OK();
}

void ShardedEngine::set_alert_queue(monitor::AlertQueue* queue) {
  for (const auto& shard : shards_) shard->set_alert_queue(queue);
}

size_t ShardedEngine::ActiveSubscriptionCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->monitor_registry().size();
  return total;
}

std::vector<monitor::SubscriptionRegistry::Entry>
ShardedEngine::ListSubscriptions() const {
  std::vector<monitor::SubscriptionRegistry::Entry> all;
  for (const auto& shard : shards_) {
    std::vector<monitor::SubscriptionRegistry::Entry> entries =
        shard->monitor_registry().List();
    all.insert(all.end(), std::make_move_iterator(entries.begin()),
               std::make_move_iterator(entries.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const monitor::SubscriptionRegistry::Entry& a,
               const monitor::SubscriptionRegistry::Entry& b) {
              return a.sub.id < b.sub.id;
            });
  return all;
}

Result<std::vector<index::Neighbor>> ShardedEngine::SimilarTo(
    ts::SeriesId id, size_t k, QueryStats* stats) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  const std::vector<double>& z = shards_[p.shard]->standardized(p.local);

  const size_t n = shards_.size();
  index::SharedRadius shared;
  std::vector<std::vector<index::Neighbor>> locals(n);
  std::vector<Status> statuses(n);
  std::vector<index::VpTreeIndex::SearchStats> search_stats(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->SimilarToStandardized(
            z, k, s == p.shard ? p.local : ts::kInvalidSeriesId,
            &search_stats[s], &shared);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (index::Neighbor& nb : locals[s]) nb.id = GlobalId(s, nb.id);
        } else {
          statuses[s] = result.status();
        }
      },
      stats);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  if (stats != nullptr) {
    for (const auto& ss : search_stats) {
      stats->shared_radius_prunes += ss.shared_radius_prunes;
    }
  }
  return MergeNeighbors(std::move(locals), k);
}

Result<std::vector<index::Neighbor>> ShardedEngine::SimilarToSeries(
    const std::vector<double>& raw_values, size_t k, QueryStats* stats) const {
  // Standardize ONCE at the top — per-shard standardization would diverge
  // bitwise from the single-engine answer.
  const std::vector<double> z = dsp::Standardize(raw_values);

  const size_t n = shards_.size();
  index::SharedRadius shared;
  std::vector<std::vector<index::Neighbor>> locals(n);
  std::vector<Status> statuses(n);
  std::vector<index::VpTreeIndex::SearchStats> search_stats(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->SimilarToStandardized(
            z, k, ts::kInvalidSeriesId, &search_stats[s], &shared);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (index::Neighbor& nb : locals[s]) nb.id = GlobalId(s, nb.id);
        } else {
          statuses[s] = result.status();
        }
      },
      stats);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  if (stats != nullptr) {
    for (const auto& ss : search_stats) {
      stats->shared_radius_prunes += ss.shared_radius_prunes;
    }
  }
  return MergeNeighbors(std::move(locals), k);
}

Result<std::vector<index::Neighbor>> ShardedEngine::SimilarToDtw(
    ts::SeriesId id, size_t k, QueryStats* stats) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  const std::vector<double>& z = shards_[p.shard]->standardized(p.local);

  const size_t n = shards_.size();
  index::SharedRadius shared;
  std::vector<std::vector<index::Neighbor>> locals(n);
  std::vector<Status> statuses(n);
  std::vector<dtw::DtwKnnSearch::SearchStats> search_stats(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->SimilarToDtwStandardized(
            z, k, s == p.shard ? p.local : ts::kInvalidSeriesId,
            &search_stats[s], &shared);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (index::Neighbor& nb : locals[s]) nb.id = GlobalId(s, nb.id);
        } else {
          statuses[s] = result.status();
        }
      },
      stats);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  if (stats != nullptr) {
    for (const auto& ss : search_stats) {
      stats->shared_radius_prunes += ss.shared_radius_skips;
    }
  }
  return MergeNeighbors(std::move(locals), k);
}

Result<std::vector<index::Neighbor>> ShardedEngine::SimilarToExact(
    ts::SeriesId id, size_t k) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  const std::vector<double>& z = shards_[p.shard]->standardized(p.local);
  const size_t n = shards_.size();
  std::vector<std::vector<index::Neighbor>> locals(n);
  std::vector<Status> statuses(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->SimilarToStandardizedExact(
            z, k, s == p.shard ? p.local : ts::kInvalidSeriesId);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (index::Neighbor& nb : locals[s]) nb.id = GlobalId(s, nb.id);
        } else {
          statuses[s] = result.status();
        }
      },
      nullptr);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  return MergeNeighbors(std::move(locals), k);
}

Result<std::vector<index::Neighbor>> ShardedEngine::SimilarToSeriesExact(
    const std::vector<double>& raw_values, size_t k) const {
  const std::vector<double> z = dsp::Standardize(raw_values);
  const size_t n = shards_.size();
  std::vector<std::vector<index::Neighbor>> locals(n);
  std::vector<Status> statuses(n);
  ScatterGather(
      [&](size_t s) {
        auto result =
            shards_[s]->SimilarToStandardizedExact(z, k, ts::kInvalidSeriesId);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (index::Neighbor& nb : locals[s]) nb.id = GlobalId(s, nb.id);
        } else {
          statuses[s] = result.status();
        }
      },
      nullptr);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  return MergeNeighbors(std::move(locals), k);
}

Result<std::vector<index::Neighbor>> ShardedEngine::SimilarToDtwExact(
    ts::SeriesId id, size_t k) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  const std::vector<double>& z = shards_[p.shard]->standardized(p.local);
  const size_t n = shards_.size();
  std::vector<std::vector<index::Neighbor>> locals(n);
  std::vector<Status> statuses(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->SimilarToDtwStandardizedExact(
            z, k, s == p.shard ? p.local : ts::kInvalidSeriesId);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (index::Neighbor& nb : locals[s]) nb.id = GlobalId(s, nb.id);
        } else {
          statuses[s] = result.status();
        }
      },
      nullptr);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  return MergeNeighbors(std::move(locals), k);
}

Result<core::S2Engine::ApproxAnswer> ShardedEngine::ApproxKnn(
    ts::SeriesId id, const approx::QueryParams& params, QueryStats* stats,
    approx::ScanStats* scan_stats) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  const std::vector<double>& z = shards_[p.shard]->standardized(p.local);
  // Project ONCE on the owner; every shard shares the same global config
  // (Build trains it pre-partition), so the projection is shard-invariant.
  S2_ASSIGN_OR_RETURN(std::vector<double> proj,
                      shards_[p.shard]->ApproxProject(z));

  // Same population convention as the single engine: the query excluded.
  const size_t population = placements_.size() - 1;
  const size_t c = approx::ResolveCandidates(
      params, population, shards_[p.shard]->options().approx.summary);

  // Phase 1: every shard ranks its own slice's top-C candidates. The merge
  // keeps the global top-C by (lb_sq, global id) — exact, because any
  // global top-C member is by definition also in its own shard's top-C.
  const size_t n = shards_.size();
  std::vector<std::vector<approx::SummaryIndex::Candidate>> cand_locals(n);
  std::vector<Status> statuses(n);
  std::vector<approx::ScanStats> scan_locals(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->ApproxCandidates(
            proj, c, s == p.shard ? p.local : ts::kInvalidSeriesId,
            &scan_locals[s]);
        if (result.ok()) {
          cand_locals[s] = std::move(result).ValueOrDie();
          for (approx::SummaryIndex::Candidate& cand : cand_locals[s]) {
            cand.id = GlobalId(s, cand.id);
          }
        } else {
          statuses[s] = result.status();
        }
      },
      stats);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);

  std::vector<approx::SummaryIndex::Candidate> merged;
  for (const auto& part : cand_locals) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const approx::SummaryIndex::Candidate& a,
               const approx::SummaryIndex::Candidate& b) {
              if (a.lb_sq != b.lb_sq) return a.lb_sq < b.lb_sq;
              return a.id < b.id;
            });
  if (merged.size() > c) merged.resize(c);

  // Phase 2: verify each candidate on the shard that owns its row, under
  // one shared radius. Regrouping the globally sorted list preserves the
  // ascending (lb_sq, id) order each verifier's break condition relies on.
  std::vector<std::vector<approx::SummaryIndex::Candidate>> per_shard(n);
  for (const approx::SummaryIndex::Candidate& cand : merged) {
    const Placement owner = placements_[cand.id];
    per_shard[owner.shard].push_back({cand.lb_sq, owner.local});
  }
  index::SharedRadius shared;
  std::vector<std::vector<index::Neighbor>> locals(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->ApproxVerify(z, per_shard[s], params.k,
                                               &scan_locals[s], &shared);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (index::Neighbor& nb : locals[s]) nb.id = GlobalId(s, nb.id);
        } else {
          statuses[s] = result.status();
        }
      },
      nullptr);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  if (scan_stats != nullptr) {
    for (const approx::ScanStats& local : scan_locals) {
      scan_stats->rows_scanned += local.rows_scanned;
      scan_stats->summary_abandons += local.summary_abandons;
      scan_stats->candidates += local.candidates;
      scan_stats->verified += local.verified;
    }
  }

  core::S2Engine::ApproxAnswer answer;
  answer.neighbors = MergeNeighbors(std::move(locals), params.k);
  const double worst_lb_sq = merged.empty() ? 0.0 : merged.back().lb_sq;
  answer.bound = approx::BoundFromVerification(
      worst_lb_sq, merged.size(), population, answer.neighbors, params.k);
  return answer;
}

Result<std::vector<period::PeriodHit>> ShardedEngine::FindPeriods(
    ts::SeriesId id) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  return shards_[p.shard]->FindPeriods(p.local);
}

Result<std::vector<burst::BurstRegion>> ShardedEngine::BurstsOf(
    ts::SeriesId id, core::BurstHorizon horizon) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  return shards_[p.shard]->BurstsOf(p.local, horizon);
}

Result<std::vector<burst::BurstMatch>> ShardedEngine::QueryByBurst(
    ts::SeriesId id, size_t k, core::BurstHorizon horizon,
    QueryStats* stats) const {
  S2_ASSIGN_OR_RETURN(Placement p, PlacementOf(id));
  // The owner computes the query's burst regions (absolute days, exactly
  // the single-engine detection); every shard then scans its own burst
  // table, with the query series excluded only where it lives.
  S2_ASSIGN_OR_RETURN(std::vector<burst::BurstRegion> regions,
                      shards_[p.shard]->BurstsOf(p.local, horizon));
  const size_t n = shards_.size();
  std::vector<std::vector<burst::BurstMatch>> locals(n);
  ScatterGather(
      [&](size_t s) {
        locals[s] = shards_[s]->burst_table(horizon).QueryByBurst(
            regions, k, s == p.shard ? p.local : ts::kInvalidSeriesId);
        for (burst::BurstMatch& m : locals[s]) {
          m.series_id = GlobalId(s, m.series_id);
        }
      },
      stats);
  return MergeBurstMatches(std::move(locals), k);
}

Result<std::vector<burst::BurstMatch>> ShardedEngine::QueryByBurstSeries(
    const ts::TimeSeries& series, size_t k, core::BurstHorizon horizon,
    QueryStats* stats) const {
  // Each shard re-detects the query's bursts itself (deterministic and
  // cheap next to the table scan), then queries its own slice.
  const size_t n = shards_.size();
  std::vector<std::vector<burst::BurstMatch>> locals(n);
  std::vector<Status> statuses(n);
  ScatterGather(
      [&](size_t s) {
        auto result = shards_[s]->QueryByBurstSeries(series, k, horizon);
        if (result.ok()) {
          locals[s] = std::move(result).ValueOrDie();
          for (burst::BurstMatch& m : locals[s]) {
            m.series_id = GlobalId(s, m.series_id);
          }
        } else {
          statuses[s] = result.status();
        }
      },
      stats);
  for (const Status& status : statuses) S2_RETURN_NOT_OK(status);
  return MergeBurstMatches(std::move(locals), k);
}

uint64_t ShardedEngine::TotalRetryCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->retry_source() != nullptr) {
      total += shard->retry_source()->retry_count();
    }
  }
  return total;
}

uint64_t ShardedEngine::TotalGiveupCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    if (shard->retry_source() != nullptr) {
      total += shard->retry_source()->giveup_count();
    }
  }
  return total;
}

Status ShardedEngine::ValidateInvariants() const {
  for (const auto& shard : shards_) {
    S2_RETURN_NOT_OK(shard->ValidateInvariants());
  }

  diag::Validator v("ShardedEngine");
  v.Check(!shards_.empty()) << "no shards";
  v.Check(local_to_global_.size() == shards_.size())
      << "local_to_global covers " << local_to_global_.size() << " shards of "
      << shards_.size();
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    total += shards_[s]->corpus().size();
    if (s < local_to_global_.size()) {
      v.Check(local_to_global_[s].size() == shards_[s]->corpus().size())
          << "shard " << s << " maps " << local_to_global_[s].size()
          << " locals but holds " << shards_[s]->corpus().size() << " series";
    }
  }
  v.Check(placements_.size() == total)
      << "placement map covers " << placements_.size() << " ids but shards hold "
      << total << " series";
  for (ts::SeriesId g = 0; g < placements_.size(); ++g) {
    const Placement& p = placements_[g];
    if (p.shard >= local_to_global_.size() ||
        p.local >= local_to_global_[p.shard].size()) {
      v.Check(false) << "global id " << g << " placed out of range (shard "
                     << p.shard << ", local " << p.local << ")";
      continue;
    }
    v.Check(local_to_global_[p.shard][p.local] == g)
        << "placement maps disagree for global id " << g;
  }
  // Every shard must run the SAME summary configuration (or none at all) —
  // the approximate tier's shard-count invisibility depends on it.
  const approx::SummaryIndex* first_summary = shards_[0]->summary();
  for (size_t s = 1; s < shards_.size(); ++s) {
    const approx::SummaryIndex* summary = shards_[s]->summary();
    v.Check((summary == nullptr) == (first_summary == nullptr))
        << "shard " << s << " disagrees with shard 0 on approx-tier presence";
    if (summary != nullptr && first_summary != nullptr) {
      v.Check(summary->config().Fingerprint() ==
              first_summary->config().Fingerprint())
          << "shard " << s << " runs a different summary config than shard 0";
    }
  }
  size_t subs = 0;
  for (const auto& shard : shards_) subs += shard->monitor_registry().size();
  v.Check(sub_shard_.size() == subs)
      << "subscription routing map tracks " << sub_shard_.size()
      << " subscriptions but shard registries hold " << subs;
  for (const auto& [sub_id, shard] : sub_shard_) {
    v.Check(shard < shards_.size() &&
            shards_[shard]->monitor_registry().Contains(sub_id))
        << "subscription " << sub_id << " routed to shard " << shard
        << " which does not hold it";
  }
  return v.ToStatus();
}

}  // namespace s2::shard
