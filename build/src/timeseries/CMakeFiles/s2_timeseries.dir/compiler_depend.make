# Empty compiler generated dependencies file for s2_timeseries.
# This may be replaced when dependencies are built.
