# Empty compiler generated dependencies file for feature_store_test.
# This may be replaced when dependencies are built.
