#ifndef S2_STREAM_BURST_STREAM_H_
#define S2_STREAM_BURST_STREAM_H_

#include <deque>
#include <vector>

#include "burst/burst_detector.h"
#include "common/result.h"

namespace s2::stream {

/// Incremental moving-average burst detection over a sliding window:
/// maintains the paper's Section 6.1 detector state under slide-by-one
/// updates without re-running the standardize + moving-average pipeline.
///
/// The key identity: with population statistics, standardization is affine
/// (`z = (x - mu) / sigma`) and the trailing moving average is linear, so
///
///   MA_z(i) > Mean(MA_z) + c * StdDev(MA_z)
///     <=>  MA_x(i) > Mean(MA_x) + c * StdDev(MA_x)
///
/// — the burst-day predicate can be evaluated entirely in raw space; mu and
/// sigma cancel. Region averages convert back with the same affine map.
/// Per slide, the trailing MA with prefix clipping shifts: entries at index
/// >= w-1 (full windows) are reused unchanged, only the first w-1 clipped
/// entries and the new tail are recomputed — O(w) work per append plus O(1)
/// running-sum updates, versus the batch detector's O(N) standardize + MA
/// pass. `Regions()` extracts the over-cutoff runs with one comparison scan
/// of the cached MA (cheap: no divisions, no allocation-heavy pipeline).
///
/// Results agree with `burst::BurstDetector::Detect` on the same window up
/// to fp accumulation drift in the running sums (documented tolerance,
/// verified in stream_feature_test); a day whose MA sits within that drift
/// of the cutoff may flip sides. Re-creating the state re-anchors the sums.
class BurstStream {
 public:
  /// `window` must hold at least `options.window` samples (raw,
  /// unstandardized — standardization is handled internally per the
  /// identity above when `options.standardize` is set).
  static Result<BurstStream> Create(burst::BurstDetector::Options options,
                                    const std::vector<double>& window);

  /// Slides the window by one sample (front drops, `x_new` enters).
  /// Amortized O(options.window).
  void Slide(double x_new);

  /// Burst regions of the current window, positions window-local — the
  /// same coordinates `BurstDetector::Detect` reports.
  std::vector<burst::BurstRegion> Regions() const;

  /// Raw-space cutoff (Mean(MA_x) + c * StdDev(MA_x)); exposed for tests.
  double raw_cutoff() const;

 private:
  BurstStream(burst::BurstDetector::Options options, std::deque<double> x,
              std::deque<double> ma, double sum, double sumsq, double ma_sum,
              double ma_sumsq)
      : options_(options),
        x_(std::move(x)),
        ma_(std::move(ma)),
        sum_(sum),
        sumsq_(sumsq),
        ma_sum_(ma_sum),
        ma_sumsq_(ma_sumsq) {}

  burst::BurstDetector::Options options_;
  std::deque<double> x_;   // Raw window.
  std::deque<double> ma_;  // Raw-space trailing moving average of x_.
  double sum_;             // Running sums over x_.
  double sumsq_;
  double ma_sum_;          // Running sums over ma_.
  double ma_sumsq_;
};

}  // namespace s2::stream

#endif  // S2_STREAM_BURST_STREAM_H_
