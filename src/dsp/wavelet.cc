#include "dsp/wavelet.h"

#include <cmath>

#include "dsp/fft.h"

namespace s2::dsp {

namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

Result<std::vector<double>> HaarForward(const std::vector<double>& x) {
  if (x.empty() || !IsPowerOfTwo(x.size())) {
    return Status::InvalidArgument("HaarForward: length must be a power of two");
  }
  std::vector<double> coeffs = x;
  std::vector<double> scratch(x.size());
  // Each pass halves the approximation band: averages land in the front,
  // details in the back half of the active region.
  for (size_t len = x.size(); len > 1; len /= 2) {
    for (size_t i = 0; i < len / 2; ++i) {
      scratch[i] = (coeffs[2 * i] + coeffs[2 * i + 1]) * kInvSqrt2;
      scratch[len / 2 + i] = (coeffs[2 * i] - coeffs[2 * i + 1]) * kInvSqrt2;
    }
    for (size_t i = 0; i < len; ++i) coeffs[i] = scratch[i];
  }
  return coeffs;
}

Result<std::vector<double>> HaarInverse(const std::vector<double>& coeffs) {
  if (coeffs.empty() || !IsPowerOfTwo(coeffs.size())) {
    return Status::InvalidArgument("HaarInverse: length must be a power of two");
  }
  std::vector<double> x = coeffs;
  std::vector<double> scratch(coeffs.size());
  for (size_t len = 2; len <= x.size(); len *= 2) {
    for (size_t i = 0; i < len / 2; ++i) {
      scratch[2 * i] = (x[i] + x[len / 2 + i]) * kInvSqrt2;
      scratch[2 * i + 1] = (x[i] - x[len / 2 + i]) * kInvSqrt2;
    }
    for (size_t i = 0; i < len; ++i) x[i] = scratch[i];
  }
  return x;
}

}  // namespace s2::dsp
