file(REMOVE_RECURSE
  "CMakeFiles/disk_burst_table_test.dir/disk_burst_table_test.cc.o"
  "CMakeFiles/disk_burst_table_test.dir/disk_burst_table_test.cc.o.d"
  "disk_burst_table_test"
  "disk_burst_table_test.pdb"
  "disk_burst_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_burst_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
