#include <atomic>
#include <cstdlib>
#include <string>

#include "simd/kernels.h"
#include "simd/simd.h"

namespace s2::simd {

// Defined in the per-ISA translation units that the build included.
const KernelTable* ScalarTable();
#if defined(S2_SIMD_HAS_SSE2)
const KernelTable* Sse2Table();
#endif
#if defined(S2_SIMD_HAS_AVX2)
const KernelTable* Avx2Table();
#endif
#if defined(S2_SIMD_HAS_NEON)
const KernelTable* NeonTable();
#endif

namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Best backend this binary + CPU can run: AVX2 when CPUID says so, else
// the architecture baseline (SSE2 on x86-64, NEON on aarch64), else
// scalar.
const KernelTable* BestTable() {
#if defined(S2_SIMD_HAS_AVX2)
  if (CpuHasAvx2()) return Avx2Table();
#endif
#if defined(S2_SIMD_HAS_SSE2)
  return Sse2Table();
#elif defined(S2_SIMD_HAS_NEON)
  return NeonTable();
#else
  return ScalarTable();
#endif
}

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

// Resolves the S2_SIMD environment override. Unknown or unavailable
// values deliberately degrade to scalar (never upward): the variable
// exists to turn vectorization off, so a typo must not silently leave it
// on.
const KernelTable* TableFromEnv() {
  const char* env = std::getenv("S2_SIMD");
  if (env == nullptr || *env == '\0') return BestTable();
  const std::string mode = Lower(env);
  if (mode == "auto" || mode == "on") return BestTable();
  if (const KernelTable* t = TableFor(Isa::kSse2); t && mode == "sse2") {
    return t;
  }
  if (const KernelTable* t = TableFor(Isa::kAvx2); t && mode == "avx2") {
    return t;
  }
  if (const KernelTable* t = TableFor(Isa::kNeon); t && mode == "neon") {
    return t;
  }
  return ScalarTable();
}

// Resolved lazily on first kernel call; SetIsa/Configure store directly,
// ResetDispatch clears back to lazy. The pointer is atomic so a pin from
// a test thread is safe, but callers already inside a kernel use the
// table they resolved — bit-compatibility makes that a non-event.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* Resolve() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  const KernelTable* fresh = TableFromEnv();
  const KernelTable* expected = nullptr;
  if (g_active.compare_exchange_strong(expected, fresh,
                                       std::memory_order_acq_rel)) {
    return fresh;
  }
  return expected;
}

}  // namespace

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return ScalarTable();
    case Isa::kSse2:
#if defined(S2_SIMD_HAS_SSE2)
      return Sse2Table();
#else
      return nullptr;
#endif
    case Isa::kAvx2:
#if defined(S2_SIMD_HAS_AVX2)
      return CpuHasAvx2() ? Avx2Table() : nullptr;
#else
      return nullptr;
#endif
    case Isa::kNeon:
#if defined(S2_SIMD_HAS_NEON)
      return NeonTable();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelTable& ActiveTable() { return *Resolve(); }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa ActiveIsa() { return ActiveTable().isa; }

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    if (TableFor(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

Status SetIsa(Isa isa) {
  const KernelTable* t = TableFor(isa);
  if (t == nullptr) {
    return Status::Unavailable(std::string("simd backend not available: ") +
                               IsaName(isa));
  }
  g_active.store(t, std::memory_order_release);
  return Status::OK();
}

Status Configure(std::string_view mode) {
  const std::string m = Lower(mode);
  if (m.empty() || m == "auto" || m == "on") {
    g_active.store(TableFromEnv(), std::memory_order_release);
    return Status::OK();
  }
  if (m == "off" || m == "scalar") return SetIsa(Isa::kScalar);
  if (m == "sse2") return SetIsa(Isa::kSse2);
  if (m == "avx2") return SetIsa(Isa::kAvx2);
  if (m == "neon") return SetIsa(Isa::kNeon);
  return Status::InvalidArgument("unknown simd mode: " + m);
}

void ResetDispatch() { g_active.store(nullptr, std::memory_order_release); }

double Sum(const double* x, size_t n) { return ActiveTable().sum(x, n); }

double SumSq(const double* x, size_t n) { return ActiveTable().sum_sq(x, n); }

double CenteredSumSq(const double* x, size_t n, double mean) {
  return ActiveTable().centered_sum_sq(x, n, mean);
}

double SumSqDiff(const double* a, const double* b, size_t n) {
  return ActiveTable().sum_sq_diff(a, b, n);
}

double SumSqDiffAbandon(const double* a, const double* b, size_t n,
                        double limit_sq) {
  return ActiveTable().sum_sq_diff_abandon(a, b, n, limit_sq);
}

double LbKeoghSqAbandon(const double* lower, const double* upper,
                        const double* candidate, size_t n, double limit_sq) {
  return ActiveTable().lb_keogh_sq_abandon(lower, upper, candidate, n,
                                           limit_sq);
}

void Standardize(const double* x, size_t n, double mean, double stddev,
                 double* out) {
  ActiveTable().standardize(x, n, mean, stddev, out);
}

void SlideComplexBins(double* reim, const double* twiddles_reim, size_t bins,
                      double delta) {
  ActiveTable().slide_complex_bins(reim, twiddles_reim, bins, delta);
}

}  // namespace s2::simd
