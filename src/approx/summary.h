#ifndef S2_APPROX_SUMMARY_H_
#define S2_APPROX_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/knn.h"
#include "io/env.h"
#include "repr/row_matrix.h"
#include "timeseries/time_series.h"

namespace s2::approx {

/// # The approximate-first, exact-verify tier (DESIGN.md §13)
///
/// The Lernaean Hydra studies show that at scale, exact similarity search is
/// dominated by a two-phase design: a *summarization index* small enough to
/// scan in microseconds produces a candidate set, and an exact second pass
/// re-ranks only those candidates. This module is that first phase.
///
/// The summary is iSAX-flavored but built on the repr layer the engine
/// already maintains: every standardized series is projected onto the
/// `dims` highest-corpus-energy coordinates of its weighted half spectrum
/// (a coordinate = one (bin, re|im) component scaled by sqrt(multiplicity),
/// so by Parseval the projection-space Euclidean distance lower-bounds the
/// true time-domain distance). Each coordinate is then quantized against
/// per-dimension equi-depth breakpoints (the symbolic "word"); what the scan
/// stores per series is the word's cell envelope `[lo, hi]`, widened to
/// contain the actual value so post-freeze inserts and slid windows stay
/// sound. Envelopes live in two cache-aligned `repr::RowMatrix` planes and
/// are batch-scanned with the vectorized `lb_keogh_sq_abandon` kernel — the
/// per-series summary lower bound is exactly an LB_Keogh against the
/// query's projection.
///
/// Soundness chain (all in the squared domain):
///   lb_sq(q, s) = sum_d gap(q_d, [lo_d, hi_d])^2
///              <= sum_d (q_d - v_d)^2            (v_d in [lo_d, hi_d])
///              <= ||z_q - z_s||^2                 (orthonormal projection)
/// so pruning by `lb_sq` can never lose a true neighbor, and the worst
/// candidate lower bound certifies a per-query quality bound (see
/// `QualityBound`).

/// Tuning knobs for training a summary configuration.
struct SummaryOptions {
  /// Summary coordinates retained per series (clamped to the number of
  /// spectrum components available).
  size_t dims = 16;
  /// Quantization cells per dimension (equi-depth over the training
  /// corpus). More cells = tighter envelopes = better pruning.
  size_t cells = 64;
  /// Candidate-set size as a fraction of the population when the request
  /// sets no explicit knob (see ResolveCandidates).
  double default_candidate_fraction = 0.02;
  /// Floor on the resolved candidate count — tiny corpora just verify
  /// everything.
  size_t min_candidates = 64;
  /// The recall the default fraction is calibrated for; requests asking for
  /// more ramp the candidate count hyperbolically (see ResolveCandidates).
  double calibrated_recall = 0.9;
};

/// A frozen summary configuration: which spectrum coordinates to project
/// onto and where the quantization breakpoints sit. Trained once on a
/// corpus (`Train`), then shared verbatim by every shard — the sharded
/// engine trains on the full corpus *before* partitioning so projections
/// and candidate ranks are bit-identical across shard counts.
struct SummaryConfig {
  /// Projection width (number of retained coordinates).
  size_t dims = 0;
  /// Quantization cells per dimension.
  size_t cells = 0;
  /// Time-domain series length this config was trained for.
  uint32_t series_length = 0;
  /// Per-coordinate half-spectrum bin index (ascending energy rank).
  std::vector<uint32_t> bins;
  /// Per-coordinate component selector: 0 = real part, 1 = imaginary part.
  std::vector<uint8_t> parts;
  /// Per-coordinate weight sqrt(multiplicity(bin)) — makes projection-space
  /// distance a lower bound of the true distance (Parseval).
  std::vector<double> weights;
  /// Per-dimension breakpoints, `dims * (cells + 1)` ascending values:
  /// dimension d owns edges [d*(cells+1), (d+1)*(cells+1)).
  std::vector<double> edges;

  /// Trains a configuration on standardized rows: ranks coordinates by
  /// total corpus energy (ties broken by (bin, part) so the choice is a
  /// pure function of the corpus) and places equi-depth breakpoints at the
  /// per-dimension corpus quantiles.
  static Result<SummaryConfig> Train(
      const std::vector<std::vector<double>>& standardized,
      const SummaryOptions& options);

  /// Projects one standardized series onto the configured coordinates.
  /// `out` is resized to `dims`.
  Status Project(const std::vector<double>& z, std::vector<double>* out) const;

  /// Structural self-check (shape agreement, ascending edges).
  Status Validate() const;

  /// Order-sensitive content fingerprint — equal configs (the cross-shard
  /// and rebuild-determinism contract) have equal fingerprints.
  uint64_t Fingerprint() const;
};

/// Per-scan instrumentation.
struct ScanStats {
  /// Summary rows whose lower bound was evaluated.
  size_t rows_scanned = 0;
  /// Summary rows abandoned mid-bound (partial already above the heap
  /// threshold).
  size_t summary_abandons = 0;
  /// Candidates handed to the exact verifier.
  size_t candidates = 0;
  /// Candidates whose exact distance was fully computed (not pruned by the
  /// shared radius, not early-abandoned).
  size_t verified = 0;
};

/// The per-query answer-quality report of the approximate tier.
///
/// `threshold_lb` is sqrt of the worst (largest) summary lower bound in the
/// final candidate set: every series *outside* the candidate set provably
/// sits at distance >= threshold_lb. Hence:
///   - if the verified k-th distance R < threshold_lb (or the candidate set
///     covered the whole population), the answer is exact: `guaranteed_exact`.
///   - otherwise the true k-th distance is somewhere in
///     [threshold_lb, R], so R/threshold_lb - 1 bounds the observed relative
///     error: `epsilon`.
struct QualityBound {
  /// The returned neighbors are provably the exact top-k (by distance).
  bool guaranteed_exact = false;
  /// Observed epsilon: the k-th returned distance is within (1 + epsilon)
  /// of the true k-th distance. 0 when exact; +infinity when the scan
  /// cannot bound it (e.g. fewer than k candidates).
  double epsilon = 0.0;
  /// Proven lower bound on the distance of any non-candidate.
  double threshold_lb = 0.0;
  /// Candidate-set size that was exactly verified.
  size_t candidates = 0;
  /// Population the candidates were drawn from (query excluded).
  size_t population = 0;
};

/// Per-request quality knobs, resolved to a candidate count by
/// `ResolveCandidates`. Both zero = the configured default fraction.
struct QueryParams {
  size_t k = 10;
  /// Requested recall in (0, 1]; drives the candidate-count ramp. 0 = unset.
  double recall_target = 0.0;
  /// Explicit candidate-set size; takes precedence over recall_target.
  /// >= population degenerates to exact search. 0 = unset.
  size_t max_candidates = 0;
};

/// Maps the request knobs to a candidate count over `population` series.
/// Explicit `max_candidates` wins; otherwise the configured default
/// fraction, ramped hyperbolically for recall targets above the calibration
/// point (halving the recall gap doubles the candidate budget).
size_t ResolveCandidates(const QueryParams& params, size_t population,
                         const SummaryOptions& options);

/// Computes the quality bound after verification. `worst_lb_sq` is the
/// largest summary lower bound (squared) in the verified candidate set;
/// `neighbors` is the merged, (distance, id)-sorted answer. Deterministic:
/// the sharded gather feeds it the same inputs as a single engine.
QualityBound BoundFromVerification(double worst_lb_sq, size_t num_candidates,
                                   size_t population,
                                   const std::vector<index::Neighbor>& neighbors,
                                   size_t k);

/// The summary index itself: one envelope row pair per series, slot == the
/// engine's dense series id. Mutations mirror the engine's write path —
/// `Append` for AddSeries, `Update` for a slid window — under the frozen
/// config, so a rebuild from the same corpus is bit-identical
/// (checkpoint-recovery determinism).
///
/// Thread compatibility matches the engine: `Candidates` is const and safe
/// for concurrent readers; Append/Update are writer calls serialized by the
/// owner.
class SummaryIndex {
 public:
  /// One scan result: the summary lower bound (squared) and the series.
  /// Ordered lexicographically by (lb_sq, id) everywhere — the candidate
  /// ranking is deterministic and shard-invariant.
  struct Candidate {
    double lb_sq = 0.0;
    ts::SeriesId id = ts::kInvalidSeriesId;
  };

  /// Builds envelopes for every row under `config` (row i = series id i).
  static Result<SummaryIndex> Build(
      SummaryConfig config,
      const std::vector<std::vector<double>>& standardized);

  SummaryIndex(SummaryIndex&&) noexcept = default;
  SummaryIndex& operator=(SummaryIndex&&) noexcept = default;

  /// Summarizes one new series as id `size()` (engine AddSeries).
  Status Append(const std::vector<double>& z);

  /// Re-summarizes `id` after its window slid (engine AppendPoint).
  Status Update(ts::SeriesId id, const std::vector<double>& z);

  /// The top-`c` candidates for `proj` (a `Project`ed query) by ascending
  /// (lb_sq, id), scanning ids ascending with the batched LB kernel and
  /// early abandon against the running c-th bound. `exclude` (the query
  /// itself) is skipped. Result is sorted ascending by (lb_sq, id).
  std::vector<Candidate> Candidates(const std::vector<double>& proj, size_t c,
                                    ts::SeriesId exclude,
                                    ScanStats* stats = nullptr) const;

  size_t size() const { return size_; }
  const SummaryConfig& config() const { return config_; }

  /// Approximate resident bytes of the envelope planes (introspection).
  size_t SummaryBytes() const;

  /// Serializes config + envelopes as one committed generation (same
  /// durable idiom as VpTreeIndex::Save).
  Status Save(const std::string& path, io::Env* env = nullptr) const;

  /// Loads an index written by `Save`; any corruption yields a Status
  /// (callers rebuild from the corpus), never UB.
  static Result<SummaryIndex> Load(const std::string& path,
                                   io::Env* env = nullptr);

  /// Structural self-check: config validity, plane shape agreement,
  /// lo <= hi everywhere, finite envelopes.
  Status Validate() const;

 private:
  SummaryIndex(SummaryConfig config, repr::RowMatrix lower,
               repr::RowMatrix upper, size_t size)
      : config_(std::move(config)),
        lower_(std::move(lower)),
        upper_(std::move(upper)),
        size_(size) {}

  /// Writes the envelope for projection `proj` into slot `slot`.
  void WriteEnvelope(size_t slot, const std::vector<double>& proj);

  /// Grows the envelope planes to hold at least `needed` rows.
  void Reserve(size_t needed);

  SummaryConfig config_;
  /// Envelope planes, row i = series i: per-dimension cell [lo, hi]
  /// widened to contain the series' actual projection value. Capacity may
  /// exceed size_ (amortized growth); rows >= size_ are unused.
  repr::RowMatrix lower_;
  repr::RowMatrix upper_;
  size_t size_ = 0;
};

}  // namespace s2::approx

#endif  // S2_APPROX_SUMMARY_H_
