# Empty compiler generated dependencies file for bench_period_threshold.
# This may be replaced when dependencies are built.
