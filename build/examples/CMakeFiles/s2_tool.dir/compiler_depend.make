# Empty compiler generated dependencies file for s2_tool.
# This may be replaced when dependencies are built.
