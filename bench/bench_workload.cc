// Reproduces paper Figures 1-3: the demand curves for "cinema", "easter"
// and "elvis" over one calendar year (2002), plus the multi-year views used
// later. Prints ASCII charts of the synthesized archetypes and summary
// statistics demonstrating the planted structure.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dsp/stats.h"
#include "querylog/archetypes.h"
#include "querylog/synthesizer.h"
#include "timeseries/calendar.h"

namespace s2 {
namespace {

void ShowYear(const qlog::QueryArchetype& archetype, int year, Rng* rng) {
  const int32_t start = ts::DateToDayIndex({year, 1, 1});
  const size_t days = static_cast<size_t>(ts::DaysInYear(year));
  auto series = qlog::Synthesize(archetype, start, days, rng);
  if (!series.ok()) {
    std::printf("synthesis failed: %s\n", series.status().ToString().c_str());
    return;
  }
  std::printf("\nQuery: %s (%d)\n", archetype.name.c_str(), year);
  bench::PrintAsciiChart(series->values, 10, 96);
  bench::PrintMonthRuler(days, 96);

  // Weekday profile: mean demand per day of week.
  double by_dow[7] = {0};
  int counts[7] = {0};
  for (size_t i = 0; i < series->size(); ++i) {
    const int dow = ts::DayOfWeek(start + static_cast<int32_t>(i));
    by_dow[dow] += series->values[i];
    ++counts[dow];
  }
  std::printf("  weekday means:");
  static const char* kDays[] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  for (int d = 0; d < 7; ++d) {
    std::printf(" %s=%.0f", kDays[d], by_dow[d] / counts[d]);
  }
  std::printf("\n");

  // Peak day.
  size_t argmax = 0;
  for (size_t i = 1; i < series->size(); ++i) {
    if (series->values[i] > series->values[argmax]) argmax = i;
  }
  std::printf("  peak demand on %s (%.0f requests)\n",
              ts::FormatDayIndex(start + static_cast<int32_t>(argmax)).c_str(),
              series->values[argmax]);
}

}  // namespace
}  // namespace s2

int main() {
  using namespace s2;
  bench::PrintHeader(
      "Figures 1-3: query demand patterns for 2002 (synthetic MSN-log "
      "archetypes)");
  Rng rng(2002);

  // Figure 1: "cinema" - 52 weekend peaks.
  ShowYear(qlog::MakeCinema(), 2002, &rng);
  // Figure 2: "easter" - spring accumulation, immediate drop.
  ShowYear(qlog::MakeEaster(), 2002, &rng);
  // Figure 3: "elvis" - peak on Aug 16 (death anniversary).
  ShowYear(qlog::MakeElvis(), 2002, &rng);

  bench::PrintHeader("Supporting archetypes used by later experiments");
  ShowYear(qlog::MakeFullMoon(), 2002, &rng);
  ShowYear(qlog::MakeNordstrom(), 2002, &rng);
  ShowYear(qlog::MakeHalloween(), 2002, &rng);
  ShowYear(qlog::MakeFlowers(), 2002, &rng);
  // "dudley moore" died 2002-03-27.
  ShowYear(qlog::MakeDudleyMoore(ts::DateToDayIndex({2002, 3, 27})), 2002, &rng);
  return 0;
}
