#include "dsp/periodogram.h"

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"

namespace s2::dsp {
namespace {

std::vector<double> Sinusoid(size_t n, double period, double amplitude) {
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = amplitude * std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
  }
  return x;
}

TEST(PeriodogramTest, SizeIsHalfPlusOne) {
  auto psd = PeriodogramOf(std::vector<double>(64, 1.0));
  ASSERT_TRUE(psd.ok());
  EXPECT_EQ(psd->size(), 33u);
  auto odd = PeriodogramOf(std::vector<double>(65, 1.0));
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->size(), 33u);
}

TEST(PeriodogramTest, ConstantSignalIsAllDc) {
  auto psd = PeriodogramOf(std::vector<double>(32, 2.0));
  ASSERT_TRUE(psd.ok());
  EXPECT_GT((*psd)[0], 0.0);
  for (size_t k = 1; k < psd->size(); ++k) EXPECT_NEAR((*psd)[k], 0.0, 1e-18);
}

TEST(PeriodogramTest, PeakAtPlantedPeriod) {
  const size_t n = 512;
  const double period = 8.0;  // Bin 64.
  auto psd = PeriodogramOf(Sinusoid(n, period, 1.0));
  ASSERT_TRUE(psd.ok());
  size_t argmax = 0;
  for (size_t k = 1; k < psd->size(); ++k) {
    if ((*psd)[k] > (*psd)[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 64u);
  EXPECT_NEAR(BinToPeriod(argmax, n), period, 1e-9);
}

TEST(PeriodogramTest, WeeklyPeakInYearLongSeries) {
  // 365 days with a 7-day cycle: the peak lands at bin 52 (period 7.02).
  const size_t n = 365;
  auto psd = PeriodogramOf(Sinusoid(n, 7.0, 1.0));
  ASSERT_TRUE(psd.ok());
  size_t argmax = 1;
  for (size_t k = 1; k < psd->size(); ++k) {
    if ((*psd)[k] > (*psd)[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 52u);
  EXPECT_NEAR(BinToPeriod(argmax, n), 7.02, 0.01);
}

TEST(PeriodogramTest, SumEqualsSignalEnergyForStandardizedInput) {
  // With conjugate symmetry, sum_k m_k P_k == energy; summing the half-range
  // with doubled interior bins reproduces Parseval.
  Rng rng(11);
  std::vector<double> x(256);
  for (double& v : x) v = rng.Normal(0, 1);
  auto spectrum = ForwardDft(x);
  ASSERT_TRUE(spectrum.ok());
  const std::vector<double> psd = Periodogram(*spectrum);
  double total = 0.0;
  for (size_t k = 0; k < psd.size(); ++k) {
    const bool edge = k == 0 || k == x.size() / 2;
    total += (edge ? 1.0 : 2.0) * psd[k];
  }
  EXPECT_NEAR(total, Energy(x), 1e-6 * Energy(x));
}

TEST(PeriodogramTest, BinToPeriodEdgeCases) {
  EXPECT_TRUE(std::isinf(BinToPeriod(0, 100)));
  EXPECT_DOUBLE_EQ(BinToPeriod(1, 100), 100.0);
  EXPECT_DOUBLE_EQ(BinToPeriod(50, 100), 2.0);
}

}  // namespace
}  // namespace s2::dsp
