file(REMOVE_RECURSE
  "CMakeFiles/s2_period.dir/period_detector.cc.o"
  "CMakeFiles/s2_period.dir/period_detector.cc.o.d"
  "libs2_period.a"
  "libs2_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
