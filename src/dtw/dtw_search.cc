#include "dtw/dtw_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dtw/dtw.h"
#include "repr/half_spectrum.h"

namespace s2::dtw {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Result<DtwKnnSearch> DtwKnnSearch::Create(
    std::vector<repr::CompressedSpectrum> features, Options options) {
  for (const auto& feature : features) {
    if (!repr::MethodCompatibleWith(repr::BoundMethod::kBestMinError,
                                    feature.kind()) &&
        !repr::MethodCompatibleWith(repr::BoundMethod::kWang, feature.kind())) {
      return Status::InvalidArgument(
          "DtwKnnSearch: features must support an upper bound (error kinds)");
    }
  }
  return DtwKnnSearch(std::move(features), options);
}

Result<DtwKnnSearch> DtwKnnSearch::BuildFeatures(
    const std::vector<std::vector<double>>& rows, Options options) {
  std::vector<repr::CompressedSpectrum> features;
  features.reserve(rows.size());
  for (const auto& row : rows) {
    S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                        repr::HalfSpectrum::FromSeries(row));
    S2_ASSIGN_OR_RETURN(
        repr::CompressedSpectrum compressed,
        repr::CompressedSpectrum::Compress(spectrum, repr::ReprKind::kBestKError,
                                           options.budget_c));
    features.push_back(std::move(compressed));
  }
  return Create(std::move(features), options);
}

Status DtwKnnSearch::AddFeature(repr::CompressedSpectrum feature) {
  if (!repr::MethodCompatibleWith(repr::BoundMethod::kBestMinError,
                                  feature.kind()) &&
      !repr::MethodCompatibleWith(repr::BoundMethod::kWang, feature.kind())) {
    return Status::InvalidArgument(
        "DtwKnnSearch: feature must support an upper bound (error kinds)");
  }
  features_.push_back(std::move(feature));
  return Status::OK();
}

Status DtwKnnSearch::UpdateFeature(ts::SeriesId id,
                                   repr::CompressedSpectrum feature) {
  if (id >= features_.size()) {
    return Status::NotFound("DtwKnnSearch: id out of range");
  }
  if (!repr::MethodCompatibleWith(repr::BoundMethod::kBestMinError,
                                  feature.kind()) &&
      !repr::MethodCompatibleWith(repr::BoundMethod::kWang, feature.kind())) {
    return Status::InvalidArgument(
        "DtwKnnSearch: feature must support an upper bound (error kinds)");
  }
  features_[id] = std::move(feature);
  return Status::OK();
}

Result<std::vector<index::Neighbor>> DtwKnnSearch::Search(
    const std::vector<double>& query, size_t k, storage::SequenceSource* source,
    SearchStats* stats, index::SharedRadius* shared) const {
  if (k == 0) return Status::InvalidArgument("DtwKnnSearch: k must be > 0");
  if (source == nullptr) {
    return Status::InvalidArgument("DtwKnnSearch: source must not be null");
  }
  if (source->num_series() != features_.size()) {
    return Status::InvalidArgument("DtwKnnSearch: source/features size mismatch");
  }
  if (query.size() != source->series_length()) {
    return Status::InvalidArgument("DtwKnnSearch: query length mismatch");
  }
  SearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Phase 1: linear-cost Euclidean upper bounds from the compressed
  // features. They upper-bound DTW, so the k-th smallest seeds the radius.
  struct Scored {
    ts::SeriesId id;
    double ub;
  };
  std::vector<Scored> order;
  order.reserve(features_.size());
  index::BestList seed(k);
  if (options_.use_compressed_upper_bounds) {
    S2_ASSIGN_OR_RETURN(repr::HalfSpectrum spectrum,
                        repr::HalfSpectrum::FromSeries(query));
    for (ts::SeriesId id = 0; id < features_.size(); ++id) {
      const repr::BoundMethod method =
          repr::MethodCompatibleWith(repr::BoundMethod::kBestMinError,
                                     features_[id].kind())
              ? repr::BoundMethod::kBestMinError
              : repr::BoundMethod::kWang;
      S2_ASSIGN_OR_RETURN(repr::DistanceBounds bounds,
                          repr::ComputeBounds(spectrum, features_[id], method));
      ++stats->upper_bounds_computed;
      order.push_back({id, bounds.upper});
      seed.Offer(id, bounds.upper);
    }
    std::sort(order.begin(), order.end(),
              [](const Scored& a, const Scored& b) { return a.ub < b.ub; });
  } else {
    for (ts::SeriesId id = 0; id < features_.size(); ++id) {
      order.push_back({id, kInf});
    }
  }

  // The seed threshold is witnessed by k compressed upper bounds, each of
  // which dominates a real DTW distance in this partition — a sound global
  // bound to publish before any DP has run.
  if (shared != nullptr && std::isfinite(seed.Threshold())) {
    shared->Tighten(seed.Threshold());
  }

  // Phase 2 & 3: envelope once, then cascade per candidate.
  S2_ASSIGN_OR_RETURN(Envelope envelope, ComputeEnvelope(query, options_.window));
  index::BestList best(k);
  double radius = seed.Threshold();  // k-th smallest UB (or +inf).
  for (const Scored& scored : order) {
    const double local = std::min(radius, best.Threshold());
    double current = local;
    if (shared != nullptr) current = std::min(current, shared->load());
    // Gate in the squared domain throughout: LbKeoghSq and the DP both
    // produce squared values whose early-abandoned partials exceed the
    // limit by construction, so `sq <= current_sq` accepts exactly the
    // complete values. Comparing sqrt(sq) against `current` instead can
    // round an abandoned partial down onto the threshold and admit a
    // truncated distance (see dsp::SquaredEuclideanEarlyAbandon).
    const double local_sq = std::isinf(local) ? kInf : local * local;
    const double current_sq = std::isinf(current) ? kInf : current * current;
    S2_ASSIGN_OR_RETURN(std::vector<double> row, source->Get(scored.id));
    if (options_.use_lb_keogh) {
      S2_ASSIGN_OR_RETURN(double lb_sq, LbKeoghSq(envelope, row, current_sq));
      ++stats->lb_keogh_computed;
      if (lb_sq > current_sq) {
        ++stats->lb_keogh_skips;
        if (lb_sq <= local_sq) ++stats->shared_radius_skips;
        continue;
      }
    }
    S2_ASSIGN_OR_RETURN(double dist_sq,
                        DtwDistanceEarlyAbandonSq(row, query, options_.window,
                                                  current_sq));
    ++stats->dtw_computed;
    // An abandoned DP returns a truncated value > current_sq; it must not
    // enter the result list. Dropping any dist_sq > current_sq is safe even
    // while the list is unfilled: the seeded radius certifies that k objects
    // with true DTW <= radius exist globally and the merge only needs
    // distances that can still reach the global top-k.
    if (dist_sq <= current_sq) {
      best.Offer(scored.id, std::sqrt(dist_sq));
      if (shared != nullptr && best.Full()) shared->Tighten(best.Threshold());
    }
  }
  return std::move(best).Take();
}

}  // namespace s2::dtw
