file(REMOVE_RECURSE
  "CMakeFiles/disk_bptree_test.dir/disk_bptree_test.cc.o"
  "CMakeFiles/disk_bptree_test.dir/disk_bptree_test.cc.o.d"
  "disk_bptree_test"
  "disk_bptree_test.pdb"
  "disk_bptree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_bptree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
