#include "dtw/dtw.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsp/stats.h"

namespace s2::dtw {
namespace {

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.Normal(0, 1);
  return x;
}

// Naive O(n^2) full-matrix DTW for cross-checking.
double NaiveDtw(const std::vector<double>& a, const std::vector<double>& b,
                size_t window) {
  const size_t n = a.size();
  const size_t w = window == 0 ? n : window;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(n + 1, inf));
  dp[0][0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      const size_t d = i > j ? i - j : j - i;
      if (d > w) continue;
      const double cost = (a[i - 1] - b[j - 1]) * (a[i - 1] - b[j - 1]);
      dp[i][j] = cost + std::min({dp[i - 1][j], dp[i][j - 1], dp[i - 1][j - 1]});
    }
  }
  return std::sqrt(dp[n][n]);
}

TEST(DtwTest, ValidatesInput) {
  EXPECT_FALSE(DtwDistance({}, {}, 0).ok());
  EXPECT_FALSE(DtwDistance({1.0}, {1.0, 2.0}, 0).ok());
}

TEST(DtwTest, IdenticalSequencesHaveZeroDistance) {
  const std::vector<double> x = RandomSeries(64, 1);
  for (size_t w : {0u, 1u, 8u}) {
    auto d = DtwDistance(x, x, w);
    ASSERT_TRUE(d.ok());
    EXPECT_NEAR(*d, 0.0, 1e-12);
  }
}

TEST(DtwTest, MatchesNaiveImplementation) {
  for (size_t w : {0u, 2u, 5u, 16u}) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      const std::vector<double> a = RandomSeries(48, 100 + seed);
      const std::vector<double> b = RandomSeries(48, 200 + seed);
      auto fast = DtwDistance(a, b, w);
      ASSERT_TRUE(fast.ok());
      EXPECT_NEAR(*fast, NaiveDtw(a, b, w), 1e-9) << "w=" << w << " seed=" << seed;
    }
  }
}

TEST(DtwTest, SymmetricInArguments) {
  const std::vector<double> a = RandomSeries(64, 3);
  const std::vector<double> b = RandomSeries(64, 4);
  EXPECT_NEAR(*DtwDistance(a, b, 8), *DtwDistance(b, a, 8), 1e-9);
}

TEST(DtwTest, NeverExceedsEuclidean) {
  // Identity alignment is admissible, so DTW <= ED for every window.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const std::vector<double> a = RandomSeries(100, 300 + seed);
    const std::vector<double> b = RandomSeries(100, 400 + seed);
    const double euclid = *dsp::Euclidean(a, b);
    for (size_t w : {1u, 4u, 16u, 0u}) {
      EXPECT_LE(*DtwDistance(a, b, w), euclid + 1e-9) << "w=" << w;
    }
  }
}

TEST(DtwTest, WiderWindowNeverIncreasesDistance) {
  const std::vector<double> a = RandomSeries(80, 5);
  const std::vector<double> b = RandomSeries(80, 6);
  double prev = *DtwDistance(a, b, 1);
  for (size_t w : {2u, 4u, 8u, 16u, 40u}) {
    const double d = *DtwDistance(a, b, w);
    EXPECT_LE(d, prev + 1e-9) << "w=" << w;
    prev = d;
  }
  EXPECT_NEAR(prev, *DtwDistance(a, b, 0), 1e-9);  // 0 == unconstrained (w>=n).
}

TEST(DtwTest, AbsorbsSmallShiftsUnlikeEuclidean) {
  // A sinusoid vs its 3-sample shift: DTW (window >= 3) nearly zero,
  // Euclidean large.
  const size_t n = 128;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0);
    b[i] = std::sin(2.0 * std::numbers::pi * (static_cast<double>(i) - 3.0) / 16.0);
  }
  const double euclid = *dsp::Euclidean(a, b);
  const double warped = *DtwDistance(a, b, 8);
  EXPECT_LT(warped, 0.25 * euclid);
}

TEST(DtwTest, EarlyAbandonConsistentWithExact) {
  const std::vector<double> a = RandomSeries(64, 7);
  const std::vector<double> b = RandomSeries(64, 8);
  const double exact = *DtwDistance(a, b, 8);
  // Radius above the distance: exact result.
  auto kept = DtwDistanceEarlyAbandon(a, b, 8, exact + 1.0);
  ASSERT_TRUE(kept.ok());
  EXPECT_NEAR(*kept, exact, 1e-9);
  // Radius below: the returned value must exceed the radius.
  auto abandoned = DtwDistanceEarlyAbandon(a, b, 8, exact / 2.0);
  ASSERT_TRUE(abandoned.ok());
  EXPECT_GT(*abandoned, exact / 2.0);
}

TEST(EnvelopeTest, ValidatesAndShapes) {
  EXPECT_FALSE(ComputeEnvelope({}, 3).ok());
  auto env = ComputeEnvelope(RandomSeries(32, 9), 4);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env->upper.size(), 32u);
  EXPECT_EQ(env->lower.size(), 32u);
}

TEST(EnvelopeTest, MatchesNaiveSlidingWindow) {
  const std::vector<double> q = RandomSeries(100, 10);
  const size_t w = 7;
  auto env = ComputeEnvelope(q, w);
  ASSERT_TRUE(env.ok());
  for (size_t i = 0; i < q.size(); ++i) {
    const size_t lo = i >= w ? i - w : 0;
    const size_t hi = std::min(q.size() - 1, i + w);
    double mx = q[lo];
    double mn = q[lo];
    for (size_t j = lo; j <= hi; ++j) {
      mx = std::max(mx, q[j]);
      mn = std::min(mn, q[j]);
    }
    EXPECT_DOUBLE_EQ(env->upper[i], mx) << i;
    EXPECT_DOUBLE_EQ(env->lower[i], mn) << i;
  }
}

TEST(EnvelopeTest, EnvelopeSandwichesSequence) {
  const std::vector<double> q = RandomSeries(64, 11);
  auto env = ComputeEnvelope(q, 5);
  ASSERT_TRUE(env.ok());
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_LE(env->lower[i], q[i]);
    EXPECT_GE(env->upper[i], q[i]);
  }
}

TEST(LbKeoghTest, IsLowerBoundOnDtw) {
  // Property sweep: LB_Keogh(q, c) <= DTW_w(q, c) for many random pairs.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::vector<double> q = RandomSeries(96, 500 + seed);
    const std::vector<double> c = RandomSeries(96, 600 + seed);
    for (size_t w : {2u, 8u, 24u}) {
      auto env = ComputeEnvelope(q, w);
      ASSERT_TRUE(env.ok());
      auto lb = LbKeogh(*env, c, std::numeric_limits<double>::infinity());
      ASSERT_TRUE(lb.ok());
      const double dtw = *DtwDistance(q, c, w);
      EXPECT_LE(*lb, dtw + 1e-9) << "w=" << w << " seed=" << seed;
    }
  }
}

TEST(LbKeoghTest, ZeroForSelf) {
  const std::vector<double> q = RandomSeries(64, 12);
  auto env = ComputeEnvelope(q, 4);
  ASSERT_TRUE(env.ok());
  auto lb = LbKeogh(*env, q, std::numeric_limits<double>::infinity());
  ASSERT_TRUE(lb.ok());
  EXPECT_DOUBLE_EQ(*lb, 0.0);
}

TEST(LbKeoghTest, ShapeMismatchRejected) {
  auto env = ComputeEnvelope(RandomSeries(16, 13), 2);
  ASSERT_TRUE(env.ok());
  EXPECT_FALSE(LbKeogh(*env, RandomSeries(20, 14),
                       std::numeric_limits<double>::infinity())
                   .ok());
}

TEST(LbKeoghTest, EarlyAbandonOverestimates) {
  const std::vector<double> q = RandomSeries(128, 15);
  const std::vector<double> c = RandomSeries(128, 16);
  auto env = ComputeEnvelope(q, 8);
  ASSERT_TRUE(env.ok());
  const double exact = *LbKeogh(*env, c, std::numeric_limits<double>::infinity());
  if (exact > 0) {
    auto abandoned = LbKeogh(*env, c, exact / 2.0);
    ASSERT_TRUE(abandoned.ok());
    EXPECT_GT(*abandoned, exact / 2.0);
    EXPECT_LE(*abandoned, exact + 1e-12);
  }
}

}  // namespace
}  // namespace s2::dtw
