#include "service/result_cache.h"

namespace s2::service {

ResultCache::ResultCache(size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity) {
  if (metrics != nullptr) {
    hit_counter_ = metrics->counter("cache_hits");
    miss_counter_ = metrics->counter("cache_misses");
    eviction_counter_ = metrics->counter("cache_evictions");
    invalidation_counter_ = metrics->counter("cache_invalidations");
  }
}

std::optional<QueryResponse> ResultCache::Lookup(const CacheKey& key) {
  sync::MutexLock lock(&mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (miss_counter_ != nullptr) miss_counter_->Increment();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Touch: move to front.
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (hit_counter_ != nullptr) hit_counter_->Increment();
  QueryResponse response = it->second->second;
  response.cache_hit = true;
  return response;
}

void ResultCache::Insert(const CacheKey& key, const QueryResponse& response) {
  if (capacity_ == 0) return;
  sync::MutexLock lock(&mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = response;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, response);
  map_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    if (eviction_counter_ != nullptr) eviction_counter_->Increment();
  }
}

void ResultCache::Invalidate() {
  sync::MutexLock lock(&mu_);
  map_.clear();
  lru_.clear();
  if (invalidation_counter_ != nullptr) invalidation_counter_->Increment();
}

void ResultCache::InvalidateCrossSeries() {
  sync::MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    const RequestKind kind = it->first.kind;
    if (kind == RequestKind::kSimilarTo || kind == RequestKind::kSimilarToDtw ||
        kind == RequestKind::kQueryByBurst) {
      map_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  if (invalidation_counter_ != nullptr) invalidation_counter_->Increment();
}

void ResultCache::InvalidateForAppend(ts::SeriesId id) {
  sync::MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    const RequestKind kind = it->first.kind;
    const bool per_series =
        kind == RequestKind::kPeriodsOf || kind == RequestKind::kBurstsOf;
    if (!per_series || it->first.id == static_cast<uint64_t>(id)) {
      map_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  if (invalidation_counter_ != nullptr) invalidation_counter_->Increment();
}

size_t ResultCache::size() const {
  sync::MutexLock lock(&mu_);
  return lru_.size();
}

}  // namespace s2::service
