file(REMOVE_RECURSE
  "CMakeFiles/s2_storage.dir/corpus_io.cc.o"
  "CMakeFiles/s2_storage.dir/corpus_io.cc.o.d"
  "CMakeFiles/s2_storage.dir/disk_bptree.cc.o"
  "CMakeFiles/s2_storage.dir/disk_bptree.cc.o.d"
  "CMakeFiles/s2_storage.dir/pager.cc.o"
  "CMakeFiles/s2_storage.dir/pager.cc.o.d"
  "CMakeFiles/s2_storage.dir/sequence_store.cc.o"
  "CMakeFiles/s2_storage.dir/sequence_store.cc.o.d"
  "libs2_storage.a"
  "libs2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
