#ifndef S2_INDEX_MVP_TREE_H_
#define S2_INDEX_MVP_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/knn.h"
#include "index/vp_tree.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "repr/half_spectrum.h"
#include "storage/sequence_store.h"

namespace s2::index {

/// A multi-vantage-point tree over compressed representations — the
/// extension the paper points to in Section 4 ("all possible extensions to
/// the VP-tree, such as the usage of multiple vantage points [Bozkaya &
/// Ozsoyoglu], ... can be implemented on top of the proposed search
/// mechanisms").
///
/// Every internal node holds *two* vantage points: vp1's median distance
/// splits the population in half, and each half is split again by its own
/// median distance to vp2, yielding four children. During search each
/// child's feasible distance window is intersected with the query's [LB, UB]
/// annuli around *both* vantage points, so one node can prune with two
/// triangle-inequality constraints while paying the same two bound
/// computations a two-level VP-tree would spend on three vantage points.
/// Candidate filtering and LB-ordered verification are identical to
/// VpTreeIndex.
class MvpTreeIndex {
 public:
  struct Options {
    repr::ReprKind repr_kind = repr::ReprKind::kBestKError;
    repr::Basis basis = repr::Basis::kFourierHalf;
    repr::BoundMethod method = repr::BoundMethod::kBestMinError;
    size_t budget_c = 16;
    size_t leaf_size = 8;
    /// Vantage candidates probed per split (max-deviation heuristic).
    size_t vantage_candidates = 16;
    size_t deviation_sample = 64;
    /// Visit children ordered by their minimum feasible distance.
    bool guided_traversal = true;
    uint64_t seed = 7;
  };

  using SearchStats = VpTreeIndex::SearchStats;
  using Candidate = VpTreeIndex::Candidate;

  /// Builds the index over standardized `rows` (row index == SeriesId).
  static Result<MvpTreeIndex> Build(const std::vector<std::vector<double>>& rows,
                                    const Options& options);

  /// Exact k-NN search (candidate generation + verification).
  Result<std::vector<Neighbor>> Search(const std::vector<double>& query, size_t k,
                                       storage::SequenceSource* source,
                                       SearchStats* stats) const;

  /// Candidate-generation phase only (for pruning-power experiments).
  Result<std::vector<Candidate>> CollectCandidates(const std::vector<double>& query,
                                                   size_t k,
                                                   SearchStats* stats) const;

  size_t CompressedBytes() const;
  size_t size() const { return num_objects_; }
  const Options& options() const { return options_; }

  /// Structural self-check: child pointers in range, no node reachable
  /// twice, every node reachable, the object census matching `size()`,
  /// leaves childless and internals bucket-free, split radii finite and
  /// non-negative, and no id indexed twice. With a non-null `source`, also
  /// verifies the two-vantage metric invariant with exact distances: each
  /// child's population respects its distance window around vp1 (mu1) and
  /// vp2 (mu2_left / mu2_right). Reports violations as `Status::Corruption`.
  Status Validate(storage::SequenceSource* source = nullptr) const;

 private:
  friend struct MvpTreeTestPeer;  // Corruption injection in validator tests.

  struct Builder;

  struct Entry {
    ts::SeriesId id;
    repr::CompressedSpectrum repr;
  };
  // Children indexed by (side wrt vp1) * 2 + (side wrt vp2): LL, LR, RL, RR.
  struct Node {
    Entry vp1;
    Entry vp2;
    bool has_vp2 = false;
    double mu1 = 0.0;        // Median distance to vp1 over the population.
    double mu2_left = 0.0;   // Median distance to vp2 within the vp1-left half.
    double mu2_right = 0.0;  // ... within the vp1-right half.
    int32_t children[4] = {-1, -1, -1, -1};
    bool leaf = false;
    std::vector<Entry> bucket;
  };

  MvpTreeIndex(Options options, std::vector<Node> nodes, int32_t root,
               size_t num_objects, uint32_t series_length)
      : options_(options),
        nodes_(std::move(nodes)),
        root_(root),
        num_objects_(num_objects),
        series_length_(series_length) {}

  void SearchNode(int32_t node_id, const repr::HalfSpectrum& query,
                  std::vector<Candidate>* candidates, BestList* upper_bounds,
                  SearchStats* stats) const;

  Options options_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t num_objects_ = 0;
  uint32_t series_length_ = 0;
};

}  // namespace s2::index

#endif  // S2_INDEX_MVP_TREE_H_
