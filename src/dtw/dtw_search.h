#ifndef S2_DTW_DTW_SEARCH_H_
#define S2_DTW_DTW_SEARCH_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "index/knn.h"
#include "repr/bounds.h"
#include "repr/compressed.h"
#include "storage/sequence_store.h"

namespace s2::dtw {

/// Exact k-NN search under windowed DTW, realizing the paper's Section 8
/// proposal: "a similar approach could prove useful in the computation of
/// linear-cost lower and upper bounds for expensive distance measures like
/// dynamic time warping".
///
/// The key observation: with squared point costs, the identity alignment is
/// always admissible, so `DTW(q, t) <= Euclidean(q, t)` — which means every
/// *upper* bound the compressed spectral representations give on the
/// Euclidean distance (UB_BestMinError etc.) is also an upper bound on DTW,
/// at a cost linear in the number of retained coefficients. The search
/// cascade is:
///
///   1. Score every compressed object with the Euclidean UB; seed the
///      best-so-far radius with the k-th smallest UB *before any DTW is
///      computed*, and order candidates by ascending UB.
///   2. Per candidate (fetched from the sequence store): LB_Keogh with early
///      abandoning — skip the object when it exceeds the radius.
///   3. Otherwise run the early-abandoning DTW dynamic program.
///
/// Every skip in (2) avoids an O(n*w) DP; every radius tightening in (1)
/// makes (2) skip more. DTW is not a metric, so the VP-tree's triangle
/// pruning does not apply — this is a filtered linear scan, as in Keogh's
/// exact indexing framework the paper cites.
class DtwKnnSearch {
 public:
  struct Options {
    /// Sakoe-Chiba band half-width; 0 = unconstrained.
    size_t window = 16;
    /// Budget (Table 1 units) of the compressed features used for UB
    /// seeding; only used by `BuildFeatures`.
    size_t budget_c = 16;
    /// Disable to measure the value of the compressed-UB seed (ablation).
    bool use_compressed_upper_bounds = true;
    /// Disable to measure the value of LB_Keogh (ablation).
    bool use_lb_keogh = true;
  };

  struct SearchStats {
    size_t upper_bounds_computed = 0;
    size_t lb_keogh_computed = 0;
    size_t lb_keogh_skips = 0;  ///< Candidates pruned without running the DP.
    size_t dtw_computed = 0;
    /// Skips that only succeeded because another partition's published
    /// radius was tighter than this search's local radius (cross-shard
    /// prune hits under scatter-gather).
    size_t shared_radius_skips = 0;
  };

  /// Builds the search helper over pre-compressed features (kBestKError or
  /// kFirstKError kinds; anything `ComputeBounds` accepts with an upper
  /// bound). `features[i]` must describe `source` row i.
  static Result<DtwKnnSearch> Create(std::vector<repr::CompressedSpectrum> features,
                                     Options options);

  /// Convenience: compresses `rows` (standardized sequences) itself.
  static Result<DtwKnnSearch> BuildFeatures(
      const std::vector<std::vector<double>>& rows, Options options);

  /// Appends the feature of one more sequence (id = current feature
  /// count); used by incremental ingestion.
  Status AddFeature(repr::CompressedSpectrum feature);

  /// Replaces the feature of an already-registered series (the streaming
  /// append path recomputes a series' feature after its window slides).
  Status UpdateFeature(ts::SeriesId id, repr::CompressedSpectrum feature);

  /// Exact k nearest neighbors of `query` under windowed DTW.
  ///
  /// `shared`, when non-null, is a cross-partition pruning radius (see
  /// index::SharedRadius): the cascade additionally abandons against it and
  /// publishes every radius it certifies (seed threshold, tightened best
  /// list). The result is then the subset of the local top-k that can still
  /// reach the global top-k, with exact DTW distances — what the
  /// scatter-gather merge needs.
  Result<std::vector<index::Neighbor>> Search(const std::vector<double>& query,
                                              size_t k,
                                              storage::SequenceSource* source,
                                              SearchStats* stats,
                                              index::SharedRadius* shared = nullptr) const;

  const Options& options() const { return options_; }

 private:
  DtwKnnSearch(std::vector<repr::CompressedSpectrum> features, Options options)
      : features_(std::move(features)), options_(options) {}

  std::vector<repr::CompressedSpectrum> features_;
  Options options_;
};

}  // namespace s2::dtw

#endif  // S2_DTW_DTW_SEARCH_H_
