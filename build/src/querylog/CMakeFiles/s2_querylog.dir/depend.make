# Empty dependencies file for s2_querylog.
# This may be replaced when dependencies are built.
