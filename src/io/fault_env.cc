#include "io/fault_env.h"

#include <unistd.h>

#include <algorithm>

namespace s2::io {

/// Wraps a base file, consulting the env before every operation.
class FaultInjectingFile : public File {
 public:
  FaultInjectingFile(FaultInjectingEnv* env, std::unique_ptr<File> base)
      : env_(env), base_(std::move(base)) {}

  Result<size_t> Read(void* buf, size_t n) override {
    S2_RETURN_NOT_OK(env_->BeforeRead());
    return base_->Read(buf, env_->MaybeShorten(n));
  }

  Result<size_t> Write(const void* buf, size_t n) override {
    S2_RETURN_NOT_OK(env_->BeforeWrite());
    return base_->Write(buf, env_->MaybeShorten(n));
  }

  Result<size_t> ReadAt(void* buf, size_t n, uint64_t offset) override {
    S2_RETURN_NOT_OK(env_->BeforeRead());
    return base_->ReadAt(buf, env_->MaybeShorten(n), offset);
  }

  Result<size_t> WriteAt(const void* buf, size_t n, uint64_t offset) override {
    S2_RETURN_NOT_OK(env_->BeforeWrite());
    return base_->WriteAt(buf, env_->MaybeShorten(n), offset);
  }

  Status Seek(uint64_t offset) override { return base_->Seek(offset); }

  Result<uint64_t> Size() override {
    if (env_->crashed()) {
      return Status::IoError("simulated crash: device unavailable");
    }
    return base_->Size();
  }

  Status Sync() override {
    S2_RETURN_NOT_OK(env_->BeforeSync());
    return base_->Sync();
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<File> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base, FaultPlan plan)
    : base_(base), plan_(plan), rng_(plan.seed) {}

Result<std::unique_ptr<File>> FaultInjectingEnv::Open(const std::string& path,
                                                      OpenMode mode) {
  if (crashed()) return Status::IoError("simulated crash: device unavailable");
  S2_ASSIGN_OR_RETURN(std::unique_ptr<File> base, base_->Open(path, mode));
  return std::unique_ptr<File>(new FaultInjectingFile(this, std::move(base)));
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  S2_RETURN_NOT_OK(BeforeMetadataOp());
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::Remove(const std::string& path) {
  S2_RETURN_NOT_OK(BeforeMetadataOp());
  return base_->Remove(path);
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  // A directory sync is a sync fault site (and crash point) like any other;
  // BeforeSync also performs the crashed check.
  S2_RETURN_NOT_OK(BeforeSync());
  return base_->SyncDir(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::CopyFile(const std::string& from,
                                   const std::string& to) {
  // Route through this env's Open so the copy's reads/writes are themselves
  // fault sites (the default streaming implementation does exactly that).
  return Env::CopyFile(from, to);
}

Status FaultInjectingEnv::DropUnsynced() { return base_->DropUnsynced(); }

Result<std::vector<std::string>> FaultInjectingEnv::ListPrefix(
    const std::string& prefix) {
  if (crashed()) return Status::IoError("simulated crash: device unavailable");
  return base_->ListPrefix(prefix);
}

bool FaultInjectingEnv::crashed() const {
  sync::MutexLock lock(&mu_);
  return crashed_;
}

void FaultInjectingEnv::ClearCrash() {
  sync::MutexLock lock(&mu_);
  crashed_ = false;
}

void FaultInjectingEnv::set_plan(const FaultPlan& plan) {
  sync::MutexLock lock(&mu_);
  plan_ = plan;
  rng_ = s2::Rng(plan.seed);
}

uint64_t FaultInjectingEnv::read_ops() const {
  sync::MutexLock lock(&mu_);
  return read_ops_;
}

uint64_t FaultInjectingEnv::write_ops() const {
  sync::MutexLock lock(&mu_);
  return write_ops_;
}

uint64_t FaultInjectingEnv::sync_ops() const {
  sync::MutexLock lock(&mu_);
  return sync_ops_;
}

uint64_t FaultInjectingEnv::mutating_ops() const {
  sync::MutexLock lock(&mu_);
  return write_ops_ + sync_ops_;
}

uint64_t FaultInjectingEnv::injected_faults() const {
  sync::MutexLock lock(&mu_);
  return injected_faults_;
}

Status FaultInjectingEnv::InjectedFault(const char* op) {
  ++injected_faults_;
  std::string message = "injected fault on ";
  message += op;
  if (plan_.faults_are_transient) {
    message += " (transient, EINTR-like)";
    return Status::TransientIo(std::move(message));
  }
  message += " (hard, EIO-like)";
  return Status::IoError(std::move(message));
}

void FaultInjectingEnv::MaybeCrashLocked() {
  if (plan_.crash_at_op != 0 && !crashed_ &&
      write_ops_ + sync_ops_ >= plan_.crash_at_op) {
    if (plan_.crash_is_fatal) {
      // The process-level crash model: die right here, before the base
      // operation runs, exactly like a kill -9 between two syscalls. The
      // parent harness recognizes kCrashExitCode and revives from disk.
      ::_exit(kCrashExitCode);
    }
    crashed_ = true;
    // The machine "loses power": everything not fsynced is gone. The base
    // env's DropUnsynced does the rollback; a base that cannot simulate this
    // (PosixEnv) makes the crash a plain hard failure, which is still a
    // valid (weaker) fault.
    (void)base_->DropUnsynced();
  }
}

Status FaultInjectingEnv::BeforeRead() {
  sync::MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("simulated crash: device unavailable");
  ++read_ops_;
  if (plan_.fail_read_at != 0 && read_ops_ == plan_.fail_read_at) {
    return InjectedFault("read");
  }
  if (plan_.read_fault_rate > 0.0 && rng_.Bernoulli(plan_.read_fault_rate)) {
    return InjectedFault("read");
  }
  return Status::OK();
}

Status FaultInjectingEnv::BeforeWrite() {
  sync::MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("simulated crash: device unavailable");
  ++write_ops_;
  MaybeCrashLocked();
  if (crashed_) return Status::IoError("simulated crash: device unavailable");
  if (plan_.fail_write_at != 0 && write_ops_ == plan_.fail_write_at) {
    return InjectedFault("write");
  }
  if (plan_.write_fault_rate > 0.0 && rng_.Bernoulli(plan_.write_fault_rate)) {
    return InjectedFault("write");
  }
  return Status::OK();
}

Status FaultInjectingEnv::BeforeSync() {
  sync::MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("simulated crash: device unavailable");
  ++sync_ops_;
  MaybeCrashLocked();
  if (crashed_) return Status::IoError("simulated crash: device unavailable");
  if (plan_.fail_sync_at != 0 && sync_ops_ == plan_.fail_sync_at) {
    return InjectedFault("fsync");
  }
  if (plan_.sync_fault_rate > 0.0 && rng_.Bernoulli(plan_.sync_fault_rate)) {
    return InjectedFault("fsync");
  }
  return Status::OK();
}

Status FaultInjectingEnv::BeforeMetadataOp() {
  sync::MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("simulated crash: device unavailable");
  if (!plan_.count_metadata_ops) return Status::OK();
  ++write_ops_;
  MaybeCrashLocked();
  if (crashed_) return Status::IoError("simulated crash: device unavailable");
  return Status::OK();
}

size_t FaultInjectingEnv::MaybeShorten(size_t n) {
  if (n <= 1) return n;
  sync::MutexLock lock(&mu_);
  if (plan_.short_io_rate <= 0.0 || !rng_.Bernoulli(plan_.short_io_rate)) {
    return n;
  }
  return static_cast<size_t>(
      rng_.UniformInt(1, static_cast<int64_t>(n) - 1));
}

}  // namespace s2::io
