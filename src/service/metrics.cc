#include "service/metrics.h"

#include <bit>
#include <sstream>

namespace s2::service {

namespace {

size_t BucketFor(uint64_t micros) {
  if (micros == 0) return 0;
  const size_t idx = std::bit_width(micros) - 1;  // floor(log2(micros))
  return idx < LatencyHistogram::kBuckets ? idx : LatencyHistogram::kBuckets - 1;
}

uint64_t BucketUpperEdge(size_t bucket) { return uint64_t{2} << bucket; }

}  // namespace

void LatencyHistogram::Record(uint64_t micros) {
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_.compare_exchange_weak(seen, micros, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::Percentile(double p) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Rank of the target sample, 1-based.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperEdge(i);
  }
  return max_micros();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  sync::MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  sync::MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::string MetricsRegistry::TextSnapshot() const {
  sync::MutexLock lock(&mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    const uint64_t n = hist->count();
    out << name << "_count " << n << '\n';
    out << name << "_p50_us " << hist->Percentile(50) << '\n';
    out << name << "_p95_us " << hist->Percentile(95) << '\n';
    out << name << "_p99_us " << hist->Percentile(99) << '\n';
    out << name << "_max_us " << hist->max_micros() << '\n';
    out << name << "_mean_us " << (n == 0 ? 0 : hist->sum_micros() / n) << '\n';
  }
  return out.str();
}

}  // namespace s2::service
