#include "index/mvp_tree.h"

#include <memory>

#include <gtest/gtest.h>

#include "dsp/stats.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "querylog/corpus_generator.h"
#include "storage/sequence_store.h"

namespace s2::index {
namespace {

struct Fixture {
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> queries;
  std::unique_ptr<storage::InMemorySequenceSource> source;
};

Fixture MakeFixture(size_t num_series, size_t n_days, size_t num_queries,
                    uint64_t seed) {
  qlog::CorpusSpec spec;
  spec.num_series = num_series;
  spec.n_days = n_days;
  spec.seed = seed;
  auto corpus = qlog::GenerateCorpus(spec);
  EXPECT_TRUE(corpus.ok());
  Fixture fx;
  for (const auto& series : corpus->series()) {
    fx.rows.push_back(dsp::Standardize(series.values));
  }
  auto queries = qlog::GenerateQueries(spec, num_queries);
  EXPECT_TRUE(queries.ok());
  for (const auto& q : *queries) fx.queries.push_back(dsp::Standardize(q.values));
  auto source = storage::InMemorySequenceSource::Create(fx.rows);
  EXPECT_TRUE(source.ok());
  fx.source = std::move(source).ValueOrDie();
  return fx;
}

TEST(MvpTreeTest, BuildRejectsBadInput) {
  MvpTreeIndex::Options options;
  EXPECT_FALSE(MvpTreeIndex::Build({}, options).ok());
  EXPECT_FALSE(MvpTreeIndex::Build({{}}, options).ok());
  EXPECT_FALSE(MvpTreeIndex::Build({{1.0, 2.0}, {1.0}}, options).ok());
  MvpTreeIndex::Options bad = options;
  bad.leaf_size = 0;
  EXPECT_FALSE(
      MvpTreeIndex::Build(std::vector<std::vector<double>>(4, {1.0, 2.0}), bad).ok());
}

TEST(MvpTreeTest, SearchValidatesArguments) {
  Fixture fx = MakeFixture(40, 128, 1, 1);
  MvpTreeIndex::Options options;
  options.budget_c = 8;
  auto index = MvpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(
      index->Search(std::vector<double>(5, 0.0), 1, fx.source.get(), nullptr).ok());
  EXPECT_FALSE(index->Search(fx.queries[0], 0, fx.source.get(), nullptr).ok());
  EXPECT_FALSE(index->Search(fx.queries[0], 1, nullptr, nullptr).ok());
}

class MvpExactnessTest : public ::testing::TestWithParam<size_t /*budget*/> {};

TEST_P(MvpExactnessTest, MatchesLinearScan) {
  const size_t budget = GetParam();
  Fixture fx = MakeFixture(400, 256, 10, 42);
  MvpTreeIndex::Options options;
  options.budget_c = budget;
  options.leaf_size = 6;
  auto index = MvpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  LinearScan scan(fx.source.get());

  for (const auto& query : fx.queries) {
    for (size_t k : {1u, 5u}) {
      auto expected = scan.Search(query, k);
      auto got = index->Search(query, k, fx.source.get(), nullptr);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), expected->size());
      for (size_t i = 0; i < got->size(); ++i) {
        EXPECT_NEAR((*got)[i].distance, (*expected)[i].distance, 1e-9)
            << "budget=" << budget << " k=" << k << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, MvpExactnessTest, ::testing::Values(8u, 16u, 32u));

TEST(MvpTreeTest, IndexedObjectFindsItself) {
  Fixture fx = MakeFixture(100, 128, 0, 9);
  MvpTreeIndex::Options options;
  options.budget_c = 16;
  auto index = MvpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  for (ts::SeriesId id = 0; id < 100; id += 9) {
    auto got = index->Search(fx.rows[id], 1, fx.source.get(), nullptr);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR((*got)[0].distance, 0.0, 1e-9) << id;
  }
}

TEST(MvpTreeTest, SmallCorpusSingleLeaf) {
  Fixture fx = MakeFixture(5, 64, 2, 15);
  MvpTreeIndex::Options options;
  options.budget_c = 8;
  auto index = MvpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  LinearScan scan(fx.source.get());
  for (const auto& query : fx.queries) {
    auto expected = scan.Search(query, 2);
    auto got = index->Search(query, 2, fx.source.get(), nullptr);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0].id, (*expected)[0].id);
  }
}

TEST(MvpTreeTest, GuidedTraversalOffStillExact) {
  Fixture fx = MakeFixture(150, 128, 5, 17);
  MvpTreeIndex::Options options;
  options.guided_traversal = false;
  options.budget_c = 8;
  auto index = MvpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  LinearScan scan(fx.source.get());
  for (const auto& query : fx.queries) {
    auto expected = scan.Search(query, 1);
    auto got = index->Search(query, 1, fx.source.get(), nullptr);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ((*got)[0].id, (*expected)[0].id);
  }
}

TEST(MvpTreeTest, ComparableOrBetterPruningThanVpTree) {
  Fixture fx = MakeFixture(1000, 256, 10, 21);
  MvpTreeIndex::Options mvp_options;
  mvp_options.budget_c = 16;
  VpTreeIndex::Options vp_options;
  vp_options.budget_c = 16;
  auto mvp = MvpTreeIndex::Build(fx.rows, mvp_options);
  auto vp = VpTreeIndex::Build(fx.rows, vp_options);
  ASSERT_TRUE(mvp.ok());
  ASSERT_TRUE(vp.ok());

  size_t mvp_bounds = 0;
  size_t vp_bounds = 0;
  for (const auto& query : fx.queries) {
    MvpTreeIndex::SearchStats ms;
    VpTreeIndex::SearchStats vs;
    ASSERT_TRUE(mvp->Search(query, 1, fx.source.get(), &ms).ok());
    ASSERT_TRUE(vp->Search(query, 1, fx.source.get(), &vs).ok());
    mvp_bounds += ms.bound_computations;
    vp_bounds += vs.bound_computations;
  }
  // Not asserting strict superiority (data dependent), but the MVP tree must
  // be in the same ballpark — no pathological blow-up.
  EXPECT_LT(mvp_bounds, vp_bounds * 3 / 2);
}

TEST(MvpTreeTest, CompressedBytesIsCompact) {
  Fixture fx = MakeFixture(256, 512, 0, 23);
  MvpTreeIndex::Options options;
  options.budget_c = 16;
  auto index = MvpTreeIndex::Build(fx.rows, options);
  ASSERT_TRUE(index.ok());
  EXPECT_LT(index->CompressedBytes(), 256 * 512 * sizeof(double) / 3);
  EXPECT_EQ(index->size(), 256u);
}

}  // namespace
}  // namespace s2::index
