# Empty compiler generated dependencies file for s2_dsp.
# This may be replaced when dependencies are built.
