#ifndef S2_BASE_SYNC_H_
#define S2_BASE_SYNC_H_

// Annotated synchronization primitives. Every mutex in the codebase is a
// sync::Mutex or sync::SharedMutex constructed with a LockRank and a name;
// two mechanisms then keep lock discipline honest:
//
//   1. Compile time (Clang): the S2_CAPABILITY / S2_ACQUIRE / S2_RELEASE
//      annotations feed `-Wthread-safety -Werror` (src/CMakeLists.txt), so
//      touching an S2_GUARDED_BY field without the lock is a build break.
//
//   2. Run time (debug / sanitizer builds, i.e. whenever S2_DCHECK is on):
//      a thread-local held-lock stack asserts that ranks strictly increase
//      along every acquisition chain. Any cycle in the lock graph must
//      contain at least one edge that acquires a rank <= one already held,
//      so monotone acquisition makes lock-order deadlock impossible — and a
//      violation reports both acquisition sites through the structured
//      diag::ReportCheckFailure path instead of deadlocking in production
//      weeks later. Release builds compile the checker calls out entirely.
//
// The rank table below is the documented lock hierarchy (DESIGN.md §10
// reproduces it with the nesting chains that pin each value). Gaps are
// deliberate: new locks slot in without renumbering.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "base/thread_annotations.h"
#include "diag/check.h"

namespace s2::sync {

/// Acquisition order: a thread may only acquire a lock whose rank is
/// STRICTLY GREATER than every lock it already holds. Outermost locks have
/// the smallest ranks.
enum class LockRank : uint32_t {
  /// service::S2Server engine_mu_ (SharedMutex): the outermost lock; held
  /// across whole verbs, and across compaction scheduling (→ kThreadPool),
  /// alert pushes (→ kAlertQueue), retry jitter (→ kRetryJitter) and
  /// disk-resident I/O (→ kFaultEnv/kMemEnv).
  kEngineState = 100,
  /// exec::ThreadPool queue mutex. Submit() runs under the exclusive
  /// engine lock when the append path schedules background compaction.
  kThreadPool = 200,
  /// service::ResultCache LRU mutex. Self-contained methods; ranked above
  /// the engine so a future "probe cache while answering" path stays legal.
  kResultCache = 210,
  /// resilience::CircuitBreaker state mutex. Self-contained methods.
  kCircuitBreaker = 220,
  /// monitor::AlertQueue mutex. Push() runs under the exclusive engine
  /// lock on the append/subscribe paths.
  kAlertQueue = 230,
  /// service::S2Server export_mu_ (exported metric snapshots). Taken after
  /// alert_queue_.stats() has returned, never nested inside it.
  kMetricsExport = 240,
  /// resilience::RetryingSequenceSource jitter-RNG mutex; reached from
  /// retried reads under the engine lock.
  kRetryJitter = 300,
  /// io::FaultInjectingEnv plan/counter mutex. MaybeCrashLocked() calls
  /// base_->DropUnsynced() while holding it, so it must rank BELOW the
  /// base MemEnv.
  kFaultEnv = 400,
  /// io::MemEnv filesystem mutex; innermost of the I/O chain.
  kMemEnv = 500,
  /// service::MetricsRegistry map mutex: a leaf. Registration happens at
  /// construction; hot paths use pre-registered lock-free handles.
  kMetricsRegistry = 600,
};

namespace internal {

/// Lock-rank checker entry points. Always compiled (so one libs2_base
/// serves every build type); call sites are gated on S2_DIAG_DCHECK_IS_ON
/// so release builds pay nothing. `mutex_id` is the Mutex address, used to
/// match releases (which may be non-LIFO) to acquisitions.
void RankPushAcquire(const void* mutex_id, uint32_t rank, const char* name,
                     const char* file, int line);
void RankPop(const void* mutex_id);

/// Number of ranked locks the calling thread currently holds (test hook).
std::size_t HeldLockDepth();

}  // namespace internal

class CondVar;

/// Exclusive mutex with a rank and a name. The (file, line) defaults
/// capture the *caller's* acquisition site, which the rank checker reports
/// on violation.
class S2_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) S2_ACQUIRE() {
    (void)file;
    (void)line;
#if S2_DIAG_DCHECK_IS_ON
    // Checked before blocking: an actual inversion may deadlock in lock(),
    // so the report must come first.
    internal::RankPushAcquire(this, static_cast<uint32_t>(rank_), name_,
                              file, line);
#endif
    mu_.lock();
  }

  /// Rank discipline applies to successful tries too: this codebase has no
  /// deadlock-avoidance try-lock idiom, so an out-of-order TryLock is a
  /// hierarchy bug even though it cannot block.
  bool TryLock(const char* file = __builtin_FILE(),
               int line = __builtin_LINE()) S2_TRY_ACQUIRE(true) {
    (void)file;
    (void)line;
    if (!mu_.try_lock()) return false;
#if S2_DIAG_DCHECK_IS_ON
    internal::RankPushAcquire(this, static_cast<uint32_t>(rank_), name_,
                              file, line);
#endif
    return true;
  }

  void Unlock() S2_RELEASE() {
    mu_.unlock();
#if S2_DIAG_DCHECK_IS_ON
    internal::RankPop(this);
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII exclusive lock (Abseil-style pointer argument).
class S2_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) S2_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(file, line);
  }
  ~MutexLock() S2_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Reader/writer mutex with the same rank discipline. Shared acquisitions
/// participate in rank checking exactly like exclusive ones: taking the
/// same SharedMutex shared twice on one thread is flagged (it can deadlock
/// against a queued writer on writer-priority implementations).
class S2_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) S2_ACQUIRE() {
    (void)file;
    (void)line;
#if S2_DIAG_DCHECK_IS_ON
    internal::RankPushAcquire(this, static_cast<uint32_t>(rank_), name_,
                              file, line);
#endif
    mu_.lock();
  }

  void Unlock() S2_RELEASE() {
    mu_.unlock();
#if S2_DIAG_DCHECK_IS_ON
    internal::RankPop(this);
#endif
  }

  void LockShared(const char* file = __builtin_FILE(),
                  int line = __builtin_LINE()) S2_ACQUIRE_SHARED() {
    (void)file;
    (void)line;
#if S2_DIAG_DCHECK_IS_ON
    internal::RankPushAcquire(this, static_cast<uint32_t>(rank_), name_,
                              file, line);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() S2_RELEASE_SHARED() {
    mu_.unlock_shared();
#if S2_DIAG_DCHECK_IS_ON
    internal::RankPop(this);
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class S2_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu,
                           const char* file = __builtin_FILE(),
                           int line = __builtin_LINE()) S2_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(file, line);
  }
  ~WriterMutexLock() S2_RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex. The destructor releases a
/// shared capability, which the analysis models as "generic" release on a
/// scoped capability.
class S2_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu,
                           const char* file = __builtin_FILE(),
                           int line = __builtin_LINE()) S2_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared(file, line);
  }
  ~ReaderMutexLock() S2_RELEASE_GENERIC() { mu_->UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to sync::Mutex. Spurious wakeups happen:
/// callers re-test their predicate in a while loop around Wait(). Keep the
/// predicate test inline in that loop (not in a lambda) — Clang analyzes
/// lambda bodies without the caller's lock set, so a guarded-field read
/// inside a wait predicate lambda is a false positive under -Wthread-safety.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  /// The rank checker keeps `mu` on the held stack across the wait: the
  /// thread is blocked the whole time, and on wakeup it owns the lock
  /// again, so the stack stays truthful at every observable point.
  void Wait(Mutex* mu) S2_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace s2::sync

#endif  // S2_BASE_SYNC_H_
