file(REMOVE_RECURSE
  "libs2_repr.a"
)
