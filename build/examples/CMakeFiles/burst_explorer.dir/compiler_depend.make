# Empty compiler generated dependencies file for burst_explorer.
# This may be replaced when dependencies are built.
