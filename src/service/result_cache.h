#ifndef S2_SERVICE_RESULT_CACHE_H_
#define S2_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "base/sync.h"
#include "base/thread_annotations.h"
#include "service/metrics.h"
#include "service/scheduler.h"

namespace s2::service {

/// Answer-quality tier of a cached response. Part of the cache identity:
/// an approximate answer (even a `guaranteed_exact` one — the flag is a
/// per-query observation, not a request-level promise) must never be
/// served to a request that asked for the exact tier, and vice versa.
enum class AnswerQuality : uint8_t {
  kExact = 0,
  kApproximate = 1,
};

/// Identity of a cacheable request. Two requests with equal keys must
/// produce identical responses against an unchanged engine.
struct CacheKey {
  RequestKind kind = RequestKind::kSimilarTo;
  /// Indexed series id, or a hash for external-sequence queries.
  uint64_t id = 0;
  size_t k = 0;
  /// BurstHorizon for burst kinds; 0 otherwise.
  int horizon = 0;
  /// Answer tier this entry belongs to. Approximate entries additionally
  /// fold their quality knobs into `param_hash` (different knobs, different
  /// answers).
  AnswerQuality quality = AnswerQuality::kExact;
  /// Hash of any extra parameters that shape the answer (external-series
  /// queries, approximate-tier quality knobs, per-request engine
  /// overrides).
  uint64_t param_hash = 0;

  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.kind == b.kind && a.id == b.id && a.k == b.k &&
           a.horizon == b.horizon && a.quality == b.quality &&
           a.param_hash == b.param_hash;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    // FNV-1a over the six fields; cheap and well-mixed for these widths.
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(key.kind));
    mix(key.id);
    mix(key.k);
    mix(static_cast<uint64_t>(key.horizon));
    mix(static_cast<uint64_t>(key.quality));
    mix(key.param_hash);
    return static_cast<size_t>(h);
  }
};

/// A thread-safe LRU cache of query responses.
///
/// One mutex guards the map + recency list; entries store full
/// `QueryResponse` payloads (answers are small: k neighbors / a few period
/// or burst records). `Lookup` returns a copy flagged `cache_hit = true`.
/// Only successful responses should be inserted. `Invalidate` empties the
/// cache — the engine's `AddSeries` can change any k-NN or query-by-burst
/// answer, so the server calls it on every ingest.
class ResultCache {
 public:
  /// `capacity` is the maximum number of entries (0 disables caching:
  /// lookups miss, inserts are dropped). `metrics` may be null; when given,
  /// it must outlive the cache and receives `cache_hits` / `cache_misses` /
  /// `cache_evictions` / `cache_invalidations` counters.
  explicit ResultCache(size_t capacity, MetricsRegistry* metrics = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached response (marked as a hit) or nullopt.
  std::optional<QueryResponse> Lookup(const CacheKey& key);

  /// Inserts/refreshes an entry, evicting the least recently used entry
  /// beyond capacity.
  void Insert(const CacheKey& key, const QueryResponse& response);

  /// Drops every entry (engine mutation invalidates all answers).
  void Invalidate();

  /// Selective invalidation for `AddSeries`: a new series can change any
  /// k-NN or query-by-burst answer (the new series may enter any top-k),
  /// but the periods and bursts *of an existing series* depend only on that
  /// series' own values, which an append never touches — those entries stay.
  void InvalidateCrossSeries();

  /// Selective invalidation for a streamed point append to series `id`: the
  /// slide changes `id`'s own values, so its periods/bursts entries go too —
  /// everything cross-series (any k-NN or query-by-burst answer) plus every
  /// per-series entry keyed by `id`. Per-series entries of *other* series
  /// survive: their values are untouched by the append.
  void InvalidateForAppend(ts::SeriesId id);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<CacheKey, QueryResponse>;

  const size_t capacity_;
  mutable sync::Mutex mu_{sync::LockRank::kResultCache,
                          "service::ResultCache"};
  std::list<Entry> lru_ S2_GUARDED_BY(mu_);  // Front = most recently used.
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_
      S2_GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  Counter* hit_counter_ = nullptr;
  Counter* miss_counter_ = nullptr;
  Counter* eviction_counter_ = nullptr;
  Counter* invalidation_counter_ = nullptr;
};

}  // namespace s2::service

#endif  // S2_SERVICE_RESULT_CACHE_H_
