#include "storage/bptree.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace s2::storage {
namespace {

using IntTree = BPlusTree<int32_t, uint32_t, 8>;  // Small order stresses splits.

std::vector<std::pair<int32_t, uint32_t>> Collect(const IntTree& tree) {
  std::vector<std::pair<int32_t, uint32_t>> out;
  tree.ScanAll([&out](int32_t k, uint32_t v) {
    out.emplace_back(k, v);
    return true;
  });
  return out;
}

TEST(BPlusTreeTest, EmptyTree) {
  IntTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.Contains(1));
  EXPECT_EQ(tree.Height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(Collect(tree).empty());
}

TEST(BPlusTreeTest, InsertAndScanSorted) {
  IntTree tree;
  for (int32_t k : {5, 3, 9, 1, 7, 2, 8, 4, 6, 0}) {
    tree.Insert(k, static_cast<uint32_t>(k * 10));
  }
  EXPECT_EQ(tree.size(), 10u);
  const auto all = Collect(tree);
  ASSERT_EQ(all.size(), 10u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].first, static_cast<int32_t>(i));
    EXPECT_EQ(all[i].second, static_cast<uint32_t>(i * 10));
  }
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, DuplicateKeysAllKept) {
  IntTree tree;
  for (uint32_t v = 0; v < 20; ++v) tree.Insert(7, v);
  EXPECT_EQ(tree.Count(7), 20u);
  EXPECT_EQ(tree.size(), 20u);
  std::set<uint32_t> values;
  tree.Scan(7, 7, [&values](int32_t, uint32_t v) {
    values.insert(v);
    return true;
  });
  EXPECT_EQ(values.size(), 20u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, RangeScanBoundsInclusive) {
  IntTree tree;
  for (int32_t k = 0; k < 100; ++k) tree.Insert(k, static_cast<uint32_t>(k));
  std::vector<int32_t> seen;
  tree.Scan(10, 20, [&seen](int32_t k, uint32_t) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), 10);
  EXPECT_EQ(seen.back(), 20);
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  IntTree tree;
  for (int32_t k = 0; k < 50; ++k) tree.Insert(k, 0);
  int visited = 0;
  tree.Scan(0, 49, [&visited](int32_t, uint32_t) {
    ++visited;
    return visited < 5;
  });
  EXPECT_EQ(visited, 5);
}

TEST(BPlusTreeTest, ScanFromSuffix) {
  IntTree tree;
  for (int32_t k = 0; k < 30; ++k) tree.Insert(k, 0);
  std::vector<int32_t> seen;
  tree.ScanFrom(25, [&seen](int32_t k, uint32_t) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int32_t>{25, 26, 27, 28, 29}));
}

TEST(BPlusTreeTest, EraseSpecificPair) {
  IntTree tree;
  tree.Insert(1, 100);
  tree.Insert(1, 200);
  tree.Insert(2, 300);
  EXPECT_TRUE(tree.Erase(1, 200));
  EXPECT_FALSE(tree.Erase(1, 200));  // Already gone.
  EXPECT_FALSE(tree.Erase(9, 1));    // Never existed.
  EXPECT_EQ(tree.Count(1), 1u);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, GrowsAndShrinksThroughManyLevels) {
  IntTree tree;
  const int n = 5000;
  for (int32_t k = 0; k < n; ++k) tree.Insert(k, static_cast<uint32_t>(k));
  EXPECT_GT(tree.Height(), 3u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (int32_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree.Erase(k, static_cast<uint32_t>(k))) << k;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants());
}

// Model check: a randomized workload of inserts/erases/scans must agree with
// std::multimap at every step.
class BPlusTreeModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreeModelTest, AgreesWithMultimap) {
  Rng rng(GetParam());
  IntTree tree;
  std::multimap<int32_t, uint32_t> model;
  uint32_t next_value = 0;

  for (int step = 0; step < 4000; ++step) {
    const double action = rng.Uniform(0, 1);
    const int32_t key = static_cast<int32_t>(rng.UniformInt(-50, 50));
    if (action < 0.6) {
      tree.Insert(key, next_value);
      model.emplace(key, next_value);
      ++next_value;
    } else if (action < 0.9 && !model.empty()) {
      // Erase a specific existing pair half the time, a random (likely
      // missing) pair otherwise.
      if (rng.Bernoulli(0.5)) {
        auto it = model.begin();
        std::advance(it, rng.UniformInt(0, static_cast<int64_t>(model.size()) - 1));
        EXPECT_TRUE(tree.Erase(it->first, it->second));
        model.erase(it);
      } else {
        const uint32_t value = static_cast<uint32_t>(rng.UniformInt(0, 100000));
        bool in_model = false;
        for (auto [it, end] = model.equal_range(key); it != end; ++it) {
          if (it->second == value) {
            in_model = true;
            model.erase(it);
            break;
          }
        }
        EXPECT_EQ(tree.Erase(key, value), in_model);
      }
    } else {
      // Range scan agreement.
      int32_t lo = static_cast<int32_t>(rng.UniformInt(-60, 60));
      int32_t hi = static_cast<int32_t>(rng.UniformInt(-60, 60));
      if (lo > hi) std::swap(lo, hi);
      std::multiset<std::pair<int32_t, uint32_t>> expect;
      for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
           ++it) {
        expect.insert(*it);
      }
      std::multiset<std::pair<int32_t, uint32_t>> got;
      tree.Scan(lo, hi, [&got](int32_t k, uint32_t v) {
        got.emplace(k, v);
        return true;
      });
      EXPECT_EQ(got, expect);
    }
    ASSERT_EQ(tree.size(), model.size());
  }
  ASSERT_TRUE(tree.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, BPlusTreeModelTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

// The default order (64) must behave identically; spot-check with a bulk load.
TEST(BPlusTreeTest, DefaultOrderBulk) {
  BPlusTree<int32_t, uint32_t> tree;
  Rng rng(5);
  std::multimap<int32_t, uint32_t> model;
  for (uint32_t i = 0; i < 20000; ++i) {
    const int32_t key = static_cast<int32_t>(rng.UniformInt(0, 1000));
    tree.Insert(key, i);
    model.emplace(key, i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), model.size());
  std::multiset<std::pair<int32_t, uint32_t>> expect(model.begin(), model.end());
  std::multiset<std::pair<int32_t, uint32_t>> got;
  tree.ScanAll([&got](int32_t k, uint32_t v) {
    got.emplace(k, v);
    return true;
  });
  EXPECT_EQ(got, expect);
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree<std::string, int, 4> tree;
  tree.Insert("easter", 1);
  tree.Insert("cinema", 2);
  tree.Insert("elvis", 3);
  tree.Insert("bank", 4);
  tree.Insert("president", 5);
  std::vector<std::string> keys;
  tree.ScanAll([&keys](const std::string& k, int) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"bank", "cinema", "easter", "elvis",
                                            "president"}));
  EXPECT_TRUE(tree.CheckInvariants());
}

}  // namespace
}  // namespace s2::storage
