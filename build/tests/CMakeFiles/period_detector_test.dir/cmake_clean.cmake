file(REMOVE_RECURSE
  "CMakeFiles/period_detector_test.dir/period_detector_test.cc.o"
  "CMakeFiles/period_detector_test.dir/period_detector_test.cc.o.d"
  "period_detector_test"
  "period_detector_test.pdb"
  "period_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/period_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
